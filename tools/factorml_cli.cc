// factorml_cli — command-line delivery of the factorized trainers (the
// paper's closing question of how to deliver factorization to end users:
// here, as a standalone tool over the library).
//
// Subcommands:
//   generate   --dir=D [--ns=N --nr=N1[,N2..] --ds=D --dr=D1[,D2..]]
//              [--target] [--one_hot] [--seed=S]
//              Creates s.fml / r1.fml ... under --dir (or --shape=<name>
//              for a published real-dataset shape, with --scale).
//   import     --s_csv=F --r_csv=F1[,F2..] --dir=D [--target]
//              Imports normalized relations from CSV files (S keys first:
//              SID, FK1..FKq; attribute keys: RID).
//   stats      --dir=D [--target]
//              Prints joined-table feature statistics computed without
//              joining (factorized aggregates).
//   train      --dir=D --model=gmm|nn|linreg|kmeans|logreg
//              [--algo=f|s|m|all] (model-specific flags as below)
//   train-gmm  --dir=D [--algo=f|s|m|all] [--k=5 --iters=10] [--target]
//   train-nn   --dir=D [--algo=f|s|m|all] [--nh=50 --epochs=10
//              --lr=0.05 --batch=1024 --act=sigmoid|tanh|relu|identity
//              --dropout=0 --momentum=0 --shuffle]
//   train-linreg --dir=D [--algo=f|s|m|all] [--l2=1e-3 --no_intercept]
//   train-kmeans --dir=D [--algo=f|s|m|all] [--k=5 --iters=10 --tol=0]
//              [--target]
//   train-logreg --dir=D [--algo=f|s|m|all] [--l2=1e-3 --iters=4 --tol=0
//              --no_intercept]
//   export     --dir=D --out=F.csv [--table=s|r1|r2...]
//
// Every train run prints a TrainReport (wall time, page I/O, flops).
// `--threads=N` (any subcommand, default 1) runs the trainers on the
// exec/ morsel-driven parallel runtime; --threads=1 is bit-identical to
// the serial reproduction. `--buffer-pages=N` (train subcommands, default
// 8192) sizes the buffer pool.
//
// `--morsel-rows=N` (any train subcommand, default 0) switches full
// passes to the chunk-ordered work scheduler: the pass becomes fixed
// N-row chunks (whole FK1 runs for the S/F strategies) reduced in chunk
// order, so results depend on N but not on --threads. `--steal=on`
// additionally lets idle workers take chunks from busy ones — same bits,
// better balance on skewed FK1 runs.
//
// `--prefetch=on` (any train subcommand, default off) turns on the
// unified I/O cursor plane's asynchronous double-buffered prefetch: while
// a worker computes on one morsel, a background I/O crew lands the pages
// of its next scheduled morsel (and the next `--prefetch-depth=N`
// batches, default 2) in its buffer pool. Residency-only — same bits
// either way; the TrainReport gains the prefetch hit rate and demand
// stall time.
//
// `--shards=N` (any full-pass train subcommand, default 1) runs the pass
// through the rid-range shard plane: the chunk plan is split into N
// contiguous spans, each span is scanned as its own shard (own IoStats
// window and busy time in the TrainReport), its accumulator slots are
// round-tripped through serialized ShardDelta bytes — the wire seam a
// distributed backend plugs into — and the deltas merge in shard-id
// order. Implies `--morsel-rows` (default chunk size when unset);
// objectives, params and op counts are bit-identical to --shards=1 at the
// same resolved morsel size for any --threads/--steal/--prefetch, and
// total page I/O matches too when steal and prefetch are off. The NN
// family (mini-batch SGD) rejects --shards > 1.
//
// `--shard-backend=inproc|process` (any full-pass train subcommand,
// default inproc) selects where the shard scans execute. `inproc` drives
// them in this process — byte-identical to the pre-backend engine.
// `process` spawns one factormld worker process per shard and exchanges
// the ShardDelta bytes over length-prefixed socket frames (Unix-domain
// under the data dir, or TCP loopback with `--shard-transport=tcp`);
// results stay bit-identical by the same chunk-ordered merge, and the
// TrainReport's shard_stats become per-node I/O windows. A worker that
// dies or stalls past `--shard-timeout-ms=N` (default 30000) has its
// spans requeued on a healthy worker — bit-identically — or, when the
// model vetoes mid-iteration recovery, the run restarts deterministically
// on the survivors. `--factormld=PATH` overrides the worker binary
// (default: $FACTORMLD, then a sibling of the running executable, then
// $PATH).
//
// `--kernels=scalar|simd` (any train subcommand, default scalar) selects
// the compute kernel backend. `scalar` replays the seed's exact loops —
// bit-identical objectives, params, op counts and page I/O. `simd` swaps
// in the runtime-dispatched vector kernel plane (AVX2+FMA where the CPU
// has it, portable 32-byte vector lanes otherwise) and switches the
// full-pass strategies to batched column-strip decode: pages are decoded
// into cache-blocked column-major strips and the models consume whole
// strips per kernel call. Op counts and page I/O stay exactly equal to
// scalar at the same schedule; floating-point results agree to
// reassociation tolerance. Unknown values exit 2 listing the choices.
//
// `--trace=PATH` (any subcommand) records per-worker runtime spans —
// parallel regions, morsel executions (owner vs stolen), demand reads,
// prefetch requests, shard scans and delta merges, model phases — and
// writes Chrome trace-event JSON to PATH at exit (open in Perfetto or
// chrome://tracing), plus the run manifest as PATH.manifest.json.
// `--trace-buffer-kb=N` (default 1024) sizes each worker's ring buffer;
// overflow drops events (counted), never blocks. Tracing does not perturb
// results: objectives, op counts and page I/O stay bit-identical to the
// untraced run (obs_test pins this).

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "core/factorml.h"
#include "data/csv.h"
#include "exec/thread_pool.h"
#include "la/kernels.h"
#include "obs/manifest.h"
#include "obs/trace.h"

namespace factorml {
namespace {

int Fail(const std::string& msg) {
  std::fprintf(stderr, "factorml_cli: %s\n", msg.c_str());
  return 1;
}

int FailStatus(const Status& st) { return Fail(st.ToString()); }

/// Loads relations previously written by `generate` or `import`:
/// <dir>/s.fml plus <dir>/r1.fml, r2.fml, ... (as many as exist).
Result<join::NormalizedRelations> LoadRelations(const std::string& dir,
                                                bool has_target,
                                                storage::BufferPool* pool) {
  FML_ASSIGN_OR_RETURN(storage::Table s, storage::Table::Open(dir + "/s.fml"));
  std::vector<storage::Table> attrs;
  for (int i = 1;; ++i) {
    auto t = storage::Table::Open(dir + "/r" + std::to_string(i) + ".fml");
    if (!t.ok()) break;
    attrs.push_back(std::move(t).value());
  }
  if (attrs.empty()) {
    return Status::NotFound("no attribute tables (r1.fml, ...) in " + dir);
  }
  join::NormalizedRelations rel(std::move(s), std::move(attrs), has_target);
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_RETURN_IF_ERROR(rel.BuildIndex(pool));
  return rel;
}

/// Parses `--algo`; unknown values list the valid choices instead of
/// silently falling back.
Result<std::vector<core::Algorithm>> ParseAlgos(const std::string& spec) {
  if (spec == "m") {
    return std::vector<core::Algorithm>{core::Algorithm::kMaterialized};
  }
  if (spec == "s") {
    return std::vector<core::Algorithm>{core::Algorithm::kStreaming};
  }
  if (spec == "f") {
    return std::vector<core::Algorithm>{core::Algorithm::kFactorized};
  }
  if (spec == "all") {
    return std::vector<core::Algorithm>{core::Algorithm::kMaterialized,
                                        core::Algorithm::kStreaming,
                                        core::Algorithm::kFactorized};
  }
  return Status::InvalidArgument(
      "unknown --algo '" + spec +
      "' (valid: m = materialized, s = streaming, f = factorized, all)");
}

int CmdGenerate(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("generate requires --dir");
  storage::BufferPool pool(1024);

  const std::string shape_name = args.GetString("shape", "");
  if (!shape_name.empty()) {
    auto shape = data::FindRealShape(shape_name);
    if (!shape.ok()) return FailStatus(shape.status());
    auto rel = data::GenerateRealShape(
        shape.value(), dir, &pool, args.GetDouble("scale", 1.0),
        static_cast<uint64_t>(args.GetInt("seed", 42)),
        args.GetBool("target", false));
    if (!rel.ok()) return FailStatus(rel.status());
    std::printf("generated shape %s under %s (nS=%lld)\n",
                shape_name.c_str(), dir.c_str(),
                static_cast<long long>(rel->s.num_rows()));
    return 0;
  }

  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.name = "cli";
  spec.s_rows = args.GetInt("ns", 100000);
  spec.s_feats = static_cast<size_t>(args.GetInt("ds", 5));
  const auto nr = args.GetIntList("nr", {1000});
  const auto dr = args.GetIntList("dr", {15});
  if (nr.size() != dr.size()) {
    return Fail("--nr and --dr must have the same number of entries");
  }
  for (size_t i = 0; i < nr.size(); ++i) {
    spec.attrs.push_back(
        data::AttributeSpec{nr[i], static_cast<size_t>(dr[i])});
  }
  spec.with_target = args.GetBool("target", false);
  spec.one_hot = args.GetBool("one_hot", false);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  auto rel = data::GenerateSynthetic(spec, &pool);
  if (!rel.ok()) return FailStatus(rel.status());
  // Rename to the canonical s.fml / rI.fml layout expected by LoadRelations.
  std::rename((dir + "/cli_s.fml").c_str(), (dir + "/s.fml").c_str());
  for (size_t i = 1; i <= nr.size(); ++i) {
    std::rename((dir + "/cli_r" + std::to_string(i) + ".fml").c_str(),
                (dir + "/r" + std::to_string(i) + ".fml").c_str());
  }
  std::printf("generated %lld fact rows, %zu attribute table(s) under %s\n",
              static_cast<long long>(spec.s_rows), spec.attrs.size(),
              dir.c_str());
  return 0;
}

int CmdImport(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  const std::string s_csv = args.GetString("s_csv", "");
  const std::string r_csvs = args.GetString("r_csv", "");
  if (dir.empty() || s_csv.empty() || r_csvs.empty()) {
    return Fail("import requires --dir, --s_csv and --r_csv");
  }
  std::vector<std::string> r_list;
  std::string cur;
  for (const char c : r_csvs + ",") {
    if (c == ',') {
      if (!cur.empty()) r_list.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  data::CsvImportOptions s_opt;
  s_opt.num_keys = 1 + r_list.size();  // SID + one FK per attribute table
  s_opt.skip_bad_rows = args.GetBool("skip_bad_rows", false);
  auto s = data::ImportCsv(s_csv, dir + "/s.fml", s_opt);
  if (!s.ok()) return FailStatus(s.status());
  data::CsvImportOptions r_opt;
  r_opt.num_keys = 1;
  r_opt.skip_bad_rows = s_opt.skip_bad_rows;
  for (size_t i = 0; i < r_list.size(); ++i) {
    auto r = data::ImportCsv(r_list[i],
                             dir + "/r" + std::to_string(i + 1) + ".fml",
                             r_opt);
    if (!r.ok()) return FailStatus(r.status());
  }
  std::printf("imported %lld fact rows and %zu attribute table(s)\n",
              static_cast<long long>(s->num_rows()), r_list.size());
  return 0;
}

int CmdStats(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("stats requires --dir");
  storage::BufferPool pool(4096);
  auto rel = LoadRelations(dir, args.GetBool("target", false), &pool);
  if (!rel.ok()) return FailStatus(rel.status());
  auto stats = core::ComputeJoinedFeatureStats(rel.value(), &pool);
  if (!stats.ok()) return FailStatus(stats.status());
  std::printf("joined feature statistics (d=%zu), computed factorized:\n",
              stats->dims());
  std::printf("%6s %14s %14s\n", "col", "mean", "stddev");
  for (size_t j = 0; j < stats->dims(); ++j) {
    std::printf("%6zu %14.6f %14.6f\n", j, stats->mean[j],
                stats->stddev[j]);
  }
  return 0;
}

int CmdTrainGmm(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("train-gmm requires --dir");
  storage::BufferPool pool(
      static_cast<size_t>(args.GetBufferPages(8192)));
  auto rel = LoadRelations(dir, args.GetBool("target", false), &pool);
  if (!rel.ok()) return FailStatus(rel.status());

  gmm::GmmOptions opt;
  opt.num_components = static_cast<size_t>(args.GetInt("k", 5));
  opt.max_iters = static_cast<int>(args.GetInt("iters", 10));
  opt.tol = args.GetDouble("tol", 0.0);
  opt.temp_dir = dir;
  opt.morsel_rows = args.GetMorselRows(0);
  opt.steal = args.GetSteal(false);
  opt.prefetch = args.GetPrefetch(false);
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  opt.shards = args.GetShards(1);
  opt.kernels = args.GetKernels() == "simd" ? la::KernelMode::kSimd
                                             : la::KernelMode::kScalar;
  opt.shard_backend = args.GetShardBackend("inproc");
  opt.shard_timeout_ms = args.GetShardTimeoutMs(30000);
  opt.shard_transport = args.GetShardTransport("unix");
  opt.shard_worker_path = args.GetString("factormld", "");
  opt.delta_encoding = args.GetDeltaEncoding("dense");
  opt.checkpoint_dir = args.GetCheckpointDir("");
  opt.checkpoint_every = args.GetCheckpointEvery(0);
  auto algos = ParseAlgos(args.GetString("algo", "all"));
  if (!algos.ok()) return FailStatus(algos.status());
  for (const auto algo : algos.value()) {
    pool.Clear();
    core::TrainReport report;
    auto params = core::TrainGmm(rel.value(), opt, algo, &pool, &report);
    if (!params.ok()) return FailStatus(params.status());
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}

int CmdTrainNn(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("train-nn requires --dir");
  storage::BufferPool pool(
      static_cast<size_t>(args.GetBufferPages(8192)));
  auto rel = LoadRelations(dir, /*has_target=*/true, &pool);
  if (!rel.ok()) return FailStatus(rel.status());

  nn::NnOptions opt;
  opt.hidden = {static_cast<size_t>(args.GetInt("nh", 50))};
  opt.epochs = static_cast<int>(args.GetInt("epochs", 10));
  opt.learning_rate = args.GetDouble("lr", 0.05);
  opt.batch_rows = static_cast<size_t>(args.GetInt("batch", 1024));
  opt.shuffle = args.GetBool("shuffle", false);
  opt.hidden_dropout = args.GetDouble("dropout", 0.0);
  opt.momentum = args.GetDouble("momentum", 0.0);
  opt.weight_decay = args.GetDouble("weight_decay", 0.0);
  opt.temp_dir = dir;
  opt.morsel_rows = args.GetMorselRows(0);
  opt.steal = args.GetSteal(false);
  opt.prefetch = args.GetPrefetch(false);
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  opt.shards = args.GetShards(1);
  opt.kernels = args.GetKernels() == "simd" ? la::KernelMode::kSimd
                                             : la::KernelMode::kScalar;
  opt.shard_backend = args.GetShardBackend("inproc");
  opt.shard_timeout_ms = args.GetShardTimeoutMs(30000);
  opt.shard_transport = args.GetShardTransport("unix");
  opt.shard_worker_path = args.GetString("factormld", "");
  opt.delta_encoding = args.GetDeltaEncoding("dense");
  opt.checkpoint_dir = args.GetCheckpointDir("");
  opt.checkpoint_every = args.GetCheckpointEvery(0);
  const std::string act = args.GetString("act", "sigmoid");
  if (act == "tanh") opt.activation = nn::Activation::kTanh;
  else if (act == "relu") opt.activation = nn::Activation::kRelu;
  else if (act == "identity") opt.activation = nn::Activation::kIdentity;
  else if (act != "sigmoid") {
    return Fail("unknown --act '" + act +
                "' (valid: sigmoid, tanh, relu, identity)");
  }

  auto algos = ParseAlgos(args.GetString("algo", "all"));
  if (!algos.ok()) return FailStatus(algos.status());
  for (const auto algo : algos.value()) {
    pool.Clear();
    core::TrainReport report;
    auto mlp = core::TrainNn(rel.value(), opt, algo, &pool, &report);
    if (!mlp.ok()) return FailStatus(mlp.status());
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}

int CmdTrainLinreg(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("train-linreg requires --dir");
  storage::BufferPool pool(
      static_cast<size_t>(args.GetBufferPages(8192)));
  auto rel = LoadRelations(dir, /*has_target=*/true, &pool);
  if (!rel.ok()) return FailStatus(rel.status());

  linreg::LinregOptions opt;
  opt.l2 = args.GetDouble("l2", 1e-3);
  opt.intercept = !args.GetBool("no_intercept", false);
  opt.batch_rows = static_cast<size_t>(args.GetInt("batch", 8192));
  opt.temp_dir = dir;
  opt.morsel_rows = args.GetMorselRows(0);
  opt.steal = args.GetSteal(false);
  opt.prefetch = args.GetPrefetch(false);
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  opt.shards = args.GetShards(1);
  opt.kernels = args.GetKernels() == "simd" ? la::KernelMode::kSimd
                                             : la::KernelMode::kScalar;
  opt.shard_backend = args.GetShardBackend("inproc");
  opt.shard_timeout_ms = args.GetShardTimeoutMs(30000);
  opt.shard_transport = args.GetShardTransport("unix");
  opt.shard_worker_path = args.GetString("factormld", "");
  opt.delta_encoding = args.GetDeltaEncoding("dense");
  opt.checkpoint_dir = args.GetCheckpointDir("");
  opt.checkpoint_every = args.GetCheckpointEvery(0);
  auto algos = ParseAlgos(args.GetString("algo", "all"));
  if (!algos.ok()) return FailStatus(algos.status());
  for (const auto algo : algos.value()) {
    pool.Clear();
    core::TrainReport report;
    auto model = core::TrainLinreg(rel.value(), opt, algo, &pool, &report);
    if (!model.ok()) return FailStatus(model.status());
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}

int CmdTrainKmeans(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("train-kmeans requires --dir");
  storage::BufferPool pool(
      static_cast<size_t>(args.GetBufferPages(8192)));
  auto rel = LoadRelations(dir, args.GetBool("target", false), &pool);
  if (!rel.ok()) return FailStatus(rel.status());

  kmeans::KmeansOptions opt;
  opt.num_clusters = static_cast<size_t>(args.GetInt("k", 5));
  opt.max_iters = static_cast<int>(args.GetInt("iters", 10));
  opt.tol = args.GetDouble("tol", 0.0);
  opt.batch_rows = static_cast<size_t>(args.GetInt("batch", 8192));
  opt.temp_dir = dir;
  opt.morsel_rows = args.GetMorselRows(0);
  opt.steal = args.GetSteal(false);
  opt.prefetch = args.GetPrefetch(false);
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  opt.shards = args.GetShards(1);
  opt.kernels = args.GetKernels() == "simd" ? la::KernelMode::kSimd
                                             : la::KernelMode::kScalar;
  opt.shard_backend = args.GetShardBackend("inproc");
  opt.shard_timeout_ms = args.GetShardTimeoutMs(30000);
  opt.shard_transport = args.GetShardTransport("unix");
  opt.shard_worker_path = args.GetString("factormld", "");
  opt.delta_encoding = args.GetDeltaEncoding("dense");
  opt.checkpoint_dir = args.GetCheckpointDir("");
  opt.checkpoint_every = args.GetCheckpointEvery(0);
  auto algos = ParseAlgos(args.GetString("algo", "all"));
  if (!algos.ok()) return FailStatus(algos.status());
  for (const auto algo : algos.value()) {
    pool.Clear();
    core::TrainReport report;
    auto model = core::TrainKmeans(rel.value(), opt, algo, &pool, &report);
    if (!model.ok()) return FailStatus(model.status());
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}

int CmdTrainLogreg(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Fail("train-logreg requires --dir");
  storage::BufferPool pool(
      static_cast<size_t>(args.GetBufferPages(8192)));
  auto rel = LoadRelations(dir, /*has_target=*/true, &pool);
  if (!rel.ok()) return FailStatus(rel.status());

  logreg::LogregOptions opt;
  opt.l2 = args.GetDouble("l2", 1e-3);
  opt.intercept = !args.GetBool("no_intercept", false);
  opt.max_iters = static_cast<int>(args.GetInt("iters", 4));
  opt.tol = args.GetDouble("tol", 0.0);
  opt.batch_rows = static_cast<size_t>(args.GetInt("batch", 8192));
  opt.temp_dir = dir;
  opt.morsel_rows = args.GetMorselRows(0);
  opt.steal = args.GetSteal(false);
  opt.prefetch = args.GetPrefetch(false);
  opt.prefetch_depth = args.GetPrefetchDepth(2);
  opt.shards = args.GetShards(1);
  opt.kernels = args.GetKernels() == "simd" ? la::KernelMode::kSimd
                                             : la::KernelMode::kScalar;
  opt.shard_backend = args.GetShardBackend("inproc");
  opt.shard_timeout_ms = args.GetShardTimeoutMs(30000);
  opt.shard_transport = args.GetShardTransport("unix");
  opt.shard_worker_path = args.GetString("factormld", "");
  opt.delta_encoding = args.GetDeltaEncoding("dense");
  opt.checkpoint_dir = args.GetCheckpointDir("");
  opt.checkpoint_every = args.GetCheckpointEvery(0);
  auto algos = ParseAlgos(args.GetString("algo", "all"));
  if (!algos.ok()) return FailStatus(algos.status());
  for (const auto algo : algos.value()) {
    pool.Clear();
    core::TrainReport report;
    auto model = core::TrainLogreg(rel.value(), opt, algo, &pool, &report);
    if (!model.ok()) return FailStatus(model.status());
    std::printf("%s\n", report.ToString().c_str());
  }
  return 0;
}

/// Unified entry point: `train --model=<family>` dispatches to the family
/// trainer; unknown families list the valid choices.
int CmdTrain(const ArgParser& args) {
  const std::string model = args.GetString("model", "");
  if (model == "gmm") return CmdTrainGmm(args);
  if (model == "nn") return CmdTrainNn(args);
  if (model == "linreg") return CmdTrainLinreg(args);
  if (model == "kmeans") return CmdTrainKmeans(args);
  if (model == "logreg") return CmdTrainLogreg(args);
  return Fail("unknown --model '" + model +
              "' (valid: gmm, nn, linreg, kmeans, logreg)");
}

int CmdExport(const ArgParser& args) {
  const std::string dir = args.GetString("dir", "");
  const std::string out = args.GetString("out", "");
  if (dir.empty() || out.empty()) return Fail("export requires --dir, --out");
  const std::string which = args.GetString("table", "s");
  const std::string path = dir + "/" + which + ".fml";
  auto t = storage::Table::Open(path);
  if (!t.ok()) return FailStatus(t.status());
  storage::BufferPool pool(1024);
  const Status st = data::ExportCsv(t.value(), &pool, out);
  if (!st.ok()) return FailStatus(st);
  std::printf("exported %lld rows to %s\n",
              static_cast<long long>(t->num_rows()), out.c_str());
  return 0;
}

int Dispatch(const std::string& cmd, const ArgParser& args,
             const char* usage) {
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "import") return CmdImport(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "train-gmm") return CmdTrainGmm(args);
  if (cmd == "train-nn") return CmdTrainNn(args);
  if (cmd == "train-linreg") return CmdTrainLinreg(args);
  if (cmd == "train-kmeans") return CmdTrainKmeans(args);
  if (cmd == "train-logreg") return CmdTrainLogreg(args);
  if (cmd == "export") return CmdExport(args);
  std::fprintf(stderr, "%s", usage);
  return Fail("unknown command: " + cmd);
}

int Main(int argc, char** argv) {
  static constexpr const char kUsage[] =
      "usage: factorml_cli "
      "<generate|import|stats|train|train-gmm|train-nn|train-linreg|"
      "train-kmeans|train-logreg|export> [--flags]\n";
  if (argc < 2) {
    std::fprintf(stderr, "%s", kUsage);
    return 1;
  }
  const std::string cmd = argv[1];
  ArgParser args(argc, argv);
  if (args.Has("io_delay_us")) {
    const auto us = static_cast<uint64_t>(args.GetInt("io_delay_us", 0));
    storage::SetSimulatedIoLatencyMicros(us, us);
  }
  exec::SetDefaultThreads(args.GetThreads(1));
  // --trace=PATH: span tracing around the whole subcommand. The flush
  // happens after the dispatch returns (pool idle), writing the Chrome
  // trace-event JSON with the run manifest embedded as otherData plus the
  // sibling <PATH>.manifest.json artifact.
  const std::string trace_path = args.GetTracePath();
  if (!trace_path.empty()) {
    obs::Tracer::Instance().Start(
        static_cast<size_t>(args.GetTraceBufferKb()));
  }
  const int rc = Dispatch(cmd, args, kUsage);
  if (!trace_path.empty()) {
    obs::Tracer::Instance().Stop();
    const obs::RunManifest manifest =
        obs::RunManifest::FromArgs("factorml_cli " + cmd, args);
    Status st = obs::Tracer::Instance().WriteJson(trace_path,
                                                  manifest.ToJson());
    if (st.ok()) st = manifest.WriteTo(trace_path + ".manifest.json");
    if (!st.ok()) {
      std::fprintf(stderr, "trace flush failed: %s\n",
                   st.ToString().c_str());
      return rc == 0 ? 1 : rc;
    }
    std::printf("trace written to %s (%llu events, %llu dropped)\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(
                    obs::Tracer::Instance().TotalEvents()),
                static_cast<unsigned long long>(
                    obs::Tracer::Instance().TotalDropped()));
  }
  return rc;
}

}  // namespace
}  // namespace factorml

int main(int argc, char** argv) { return factorml::Main(argc, argv); }

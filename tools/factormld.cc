// factormld — the process shard backend's worker daemon. Spawned by a
// ProcessShardCoordinator (core/pipeline/shard_rpc.h) with
//
//   factormld --connect=<unix:PATH | tcp:HOST:PORT> --worker-id=<N>
//
// it dials the coordinator, introduces itself (HELLO), receives the JOB
// frame describing the dataset and the resolved training options, opens
// its own table views and buffer pool, and then runs the full
// deterministic training loop as a lockstep replica — scanning only the
// shard spans the coordinator assigns per pass and exchanging ShardDelta
// bytes so every node's model state stays bit-identical. Never run by
// hand; the protocol is documented in core/pipeline/shard_rpc.h.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "core/pipeline/shard_rpc.h"
#include "core/report.h"
#include "gmm/trainers.h"
#include "join/normalized_relations.h"
#include "kmeans/kmeans.h"
#include "la/kernels.h"
#include "linreg/linreg.h"
#include "logreg/logreg.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml {
namespace {

namespace pipeline = core::pipeline;

Result<core::Algorithm> AlgorithmFromPrefix(char c) {
  // AlgorithmPrefix emits uppercase; accept both cases like the
  // coordinator-side decoder.
  switch (c) {
    case 'm':
    case 'M':
      return core::Algorithm::kMaterialized;
    case 's':
    case 'S':
      return core::Algorithm::kStreaming;
    case 'f':
    case 'F':
      return core::Algorithm::kFactorized;
  }
  return Status::InvalidArgument(std::string("unknown algorithm prefix: ") +
                                 c);
}

Result<std::unique_ptr<pipeline::ModelProgram>> MakeProgram(
    const pipeline::ShardJobSpec& spec) {
  if (spec.family == "gmm") {
    FML_ASSIGN_OR_RETURN(gmm::GmmOptions opt,
                         gmm::DecodeShardJob(spec.family_blob));
    return gmm::MakeShardProgram(opt);
  }
  if (spec.family == "linreg") {
    FML_ASSIGN_OR_RETURN(linreg::LinregOptions opt,
                         linreg::DecodeShardJob(spec.family_blob));
    return linreg::MakeShardProgram(opt);
  }
  if (spec.family == "kmeans") {
    FML_ASSIGN_OR_RETURN(kmeans::KmeansOptions opt,
                         kmeans::DecodeShardJob(spec.family_blob));
    return kmeans::MakeShardProgram(opt);
  }
  if (spec.family == "logreg") {
    FML_ASSIGN_OR_RETURN(logreg::LogregOptions opt,
                         logreg::DecodeShardJob(spec.family_blob));
    return logreg::MakeShardProgram(opt);
  }
  return Status::InvalidArgument("factormld: unknown model family '" +
                                 spec.family + "'");
}

Status RunWorker(net::FrameConn& conn, int64_t worker_id) {
  net::Frame job;
  FML_RETURN_IF_ERROR(conn.RecvFrame(&job, /*timeout_ms=*/60000));
  if (job.type != pipeline::kFrameJob) {
    return Status::Internal("factormld: expected JOB frame, got type " +
                            std::to_string(job.type));
  }
  FML_ASSIGN_OR_RETURN(pipeline::ShardJobSpec spec,
                       pipeline::DecodeShardJobSpec(job.payload));
  if (spec.worker_id != worker_id) {
    return Status::Internal("factormld: JOB addressed to worker " +
                            std::to_string(spec.worker_id));
  }

  // This worker's own replica of the dataset: private views, private
  // buffer pool (same capacity as the coordinator's — the per-node I/O
  // stats in shard_stats are comparable only under equal pool pressure),
  // private temp dir for the M strategy's materialization.
  std::error_code ec;
  std::filesystem::create_directories(spec.temp_dir, ec);
  if (ec) {
    return Status::IoError("factormld: cannot create temp dir " +
                           spec.temp_dir + ": " + ec.message());
  }
  FML_ASSIGN_OR_RETURN(storage::Table s, storage::Table::Open(spec.s_path));
  std::vector<storage::Table> attrs;
  for (const std::string& path : spec.attr_paths) {
    FML_ASSIGN_OR_RETURN(storage::Table t, storage::Table::Open(path));
    attrs.push_back(std::move(t));
  }
  join::NormalizedRelations rel(std::move(s), std::move(attrs),
                                spec.has_target);
  storage::BufferPool pool(spec.pool_pages);
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_RETURN_IF_ERROR(rel.BuildIndex(&pool));

  FML_ASSIGN_OR_RETURN(core::Algorithm algorithm,
                       AlgorithmFromPrefix(spec.algorithm));

  pipeline::StrategyOptions sopt;
  sopt.batch_rows = spec.batch_rows;
  sopt.threads = static_cast<int>(spec.threads);
  sopt.morsel_rows = spec.morsel_rows;
  sopt.steal = spec.steal;
  sopt.prefetch = spec.prefetch;
  sopt.prefetch_depth = static_cast<int>(spec.prefetch_depth);
  sopt.shards = static_cast<int>(spec.shards);
  sopt.kernels = static_cast<la::KernelMode>(spec.kernels);
  sopt.temp_dir = spec.temp_dir;
  sopt.shard_timeout_ms = spec.shard_timeout_ms;
  sopt.delta_encoding = spec.delta_encoding;
  // Workers restore from an existing checkpoint (so a resumed coordinator
  // and its workers agree on the starting iteration) but never write one
  // — the coordinator owns the write path.
  sopt.checkpoint_dir = spec.checkpoint_dir;
  sopt.checkpoint_every = spec.checkpoint_every;

  pipeline::ShardWorkerLink link(&conn, worker_id);
  sopt.shard_channel = &link;

  // Attempt loop: a RESTART frame surfaces as the shard-restart sentinel
  // from RunTraining; rerun with a fresh program (deterministic — same
  // blob, same data).
  while (true) {
    FML_ASSIGN_OR_RETURN(std::unique_ptr<pipeline::ModelProgram> program,
                         MakeProgram(spec));
    core::TrainReport report;
    const Status st =
        pipeline::RunTraining(rel, algorithm, sopt, program.get(), &pool,
                              &report);
    if (pipeline::IsShardRestart(st)) continue;
    return st;
  }
}

Status WorkerMain(const std::string& address, int64_t worker_id) {
  net::FrameConn conn;
  FML_RETURN_IF_ERROR(net::ConnectAddress(address, &conn));

  {
    net::ByteWriter w;
    w.U32(pipeline::kShardProtocolVersion);
    w.I64(worker_id);
    w.I64(static_cast<int64_t>(getpid()));
    FML_RETURN_IF_ERROR(
        conn.SendFrame(pipeline::kFrameHello, w.Take()));
  }

  // Any failure past the handshake — a bad JOB spec, an unopenable table,
  // a training error — is reported upstream before exiting so the
  // coordinator fails with the cause, not a bare EOF.
  const Status st = RunWorker(conn, worker_id);
  if (!st.ok() && conn.open()) {
    (void)conn.SendFrame(pipeline::kFrameError, st.ToString());
  }
  return st;
}

}  // namespace
}  // namespace factorml

int main(int argc, char** argv) {
  factorml::ArgParser args(argc, argv);
  const std::string address = args.GetString("connect", "");
  const int64_t worker_id = args.GetInt("worker-id", -1);
  if (address.empty() || worker_id < 0) {
    std::fprintf(stderr,
                 "factormld is the process shard backend's worker daemon; "
                 "it is spawned by the coordinator, not run by hand.\n"
                 "usage: factormld --connect=<unix:PATH|tcp:HOST:PORT> "
                 "--worker-id=<N>\n");
    return 2;
  }
  const factorml::Status st = factorml::WorkerMain(address, worker_id);
  if (!st.ok()) {
    std::fprintf(stderr, "factormld[%lld]: %s\n",
                 static_cast<long long>(worker_id), st.ToString().c_str());
    return 1;
  }
  return 0;
}

#ifndef FACTORML_JOIN_ATTRIBUTE_VIEW_H_
#define FACTORML_JOIN_ATTRIBUTE_VIEW_H_

#include <span>

#include "common/status.h"
#include "la/matrix.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// Memory-resident copy of an attribute table R(RID, XR). Attribute tables
/// are the small side of the paper's PK/FK joins (nR << nS); each training
/// pass loads them once through the buffer pool (counted I/O) and then
/// probes by RID at memory speed. Row position equals RID: the loader
/// verifies RIDs are the dense sequence 0..nR-1.
class AttributeTableView {
 public:
  AttributeTableView() = default;

  /// Loads the full table; fails if RIDs are not dense-sequential.
  Status Load(const storage::Table& table, storage::BufferPool* pool);

  int64_t num_rows() const { return static_cast<int64_t>(feats_.rows()); }
  size_t num_feats() const { return feats_.cols(); }

  /// Feature vector of the tuple with the given rid.
  std::span<const double> FeaturesOf(int64_t rid) const {
    return feats_.Row(static_cast<size_t>(rid));
  }

  const la::Matrix& feats() const { return feats_; }

 private:
  la::Matrix feats_;
};

}  // namespace factorml::join

#endif  // FACTORML_JOIN_ATTRIBUTE_VIEW_H_

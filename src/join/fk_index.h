#ifndef FACTORML_JOIN_FK_INDEX_H_
#define FACTORML_JOIN_FK_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/parallel_for.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// Primary/foreign-key index over a fact table S that is *clustered* by one
/// foreign-key column: for each RID value of the referenced attribute table
/// it records the contiguous run of S rows carrying that value. Probing the
/// matching S tuples of an R tuple (the paper's Fig. 1(b)/(c) access
/// pattern) then becomes a sequential range read.
class FkIndex {
 public:
  FkIndex() = default;

  /// Scans S and builds the index for key column `fk_key_idx`. RIDs must be
  /// dense in [0, num_rids). Fails with FailedPrecondition if S is not
  /// sorted by that column (i.e. not clustered).
  Status Build(const storage::Table& s, storage::BufferPool* pool,
               size_t fk_key_idx, int64_t num_rids);

  int64_t num_rids() const { return static_cast<int64_t>(counts_.size()); }
  size_t fk_key_idx() const { return fk_key_idx_; }

  /// First S row with this rid (meaningful only when count > 0).
  int64_t StartOf(int64_t rid) const { return starts_[rid]; }
  /// Number of S rows matching this rid (may be 0).
  int64_t CountOf(int64_t rid) const { return counts_[rid]; }

  /// Total matching rows, equals S's row count.
  int64_t total_rows() const { return total_rows_; }

 private:
  std::vector<int64_t> starts_;
  std::vector<int64_t> counts_;
  size_t fk_key_idx_ = 0;
  int64_t total_rows_ = 0;
};

/// Morsels for the parallel trainers: splits the rid positions
/// [0, num_rids) into at most `parts` contiguous ranges whose matching
/// S-row counts are near-equal, never splitting an FK1 run — each range is
/// a whole set of runs, so factorized per-R1-tuple reuse survives inside
/// every worker. One range (parts = 1) is the exact serial scan.
std::vector<exec::Range> PartitionFk1Runs(const FkIndex& index, int parts);

/// Chunk plan for the work-stealing scheduler: packs consecutive whole
/// FK1 runs into chunks of at least `morsel_rows` matching S rows (a run
/// longer than that forms its own chunk — runs are atomic). Unlike
/// PartitionFk1Runs the result depends only on the index and the chunk
/// size, never on the worker count, so the chunk numbering — and with it
/// the chunk-ordered reduction — is an invariant of the data.
std::vector<exec::Range> ChunkFk1Runs(const FkIndex& index,
                                      int64_t morsel_rows);

}  // namespace factorml::join

#endif  // FACTORML_JOIN_FK_INDEX_H_

#include "join/join_cursor.h"

#include <cstring>

namespace factorml::join {

JoinCursor::JoinCursor(const NormalizedRelations* rel,
                       storage::BufferPool* pool, size_t target_batch_rows)
    : rel_(rel), pool_(pool), target_batch_rows_(target_batch_rows) {
  FML_CHECK_GT(target_batch_rows_, 0u);
  FML_CHECK_GT(rel_->fk1_index.num_rids(), 0)
      << "JoinCursor requires a built fk1_index";
}

void JoinCursor::SetRidOrder(std::vector<int64_t> order) {
  if (!order.empty()) {
    FML_CHECK_EQ(order.size(),
                 static_cast<size_t>(rel_->fk1_index.num_rids()));
  }
  order_ = std::move(order);
  next_pos_ = 0;
}

void JoinCursor::SetPositionRange(int64_t begin, int64_t end) {
  const int64_t num_rids = rel_->fk1_index.num_rids();
  FML_CHECK_GE(begin, 0);
  FML_CHECK_LE(end, num_rids);
  FML_CHECK_LE(begin, end);
  begin_pos_ = begin;
  end_pos_ = end;
  next_pos_ = begin;
}

void JoinCursor::Reset() {
  next_pos_ = begin_pos_;
  status_ = Status::OK();
}

bool JoinCursor::Next(JoinBatch* out) {
  if (!status_.ok()) return false;
  const FkIndex& idx = rel_->fk1_index;
  const int64_t end_pos = end_pos_ < 0 ? idx.num_rids() : end_pos_;
  if (next_pos_ >= end_pos) return false;

  // Collect whole rid groups until the batch target is reached.
  out->groups.clear();
  size_t total = 0;
  while (next_pos_ < end_pos && total < target_batch_rows_) {
    const int64_t rid =
        order_.empty() ? next_pos_ : order_[static_cast<size_t>(next_pos_)];
    const size_t count = static_cast<size_t>(idx.CountOf(rid));
    out->groups.push_back(JoinGroup{rid, total, count});
    total += count;
    ++next_pos_;
  }

  // Fast path: groups form one contiguous S row range (always true in
  // natural order because S is clustered by FK1).
  bool contiguous = true;
  for (size_t g = 0; g + 1 < out->groups.size(); ++g) {
    const auto& a = out->groups[g];
    const auto& b = out->groups[g + 1];
    if (a.count > 0 && b.count > 0 &&
        idx.StartOf(a.rid) + static_cast<int64_t>(a.count) !=
            idx.StartOf(b.rid)) {
      contiguous = false;
      break;
    }
  }

  if (total == 0) {
    // All collected rids had no matching S tuples; emit an empty batch so
    // callers see a consistent stream (they typically skip it).
    out->s_rows.num_rows = 0;
    out->s_rows.num_keys = rel_->s.schema().num_keys;
    out->s_rows.keys.clear();
    out->s_rows.feats.Resize(0, rel_->s.schema().num_feats);
    return true;
  }

  if (contiguous) {
    int64_t first_start = -1;
    for (const auto& g : out->groups) {
      if (g.count > 0) {
        first_start = idx.StartOf(g.rid);
        break;
      }
    }
    status_ = rel_->s.ReadRows(pool_, first_start, total, &out->s_rows);
    return status_.ok();
  }

  // Permuted order: assemble the batch group by group.
  const auto& schema = rel_->s.schema();
  out->s_rows.num_rows = total;
  out->s_rows.num_keys = schema.num_keys;
  out->s_rows.start_row = -1;
  out->s_rows.keys.resize(total * schema.num_keys);
  out->s_rows.feats.Resize(total, schema.num_feats);
  for (const auto& g : out->groups) {
    if (g.count == 0) continue;
    status_ = rel_->s.ReadRows(pool_, idx.StartOf(g.rid), g.count, &scratch_);
    if (!status_.ok()) return false;
    std::memcpy(out->s_rows.keys.data() + g.offset * schema.num_keys,
                scratch_.keys.data(),
                sizeof(int64_t) * g.count * schema.num_keys);
    std::memcpy(out->s_rows.feats.Row(g.offset).data(), scratch_.feats.data(),
                sizeof(double) * g.count * schema.num_feats);
  }
  return true;
}

}  // namespace factorml::join

#include "join/join_cursor.h"

#include <algorithm>
#include <cstring>

#include "storage/page_cursor.h"

namespace factorml::join {

JoinCursor::JoinCursor(const NormalizedRelations* rel,
                       storage::BufferPool* pool, size_t target_batch_rows)
    : rel_(rel), pool_(pool), target_batch_rows_(target_batch_rows) {
  FML_CHECK_GT(target_batch_rows_, 0u);
  FML_CHECK_GT(rel_->fk1_index.num_rids(), 0)
      << "JoinCursor requires a built fk1_index";
}

void JoinCursor::EnablePrefetch(storage::Prefetcher* prefetcher,
                                int64_t depth_batches) {
  prefetcher_ = prefetcher;
  prefetch_batches_ = depth_batches < 1 ? 1 : depth_batches;
}

int64_t JoinCursor::RunWindow(int64_t begin, int64_t end, int64_t cap,
                              int64_t* row_begin) const {
  // S is clustered by FK1 and rids are dense, so the positions' runs form
  // one contiguous S row span; cap it at the double-buffer window.
  const FkIndex& idx = rel_->fk1_index;
  begin = std::max<int64_t>(begin, 0);
  end = std::min(end, idx.num_rids());
  int64_t first = -1;
  int64_t rows = 0;
  for (int64_t pos = begin; pos < end && rows < cap; ++pos) {
    const int64_t count = idx.CountOf(pos);
    if (count == 0) continue;
    if (first < 0) first = idx.StartOf(pos);
    rows += count;
  }
  if (first < 0) return 0;
  *row_begin = first;
  return std::min(rows, cap);
}

void JoinCursor::PrefetchPositionRange(int64_t begin, int64_t end) {
  if (prefetcher_ == nullptr || !order_.empty()) return;
  const int64_t cap =
      prefetch_batches_ * static_cast<int64_t>(target_batch_rows_);
  int64_t row_begin = 0;
  const int64_t rows = RunWindow(begin, end, cap, &row_begin);
  if (rows == 0) return;
  storage::PageCursor cursor(&rel_->s, pool_);
  cursor.SetPrefetcher(prefetcher_);
  cursor.PrefetchRows(row_begin, rows);
}

void JoinCursor::SetRidOrder(std::vector<int64_t> order) {
  if (!order.empty()) {
    FML_CHECK_EQ(order.size(),
                 static_cast<size_t>(rel_->fk1_index.num_rids()));
  }
  order_ = std::move(order);
  next_pos_ = 0;
}

void JoinCursor::SetPositionRange(int64_t begin, int64_t end) {
  const int64_t num_rids = rel_->fk1_index.num_rids();
  FML_CHECK_GE(begin, 0);
  FML_CHECK_LE(end, num_rids);
  FML_CHECK_LE(begin, end);
  begin_pos_ = begin;
  end_pos_ = end;
  next_pos_ = begin;
  prefetch_water_ = 0;
}

void JoinCursor::Reset() {
  next_pos_ = begin_pos_;
  prefetch_water_ = 0;
  status_ = Status::OK();
}

bool JoinCursor::Next(JoinBatch* out) {
  if (!status_.ok()) return false;
  const FkIndex& idx = rel_->fk1_index;
  const int64_t end_pos = end_pos_ < 0 ? idx.num_rids() : end_pos_;
  if (next_pos_ >= end_pos) return false;

  // Collect whole rid groups until the batch target is reached.
  out->groups.clear();
  size_t total = 0;
  while (next_pos_ < end_pos && total < target_batch_rows_) {
    const int64_t rid =
        order_.empty() ? next_pos_ : order_[static_cast<size_t>(next_pos_)];
    const size_t count = static_cast<size_t>(idx.CountOf(rid));
    out->groups.push_back(JoinGroup{rid, total, count});
    total += count;
    ++next_pos_;
  }

  // Fast path: groups form one contiguous S row range (always true in
  // natural order because S is clustered by FK1).
  bool contiguous = true;
  for (size_t g = 0; g + 1 < out->groups.size(); ++g) {
    const auto& a = out->groups[g];
    const auto& b = out->groups[g + 1];
    if (a.count > 0 && b.count > 0 &&
        idx.StartOf(a.rid) + static_cast<int64_t>(a.count) !=
            idx.StartOf(b.rid)) {
      contiguous = false;
      break;
    }
  }

  if (prefetcher_ != nullptr && order_.empty()) {
    // Double-buffer: land the runs of the following batches (positions
    // [next_pos_, end_pos), already advanced past this batch) while the
    // caller computes on this one. The high-water mark keeps rows from
    // being requested twice within a range.
    const int64_t cap =
        prefetch_batches_ * static_cast<int64_t>(target_batch_rows_);
    int64_t row_begin = 0;
    const int64_t rows = RunWindow(next_pos_, end_pos, cap, &row_begin);
    if (rows > 0) {
      const int64_t from = std::max(prefetch_water_, row_begin);
      const int64_t window_end = row_begin + rows;
      if (window_end > from) {
        storage::PageCursor cursor(&rel_->s, pool_);
        cursor.SetPrefetcher(prefetcher_);
        cursor.PrefetchRows(from, window_end - from);
        prefetch_water_ = window_end;
      }
    }
  }

  if (total == 0) {
    // All collected rids had no matching S tuples; emit an empty batch so
    // callers see a consistent stream (they typically skip it).
    out->s_rows.num_rows = 0;
    out->s_rows.num_keys = rel_->s.schema().num_keys;
    out->s_rows.keys.clear();
    out->s_rows.feats.Resize(0, rel_->s.schema().num_feats);
    return true;
  }

  storage::PageCursor cursor(&rel_->s, pool_);
  if (contiguous) {
    int64_t first_start = -1;
    for (const auto& g : out->groups) {
      if (g.count > 0) {
        first_start = idx.StartOf(g.rid);
        break;
      }
    }
    status_ = cursor.ReadRows(first_start, total, &out->s_rows);
    return status_.ok();
  }

  // Permuted order: assemble the batch group by group.
  const auto& schema = rel_->s.schema();
  out->s_rows.num_rows = total;
  out->s_rows.num_keys = schema.num_keys;
  out->s_rows.start_row = -1;
  out->s_rows.keys.resize(total * schema.num_keys);
  out->s_rows.feats.Resize(total, schema.num_feats);
  for (const auto& g : out->groups) {
    if (g.count == 0) continue;
    status_ = cursor.ReadRows(idx.StartOf(g.rid), g.count, &scratch_);
    if (!status_.ok()) return false;
    std::memcpy(out->s_rows.keys.data() + g.offset * schema.num_keys,
                scratch_.keys.data(),
                sizeof(int64_t) * g.count * schema.num_keys);
    std::memcpy(out->s_rows.feats.Row(g.offset).data(), scratch_.feats.data(),
                sizeof(double) * g.count * schema.num_feats);
  }
  return true;
}

}  // namespace factorml::join

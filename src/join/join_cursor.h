#ifndef FACTORML_JOIN_JOIN_CURSOR_H_
#define FACTORML_JOIN_JOIN_CURSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// One RID1 group inside a JoinBatch: the S rows at [offset, offset+count)
/// of the batch all join with attribute tuple `rid` of R1.
struct JoinGroup {
  int64_t rid = 0;
  size_t offset = 0;
  size_t count = 0;
};

/// A unit of streamed join input. `s_rows.feats` holds [Y?, XS]; the FK
/// values of every row are in `s_rows.keys`; `groups` partitions the rows
/// by their R1 rid so factorized trainers can reuse per-R1-tuple work.
struct JoinBatch {
  storage::RowBatch s_rows;
  std::vector<JoinGroup> groups;
};

/// Streams the PK/FK join without materializing it: iterates over R1 rids
/// (in natural or caller-permuted order, the paper's per-epoch key
/// permutation for SGD) and reads each rid's run of matching S rows through
/// the buffer pool. This is the access pattern of S-GMM/F-GMM/S-NN/F-NN
/// (Fig. 1(b), 1(c), Fig. 2).
///
/// Like TableScanner, this is a thin grouping/row-decoding shim over the
/// unified I/O cursor plane (storage::PageCursor): every S page touch is
/// delegated there, and with a storage::Prefetcher attached the cursor
/// double-buffers natural-order scans — the pages of the next batch's runs
/// are landed asynchronously while the caller computes on the current one.
class JoinCursor {
 public:
  /// Batches target at least `target_batch_rows` S rows (whole rid groups;
  /// a single huge group may exceed the target).
  JoinCursor(const NormalizedRelations* rel, storage::BufferPool* pool,
             size_t target_batch_rows);

  /// Attaches the async prefetch plane (natural order only — a permuted
  /// rid order makes upcoming pages data-dependent and is the mini-batch
  /// plane's sequential path anyway). Residency-only: groups, decoded rows
  /// and demand read order are unchanged by any prefetch schedule.
  void EnablePrefetch(storage::Prefetcher* prefetcher, int64_t depth_batches);

  /// Asynchronously lands the S pages of the head of rid positions
  /// [begin, end) — at most `depth_batches` target batches' worth of rows.
  /// Used by the morsel drivers to overlap the next scheduled FK1-run
  /// chunk's reads with the current chunk's compute. No-op without
  /// EnablePrefetch or under a permuted rid order.
  void PrefetchPositionRange(int64_t begin, int64_t end);

  /// Sets the R1 rid visit order for subsequent passes. Must be a
  /// permutation of 0..nR1-1; an empty vector restores natural order.
  void SetRidOrder(std::vector<int64_t> order);

  /// Restricts the cursor to positions [begin, end) of the current rid
  /// order (the morsel of one parallel worker: whole FK1-rid runs, so the
  /// factorized per-R-tuple reuse is preserved within the subrange). The
  /// full cursor is [0, num_rids). Also repositions to `begin`.
  void SetPositionRange(int64_t begin, int64_t end);

  /// Restarts at the first rid of the current order (and position range).
  void Reset();

  /// Fills the next batch; returns false at end of pass or error.
  bool Next(JoinBatch* out);

  const Status& status() const { return status_; }

 private:
  const NormalizedRelations* rel_;
  storage::BufferPool* pool_;
  size_t target_batch_rows_;
  std::vector<int64_t> order_;  // empty = natural
  int64_t begin_pos_ = 0;       // first position of this cursor's subrange
  int64_t end_pos_ = -1;        // one past the last position; -1 = all
  int64_t next_pos_ = 0;        // position within the rid order
  Status status_;
  storage::RowBatch scratch_;
  storage::Prefetcher* prefetcher_ = nullptr;
  int64_t prefetch_batches_ = 0;
  int64_t prefetch_water_ = 0;  // S rows at/after this mark not yet prefetched

  /// The contiguous S row window of natural-order positions [begin, end):
  /// rows [*row_begin, *row_begin + returned), capped at `cap` rows.
  /// Returns 0 (row_begin untouched) when the positions hold no rows.
  int64_t RunWindow(int64_t begin, int64_t end, int64_t cap,
                    int64_t* row_begin) const;
};

}  // namespace factorml::join

#endif  // FACTORML_JOIN_JOIN_CURSOR_H_

#ifndef FACTORML_JOIN_JOIN_CURSOR_H_
#define FACTORML_JOIN_JOIN_CURSOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// One RID1 group inside a JoinBatch: the S rows at [offset, offset+count)
/// of the batch all join with attribute tuple `rid` of R1.
struct JoinGroup {
  int64_t rid = 0;
  size_t offset = 0;
  size_t count = 0;
};

/// A unit of streamed join input. `s_rows.feats` holds [Y?, XS]; the FK
/// values of every row are in `s_rows.keys`; `groups` partitions the rows
/// by their R1 rid so factorized trainers can reuse per-R1-tuple work.
struct JoinBatch {
  storage::RowBatch s_rows;
  std::vector<JoinGroup> groups;
};

/// Streams the PK/FK join without materializing it: iterates over R1 rids
/// (in natural or caller-permuted order, the paper's per-epoch key
/// permutation for SGD) and reads each rid's run of matching S rows through
/// the buffer pool. This is the access pattern of S-GMM/F-GMM/S-NN/F-NN
/// (Fig. 1(b), 1(c), Fig. 2).
class JoinCursor {
 public:
  /// Batches target at least `target_batch_rows` S rows (whole rid groups;
  /// a single huge group may exceed the target).
  JoinCursor(const NormalizedRelations* rel, storage::BufferPool* pool,
             size_t target_batch_rows);

  /// Sets the R1 rid visit order for subsequent passes. Must be a
  /// permutation of 0..nR1-1; an empty vector restores natural order.
  void SetRidOrder(std::vector<int64_t> order);

  /// Restricts the cursor to positions [begin, end) of the current rid
  /// order (the morsel of one parallel worker: whole FK1-rid runs, so the
  /// factorized per-R-tuple reuse is preserved within the subrange). The
  /// full cursor is [0, num_rids). Also repositions to `begin`.
  void SetPositionRange(int64_t begin, int64_t end);

  /// Restarts at the first rid of the current order (and position range).
  void Reset();

  /// Fills the next batch; returns false at end of pass or error.
  bool Next(JoinBatch* out);

  const Status& status() const { return status_; }

 private:
  const NormalizedRelations* rel_;
  storage::BufferPool* pool_;
  size_t target_batch_rows_;
  std::vector<int64_t> order_;  // empty = natural
  int64_t begin_pos_ = 0;       // first position of this cursor's subrange
  int64_t end_pos_ = -1;        // one past the last position; -1 = all
  int64_t next_pos_ = 0;        // position within the rid order
  Status status_;
  storage::RowBatch scratch_;
};

}  // namespace factorml::join

#endif  // FACTORML_JOIN_JOIN_CURSOR_H_

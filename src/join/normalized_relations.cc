#include "join/normalized_relations.h"

namespace factorml::join {

Status NormalizedRelations::Validate() const {
  if (attrs.empty()) {
    return Status::InvalidArgument("no attribute tables");
  }
  if (s.schema().num_keys != 1 + attrs.size()) {
    return Status::InvalidArgument(
        "fact table must have 1 + q key columns (SID, FK1..FKq)");
  }
  if (s.schema().num_feats < (has_target ? 2u : 1u)) {
    return Status::InvalidArgument("fact table has no features");
  }
  for (const auto& a : attrs) {
    if (a.schema().num_keys != 1) {
      return Status::InvalidArgument(
          "attribute tables must have exactly one key column");
    }
    if (a.schema().num_feats == 0) {
      return Status::InvalidArgument("attribute table has no features");
    }
    if (a.num_rows() == 0) {
      return Status::InvalidArgument("attribute table is empty");
    }
  }
  return Status::OK();
}

}  // namespace factorml::join

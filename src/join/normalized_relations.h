#ifndef FACTORML_JOIN_NORMALIZED_RELATIONS_H_
#define FACTORML_JOIN_NORMALIZED_RELATIONS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "join/fk_index.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// A normalized schema instance in the paper's setting:
///
///   S (SID, [Y,] XS, FK1, ..., FKq)   — the fact table,
///   Ri(RIDi, XRi), i = 1..q           — attribute tables.
///
/// Physical conventions:
///  * S key columns are [SID, FK1, ..., FKq] (so num_keys = 1 + q);
///  * when `has_target` is set, S feature column 0 is the learning target Y
///    and columns 1..dS are XS; otherwise all feature columns are XS;
///  * S is clustered by FK1 and `fk1_index` maps each RID1 to its run of
///    matching S rows (the binary-join case of the paper is q = 1).
///
/// The joined feature vector (table T of the paper) is the concatenation
/// [XS | XR1 | ... | XRq] with Y carried separately.
struct NormalizedRelations {
  storage::Table s;
  std::vector<storage::Table> attrs;
  bool has_target = false;
  FkIndex fk1_index;

  NormalizedRelations(storage::Table s_table,
                      std::vector<storage::Table> attr_tables, bool target)
      : s(std::move(s_table)),
        attrs(std::move(attr_tables)),
        has_target(target) {}

  NormalizedRelations(NormalizedRelations&&) = default;
  NormalizedRelations& operator=(NormalizedRelations&&) = default;

  size_t num_joins() const { return attrs.size(); }

  /// Feature dimensions per the paper's notation.
  size_t ds() const { return s.schema().num_feats - (has_target ? 1 : 0); }
  size_t dr(size_t i) const { return attrs[i].schema().num_feats; }
  size_t total_dims() const {
    size_t d = ds();
    for (const auto& a : attrs) d += a.schema().num_feats;
    return d;
  }

  /// Key column of S that carries FKi (SID is key column 0).
  size_t FkKeyIndex(size_t i) const { return 1 + i; }

  /// Offset of relation i's features inside the joined vector; relation 0
  /// is S itself.
  size_t FeatureOffset(size_t table_idx) const {
    size_t off = ds();
    for (size_t i = 0; i + 1 < table_idx; ++i) off += dr(i);
    return table_idx == 0 ? 0 : off;
  }

  /// Builds `fk1_index`; requires S clustered by FK1.
  Status BuildIndex(storage::BufferPool* pool) {
    if (attrs.empty()) {
      return Status::InvalidArgument("at least one attribute table required");
    }
    return fk1_index.Build(s, pool, FkKeyIndex(0), attrs[0].num_rows());
  }

  /// Sanity checks on schema shape (key counts, non-empty features).
  Status Validate() const;
};

}  // namespace factorml::join

#endif  // FACTORML_JOIN_NORMALIZED_RELATIONS_H_

#include "join/batch_plan.h"

#include "common/rng.h"

namespace factorml::join {

std::vector<BatchRanges> PlanGroupBatches(
    const FkIndex& index, size_t target_rows,
    const std::vector<int64_t>* rid_order) {
  FML_CHECK_GT(target_rows, 0u);
  const int64_t num_rids = index.num_rids();
  std::vector<BatchRanges> plan;
  int64_t pos = 0;
  while (pos < num_rids) {
    BatchRanges batch;
    while (pos < num_rids &&
           batch.total_rows < static_cast<int64_t>(target_rows)) {
      const int64_t rid =
          rid_order == nullptr ? pos : (*rid_order)[static_cast<size_t>(pos)];
      const int64_t count = index.CountOf(rid);
      if (count > 0) {
        const int64_t start = index.StartOf(rid);
        if (!batch.ranges.empty() &&
            batch.ranges.back().start + batch.ranges.back().count == start) {
          batch.ranges.back().count += count;
        } else {
          batch.ranges.push_back(RowRange{start, count});
        }
        batch.total_rows += count;
      }
      ++pos;
    }
    if (batch.total_rows > 0) plan.push_back(std::move(batch));
  }
  return plan;
}

std::vector<int64_t> PermutedRids(int64_t num_rids, uint64_t seed, int epoch) {
  std::vector<int64_t> order(static_cast<size_t>(num_rids));
  for (int64_t i = 0; i < num_rids; ++i) order[static_cast<size_t>(i)] = i;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(epoch) + 1);
  rng.Shuffle(&order);
  return order;
}

}  // namespace factorml::join

#ifndef FACTORML_JOIN_BATCH_PLAN_H_
#define FACTORML_JOIN_BATCH_PLAN_H_

#include <cstdint>
#include <vector>

#include "join/fk_index.h"

namespace factorml::join {

/// A contiguous run of fact-table rows.
struct RowRange {
  int64_t start = 0;
  int64_t count = 0;
};

/// One mini-batch worth of S rows, expressed as row ranges of the
/// (FK1-clustered) fact table. Ranges of adjacent rid groups are merged,
/// so in natural rid order every batch is a single range.
struct BatchRanges {
  std::vector<RowRange> ranges;
  int64_t total_rows = 0;
};

/// Splits the fact table into mini-batches of whole FK1-rid groups,
/// accumulating groups until `target_rows` is reached (a single oversized
/// group may exceed it). `rid_order`, when non-null, gives the visit order
/// (the paper's per-epoch permutation of R's keys for SGD; Sec. VI).
///
/// This plan is shared by all three NN trainers: the materialized trainer
/// reads table T by these row ranges (T preserves S's row order) while the
/// streaming/factorized trainers consume the identical batches from
/// JoinCursor — guaranteeing all algorithms perform the same gradient
/// updates, which is what makes their outputs comparable exactly.
std::vector<BatchRanges> PlanGroupBatches(const FkIndex& index,
                                          size_t target_rows,
                                          const std::vector<int64_t>* rid_order);

/// Deterministic per-epoch rid permutation shared by the trainers.
std::vector<int64_t> PermutedRids(int64_t num_rids, uint64_t seed, int epoch);

}  // namespace factorml::join

#endif  // FACTORML_JOIN_BATCH_PLAN_H_

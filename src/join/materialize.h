#ifndef FACTORML_JOIN_MATERIALIZE_H_
#define FACTORML_JOIN_MATERIALIZE_H_

#include <string>

#include "common/status.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::join {

/// Computes the projected equi-join
///   T(SID, [Y,] [XS XR1 ... XRq]) <- pi(R1 |><| ... |><| Rq |><| S)
/// and writes it to `out_path` as a table with one key column (SID) and
/// `[Y?] + d` feature columns. This is Line 1 of Algorithm 1 (M-GMM) and
/// the starting point of M-NN; the write I/O it generates — |T| pages — is
/// precisely the materialization cost the F-algorithms avoid.
///
/// `threads` > 1 assembles the joined rows of each scanned batch in
/// parallel (exec/ runtime); the scan and the page appends stay serial, so
/// the output file and I/O counts are identical for any thread count.
Result<storage::Table> MaterializeJoin(const NormalizedRelations& rel,
                                       storage::BufferPool* pool,
                                       const std::string& out_path,
                                       int threads = 1);

}  // namespace factorml::join

#endif  // FACTORML_JOIN_MATERIALIZE_H_

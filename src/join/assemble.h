#ifndef FACTORML_JOIN_ASSEMBLE_H_
#define FACTORML_JOIN_ASSEMBLE_H_

#include <cstring>
#include <vector>

#include "join/attribute_view.h"
#include "join/normalized_relations.h"
#include "storage/table.h"

namespace factorml::join {

/// Copies the joined feature vector [XS | XR1 | ... | XRq] of row `r` of a
/// streamed S batch into `out` (length rel.total_dims()), skipping the
/// target column when present. This is the "join on the fly" concatenation
/// performed by the S-algorithms for every tuple — pure data movement, no
/// floating-point work, but repeated for every fact tuple, which is the
/// redundancy the F-algorithms avoid.
inline void AssembleJoinedRow(const NormalizedRelations& rel,
                              const storage::RowBatch& s_rows, size_t r,
                              const std::vector<AttributeTableView>& views,
                              double* out) {
  const size_t y_off = rel.has_target ? 1 : 0;
  const size_t ds = rel.ds();
  std::memcpy(out, s_rows.feats.Row(r).data() + y_off, sizeof(double) * ds);
  size_t off = ds;
  const int64_t* keys = s_rows.KeysOf(r);
  for (size_t i = 0; i < views.size(); ++i) {
    const auto xr = views[i].FeaturesOf(keys[rel.FkKeyIndex(i)]);
    std::memcpy(out + off, xr.data(), sizeof(double) * xr.size());
    off += xr.size();
  }
}

}  // namespace factorml::join

#endif  // FACTORML_JOIN_ASSEMBLE_H_

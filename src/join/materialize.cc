#include "join/materialize.h"

#include <cstring>
#include <vector>

#include "exec/parallel_for.h"
#include "join/attribute_view.h"
#include "la/matrix.h"

namespace factorml::join {

Result<storage::Table> MaterializeJoin(const NormalizedRelations& rel,
                                       storage::BufferPool* pool,
                                       const std::string& out_path,
                                       int threads) {
  FML_RETURN_IF_ERROR(rel.Validate());

  // Attribute tables are the build side of the hash join: load them
  // resident (their pages are read once, through the pool).
  std::vector<AttributeTableView> views(rel.num_joins());
  for (size_t i = 0; i < rel.num_joins(); ++i) {
    FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
  }

  const size_t s_feats = rel.s.schema().num_feats;  // [Y?] + XS
  size_t t_feats = s_feats;
  for (const auto& v : views) t_feats += v.num_feats();

  storage::Schema t_schema{/*num_keys=*/1, /*num_feats=*/t_feats};
  FML_ASSIGN_OR_RETURN(storage::Table t,
                       storage::Table::Create(out_path, t_schema));

  const int nw = exec::EffectiveThreads(threads);

  // Join-scan pipeline: the S batch is read serially through the pool,
  // rows are assembled (probe + concatenate) in parallel over row morsels,
  // and the page appends stay serial — the write path of the heap file is
  // inherently ordered. Pure data movement, so op counts are unaffected.
  la::Matrix rows_buf;
  std::vector<Status> worker_status(static_cast<size_t>(nw));
  storage::TableScanner scanner(&rel.s, pool, 4096);
  storage::RowBatch batch;
  while (scanner.Next(&batch)) {
    const size_t b = batch.num_rows;
    if (b == 0) continue;
    rows_buf.Resize(b, t_feats);
    std::fill(worker_status.begin(), worker_status.end(), Status::OK());
    exec::ParallelFor(
        nw, static_cast<int64_t>(b), /*align=*/1,
        [&](exec::Range range, int w) {
          for (int64_t r = range.begin; r < range.end; ++r) {
            const int64_t* keys = batch.KeysOf(static_cast<size_t>(r));
            double* row = rows_buf.Row(static_cast<size_t>(r)).data();
            std::memcpy(row, batch.feats.Row(static_cast<size_t>(r)).data(),
                        sizeof(double) * s_feats);
            size_t off = s_feats;
            for (size_t i = 0; i < views.size(); ++i) {
              const int64_t rid = keys[rel.FkKeyIndex(i)];
              if (rid < 0 || rid >= views[i].num_rows()) {
                worker_status[static_cast<size_t>(w)] =
                    Status::FailedPrecondition("dangling foreign key in join");
                return;
              }
              const auto feats = views[i].FeaturesOf(rid);
              std::memcpy(row + off, feats.data(),
                          sizeof(double) * feats.size());
              off += feats.size();
            }
          }
        });
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));
    for (size_t r = 0; r < b; ++r) {
      const int64_t sid = batch.KeysOf(r)[0];
      FML_RETURN_IF_ERROR(t.Append(&sid, rows_buf.Row(r).data()));
    }
  }
  FML_RETURN_IF_ERROR(scanner.status());
  FML_RETURN_IF_ERROR(t.Finish());
  return t;
}

}  // namespace factorml::join

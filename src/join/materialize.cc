#include "join/materialize.h"

#include <cstring>
#include <vector>

#include "join/attribute_view.h"

namespace factorml::join {

Result<storage::Table> MaterializeJoin(const NormalizedRelations& rel,
                                       storage::BufferPool* pool,
                                       const std::string& out_path) {
  FML_RETURN_IF_ERROR(rel.Validate());

  // Attribute tables are the build side of the hash join: load them
  // resident (their pages are read once, through the pool).
  std::vector<AttributeTableView> views(rel.num_joins());
  for (size_t i = 0; i < rel.num_joins(); ++i) {
    FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
  }

  const size_t s_feats = rel.s.schema().num_feats;  // [Y?] + XS
  size_t t_feats = s_feats;
  for (const auto& v : views) t_feats += v.num_feats();

  storage::Schema t_schema{/*num_keys=*/1, /*num_feats=*/t_feats};
  FML_ASSIGN_OR_RETURN(storage::Table t,
                       storage::Table::Create(out_path, t_schema));

  std::vector<double> row(t_feats);
  storage::TableScanner scanner(&rel.s, pool, 4096);
  storage::RowBatch batch;
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const int64_t* keys = batch.KeysOf(r);
      std::memcpy(row.data(), batch.feats.Row(r).data(),
                  sizeof(double) * s_feats);
      size_t off = s_feats;
      for (size_t i = 0; i < views.size(); ++i) {
        const int64_t rid = keys[rel.FkKeyIndex(i)];
        if (rid < 0 || rid >= views[i].num_rows()) {
          return Status::FailedPrecondition("dangling foreign key in join");
        }
        const auto feats = views[i].FeaturesOf(rid);
        std::memcpy(row.data() + off, feats.data(),
                    sizeof(double) * feats.size());
        off += feats.size();
      }
      const int64_t sid = keys[0];
      FML_RETURN_IF_ERROR(t.Append(&sid, row.data()));
    }
  }
  FML_RETURN_IF_ERROR(scanner.status());
  FML_RETURN_IF_ERROR(t.Finish());
  return t;
}

}  // namespace factorml::join

#include "join/fk_index.h"

namespace factorml::join {

Status FkIndex::Build(const storage::Table& s, storage::BufferPool* pool,
                      size_t fk_key_idx, int64_t num_rids) {
  if (fk_key_idx >= s.schema().num_keys) {
    return Status::InvalidArgument("fk key index out of range");
  }
  if (num_rids <= 0) {
    return Status::InvalidArgument("num_rids must be positive");
  }
  fk_key_idx_ = fk_key_idx;
  starts_.assign(num_rids, 0);
  counts_.assign(num_rids, 0);
  total_rows_ = s.num_rows();

  storage::TableScanner scanner(&s, pool, 4096);
  storage::RowBatch batch;
  int64_t prev_fk = -1;
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const int64_t fk = batch.KeysOf(r)[fk_key_idx];
      if (fk < 0 || fk >= num_rids) {
        return Status::FailedPrecondition("dangling foreign key: " +
                                          std::to_string(fk));
      }
      if (fk < prev_fk) {
        return Status::FailedPrecondition(
            "fact table is not clustered by the foreign key");
      }
      if (counts_[fk] == 0) {
        starts_[fk] = batch.start_row + static_cast<int64_t>(r);
      }
      counts_[fk]++;
      prev_fk = fk;
    }
  }
  return scanner.status();
}

namespace {

std::vector<int64_t> RunLengths(const FkIndex& index) {
  std::vector<int64_t> run_lengths(static_cast<size_t>(index.num_rids()));
  for (int64_t rid = 0; rid < index.num_rids(); ++rid) {
    run_lengths[static_cast<size_t>(rid)] = index.CountOf(rid);
  }
  return run_lengths;
}

}  // namespace

std::vector<exec::Range> PartitionFk1Runs(const FkIndex& index, int parts) {
  const std::vector<int64_t> run_lengths = RunLengths(index);
  return exec::PartitionWeighted(run_lengths.data(), index.num_rids(), parts);
}

std::vector<exec::Range> ChunkFk1Runs(const FkIndex& index,
                                      int64_t morsel_rows) {
  const std::vector<int64_t> run_lengths = RunLengths(index);
  return exec::SplitWeightedChunks(run_lengths.data(), index.num_rids(),
                                   morsel_rows);
}

}  // namespace factorml::join

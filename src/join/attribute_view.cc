#include "join/attribute_view.h"

#include <cstring>

namespace factorml::join {

Status AttributeTableView::Load(const storage::Table& table,
                                storage::BufferPool* pool) {
  if (table.schema().num_keys != 1) {
    return Status::InvalidArgument(
        "attribute table must have exactly one key column (RID)");
  }
  const int64_t n = table.num_rows();
  feats_.Resize(static_cast<size_t>(n), table.schema().num_feats);

  storage::TableScanner scanner(&table, pool, 4096);
  storage::RowBatch batch;
  int64_t expected_rid = 0;
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const int64_t rid = batch.KeysOf(r)[0];
      if (rid != expected_rid) {
        return Status::FailedPrecondition(
            "attribute table RIDs are not dense-sequential");
      }
      std::memcpy(feats_.Row(static_cast<size_t>(rid)).data(),
                  batch.feats.Row(r).data(),
                  sizeof(double) * feats_.cols());
      ++expected_rid;
    }
  }
  FML_RETURN_IF_ERROR(scanner.status());
  if (expected_rid != n) {
    return Status::Internal("attribute table row count mismatch");
  }
  return Status::OK();
}

}  // namespace factorml::join

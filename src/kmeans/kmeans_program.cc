// Lloyd's k-means as a core/pipeline ModelProgram: one "assign" full pass
// per iteration computes the nearest centroid, the inertia and the
// per-cluster statistics; EndPass recomputes the centroids. The factorized
// path reuses the F-GMM centered-cache idea in its purest form: squared
// Euclidean distance decomposes over the join's column blocks with no
// cross terms, so ||x - mu_c||^2 = ||xs - mu_c,S||^2 + sum_i D_i[c][rid_i]
// where D_i[c][rid] = ||x_Ri - mu_c,Ri||^2 is computed once per attribute
// tuple per pass and reused for every matching fact tuple. Centroid
// updates factorize like F-GMM's mean step: per-rid assignment mass
// replaces per-fact-tuple feature sums for the attribute slices.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "kmeans/kmeans.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace factorml::kmeans {

namespace {

using core::pipeline::DenseBlock;
using core::pipeline::FactorizedBlock;
using core::pipeline::PipelineContext;
using la::Matrix;

/// Squared distance between x and mu (length d), with the cost-model
/// charges: d subtractions, d multiplies, d adds.
inline double SquaredDistance(const double* x, const double* mu, size_t d) {
  double dist = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = x[j] - mu[j];
    dist += diff * diff;
  }
  CountSubs(d);
  CountMults(d);
  CountAdds(d);
  return dist;
}

class KmeansProgram final : public core::pipeline::ModelProgram {
 public:
  explicit KmeansProgram(const KmeansOptions& options) : opt_(options) {}

  const char* Name() const override { return "KMEANS"; }
  const char* TempStem() const override { return "kmeans"; }
  uint32_t Capabilities() const override {
    return core::pipeline::kFullPass | core::pipeline::kFactorized;
  }
  int MaxIterations() const override { return opt_.max_iters; }
  const char* PassName(int) const override { return "assign"; }

  Status ValidateOptions(const join::NormalizedRelations& rel) const override {
    if (opt_.num_clusters == 0 ||
        static_cast<int64_t>(opt_.num_clusters) > rel.s.num_rows()) {
      return Status::InvalidArgument(
          "num_clusters must be in [1, num data points]");
    }
    return Status::OK();
  }

  Status Init(const PipelineContext& ctx) override {
    rel_ = ctx.rel;
    factorized_ = ctx.factorized();
    k_ = opt_.num_clusters;
    d_ = rel_->total_dims();
    ds_ = rel_->ds();
    q_ = rel_->num_joins();
    y_off_ = rel_->has_target ? 1 : 0;
    n_ = rel_->s.num_rows();
    attr_offset_.resize(q_);
    for (size_t i = 0; i < q_; ++i) attr_offset_[i] = rel_->FeatureOffset(i + 1);

    // Deterministic seeds: joined rows spread evenly through S — the same
    // initialization rule as GmmInit::kSpreadRows, shared via the pipeline.
    std::vector<int64_t> rows(k_);
    for (size_t c = 0; c < k_; ++c) {
      rows[c] = static_cast<int64_t>(c) * n_ / static_cast<int64_t>(k_);
    }
    FML_ASSIGN_OR_RETURN(model_.centroids,
                         core::pipeline::AssembleJoinedRows(*rel_, ctx.pool,
                                                            rows));
    model_.counts.assign(k_, 0.0);
    prev_inertia_ = std::numeric_limits<double>::infinity();
    return Status::OK();
  }

  Status BeginPass(const PipelineContext& ctx, int, int, int workers) override {
    if (factorized_) {
      // Once per attribute tuple per pass: the per-cluster squared
      // distance of its feature slice (the reusable diagonal block; cf.
      // F-GMM's centered caches, Eq. 20, but with no cross terms).
      dcache_.resize(q_);
      for (size_t i = 0; i < q_; ++i) {
        const Matrix& feats = (*ctx.views)[i].feats();
        const size_t n_ri = feats.rows();
        const size_t dri = feats.cols();
        dcache_[i].Resize(k_, n_ri);
        for (size_t c = 0; c < k_; ++c) {
          const double* mu_slice =
              model_.centroids.Row(c).data() + attr_offset_[i];
          for (size_t rid = 0; rid < n_ri; ++rid) {
            dcache_[i](c, rid) =
                SquaredDistance(feats.Row(rid).data(), mu_slice, dri);
          }
        }
      }
    }
    inertia_sum_ = 0.0;
    counts_.assign(k_, 0.0);
    const size_t slice = factorized_ ? ds_ : d_;
    acc_.resize(static_cast<size_t>(workers));
    if (factorized_) {
      // Rid-span contract: slot w's table-0 assignment mass covers only
      // its morsel's rid span; the merged full-domain gsum_ is allocated
      // here (EndPass clears it) and slots land at their span offset.
      const int64_t n_r0 = static_cast<int64_t>((*ctx.views)[0].feats().rows());
      slot_spans_.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        slot_spans_[static_cast<size_t>(w)] =
            core::pipeline::SlotRidSpan(ctx, w, n_r0);
      }
      gsum_.resize(q_);
      for (size_t i = 0; i < q_; ++i) {
        gsum_[i].Resize(k_, (*ctx.views)[i].feats().rows());
      }
    }
    for (size_t w = 0; w < acc_.size(); ++w) {
      Acc& acc = acc_[w];
      acc.inertia = 0.0;
      acc.counts.assign(k_, 0.0);
      acc.sums.assign(k_ * slice, 0.0);
      if (factorized_) {
        acc.gsum.resize(q_);
        for (size_t i = 0; i < q_; ++i) {
          const size_t n_ri =
              i == 0 ? static_cast<size_t>(slot_spans_[w].size())
                     : (*ctx.views)[i].feats().rows();
          acc.gsum[i].Resize(k_, n_ri);
        }
      }
    }
    return Status::OK();
  }

  void AccumulateDense(int, int worker, const DenseBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    if (block.strips != nullptr) {
      AccumulateDenseStrips(worker, block);
      return;
    }
    for (size_t r = 0; r < block.num_rows; ++r) {
      const double* x = block.X(r);
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k_; ++c) {
        const double dist =
            SquaredDistance(x, model_.centroids.Row(c).data(), d_);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      acc.inertia += best_dist;
      acc.counts[best] += 1.0;
      la::Axpy(1.0, x, acc.sums.data() + best * d_, d_);
      CountAdds(2);
    }
  }

  /// Batched (--kernels=simd) twin of the dense row loop: one distance
  /// block per centroid via dist_strip, then a per-row argmin over the
  /// block with the same strict-< first-wins tie rule as the row path.
  /// The per-column scatter into sums visits each accumulator entry in
  /// the same row order as the scalar loop. Charges are the exact per-row
  /// op counts.
  void AccumulateDenseStrips(int worker, const DenseBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::ColumnStrips& st = *block.strips;
    const la::Kernels& kern = la::Active();
    std::vector<const double*> cols(d_);
    Matrix dist(k_, st.strip_rows);
    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      for (size_t j = 0; j < d_; ++j) cols[j] = block.StripX(s, j);
      for (size_t c = 0; c < k_; ++c) {
        kern.dist_strip(cols.data(), d_, rows, model_.centroids.Row(c).data(),
                        dist.Row(c).data());
      }
      CountSubs(rows * k_ * d_);
      CountMults(rows * k_ * d_);
      CountAdds(rows * k_ * d_);
      for (size_t r = 0; r < rows; ++r) {
        size_t best = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k_; ++c) {
          const double dc = dist(c, r);
          if (dc < best_dist) {
            best_dist = dc;
            best = c;
          }
        }
        acc.inertia += best_dist;
        acc.counts[best] += 1.0;
        double* sum = acc.sums.data() + best * d_;
        for (size_t j = 0; j < d_; ++j) sum[j] += cols[j][r];
      }
      CountMults(rows * d_);  // the per-row Axpy(1.0, x) stream
      CountAdds(rows * (d_ + 2));
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  /// Factorized twin: the S-slice distances come from dist_strip over the
  /// strip-packed S columns; the cached per-attribute-tuple distances land
  /// on the distance block through gather_add_strip over the FK rid
  /// columns (i-ascending per element, so the totals — and hence the
  /// argmin — are bit-identical to the scalar loop), and the per-rid
  /// assignment mass scatters through scatter_add_strip on flattened
  /// (best, rid) indices in row order. Only the argmin/inertia/sums stay
  /// row-at-a-time. Charges are the exact per-row op counts.
  void AccumulateFactorizedStrips(int worker, const FactorizedBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::RowBatch& s_rows = *block.s_rows;
    const storage::ColumnStrips& st = *block.s_strips;
    const la::Kernels& kern = la::Active();
    std::vector<const double*> cols(ds_);
    Matrix dist(k_, st.strip_rows);
    // FK rid columns, one per attribute table (uncharged index movement,
    // the strip twin of the per-row KeysOf reads).
    std::vector<std::vector<int64_t>> ridx(q_);
    for (size_t i = 0; i < q_; ++i) {
      ridx[i].resize(s_rows.num_rows);
      for (size_t r = 0; r < s_rows.num_rows; ++r) {
        ridx[i][r] = s_rows.KeysOf(r)[rel_->FkKeyIndex(i)];
      }
    }
    std::vector<size_t> best(st.strip_rows);
    std::vector<int64_t> idx(st.strip_rows);
    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      const size_t row0 = st.StripStart(s);
      for (size_t j = 0; j < ds_; ++j) cols[j] = st.Col(s, y_off_ + j);
      for (size_t c = 0; c < k_; ++c) {
        kern.dist_strip(cols.data(), ds_, rows, model_.centroids.Row(c).data(),
                        dist.Row(c).data());
        for (size_t i = 0; i < q_; ++i) {
          kern.gather_add_strip(dcache_[i].Row(c).data(),
                                ridx[i].data() + row0, rows,
                                dist.Row(c).data());
        }
      }
      CountSubs(rows * k_ * ds_);
      CountMults(rows * k_ * ds_);
      CountAdds(rows * k_ * ds_);
      CountAdds(rows * k_ * q_);  // the cached per-join distance adds
      for (size_t r = 0; r < rows; ++r) {
        size_t b = 0;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t c = 0; c < k_; ++c) {
          const double dc = dist(c, r);
          if (dc < best_dist) {
            best_dist = dc;
            b = c;
          }
        }
        best[r] = b;
        acc.inertia += best_dist;
        acc.counts[b] += 1.0;
        double* sum = acc.sums.data() + b * ds_;
        for (size_t j = 0; j < ds_; ++j) sum[j] += cols[j][r];
      }
      // Assignment mass per rid: unit-weight scatter on flattened
      // (best, rid) slots, row-ascending like the scalar loop. Table 0
      // flattens by its span-sized slot (rebased rids).
      const exec::Range span0 = slot_spans_[static_cast<size_t>(worker)];
      for (size_t i = 0; i < q_; ++i) {
        const int64_t n_ri = i == 0
                                 ? span0.size()
                                 : static_cast<int64_t>(dcache_[i].cols());
        const int64_t base = i == 0 ? span0.begin : 0;
        for (size_t r = 0; r < rows; ++r) {
          idx[r] = static_cast<int64_t>(best[r]) * n_ri +
                   (ridx[i][row0 + r] - base);
        }
        kern.scatter_add_strip(idx.data(), /*w=*/nullptr, rows,
                               acc.gsum[i].data());
      }
      CountMults(rows * ds_);  // the per-row Axpy(1.0, xs) stream
      CountAdds(rows * ds_);
      CountAdds(rows * (2 + q_));
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  void AccumulateFactorized(int, int worker,
                            const FactorizedBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    if (block.s_strips != nullptr) {
      AccumulateFactorizedStrips(worker, block);
      return;
    }
    const storage::RowBatch& s_rows = *block.s_rows;
    for (size_t r = 0; r < s_rows.num_rows; ++r) {
      const double* xs = s_rows.feats.Row(r).data() + y_off_;
      const int64_t* keys = s_rows.KeysOf(r);
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k_; ++c) {
        // Block-separable distance: the S slice plus one cached scalar
        // per attribute table.
        double dist = SquaredDistance(xs, model_.centroids.Row(c).data(),
                                      ds_);
        for (size_t i = 0; i < q_; ++i) {
          dist += dcache_[i](c, keys[rel_->FkKeyIndex(i)]);
        }
        CountAdds(q_);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      acc.inertia += best_dist;
      acc.counts[best] += 1.0;
      la::Axpy(1.0, xs, acc.sums.data() + best * ds_, ds_);
      const int64_t base0 = slot_spans_[static_cast<size_t>(worker)].begin;
      for (size_t i = 0; i < q_; ++i) {
        const int64_t rid = keys[rel_->FkKeyIndex(i)];
        acc.gsum[i](best, static_cast<size_t>(i == 0 ? rid - base0 : rid)) +=
            1.0;
      }
      CountAdds(2 + q_);
    }
  }

  void MergeWorker(int, int worker) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    inertia_sum_ += acc.inertia;
    for (size_t c = 0; c < k_; ++c) counts_[c] += acc.counts[c];
    if (sums_.size() != acc.sums.size()) sums_.assign(acc.sums.size(), 0.0);
    for (size_t j = 0; j < sums_.size(); ++j) sums_[j] += acc.sums[j];
    if (factorized_) {
      // Table 0's span-sized slot adds into its span's columns of the
      // full-domain merged matrix; further tables add full-domain.
      const auto off0 = static_cast<size_t>(
          slot_spans_[static_cast<size_t>(worker)].begin);
      for (size_t i = 0; i < q_; ++i) {
        if (i == 0) {
          const size_t len = acc.gsum[0].cols();
          for (size_t c = 0; c < k_; ++c) {
            double* dst = gsum_[0].Row(c).data() + off0;
            const double* src = acc.gsum[0].Row(c).data();
            for (size_t j = 0; j < len; ++j) dst[j] += src[j];
          }
        } else {
          gsum_[i].Add(acc.gsum[i]);
        }
      }
    }
  }

  void VisitSlotState(
      int, int slot,
      const std::function<void(double*, size_t)>& visit) override {
    // Shard-plane wire seam: one slot's assignment statistics (and, on
    // the factorized path, its per-rid assignment mass).
    Acc& acc = acc_[static_cast<size_t>(slot)];
    visit(&acc.inertia, 1);
    visit(acc.counts.data(), acc.counts.size());
    visit(acc.sums.data(), acc.sums.size());
    if (factorized_) {
      for (size_t i = 0; i < q_; ++i) {
        visit(acc.gsum[i].data(), acc.gsum[i].rows() * acc.gsum[i].cols());
      }
    }
  }

  Status EndPass(const PipelineContext& ctx, int, int) override {
    // Lloyd update; empty clusters keep their previous centroid (a
    // deterministic rule shared by all strategies). Reported as the
    // "update" phase next to the "assign" pass time.
    core::PhaseScope phase(ctx.report, "update");
    if (!factorized_) {
      for (size_t c = 0; c < k_; ++c) {
        if (counts_[c] == 0.0) continue;
        const double inv = 1.0 / counts_[c];
        for (size_t j = 0; j < d_; ++j) {
          model_.centroids(c, j) = sums_[c * d_ + j] * inv;
        }
        CountMults(d_);
      }
    } else {
      for (size_t c = 0; c < k_; ++c) {
        if (counts_[c] == 0.0) continue;
        const double inv = 1.0 / counts_[c];
        double* mu_row = model_.centroids.Row(c).data();
        for (size_t j = 0; j < ds_; ++j) mu_row[j] = sums_[c * ds_ + j] * inv;
        CountMults(ds_);
        // Attribute slices from per-rid assignment mass — F-GMM's
        // factorized mean update (Eq. 22) with hard assignments.
        for (size_t i = 0; i < q_; ++i) {
          const Matrix& feats = (*ctx.views)[i].feats();
          const size_t dri = feats.cols();
          double* slice = mu_row + attr_offset_[i];
          std::fill(slice, slice + dri, 0.0);
          for (size_t rid = 0; rid < feats.rows(); ++rid) {
            const double g = gsum_[i](c, rid);
            if (g == 0.0) continue;
            la::Axpy(g, feats.Row(rid).data(), slice, dri);
          }
          for (size_t j = 0; j < dri; ++j) slice[j] *= inv;
          CountMults(dri);
        }
      }
      gsum_.clear();
    }
    sums_.clear();
    model_.counts = counts_;
    model_.inertia = inertia_sum_;
    return Status::OK();
  }

  Result<bool> EndIteration(const PipelineContext&, int) override {
    const bool stop = opt_.tol > 0.0 &&
                      std::isfinite(prev_inertia_) &&
                      std::fabs(inertia_sum_ - prev_inertia_) <
                          opt_.tol * std::fabs(inertia_sum_);
    prev_inertia_ = inertia_sum_;
    return stop;
  }

  double Objective() const override { return model_.inertia; }

  void VisitIterationState(
      const std::function<void(double*, size_t)>& visit) override {
    // Cross-iteration state: centroids, the per-cluster counts and the
    // inertia scalars; dcache_ and the accumulators are rebuilt by the
    // next BeginPass.
    visit(model_.centroids.data(),
          model_.centroids.rows() * model_.centroids.cols());
    visit(model_.counts.data(), model_.counts.size());
    visit(&model_.inertia, 1);
    visit(&inertia_sum_, 1);
    visit(&prev_inertia_, 1);
  }

  KmeansModel&& TakeModel() && { return std::move(model_); }

 private:
  struct Acc {
    double inertia = 0.0;
    std::vector<double> counts;  // k
    std::vector<double> sums;    // k * d (dense) or k * ds (factorized)
    std::vector<Matrix> gsum;    // [i]: k x nRi assignment mass
  };

  KmeansOptions opt_;
  const join::NormalizedRelations* rel_ = nullptr;
  bool factorized_ = false;
  size_t k_ = 0, d_ = 0, ds_ = 0, q_ = 0, y_off_ = 0;
  int64_t n_ = 0;
  std::vector<size_t> attr_offset_;

  KmeansModel model_;
  std::vector<Matrix> dcache_;  // [i]: k x nRi squared slice distances
  std::vector<Acc> acc_;
  /// Table-0 rid span per accumulator slot (the rid-span contract),
  /// refreshed every BeginPass from the strategy's published plan.
  std::vector<exec::Range> slot_spans_;
  double inertia_sum_ = 0.0;
  double prev_inertia_ = 0.0;
  std::vector<double> counts_;
  std::vector<double> sums_;
  std::vector<Matrix> gsum_;
};

}  // namespace

size_t KmeansModel::Assign(const double* x) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.rows(); ++c) {
    double dist = 0.0;
    const double* mu = centroids.Row(c).data();
    for (size_t j = 0; j < centroids.cols(); ++j) {
      const double diff = x[j] - mu[j];
      dist += diff * diff;
    }
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

double KmeansModel::MaxAbsDiff(const KmeansModel& a, const KmeansModel& b) {
  // Centroids only: inertia is a large sum compared with a relative
  // tolerance by the parity tests.
  return la::Matrix::MaxAbsDiff(a.centroids, b.centroids);
}

Result<KmeansModel> TrainKmeans(const join::NormalizedRelations& rel,
                                const KmeansOptions& options,
                                core::Algorithm algorithm,
                                storage::BufferPool* pool,
                                core::TrainReport* report) {
  KmeansProgram program(options);
  core::pipeline::StrategyOptions sopt =
      core::pipeline::LiftStrategyOptions(options);
  if (sopt.shard_backend == "process") {
    sopt.shard_job_family = "kmeans";
    sopt.shard_job_blob = EncodeShardJob(options);
  }
  FML_RETURN_IF_ERROR(
      core::pipeline::RunTraining(rel, algorithm, sopt, &program, pool,
                                  report));
  return std::move(program).TakeModel();
}

std::string EncodeShardJob(const KmeansOptions& options) {
  net::ByteWriter w;
  w.U64(options.num_clusters);
  w.I64(options.max_iters);
  w.F64(options.tol);
  return w.Take();
}

Result<KmeansOptions> DecodeShardJob(const std::string& blob) {
  KmeansOptions options;
  net::ByteReader r(blob);
  uint64_t k = 0;
  int64_t max_iters = 0;
  FML_RETURN_IF_ERROR(r.U64(&k));
  FML_RETURN_IF_ERROR(r.I64(&max_iters));
  FML_RETURN_IF_ERROR(r.F64(&options.tol));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("kmeans shard job: trailing bytes");
  }
  options.num_clusters = k;
  options.max_iters = static_cast<int>(max_iters);
  return options;
}

std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const KmeansOptions& options) {
  return std::make_unique<KmeansProgram>(options);
}

}  // namespace factorml::kmeans

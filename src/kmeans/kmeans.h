#ifndef FACTORML_KMEANS_KMEANS_H_
#define FACTORML_KMEANS_KMEANS_H_

#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/algorithm.h"
#include "core/report.h"
#include "join/normalized_relations.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "storage/buffer_pool.h"

namespace factorml::core::pipeline {
class ModelProgram;
}

namespace factorml::kmeans {

/// Options for Lloyd's k-means over the joined feature vector. All three
/// strategies start from the identical deterministic seeds (joined rows
/// spread through S, like GmmInit::kSpreadRows) and perform the identical
/// assign/update recurrence, so their centroids agree up to floating-point
/// reordering — the paper's exactness property carried to a new model.
struct KmeansOptions {
  size_t num_clusters = 5;    // K
  int max_iters = 10;         // Lloyd iterations
  double tol = 0.0;           // >0: stop when |delta inertia| < tol*|inertia|
  size_t batch_rows = 8192;   // rows per streamed batch
  std::string temp_dir = ".";  // where the M strategy materializes T
  /// Worker threads for the exec/ morsel runtime; 0 = DefaultThreads(),
  /// 1 = the exact serial path.
  int threads = 0;
  /// Full-pass scheduler knobs (strategy plane, see StrategyOptions):
  /// morsel_rows > 0 switches the pass to fixed deterministically numbered
  /// chunks with a chunk-ordered reduction — results then depend on
  /// morsel_rows but not on threads or stealing; steal lets idle workers
  /// take chunks from busy ones (implies chunking).
  int64_t morsel_rows = 0;
  bool steal = false;
  /// Asynchronous double-buffered page prefetch (strategy plane, see
  /// StrategyOptions): overlap the next morsel's page reads with compute.
  /// Residency-only — results are bit-identical either way; prefetch_depth
  /// is the number of batches read ahead per worker.
  bool prefetch = false;
  int prefetch_depth = 2;
  /// Rid-range shards of the full-pass plane (strategy plane, see
  /// StrategyOptions): shards > 1 scans each contiguous chunk span
  /// separately and merges serialized ShardDeltas in shard-id order —
  /// bit-identical to shards = 1 at the same resolved morsel size
  /// (implies chunking, like steal).
  int shards = 1;
  /// Compute-kernel backend (--kernels): kScalar (default) keeps the
  /// seed's bit-identical loops and row-at-a-time decode; kSimd routes
  /// the la/ primitives through the runtime-dispatched vector backend
  /// (AVX2/FMA when available) and the full-pass dense drivers through
  /// the batched column-strip decode. Op counts and page I/O are
  /// identical either way; objectives and params agree to floating-point
  /// reassociation tolerance.
  la::KernelMode kernels = la::KernelMode::kScalar;
  /// Shard execution backend (--shard-backend, see StrategyOptions):
  /// "inproc" (default) keeps the byte-identical in-process driver;
  /// "process" farms shard scans out to factormld worker processes over
  /// length-prefixed socket frames — bit-identical results either way.
  std::string shard_backend = "inproc";
  /// Process-backend liveness deadline per worker, in milliseconds.
  int64_t shard_timeout_ms = 30000;
  /// Process-backend socket family: "unix" (default) or "tcp" loopback.
  std::string shard_transport = "unix";
  /// Explicit factormld binary path; empty = resolve automatically.
  std::string shard_worker_path;
  /// ShardDelta wire encoding (--delta-encoding): "dense" (v1 frames) or
  /// "sparse" (v2 zero-run-length frames, decoded bit-identically).
  std::string delta_encoding = "dense";
  /// Non-empty (--checkpoint-dir): CRC-verified checkpoint/restore of the
  /// iteration state; a resumed run is bit-identical to an uninterrupted
  /// one. Empty = checkpointing off.
  std::string checkpoint_dir;
  /// Iterations between checkpoint writes (--checkpoint-every); 0 = every
  /// iteration when checkpoint_dir is set.
  int64_t checkpoint_every = 0;
};

/// A trained clustering: centroids after the final update, the cluster
/// sizes of the final assignment, and its inertia (sum of squared
/// distances to the assigned centroid — the Lloyd objective).
struct KmeansModel {
  la::Matrix centroids;        // K x d
  std::vector<double> counts;  // K
  double inertia = 0.0;

  size_t num_clusters() const { return centroids.rows(); }
  size_t dims() const { return centroids.cols(); }

  /// Index of the nearest centroid (lowest index wins ties).
  size_t Assign(const double* x) const;

  /// Max absolute centroid difference; used by the M==S==F parity tests.
  static double MaxAbsDiff(const KmeansModel& a, const KmeansModel& b);
};

/// Trains with the chosen execution strategy via core/pipeline. The
/// factorized strategy caches per-attribute-tuple squared distances —
/// squared Euclidean distance is block-separable across the join, so the
/// centered caches of F-GMM carry over with *no* cross terms at all.
Result<KmeansModel> TrainKmeans(const join::NormalizedRelations& rel,
                                const KmeansOptions& options,
                                core::Algorithm algorithm,
                                storage::BufferPool* pool,
                                core::TrainReport* report);

/// Process-shard-backend seam (core/pipeline/shard_rpc.h): serialize /
/// decode the math-relevant KmeansOptions for the JOB frame's family blob
/// and rebuild the identical ModelProgram on a factormld worker.
std::string EncodeShardJob(const KmeansOptions& options);
Result<KmeansOptions> DecodeShardJob(const std::string& blob);
std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const KmeansOptions& options);

}  // namespace factorml::kmeans

#endif  // FACTORML_KMEANS_KMEANS_H_

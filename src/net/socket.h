#ifndef FACTORML_NET_SOCKET_H_
#define FACTORML_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/frame.h"

namespace factorml::net {

/// Writes exactly `len` bytes to a socket, looping on short writes and
/// EINTR. Sends carry MSG_NOSIGNAL so a peer that died mid-conversation
/// surfaces as EPIPE (an IoError the caller handles), never as a
/// process-killing SIGPIPE.
Status SendAll(int fd, const char* data, size_t len);

/// One length-prefixed frame connection over a connected socket: framed
/// sends, an incremental receive buffer, and byte/frame counters in the
/// obs registry (net.bytes_sent/recv, net.frames_sent/recv). Owns the fd.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd) : fd_(fd) {}
  ~FrameConn() { Close(); }
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;
  FrameConn(FrameConn&& other) noexcept { *this = std::move(other); }
  FrameConn& operator=(FrameConn&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      decoder_ = std::move(other.decoder_);
      eof_ = other.eof_;
    }
    return *this;
  }

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// True once the peer closed its end (a worker death is an immediate
  /// EOF, not a timeout).
  bool eof() const { return eof_; }
  void Close();

  Status SendFrame(uint32_t type, const std::string& payload);

  /// Drains whatever the socket has buffered into the frame decoder
  /// without blocking (call after poll() reported readability). Records
  /// EOF; IoError on a hard socket error.
  Status ReadAvailable();

  /// Extracts the next buffered complete frame (never reads the socket).
  Status NextFrame(Frame* frame, bool* got) {
    return decoder_.Next(frame, got);
  }

  /// Blocking receive of one frame, looping read/poll on EINTR and short
  /// reads. timeout_ms < 0 waits forever. Fails with IoError on EOF or
  /// a FailedPrecondition mentioning "timeout" on deadline expiry.
  Status RecvFrame(Frame* frame, int timeout_ms);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
  bool eof_ = false;
};

/// A listening socket for shard workers: a Unix-domain path (default) or
/// TCP on 127.0.0.1 with a kernel-assigned port (--shard-transport=tcp).
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close();  }
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on a Unix-domain socket at `path` (unlinked first).
  Status ListenUnix(const std::string& path);
  /// Binds and listens on 127.0.0.1:0; the chosen port lands in address().
  Status ListenTcpLoopback();

  /// The connect address workers are handed: "unix:<path>" or
  /// "tcp:127.0.0.1:<port>".
  const std::string& address() const { return address_; }

  /// Accepts one connection, waiting at most timeout_ms (-1 = forever).
  Status Accept(FrameConn* conn, int timeout_ms);

  void Close();

 private:
  int fd_ = -1;
  std::string address_;
  std::string unix_path_;
};

/// Connects to an address produced by Listener::address().
Status ConnectAddress(const std::string& address, FrameConn* conn);

/// poll(2) over a set of connections, looping on EINTR against a fixed
/// deadline. Returns the indices (into `conns`) that are readable or
/// hung up; an empty result means the timeout elapsed.
Status PollReadable(const std::vector<FrameConn*>& conns, int timeout_ms,
                    std::vector<size_t>* ready);

}  // namespace factorml::net

#endif  // FACTORML_NET_SOCKET_H_

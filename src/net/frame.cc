#include "net/frame.h"

#include <cstring>

namespace factorml::net {

namespace {
constexpr char kFrameMagic[4] = {'F', 'M', 'L', 'F'};
}  // namespace

std::string EncodeFrame(uint32_t type, const std::string& payload) {
  FML_CHECK_LE(payload.size(), kMaxFramePayload);
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof(kFrameMagic));
  char buf[sizeof(uint64_t)];
  std::memcpy(buf, &type, sizeof(type));
  out.append(buf, sizeof(type));
  const uint64_t len = payload.size();
  std::memcpy(buf, &len, sizeof(len));
  out.append(buf, sizeof(len));
  out.append(payload);
  return out;
}

void FrameDecoder::Feed(const char* data, size_t len) {
  if (failed_) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer so
  // long-lived connections don't grow without bound.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, len);
}

Status FrameDecoder::Next(Frame* frame, bool* got) {
  *got = false;
  if (failed_) return error_;
  if (buf_.size() - consumed_ < kFrameHeaderBytes) return Status::OK();
  const char* hdr = buf_.data() + consumed_;
  if (std::memcmp(hdr, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    failed_ = true;
    error_ = Status::InvalidArgument("frame: bad magic (corrupted stream)");
    return error_;
  }
  uint32_t type;
  uint64_t len;
  std::memcpy(&type, hdr + 4, sizeof(type));
  std::memcpy(&len, hdr + 8, sizeof(len));
  if (len > kMaxFramePayload) {
    failed_ = true;
    error_ = Status::InvalidArgument(
        "frame: payload length " + std::to_string(len) +
        " exceeds bound (corrupted or hostile header)");
    return error_;
  }
  if (buf_.size() - consumed_ < kFrameHeaderBytes + len) return Status::OK();
  frame->type = type;
  frame->payload.assign(hdr + kFrameHeaderBytes, static_cast<size_t>(len));
  consumed_ += kFrameHeaderBytes + static_cast<size_t>(len);
  *got = true;
  return Status::OK();
}

}  // namespace factorml::net

// POSIX socket plumbing of the shard RPC plane. Everything here is
// EINTR/partial-I/O correct from day one: reads and writes loop on short
// counts and EINTR, sends are MSG_NOSIGNAL so a dead peer is an error
// value instead of a SIGPIPE, and nothing ever blocks without a caller-
// chosen deadline (the coordinator's failure detector is poll()-based).

#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

#include "obs/metrics.h"

namespace factorml::net {

namespace {

obs::Counter* BytesSent() {
  static obs::Counter* c = obs::Registry::Instance().GetCounter("net.bytes_sent");
  return c;
}
obs::Counter* BytesRecv() {
  static obs::Counter* c = obs::Registry::Instance().GetCounter("net.bytes_recv");
  return c;
}
obs::Counter* FramesSent() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("net.frames_sent");
  return c;
}
obs::Counter* FramesRecv() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("net.frames_recv");
  return c;
}

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::string(strerror(errno)));
}

void SetCloexec(int fd) { fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

Status SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Blocking sockets only reach here via SO_SNDTIMEO (unused), but
        // loop through poll anyway rather than spinning.
        struct pollfd p = {fd, POLLOUT, 0};
        if (poll(&p, 1, -1) < 0 && errno != EINTR) return Errno("poll");
        continue;
      }
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  BytesSent()->Add(static_cast<int64_t>(len));
  return Status::OK();
}

void FrameConn::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status FrameConn::SendFrame(uint32_t type, const std::string& payload) {
  if (fd_ < 0) return Status::IoError("send on closed connection");
  const std::string wire = EncodeFrame(type, payload);
  FML_RETURN_IF_ERROR(SendAll(fd_, wire.data(), wire.size()));
  FramesSent()->Add();
  return Status::OK();
}

Status FrameConn::ReadAvailable() {
  if (fd_ < 0) return Status::IoError("read on closed connection");
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      decoder_.Feed(buf, static_cast<size_t>(n));
      BytesRecv()->Add(n);
      if (static_cast<size_t>(n) < sizeof(buf)) return Status::OK();
      continue;
    }
    if (n == 0) {
      eof_ = true;
      return Status::OK();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    return Errno("recv");
  }
}

Status FrameConn::RecvFrame(Frame* frame, int timeout_ms) {
  const int64_t deadline =
      timeout_ms < 0 ? -1 : NowMillis() + timeout_ms;
  while (true) {
    bool got = false;
    FML_RETURN_IF_ERROR(decoder_.Next(frame, &got));
    if (got) {
      FramesRecv()->Add();
      return Status::OK();
    }
    if (eof_) {
      return Status::IoError("connection closed by peer mid-frame");
    }
    int wait = -1;
    if (deadline >= 0) {
      const int64_t left = deadline - NowMillis();
      if (left <= 0) {
        return Status::FailedPrecondition("frame receive timeout");
      }
      wait = static_cast<int>(left);
    }
    struct pollfd p = {fd_, POLLIN, 0};
    const int r = poll(&p, 1, wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (r == 0) continue;  // deadline re-checked above
    FML_RETURN_IF_ERROR(ReadAvailable());
  }
}

Status Listener::ListenUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket(AF_UNIX)");
  SetCloexec(fd_);
  unlink(path.c_str());
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind(" + path + ")");
  }
  if (listen(fd_, 64) < 0) return Errno("listen");
  unix_path_ = path;
  address_ = "unix:" + path;
  return Status::OK();
}

Status Listener::ListenTcpLoopback() {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket(AF_INET)");
  SetCloexec(fd_);
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned
  if (bind(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind(127.0.0.1)");
  }
  if (listen(fd_, 64) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  address_ = "tcp:127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
  return Status::OK();
}

Status Listener::Accept(FrameConn* conn, int timeout_ms) {
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMillis() + timeout_ms;
  while (true) {
    int wait = -1;
    if (deadline >= 0) {
      const int64_t left = deadline - NowMillis();
      if (left <= 0) return Status::FailedPrecondition("accept timeout");
      wait = static_cast<int>(left);
    }
    struct pollfd p = {fd_, POLLIN, 0};
    const int r = poll(&p, 1, wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("poll(accept)");
    }
    if (r == 0) continue;
    const int cfd = accept(fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Errno("accept");
    }
    SetCloexec(cfd);
    *conn = FrameConn(cfd);
    return Status::OK();
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Status ConnectAddress(const std::string& address, FrameConn* conn) {
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + path);
    }
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    SetCloexec(fd);
    memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    while (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Errno("connect(" + path + ")");
    }
    *conn = FrameConn(fd);
    return Status::OK();
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string hostport = address.substr(4);
    const size_t colon = hostport.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad tcp address: " + address);
    }
    const std::string host = hostport.substr(0, colon);
    const int port = std::atoi(hostport.substr(colon + 1).c_str());
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_INET)");
    SetCloexec(fd);
    struct sockaddr_in addr;
    memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      return Status::InvalidArgument("bad tcp host: " + host);
    }
    while (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Errno("connect(" + address + ")");
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *conn = FrameConn(fd);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "bad worker address (want unix:<path> or tcp:<host>:<port>): " +
      address);
}

Status PollReadable(const std::vector<FrameConn*>& conns, int timeout_ms,
                    std::vector<size_t>* ready) {
  ready->clear();
  std::vector<struct pollfd> fds;
  std::vector<size_t> idx;
  fds.reserve(conns.size());
  for (size_t i = 0; i < conns.size(); ++i) {
    if (conns[i] == nullptr || !conns[i]->open()) continue;
    fds.push_back({conns[i]->fd(), POLLIN, 0});
    idx.push_back(i);
  }
  if (fds.empty()) return Status::OK();
  const int64_t deadline = timeout_ms < 0 ? -1 : NowMillis() + timeout_ms;
  while (true) {
    int wait = -1;
    if (deadline >= 0) {
      const int64_t left = deadline - NowMillis();
      wait = left <= 0 ? 0 : static_cast<int>(left);
    }
    const int r = poll(fds.data(), fds.size(), wait);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        ready->push_back(idx[i]);
      }
    }
    if (!ready->empty() || r == 0 || (deadline >= 0 && wait == 0)) {
      return Status::OK();
    }
  }
}

}  // namespace factorml::net

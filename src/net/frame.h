#ifndef FACTORML_NET_FRAME_H_
#define FACTORML_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace factorml::net {

/// Length-prefixed frame header, the only framing the shard RPC plane
/// needs (no external RPC dependency):
///   bytes [0, 4)   magic "FMLF"
///   bytes [4, 8)   uint32 frame type (opaque to this layer)
///   bytes [8, 16)  uint64 payload length
///   bytes [16, ..) payload
struct Frame {
  uint32_t type = 0;
  std::string payload;
};

inline constexpr size_t kFrameHeaderBytes = 16;

/// Upper bound on a single frame payload (1 GiB). A corrupted or
/// malicious length field is rejected against this bound *before* any
/// allocation happens — the length is attacker-controlled data and must
/// never size a buffer unchecked.
inline constexpr uint64_t kMaxFramePayload = 1ull << 30;

/// Serializes one frame (header + payload).
std::string EncodeFrame(uint32_t type, const std::string& payload);

/// Incremental frame parser: feed it whatever the socket produced — any
/// split, including mid-header — and poll complete frames out. Invalid
/// input (bad magic, oversized length) puts the decoder into a sticky
/// error state; the connection is then unrecoverable by construction
/// (stream framing has no resync point) and must be closed.
class FrameDecoder {
 public:
  /// Appends received bytes to the internal buffer. No-op in error state.
  void Feed(const char* data, size_t len);

  /// Extracts the next complete frame. Returns OK with *got=true and the
  /// frame, OK with *got=false when more bytes are needed, or the sticky
  /// error after garbage input.
  Status Next(Frame* frame, bool* got);

  /// Bytes buffered but not yet consumed as frames.
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::string buf_;
  size_t consumed_ = 0;
  Status error_;
  bool failed_ = false;
};

}  // namespace factorml::net

#endif  // FACTORML_NET_FRAME_H_

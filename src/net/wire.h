#ifndef FACTORML_NET_WIRE_H_
#define FACTORML_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/status.h"

namespace factorml::net {

/// Appends fixed-width scalars and length-prefixed strings to a byte
/// buffer. Native-endian, like the ShardDelta wire format: the process
/// shard backend runs parent and workers on one host (Unix socket or TCP
/// loopback), so both ends share the representation; doubles are memcpy'd
/// so parameters and objectives cross the wire bit-exactly.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }
  void Bytes(const std::string& s) { Str(s); }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

/// Bounds-checked reader over a received payload. Every accessor fails
/// with InvalidArgument instead of reading past the end, so a truncated or
/// corrupted frame surfaces as a bounded protocol error, never as a wild
/// read — the property net_test pins against bit-flipped frames.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : bytes_(bytes) {}

  Status U8(uint8_t* v) { return Fixed(v, sizeof(*v)); }
  Status U32(uint32_t* v) { return Fixed(v, sizeof(*v)); }
  Status U64(uint64_t* v) { return Fixed(v, sizeof(*v)); }
  Status I64(int64_t* v) { return Fixed(v, sizeof(*v)); }
  Status F64(double* v) { return Fixed(v, sizeof(*v)); }
  Status Str(std::string* s) {
    uint64_t len = 0;
    FML_RETURN_IF_ERROR(U64(&len));
    if (len > bytes_.size() - off_) {
      return Status::InvalidArgument(
          "wire: string length exceeds remaining payload");
    }
    s->assign(bytes_.data() + off_, static_cast<size_t>(len));
    off_ += static_cast<size_t>(len);
    return Status::OK();
  }
  Status Bytes(std::string* s) { return Str(s); }

  bool AtEnd() const { return off_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - off_; }

 private:
  Status Fixed(void* p, size_t n) {
    if (n > bytes_.size() - off_) {
      return Status::InvalidArgument("wire: truncated payload");
    }
    std::memcpy(p, bytes_.data() + off_, n);
    off_ += n;
    return Status::OK();
  }

  const std::string& bytes_;
  size_t off_ = 0;
};

}  // namespace factorml::net

#endif  // FACTORML_NET_WIRE_H_

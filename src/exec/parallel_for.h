#ifndef FACTORML_EXEC_PARALLEL_FOR_H_
#define FACTORML_EXEC_PARALLEL_FOR_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/thread_pool.h"

namespace factorml::exec {

/// A contiguous half-open range of work items — fact-table rows, rid
/// positions of a join order, columns of a gradient matrix. The morsel
/// unit of the parallel runtime: each worker owns one range per region.
struct Range {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t size() const { return end - begin; }
  bool empty() const { return end <= begin; }
};

/// Splits [0, total) into at most `parts` non-empty contiguous ranges of
/// near-equal size. When align > 1, interior boundaries are rounded up to
/// multiples of `align` — pass storage::Schema::RowsPerPage() so no two
/// workers touch the same storage page (each page is read by exactly one
/// worker, keeping parallel physical-read counts equal to serial ones).
std::vector<Range> PartitionRows(int64_t total, int parts, int64_t align = 1);

/// Splits positions [0, n) into at most `parts` contiguous ranges whose
/// weight sums are near-equal. Positions are atomic — a position is never
/// split across ranges — so with weights = FK1-run lengths (FkIndex
/// CountOf), every range is a whole set of runs and the factorized
/// per-R-tuple reuse is preserved within each worker.
std::vector<Range> PartitionWeighted(const int64_t* weights, int64_t n,
                                     int parts);

/// Ceiling on the chunk count of one pass. Models allocate one accumulator
/// slot per chunk, so unbounded chunk counts would scale slot memory with
/// the data instead of with the requested morsel size; when `total /
/// morsel_rows` exceeds this, the effective morsel grows (deterministically
/// — it depends only on the same inputs) until the plan fits. Heavy
/// per-slot models (factorized GMM keeps per-rid mass vectors in each
/// slot) should prefer generous --morsel-rows for the same reason.
inline constexpr int64_t kMaxMorselChunks = 1024;

/// Splits [0, total) into fixed-size, deterministically numbered chunks —
/// the decomposition behind the work-stealing scheduler (morsel_queue.h).
/// `morsel_rows` is rounded up to a multiple of `align` (pass
/// storage::Schema::RowsPerPage() so no two chunks share a storage page)
/// and grown to respect kMaxMorselChunks. Chunk boundaries depend only on
/// (total, morsel_rows, align) — never on the worker count — which is the
/// first half of the chunk-ordered determinism contract: the chunk set and
/// its numbering are invariants of the data, so any assignment of chunks
/// to workers computes the same per-chunk results.
std::vector<Range> SplitRowChunks(int64_t total, int64_t morsel_rows,
                                  int64_t align = 1);

/// Packs positions [0, n) (weights = FK1-run lengths) into consecutive
/// whole-position chunks of at least `morsel_weight` total weight (grown
/// to respect kMaxMorselChunks). A position heavier than the target forms
/// its own chunk — positions are atomic, as in PartitionWeighted, so
/// factorized per-R-tuple reuse is preserved within every chunk.
/// Zero-weight positions (rids with no matching fact rows) are carried
/// along and never produce empty ranges. Like SplitRowChunks, the result
/// is independent of the worker count.
std::vector<Range> SplitWeightedChunks(const int64_t* weights, int64_t n,
                                       int64_t morsel_weight);

/// Runs body(ranges[w], w) with one worker per range (worker 0 is the
/// calling thread). Blocks until all complete; per-worker op/I/O counter
/// deltas are merged into the caller in worker order (see ThreadPool::Run).
void ParallelRanges(const std::vector<Range>& ranges,
                    const std::function<void(Range, int)>& body);

/// Morsel-driven parallel-for over [0, total): partitions with
/// PartitionRows(total, threads, align) and dispatches ParallelRanges.
/// threads <= 1 runs body(Range{0, total}, 0) inline — bit-for-bit the
/// serial path.
void ParallelFor(int threads, int64_t total, int64_t align,
                 const std::function<void(Range, int)>& body);

/// Parallel reduction with deterministic merge order: body fills one
/// scratch accumulator per worker (in parallel), then merge consumes the
/// accumulators serially in worker order on the calling thread. For a
/// fixed partition the merged result is reproducible run-to-run, and a
/// single-range partition is exactly the serial computation.
template <typename T, typename Body, typename Merge>
void ParallelReduce(const std::vector<Range>& ranges,
                    Body body /* void(Range, int worker, T* acc) */,
                    Merge merge /* void(T&& acc, int worker) */) {
  std::vector<T> scratch(ranges.size());
  ParallelRanges(ranges,
                 [&](Range r, int w) { body(r, w, &scratch[static_cast<size_t>(w)]); });
  for (size_t w = 0; w < ranges.size(); ++w) {
    merge(std::move(scratch[w]), static_cast<int>(w));
  }
}

/// First non-OK status in worker order (OK when all workers succeeded).
/// The standard error plumbing for Status-returning work inside a region:
/// each worker writes its slot, the caller propagates the first failure.
Status FirstError(const std::vector<Status>& statuses);

}  // namespace factorml::exec

#endif  // FACTORML_EXEC_PARALLEL_FOR_H_

#ifndef FACTORML_EXEC_SHARD_PLAN_H_
#define FACTORML_EXEC_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "exec/parallel_for.h"

namespace factorml::exec {

/// The shard decomposition of one full-pass morsel plan: shard k owns the
/// contiguous chunk-id span `spans[k]` of the plan's fixed chunk list, i.e.
/// a contiguous rid range of the dataset. Shard boundaries always fall on
/// chunk boundaries, so they inherit the chunk planners' atomicity
/// guarantees for free — page-aligned row ranges for the Materialized
/// strategy (SplitRowChunks), whole FK1 runs for Streaming/Factorized
/// (ChunkFk1Runs) — and every shard-plan property is an invariant of
/// (data, morsel_rows, shard count), never of the worker count or the
/// steal schedule.
struct ShardPlan {
  /// Per shard: [begin, end) global chunk ids. Non-empty spans only; a
  /// request for more shards than chunks yields one span per chunk.
  std::vector<Range> spans;

  int num_shards() const { return static_cast<int>(spans.size()); }
  Range ChunkSpan(int shard) const {
    return spans[static_cast<size_t>(shard)];
  }
};

/// Splits a fixed chunk list into at most `shards` contiguous spans of
/// near-equal total size, chunk range sizes as weights. For Materialized
/// plans a chunk's size is its row count, so shards balance by rows; for
/// Streaming/Factorized plans it is the chunk's FK1-run position count —
/// SplitWeightedChunks has already near-equalized the row weight per
/// chunk, so position counts remain a faithful proxy (a single-giant-run
/// chunk counts as one unit; its inherent skew cannot be split anyway —
/// runs are atomic). Chunks are atomic too: a chunk is never split across
/// shards. An empty chunk list yields an empty plan; `shards` < 1 is
/// treated as 1.
ShardPlan PlanShards(const std::vector<Range>& chunks, int shards);

}  // namespace factorml::exec

#endif  // FACTORML_EXEC_SHARD_PLAN_H_

#ifndef FACTORML_EXEC_THREAD_POOL_H_
#define FACTORML_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace factorml::exec {

/// Process-wide pool of persistent worker threads behind the morsel-driven
/// ParallelFor / ParallelReduce API (parallel_for.h). Threads are spawned
/// lazily on first use and kept for the process lifetime, so repeated
/// parallel regions (one per EM pass / mini-batch) pay no thread start-up
/// cost.
class ThreadPool {
 public:
  static ThreadPool& Instance();

  /// Runs fn(worker) for every worker in [0, num_workers). Worker 0
  /// executes on the calling thread; workers 1..n-1 on pool threads.
  /// Blocks until every worker returns. After completion the op / I/O
  /// counters accumulated by each pool thread are merged into the calling
  /// thread's thread-local counters in worker order, so snapshot deltas
  /// taken on the calling thread (core::ReportScope) cover the whole
  /// region deterministically.
  ///
  /// num_workers <= 1 — or a call from inside a pool worker (regions do
  /// not nest) — executes fn(0..n-1) inline on the calling thread, which
  /// is bit-for-bit the serial path.
  void Run(int num_workers, const std::function<void(int)>& fn);

  /// Enqueues a detached task on the pool's background I/O crew — a small
  /// set of dedicated threads separate from the compute workers, so
  /// asynchronous page prefetch (storage::Prefetcher) keeps making
  /// progress while every compute worker is busy inside Run. Tasks may be
  /// submitted from any thread, including pool workers mid-region; they
  /// run in submission order per crew thread with no completion
  /// handshake — callers that need one build it themselves (the
  /// Prefetcher's in-flight count + Drain).
  ///
  /// Crew threads never merge their op/I/O counters anywhere; tasks that
  /// must be accounted for fold their own deltas back explicitly.
  void SubmitIo(std::function<void()> task);

  /// Crew size of SubmitIo (fixed, spawned lazily on first submission).
  static constexpr int kIoCrewThreads = 2;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;
  ~ThreadPool();

  void EnsureThreads(int count);
  void WorkerLoop();
  void IoCrewLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;

  std::mutex io_mu_;
  std::condition_variable io_cv_;
  std::deque<std::function<void()>> io_queue_;
  std::vector<std::thread> io_threads_;
  bool io_stop_ = false;
};

/// Worker count a parallel region should use: `requested` when >= 1,
/// otherwise the process-wide default. Always >= 1.
int EffectiveThreads(int requested);

/// True while the calling thread is a pool worker inside Run (parallel
/// regions do not nest — Run from a worker executes inline). Schedulers
/// layered on the pool (exec::RunMorsels) use this to take their serial
/// drain path directly instead of building a queue Run would ignore.
bool InParallelRegion();

/// Process-wide default worker count, initially 1 so library behavior is
/// unchanged unless a caller opts in (the --threads flag of the CLI and
/// bench binaries lands here). Values < 1 are clamped to 1.
void SetDefaultThreads(int threads);
int DefaultThreads();

}  // namespace factorml::exec

#endif  // FACTORML_EXEC_THREAD_POOL_H_

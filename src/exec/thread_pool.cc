#include "exec/thread_pool.h"

#include <atomic>

#include "common/opcount.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::exec {

namespace {

thread_local bool tls_in_worker = false;

std::atomic<int> g_default_threads{1};

/// Per-worker completion record: counter deltas measured on the pool
/// thread, handed back to the dispatching thread for the ordered merge.
struct WorkerDelta {
  OpCounters ops;
  storage::IoStats io;
};

}  // namespace

ThreadPool& ThreadPool::Instance() {
  // Leaked on purpose: worker threads may outlive static destruction order
  // otherwise; the OS reclaims everything at process exit.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    io_stop_ = true;
  }
  io_cv_.notify_all();
  for (auto& t : io_threads_) t.join();
}

void ThreadPool::SubmitIo(std::function<void()> task) {
  static obs::Counter* submits =
      obs::Registry::Instance().GetCounter("exec.io_submits");
  submits->Add();
  obs::TraceInstant(obs::kCatExec, "io_submit");
  {
    std::lock_guard<std::mutex> lock(io_mu_);
    while (static_cast<int>(io_threads_.size()) < kIoCrewThreads) {
      io_threads_.emplace_back([this] { IoCrewLoop(); });
    }
    io_queue_.push_back(std::move(task));
  }
  io_cv_.notify_one();
}

void ThreadPool::IoCrewLoop() {
  // Crew threads are pool threads as far as the no-nesting rule goes: a
  // Run issued from a crew task executes inline instead of deadlocking on
  // the compute queue.
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(io_mu_);
      io_cv_.wait(lock, [this] { return io_stop_ || !io_queue_.empty(); });
      if (io_stop_ && io_queue_.empty()) return;
      task = std::move(io_queue_.front());
      io_queue_.pop_front();
    }
    {
      obs::TraceSpan span(obs::kCatExec, "io_task");
      task();
    }
  }
}

void ThreadPool::EnsureThreads(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(threads_.size()) < count) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Run(int num_workers, const std::function<void(int)>& fn) {
  if (num_workers <= 1 || tls_in_worker) {
    // Serial path (and the no-nesting rule): run every worker index inline,
    // in order — identical arithmetic and counter stream to a 1-thread run.
    const int n = num_workers < 1 ? 1 : num_workers;
    for (int w = 0; w < n; ++w) fn(w);
    return;
  }

  EnsureThreads(num_workers - 1);

  static obs::Counter* regions =
      obs::Registry::Instance().GetCounter("exec.regions");
  static obs::Counter* tasks =
      obs::Registry::Instance().GetCounter("exec.tasks");
  regions->Add();
  tasks->Add(static_cast<uint64_t>(num_workers));
  obs::TraceSpan region(obs::kCatExec, "region");
  region.Arg("workers", num_workers);

  std::vector<WorkerDelta> deltas(static_cast<size_t>(num_workers));
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = num_workers - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int w = 1; w < num_workers; ++w) {
      queue_.emplace_back([&, w] {
        const OpCounters ops_before = GlobalOps();
        const storage::IoStats io_before = storage::GlobalIo();
        {
          obs::TraceSpan task_span(obs::kCatExec, "task");
          task_span.Arg("worker", w);
          fn(w);
        }
        deltas[static_cast<size_t>(w)].ops = GlobalOps() - ops_before;
        deltas[static_cast<size_t>(w)].io =
            storage::GlobalIo() - io_before;
        {
          // Notify under the lock: the dispatcher may destroy done_cv as
          // soon as it observes remaining == 0, so the signal must not
          // outlive the critical section.
          std::lock_guard<std::mutex> done_lock(done_mu);
          --remaining;
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();

  // The dispatching thread is worker 0; its counters accrue in place.
  {
    obs::TraceSpan task_span(obs::kCatExec, "task");
    task_span.Arg("worker", 0);
    fn(0);
  }

  {
    std::unique_lock<std::mutex> done_lock(done_mu);
    done_cv.wait(done_lock, [&] { return remaining == 0; });
  }

  // Deterministic merge in worker order.
  for (int w = 1; w < num_workers; ++w) {
    deltas[static_cast<size_t>(w)].ops.MergeInto(&GlobalOps());
    deltas[static_cast<size_t>(w)].io.MergeInto(&storage::GlobalIo());
  }
}

namespace {
// Oversubscription beyond the core count is allowed (the exactness tests
// rely on it), but a typo'd --threads must not exhaust OS threads.
constexpr int kMaxWorkers = 256;

int ClampWorkers(int threads) {
  if (threads < 1) return 1;
  return threads > kMaxWorkers ? kMaxWorkers : threads;
}
}  // namespace

bool InParallelRegion() { return tls_in_worker; }

int EffectiveThreads(int requested) {
  if (requested >= 1) return ClampWorkers(requested);
  return DefaultThreads();
}

void SetDefaultThreads(int threads) {
  g_default_threads.store(ClampWorkers(threads), std::memory_order_relaxed);
}

int DefaultThreads() {
  return g_default_threads.load(std::memory_order_relaxed);
}

}  // namespace factorml::exec

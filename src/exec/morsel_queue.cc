#include "exec/morsel_queue.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace factorml::exec {

namespace {

/// The canonical static pre-assignment: PartitionRows' contiguous
/// near-even split, padded with empty blocks for workers beyond the range
/// count (they start life as thieves).
std::vector<Range> EvenBlocks(int64_t num_chunks, int num_workers) {
  FML_CHECK_GE(num_chunks, 0);
  std::vector<Range> blocks = PartitionRows(num_chunks, num_workers);
  blocks.resize(static_cast<size_t>(num_workers < 1 ? 1 : num_workers),
                Range{0, 0});
  return blocks;
}

}  // namespace

MorselQueue::MorselQueue(int64_t num_chunks, int num_workers, bool steal)
    : MorselQueue(EvenBlocks(num_chunks, num_workers), steal) {}

MorselQueue::MorselQueue(const std::vector<Range>& blocks, bool steal)
    : num_workers_(blocks.empty() ? 1 : static_cast<int>(blocks.size())),
      steal_(steal),
      blocks_(static_cast<size_t>(num_workers_)) {
  for (size_t w = 0; w < blocks.size(); ++w) {
    if (blocks[w].empty()) continue;
    FML_CHECK_GE(blocks[w].begin, 0);
    FML_CHECK_LT(blocks[w].end, int64_t{1} << 32)
        << "chunk ids must fit the packed 32-bit block span";
    blocks_[w].span.store(Pack(static_cast<uint32_t>(blocks[w].begin),
                               static_cast<uint32_t>(blocks[w].end)),
                          std::memory_order_relaxed);
  }
}

int64_t MorselQueue::Next(int worker) {
  Block& own = blocks_[static_cast<size_t>(worker)];
  uint64_t cur = own.span.load(std::memory_order_acquire);
  while (SpanNext(cur) < SpanEnd(cur)) {
    if (own.span.compare_exchange_weak(
            cur, Pack(SpanNext(cur) + 1, SpanEnd(cur)),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      return static_cast<int64_t>(SpanNext(cur));
    }
  }
  if (!steal_) return -1;
  // Rob one chunk from the back of the first non-empty victim. Blocks only
  // ever shrink, so re-scanning until every block reads empty terminates.
  for (;;) {
    bool saw_work = false;
    for (int i = 1; i < num_workers_; ++i) {
      Block& victim =
          blocks_[static_cast<size_t>((worker + i) % num_workers_)];
      uint64_t v = victim.span.load(std::memory_order_acquire);
      while (SpanNext(v) < SpanEnd(v)) {
        saw_work = true;
        if (victim.span.compare_exchange_weak(
                v, Pack(SpanNext(v), SpanEnd(v) - 1),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          return static_cast<int64_t>(SpanEnd(v)) - 1;
        }
      }
    }
    if (!saw_work) return -1;
  }
}

MorselStats RunMorselSpan(const std::vector<Range>& chunks, Range span,
                          int threads, bool steal,
                          const std::function<void(Range, int64_t, int)>& body) {
  MorselStats stats;
  const int workers = threads < 1 ? 1 : threads;
  stats.busy_seconds.assign(static_cast<size_t>(workers), 0.0);
  const auto total = static_cast<int64_t>(chunks.size());
  if (span.begin < 0) span.begin = 0;
  if (span.end > total) span.end = total;
  if (span.empty()) return stats;
  // Always-on chunk metrics; the trace span is gated on the cold flag.
  // Neither touches OpCounters/IoStats, so the determinism contract is
  // untouched (TraceParityTest pins this).
  static obs::Counter* chunk_count =
      obs::Registry::Instance().GetCounter("exec.chunks");
  static obs::Counter* chunk_steals =
      obs::Registry::Instance().GetCounter("exec.chunks_stolen");
  static obs::Histogram* morsel_micros =
      obs::Registry::Instance().GetHistogram("exec.morsel_micros");
  const auto run_chunk = [&](int64_t c, int w, bool stolen) {
    chunk_count->Add();
    obs::TraceSpan chunk_span(obs::kCatMorsel, "chunk");
    chunk_span.Arg("chunk", c);
    chunk_span.Arg2("stolen", stolen ? 1 : 0);
    const uint64_t t0 = obs::NowMicros();
    body(chunks[static_cast<size_t>(c)], c, w);
    morsel_micros->Record(obs::NowMicros() - t0);
  };
  if (workers == 1 || InParallelRegion()) {
    // Serial path (and the no-nesting rule): drain in ascending chunk
    // order on the calling thread without touching the atomic queue. This
    // is the reference schedule the chunk-ordered reduction makes every
    // parallel run reproduce bit-for-bit.
    Stopwatch watch;
    for (int64_t c = span.begin; c < span.end; ++c) {
      run_chunk(c, 0, /*stolen=*/false);
    }
    stats.busy_seconds[0] = watch.ElapsedSeconds();
    return stats;
  }
  // Ownership blocks from the global split, clamped to the span: within a
  // span, chunk c keeps the owner it has in the whole-plan run.
  std::vector<Range> blocks = PartitionRows(total, workers);
  blocks.resize(static_cast<size_t>(workers), Range{0, 0});
  const std::vector<Range> owned = blocks;  // unclamped static ownership
  for (auto& block : blocks) {
    block.begin = std::max(block.begin, span.begin);
    block.end = std::min(block.end, span.end);
    if (block.end < block.begin) block.end = block.begin;
  }
  const auto owner_of = [&owned](int64_t c) {
    for (size_t w = 0; w < owned.size(); ++w) {
      if (c >= owned[w].begin && c < owned[w].end) {
        return static_cast<int>(w);
      }
    }
    return 0;
  };
  MorselQueue queue(blocks, steal);
  ThreadPool::Instance().Run(workers, [&](int w) {
    Stopwatch watch;
    for (int64_t c = queue.Next(w); c >= 0; c = queue.Next(w)) {
      run_chunk(c, w, /*stolen=*/owner_of(c) != w);
    }
    // Run's completion handshake orders this write before the caller's
    // read of the stats.
    stats.busy_seconds[static_cast<size_t>(w)] = watch.ElapsedSeconds();
  });
  stats.steals = queue.steals();
  chunk_steals->Add(stats.steals);
  return stats;
}

MorselStats RunMorsels(const std::vector<Range>& chunks, int threads,
                       bool steal,
                       const std::function<void(Range, int64_t, int)>& body) {
  return RunMorselSpan(chunks, Range{0, static_cast<int64_t>(chunks.size())},
                       threads, steal, body);
}

}  // namespace factorml::exec

#include "exec/shard_plan.h"

namespace factorml::exec {

ShardPlan PlanShards(const std::vector<Range>& chunks, int shards) {
  ShardPlan plan;
  if (chunks.empty()) return plan;
  std::vector<int64_t> weights(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) weights[c] = chunks[c].size();
  plan.spans = PartitionWeighted(weights.data(),
                                 static_cast<int64_t>(chunks.size()),
                                 shards < 1 ? 1 : shards);
  return plan;
}

}  // namespace factorml::exec

#ifndef FACTORML_EXEC_MORSEL_QUEUE_H_
#define FACTORML_EXEC_MORSEL_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/parallel_for.h"

namespace factorml::exec {

/// Work-stealing scheduler over a fixed, deterministically numbered chunk
/// list (SplitRowChunks / SplitWeightedChunks). Each worker owns a
/// contiguous block of chunk ids — the same near-even split PartitionRows
/// produces — and pops it front-to-back, i.e. in ascending chunk id, the
/// sequential scan order. When stealing is enabled and a worker's block
/// runs dry, it robs single chunks from the *back* of another worker's
/// block, scanning victims round-robin from its right neighbor. A block is
/// one 64-bit word packing (next, end), updated by compare-and-swap, so
/// owner pops and thief pops are lock-free and every chunk id is handed
/// out exactly once.
///
/// Determinism contract: the queue decides only *who* executes a chunk,
/// never *what* is computed. Callers give every chunk its own accumulator
/// slot (indexed by chunk id) and reduce the slots in chunk order after
/// the region completes, so results are bit-identical for any steal
/// schedule, any worker count, and the serial run.
class MorselQueue {
 public:
  /// `num_chunks` chunk ids [0, num_chunks) statically pre-assigned to
  /// `num_workers` contiguous blocks; `steal` permits cross-block pops.
  MorselQueue(int64_t num_chunks, int num_workers, bool steal);

  /// Explicit pre-assignment: worker w owns the chunk ids of `blocks[w]`
  /// (possibly empty). The shard plane uses this to hand each worker its
  /// global ownership block clamped to one shard's chunk span, so a
  /// chunk's owner never depends on the shard count.
  MorselQueue(const std::vector<Range>& blocks, bool steal);

  /// Next chunk id for `worker`, or -1 when no work remains (for this
  /// worker when stealing is off; globally when it is on).
  int64_t Next(int worker);

  /// Chunks executed by a worker other than their static owner.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  MorselQueue(const MorselQueue&) = delete;
  MorselQueue& operator=(const MorselQueue&) = delete;

 private:
  /// One worker's remaining block of chunk ids, packed (next << 32 | end)
  /// so the owner's front pop and a thief's back pop contend on a single
  /// CAS word. Padded to its own cache line.
  struct alignas(64) Block {
    std::atomic<uint64_t> span{0};
  };
  static uint64_t Pack(uint32_t next, uint32_t end) {
    return (static_cast<uint64_t>(next) << 32) | end;
  }
  static uint32_t SpanNext(uint64_t s) { return static_cast<uint32_t>(s >> 32); }
  static uint32_t SpanEnd(uint64_t s) { return static_cast<uint32_t>(s); }

  int num_workers_;
  bool steal_;
  std::vector<Block> blocks_;
  std::atomic<uint64_t> steals_{0};
};

/// What one scheduled parallel region observed: steal traffic and how long
/// each worker actually spent executing chunks (the balance evidence the
/// skew bench reports; wall-clock speedup needs multi-core hardware, busy
/// spread is the single-core proxy).
struct MorselStats {
  uint64_t steals = 0;
  std::vector<double> busy_seconds;  // one entry per worker
};

/// Runs body(chunks[c], c, worker) exactly once per chunk on `threads`
/// workers (worker 0 is the calling thread), stealing between workers when
/// `steal` is set. threads <= 1 — or a call from inside a pool worker —
/// drains the chunks in ascending id order on the calling thread, which is
/// the schedule every parallel reduction is defined to reproduce. Blocks
/// until all chunks complete; per-worker op/I/O counters merge into the
/// caller in worker order (ThreadPool::Run).
MorselStats RunMorsels(const std::vector<Range>& chunks, int threads,
                       bool steal,
                       const std::function<void(Range, int64_t, int)>& body);

/// Span-restricted variant for the shard plane: runs body exactly once for
/// every chunk id in [span.begin, span.end), with ownership blocks taken
/// from the GLOBAL split PartitionRows(chunks.size(), threads) and clamped
/// to the span. This is the in-process shard backend's time-sharing rule:
/// a chunk keeps the owner (and therefore the worker buffer pool) it has
/// in the unsharded run, so each worker visits its chunks in the same
/// ascending order whether the pass runs as one region or as a sequence
/// of shard spans — which is what makes total page I/O an invariant of
/// the shard count. Stealing stays confined to the span (shards are
/// sequential; there is never cross-shard work to steal). Chunk ids passed
/// to body are global. Serial/nested calls drain the span in ascending id
/// order inline, as in RunMorsels.
MorselStats RunMorselSpan(const std::vector<Range>& chunks, Range span,
                          int threads, bool steal,
                          const std::function<void(Range, int64_t, int)>& body);

}  // namespace factorml::exec

#endif  // FACTORML_EXEC_MORSEL_QUEUE_H_

#ifndef FACTORML_EXEC_WORKER_POOLS_H_
#define FACTORML_EXEC_WORKER_POOLS_H_

#include <memory>
#include <vector>

#include "storage/buffer_pool.h"

namespace factorml::exec {

/// Per-worker buffer pools for parallel scans: worker 0 keeps the caller's
/// (shared) pool — so a single-worker region is exactly the serial path —
/// and workers 1..n-1 get private pools of the same capacity. A private
/// pool is touched by one worker at a time, so frame pointers returned by
/// GetPage keep their single-threaded validity guarantee, and misses never
/// serialize on the shared pool's latch. Page reads issued by different
/// pools against the same PagedFile are safe (the file latches its seek +
/// transfer pair).
///
/// The private pools live for one parallel phase; their frames are dropped
/// on destruction, which mirrors how the paper's per-pass scans re-read
/// everything that exceeds pool capacity anyway.
class WorkerPools {
 public:
  WorkerPools(storage::BufferPool* shared, int workers) : shared_(shared) {
    for (int w = 1; w < workers; ++w) {
      extras_.push_back(
          std::make_unique<storage::BufferPool>(shared->capacity_pages()));
    }
  }

  storage::BufferPool* Get(int worker) {
    return worker == 0 ? shared_
                       : extras_[static_cast<size_t>(worker - 1)].get();
  }

 private:
  storage::BufferPool* shared_;
  std::vector<std::unique_ptr<storage::BufferPool>> extras_;
};

}  // namespace factorml::exec

#endif  // FACTORML_EXEC_WORKER_POOLS_H_

#include "exec/parallel_for.h"

#include <algorithm>

namespace factorml::exec {

std::vector<Range> PartitionRows(int64_t total, int parts, int64_t align) {
  std::vector<Range> ranges;
  if (total <= 0) return ranges;
  if (parts < 1) parts = 1;
  if (align < 1) align = 1;
  int64_t begin = 0;
  for (int p = 0; p < parts && begin < total; ++p) {
    // Even split of what remains over the remaining parts, rounded up to
    // the alignment so interior boundaries sit on page row boundaries.
    const int64_t remaining_parts = parts - p;
    int64_t end = begin + (total - begin + remaining_parts - 1) / remaining_parts;
    if (align > 1 && end < total) {
      end = ((end + align - 1) / align) * align;
      if (end > total) end = total;
    }
    ranges.push_back(Range{begin, end});
    begin = end;
  }
  if (!ranges.empty()) ranges.back().end = total;
  return ranges;
}

std::vector<Range> PartitionWeighted(const int64_t* weights, int64_t n,
                                     int parts) {
  std::vector<Range> ranges;
  if (n <= 0) return ranges;
  if (parts < 1) parts = 1;
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += weights[i];

  int64_t begin = 0;
  int64_t consumed = 0;
  for (int p = 0; p < parts && begin < n; ++p) {
    const int64_t remaining_parts = parts - p;
    const int64_t target =
        (total - consumed + remaining_parts - 1) / remaining_parts;
    int64_t end = begin;
    int64_t weight = 0;
    // Take whole positions until this part reaches its share; always take
    // at least one so every range is non-empty.
    while (end < n && (weight < target || end == begin)) {
      weight += weights[end];
      ++end;
    }
    // Leave at least one position per remaining part.
    const int64_t max_end = n - (remaining_parts - 1);
    while (end > max_end && end - 1 > begin) {
      --end;
      weight -= weights[end];
    }
    ranges.push_back(Range{begin, end});
    consumed += weight;
    begin = end;
  }
  if (!ranges.empty()) ranges.back().end = n;
  return ranges;
}

namespace {

/// Grows the requested morsel so the chunk count stays under
/// kMaxMorselChunks — a pure function of (total, morsel), so the
/// determinism contract is unaffected.
int64_t CapMorsel(int64_t total, int64_t morsel) {
  if (morsel < 1) morsel = 1;
  const int64_t floor_morsel = (total + kMaxMorselChunks - 1) / kMaxMorselChunks;
  return morsel < floor_morsel ? floor_morsel : morsel;
}

}  // namespace

std::vector<Range> SplitRowChunks(int64_t total, int64_t morsel_rows,
                                  int64_t align) {
  std::vector<Range> chunks;
  if (total <= 0) return chunks;
  morsel_rows = CapMorsel(total, morsel_rows);
  if (align < 1) align = 1;
  // Round the chunk size up to the alignment so interior boundaries sit on
  // page row boundaries (each page belongs to exactly one chunk).
  const int64_t step = ((morsel_rows + align - 1) / align) * align;
  for (int64_t begin = 0; begin < total; begin += step) {
    chunks.push_back(Range{begin, std::min(begin + step, total)});
  }
  return chunks;
}

std::vector<Range> SplitWeightedChunks(const int64_t* weights, int64_t n,
                                       int64_t morsel_weight) {
  std::vector<Range> chunks;
  if (n <= 0) return chunks;
  int64_t total = 0;
  for (int64_t i = 0; i < n; ++i) total += weights[i];
  morsel_weight = CapMorsel(total, morsel_weight);
  int64_t begin = 0;
  int64_t weight = 0;
  for (int64_t i = 0; i < n; ++i) {
    // An over-target position must sit alone in its chunk (the documented
    // giant-run isolation): flush whatever lighter runs are pending first.
    if (weights[i] >= morsel_weight && weight > 0) {
      chunks.push_back(Range{begin, i});
      begin = i;
      weight = 0;
    }
    weight += weights[i];
    if (weight >= morsel_weight) {
      chunks.push_back(Range{begin, i + 1});
      begin = i + 1;
      weight = 0;
    }
  }
  // Trailing underweight positions (including all-zero-weight tails) form
  // one final short chunk rather than being dropped.
  if (begin < n) chunks.push_back(Range{begin, n});
  return chunks;
}

void ParallelRanges(const std::vector<Range>& ranges,
                    const std::function<void(Range, int)>& body) {
  if (ranges.empty()) return;
  ThreadPool::Instance().Run(
      static_cast<int>(ranges.size()),
      [&](int w) { body(ranges[static_cast<size_t>(w)], w); });
}

void ParallelFor(int threads, int64_t total, int64_t align,
                 const std::function<void(Range, int)>& body) {
  if (total <= 0) return;
  if (threads <= 1) {
    body(Range{0, total}, 0);
    return;
  }
  ParallelRanges(PartitionRows(total, threads, align), body);
}

Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& st : statuses) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace factorml::exec

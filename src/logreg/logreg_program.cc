// Logistic regression as a core/pipeline ModelProgram: IRLS over the
// factorized Gram. Every iteration is one "irls" full pass accumulating
// the weighted normal equations A = X^T W X, b = X^T W z with
// W = diag(s_i), s_i = p_i (1 - p_i), z_i = eta_i + (y_i - p_i) / s_i —
// which is linreg's Gram/cofactor pass with per-tuple weight s_i and
// target z_i. The factorized path therefore reuses linreg's cofactor
// deferral verbatim, weighted: per fact tuple only the S-diagonal block
// and weighted per-rid masses (sum s, sum s*xs, sum s*z) are touched; the
// S x Ri cross, Ri-diagonal and Ri-cofactor blocks become one rank-1
// update per *attribute* tuple at pass end. The response
// eta = beta . x + bias is itself factorized: per-rid dot products
// beta_Ri . xr are computed once per R tuple per pass (BeginPass), so a
// fact tuple costs O(dS + q) instead of O(d) — the cursor plane only ever
// hands the model normalized rows, proving the strategy/model split
// survived the I/O refactor.

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/opcount.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "la/cholesky.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "logreg/logreg.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace factorml::logreg {

namespace {

using core::pipeline::DenseBlock;
using core::pipeline::FactorizedBlock;
using core::pipeline::PipelineContext;
using la::Matrix;

constexpr double kProbClamp = 1e-12;   // keeps log() finite
constexpr double kWeightFloor = 1e-10; // keeps z = eta + (y-p)/s finite

class LogregProgram final : public core::pipeline::ModelProgram {
 public:
  explicit LogregProgram(const LogregOptions& options) : opt_(options) {}

  const char* Name() const override { return "LOGREG"; }
  const char* TempStem() const override { return "logreg"; }
  uint32_t Capabilities() const override {
    return core::pipeline::kFullPass | core::pipeline::kFactorized |
           core::pipeline::kNeedsTarget;
  }
  Status ValidateOptions(const join::NormalizedRelations& rel) const override {
    (void)rel;
    if (opt_.max_iters < 1) {
      return Status::InvalidArgument("logreg: max_iters must be >= 1");
    }
    if (opt_.l2 < 0.0) {
      return Status::InvalidArgument("logreg: l2 must be >= 0");
    }
    return Status::OK();
  }
  int MaxIterations() const override { return opt_.max_iters; }
  const char* PassName(int) const override { return "irls"; }

  Status Init(const PipelineContext& ctx) override {
    rel_ = ctx.rel;
    factorized_ = ctx.factorized();
    d_ = rel_->total_dims();
    ds_ = rel_->ds();
    q_ = rel_->num_joins();
    da_ = d_ + (opt_.intercept ? 1 : 0);
    n_ = rel_->s.num_rows();
    attr_offset_.resize(q_);
    for (size_t i = 0; i < q_; ++i) attr_offset_[i] = rel_->FeatureOffset(i + 1);
    beta_.assign(da_, 0.0);  // p = 0.5 everywhere: the canonical IRLS start
    gram_.Resize(da_, da_);
    cvec_.assign(da_, 0.0);
    return Status::OK();
  }

  Status BeginPass(const PipelineContext& ctx, int, int, int workers) override {
    views_ = ctx.views;
    gram_.Resize(da_, da_);  // Resize zero-fills: fresh normal equations
    cvec_.assign(da_, 0.0);
    nll_ = 0.0;
    if (factorized_) {
      // eta's attribute part, once per R tuple per pass: the same
      // per-attribute-tuple reuse the Gram deferral exploits.
      rid_dot_.resize(q_);
      for (size_t i = 0; i < q_; ++i) {
        const Matrix& feats = (*ctx.views)[i].feats();
        const size_t n_ri = feats.rows();
        const size_t dri = feats.cols();
        rid_dot_[i].resize(n_ri);
        for (size_t rid = 0; rid < n_ri; ++rid) {
          rid_dot_[i][rid] = la::Dot(feats.Row(rid).data(),
                                     beta_.data() + attr_offset_[i], dri);
        }
      }
    }
    if (factorized_) {
      // Rid-span contract: size each slot's table-0 per-rid masses to the
      // contiguous rid span that slot actually scans, not the full table.
      const auto n_r0 = static_cast<int64_t>((*ctx.views)[0].feats().rows());
      slot_spans_.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        slot_spans_[static_cast<size_t>(w)] =
            core::pipeline::SlotRidSpan(ctx, w, n_r0);
      }
      // Merged per-rid masses stay full-domain; EndPass clears them, so
      // reallocate zeroed every pass (slot states offset-add into them).
      wxsum_.resize(q_);
      wsum_.resize(q_);
      wzsum_.resize(q_);
      for (size_t i = 0; i < q_; ++i) {
        const size_t n_ri = (*ctx.views)[i].feats().rows();
        wxsum_[i].Resize(n_ri, ds_);
        wsum_[i].assign(n_ri, 0.0);
        wzsum_[i].assign(n_ri, 0.0);
      }
    }
    acc_.resize(static_cast<size_t>(workers));
    for (size_t w = 0; w < acc_.size(); ++w) {
      Acc& acc = acc_[w];
      acc.gram.Resize(da_, da_);
      acc.cvec.assign(da_, 0.0);
      acc.nll = 0.0;
      if (factorized_) {
        acc.wsum.resize(q_);
        acc.wxsum.resize(q_);
        acc.wzsum.resize(q_);
        for (size_t i = 0; i < q_; ++i) {
          const size_t n_ri =
              i == 0 ? static_cast<size_t>(slot_spans_[w].size())
                     : (*ctx.views)[i].feats().rows();
          acc.wxsum[i].Resize(n_ri, ds_);
          acc.wsum[i].assign(n_ri, 0.0);
          acc.wzsum[i].assign(n_ri, 0.0);
        }
      }
    }
    return Status::OK();
  }

  void AccumulateDense(int, int worker, const DenseBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    if (block.strips != nullptr) {
      AccumulateDenseStrips(worker, block);
      return;
    }
    for (size_t r = 0; r < block.num_rows; ++r) {
      const double* x = block.X(r);
      const double y = block.Y(r);
      const double eta =
          la::Dot(x, beta_.data(), d_) + (opt_.intercept ? beta_[d_] : 0.0);
      const auto [s, z] = Reweight(eta, y, &acc.nll);
      // Full redundancy of the joined representation: every tuple pays
      // the complete weighted d x d outer product.
      la::AddOuter(s, x, d_, x, d_, &acc.gram, 0, 0);
      la::Axpy(s * z, x, acc.cvec.data(), d_);
      CountMults(1);
      if (opt_.intercept) {
        for (size_t j = 0; j < d_; ++j) acc.gram(j, d_) += s * x[j];
        acc.gram(d_, d_) += s;
        acc.cvec[d_] += s * z;
        CountMults(d_ + 1);
        CountAdds(d_ + 2);
      }
    }
  }

  /// Batched (--kernels=simd) twin of the dense row loop. The linear
  /// response and the weighted normal equations go through the la/ batch
  /// kernels; Reweight stays per-row so the exp/log stream (and its op
  /// charges) is identical to the scalar path. Each kernel is charged the
  /// exact op counts of the per-row loop it replaces.
  void AccumulateDenseStrips(int worker, const DenseBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::ColumnStrips& st = *block.strips;
    const la::Kernels& kern = la::Active();
    const double bias = opt_.intercept ? beta_[d_] : 0.0;
    std::vector<const double*> cols(d_);
    std::vector<double> eta(st.strip_rows);
    std::vector<double> sw(st.strip_rows);
    std::vector<double> sz(st.strip_rows);
    std::vector<double> colsum(opt_.intercept ? d_ : 0);
    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      for (size_t j = 0; j < d_; ++j) cols[j] = block.StripX(s, j);
      const double* y = block.StripY(s);
      // eta = X beta (+ bias) — the per-row Dot stream, batched.
      kern.col_dot_strip(cols.data(), d_, rows, beta_.data(), eta.data());
      CountMults(rows * d_);
      CountAdds(rows * d_);
      for (size_t r = 0; r < rows; ++r) {
        const auto [w, z] = Reweight(eta[r] + bias, y[r], &acc.nll);
        sw[r] = w;
        sz[r] = w * z;
      }
      CountMults(rows);  // the per-row s * z products
      // A += X^T W X and b += X^T W z — the weighted AddOuter/Axpy streams.
      kern.syrk_strip(cols.data(), d_, rows, sw.data(), acc.gram.data(),
                      acc.gram.cols());
      CountMults(rows * (d_ * d_ + d_));
      CountAdds(rows * d_ * d_);
      kern.colsum_strip(cols.data(), d_, rows, sz.data(), acc.cvec.data());
      CountMults(rows * d_);
      CountAdds(rows * d_);
      if (opt_.intercept) {
        std::fill(colsum.begin(), colsum.end(), 0.0);
        kern.colsum_strip(cols.data(), d_, rows, sw.data(), colsum.data());
        for (size_t j = 0; j < d_; ++j) acc.gram(j, d_) += colsum[j];
        double ssum = 0.0;
        double szsum = 0.0;
        const double* swp = sw.data();
        const double* szp = sz.data();
        kern.colsum_strip(&swp, 1, rows, nullptr, &ssum);
        kern.colsum_strip(&szp, 1, rows, nullptr, &szsum);
        acc.gram(d_, d_) += ssum;
        acc.cvec[d_] += szsum;
        CountMults(rows * (d_ + 1));
        CountAdds(rows * (d_ + 2));
      }
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  void AccumulateFactorized(int, int worker,
                            const FactorizedBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    const storage::RowBatch& s_rows = *block.s_rows;
    const size_t y_off = 1;  // kNeedsTarget: S feature column 0 is Y
    for (size_t r = 0; r < s_rows.num_rows; ++r) {
      const double* xs = s_rows.feats.Row(r).data() + y_off;
      const double y = s_rows.feats(r, 0);
      const int64_t* keys = s_rows.KeysOf(r);
      // Factorized response: S part per tuple, attribute parts from the
      // per-rid dot cache (one add per join).
      double eta =
          la::Dot(xs, beta_.data(), ds_) + (opt_.intercept ? beta_[d_] : 0.0);
      for (size_t i = 0; i < q_; ++i) {
        eta += rid_dot_[i][static_cast<size_t>(keys[rel_->FkKeyIndex(i)])];
      }
      CountAdds(q_);
      const auto [s, z] = Reweight(eta, y, &acc.nll);
      const double sz = s * z;
      CountMults(1);
      // Per fact tuple: only the S-diagonal block and weighted per-rid
      // masses — the linreg deferral with weight s and target z.
      la::AddOuter(s, xs, ds_, xs, ds_, &acc.gram, 0, 0);
      la::Axpy(sz, xs, acc.cvec.data(), ds_);
      const auto base0 = static_cast<size_t>(
          slot_spans_[static_cast<size_t>(worker)].begin);
      for (size_t i = 0; i < q_; ++i) {
        const auto rid = static_cast<size_t>(keys[rel_->FkKeyIndex(i)]);
        // Table-0 per-rid masses are span-relative; i>=1 keep full rids.
        const size_t arid = i == 0 ? rid - base0 : rid;
        la::Axpy(s, xs, acc.wxsum[i].Row(arid).data(), ds_);
        acc.wsum[i][arid] += s;
        acc.wzsum[i][arid] += sz;
        CountAdds(2);
        // Attr-attr cross blocks (multi-way joins only) have no
        // single-table factorization; accumulate them per fact tuple,
        // weighted, like linreg.
        if (i + 1 < q_) {
          const auto xr_i =
              (*views_)[i].FeaturesOf(static_cast<int64_t>(rid));
          for (size_t j = i + 1; j < q_; ++j) {
            const auto rid_j = keys[rel_->FkKeyIndex(j)];
            const auto xr_j = (*views_)[j].FeaturesOf(rid_j);
            la::AddOuter(s, xr_i.data(), xr_i.size(), xr_j.data(),
                         xr_j.size(), &acc.gram, attr_offset_[i],
                         attr_offset_[j]);
          }
        }
      }
    }
  }

  void MergeWorker(int, int worker) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    gram_.Add(acc.gram);
    for (size_t j = 0; j < da_; ++j) cvec_[j] += acc.cvec[j];
    nll_ += acc.nll;
    if (factorized_) {
      // Table 0 is span-scoped per slot: offset-add into the full-domain
      // merged masses at the slot's span base. Tables i>=1 are full-domain.
      const auto off0 =
          static_cast<size_t>(slot_spans_[static_cast<size_t>(worker)].begin);
      for (size_t i = 0; i < q_; ++i) {
        const size_t off = i == 0 ? off0 : 0;
        for (size_t r = 0; r < static_cast<size_t>(acc.wxsum[i].rows()); ++r) {
          const double* src = acc.wxsum[i].Row(r).data();
          double* dst = wxsum_[i].Row(r + off).data();
          for (size_t j = 0; j < ds_; ++j) dst[j] += src[j];
        }
        for (size_t r = 0; r < acc.wsum[i].size(); ++r) {
          wsum_[i][r + off] += acc.wsum[i][r];
          wzsum_[i][r + off] += acc.wzsum[i][r];
        }
      }
    }
  }

  void VisitSlotState(
      int, int slot,
      const std::function<void(double*, size_t)>& visit) override {
    // Shard-plane wire seam: one slot's weighted normal equations (and,
    // on the factorized path, its weighted per-rid masses).
    Acc& acc = acc_[static_cast<size_t>(slot)];
    visit(acc.gram.data(), acc.gram.rows() * acc.gram.cols());
    visit(acc.cvec.data(), acc.cvec.size());
    visit(&acc.nll, 1);
    if (factorized_) {
      for (size_t i = 0; i < q_; ++i) {
        visit(acc.wxsum[i].data(), acc.wxsum[i].rows() * acc.wxsum[i].cols());
        visit(acc.wsum[i].data(), acc.wsum[i].size());
        visit(acc.wzsum[i].data(), acc.wzsum[i].size());
      }
    }
  }

  Status EndPass(const PipelineContext& ctx, int, int) override {
    if (factorized_) {
      // Deferred blocks: one rank-1 update per attribute tuple instead of
      // per fact tuple — linreg's cofactor deferral with the IRLS weights
      // folded into the per-rid masses.
      for (size_t i = 0; i < q_; ++i) {
        const Matrix& feats = (*ctx.views)[i].feats();
        const size_t dri = feats.cols();
        const size_t off = attr_offset_[i];
        for (size_t rid = 0; rid < feats.rows(); ++rid) {
          const double sw = wsum_[i][rid];
          if (sw == 0.0) continue;
          const double* xr = feats.Row(rid).data();
          // S x Ri cross block from the weighted per-rid S-slice sums.
          la::AddOuter(1.0, wxsum_[i].Row(rid).data(), ds_, xr, dri, &gram_,
                       0, off);
          // Ri-diagonal block, weighted by the total IRLS mass.
          la::AddOuter(sw, xr, dri, xr, dri, &gram_, off, off);
          // Ri slice of the working-response cofactor.
          la::Axpy(wzsum_[i][rid], xr, cvec_.data() + off, dri);
          if (opt_.intercept) {
            for (size_t j = 0; j < dri; ++j) {
              gram_(off + j, da_ - 1) += sw * xr[j];
            }
            CountMults(dri);
            CountAdds(dri);
          }
        }
      }
      if (opt_.intercept) {
        // Intercept column, S part and total weight, recovered from the
        // table-0 per-rid masses (no extra per-fact-tuple work).
        for (size_t rid = 0; rid < wsum_[0].size(); ++rid) {
          const double* ws = wxsum_[0].Row(rid).data();
          for (size_t j = 0; j < ds_; ++j) gram_(j, da_ - 1) += ws[j];
          gram_(da_ - 1, da_ - 1) += wsum_[0][rid];
          cvec_[da_ - 1] += wzsum_[0][rid];
          CountAdds(ds_ + 2);
        }
      }
      wxsum_.clear();
      wsum_.clear();
      wzsum_.clear();
    }
    // Mirror the one-sided cross blocks, as in linreg.
    for (size_t r = 0; r < da_; ++r) {
      for (size_t c = r + 1; c < da_; ++c) gram_(c, r) = gram_(r, c);
    }
    return Status::OK();
  }

  Result<bool> EndIteration(const PipelineContext& ctx, int iter) override {
    // The per-iteration weighted-normal-equations solve, reported as its
    // own phase next to the "irls" pass time.
    core::PhaseScope phase(ctx.report, "solve");
    Matrix a = gram_;
    for (size_t j = 0; j < d_; ++j) a(j, j) += opt_.l2;  // bias unpenalized
    la::Cholesky chol;
    FML_RETURN_IF_ERROR(chol.FactorWithJitter(a));
    std::vector<double> beta_new(da_);
    chol.Solve(cvec_.data(), beta_new.data());
    double delta = 0.0;
    for (size_t j = 0; j < da_; ++j) {
      delta = std::max(delta, std::fabs(beta_new[j] - beta_[j]));
    }
    CountSubs(da_);
    beta_ = std::move(beta_new);
    objective_ = nll_ / static_cast<double>(n_);
    (void)iter;
    return opt_.tol > 0.0 && delta < opt_.tol;
  }

  /// Mean negative log-likelihood under the parameters of the last
  /// completed IRLS pass (the solve that follows moves beta once more —
  /// like GMM's log-likelihood, which is one E-step behind the final
  /// M-step).
  double Objective() const override { return objective_; }

  void VisitIterationState(
      const std::function<void(double*, size_t)>& visit) override {
    visit(beta_.data(), beta_.size());
    visit(&objective_, 1);
  }

  LogregModel&& TakeModel() && {
    model_.w.assign(beta_.begin(), beta_.begin() + static_cast<long>(d_));
    model_.bias = opt_.intercept ? beta_[da_ - 1] : 0.0;
    return std::move(model_);
  }

 private:
  struct Acc {
    Matrix gram;                // da x da (upper cross blocks only)
    std::vector<double> cvec;   // da
    double nll = 0.0;
    std::vector<Matrix> wxsum;               // [i]: nRi x ds, sum s * xs
    std::vector<std::vector<double>> wsum;   // [i][rid] sum s
    std::vector<std::vector<double>> wzsum;  // [i][rid] sum s * z
  };

  /// IRLS per-tuple quantities from the linear response: weight
  /// s = p(1-p) (floored) and working response z; accrues the tuple's
  /// negative log-likelihood into *nll.
  std::pair<double, double> Reweight(double eta, double y, double* nll) const {
    const double p_raw = 1.0 / (1.0 + std::exp(-eta));
    CountExps(1);
    const double p = std::clamp(p_raw, kProbClamp, 1.0 - kProbClamp);
    const double s = std::max(p * (1.0 - p), kWeightFloor);
    const double z = eta + (y - p) / s;
    *nll -= y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
    CountMults(4);
    CountAdds(3);
    CountSubs(3);
    return {s, z};
  }

  LogregOptions opt_;
  const join::NormalizedRelations* rel_ = nullptr;
  const std::vector<join::AttributeTableView>* views_ = nullptr;
  bool factorized_ = false;
  size_t d_ = 0, ds_ = 0, q_ = 0, da_ = 0;
  int64_t n_ = 0;
  std::vector<size_t> attr_offset_;

  std::vector<double> beta_;  // da (bias last when intercept)
  Matrix gram_;
  std::vector<double> cvec_;
  double nll_ = 0.0;
  double objective_ = 0.0;
  std::vector<std::vector<double>> rid_dot_;  // [i][rid] beta_Ri . xr
  std::vector<Matrix> wxsum_;
  std::vector<std::vector<double>> wsum_;
  std::vector<std::vector<double>> wzsum_;
  std::vector<Acc> acc_;
  std::vector<exec::Range> slot_spans_;  // table-0 rid span per slot

  LogregModel model_;
};

}  // namespace

double LogregModel::PredictProb(const double* x) const {
  return 1.0 / (1.0 + std::exp(-(la::Dot(x, w.data(), w.size()) + bias)));
}

double LogregModel::MaxAbsDiff(const LogregModel& a, const LogregModel& b) {
  FML_CHECK_EQ(a.w.size(), b.w.size());
  double m = std::fabs(a.bias - b.bias);
  for (size_t j = 0; j < a.w.size(); ++j) {
    m = std::max(m, std::fabs(a.w[j] - b.w[j]));
  }
  return m;
}

Result<LogregModel> TrainLogreg(const join::NormalizedRelations& rel,
                                const LogregOptions& options,
                                core::Algorithm algorithm,
                                storage::BufferPool* pool,
                                core::TrainReport* report) {
  LogregProgram program(options);
  core::pipeline::StrategyOptions sopt =
      core::pipeline::LiftStrategyOptions(options);
  if (sopt.shard_backend == "process") {
    sopt.shard_job_family = "logreg";
    sopt.shard_job_blob = EncodeShardJob(options);
  }
  FML_RETURN_IF_ERROR(
      core::pipeline::RunTraining(rel, algorithm, sopt, &program, pool,
                                  report));
  return std::move(program).TakeModel();
}

std::string EncodeShardJob(const LogregOptions& options) {
  net::ByteWriter w;
  w.F64(options.l2);
  w.U8(options.intercept ? 1 : 0);
  w.I64(options.max_iters);
  w.F64(options.tol);
  return w.Take();
}

Result<LogregOptions> DecodeShardJob(const std::string& blob) {
  LogregOptions options;
  net::ByteReader r(blob);
  uint8_t intercept = 0;
  int64_t max_iters = 0;
  FML_RETURN_IF_ERROR(r.F64(&options.l2));
  FML_RETURN_IF_ERROR(r.U8(&intercept));
  FML_RETURN_IF_ERROR(r.I64(&max_iters));
  FML_RETURN_IF_ERROR(r.F64(&options.tol));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("logreg shard job: trailing bytes");
  }
  options.intercept = intercept != 0;
  options.max_iters = static_cast<int>(max_iters);
  return options;
}

std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const LogregOptions& options) {
  return std::make_unique<LogregProgram>(options);
}

}  // namespace factorml::logreg

#ifndef FACTORML_COMMON_OPCOUNT_H_
#define FACTORML_COMMON_OPCOUNT_H_

#include <cstdint>
#include <string>

namespace factorml {

/// Coarse-grained floating-point operation counters. Kernels in `la/` and
/// the trainers add per-call totals (e.g. a d×d gemv adds d*d mults), so
/// the overhead is negligible while the counts validate the paper's
/// analytical cost model (Sec. V-B, VI-A2).
struct OpCounters {
  uint64_t mults = 0;
  uint64_t adds = 0;
  uint64_t subs = 0;
  uint64_t exps = 0;  // transcendental calls (exp/log/tanh)

  uint64_t Total() const { return mults + adds + subs + exps; }

  OpCounters operator-(const OpCounters& o) const {
    return {mults - o.mults, adds - o.adds, subs - o.subs, exps - o.exps};
  }

  OpCounters& operator+=(const OpCounters& o) {
    mults += o.mults;
    adds += o.adds;
    subs += o.subs;
    exps += o.exps;
    return *this;
  }

  /// Adds this counter's totals into `dst` — the explicit merge step by
  /// which the exec runtime folds per-worker counts back into the
  /// dispatching thread after a parallel region.
  void MergeInto(OpCounters* dst) const { *dst += *this; }

  std::string ToString() const;
};

/// Per-thread op accounting. Kernels always charge the calling thread's
/// counters (no contention); the exec runtime merges each worker's delta
/// into the dispatching thread in worker order, so snapshot deltas taken on
/// the dispatching thread (ReportScope) see the whole parallel run.
/// Single-threaded callers observe the exact pre-existing semantics.
OpCounters& GlobalOps();
void ResetGlobalOps();

inline void CountMults(uint64_t n) { GlobalOps().mults += n; }
inline void CountAdds(uint64_t n) { GlobalOps().adds += n; }
inline void CountSubs(uint64_t n) { GlobalOps().subs += n; }
inline void CountExps(uint64_t n) { GlobalOps().exps += n; }

}  // namespace factorml

#endif  // FACTORML_COMMON_OPCOUNT_H_

#ifndef FACTORML_COMMON_OPCOUNT_H_
#define FACTORML_COMMON_OPCOUNT_H_

#include <cstdint>
#include <string>

namespace factorml {

/// Coarse-grained floating-point operation counters. Kernels in `la/` and
/// the trainers add per-call totals (e.g. a d×d gemv adds d*d mults), so
/// the overhead is negligible while the counts validate the paper's
/// analytical cost model (Sec. V-B, VI-A2).
struct OpCounters {
  uint64_t mults = 0;
  uint64_t adds = 0;
  uint64_t subs = 0;
  uint64_t exps = 0;  // transcendental calls (exp/log/tanh)

  uint64_t Total() const { return mults + adds + subs + exps; }

  OpCounters operator-(const OpCounters& o) const {
    return {mults - o.mults, adds - o.adds, subs - o.subs, exps - o.exps};
  }

  std::string ToString() const;
};

/// Global (single-threaded) op accounting. Trainers snapshot before/after a
/// run; `delta = after - before`.
OpCounters& GlobalOps();
void ResetGlobalOps();

inline void CountMults(uint64_t n) { GlobalOps().mults += n; }
inline void CountAdds(uint64_t n) { GlobalOps().adds += n; }
inline void CountSubs(uint64_t n) { GlobalOps().subs += n; }
inline void CountExps(uint64_t n) { GlobalOps().exps += n; }

}  // namespace factorml

#endif  // FACTORML_COMMON_OPCOUNT_H_

#ifndef FACTORML_COMMON_STOPWATCH_H_
#define FACTORML_COMMON_STOPWATCH_H_

#include <chrono>

namespace factorml {

/// Wall-clock stopwatch used by the benchmark harness and TrainReport.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace factorml

#endif  // FACTORML_COMMON_STOPWATCH_H_

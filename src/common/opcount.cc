#include "common/opcount.h"

#include <sstream>

namespace factorml {

namespace {
thread_local OpCounters g_ops;
}  // namespace

OpCounters& GlobalOps() { return g_ops; }
void ResetGlobalOps() { g_ops = OpCounters{}; }

std::string OpCounters::ToString() const {
  std::ostringstream os;
  os << "mults=" << mults << " adds=" << adds << " subs=" << subs
     << " exps=" << exps;
  return os.str();
}

}  // namespace factorml

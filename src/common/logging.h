#ifndef FACTORML_COMMON_LOGGING_H_
#define FACTORML_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace factorml {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Stream-style log sink; emits on destruction. FATAL severity aborts the
/// process after emitting, so CHECK failures cannot be ignored.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Minimum severity that is actually printed (default: kInfo).
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

}  // namespace internal_logging
}  // namespace factorml

#define FML_LOG_INTERNAL(severity)                                    \
  ::factorml::internal_logging::LogMessage(                           \
      ::factorml::internal_logging::LogSeverity::severity, __FILE__,  \
      __LINE__)

#define FML_LOG(severity) FML_LOG_INTERNAL(k##severity)

/// CHECK aborts with a message when the condition is false. Used for
/// programming errors (contract violations), never for data-dependent
/// failures — those return Status.
#define FML_CHECK(cond)                                  \
  if (!(cond))                                           \
  FML_LOG(Fatal) << "Check failed: " #cond " "

#define FML_CHECK_OP(op, a, b)                                         \
  if (!((a)op(b)))                                                     \
  FML_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)     \
                 << " vs " << (b) << ") "

#define FML_CHECK_EQ(a, b) FML_CHECK_OP(==, a, b)
#define FML_CHECK_NE(a, b) FML_CHECK_OP(!=, a, b)
#define FML_CHECK_LT(a, b) FML_CHECK_OP(<, a, b)
#define FML_CHECK_LE(a, b) FML_CHECK_OP(<=, a, b)
#define FML_CHECK_GT(a, b) FML_CHECK_OP(>, a, b)
#define FML_CHECK_GE(a, b) FML_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define FML_DCHECK(cond) FML_CHECK(true || (cond))
#else
#define FML_DCHECK(cond) FML_CHECK(cond)
#endif

#endif  // FACTORML_COMMON_LOGGING_H_

#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace factorml {
namespace internal_logging {

namespace {
LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityName(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }
LogSeverity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_), file_,
                 line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace factorml

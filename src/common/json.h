#ifndef FACTORML_COMMON_JSON_H_
#define FACTORML_COMMON_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace factorml {

/// Renders a double as a JSON value. JSON has no inf/nan literals — a
/// non-finite value silently printed as `inf` or `-nan` makes the whole
/// artifact unparseable — so every emitter in the tree (bench --json rows,
/// the obs metrics snapshot, run manifests) routes its doubles through
/// here: non-finite renders as `null`, finite at full round-trip
/// precision.
inline std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal JSON string escape (quotes, backslashes, control chars) shared
/// by every emitter of free-form fields (manifest paths, bench section
/// names, error strings).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace factorml

#endif  // FACTORML_COMMON_JSON_H_

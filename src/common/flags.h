#ifndef FACTORML_COMMON_FLAGS_H_
#define FACTORML_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace factorml {

/// Minimal `--key=value` command-line parser for the benchmark and example
/// binaries. Unknown flags are kept and can be listed; positional arguments
/// are ignored. Not a general-purpose flags library.
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool Has(const std::string& key) const;

  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  /// Comma-separated list of integers, e.g. `--rr=50,100,500`.
  std::vector<int64_t> GetIntList(
      const std::string& key, const std::vector<int64_t>& default_value) const;

  /// The shared `--threads` flag: worker count for the exec/ parallel
  /// runtime. Default 1 — the exact serial reproduction. Values < 1 are
  /// rejected with an error and exit(2); this is the single validation
  /// point for every binary (CLI, benches, examples).
  int GetThreads(int default_value = 1) const;

  /// The shared `--morsel-rows=N` flag: rows per scheduler chunk of the
  /// full-pass plane. 0 (default) keeps the static per-worker partition;
  /// N > 0 enables the chunk-ordered work scheduler, whose results depend
  /// on N but not on --threads or --steal. Values < 0 or non-integers are
  /// rejected with an error and exit(2).
  int64_t GetMorselRows(int64_t default_value = 0) const;

  /// The shared `--steal={on,off}` flag: work stealing over the chunked
  /// decomposition (implies chunking with the default morsel size when
  /// --morsel-rows is unset). Anything other than on/off exits(2).
  bool GetSteal(bool default_value = false) const;

  /// The shared `--shards=N` flag: rid-range shards of the full-pass
  /// plane. 1 (default) runs unsharded — byte-identical to the pre-shard
  /// engine. N > 1 splits every full pass into N contiguous chunk spans
  /// driven through the in-process shard backend (one scan + one
  /// serialized ShardDelta per shard, merged in shard-id order); implies
  /// the chunk-ordered scheduler, and results are bit-identical to
  /// --shards=1 at the same resolved --morsel-rows. Values < 1 or
  /// non-integers are rejected with an error and exit(2).
  int GetShards(int default_value = 1) const;

  /// The shared `--prefetch={on,off}` flag: asynchronous double-buffered
  /// page prefetch over the unified I/O cursor plane. Residency-only —
  /// results are bit-identical either way; off (the default) keeps the
  /// demand-path page-I/O counts byte-identical to the seed goldens.
  /// Anything other than on/off exits(2).
  bool GetPrefetch(bool default_value = false) const;

  /// The shared `--prefetch-depth=N` flag: batches read ahead per worker
  /// when prefetch is on (default 2, classic double buffering). Values
  /// < 1 or non-integers are rejected with an error and exit(2).
  int GetPrefetchDepth(int default_value = 2) const;

  /// The shared `--kernels={scalar,simd}` flag: compute-kernel backend of
  /// the la/ kernel plane. scalar (the default) is bit-identical to the
  /// seed goldens; simd selects the best runtime-dispatched vector backend
  /// (AVX2/FMA, NEON, or portable vector extensions) plus the batched
  /// column-strip decode path — same op counts and page I/O, numerics
  /// equal to scalar within reassociation tolerance. Anything else
  /// exits(2), listing the choices (like --steal/--prefetch).
  std::string GetKernels(const std::string& default_value = "scalar") const;

  /// The shared `--buffer-pages=N` flag: buffer-pool capacity in pages
  /// (the legacy spelling `--pool_pages` is still honored). Values < 1 or
  /// non-integers are rejected with an error and exit(2); this is the
  /// single validation point for every binary, like --threads.
  int64_t GetBufferPages(int64_t default_value) const;

  /// The shared `--trace=PATH` flag: span-trace output path for the obs/
  /// tracer (Chrome trace-event JSON, loadable in Perfetto). Empty
  /// (default) leaves tracing off — the guards compile to a branch on a
  /// cold flag. An unwritable path is rejected with an error and exit(2)
  /// up front, not after the traced run has burned its wall time.
  std::string GetTracePath(const std::string& default_value = "") const;

  /// The shared `--shard-backend={inproc,process}` flag: execution backend
  /// for `--shards=N`. inproc (the default) drives shard scans in the
  /// calling process — byte-identical to the pre-backend engine. process
  /// forks one `factormld` worker per shard and exchanges serialized
  /// ShardDeltas over length-prefixed socket frames; results are
  /// bit-identical to inproc at the same shard/morsel geometry. Anything
  /// else exits(2) listing the choices.
  std::string GetShardBackend(const std::string& default_value = "inproc") const;

  /// The shared `--shard-timeout-ms=N` flag: per-worker liveness deadline
  /// of the process shard backend (default 30000). A worker that produces
  /// no frame within the deadline is declared dead; its unfinished spans
  /// are requeued on a healthy worker with bit-identical results. Values
  /// < 1 or non-integers are rejected with an error and exit(2).
  int64_t GetShardTimeoutMs(int64_t default_value = 30000) const;

  /// The shared `--shard-transport={unix,tcp}` flag: socket family of the
  /// process shard backend. unix (the default) uses a Unix-domain socket
  /// under the run's temp dir; tcp uses 127.0.0.1 with a kernel-assigned
  /// port. Identical wire format and results. Anything else exits(2).
  std::string GetShardTransport(const std::string& default_value = "unix") const;

  /// The shared `--trace-buffer-kb=N` flag: per-thread trace ring capacity
  /// in KiB (default 1024). Overflow beyond the ring drops events
  /// (counted), never blocks. Values < 1 or non-integers are rejected
  /// with an error and exit(2).
  int64_t GetTraceBufferKb(int64_t default_value = 1024) const;

  /// The shared `--delta-encoding={dense,sparse}` flag: ShardDelta wire
  /// format of the sharded planes. dense (the default) ships every slot
  /// double (v1 frames, byte-identical to the seed); sparse ships v2
  /// zero-run-length frames that elide zero runs — decoded bit-identically,
  /// so results match dense exactly. Anything else exits(2).
  std::string GetDeltaEncoding(const std::string& default_value = "dense") const;

  /// The shared `--checkpoint-dir=PATH` flag: directory for CRC-verified
  /// training checkpoints (and their JSON sidecars). Empty (default)
  /// leaves checkpointing off. A non-writable directory is rejected with
  /// an error and exit(2) up front, like --trace.
  std::string GetCheckpointDir(const std::string& default_value = "") const;

  /// The shared `--checkpoint-every=N` flag: completed iterations between
  /// checkpoint writes (default 1 when --checkpoint-dir is set). Requires
  /// --checkpoint-dir; values < 1, non-integers, or use without the dir
  /// flag are rejected with an error and exit(2).
  int64_t GetCheckpointEvery(int64_t default_value = 0) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace factorml

#endif  // FACTORML_COMMON_FLAGS_H_

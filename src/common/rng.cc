#include "common/rng.h"

#include <cmath>
#include <cstring>

namespace factorml {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  cached_gaussian_ = mag * std::sin(two_pi * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

void Rng::SaveState(double out[kStateDoubles]) const {
  for (int i = 0; i < 4; ++i) {
    std::memcpy(&out[i], &s_[i], sizeof(double));
  }
  out[4] = has_cached_gaussian_ ? 1.0 : 0.0;
  out[5] = cached_gaussian_;
}

void Rng::RestoreState(const double in[kStateDoubles]) {
  for (int i = 0; i < 4; ++i) {
    std::memcpy(&s_[i], &in[i], sizeof(uint64_t));
  }
  has_cached_gaussian_ = in[4] != 0.0;
  cached_gaussian_ = in[5];
}

}  // namespace factorml

#ifndef FACTORML_COMMON_RNG_H_
#define FACTORML_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace factorml {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64-seeded state). All data generation and model initialization
/// in the library goes through this class so experiments are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n).
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (one value cached).
  double NextGaussian();

  /// Normal with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Checkpoint seam: the complete generator state (4 xoshiro words, the
  /// Box-Muller cache flag and the cached value), round-tripped through
  /// doubles so it can ride the VisitIterationState stream. Save and
  /// Restore are exact bit-pattern inverses.
  static constexpr size_t kStateDoubles = 6;
  void SaveState(double out[kStateDoubles]) const;
  void RestoreState(const double in[kStateDoubles]);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace factorml

#endif  // FACTORML_COMMON_RNG_H_

#include "common/flags.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace factorml {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg] = "true";  // bare flag, e.g. --verbose
    } else {
      kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

bool ArgParser::Has(const std::string& key) const {
  return kv_.count(key) > 0;
}

int64_t ArgParser::GetInt(const std::string& key, int64_t default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "invalid --%s=%s (must be an integer)\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(value);
}

double ArgParser::GetDouble(const std::string& key,
                            double default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool ArgParser::GetBool(const std::string& key, bool default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string ArgParser::GetString(const std::string& key,
                                 const std::string& default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return default_value;
  return it->second;
}

std::vector<int64_t> ArgParser::GetIntList(
    const std::string& key, const std::vector<int64_t>& default_value) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return default_value;
  std::vector<int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(item.c_str(), &end, 10);
    if (errno == ERANGE || end == item.c_str() || *end != '\0') {
      std::fprintf(stderr,
                   "invalid --%s=%s (must be a comma-separated list of "
                   "integers; '%s' is not an integer)\n",
                   key.c_str(), it->second.c_str(), item.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<int64_t>(value));
  }
  return out;
}

int ArgParser::GetThreads(int default_value) const {
  auto it = kv_.find("threads");
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long threads = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      threads < 1 || threads > INT_MAX) {
    std::fprintf(stderr,
                 "invalid --threads=%s (must be an integer >= 1; 1 = the "
                 "exact serial reproduction)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int>(threads);
}

int64_t ArgParser::GetMorselRows(int64_t default_value) const {
  auto it = kv_.find("morsel-rows");
  if (it == kv_.end()) return default_value < 0 ? 0 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long rows = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      rows < 0) {
    std::fprintf(stderr,
                 "invalid --morsel-rows=%s (must be an integer >= 0; 0 = "
                 "static per-worker morsels, N > 0 = chunk-ordered "
                 "scheduler with N-row chunks)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(rows);
}

bool ArgParser::GetSteal(bool default_value) const {
  auto it = kv_.find("steal");
  if (it == kv_.end()) return default_value;
  if (it->second == "on") return true;
  if (it->second == "off") return false;
  std::fprintf(stderr,
               "invalid --steal=%s (must be 'on' or 'off'; on = idle "
               "workers take chunks from busy ones, bit-identical results "
               "either way)\n",
               it->second.c_str());
  std::exit(2);
}

int ArgParser::GetShards(int default_value) const {
  auto it = kv_.find("shards");
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long shards = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      shards < 1 || shards > INT_MAX) {
    std::fprintf(stderr,
                 "invalid --shards=%s (must be an integer >= 1; 1 = "
                 "unsharded, N > 1 = rid-range shards with bit-identical "
                 "results at the same --morsel-rows)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int>(shards);
}

bool ArgParser::GetPrefetch(bool default_value) const {
  auto it = kv_.find("prefetch");
  if (it == kv_.end()) return default_value;
  if (it->second == "on") return true;
  if (it->second == "off") return false;
  std::fprintf(stderr,
               "invalid --prefetch=%s (must be 'on' or 'off'; on = overlap "
               "the next morsel's page reads with compute, bit-identical "
               "results either way)\n",
               it->second.c_str());
  std::exit(2);
}

int ArgParser::GetPrefetchDepth(int default_value) const {
  auto it = kv_.find("prefetch-depth");
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long depth = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      depth < 1 || depth > INT_MAX) {
    std::fprintf(stderr,
                 "invalid --prefetch-depth=%s (must be an integer >= 1: "
                 "batches read ahead per worker; 2 = double buffering)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int>(depth);
}

std::string ArgParser::GetKernels(const std::string& default_value) const {
  auto it = kv_.find("kernels");
  if (it == kv_.end()) return default_value;
  if (it->second == "scalar" || it->second == "simd") return it->second;
  std::fprintf(stderr,
               "invalid --kernels=%s (must be 'scalar' or 'simd'; scalar = "
               "bit-identical seed kernels, simd = runtime-dispatched "
               "vector kernels + batched strip decode, same op counts and "
               "page I/O to floating-point reassociation tolerance)\n",
               it->second.c_str());
  std::exit(2);
}

int64_t ArgParser::GetBufferPages(int64_t default_value) const {
  auto it = kv_.find("buffer-pages");
  if (it == kv_.end()) it = kv_.find("pool_pages");  // legacy spelling
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long pages = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      pages < 1) {
    std::fprintf(stderr,
                 "invalid --buffer-pages=%s (must be an integer >= 1: "
                 "buffer-pool capacity in 8 KiB pages)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(pages);
}

std::string ArgParser::GetTracePath(const std::string& default_value) const {
  auto it = kv_.find("trace");
  if (it == kv_.end()) return default_value;
  const std::string& path = it->second;
  // Probe writability now (append mode: an existing file is not
  // truncated by the probe; the flush at run end rewrites it).
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (path.empty() || f == nullptr) {
    std::fprintf(stderr,
                 "invalid --trace=%s (must be a writable file path for the "
                 "Chrome trace-event JSON output)\n",
                 path.c_str());
    std::exit(2);
  }
  std::fclose(f);
  return path;
}

std::string ArgParser::GetShardBackend(const std::string& default_value) const {
  auto it = kv_.find("shard-backend");
  if (it == kv_.end()) return default_value;
  if (it->second == "inproc" || it->second == "process") return it->second;
  std::fprintf(stderr,
               "invalid --shard-backend=%s (must be 'inproc' or 'process'; "
               "inproc = the in-process shard driver, byte-identical to the "
               "seed; process = one factormld worker per shard over "
               "length-prefixed socket frames, bit-identical results)\n",
               it->second.c_str());
  std::exit(2);
}

int64_t ArgParser::GetShardTimeoutMs(int64_t default_value) const {
  auto it = kv_.find("shard-timeout-ms");
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long ms = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' || ms < 1) {
    std::fprintf(stderr,
                 "invalid --shard-timeout-ms=%s (must be an integer >= 1: "
                 "per-worker deadline before a shard worker is declared dead "
                 "and its spans are requeued)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(ms);
}

std::string ArgParser::GetShardTransport(
    const std::string& default_value) const {
  auto it = kv_.find("shard-transport");
  if (it == kv_.end()) return default_value;
  if (it->second == "unix" || it->second == "tcp") return it->second;
  std::fprintf(stderr,
               "invalid --shard-transport=%s (must be 'unix' or 'tcp'; unix = "
               "a Unix-domain socket in the temp dir, tcp = 127.0.0.1 with a "
               "kernel-assigned port; same wire format either way)\n",
               it->second.c_str());
  std::exit(2);
}

std::string ArgParser::GetDeltaEncoding(
    const std::string& default_value) const {
  auto it = kv_.find("delta-encoding");
  if (it == kv_.end()) return default_value;
  if (it->second == "dense" || it->second == "sparse") return it->second;
  std::fprintf(stderr,
               "invalid --delta-encoding=%s (must be 'dense' or 'sparse'; "
               "dense = v1 frames shipping every slot double, sparse = v2 "
               "zero-run-length frames, decoded bit-identically so results "
               "match dense exactly)\n",
               it->second.c_str());
  std::exit(2);
}

std::string ArgParser::GetCheckpointDir(
    const std::string& default_value) const {
  auto it = kv_.find("checkpoint-dir");
  if (it == kv_.end()) return default_value;
  const std::string& dir = it->second;
  // Probe writability now (like --trace): create-then-remove a probe file
  // so an unwritable directory fails before the run burns wall time.
  const std::string probe = dir + "/.ckpt-probe";
  std::FILE* f = dir.empty() ? nullptr : std::fopen(probe.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr,
                 "invalid --checkpoint-dir=%s (must be an existing writable "
                 "directory for the CRC-verified training checkpoints)\n",
                 dir.c_str());
    std::exit(2);
  }
  std::fclose(f);
  std::remove(probe.c_str());
  return dir;
}

int64_t ArgParser::GetCheckpointEvery(int64_t default_value) const {
  auto it = kv_.find("checkpoint-every");
  if (it == kv_.end()) return default_value < 0 ? 0 : default_value;
  if (kv_.find("checkpoint-dir") == kv_.end()) {
    std::fprintf(stderr,
                 "invalid --checkpoint-every=%s (requires --checkpoint-dir; "
                 "the interval has nowhere to write without a checkpoint "
                 "directory)\n",
                 it->second.c_str());
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const long long every = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      every < 1) {
    std::fprintf(stderr,
                 "invalid --checkpoint-every=%s (must be an integer >= 1: "
                 "completed iterations between checkpoint writes)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(every);
}

int64_t ArgParser::GetTraceBufferKb(int64_t default_value) const {
  auto it = kv_.find("trace-buffer-kb");
  if (it == kv_.end()) return default_value < 1 ? 1 : default_value;
  errno = 0;
  char* end = nullptr;
  const long long kb = std::strtoll(it->second.c_str(), &end, 10);
  if (errno == ERANGE || end == it->second.c_str() || *end != '\0' ||
      kb < 1) {
    std::fprintf(stderr,
                 "invalid --trace-buffer-kb=%s (must be an integer >= 1: "
                 "per-thread trace ring capacity in KiB; overflow drops "
                 "events, counted)\n",
                 it->second.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(kb);
}

}  // namespace factorml

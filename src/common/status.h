#ifndef FACTORML_COMMON_STATUS_H_
#define FACTORML_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace factorml {

/// Error categories used across the library. Mirrors the subset of
/// Arrow/RocksDB-style codes that this project needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "IOError", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight error-or-success value. The library does not throw across
/// public API boundaries; fallible operations return `Status` or
/// `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an errored result aborts (programming error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    FML_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& value() & {
    FML_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  const T& value() const& {
    FML_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& value() && {
    FML_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace factorml

/// Propagates a non-OK Status to the caller.
#define FML_RETURN_IF_ERROR(expr)                       \
  do {                                                  \
    ::factorml::Status _fml_status = (expr);            \
    if (!_fml_status.ok()) return _fml_status;          \
  } while (false)

#define FML_CONCAT_IMPL(a, b) a##b
#define FML_CONCAT(a, b) FML_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define FML_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto FML_CONCAT(_fml_result_, __LINE__) = (rexpr);            \
  if (!FML_CONCAT(_fml_result_, __LINE__).ok())                 \
    return FML_CONCAT(_fml_result_, __LINE__).status();         \
  lhs = std::move(FML_CONCAT(_fml_result_, __LINE__)).value()

#endif  // FACTORML_COMMON_STATUS_H_

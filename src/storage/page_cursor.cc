#include "storage/page_cursor.h"

#include <algorithm>
#include <cstring>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::storage {

namespace {

// Data page layout (shared with Table's write side): uint64 row count,
// then packed fixed-width rows.
uint64_t PageRowCount(const char* page) {
  uint64_t n;
  std::memcpy(&n, page, sizeof(n));
  return n;
}

}  // namespace

// ------------------------------------------------------------- Prefetcher

Prefetcher::Prefetcher(int max_inflight)
    : max_inflight_(max_inflight < 1 ? 1 : max_inflight) {}

Prefetcher::~Prefetcher() { Drain(); }

void Prefetcher::PrefetchPages(BufferPool* pool, PagedFile* file,
                               uint64_t first_page, uint64_t end_page) {
  if (first_page >= end_page) return;
  static obs::Counter* requests =
      obs::Registry::Instance().GetCounter("storage.prefetch_requests");
  static obs::Counter* dropped_ctr =
      obs::Registry::Instance().GetCounter("storage.prefetch_dropped");
  requests->Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_ >= max_inflight_) {
      ++dropped_;
      dropped_ctr->Add();
      return;
    }
    ++inflight_;
  }
  obs::TraceInstant(obs::kCatStorage, "prefetch_issue", "page",
                    static_cast<int64_t>(first_page));
  exec::ThreadPool::Instance().SubmitIo([this, pool, file, first_page,
                                         end_page] {
    obs::TraceSpan land_span(obs::kCatStorage, "prefetch_land");
    uint64_t fetched = 0;
    for (uint64_t page = first_page; page < end_page; ++page) {
      if (pool->Contains(file, page)) continue;
      auto buf = std::make_unique<char[]>(kPageSize);
      // ReadPage charges the crew thread's thread-local counters, which
      // are never merged; the folded accounting below is authoritative.
      if (!file->ReadPage(page, buf.get()).ok()) break;
      ++fetched;
      pool->InsertPrefetched(file, page, std::move(buf));
    }
    land_span.Arg("pages", static_cast<int64_t>(fetched));
    std::lock_guard<std::mutex> lock(mu_);
    fetched_total_ += fetched;
    fetched_unfolded_ += fetched;
    if (--inflight_ == 0) cv_.notify_all();
  });
}

void Prefetcher::Drain() {
  static obs::Histogram* drain_micros =
      obs::Registry::Instance().GetHistogram("storage.prefetch_drain_micros");
  obs::TraceSpan drain_span(obs::kCatStorage, "prefetch_drain");
  const uint64_t t0 = obs::NowMicros();
  uint64_t fold = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return inflight_ == 0; });
    fold = fetched_unfolded_;
    fetched_unfolded_ = 0;
  }
  drain_micros->Record(obs::NowMicros() - t0);
  drain_span.Arg("pages", static_cast<int64_t>(fold));
  GlobalIo().pages_read += fold;
  GlobalIo().prefetch_reads += fold;
}

uint64_t Prefetcher::pages_fetched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fetched_total_;
}

uint64_t Prefetcher::requests_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// ------------------------------------------------------------- PageCursor

Status PageCursor::ReadRows(int64_t start_row, size_t count,
                            RowBatch* out) const {
  if (start_row < 0 ||
      start_row + static_cast<int64_t>(count) > table_->num_rows()) {
    return Status::OutOfRange("row range out of bounds in " +
                              table_->path());
  }
  const Schema& schema = table_->schema();
  const size_t rpp = schema.RowsPerPage();
  const size_t row_bytes = schema.RowBytes();

  out->num_rows = count;
  out->num_keys = schema.num_keys;
  out->start_row = start_row;
  out->keys.resize(count * schema.num_keys);
  if (out->feats.rows() != count || out->feats.cols() != schema.num_feats) {
    out->feats.Resize(count, schema.num_feats);
  }

  size_t filled = 0;
  while (filled < count) {
    const int64_t row = start_row + static_cast<int64_t>(filled);
    const uint64_t page_no = 1 + static_cast<uint64_t>(row) / rpp;
    const size_t offset_in_page = static_cast<size_t>(row) % rpp;
    FML_ASSIGN_OR_RETURN(const char* page,
                         pool_->GetPage(table_->file(), page_no));
    const uint64_t rows_in_page = PageRowCount(page);
    if (offset_in_page >= rows_in_page) {
      return Status::Internal("corrupt page in " + table_->path());
    }
    const size_t take =
        std::min(count - filled,
                 static_cast<size_t>(rows_in_page) - offset_in_page);
    const char* src = page + 8 + offset_in_page * row_bytes;
    for (size_t r = 0; r < take; ++r) {
      std::memcpy(out->keys.data() + (filled + r) * schema.num_keys, src,
                  8 * schema.num_keys);
      std::memcpy(out->feats.Row(filled + r).data(),
                  src + 8 * schema.num_keys, 8 * schema.num_feats);
      src += row_bytes;
    }
    filled += take;
  }
  return Status::OK();
}

Status PageCursor::ReadStrips(int64_t start_row, size_t count,
                              size_t strip_rows, ColumnStrips* out) const {
  if (start_row < 0 ||
      start_row + static_cast<int64_t>(count) > table_->num_rows()) {
    return Status::OutOfRange("row range out of bounds in " +
                              table_->path());
  }
  FML_CHECK_GT(strip_rows, 0u);
  static obs::Histogram* decode_micros =
      obs::Registry::Instance().GetHistogram("storage.decode_strip_micros");
  obs::TraceSpan span(obs::kCatStorage, "decode_strip");
  const uint64_t t0 = obs::NowMicros();

  const Schema& schema = table_->schema();
  const size_t rpp = schema.RowsPerPage();
  const size_t row_bytes = schema.RowBytes();
  const size_t d = schema.num_feats;

  out->strip_rows = strip_rows;
  out->num_strips = (count + strip_rows - 1) / strip_rows;
  out->num_rows = count;
  out->num_cols = d;
  out->num_keys = schema.num_keys;
  out->start_row = start_row;
  out->keys.resize(count * schema.num_keys);
  out->data.resize(out->num_strips * d * strip_rows);

  // The page walk below is ReadRows' exactly — same GetPage sequence, so
  // the pool sees an identical demand stream; only the decode destination
  // differs (column scatter instead of row memcpy).
  size_t filled = 0;
  while (filled < count) {
    const int64_t row = start_row + static_cast<int64_t>(filled);
    const uint64_t page_no = 1 + static_cast<uint64_t>(row) / rpp;
    const size_t offset_in_page = static_cast<size_t>(row) % rpp;
    FML_ASSIGN_OR_RETURN(const char* page,
                         pool_->GetPage(table_->file(), page_no));
    const uint64_t rows_in_page = PageRowCount(page);
    if (offset_in_page >= rows_in_page) {
      return Status::Internal("corrupt page in " + table_->path());
    }
    const size_t take =
        std::min(count - filled,
                 static_cast<size_t>(rows_in_page) - offset_in_page);
    const char* src = page + 8 + offset_in_page * row_bytes;
    for (size_t r = 0; r < take; ++r) {
      const size_t idx = filled + r;  // batch-local row index
      std::memcpy(out->keys.data() + idx * schema.num_keys, src,
                  8 * schema.num_keys);
      const char* feat_src = src + 8 * schema.num_keys;
      double* strip0 =
          out->data.data() + (idx / strip_rows) * d * strip_rows +
          idx % strip_rows;
      for (size_t c = 0; c < d; ++c) {
        std::memcpy(strip0 + c * strip_rows, feat_src + 8 * c, 8);
      }
      src += row_bytes;
    }
    filled += take;
  }
  decode_micros->Record(obs::NowMicros() - t0);
  span.Arg("rows", static_cast<int64_t>(count));
  return Status::OK();
}

void PageCursor::PrefetchRows(int64_t start_row, int64_t count) const {
  if (prefetcher_ == nullptr) return;
  const int64_t num_rows = table_->num_rows();
  if (start_row < 0) {
    count += start_row;
    start_row = 0;
  }
  count = std::min(count, num_rows - start_row);
  if (count <= 0) return;
  const auto rpp = static_cast<int64_t>(table_->schema().RowsPerPage());
  const auto first_page = static_cast<uint64_t>(1 + start_row / rpp);
  const auto last_page =
      static_cast<uint64_t>(1 + (start_row + count - 1) / rpp);
  prefetcher_->PrefetchPages(pool_, table_->file(), first_page,
                             last_page + 1);
}

}  // namespace factorml::storage

#include "storage/table.h"

#include <algorithm>
#include <cstring>

#include "storage/page_cursor.h"

namespace factorml::storage {

namespace {

constexpr uint64_t kMagic = 0x464d4c5442763031ULL;  // "FMLTBv01"

struct FileHeader {
  uint64_t magic;
  uint64_t num_keys;
  uint64_t num_feats;
  int64_t num_rows;
};

}  // namespace

Table::Table(std::unique_ptr<PagedFile> file, Schema schema, int64_t num_rows,
             bool writable)
    : file_(std::move(file)),
      schema_(schema),
      num_rows_(num_rows),
      writable_(writable) {
  if (writable_) tail_page_.assign(kPageSize, 0);
}

Result<Table> Table::Create(const std::string& path, const Schema& schema) {
  if (schema.RowBytes() == 0 || schema.RowBytes() > kPageSize - 8) {
    return Status::InvalidArgument("row too large for a page: " + path);
  }
  FML_ASSIGN_OR_RETURN(auto file, PagedFile::Create(path));
  // Reserve the header page; contents are finalized in Finish().
  std::vector<char> header(kPageSize, 0);
  FML_ASSIGN_OR_RETURN(uint64_t page_no, file->AppendPage(header.data()));
  (void)page_no;
  return Table(std::move(file), schema, 0, /*writable=*/true);
}

Result<Table> Table::Open(const std::string& path) {
  FML_ASSIGN_OR_RETURN(auto file, PagedFile::Open(path));
  std::vector<char> header(kPageSize);
  FML_RETURN_IF_ERROR(file->ReadPage(0, header.data()));
  FileHeader h;
  std::memcpy(&h, header.data(), sizeof(h));
  if (h.magic != kMagic) {
    return Status::InvalidArgument("not a factorml table: " + path);
  }
  Schema schema{static_cast<size_t>(h.num_keys),
                static_cast<size_t>(h.num_feats)};
  Table t(std::move(file), schema, h.num_rows, /*writable=*/false);
  t.finished_ = true;
  return t;
}

uint64_t Table::num_data_pages() const {
  const uint64_t total = file_->num_pages();
  return total > 0 ? total - 1 : 0;
}

Status Table::Append(const int64_t* keys, const double* feats) {
  if (!writable_ || finished_) {
    return Status::FailedPrecondition("table not writable: " + path());
  }
  const size_t row_bytes = schema_.RowBytes();
  char* dst = tail_page_.data() + 8 + tail_rows_ * row_bytes;
  std::memcpy(dst, keys, 8 * schema_.num_keys);
  std::memcpy(dst + 8 * schema_.num_keys, feats, 8 * schema_.num_feats);
  ++tail_rows_;
  ++num_rows_;
  if (tail_rows_ == schema_.RowsPerPage()) {
    FML_RETURN_IF_ERROR(FlushTailPage());
  }
  return Status::OK();
}

Status Table::FlushTailPage() {
  const uint64_t n = tail_rows_;
  std::memcpy(tail_page_.data(), &n, sizeof(n));
  FML_ASSIGN_OR_RETURN(uint64_t page_no, file_->AppendPage(tail_page_.data()));
  (void)page_no;
  std::memset(tail_page_.data(), 0, kPageSize);
  tail_rows_ = 0;
  return Status::OK();
}

Status Table::Finish() {
  if (finished_) return Status::OK();
  if (!writable_) {
    return Status::FailedPrecondition("table not writable: " + path());
  }
  if (tail_rows_ > 0) {
    FML_RETURN_IF_ERROR(FlushTailPage());
  }
  std::vector<char> header(kPageSize, 0);
  FileHeader h{kMagic, schema_.num_keys, schema_.num_feats, num_rows_};
  std::memcpy(header.data(), &h, sizeof(h));
  FML_RETURN_IF_ERROR(file_->WritePage(0, header.data()));
  FML_RETURN_IF_ERROR(file_->Flush());
  finished_ = true;
  return Status::OK();
}

Status Table::ReadRows(BufferPool* pool, int64_t start_row, size_t count,
                       RowBatch* out) const {
  return PageCursor(this, pool).ReadRows(start_row, count, out);
}

Status Table::ReadStrips(BufferPool* pool, int64_t start_row, size_t count,
                         size_t strip_rows, ColumnStrips* out) const {
  return PageCursor(this, pool).ReadStrips(start_row, count, strip_rows, out);
}

TableScanner::TableScanner(const Table* table, BufferPool* pool,
                           size_t batch_rows)
    : table_(table), pool_(pool), batch_rows_(batch_rows) {
  FML_CHECK_GT(batch_rows_, 0u);
}

void TableScanner::EnablePrefetch(Prefetcher* prefetcher,
                                  int64_t depth_batches) {
  prefetcher_ = prefetcher;
  prefetch_batches_ = depth_batches < 1 ? 1 : depth_batches;
  prefetch_water_ = next_row_;
}

void TableScanner::PrefetchRowRange(int64_t begin, int64_t end) {
  if (prefetcher_ == nullptr) return;
  const int64_t cap =
      prefetch_batches_ * static_cast<int64_t>(batch_rows_);
  PageCursor cursor(table_, pool_);
  cursor.SetPrefetcher(prefetcher_);
  cursor.PrefetchRows(begin, std::min(end - begin, cap));
}

bool TableScanner::PrepareBatch(PageCursor* cursor, size_t* count) {
  if (!status_.ok()) return false;
  const int64_t end = end_row_ < 0 ? table_->num_rows() : end_row_;
  if (next_row_ >= end) return false;
  *count = static_cast<size_t>(
      std::min<int64_t>(batch_rows_, end - next_row_));
  if (prefetcher_ != nullptr) {
    // Double-buffer: land the following `prefetch_batches_` batches while
    // the caller computes on this one. The high-water mark keeps each row
    // from being requested twice within a range.
    cursor->SetPrefetcher(prefetcher_);
    const int64_t batch_end = next_row_ + static_cast<int64_t>(*count);
    const int64_t window_end = std::min(
        end, batch_end + prefetch_batches_ * static_cast<int64_t>(batch_rows_));
    const int64_t from = std::max(prefetch_water_, batch_end);
    if (window_end > from) {
      cursor->PrefetchRows(from, window_end - from);
      prefetch_water_ = window_end;
    }
  }
  return true;
}

bool TableScanner::Next(RowBatch* out) {
  size_t count = 0;
  PageCursor cursor(table_, pool_);
  if (!PrepareBatch(&cursor, &count)) return false;
  status_ = cursor.ReadRows(next_row_, count, out);
  if (!status_.ok()) return false;
  next_row_ += static_cast<int64_t>(count);
  return true;
}

bool TableScanner::NextStrips(size_t strip_rows, ColumnStrips* out) {
  size_t count = 0;
  PageCursor cursor(table_, pool_);
  if (!PrepareBatch(&cursor, &count)) return false;
  status_ = cursor.ReadStrips(next_row_, count, strip_rows, out);
  if (!status_.ok()) return false;
  next_row_ += static_cast<int64_t>(count);
  return true;
}

void TableScanner::SetRowRange(int64_t begin, int64_t end) {
  FML_CHECK_GE(begin, 0);
  FML_CHECK_LE(end, table_->num_rows());
  FML_CHECK_LE(begin, end);
  begin_row_ = begin;
  end_row_ = end;
  next_row_ = begin;
  prefetch_water_ = begin;
}

void TableScanner::Reset() {
  next_row_ = begin_row_;
  prefetch_water_ = begin_row_;
  status_ = Status::OK();
}

}  // namespace factorml::storage

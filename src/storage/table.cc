#include "storage/table.h"

#include <cstring>

namespace factorml::storage {

namespace {

constexpr uint64_t kMagic = 0x464d4c5442763031ULL;  // "FMLTBv01"

struct FileHeader {
  uint64_t magic;
  uint64_t num_keys;
  uint64_t num_feats;
  int64_t num_rows;
};

// Data page layout: uint64 row count, then packed rows.
uint64_t PageRowCount(const char* page) {
  uint64_t n;
  std::memcpy(&n, page, sizeof(n));
  return n;
}

}  // namespace

Table::Table(std::unique_ptr<PagedFile> file, Schema schema, int64_t num_rows,
             bool writable)
    : file_(std::move(file)),
      schema_(schema),
      num_rows_(num_rows),
      writable_(writable) {
  if (writable_) tail_page_.assign(kPageSize, 0);
}

Result<Table> Table::Create(const std::string& path, const Schema& schema) {
  if (schema.RowBytes() == 0 || schema.RowBytes() > kPageSize - 8) {
    return Status::InvalidArgument("row too large for a page: " + path);
  }
  FML_ASSIGN_OR_RETURN(auto file, PagedFile::Create(path));
  // Reserve the header page; contents are finalized in Finish().
  std::vector<char> header(kPageSize, 0);
  FML_ASSIGN_OR_RETURN(uint64_t page_no, file->AppendPage(header.data()));
  (void)page_no;
  return Table(std::move(file), schema, 0, /*writable=*/true);
}

Result<Table> Table::Open(const std::string& path) {
  FML_ASSIGN_OR_RETURN(auto file, PagedFile::Open(path));
  std::vector<char> header(kPageSize);
  FML_RETURN_IF_ERROR(file->ReadPage(0, header.data()));
  FileHeader h;
  std::memcpy(&h, header.data(), sizeof(h));
  if (h.magic != kMagic) {
    return Status::InvalidArgument("not a factorml table: " + path);
  }
  Schema schema{static_cast<size_t>(h.num_keys),
                static_cast<size_t>(h.num_feats)};
  Table t(std::move(file), schema, h.num_rows, /*writable=*/false);
  t.finished_ = true;
  return t;
}

uint64_t Table::num_data_pages() const {
  const uint64_t total = file_->num_pages();
  return total > 0 ? total - 1 : 0;
}

Status Table::Append(const int64_t* keys, const double* feats) {
  if (!writable_ || finished_) {
    return Status::FailedPrecondition("table not writable: " + path());
  }
  const size_t row_bytes = schema_.RowBytes();
  char* dst = tail_page_.data() + 8 + tail_rows_ * row_bytes;
  std::memcpy(dst, keys, 8 * schema_.num_keys);
  std::memcpy(dst + 8 * schema_.num_keys, feats, 8 * schema_.num_feats);
  ++tail_rows_;
  ++num_rows_;
  if (tail_rows_ == schema_.RowsPerPage()) {
    FML_RETURN_IF_ERROR(FlushTailPage());
  }
  return Status::OK();
}

Status Table::FlushTailPage() {
  const uint64_t n = tail_rows_;
  std::memcpy(tail_page_.data(), &n, sizeof(n));
  FML_ASSIGN_OR_RETURN(uint64_t page_no, file_->AppendPage(tail_page_.data()));
  (void)page_no;
  std::memset(tail_page_.data(), 0, kPageSize);
  tail_rows_ = 0;
  return Status::OK();
}

Status Table::Finish() {
  if (finished_) return Status::OK();
  if (!writable_) {
    return Status::FailedPrecondition("table not writable: " + path());
  }
  if (tail_rows_ > 0) {
    FML_RETURN_IF_ERROR(FlushTailPage());
  }
  std::vector<char> header(kPageSize, 0);
  FileHeader h{kMagic, schema_.num_keys, schema_.num_feats, num_rows_};
  std::memcpy(header.data(), &h, sizeof(h));
  FML_RETURN_IF_ERROR(file_->WritePage(0, header.data()));
  FML_RETURN_IF_ERROR(file_->Flush());
  finished_ = true;
  return Status::OK();
}

Status Table::ReadRows(BufferPool* pool, int64_t start_row, size_t count,
                       RowBatch* out) const {
  if (start_row < 0 || start_row + static_cast<int64_t>(count) > num_rows_) {
    return Status::OutOfRange("row range out of bounds in " + path());
  }
  const size_t rpp = schema_.RowsPerPage();
  const size_t row_bytes = schema_.RowBytes();

  out->num_rows = count;
  out->num_keys = schema_.num_keys;
  out->start_row = start_row;
  out->keys.resize(count * schema_.num_keys);
  if (out->feats.rows() != count || out->feats.cols() != schema_.num_feats) {
    out->feats.Resize(count, schema_.num_feats);
  }

  size_t filled = 0;
  while (filled < count) {
    const int64_t row = start_row + static_cast<int64_t>(filled);
    const uint64_t page_no = 1 + static_cast<uint64_t>(row) / rpp;
    const size_t offset_in_page = static_cast<size_t>(row) % rpp;
    FML_ASSIGN_OR_RETURN(const char* page, pool->GetPage(file_.get(), page_no));
    const uint64_t rows_in_page = PageRowCount(page);
    if (offset_in_page >= rows_in_page) {
      return Status::Internal("corrupt page in " + path());
    }
    const size_t take =
        std::min(count - filled, static_cast<size_t>(rows_in_page) -
                                     offset_in_page);
    const char* src = page + 8 + offset_in_page * row_bytes;
    for (size_t r = 0; r < take; ++r) {
      std::memcpy(out->keys.data() + (filled + r) * schema_.num_keys, src,
                  8 * schema_.num_keys);
      std::memcpy(out->feats.Row(filled + r).data(),
                  src + 8 * schema_.num_keys, 8 * schema_.num_feats);
      src += row_bytes;
    }
    filled += take;
  }
  return Status::OK();
}

TableScanner::TableScanner(const Table* table, BufferPool* pool,
                           size_t batch_rows)
    : table_(table), pool_(pool), batch_rows_(batch_rows) {
  FML_CHECK_GT(batch_rows_, 0u);
}

bool TableScanner::Next(RowBatch* out) {
  if (!status_.ok()) return false;
  const int64_t end = end_row_ < 0 ? table_->num_rows() : end_row_;
  if (next_row_ >= end) return false;
  const size_t count = static_cast<size_t>(
      std::min<int64_t>(batch_rows_, end - next_row_));
  status_ = table_->ReadRows(pool_, next_row_, count, out);
  if (!status_.ok()) return false;
  next_row_ += static_cast<int64_t>(count);
  return true;
}

void TableScanner::SetRowRange(int64_t begin, int64_t end) {
  FML_CHECK_GE(begin, 0);
  FML_CHECK_LE(end, table_->num_rows());
  FML_CHECK_LE(begin, end);
  begin_row_ = begin;
  end_row_ = end;
  next_row_ = begin;
}

void TableScanner::Reset() {
  next_row_ = begin_row_;
  status_ = Status::OK();
}

}  // namespace factorml::storage

#ifndef FACTORML_STORAGE_BUFFER_POOL_H_
#define FACTORML_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/paged_file.h"

namespace factorml::storage {

/// LRU page cache shared by all scans. A repeated pass over a relation that
/// fits in the pool costs no physical reads — which is exactly the regime
/// where the paper's attribute tables (nR pages) live, while the wide fact
/// and materialized tables do not fit and are re-read every pass.
class BufferPool {
 public:
  /// `capacity_pages` frames of kPageSize bytes each.
  explicit BufferPool(size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pointer to the cached frame for (file, page_no), reading it
  /// from disk on a miss. The pointer stays valid until the frame is
  /// evicted, i.e. until at least `capacity_pages - 1` further distinct
  /// pages are touched; callers must copy out what they need before issuing
  /// unbounded further reads.
  ///
  /// Concurrency: the map and LRU list are latched, so GetPage may be
  /// called from multiple threads. The eviction contract above then spans
  /// all callers together — concurrent scanners must either share a pool
  /// sized for their combined working set or use per-worker pools
  /// (exec::WorkerPools), which is what the parallel trainers do.
  Result<const char*> GetPage(PagedFile* file, uint64_t page_no);

  /// True when (file, page_no) is currently cached. Does not touch the LRU
  /// order or any counter — the prefetcher's cheap pre-check before paying
  /// a physical read.
  bool Contains(PagedFile* file, uint64_t page_no) const;

  /// Hands the pool a page the prefetcher read outside the latch.
  /// Residency-only: the frame is inserted when the page is absent,
  /// evicting from the LRU back if the pool is full — but NEVER the
  /// most-recently-demanded frame, which is the one pointer a cursor-plane
  /// reader holds while decoding (a pool under active prefetch must have a
  /// single demand reader, which is how the strategies' per-worker pools
  /// are used; see GetPage's contract note). Returns false (dropping
  /// `data`) when the page was already present or no evictable frame
  /// exists (e.g. capacity 1 holding the reader's current page). The
  /// inserted frame is marked; the first demand GetPage that finds it
  /// counts a prefetch_hit. No counter is charged here — the prefetcher
  /// accounts for its own physical reads, and demand-path eviction
  /// decisions/counts with prefetch off are untouched.
  bool InsertPrefetched(PagedFile* file, uint64_t page_no,
                        std::unique_ptr<char[]> data);

  /// Drops every cached frame (e.g. between timed runs).
  void Clear();

  size_t capacity_pages() const { return capacity_; }
  size_t cached_pages() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

 private:
  struct Key {
    uint64_t file_id;
    uint64_t page_no;
    bool operator==(const Key& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.file_id * 0x9e3779b97f4a7c15ULL ^
                                   k.page_no);
    }
  };
  struct Frame {
    Key key;
    std::unique_ptr<char[]> data;
    /// Landed by the prefetcher and not yet demanded (see InsertPrefetched).
    bool prefetched = false;
  };

  size_t capacity_;
  mutable std::mutex mu_;  // latches lru_, map_ and last_demand_
  std::list<Frame> lru_;   // front = most recently used
  std::unordered_map<Key, std::list<Frame>::iterator, KeyHash> map_;
  /// Frame returned by the most recent GetPage — the one pointer a
  /// cursor-plane reader may still be decoding from, hence the one frame
  /// InsertPrefetched must never evict. lru_.end() = none.
  std::list<Frame>::iterator last_demand_ = lru_.end();
};

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_BUFFER_POOL_H_

#ifndef FACTORML_STORAGE_PAGED_FILE_H_
#define FACTORML_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace factorml::storage {

/// Fixed page size of the storage engine (8 KiB, the PostgreSQL default —
/// the paper stored its relations in PostgreSQL).
inline constexpr size_t kPageSize = 8192;

/// A file addressed in fixed-size pages. Every physical page transfer is
/// counted in GlobalIo(); higher layers (BufferPool, Table) never touch the
/// byte offsets directly.
class PagedFile {
 public:
  /// Creates (truncates) a new file for writing + reading.
  static Result<std::unique_ptr<PagedFile>> Create(const std::string& path);

  /// Opens an existing file read-only.
  static Result<std::unique_ptr<PagedFile>> Open(const std::string& path);

  ~PagedFile();

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;

  /// Stable identifier unique across the process lifetime; the BufferPool
  /// keys cached frames by (file_id, page_no) so ids are never reused.
  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }
  uint64_t num_pages() const { return num_pages_; }

  /// Reads page `page_no` into `buf` (kPageSize bytes). Safe to call from
  /// multiple threads: the seek+read pair on the shared stream is latched,
  /// so per-worker buffer pools may miss on the same file concurrently.
  Status ReadPage(uint64_t page_no, char* buf);

  /// Appends a page at the end of the file; returns its page number.
  Result<uint64_t> AppendPage(const char* buf);

  /// Overwrites an existing page (used for the header page on Finish).
  Status WritePage(uint64_t page_no, const char* buf);

  Status Flush();

 private:
  PagedFile(std::FILE* f, std::string path, uint64_t num_pages, bool writable);

  std::FILE* f_;
  std::string path_;
  uint64_t num_pages_;
  bool writable_;
  uint64_t id_;
  std::mutex mu_;  // serializes the seek + transfer pair on f_
};

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_PAGED_FILE_H_

#include "storage/paged_file.h"

#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "storage/io_stats.h"

namespace factorml::storage {

namespace {
std::atomic<uint64_t> g_next_file_id{1};

void SimulateLatency(uint64_t micros) {
  if (micros == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}
}  // namespace

PagedFile::PagedFile(std::FILE* f, std::string path, uint64_t num_pages,
                     bool writable)
    : f_(f),
      path_(std::move(path)),
      num_pages_(num_pages),
      writable_(writable),
      id_(g_next_file_id.fetch_add(1)) {}

PagedFile::~PagedFile() {
  if (f_ != nullptr) std::fclose(f_);
}

Result<std::unique_ptr<PagedFile>> PagedFile::Create(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IoError("cannot create file: " + path);
  }
  return std::unique_ptr<PagedFile>(new PagedFile(f, path, 0, true));
}

Result<std::unique_ptr<PagedFile>> PagedFile::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open file: " + path);
  }
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    std::fclose(f);
    return Status::IoError("cannot stat file: " + path);
  }
  const uint64_t pages = static_cast<uint64_t>(st.st_size) / kPageSize;
  return std::unique_ptr<PagedFile>(new PagedFile(f, path, pages, false));
}

Status PagedFile::ReadPage(uint64_t page_no, char* buf) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (page_no >= num_pages_) {
      return Status::OutOfRange("page " + std::to_string(page_no) +
                                " out of range in " + path_);
    }
    if (std::fseek(f_, static_cast<long>(page_no * kPageSize), SEEK_SET) !=
        0) {
      return Status::IoError("seek failed in " + path_);
    }
    if (std::fread(buf, 1, kPageSize, f_) != kPageSize) {
      return Status::IoError("short read in " + path_);
    }
  }
  // Counted on the calling thread; the simulated device latency is taken
  // outside the latch so concurrent readers overlap like on a real device.
  GlobalIo().pages_read++;
  SimulateLatency(SimulatedReadLatencyMicros());
  return Status::OK();
}

Result<uint64_t> PagedFile::AppendPage(const char* buf) {
  uint64_t page_no = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writable_) {
      return Status::FailedPrecondition("file opened read-only: " + path_);
    }
    if (std::fseek(f_, static_cast<long>(num_pages_ * kPageSize), SEEK_SET) !=
        0) {
      return Status::IoError("seek failed in " + path_);
    }
    if (std::fwrite(buf, 1, kPageSize, f_) != kPageSize) {
      return Status::IoError("short write in " + path_);
    }
    page_no = num_pages_++;
  }
  GlobalIo().pages_written++;
  SimulateLatency(SimulatedWriteLatencyMicros());
  return page_no;
}

Status PagedFile::WritePage(uint64_t page_no, const char* buf) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writable_) {
      return Status::FailedPrecondition("file opened read-only: " + path_);
    }
    if (page_no >= num_pages_) {
      return Status::OutOfRange("page out of range: " + path_);
    }
    if (std::fseek(f_, static_cast<long>(page_no * kPageSize), SEEK_SET) !=
        0) {
      return Status::IoError("seek failed in " + path_);
    }
    if (std::fwrite(buf, 1, kPageSize, f_) != kPageSize) {
      return Status::IoError("short write in " + path_);
    }
  }
  GlobalIo().pages_written++;
  SimulateLatency(SimulatedWriteLatencyMicros());
  return Status::OK();
}

Status PagedFile::Flush() {
  if (f_ != nullptr && std::fflush(f_) != 0) {
    return Status::IoError("flush failed: " + path_);
  }
  return Status::OK();
}

}  // namespace factorml::storage

#ifndef FACTORML_STORAGE_TABLE_H_
#define FACTORML_STORAGE_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace factorml::storage {

/// Fixed-width row layout: `num_keys` int64 columns (ids / foreign keys)
/// followed by `num_feats` double feature columns. All relations in the
/// paper's setting (S, R1..Rq, and the materialized join T) fit this shape;
/// the learning target Y, when present, is feature column 0 of S and T by
/// the convention established in core/dataset.h.
struct Schema {
  size_t num_keys = 0;
  size_t num_feats = 0;

  size_t RowBytes() const { return 8 * (num_keys + num_feats); }
  /// Rows that fit one data page after the 8-byte page header.
  size_t RowsPerPage() const { return (kPageSize - 8) / RowBytes(); }

  bool operator==(const Schema& o) const {
    return num_keys == o.num_keys && num_feats == o.num_feats;
  }
};

/// A batch of decoded rows produced by TableScanner. Keys are flattened
/// row-major (`num_keys` per row); features form a dense matrix.
struct RowBatch {
  size_t num_rows = 0;
  size_t num_keys = 0;
  int64_t start_row = 0;           // global row id of row 0 in this batch
  std::vector<int64_t> keys;       // num_rows * num_keys
  la::Matrix feats;                // num_rows x num_feats

  const int64_t* KeysOf(size_t row) const {
    return keys.data() + row * num_keys;
  }
};

/// A batch of decoded rows laid out as cache-blocked column-major strips —
/// the batched-decode target of the kernel plane. The row range is cut
/// into strips of `strip_rows` rows (the last strip may be short); within
/// strip s, feature column c occupies the contiguous run
/// `data[(s * num_cols + c) * strip_rows .. + strip_rows)` (the stride is
/// always the full strip height, so a short last strip just leaves its
/// tail lanes unused). One strip of one column is the unit the batch
/// kernels (la/kernels.h `*_strip`) consume: tall enough to amortize the
/// decode transpose, short enough that a handful of columns stay in L1/L2.
/// Keys stay row-major like RowBatch — the join paths that need them are
/// row-at-a-time anyway.
struct ColumnStrips {
  size_t strip_rows = 0;  // H — strip height (and the column stride)
  size_t num_strips = 0;
  size_t num_rows = 0;    // total decoded rows across all strips
  size_t num_cols = 0;    // feature columns
  size_t num_keys = 0;
  int64_t start_row = 0;  // global row id of strip 0, row 0
  std::vector<int64_t> keys;  // num_rows * num_keys, row-major
  std::vector<double> data;   // num_strips * num_cols * strip_rows

  const double* Col(size_t strip, size_t col) const {
    return data.data() + (strip * num_cols + col) * strip_rows;
  }
  double* MutableCol(size_t strip, size_t col) {
    return data.data() + (strip * num_cols + col) * strip_rows;
  }
  /// Rows actually present in `strip` (strip_rows except a short tail).
  size_t RowsInStrip(size_t strip) const {
    return std::min(strip_rows, num_rows - strip * strip_rows);
  }
  /// Batch-local index of `strip`'s first row (add start_row for global).
  size_t StripStart(size_t strip) const { return strip * strip_rows; }
  const int64_t* KeysOf(size_t row) const {
    return keys.data() + row * num_keys;
  }
};

/// A heap-file relation: header page 0 (magic, schema, row count) followed
/// by data pages of packed fixed-width rows. Tables are write-once: build
/// with Append + Finish, then scan through a BufferPool.
class Table {
 public:
  /// Creates a new table file at `path` (truncating any existing file).
  static Result<Table> Create(const std::string& path, const Schema& schema);

  /// Opens an existing table, reading schema and row count from the header.
  static Result<Table> Open(const std::string& path);

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const Schema& schema() const { return schema_; }
  const std::string& path() const { return file_->path(); }
  int64_t num_rows() const { return num_rows_; }
  /// Data pages only (excludes the header page) — this is the |S|, |R|, |T|
  /// of the paper's I/O cost formulas.
  uint64_t num_data_pages() const;

  PagedFile* file() const { return file_.get(); }

  /// Appends one row (buffered; pages are written when full).
  Status Append(const int64_t* keys, const double* feats);

  /// Flushes the tail page and persists the header. Must be called once
  /// after the last Append before the table is scanned.
  Status Finish();

  /// Reads `count` rows starting at `start_row` into `out` via the pool.
  /// Convenience shim over the unified I/O cursor plane
  /// (storage::PageCursor, which owns the page walk and decode).
  Status ReadRows(BufferPool* pool, int64_t start_row, size_t count,
                  RowBatch* out) const;

  /// Reads `count` rows starting at `start_row` into column-major strips
  /// of height `strip_rows` via the pool. Same page walk as ReadRows —
  /// identical I/O accounting — different decode target. Convenience shim
  /// over storage::PageCursor::ReadStrips.
  Status ReadStrips(BufferPool* pool, int64_t start_row, size_t count,
                    size_t strip_rows, ColumnStrips* out) const;

 private:
  Table(std::unique_ptr<PagedFile> file, Schema schema, int64_t num_rows,
        bool writable);

  Status FlushTailPage();

  std::unique_ptr<PagedFile> file_;
  Schema schema_;
  int64_t num_rows_;
  bool writable_;
  bool finished_ = false;
  std::vector<char> tail_page_;
  size_t tail_rows_ = 0;
};

class Prefetcher;  // storage/page_cursor.h — the async half of the I/O plane
class PageCursor;  // storage/page_cursor.h — the demand half

/// Sequential batched reader over a table's rows — a thin batching /
/// row-decoding shim over the unified I/O cursor plane (PageCursor): every
/// page touch is delegated there, and when a Prefetcher is attached the
/// scanner double-buffers, asynchronously landing the pages of the next
/// `depth_batches` batches while the caller computes on the current one.
class TableScanner {
 public:
  /// Batches of up to `batch_rows` rows; the last batch may be short.
  TableScanner(const Table* table, BufferPool* pool, size_t batch_rows);

  /// Attaches the async prefetch plane: Next() keeps the pages of the
  /// following `depth_batches` batches in flight ahead of the demand
  /// reads. Residency-only — decoded rows, batch boundaries and demand
  /// read order are unchanged by any prefetch schedule.
  void EnablePrefetch(Prefetcher* prefetcher, int64_t depth_batches);

  /// Asynchronously lands the head of rows [begin, end) — at most
  /// `depth_batches` batches' worth — in the pool. Used by the morsel
  /// drivers to overlap the next scheduled chunk's reads with the current
  /// chunk's compute. No-op without EnablePrefetch.
  void PrefetchRowRange(int64_t begin, int64_t end);

  /// Fills `out` with the next batch. Returns false at end-of-table or on
  /// error (check status()).
  bool Next(RowBatch* out);

  /// Strip-decoding twin of Next(): same batch boundaries, same demand
  /// page walk, same prefetch schedule — but the batch lands as
  /// column-major strips of height `strip_rows` instead of row-major
  /// rows. The batched (--kernels=simd) dense drivers call this; Next()
  /// remains the row-at-a-time path.
  bool NextStrips(size_t strip_rows, ColumnStrips* out);

  /// Restricts the scan to rows [begin, end) — the morsel of one parallel
  /// worker. Batch boundaries fall at begin + i * batch_rows, so a
  /// full-range scanner chunks exactly like an unrestricted one. Also
  /// repositions to `begin`.
  void SetRowRange(int64_t begin, int64_t end);

  /// Restarts the scan from the first row of the range (a new pass).
  void Reset();

  const Status& status() const { return status_; }

 private:
  /// Shared head of Next()/NextStrips(): status check, batch sizing, and
  /// the double-buffer prefetch window. Returns false at end-of-range.
  bool PrepareBatch(PageCursor* cursor, size_t* count);

  const Table* table_;
  BufferPool* pool_;
  size_t batch_rows_;
  int64_t begin_row_ = 0;
  int64_t end_row_ = -1;  // -1 = num_rows()
  int64_t next_row_ = 0;
  Status status_;
  Prefetcher* prefetcher_ = nullptr;
  int64_t prefetch_batches_ = 0;
  int64_t prefetch_water_ = 0;  // rows at/after this mark not yet prefetched
};

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_TABLE_H_

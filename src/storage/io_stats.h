#ifndef FACTORML_STORAGE_IO_STATS_H_
#define FACTORML_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace factorml::storage {

/// Process-wide page I/O accounting. The paper's cost analysis (Sec. V-A)
/// is expressed in pages read/written per algorithm; trainers snapshot this
/// before/after a run and report the delta. Buffer-pool hits are tracked
/// separately so the physical-read counts stay meaningful.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  uint64_t bytes_read() const;
  uint64_t bytes_written() const;

  IoStats operator-(const IoStats& o) const {
    return {pages_read - o.pages_read, pages_written - o.pages_written,
            pool_hits - o.pool_hits, pool_misses - o.pool_misses};
  }

  IoStats& operator+=(const IoStats& o) {
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    return *this;
  }

  /// Adds this counter's totals into `dst` — the explicit merge step by
  /// which the exec runtime folds per-worker I/O back into the dispatching
  /// thread after a parallel region.
  void MergeInto(IoStats* dst) const { *dst += *this; }

  std::string ToString() const;
};

/// Per-thread accounting instance. The storage layer always charges the
/// calling thread (no contention); the exec runtime merges worker deltas
/// into the dispatching thread in worker order, so snapshot deltas taken on
/// the dispatching thread (ReportScope) cover the whole parallel run.
/// Single-threaded callers observe the exact pre-existing semantics.
IoStats& GlobalIo();
void ResetGlobalIo();

/// Optional simulated device latency added to every physical page transfer
/// (0 by default). The paper's setting is a disk-backed RDBMS; on a machine
/// where the OS cache absorbs all reads, this knob restores the relative
/// I/O costs of the M/S/F algorithms without requiring a real slow disk.
void SetSimulatedIoLatencyMicros(uint64_t read_us, uint64_t write_us);
uint64_t SimulatedReadLatencyMicros();
uint64_t SimulatedWriteLatencyMicros();

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_IO_STATS_H_

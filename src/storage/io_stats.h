#ifndef FACTORML_STORAGE_IO_STATS_H_
#define FACTORML_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace factorml::storage {

/// Process-wide page I/O accounting. The paper's cost analysis (Sec. V-A)
/// is expressed in pages read/written per algorithm; trainers snapshot this
/// before/after a run and report the delta. Buffer-pool hits are tracked
/// separately so the physical-read counts stay meaningful.
///
/// The demand path and the prefetch path are split: `pool_hits` /
/// `pool_misses` count demand lookups only, `prefetch_reads` is the subset
/// of `pages_read` issued asynchronously by the I/O cursor plane
/// (storage::Prefetcher), and `prefetch_hits` counts demand lookups served
/// from a frame the prefetcher landed. With prefetch off (the default) the
/// prefetch fields stay zero and every other field is byte-identical to
/// the pre-prefetch engine — which is what the seed goldens pin.
struct IoStats {
  uint64_t pages_read = 0;
  uint64_t pages_written = 0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t prefetch_reads = 0;   // physical reads issued by the prefetcher
  uint64_t prefetch_hits = 0;    // demand lookups served by a prefetched frame
  /// Wall time demand readers spent blocked on a physical page read (the
  /// miss path of BufferPool::GetPage) — the stall the prefetcher exists
  /// to hide. Timing, not a count: never compared bitwise.
  uint64_t stall_micros = 0;

  uint64_t bytes_read() const;
  uint64_t bytes_written() const;
  /// Physical reads triggered synchronously by a demand lookup.
  uint64_t demand_reads() const { return pages_read - prefetch_reads; }

  IoStats operator-(const IoStats& o) const {
    return {pages_read - o.pages_read,         pages_written - o.pages_written,
            pool_hits - o.pool_hits,           pool_misses - o.pool_misses,
            prefetch_reads - o.prefetch_reads, prefetch_hits - o.prefetch_hits,
            stall_micros - o.stall_micros};
  }

  IoStats& operator+=(const IoStats& o) {
    pages_read += o.pages_read;
    pages_written += o.pages_written;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    prefetch_reads += o.prefetch_reads;
    prefetch_hits += o.prefetch_hits;
    stall_micros += o.stall_micros;
    return *this;
  }

  /// Adds this counter's totals into `dst` — the explicit merge step by
  /// which the exec runtime folds per-worker I/O back into the dispatching
  /// thread after a parallel region.
  void MergeInto(IoStats* dst) const { *dst += *this; }

  std::string ToString() const;
};

/// Per-thread accounting instance. The storage layer always charges the
/// calling thread (no contention); the exec runtime merges worker deltas
/// into the dispatching thread in worker order, so snapshot deltas taken on
/// the dispatching thread (ReportScope) cover the whole parallel run.
/// Single-threaded callers observe the exact pre-existing semantics.
IoStats& GlobalIo();
void ResetGlobalIo();

/// Optional simulated device latency added to every physical page transfer
/// (0 by default). The paper's setting is a disk-backed RDBMS; on a machine
/// where the OS cache absorbs all reads, this knob restores the relative
/// I/O costs of the M/S/F algorithms without requiring a real slow disk.
void SetSimulatedIoLatencyMicros(uint64_t read_us, uint64_t write_us);
uint64_t SimulatedReadLatencyMicros();
uint64_t SimulatedWriteLatencyMicros();

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_IO_STATS_H_

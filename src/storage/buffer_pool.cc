#include "storage/buffer_pool.h"

#include "storage/io_stats.h"

namespace factorml::storage {

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

Result<const char*> BufferPool::GetPage(PagedFile* file, uint64_t page_no) {
  // The latch is held across the miss's disk read as well: releasing it
  // there would let two threads read the same page twice and double-insert.
  // Parallel scan paths avoid this serialization with per-worker pools.
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{file->id(), page_no};
  auto it = map_.find(key);
  if (it != map_.end()) {
    GlobalIo().pool_hits++;
    // Move to front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    return static_cast<const char*>(it->second->data.get());
  }
  GlobalIo().pool_misses++;
  std::unique_ptr<char[]> buf;
  if (map_.size() >= capacity_) {
    // Reuse the least recently used frame.
    Frame victim = std::move(lru_.back());
    map_.erase(victim.key);
    lru_.pop_back();
    buf = std::move(victim.data);
  } else {
    buf = std::make_unique<char[]>(kPageSize);
  }
  FML_RETURN_IF_ERROR(file->ReadPage(page_no, buf.get()));
  lru_.push_front(Frame{key, std::move(buf)});
  map_[key] = lru_.begin();
  return static_cast<const char*>(lru_.front().data.get());
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace factorml::storage

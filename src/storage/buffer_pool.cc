#include "storage/buffer_pool.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::storage {

BufferPool::BufferPool(size_t capacity_pages)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

Result<const char*> BufferPool::GetPage(PagedFile* file, uint64_t page_no) {
  // The latch is held across the miss's disk read as well: releasing it
  // there would let two threads read the same page twice and double-insert.
  // Parallel scan paths avoid this serialization with per-worker pools;
  // the prefetcher reads outside the latch and inserts via
  // InsertPrefetched.
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{file->id(), page_no};
  auto it = map_.find(key);
  if (it != map_.end()) {
    GlobalIo().pool_hits++;
    if (it->second->prefetched) {
      it->second->prefetched = false;
      GlobalIo().prefetch_hits++;
    }
    // Move to front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    last_demand_ = it->second;
    return static_cast<const char*>(it->second->data.get());
  }
  GlobalIo().pool_misses++;
  std::unique_ptr<char[]> buf;
  if (map_.size() >= capacity_) {
    // Reuse the least recently used frame (the demand path's pre-existing
    // eviction decision — prefetch never alters it).
    auto victim_it = std::prev(lru_.end());
    if (victim_it == last_demand_) last_demand_ = lru_.end();
    Frame victim = std::move(*victim_it);
    map_.erase(victim.key);
    lru_.pop_back();
    buf = std::move(victim.data);
  } else {
    buf = std::make_unique<char[]>(kPageSize);
  }
  // The demand stall: the wall time this reader blocks on the physical
  // page read. Charged to stall_micros (as before), recorded in the
  // always-on stall histogram, and — when tracing — emitted as a
  // demand_read span whose duration IS the stall.
  static obs::Histogram* stall_hist =
      obs::Registry::Instance().GetHistogram("storage.demand_stall_micros");
  const uint64_t stall_begin = obs::NowMicros();
  FML_RETURN_IF_ERROR(file->ReadPage(page_no, buf.get()));
  const uint64_t stall = obs::NowMicros() - stall_begin;
  GlobalIo().stall_micros += stall;
  stall_hist->Record(stall);
  if (obs::TraceEnabled()) {
    obs::TraceEvent ev;
    ev.name = "demand_read";
    ev.cat = obs::kCatStorage;
    ev.ts_micros = stall_begin;
    ev.dur_micros = stall;
    ev.arg1_name = "page";
    ev.arg1 = static_cast<int64_t>(page_no);
    obs::internal::EmitToThreadBuffer(ev);
  }
  lru_.push_front(Frame{key, std::move(buf)});
  map_[key] = lru_.begin();
  last_demand_ = lru_.begin();
  return static_cast<const char*>(lru_.front().data.get());
}

bool BufferPool::Contains(PagedFile* file, uint64_t page_no) const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.count(Key{file->id(), page_no}) > 0;
}

bool BufferPool::InsertPrefetched(PagedFile* file, uint64_t page_no,
                                  std::unique_ptr<char[]> data) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{file->id(), page_no};
  if (map_.count(key) > 0) return false;  // a demand read won the race
  if (map_.size() >= capacity_) {
    // Evict from the LRU back, skipping the reader's current frame. An
    // old sequential-scan frame is dead weight (it would be flooded out
    // before any reuse); the page about to be demanded is not.
    auto victim_it = std::prev(lru_.end());
    if (victim_it == last_demand_) {
      if (lru_.size() < 2) return false;  // nothing evictable
      victim_it = std::prev(victim_it);
    }
    map_.erase(victim_it->key);
    lru_.erase(victim_it);
  }
  lru_.push_front(Frame{key, std::move(data), /*prefetched=*/true});
  map_[key] = lru_.begin();
  return true;
}

void BufferPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  map_.clear();
  last_demand_ = lru_.end();
}

}  // namespace factorml::storage

#ifndef FACTORML_STORAGE_PAGE_CURSOR_H_
#define FACTORML_STORAGE_PAGE_CURSOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::storage {

/// Asynchronous residency-only page loader — the background half of the
/// unified I/O cursor plane. Requests are page ranges of one file; each is
/// executed on the exec::ThreadPool's dedicated I/O crew, reading absent
/// pages into private buffers *outside* the pool latch and handing them to
/// BufferPool::InsertPrefetched. Prefetch therefore changes page residency
/// and nothing else: it never evicts, never returns data to the caller,
/// and never touches an accumulator — the determinism contract of the
/// chunk-ordered scheduler extends to any prefetch schedule by
/// construction.
///
/// Accounting: physical reads performed by the crew are folded into the
/// *draining* thread's GlobalIo() (pages_read and prefetch_reads) at
/// Drain(), so a training run's ReportScope delta sees them; the crew
/// threads' own thread-local counters are never merged. Requests beyond
/// `max_inflight` are dropped (prefetch is best-effort), as are pages that
/// are already resident or that find the pool full.
class Prefetcher {
 public:
  explicit Prefetcher(int max_inflight = 16);

  /// Drains outstanding requests (folding counters into the destroying
  /// thread) so no crew task outlives the pools/files it references.
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Asynchronously lands pages [first_page, end_page) of `file` in
  /// `pool`. Best-effort and non-blocking: at the in-flight cap the
  /// request is dropped, resident pages are skipped, read errors are
  /// swallowed (the demand path will surface them).
  void PrefetchPages(BufferPool* pool, PagedFile* file, uint64_t first_page,
                     uint64_t end_page);

  /// Blocks until every issued request has completed, then folds the
  /// crew's physical read counts into the calling thread's GlobalIo().
  /// Must be called on the thread whose ReportScope should observe the
  /// prefetch I/O (the pass dispatcher), and before any pool/file a
  /// request references is destroyed.
  void Drain();

  /// Physical pages read by completed requests so far (monotonic).
  uint64_t pages_fetched() const;
  /// Requests dropped at the in-flight cap (monotonic).
  uint64_t requests_dropped() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;  // signaled when inflight_ hits zero
  const int max_inflight_;
  int inflight_ = 0;
  uint64_t fetched_total_ = 0;    // physical reads, all completed requests
  uint64_t fetched_unfolded_ = 0; // not yet folded into a GlobalIo()
  uint64_t dropped_ = 0;
};

/// The unified I/O cursor plane: owns "give me the pages (and decoded
/// rows) for row range [a, b)" of one table through one buffer pool. Both
/// access paths sit on top of it — TableScanner (base-table scans of S or
/// the materialized T) and JoinCursor (FK1-run probes of S) are thin
/// batching/row-decoding shims that delegate every page touch here.
///
/// The demand path (ReadRows) is byte-for-byte the pre-refactor read:
/// same page walk, same pool counters. The prefetch path (PrefetchRows)
/// is the asynchronous double-buffer: the shims call it with the rows of
/// the *next* batch / next scheduled morsel while compute runs on the
/// current one.
class PageCursor {
 public:
  PageCursor(const Table* table, BufferPool* pool)
      : table_(table), pool_(pool) {}

  /// Binds the async plane; null disables prefetch (the default).
  void SetPrefetcher(Prefetcher* prefetcher) { prefetcher_ = prefetcher; }
  Prefetcher* prefetcher() const { return prefetcher_; }

  const Table* table() const { return table_; }
  BufferPool* pool() const { return pool_; }

  /// Reads `count` rows starting at `start_row` into `out` through the
  /// pool — the demand path every Table/Join read funnels through.
  Status ReadRows(int64_t start_row, size_t count, RowBatch* out) const;

  /// Batched decode: reads `count` rows starting at `start_row` into
  /// column-major strips of height `strip_rows`. The page walk is
  /// byte-for-byte ReadRows' (same GetPage sequence, same demand I/O
  /// accounting); only the in-memory decode target differs — features are
  /// transposed into the cache-blocked strip layout the la/ batch kernels
  /// consume, keys stay row-major. Each call is one "decode_strip" trace
  /// span and one storage.decode_strip_micros histogram sample.
  Status ReadStrips(int64_t start_row, size_t count, size_t strip_rows,
                    ColumnStrips* out) const;

  /// Asynchronously lands the data pages covering rows
  /// [start_row, start_row + count) in the pool. Residency-only; no-op
  /// without a prefetcher or for an empty/clamped-away range.
  void PrefetchRows(int64_t start_row, int64_t count) const;

 private:
  const Table* table_;
  BufferPool* pool_;
  Prefetcher* prefetcher_ = nullptr;
};

}  // namespace factorml::storage

#endif  // FACTORML_STORAGE_PAGE_CURSOR_H_

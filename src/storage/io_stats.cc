#include "storage/io_stats.h"

#include <atomic>
#include <sstream>

#include "storage/paged_file.h"

namespace factorml::storage {

namespace {
thread_local IoStats g_io;
// The latency knobs are process-wide (set once, read by every worker
// thread doing I/O), hence atomic rather than thread-local.
std::atomic<uint64_t> g_read_latency_us{0};
std::atomic<uint64_t> g_write_latency_us{0};
}  // namespace

IoStats& GlobalIo() { return g_io; }
void ResetGlobalIo() { g_io = IoStats{}; }

void SetSimulatedIoLatencyMicros(uint64_t read_us, uint64_t write_us) {
  g_read_latency_us.store(read_us, std::memory_order_relaxed);
  g_write_latency_us.store(write_us, std::memory_order_relaxed);
}
uint64_t SimulatedReadLatencyMicros() {
  return g_read_latency_us.load(std::memory_order_relaxed);
}
uint64_t SimulatedWriteLatencyMicros() {
  return g_write_latency_us.load(std::memory_order_relaxed);
}

uint64_t IoStats::bytes_read() const { return pages_read * kPageSize; }
uint64_t IoStats::bytes_written() const { return pages_written * kPageSize; }

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "pages_read=" << pages_read << " pages_written=" << pages_written
     << " pool_hits=" << pool_hits << " pool_misses=" << pool_misses;
  if (prefetch_reads > 0 || prefetch_hits > 0) {
    os << " prefetch_reads=" << prefetch_reads
       << " prefetch_hits=" << prefetch_hits;
  }
  return os.str();
}

}  // namespace factorml::storage

// The MLP as a core/pipeline ModelProgram on the mini-batch plane: one
// epoch = one ordered stream of whole-FK1-group batches (identical across
// M/S/F, which is what makes the strategies' outputs comparable exactly).
// The dense batch path (M/S) runs standard BP over assembled rows; the
// factorized path implements Sec. VI-A — partial first-layer inner
// products cached per attribute tuple per weight version, and the W1
// gradient formed from the base relations directly. The former m_nn.cc /
// s_nn.cc / f_nn.cc trainers are thin wrappers over this one program.

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/opcount.h"
#include "core/pipeline/access_internal.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "exec/parallel_for.h"
#include "join/batch_plan.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"

namespace factorml::nn {

namespace {

using core::pipeline::DenseBatch;
using core::pipeline::FactorizedBlock;
using core::pipeline::PipelineContext;

/// Per-attribute-table cache of first-layer partial inner products:
/// row rid holds W1[:, slice_i] * x_ri (plus the layer bias for table 0,
/// matching the paper's T2 = sum w x_R + b). An entry is valid for weight
/// version `stamp[rid]`; since mini-batch SGD changes W1 every update,
/// entries are recomputed on first use per version — "computed when one
/// tuple in R appears for the first time and reused for the remaining
/// matching tuples" (Sec. VI-A2).
struct PartialCache {
  la::Matrix c;                 // nRi x nh
  std::vector<uint64_t> stamp;  // nRi, last weight version computed
};

class NnProgram final : public core::pipeline::ModelProgram {
 public:
  explicit NnProgram(const NnOptions& options) : opt_(options) {}

  const char* Name() const override { return "NN"; }
  const char* TempStem() const override { return "nn"; }
  uint32_t Capabilities() const override {
    return core::pipeline::kMiniBatch | core::pipeline::kFactorized |
           core::pipeline::kNeedsTarget;
  }
  int MaxIterations() const override { return opt_.epochs; }

  Status ValidateOptions(const join::NormalizedRelations&) const override {
    if (opt_.hidden.empty()) {
      return Status::InvalidArgument("at least one hidden layer required");
    }
    return Status::OK();
  }

  Status Init(const PipelineContext& ctx) override {
    rel_ = ctx.rel;
    factorized_ = ctx.factorized();
    q_ = rel_->num_joins();
    ds_ = rel_->ds();
    d_ = rel_->total_dims();
    nh_ = opt_.hidden[0];
    n_ = rel_->s.num_rows();
    attr_offset_.resize(q_);
    for (size_t i = 0; i < q_; ++i) attr_offset_[i] = rel_->FeatureOffset(i + 1);

    mlp_ = Mlp::Init(d_, opt_.hidden, opt_.activation, opt_.seed);
    engine_ = std::make_unique<internal::BackpropEngine>(&mlp_,
                                                         opt_.learning_rate);
    if (opt_.hidden_dropout > 0.0) {
      engine_->EnableDropout(opt_.hidden_dropout, opt_.seed ^ 0xD40);
    }
    engine_->ConfigureSgd(opt_.momentum, opt_.weight_decay);
    grad0_ = la::Matrix(mlp_.w[0].rows(), mlp_.w[0].cols());
    if (factorized_) {
      caches_.resize(q_);
      stale_.resize(q_);
      version_ = 1;  // bumped after every weight update
    }
    return Status::OK();
  }

  std::vector<int64_t> EpochRidOrder(const PipelineContext& ctx,
                                     int epoch) override {
    if (!opt_.shuffle) return {};
    return join::PermutedRids(ctx.rel->fk1_index.num_rids(), opt_.seed,
                              epoch);
  }

  Status BeginEpoch(const PipelineContext& ctx, int /*epoch*/) override {
    epoch_sse_ = 0.0;
    if (factorized_) {
      for (size_t i = 0; i < q_; ++i) {
        if (caches_[i].stamp.empty()) {
          const size_t n_ri = (*ctx.views)[i].feats().rows();
          caches_[i].c.Resize(n_ri, nh_);
          caches_[i].stamp.assign(n_ri, 0);
        }
      }
    }
    return Status::OK();
  }

  Status OnDenseBatch(const PipelineContext& ctx,
                      const DenseBatch& batch) override {
    if (batch.strips != nullptr) return OnDenseBatchStrips(ctx, batch);
    const la::Matrix& x = *batch.x;
    const size_t b = x.rows();
    const int threads = ctx.threads;

    // First-layer forward over row morsels: each a1 row depends only on
    // its own input row, so any partition is bit-identical to serial.
    a1_.Reshape(b, nh_);
    {
      core::PhaseScope phase(ctx.report, "first_layer_fwd");
      exec::ParallelFor(threads, static_cast<int64_t>(b), /*align=*/1,
                        [&](exec::Range rg, int) {
                          la::GemmNTSliceRows(x, mlp_.w[0], 0, &a1_,
                                              static_cast<size_t>(rg.begin),
                                              static_cast<size_t>(rg.end),
                                              /*accumulate=*/false);
                          la::AddRowVectorRows(mlp_.b[0].data(), &a1_,
                                               static_cast<size_t>(rg.begin),
                                               static_cast<size_t>(rg.end));
                        });
    }
    {
      core::PhaseScope phase(ctx.report, "upper_layers");
      epoch_sse_ += engine_->Step(a1_, batch.y->data(), &delta1_);
    }

    // W1 gradient over column morsels: the per-element accumulation
    // order over the batch rows is unchanged, so this too is
    // bit-identical for any thread count.
    grad0_.SetZero();
    {
      core::PhaseScope phase(ctx.report, "w1_grad");
      exec::ParallelFor(threads, static_cast<int64_t>(d_), /*align=*/1,
                        [&](exec::Range rg, int) {
                          la::GemmTNSliceCols(delta1_, x, &grad0_, 0,
                                              static_cast<size_t>(rg.begin),
                                              static_cast<size_t>(rg.end));
                        });
    }
    engine_->UpdateW0(grad0_);
    return Status::OK();
  }

  /// Strip-fed epoch step (--kernels=simd): forward and backward run as
  /// batch matrix products (`gemm_strip`) over the driver-packed column
  /// strips instead of per-row gemv/outer loops. Op counts are charged
  /// with the exact scalar formulas per strip, and every strip/morsel
  /// boundary is schedule-determined, so iterations, op counters, and
  /// page I/O stay EXPECT_EQ-identical to the scalar path — only the
  /// within-strip summation order (hence numerics, to tolerance) differs.
  Status OnDenseBatchStrips(const PipelineContext& ctx,
                            const DenseBatch& batch) {
    const storage::ColumnStrips& st = *batch.strips;
    const size_t b = st.num_rows;
    const int threads = ctx.threads;
    const la::Kernels& kern = la::Active();

    // First-layer forward, one strip at a time: a1t (nh x rows) = W1 * B
    // where B is the strip's feature block (d x rows, ldb = strip height).
    // The transpose back to the row-major activation block carries the
    // bias add (the AddRowVectorRows charge); strips are disjoint row
    // blocks, so any strip partition is deterministic.
    a1_.Reshape(b, nh_);
    {
      core::PhaseScope phase(ctx.report, "first_layer_fwd");
      exec::ParallelFor(
          threads, static_cast<int64_t>(st.num_strips), /*align=*/1,
          [&](exec::Range rg, int) {
            std::vector<double> a1t(nh_ * st.strip_rows);
            for (int64_t s = rg.begin; s < rg.end; ++s) {
              const auto sp = static_cast<size_t>(s);
              const size_t rows = st.RowsInStrip(sp);
              kern.gemm_strip(mlp_.w[0].data(), d_, st.Col(sp, 0),
                              st.strip_rows, nh_, rows, d_, a1t.data(),
                              st.strip_rows, /*trans_b=*/false,
                              /*accumulate=*/false);
              double* a1_base = a1_.Row(st.StripStart(sp)).data();
              for (size_t u = 0; u < nh_; ++u) {
                const double bu = mlp_.b[0][u];
                const double* tu = a1t.data() + u * st.strip_rows;
                for (size_t r = 0; r < rows; ++r) {
                  a1_base[r * nh_ + u] = tu[r] + bu;
                }
              }
              CountMults(rows * nh_ * d_);
              CountAdds(rows * nh_ * d_ + rows * nh_);
            }
          });
    }
    {
      core::PhaseScope phase(ctx.report, "upper_layers");
      epoch_sse_ += engine_->Step(a1_, batch.y->data(), &delta1_);
    }

    // W1 gradient over column morsels, strips ascending inside each
    // morsel: grad0[:, cb:ce] += sum_s d1_strip_s * x_strip_s^T — the
    // dot-form gemm over two strip blocks of the same height. The strip
    // order is fixed, so the gradient is bit-identical for any thread
    // count (and within-morsel numerics match the serial strip sweep).
    core::pipeline::internal::PackRowsToStrips(
        delta1_.data(), nh_, /*y=*/nullptr, 0, b, nh_, st.start_row,
        st.strip_rows, &d1s_);
    grad0_.SetZero();
    {
      core::PhaseScope phase(ctx.report, "w1_grad");
      exec::ParallelFor(
          threads, static_cast<int64_t>(d_), /*align=*/1,
          [&](exec::Range rg, int) {
            const auto cb = static_cast<size_t>(rg.begin);
            const size_t len = static_cast<size_t>(rg.end) - cb;
            for (size_t s = 0; s < st.num_strips; ++s) {
              const size_t rows = st.RowsInStrip(s);
              kern.gemm_strip(d1s_.Col(s, 0), d1s_.strip_rows, st.Col(s, cb),
                              st.strip_rows, nh_, len, rows,
                              grad0_.data() + cb, d_, /*trans_b=*/true,
                              /*accumulate=*/true);
            }
            CountMults(b * nh_ * len);
            CountAdds(b * nh_ * len);
          });
    }
    engine_->UpdateW0(grad0_);
    return Status::OK();
  }

  Status OnFactorizedBatch(const PipelineContext& ctx,
                           const FactorizedBlock& block) override {
    const storage::RowBatch& s_rows = *block.s_rows;
    const std::vector<join::JoinGroup>& groups = *block.groups;
    const std::vector<join::AttributeTableView>& views = *ctx.views;
    const storage::ColumnStrips* st = block.s_strips;
    const size_t b = s_rows.num_rows;
    const int threads = ctx.threads;

    y_.resize(b);
    if (st == nullptr) {
      xs_.Reshape(b, ds_);
      exec::ParallelFor(
          threads, static_cast<int64_t>(b), /*align=*/1,
          [&](exec::Range rg, int) {
            for (int64_t r = rg.begin; r < rg.end; ++r) {
              y_[static_cast<size_t>(r)] =
                  s_rows.feats(static_cast<size_t>(r), 0);
              std::memcpy(xs_.Row(static_cast<size_t>(r)).data(),
                          s_rows.feats.Row(static_cast<size_t>(r)).data() + 1,
                          sizeof(double) * ds_);
            }
          });
    } else {
      // Strip path: the S slice arrives pre-transposed (target at strip
      // column 0, features at 1..ds), so xs_ is never assembled. Gather
      // the targets and the per-table rid index buffers the strip
      // kernels consume (pure data movement, uncharged like assembly).
      ridbuf_.resize(q_);
      for (size_t i = 0; i < q_; ++i) ridbuf_[i].resize(b);
      for (size_t r = 0; r < b; ++r) {
        y_[r] = s_rows.feats(r, 0);
        const int64_t* keys = s_rows.KeysOf(r);
        for (size_t i = 0; i < q_; ++i) {
          ridbuf_[i][r] = keys[rel_->FkKeyIndex(i)];
        }
      }
    }

    // ---- Refresh the partial caches for this weight version: collect
    // the stale rids the batch touches (table 0 straight from the rid
    // groups; further tables by scanning the FK columns), then fill the
    // collected rows in parallel — rows are disjoint, and the identical
    // arithmetic runs whether filled here or lazily, so results and op
    // totals match the serial path exactly.
    {
      core::PhaseScope phase(ctx.report, "partial_cache");
      for (size_t i = 0; i < q_; ++i) stale_[i].clear();
      for (const auto& g : groups) {
        if (g.count == 0) continue;
        const auto rid = static_cast<size_t>(g.rid);
        if (caches_[0].stamp[rid] != version_) {
          caches_[0].stamp[rid] = version_;
          stale_[0].push_back(g.rid);
        }
      }
      for (size_t r = 0; q_ > 1 && r < b; ++r) {
        const int64_t* keys = s_rows.KeysOf(r);
        for (size_t i = 1; i < q_; ++i) {
          const auto rid = static_cast<size_t>(keys[rel_->FkKeyIndex(i)]);
          if (caches_[i].stamp[rid] != version_) {
            caches_[i].stamp[rid] = version_;
            stale_[i].push_back(static_cast<int64_t>(rid));
          }
        }
      }
      for (size_t i = 0; i < q_; ++i) {
        PartialCache& cache = caches_[i];
        const std::vector<int64_t>& todo = stale_[i];
        if (todo.empty()) continue;
        exec::ParallelFor(
            threads, static_cast<int64_t>(todo.size()), /*align=*/1,
            [&](exec::Range rg, int) {
              for (int64_t s = rg.begin; s < rg.end; ++s) {
                const auto rid =
                    static_cast<size_t>(todo[static_cast<size_t>(s)]);
                const auto xr =
                    views[i].FeaturesOf(static_cast<int64_t>(rid));
                const size_t dri = xr.size();
                double* c_row = cache.c.Row(rid).data();
                const size_t ldw = mlp_.w[0].cols();
                const double* w_base = mlp_.w[0].data() + attr_offset_[i];
                for (size_t u = 0; u < nh_; ++u) {
                  double sum = 0.0;
                  const double* w_row = w_base + u * ldw;
                  for (size_t j = 0; j < dri; ++j) sum += w_row[j] * xr[j];
                  // The paper's T2 carries the bias with the first
                  // partial sum.
                  c_row[u] = (i == 0) ? sum + mlp_.b[0][u] : sum;
                }
                CountMults(nh_ * dri);
                CountAdds(nh_ * dri + (i == 0 ? nh_ : 0));
              }
            });
      }
    }

    // ---- Factorized forward, first layer (Sec. VI-A1 / Eq. 31):
    // A1 = XS * W_S^T  +  sum_i cache_i(rid_i), row-parallel over the
    // batch (each a1 row reads only its own xs row and cached partials).
    a1_.Reshape(b, nh_);
    if (st != nullptr) {
      // Strip path: the XS product is one gemm_strip per strip (W_S is
      // the leading ds-column slice of W1), transposed back row-major;
      // the per-table cached partials land via gather_add_rows_strip
      // over the rid buffers (no bias here — table 0's cache carries it).
      core::PhaseScope phase(ctx.report, "first_layer_fwd");
      const la::Kernels& kern = la::Active();
      exec::ParallelFor(
          threads, static_cast<int64_t>(st->num_strips), /*align=*/1,
          [&](exec::Range rg, int) {
            std::vector<double> a1t(nh_ * st->strip_rows);
            for (int64_t s = rg.begin; s < rg.end; ++s) {
              const auto sp = static_cast<size_t>(s);
              const size_t rows = st->RowsInStrip(sp);
              const size_t row0 = st->StripStart(sp);
              kern.gemm_strip(mlp_.w[0].data(), d_, st->Col(sp, 1),
                              st->strip_rows, nh_, rows, ds_, a1t.data(),
                              st->strip_rows, /*trans_b=*/false,
                              /*accumulate=*/false);
              double* a1_base = a1_.Row(row0).data();
              for (size_t u = 0; u < nh_; ++u) {
                const double* tu = a1t.data() + u * st->strip_rows;
                for (size_t r = 0; r < rows; ++r) a1_base[r * nh_ + u] = tu[r];
              }
              for (size_t i = 0; i < q_; ++i) {
                kern.gather_add_rows_strip(caches_[i].c.data(), nh_,
                                           ridbuf_[i].data() + row0, rows,
                                           nh_, a1_base, nh_);
              }
              CountMults(rows * nh_ * ds_);
              CountAdds(rows * nh_ * ds_ + rows * nh_ * q_);
            }
          });
    } else {
      core::PhaseScope phase(ctx.report, "first_layer_fwd");
      exec::ParallelFor(
          threads, static_cast<int64_t>(b), /*align=*/1,
          [&](exec::Range rg, int) {
            la::GemmNTSliceRows(xs_, mlp_.w[0], 0, &a1_,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end),
                                /*accumulate=*/false);
            for (int64_t r = rg.begin; r < rg.end; ++r) {
              const int64_t* keys = s_rows.KeysOf(static_cast<size_t>(r));
              double* a1_row = a1_.Row(static_cast<size_t>(r)).data();
              for (size_t i = 0; i < q_; ++i) {
                const int64_t rid = keys[rel_->FkKeyIndex(i)];
                const double* c_row =
                    caches_[i].c.Row(static_cast<size_t>(rid)).data();
                for (size_t u = 0; u < nh_; ++u) a1_row[u] += c_row[u];
              }
            }
            CountAdds(static_cast<uint64_t>(rg.size()) * nh_ * q_);
          });
    }

    {
      core::PhaseScope phase(ctx.report, "upper_layers");
      epoch_sse_ += engine_->Step(a1_, y_.data(), &delta1_);
    }

    // ---- Factorized backward (Sec. VI-A3 / Eq. 32): the W1 gradient
    // [PG_S | PG_R1 | ... ] is formed from the base relations directly;
    // identical arithmetic, but x_Ri is never expanded to N rows on
    // disk. Parallelized over column morsels of grad0: every worker owns
    // a disjoint column range and accumulates it in the serial row
    // order, so the gradient is bit-identical for any thread count.
    if (opt_.grouped_backward && q_ >= 1) {
      // Extension: per R1 group, sum the deltas first, then one outer
      // product per R1 tuple (nh*(b + |rids|*dR1) ops instead of
      // nh*b*dR1). Computed once, read by every column worker.
      dsums_.assign(groups.size() * nh_, 0.0);
      for (size_t g = 0; g < groups.size(); ++g) {
        const auto& grp = groups[g];
        if (grp.count == 0) continue;
        double* dsum = dsums_.data() + g * nh_;
        for (size_t r = grp.offset; r < grp.offset + grp.count; ++r) {
          la::Axpy(1.0, delta1_.Row(r).data(), dsum, nh_);
        }
      }
    }
    if (st != nullptr) {
      // Delta strips aligned to the S strips (same height), so the PG_S
      // block below runs as dot-form gemm over paired strip blocks.
      core::pipeline::internal::PackRowsToStrips(
          delta1_.data(), nh_, /*y=*/nullptr, 0, b, nh_, st->start_row,
          st->strip_rows, &d1s_);
    }
    grad0_.SetZero();
    {
      core::PhaseScope phase(ctx.report, "w1_grad");
      const la::Kernels& kern = la::Active();
      exec::ParallelFor(
          threads, static_cast<int64_t>(d_), /*align=*/1,
          [&](exec::Range rg, int) {
            const auto cb = static_cast<size_t>(rg.begin);
            const auto ce = static_cast<size_t>(rg.end);
            // PG_S: columns of the S slice [0, ds) within this morsel.
            if (cb < ds_ && st != nullptr) {
              const size_t slen = std::min(ds_, ce) - cb;
              for (size_t s = 0; s < st->num_strips; ++s) {
                const size_t rows = st->RowsInStrip(s);
                kern.gemm_strip(d1s_.Col(s, 0), d1s_.strip_rows,
                                st->Col(s, 1 + cb), st->strip_rows, nh_,
                                slen, rows, grad0_.data() + cb, d_,
                                /*trans_b=*/true, /*accumulate=*/true);
              }
              CountMults(b * nh_ * slen);
              CountAdds(b * nh_ * slen);
            } else if (cb < ds_) {
              la::GemmTNSliceCols(delta1_, xs_, &grad0_, 0, cb,
                                  std::min(ds_, ce));
            }
            // PG_Ri: the slice of each attribute block inside the
            // morsel. The overlap is loop-invariant over the batch
            // rows, so clip once per table; tables (and whole row
            // sweeps) with no overlap cost this worker nothing.
            std::vector<size_t> lo(q_);
            std::vector<size_t> len(q_, 0);
            bool any_overlap = false;
            for (size_t i = 0; i < q_; ++i) {
              const size_t block_lo = attr_offset_[i];
              const size_t block_hi = block_lo + rel_->dr(i);
              const size_t s = std::max(block_lo, cb);
              const size_t e = std::min(block_hi, ce);
              if (s < e) {
                lo[i] = s - block_lo;
                len[i] = e - s;
                any_overlap = true;
              }
            }
            if (!any_overlap) return;
            const size_t row_first_table = opt_.grouped_backward ? 1 : 0;
            if (opt_.grouped_backward && len[0] > 0) {
              for (size_t g = 0; g < groups.size(); ++g) {
                const auto& grp = groups[g];
                if (grp.count == 0) continue;
                const auto xr = views[0].FeaturesOf(grp.rid);
                la::AddOuter(1.0, dsums_.data() + g * nh_, nh_,
                             xr.data() + lo[0], len[0], &grad0_, 0,
                             attr_offset_[0] + lo[0]);
              }
            }
            bool any_row_table = false;
            for (size_t i = row_first_table; i < q_; ++i) {
              if (len[i] > 0) any_row_table = true;
            }
            if (!any_row_table) return;
            for (size_t r = 0; r < b; ++r) {
              const int64_t* keys = s_rows.KeysOf(r);
              for (size_t i = row_first_table; i < q_; ++i) {
                if (len[i] == 0) continue;
                const auto xr =
                    views[i].FeaturesOf(keys[rel_->FkKeyIndex(i)]);
                la::AddOuter(1.0, delta1_.Row(r).data(), nh_,
                             xr.data() + lo[i], len[i], &grad0_, 0,
                             attr_offset_[i] + lo[i]);
              }
            }
          });
    }
    engine_->UpdateW0(grad0_);
    ++version_;  // engine updated b0 and layers >= 1; W1 updated above
    return Status::OK();
  }

  Result<bool> EndIteration(const PipelineContext&, int) override {
    return false;  // NN always runs the full epoch budget
  }

  double Objective() const override {
    return epoch_sse_ / (2.0 * static_cast<double>(n_));
  }

  void VisitIterationState(
      const std::function<void(double*, size_t)>& visit) override {
    // Cross-epoch state: every layer's weights and biases, the momentum
    // velocities, the dropout generator cursor, and the epoch objective.
    // version_ rides along as a bit pattern so restored partial-feature
    // caches are invalidated exactly as an uninterrupted run would have
    // them (stamps never match a bumped version). The caches and scratch
    // matrices rebuild lazily per batch and must not be visited.
    for (auto& w : mlp_.w) visit(w.data(), w.rows() * w.cols());
    for (auto& b : mlp_.b) visit(b.data(), b.size());
    for (auto& v : engine_->vel_w()) visit(v.data(), v.rows() * v.cols());
    for (auto& v : engine_->vel_b()) visit(v.data(), v.size());
    if (Rng* rng = engine_->dropout_rng()) {
      double st[Rng::kStateDoubles];
      rng->SaveState(st);
      visit(st, Rng::kStateDoubles);
      rng->RestoreState(st);
    }
    double version_bits = 0.0;
    std::memcpy(&version_bits, &version_, sizeof(version_bits));
    visit(&version_bits, 1);
    std::memcpy(&version_, &version_bits, sizeof(version_));
    visit(&epoch_sse_, 1);
  }

  Mlp&& TakeMlp() && { return std::move(mlp_); }

 private:
  NnOptions opt_;
  const join::NormalizedRelations* rel_ = nullptr;
  bool factorized_ = false;
  size_t q_ = 0, ds_ = 0, d_ = 0, nh_ = 0;
  int64_t n_ = 0;
  std::vector<size_t> attr_offset_;

  Mlp mlp_;
  std::unique_ptr<internal::BackpropEngine> engine_;
  la::Matrix xs_;      // batch x dS (factorized: never widened to d)
  la::Matrix a1_;      // batch x nh
  la::Matrix delta1_;  // batch x nh
  la::Matrix grad0_;
  std::vector<double> y_;
  std::vector<double> dsums_;  // grouped-backward scratch, n_groups x nh
  storage::ColumnStrips d1s_;  // delta1_ packed as strips (strip backward)
  std::vector<std::vector<int64_t>> ridbuf_;  // per-table rids, strip path
  std::vector<PartialCache> caches_;
  std::vector<std::vector<int64_t>> stale_;  // rids to refill per batch
  uint64_t version_ = 1;
  double epoch_sse_ = 0.0;
};

Result<Mlp> TrainNnWith(const join::NormalizedRelations& rel,
                        const NnOptions& options, core::Algorithm algorithm,
                        storage::BufferPool* pool,
                        core::TrainReport* report) {
  NnProgram program(options);
  FML_RETURN_IF_ERROR(core::pipeline::RunTraining(
      rel, algorithm, core::pipeline::LiftStrategyOptions(options), &program,
      pool, report));
  return std::move(program).TakeMlp();
}

}  // namespace

Result<Mlp> TrainNnMaterialized(const join::NormalizedRelations& rel,
                                const NnOptions& options,
                                storage::BufferPool* pool,
                                core::TrainReport* report) {
  return TrainNnWith(rel, options, core::Algorithm::kMaterialized, pool,
                     report);
}

Result<Mlp> TrainNnStreaming(const join::NormalizedRelations& rel,
                             const NnOptions& options,
                             storage::BufferPool* pool,
                             core::TrainReport* report) {
  return TrainNnWith(rel, options, core::Algorithm::kStreaming, pool, report);
}

Result<Mlp> TrainNnFactorized(const join::NormalizedRelations& rel,
                              const NnOptions& options,
                              storage::BufferPool* pool,
                              core::TrainReport* report) {
  return TrainNnWith(rel, options, core::Algorithm::kFactorized, pool,
                     report);
}

}  // namespace factorml::nn

#include <cstring>
#include <vector>

#include "common/opcount.h"
#include "join/attribute_view.h"
#include "join/batch_plan.h"
#include "join/join_cursor.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"

namespace factorml::nn {

namespace {

/// Per-attribute-table cache of first-layer partial inner products:
/// row rid holds W1[:, slice_i] * x_ri (plus the layer bias for table 0,
/// matching the paper's T2 = sum w x_R + b). An entry is valid for weight
/// version `stamp[rid]`; since mini-batch SGD changes W1 every update,
/// entries are recomputed lazily on first use per version — "computed when
/// one tuple in R appears for the first time and reused for the remaining
/// matching tuples" (Sec. VI-A2).
struct PartialCache {
  la::Matrix c;                  // nRi x nh
  std::vector<uint64_t> stamp;   // nRi, last weight version computed
};

}  // namespace

Result<Mlp> TrainNnFactorized(const join::NormalizedRelations& rel,
                              const NnOptions& options,
                              storage::BufferPool* pool,
                              core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  if (!rel.has_target) {
    return Status::InvalidArgument("NN training requires a target column");
  }
  if (options.hidden.empty()) {
    return Status::InvalidArgument("at least one hidden layer required");
  }
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  core::ReportScope scope(report, "F-NN");

  const size_t q = rel.num_joins();
  const size_t ds = rel.ds();
  const size_t d = rel.total_dims();
  const size_t nh = options.hidden[0];
  const int64_t n = rel.s.num_rows();

  std::vector<size_t> attr_offset(q);
  for (size_t i = 0; i < q; ++i) attr_offset[i] = rel.FeatureOffset(i + 1);

  Mlp mlp = Mlp::Init(d, options.hidden, options.activation, options.seed);
  internal::BackpropEngine engine(&mlp, options.learning_rate);
  if (options.hidden_dropout > 0.0) {
    engine.EnableDropout(options.hidden_dropout, options.seed ^ 0xD40);
  }
  engine.ConfigureSgd(options.momentum, options.weight_decay);

  std::vector<join::AttributeTableView> views(q);
  std::vector<PartialCache> caches(q);
  uint64_t version = 1;  // bumped after every weight update

  la::Matrix xs;       // batch x dS (S features only — never widened to d)
  la::Matrix a1;       // batch x nh
  la::Matrix delta1;   // batch x nh
  la::Matrix grad0(mlp.w[0].rows(), mlp.w[0].cols());
  std::vector<double> y;
  std::vector<double> dsum(nh);  // grouped-backward scratch
  join::JoinBatch batch;

  double epoch_sse = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = 0; i < q; ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
      if (caches[i].stamp.empty()) {
        caches[i].c.Resize(views[i].feats().rows(), nh);
        caches[i].stamp.assign(views[i].feats().rows(), 0);
      }
    }
    join::JoinCursor cursor(&rel, pool, options.batch_rows);
    if (options.shuffle) {
      cursor.SetRidOrder(join::PermutedRids(rel.fk1_index.num_rids(),
                                            options.seed, epoch));
    }

    epoch_sse = 0.0;
    while (cursor.Next(&batch)) {
      const size_t b = batch.s_rows.num_rows;
      if (b == 0) continue;
      xs.Resize(b, ds);
      y.resize(b);
      for (size_t r = 0; r < b; ++r) {
        y[r] = batch.s_rows.feats(r, 0);
        std::memcpy(xs.Row(r).data(), batch.s_rows.feats.Row(r).data() + 1,
                    sizeof(double) * ds);
      }

      // ---- Factorized forward, first layer (Sec. VI-A1 / Eq. 31):
      // A1 = XS * W_S^T  +  sum_i cache_i(rid_i), where each cache entry
      // is computed once per attribute tuple per weight version.
      la::GemmNTSlice(xs, mlp.w[0], 0, &a1, /*accumulate=*/false);
      for (size_t r = 0; r < b; ++r) {
        const int64_t* keys = batch.s_rows.KeysOf(r);
        double* a1_row = a1.Row(r).data();
        for (size_t i = 0; i < q; ++i) {
          const int64_t rid = keys[rel.FkKeyIndex(i)];
          PartialCache& cache = caches[i];
          if (cache.stamp[static_cast<size_t>(rid)] != version) {
            const auto xr = views[i].FeaturesOf(rid);
            const size_t dri = xr.size();
            double* c_row = cache.c.Row(static_cast<size_t>(rid)).data();
            const size_t ldw = mlp.w[0].cols();
            const double* w_base = mlp.w[0].data() + attr_offset[i];
            for (size_t u = 0; u < nh; ++u) {
              double s = 0.0;
              const double* w_row = w_base + u * ldw;
              for (size_t j = 0; j < dri; ++j) s += w_row[j] * xr[j];
              // The paper's T2 carries the bias with the first partial sum.
              c_row[u] = (i == 0) ? s + mlp.b[0][u] : s;
            }
            CountMults(nh * dri);
            CountAdds(nh * dri + (i == 0 ? nh : 0));
            cache.stamp[static_cast<size_t>(rid)] = version;
          }
          const double* c_row = cache.c.Row(static_cast<size_t>(rid)).data();
          for (size_t u = 0; u < nh; ++u) a1_row[u] += c_row[u];
        }
      }
      CountAdds(b * nh * q);

      epoch_sse += engine.Step(a1, y.data(), &delta1);

      // ---- Factorized backward (Sec. VI-A3 / Eq. 32): the W1 gradient
      // [PG_S | PG_R1 | ... ] is formed from the base relations directly;
      // identical arithmetic, but x_Ri is never expanded to N rows on disk.
      grad0.SetZero();
      la::GemmTNSlice(delta1, xs, &grad0, 0);
      if (options.grouped_backward && q >= 1) {
        // Extension: per R1 group, sum the deltas first, then one outer
        // product per R1 tuple (nh*(b + |rids|*dR1) ops instead of
        // nh*b*dR1). Tables beyond the first keep the per-row path.
        for (const auto& g : batch.groups) {
          if (g.count == 0) continue;
          std::fill(dsum.begin(), dsum.end(), 0.0);
          for (size_t r = g.offset; r < g.offset + g.count; ++r) {
            la::Axpy(1.0, delta1.Row(r).data(), dsum.data(), nh);
          }
          const auto xr = views[0].FeaturesOf(g.rid);
          la::AddOuter(1.0, dsum.data(), nh, xr.data(), xr.size(), &grad0,
                       0, attr_offset[0]);
        }
        for (size_t r = 0; r < b; ++r) {
          const int64_t* keys = batch.s_rows.KeysOf(r);
          for (size_t i = 1; i < q; ++i) {
            const auto xr = views[i].FeaturesOf(keys[rel.FkKeyIndex(i)]);
            la::AddOuter(1.0, delta1.Row(r).data(), nh, xr.data(),
                         xr.size(), &grad0, 0, attr_offset[i]);
          }
        }
      } else {
        for (size_t r = 0; r < b; ++r) {
          const int64_t* keys = batch.s_rows.KeysOf(r);
          for (size_t i = 0; i < q; ++i) {
            const auto xr = views[i].FeaturesOf(keys[rel.FkKeyIndex(i)]);
            la::AddOuter(1.0, delta1.Row(r).data(), nh, xr.data(),
                         xr.size(), &grad0, 0, attr_offset[i]);
          }
        }
      }
      engine.UpdateW0(grad0);
      ++version;  // engine updated b0 and layers >= 1; W1 updated above
    }
    FML_RETURN_IF_ERROR(cursor.status());
  }

  scope.Finish(options.epochs, epoch_sse / (2.0 * static_cast<double>(n)));
  return mlp;
}

}  // namespace factorml::nn

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/opcount.h"
#include "exec/parallel_for.h"
#include "join/attribute_view.h"
#include "join/batch_plan.h"
#include "join/join_cursor.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"

namespace factorml::nn {

namespace {

/// Per-attribute-table cache of first-layer partial inner products:
/// row rid holds W1[:, slice_i] * x_ri (plus the layer bias for table 0,
/// matching the paper's T2 = sum w x_R + b). An entry is valid for weight
/// version `stamp[rid]`; since mini-batch SGD changes W1 every update,
/// entries are recomputed on first use per version — "computed when one
/// tuple in R appears for the first time and reused for the remaining
/// matching tuples" (Sec. VI-A2). The stale entries of a batch are
/// collected up front and refilled in parallel (disjoint rows), then read
/// shared by the row-parallel forward.
struct PartialCache {
  la::Matrix c;                  // nRi x nh
  std::vector<uint64_t> stamp;   // nRi, last weight version computed
};

}  // namespace

Result<Mlp> TrainNnFactorized(const join::NormalizedRelations& rel,
                              const NnOptions& options,
                              storage::BufferPool* pool,
                              core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  if (!rel.has_target) {
    return Status::InvalidArgument("NN training requires a target column");
  }
  if (options.hidden.empty()) {
    return Status::InvalidArgument("at least one hidden layer required");
  }
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  core::ReportScope scope(report, "F-NN");

  const int threads = exec::EffectiveThreads(options.threads);
  if (report != nullptr) report->threads = threads;

  const size_t q = rel.num_joins();
  const size_t ds = rel.ds();
  const size_t d = rel.total_dims();
  const size_t nh = options.hidden[0];
  const int64_t n = rel.s.num_rows();

  std::vector<size_t> attr_offset(q);
  for (size_t i = 0; i < q; ++i) attr_offset[i] = rel.FeatureOffset(i + 1);

  Mlp mlp = Mlp::Init(d, options.hidden, options.activation, options.seed);
  internal::BackpropEngine engine(&mlp, options.learning_rate);
  if (options.hidden_dropout > 0.0) {
    engine.EnableDropout(options.hidden_dropout, options.seed ^ 0xD40);
  }
  engine.ConfigureSgd(options.momentum, options.weight_decay);

  std::vector<join::AttributeTableView> views(q);
  std::vector<PartialCache> caches(q);
  std::vector<std::vector<int64_t>> stale(q);  // rids to refill per batch
  uint64_t version = 1;  // bumped after every weight update

  la::Matrix xs;       // batch x dS (S features only — never widened to d)
  la::Matrix a1;       // batch x nh
  la::Matrix delta1;   // batch x nh
  la::Matrix grad0(mlp.w[0].rows(), mlp.w[0].cols());
  std::vector<double> y;
  std::vector<double> dsums;  // grouped-backward scratch, n_groups x nh
  join::JoinBatch batch;

  double epoch_sse = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t i = 0; i < q; ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
      if (caches[i].stamp.empty()) {
        caches[i].c.Resize(views[i].feats().rows(), nh);
        caches[i].stamp.assign(views[i].feats().rows(), 0);
      }
    }
    join::JoinCursor cursor(&rel, pool, options.batch_rows);
    if (options.shuffle) {
      cursor.SetRidOrder(join::PermutedRids(rel.fk1_index.num_rids(),
                                            options.seed, epoch));
    }

    epoch_sse = 0.0;
    while (cursor.Next(&batch)) {
      const size_t b = batch.s_rows.num_rows;
      if (b == 0) continue;
      xs.Resize(b, ds);
      y.resize(b);
      exec::ParallelFor(
          threads, static_cast<int64_t>(b), /*align=*/1,
          [&](exec::Range rg, int) {
            for (int64_t r = rg.begin; r < rg.end; ++r) {
              y[static_cast<size_t>(r)] =
                  batch.s_rows.feats(static_cast<size_t>(r), 0);
              std::memcpy(xs.Row(static_cast<size_t>(r)).data(),
                          batch.s_rows.feats.Row(static_cast<size_t>(r))
                                  .data() +
                              1,
                          sizeof(double) * ds);
            }
          });

      // ---- Refresh the partial caches for this weight version: collect
      // the stale rids the batch touches (table 0 straight from the rid
      // groups; further tables by scanning the FK columns), then fill the
      // collected rows in parallel — rows are disjoint, and the identical
      // arithmetic runs whether filled here or lazily, so results and op
      // totals match the serial path exactly.
      {
        core::PhaseScope phase(report, "partial_cache");
        for (size_t i = 0; i < q; ++i) stale[i].clear();
        for (const auto& g : batch.groups) {
          if (g.count == 0) continue;
          const auto rid = static_cast<size_t>(g.rid);
          if (caches[0].stamp[rid] != version) {
            caches[0].stamp[rid] = version;
            stale[0].push_back(g.rid);
          }
        }
        for (size_t r = 0; q > 1 && r < b; ++r) {
          const int64_t* keys = batch.s_rows.KeysOf(r);
          for (size_t i = 1; i < q; ++i) {
            const auto rid =
                static_cast<size_t>(keys[rel.FkKeyIndex(i)]);
            if (caches[i].stamp[rid] != version) {
              caches[i].stamp[rid] = version;
              stale[i].push_back(static_cast<int64_t>(rid));
            }
          }
        }
        for (size_t i = 0; i < q; ++i) {
          PartialCache& cache = caches[i];
          const std::vector<int64_t>& todo = stale[i];
          if (todo.empty()) continue;
          exec::ParallelFor(
              threads, static_cast<int64_t>(todo.size()), /*align=*/1,
              [&](exec::Range rg, int) {
                for (int64_t s = rg.begin; s < rg.end; ++s) {
                  const auto rid =
                      static_cast<size_t>(todo[static_cast<size_t>(s)]);
                  const auto xr = views[i].FeaturesOf(
                      static_cast<int64_t>(rid));
                  const size_t dri = xr.size();
                  double* c_row = cache.c.Row(rid).data();
                  const size_t ldw = mlp.w[0].cols();
                  const double* w_base = mlp.w[0].data() + attr_offset[i];
                  for (size_t u = 0; u < nh; ++u) {
                    double sum = 0.0;
                    const double* w_row = w_base + u * ldw;
                    for (size_t j = 0; j < dri; ++j) sum += w_row[j] * xr[j];
                    // The paper's T2 carries the bias with the first
                    // partial sum.
                    c_row[u] = (i == 0) ? sum + mlp.b[0][u] : sum;
                  }
                  CountMults(nh * dri);
                  CountAdds(nh * dri + (i == 0 ? nh : 0));
                }
              });
        }
      }

      // ---- Factorized forward, first layer (Sec. VI-A1 / Eq. 31):
      // A1 = XS * W_S^T  +  sum_i cache_i(rid_i), row-parallel over the
      // batch (each a1 row reads only its own xs row and cached partials).
      a1.Resize(b, nh);
      {
        core::PhaseScope phase(report, "first_layer_fwd");
        exec::ParallelFor(
            threads, static_cast<int64_t>(b), /*align=*/1,
            [&](exec::Range rg, int) {
              la::GemmNTSliceRows(xs, mlp.w[0], 0, &a1,
                                  static_cast<size_t>(rg.begin),
                                  static_cast<size_t>(rg.end),
                                  /*accumulate=*/false);
              for (int64_t r = rg.begin; r < rg.end; ++r) {
                const int64_t* keys =
                    batch.s_rows.KeysOf(static_cast<size_t>(r));
                double* a1_row = a1.Row(static_cast<size_t>(r)).data();
                for (size_t i = 0; i < q; ++i) {
                  const int64_t rid = keys[rel.FkKeyIndex(i)];
                  const double* c_row =
                      caches[i].c.Row(static_cast<size_t>(rid)).data();
                  for (size_t u = 0; u < nh; ++u) a1_row[u] += c_row[u];
                }
              }
              CountAdds(static_cast<uint64_t>(rg.size()) * nh * q);
            });
      }

      {
        core::PhaseScope phase(report, "upper_layers");
        epoch_sse += engine.Step(a1, y.data(), &delta1);
      }

      // ---- Factorized backward (Sec. VI-A3 / Eq. 32): the W1 gradient
      // [PG_S | PG_R1 | ... ] is formed from the base relations directly;
      // identical arithmetic, but x_Ri is never expanded to N rows on
      // disk. Parallelized over column morsels of grad0: every worker owns
      // a disjoint column range and accumulates it in the serial row
      // order, so the gradient is bit-identical for any thread count.
      if (options.grouped_backward && q >= 1) {
        // Extension: per R1 group, sum the deltas first, then one outer
        // product per R1 tuple (nh*(b + |rids|*dR1) ops instead of
        // nh*b*dR1). Computed once, read by every column worker.
        dsums.assign(batch.groups.size() * nh, 0.0);
        for (size_t g = 0; g < batch.groups.size(); ++g) {
          const auto& grp = batch.groups[g];
          if (grp.count == 0) continue;
          double* dsum = dsums.data() + g * nh;
          for (size_t r = grp.offset; r < grp.offset + grp.count; ++r) {
            la::Axpy(1.0, delta1.Row(r).data(), dsum, nh);
          }
        }
      }
      grad0.SetZero();
      {
        core::PhaseScope phase(report, "w1_grad");
        exec::ParallelFor(
            threads, static_cast<int64_t>(d), /*align=*/1,
            [&](exec::Range rg, int) {
              const auto cb = static_cast<size_t>(rg.begin);
              const auto ce = static_cast<size_t>(rg.end);
              // PG_S: columns of the S slice [0, ds) within this morsel.
              if (cb < ds) {
                la::GemmTNSliceCols(delta1, xs, &grad0, 0, cb,
                                    std::min(ds, ce));
              }
              // PG_Ri: the slice of each attribute block inside the
              // morsel. The overlap is loop-invariant over the batch
              // rows, so clip once per table; tables (and whole row
              // sweeps) with no overlap cost this worker nothing.
              std::vector<size_t> lo(q);
              std::vector<size_t> len(q, 0);
              bool any_overlap = false;
              for (size_t i = 0; i < q; ++i) {
                const size_t block_lo = attr_offset[i];
                const size_t block_hi = block_lo + rel.dr(i);
                const size_t s = std::max(block_lo, cb);
                const size_t e = std::min(block_hi, ce);
                if (s < e) {
                  lo[i] = s - block_lo;
                  len[i] = e - s;
                  any_overlap = true;
                }
              }
              if (!any_overlap) return;
              const size_t row_first_table =
                  options.grouped_backward ? 1 : 0;
              if (options.grouped_backward && len[0] > 0) {
                for (size_t g = 0; g < batch.groups.size(); ++g) {
                  const auto& grp = batch.groups[g];
                  if (grp.count == 0) continue;
                  const auto xr = views[0].FeaturesOf(grp.rid);
                  la::AddOuter(1.0, dsums.data() + g * nh, nh,
                               xr.data() + lo[0], len[0], &grad0, 0,
                               attr_offset[0] + lo[0]);
                }
              }
              bool any_row_table = false;
              for (size_t i = row_first_table; i < q; ++i) {
                if (len[i] > 0) any_row_table = true;
              }
              if (!any_row_table) return;
              for (size_t r = 0; r < b; ++r) {
                const int64_t* keys = batch.s_rows.KeysOf(r);
                for (size_t i = row_first_table; i < q; ++i) {
                  if (len[i] == 0) continue;
                  const auto xr =
                      views[i].FeaturesOf(keys[rel.FkKeyIndex(i)]);
                  la::AddOuter(1.0, delta1.Row(r).data(), nh,
                               xr.data() + lo[i], len[i], &grad0, 0,
                               attr_offset[i] + lo[i]);
                }
              }
            });
      }
      engine.UpdateW0(grad0);
      ++version;  // engine updated b0 and layers >= 1; W1 updated above
    }
    FML_RETURN_IF_ERROR(cursor.status());
  }

  scope.Finish(options.epochs, epoch_sse / (2.0 * static_cast<double>(n)));
  return mlp;
}

}  // namespace factorml::nn

#include "nn/backprop.h"

#include "common/opcount.h"
#include "la/ops.h"

namespace factorml::nn::internal {

BackpropEngine::BackpropEngine(Mlp* mlp, double learning_rate)
    : mlp_(mlp), lr_(learning_rate) {
  const size_t layers = mlp_->num_weight_layers();
  FML_CHECK_GE(layers, 2u) << "need at least one hidden layer";
  a_.resize(layers);
  h_.resize(layers);
  delta_.resize(layers);
  mask_.resize(layers);
  raw_h_.resize(layers);
}

void BackpropEngine::ConfigureSgd(double momentum, double weight_decay) {
  FML_CHECK_GE(momentum, 0.0);
  FML_CHECK_LT(momentum, 1.0);
  FML_CHECK_GE(weight_decay, 0.0);
  momentum_ = momentum;
  weight_decay_ = weight_decay;
  // Pre-size the velocity buffers to their steady-state shapes so the
  // checkpoint visitor's double stream is a pure function of Init-time
  // configuration (the lazy sizing in the update hooks then never fires).
  const size_t layers = mlp_->num_weight_layers();
  if (momentum_ > 0.0 || weight_decay_ > 0.0) {
    vel_w_.resize(layers);
    for (size_t l = 0; l < layers; ++l) {
      vel_w_[l].Resize(mlp_->w[l].rows(), mlp_->w[l].cols());
    }
  }
  if (momentum_ > 0.0) {
    vel_b_.resize(layers);
    for (size_t l = 0; l < layers; ++l) {
      vel_b_[l].assign(mlp_->b[l].size(), 0.0);
    }
  }
}

void BackpropEngine::ApplyUpdate(la::Matrix* w, const la::Matrix& grad,
                                 la::Matrix* velocity) {
  FML_CHECK_EQ(w->size(), grad.size());
  if (momentum_ == 0.0 && weight_decay_ == 0.0) {
    ApplyGradient(w, grad, lr_);
    return;
  }
  if (velocity->size() != w->size()) {
    velocity->Resize(w->rows(), w->cols());
  }
  double* wv = w->data();
  double* vv = velocity->data();
  const double* g = grad.data();
  for (size_t i = 0; i < grad.size(); ++i) {
    vv[i] = momentum_ * vv[i] - lr_ * (g[i] + weight_decay_ * wv[i]);
    wv[i] += vv[i];
  }
  CountMults(3 * grad.size());
  CountAdds(3 * grad.size());
}

void BackpropEngine::UpdateW0(const la::Matrix& grad0) {
  if (vel_w_.empty()) vel_w_.resize(mlp_->num_weight_layers());
  ApplyUpdate(&mlp_->w[0], grad0, &vel_w_[0]);
}

void BackpropEngine::EnableDropout(double rate, uint64_t seed) {
  FML_CHECK_GE(rate, 0.0);
  FML_CHECK_LT(rate, 1.0);
  dropout_rate_ = rate;
  if (rate > 0.0) {
    dropout_rng_ = std::make_unique<Rng>(seed);
  }
}

void BackpropEngine::MaybeDropout(size_t layer) {
  if (dropout_rate_ <= 0.0) return;
  // Keep the unmasked activations: the activation derivative in the
  // backward pass is a function of f(a), not of the dropped output.
  raw_h_[layer] = h_[layer];
  la::Matrix& h = h_[layer];
  la::Matrix& mask = mask_[layer];
  if (mask.rows() != h.rows() || mask.cols() != h.cols()) {
    mask.Resize(h.rows(), h.cols());
  }
  const double keep_scale = 1.0 / (1.0 - dropout_rate_);
  double* hv = h.data();
  double* mv = mask.data();
  for (size_t i = 0; i < h.size(); ++i) {
    mv[i] = dropout_rng_->NextDouble() >= dropout_rate_ ? keep_scale : 0.0;
    hv[i] *= mv[i];
  }
  CountMults(h.size());
}

void ApplyGradient(la::Matrix* w, const la::Matrix& grad, double lr) {
  FML_CHECK_EQ(w->size(), grad.size());
  double* dst = w->data();
  const double* g = grad.data();
  for (size_t i = 0; i < grad.size(); ++i) dst[i] -= lr * g[i];
  CountMults(grad.size());
  CountSubs(grad.size());
}

void BackpropEngine::UpdateLayer(size_t l, const la::Matrix& delta,
                                 const la::Matrix& input) {
  if (vel_w_.empty()) vel_w_.resize(mlp_->num_weight_layers());
  la::GemmTN(delta, input, &grad_, /*accumulate=*/false);
  ApplyUpdate(&mlp_->w[l], grad_, &vel_w_[l]);
  UpdateBias(l, delta);
}

void BackpropEngine::UpdateBias(size_t l, const la::Matrix& delta) {
  // Bias gradient: column sums of delta. Weight decay is not applied to
  // biases (standard practice).
  if (vel_b_.empty()) vel_b_.resize(mlp_->num_weight_layers());
  auto& bias = mlp_->b[l];
  auto& vel = vel_b_[l];
  if (momentum_ > 0.0 && vel.size() != bias.size()) {
    vel.assign(bias.size(), 0.0);
  }
  for (size_t j = 0; j < bias.size(); ++j) {
    double s = 0.0;
    for (size_t r = 0; r < delta.rows(); ++r) s += delta(r, j);
    if (momentum_ > 0.0) {
      vel[j] = momentum_ * vel[j] - lr_ * s;
      bias[j] += vel[j];
    } else {
      bias[j] -= lr_ * s;
    }
  }
  CountAdds(delta.size());
  CountMults(bias.size());
  CountSubs(bias.size());
}

double BackpropEngine::Step(const la::Matrix& a1, const double* y,
                            la::Matrix* delta1) {
  const size_t layers = mlp_->num_weight_layers();
  const size_t batch = a1.rows();
  FML_CHECK_GT(batch, 0u);

  // ---- Forward from the (externally computed) first pre-activation.
  ApplyActivation(mlp_->activation, a1, &h_[0]);
  MaybeDropout(0);
  for (size_t l = 1; l < layers; ++l) {
    la::GemmNT(h_[l - 1], mlp_->w[l], &a_[l], /*accumulate=*/false);
    la::AddRowVector(mlp_->b[l].data(), &a_[l]);
    if (l + 1 < layers) {
      ApplyActivation(mlp_->activation, a_[l], &h_[l]);
      MaybeDropout(l);
    } else {
      h_[l] = a_[l];  // linear output unit
    }
  }

  // ---- Output error: E = 1/(2b) sum (o - y)^2, so dE/dO = (o - y)/b.
  const la::Matrix& out = h_[layers - 1];
  FML_CHECK_EQ(out.cols(), 1u);
  la::Matrix& dout = delta_[layers - 1];
  dout.Resize(batch, 1);
  double sse = 0.0;
  const double inv_b = 1.0 / static_cast<double>(batch);
  for (size_t r = 0; r < batch; ++r) {
    const double e = out(r, 0) - y[r];
    sse += e * e;
    dout(r, 0) = e * inv_b;
  }
  CountSubs(batch);
  CountMults(2 * batch);
  CountAdds(batch);

  // ---- Backward: compute all deltas with the pre-update weights.
  for (size_t l = layers - 1; l >= 1; --l) {
    la::Matrix& prev = delta_[l - 1];
    la::GemmNN(delta_[l], mlp_->w[l], &prev, /*accumulate=*/false);
    // Multiply element-wise by f'(a_{l-1}); layer 0's pre-activation is
    // the caller-provided a1. Under dropout, the chain also passes
    // through the mask, and f' must use the unmasked activations.
    const la::Matrix& pre = (l - 1 == 0) ? a1 : a_[l - 1];
    const la::Matrix& act =
        dropout_rate_ > 0.0 ? raw_h_[l - 1] : h_[l - 1];
    ActivationGrad(mlp_->activation, pre, act, &fprime_);
    double* p = prev.data();
    const double* f = fprime_.data();
    for (size_t i = 0; i < prev.size(); ++i) p[i] *= f[i];
    CountMults(prev.size());
    if (dropout_rate_ > 0.0) {
      const double* m = mask_[l - 1].data();
      for (size_t i = 0; i < prev.size(); ++i) p[i] *= m[i];
      CountMults(prev.size());
    }
  }

  // ---- Updates for layers >= 1 plus the first-layer bias; the caller
  // owns the w[0] gradient (that is where M/S and F differ).
  for (size_t l = 1; l < layers; ++l) {
    UpdateLayer(l, delta_[l], h_[l - 1]);
  }
  UpdateBias(0, delta_[0]);

  *delta1 = delta_[0];
  return sse;
}

}  // namespace factorml::nn::internal

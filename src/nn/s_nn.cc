#include <vector>

#include "exec/parallel_for.h"
#include "exec/worker_pools.h"
#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/batch_plan.h"
#include "join/join_cursor.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"

namespace factorml::nn {

Result<Mlp> TrainNnStreaming(const join::NormalizedRelations& rel,
                             const NnOptions& options,
                             storage::BufferPool* pool,
                             core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  if (!rel.has_target) {
    return Status::InvalidArgument("NN training requires a target column");
  }
  if (options.hidden.empty()) {
    return Status::InvalidArgument("at least one hidden layer required");
  }
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  core::ReportScope scope(report, "S-NN");

  const int threads = exec::EffectiveThreads(options.threads);
  if (report != nullptr) report->threads = threads;

  const size_t d = rel.total_dims();
  const size_t nh = options.hidden[0];
  const int64_t n = rel.s.num_rows();
  Mlp mlp = Mlp::Init(d, options.hidden, options.activation, options.seed);
  internal::BackpropEngine engine(&mlp, options.learning_rate);
  if (options.hidden_dropout > 0.0) {
    engine.EnableDropout(options.hidden_dropout, options.seed ^ 0xD40);
  }
  engine.ConfigureSgd(options.momentum, options.weight_decay);

  la::Matrix x;
  la::Matrix a1;
  la::Matrix delta1;
  la::Matrix grad0(mlp.w[0].rows(), mlp.w[0].cols());
  std::vector<double> y;
  std::vector<join::AttributeTableView> views(rel.num_joins());
  join::JoinBatch batch;

  double epoch_sse = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // The join is recomputed every epoch: reload the build side, stream S.
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    join::JoinCursor cursor(&rel, pool, options.batch_rows);
    if (options.shuffle) {
      cursor.SetRidOrder(join::PermutedRids(rel.fk1_index.num_rids(),
                                            options.seed, epoch));
    }

    epoch_sse = 0.0;
    while (cursor.Next(&batch)) {
      const size_t b = batch.s_rows.num_rows;
      if (b == 0) continue;
      x.Resize(b, d);
      y.resize(b);
      {
        // On-the-fly join: assemble the full joined tuples, row-parallel
        // (pure data movement against shared read-only views).
        core::PhaseScope phase(report, "assemble");
        exec::ParallelFor(
            threads, static_cast<int64_t>(b), /*align=*/1,
            [&](exec::Range rg, int) {
              for (int64_t r = rg.begin; r < rg.end; ++r) {
                // Feature column 0 of S is the target.
                y[static_cast<size_t>(r)] =
                    batch.s_rows.feats(static_cast<size_t>(r), 0);
                join::AssembleJoinedRow(rel, batch.s_rows,
                                        static_cast<size_t>(r), views,
                                        x.Row(static_cast<size_t>(r)).data());
              }
            });
      }

      a1.Resize(b, nh);
      {
        core::PhaseScope phase(report, "first_layer_fwd");
        exec::ParallelFor(threads, static_cast<int64_t>(b), /*align=*/1,
                          [&](exec::Range rg, int) {
                            la::GemmNTSliceRows(
                                x, mlp.w[0], 0, &a1,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end),
                                /*accumulate=*/false);
                            la::AddRowVectorRows(
                                mlp.b[0].data(), &a1,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end));
                          });
      }
      {
        core::PhaseScope phase(report, "upper_layers");
        epoch_sse += engine.Step(a1, y.data(), &delta1);
      }

      grad0.SetZero();
      {
        core::PhaseScope phase(report, "w1_grad");
        exec::ParallelFor(threads, static_cast<int64_t>(d), /*align=*/1,
                          [&](exec::Range rg, int) {
                            la::GemmTNSliceCols(
                                delta1, x, &grad0, 0,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end));
                          });
      }
      engine.UpdateW0(grad0);
    }
    FML_RETURN_IF_ERROR(cursor.status());
  }

  scope.Finish(options.epochs, epoch_sse / (2.0 * static_cast<double>(n)));
  return mlp;
}

}  // namespace factorml::nn

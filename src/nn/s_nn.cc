#include <vector>

#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/batch_plan.h"
#include "join/join_cursor.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"

namespace factorml::nn {

Result<Mlp> TrainNnStreaming(const join::NormalizedRelations& rel,
                             const NnOptions& options,
                             storage::BufferPool* pool,
                             core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  if (!rel.has_target) {
    return Status::InvalidArgument("NN training requires a target column");
  }
  if (options.hidden.empty()) {
    return Status::InvalidArgument("at least one hidden layer required");
  }
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  core::ReportScope scope(report, "S-NN");

  const size_t d = rel.total_dims();
  const int64_t n = rel.s.num_rows();
  Mlp mlp = Mlp::Init(d, options.hidden, options.activation, options.seed);
  internal::BackpropEngine engine(&mlp, options.learning_rate);
  if (options.hidden_dropout > 0.0) {
    engine.EnableDropout(options.hidden_dropout, options.seed ^ 0xD40);
  }
  engine.ConfigureSgd(options.momentum, options.weight_decay);

  la::Matrix x;
  la::Matrix a1;
  la::Matrix delta1;
  la::Matrix grad0(mlp.w[0].rows(), mlp.w[0].cols());
  std::vector<double> y;
  std::vector<join::AttributeTableView> views(rel.num_joins());
  join::JoinBatch batch;

  double epoch_sse = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // The join is recomputed every epoch: reload the build side, stream S.
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    join::JoinCursor cursor(&rel, pool, options.batch_rows);
    if (options.shuffle) {
      cursor.SetRidOrder(join::PermutedRids(rel.fk1_index.num_rids(),
                                            options.seed, epoch));
    }

    epoch_sse = 0.0;
    while (cursor.Next(&batch)) {
      const size_t b = batch.s_rows.num_rows;
      if (b == 0) continue;
      x.Resize(b, d);
      y.resize(b);
      for (size_t r = 0; r < b; ++r) {
        // Feature column 0 of S is the target.
        y[r] = batch.s_rows.feats(r, 0);
        join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.Row(r).data());
      }

      la::GemmNT(x, mlp.w[0], &a1, /*accumulate=*/false);
      la::AddRowVector(mlp.b[0].data(), &a1);
      epoch_sse += engine.Step(a1, y.data(), &delta1);

      la::GemmTN(delta1, x, &grad0, /*accumulate=*/false);
      engine.UpdateW0(grad0);
    }
    FML_RETURN_IF_ERROR(cursor.status());
  }

  scope.Finish(options.epochs, epoch_sse / (2.0 * static_cast<double>(n)));
  return mlp;
}

}  // namespace factorml::nn

#include <cstring>
#include <vector>

#include "common/opcount.h"
#include "common/stopwatch.h"
#include "exec/parallel_for.h"
#include "join/batch_plan.h"
#include "join/materialize.h"
#include "la/ops.h"
#include "nn/backprop.h"
#include "nn/trainers.h"
#include "storage/table.h"

namespace factorml::nn {

Result<Mlp> TrainNnMaterialized(const join::NormalizedRelations& rel,
                                const NnOptions& options,
                                storage::BufferPool* pool,
                                core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  if (!rel.has_target) {
    return Status::InvalidArgument("NN training requires a target column");
  }
  if (options.hidden.empty()) {
    return Status::InvalidArgument("at least one hidden layer required");
  }
  core::ReportScope scope(report, "M-NN");

  const int threads = exec::EffectiveThreads(options.threads);
  if (report != nullptr) report->threads = threads;

  // Join + materialize T on disk, then train from T alone.
  Stopwatch mat_watch;
  FML_ASSIGN_OR_RETURN(
      storage::Table t,
      join::MaterializeJoin(rel, pool, options.temp_dir + "/m_nn_T.fml",
                            threads));
  if (report != nullptr) {
    report->materialize_seconds = mat_watch.ElapsedSeconds();
  }

  const size_t d = rel.total_dims();
  const size_t nh = options.hidden[0];
  const int64_t n = t.num_rows();
  Mlp mlp = Mlp::Init(d, options.hidden, options.activation, options.seed);
  internal::BackpropEngine engine(&mlp, options.learning_rate);
  if (options.hidden_dropout > 0.0) {
    engine.EnableDropout(options.hidden_dropout, options.seed ^ 0xD40);
  }
  engine.ConfigureSgd(options.momentum, options.weight_decay);

  la::Matrix x;        // batch x d
  la::Matrix a1;       // batch x nh
  la::Matrix delta1;   // batch x nh
  la::Matrix grad0(mlp.w[0].rows(), mlp.w[0].cols());
  std::vector<double> y;
  storage::RowBatch rows;

  double epoch_sse = 0.0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<int64_t> order;
    if (options.shuffle) {
      order = join::PermutedRids(rel.fk1_index.num_rids(), options.seed,
                                 epoch);
    }
    const auto plan = join::PlanGroupBatches(
        rel.fk1_index, options.batch_rows,
        options.shuffle ? &order : nullptr);

    epoch_sse = 0.0;
    for (const auto& batch : plan) {
      const size_t b = static_cast<size_t>(batch.total_rows);
      x.Resize(b, d);
      y.resize(b);
      size_t filled = 0;
      for (const auto& range : batch.ranges) {
        FML_RETURN_IF_ERROR(t.ReadRows(pool, range.start,
                                       static_cast<size_t>(range.count),
                                       &rows));
        for (size_t r = 0; r < rows.num_rows; ++r) {
          // T feature column 0 is Y; the remaining d columns are features.
          y[filled] = rows.feats(r, 0);
          std::memcpy(x.Row(filled).data(), rows.feats.Row(r).data() + 1,
                      sizeof(double) * d);
          ++filled;
        }
      }
      FML_CHECK_EQ(filled, b);

      // First-layer forward over row morsels: each a1 row depends only on
      // its own input row, so any partition is bit-identical to serial.
      a1.Resize(b, nh);
      {
        core::PhaseScope phase(report, "first_layer_fwd");
        exec::ParallelFor(threads, static_cast<int64_t>(b), /*align=*/1,
                          [&](exec::Range rg, int) {
                            la::GemmNTSliceRows(
                                x, mlp.w[0], 0, &a1,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end),
                                /*accumulate=*/false);
                            la::AddRowVectorRows(
                                mlp.b[0].data(), &a1,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end));
                          });
      }
      {
        core::PhaseScope phase(report, "upper_layers");
        epoch_sse += engine.Step(a1, y.data(), &delta1);
      }

      // W1 gradient over column morsels: the per-element accumulation
      // order over the batch rows is unchanged, so this too is
      // bit-identical for any thread count.
      grad0.SetZero();
      {
        core::PhaseScope phase(report, "w1_grad");
        exec::ParallelFor(threads, static_cast<int64_t>(d), /*align=*/1,
                          [&](exec::Range rg, int) {
                            la::GemmTNSliceCols(
                                delta1, x, &grad0, 0,
                                static_cast<size_t>(rg.begin),
                                static_cast<size_t>(rg.end));
                          });
      }
      engine.UpdateW0(grad0);
    }
  }

  scope.Finish(options.epochs,
               epoch_sse / (2.0 * static_cast<double>(n)));
  return mlp;
}

}  // namespace factorml::nn

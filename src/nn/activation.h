#ifndef FACTORML_NN_ACTIVATION_H_
#define FACTORML_NN_ACTIVATION_H_

#include <string>

#include "la/matrix.h"

namespace factorml::nn {

/// Activation functions studied by the paper (Sec. VI-A2). Sigmoid and
/// tanh are not additive, so exact computation sharing is limited to the
/// first layer; identity is additive (the Cauchy functional form), which
/// is what makes the second-layer-reuse ablation expressible; ReLU is
/// additive only when both partial sums share a sign.
enum class Activation {
  kSigmoid,
  kTanh,
  kRelu,
  kIdentity,
};

const char* ActivationName(Activation a);

/// True for activations satisfying f(x + y) = f(x) + f(y) everywhere —
/// the requirement for exact cross-layer computation sharing.
bool IsAdditive(Activation a);

/// h = f(a), element-wise over the batch.
void ApplyActivation(Activation act, const la::Matrix& a, la::Matrix* h);

/// g = f'(a) element-wise, expressed through the already-computed h where
/// cheaper (sigmoid: h(1-h); tanh: 1-h^2).
void ActivationGrad(Activation act, const la::Matrix& a, const la::Matrix& h,
                    la::Matrix* g);

}  // namespace factorml::nn

#endif  // FACTORML_NN_ACTIVATION_H_

#ifndef FACTORML_NN_TRAINERS_H_
#define FACTORML_NN_TRAINERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/report.h"
#include "join/normalized_relations.h"
#include "la/kernels.h"
#include "nn/mlp.h"
#include "storage/buffer_pool.h"

namespace factorml::nn {

/// Options shared by the three NN training algorithms. The dataset must
/// carry a target (rel.has_target). All three algorithms perform the same
/// sequence of mini-batch gradient updates (batches are whole FK1-rid
/// groups planned identically; see join/batch_plan.h), so their trained
/// parameters agree up to floating-point reordering.
struct NnOptions {
  std::vector<size_t> hidden = {50};  // hidden layer widths (nh first)
  Activation activation = Activation::kSigmoid;
  int epochs = 10;                    // the paper trains for 10 epochs
  double learning_rate = 0.05;
  size_t batch_rows = 1024;           // mini-batch target size
  bool shuffle = false;               // permute R1's keys per epoch (SGD)
  uint64_t seed = 17;                 // weight init + shuffle seed
  std::string temp_dir = ".";         // where M-NN materializes T
  /// Inverted dropout rate on the hidden activations (0 disables). The
  /// paper notes Dropout after a layer's activation is compatible with the
  /// factorization (Sec. VI-A); the engine draws masks from a stream
  /// seeded by `seed`, so all three algorithms apply identical masks and
  /// keep producing identical parameters.
  double hidden_dropout = 0.0;
  /// Classical momentum coefficient for SGD (0 = plain SGD) and L2 weight
  /// decay on the weights (never the biases). Both are deterministic and
  /// shared by all three algorithms.
  double momentum = 0.0;
  double weight_decay = 0.0;
  /// F-NN extension beyond the paper: accumulate the first-layer R1
  /// gradient per rid group (sum the deltas of a group, then one outer
  /// product per R1 tuple) instead of one outer product per fact tuple.
  /// The paper treats the backward pass as having no reusable computation
  /// (Sec. VI-A3); this flag demonstrates there is some after all — see
  /// bench/ablation_grouped_backward.
  bool grouped_backward = false;
  /// Worker threads for the exec/ morsel-driven runtime (all three
  /// algorithms). The sequence of mini-batch updates is unchanged;
  /// within each batch the first-layer forward partitions over rows and
  /// the W1 gradient over columns (both bit-identical decompositions),
  /// so outputs match the serial run up to the per-worker merge of
  /// attribute-gradient partials. 0 = use exec::DefaultThreads() (the
  /// --threads flag); 1 = the exact bit-for-bit serial path.
  int threads = 0;
  /// Full-pass scheduler knobs (strategy plane, see StrategyOptions):
  /// morsel_rows > 0 switches the pass to fixed deterministically numbered
  /// chunks with a chunk-ordered reduction — results then depend on
  /// morsel_rows but not on threads or stealing; steal lets idle workers
  /// take chunks from busy ones (implies chunking).
  int64_t morsel_rows = 0;
  bool steal = false;
  /// Asynchronous double-buffered page prefetch (strategy plane, see
  /// StrategyOptions): overlap the next morsel's page reads with compute.
  /// Residency-only — results are bit-identical either way; prefetch_depth
  /// is the number of batches read ahead per worker.
  bool prefetch = false;
  int prefetch_depth = 2;
  /// Rid-range shards of the full-pass plane (strategy plane, see
  /// StrategyOptions). The mini-batch (SGD) plane is sequential, so
  /// shards > 1 is rejected with InvalidArgument for this family.
  int shards = 1;
  /// Compute-kernel backend (--kernels): kScalar (default) keeps the
  /// seed's bit-identical loops; kSimd routes the la/ primitives (Gemv,
  /// Dot, AddOuter behind the BP math) through the runtime-dispatched
  /// vector backend. The mini-batch plane has no strip decode — batches
  /// are already dense matrices — so only the summation order inside the
  /// primitives moves; op counts are identical, losses agree to
  /// floating-point reassociation tolerance.
  la::KernelMode kernels = la::KernelMode::kScalar;
  /// Shard execution backend knobs (--shard-backend et al., see
  /// StrategyOptions). Present for option-lifting uniformity only: the
  /// mini-batch plane rejects shards > 1, so neither backend ever
  /// activates for this family.
  std::string shard_backend = "inproc";
  int64_t shard_timeout_ms = 30000;
  std::string shard_transport = "unix";
  std::string shard_worker_path;
  /// ShardDelta wire encoding (--delta-encoding): "dense" (v1 frames) or
  /// "sparse" (v2 zero-run-length frames, decoded bit-identically).
  std::string delta_encoding = "dense";
  /// Non-empty (--checkpoint-dir): CRC-verified checkpoint/restore of the
  /// iteration state; a resumed run is bit-identical to an uninterrupted
  /// one. Empty = checkpointing off.
  std::string checkpoint_dir;
  /// Iterations between checkpoint writes (--checkpoint-every); 0 = every
  /// iteration when checkpoint_dir is set.
  int64_t checkpoint_every = 0;
};

/// Algorithm M-NN: materializes T, then standard BP over T's rows.
Result<Mlp> TrainNnMaterialized(const join::NormalizedRelations& rel,
                                const NnOptions& options,
                                storage::BufferPool* pool,
                                core::TrainReport* report);

/// Algorithm S-NN: the join is recomputed on the fly each epoch; every
/// joined tuple is assembled in memory and fed to standard BP.
Result<Mlp> TrainNnStreaming(const join::NormalizedRelations& rel,
                             const NnOptions& options,
                             storage::BufferPool* pool,
                             core::TrainReport* report);

/// Algorithm F-NN (Sec. VI-A/VI-B): the first-layer pre-activation is
/// factorized as W_S x_S + (W_R1 x_R1 + ... + W_Rq x_Rq + b); the
/// parenthesized partial inner products are computed once per attribute
/// tuple per weight version and reused for all matching fact tuples. The
/// backward pass populates x_S / x_Ri directly from the base relations
/// (the I/O saving of Eq. 29/32) while computing the identical gradient.
Result<Mlp> TrainNnFactorized(const join::NormalizedRelations& rel,
                              const NnOptions& options,
                              storage::BufferPool* pool,
                              core::TrainReport* report);

}  // namespace factorml::nn

#endif  // FACTORML_NN_TRAINERS_H_

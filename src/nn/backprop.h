#ifndef FACTORML_NN_BACKPROP_H_
#define FACTORML_NN_BACKPROP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"
#include "nn/mlp.h"

namespace factorml::nn::internal {

/// Shared BP machinery for the three NN trainers. The trainers differ only
/// in how the first-layer pre-activation A1 = W1 * x + b1 is produced (full
/// joined tuples for M-NN/S-NN; factorized partial inner products for
/// F-NN) and in how the W1 gradient [PG_S | PG_R] is accumulated; all
/// layers above the first are mathematically identical across algorithms
/// (the paper shows reuse beyond the first layer is not profitable,
/// Sec. VI-A2), so they live here.
class BackpropEngine {
 public:
  BackpropEngine(Mlp* mlp, double learning_rate);

  /// Enables inverted dropout on the hidden activations (the paper notes
  /// Dropout applied after a layer's activation is compatible with the
  /// factorization, Sec. VI-A). Masks are drawn from a deterministic
  /// stream seeded here; trainers that process identical batch sequences
  /// with the same seed therefore apply identical masks, preserving the
  /// M == S == F exactness property under dropout.
  void EnableDropout(double rate, uint64_t seed);

  /// Configures classical-momentum SGD with optional L2 weight decay:
  ///   v <- momentum * v - lr * (grad + weight_decay * w);  w <- w + v.
  /// Defaults (0, 0) reduce to plain SGD. Deterministic, so the M/S/F
  /// exactness property is unaffected.
  void ConfigureSgd(double momentum, double weight_decay);

  /// Applies the configured update rule to the first-layer weights using
  /// the caller-assembled gradient (the [PG_S | PG_R] split for F-NN).
  void UpdateW0(const la::Matrix& grad0);

  /// One mini-batch update given the first-layer pre-activation `a1`
  /// (batch x nh, bias already added) and targets `y` (length batch):
  /// runs the forward pass through the remaining layers, backpropagates,
  /// updates every parameter except w[0] (including b[0]), and writes
  /// delta1 = dE/dA1 (already scaled by 1/batch) for the caller to form
  /// the w[0] gradient. Returns the batch's sum of squared errors
  /// (computed before the update).
  double Step(const la::Matrix& a1, const double* y, la::Matrix* delta1);

  double learning_rate() const { return lr_; }

  /// Checkpoint seams: the optimizer state that must survive a restart
  /// for a resumed run to be bit-identical to an uninterrupted one.
  std::vector<la::Matrix>& vel_w() { return vel_w_; }
  std::vector<std::vector<double>>& vel_b() { return vel_b_; }
  Rng* dropout_rng() { return dropout_rng_.get(); }

 private:
  void UpdateLayer(size_t l, const la::Matrix& delta,
                   const la::Matrix& input);

  void MaybeDropout(size_t layer);
  void ApplyUpdate(la::Matrix* w, const la::Matrix& grad,
                   la::Matrix* velocity);
  void UpdateBias(size_t l, const la::Matrix& delta);

  Mlp* mlp_;
  double lr_;
  double momentum_ = 0.0;
  double weight_decay_ = 0.0;
  std::vector<la::Matrix> vel_w_;               // per-layer weight velocity
  std::vector<std::vector<double>> vel_b_;      // per-layer bias velocity
  double dropout_rate_ = 0.0;
  std::unique_ptr<Rng> dropout_rng_;
  std::vector<la::Matrix> a_;      // pre-activations per layer
  std::vector<la::Matrix> h_;      // activations per layer
  std::vector<la::Matrix> delta_;  // error terms per layer
  std::vector<la::Matrix> mask_;   // dropout masks (0 or 1/(1-p))
  std::vector<la::Matrix> raw_h_;  // pre-dropout activations (for f')
  la::Matrix grad_;
  la::Matrix fprime_;
};

/// w -= lr * grad and the matching op count (one multiply-subtract per
/// parameter); shared with the trainers' w[0] update.
void ApplyGradient(la::Matrix* w, const la::Matrix& grad, double lr);

}  // namespace factorml::nn::internal

#endif  // FACTORML_NN_BACKPROP_H_

#ifndef FACTORML_NN_MLP_H_
#define FACTORML_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "nn/activation.h"

namespace factorml::nn {

/// Feed-forward regression network: `hidden.size()` hidden layers with a
/// shared activation, plus one linear output unit trained against the
/// target Y with mean squared error (the paper's Sec. III-B / VI setting).
///
/// Layer l has weights w[l] of shape (units_out x units_in) and bias b[l];
/// layer 0 consumes the d-dimensional joined feature vector, whose column
/// layout is [XS | XR1 | ... | XRq] — the F-NN trainer slices w[0] by that
/// layout.
class Mlp {
 public:
  Mlp() = default;

  /// Deterministic initialization (Gaussian weights scaled by
  /// 1/sqrt(fan_in)); all trainers start from the identical network so the
  /// factorization's exactness is testable parameter-by-parameter.
  static Mlp Init(size_t input_dims, const std::vector<size_t>& hidden,
                  Activation activation, uint64_t seed);

  size_t num_weight_layers() const { return w.size(); }
  size_t input_dims() const { return w.empty() ? 0 : w[0].cols(); }
  size_t first_hidden_units() const { return w.empty() ? 0 : w[0].rows(); }

  /// Batched inference: out is (batch x 1).
  void Forward(const la::Matrix& x, la::Matrix* out) const;

  /// Mean squared error 1/(2N) sum (o - y)^2 over a batch.
  double HalfMse(const la::Matrix& x, const std::vector<double>& y) const;

  /// Max absolute parameter difference between two equal-shape networks.
  static double MaxAbsDiffParams(const Mlp& a, const Mlp& b);

  Activation activation = Activation::kSigmoid;
  std::vector<la::Matrix> w;
  std::vector<std::vector<double>> b;
};

}  // namespace factorml::nn

#endif  // FACTORML_NN_MLP_H_

#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "la/ops.h"

namespace factorml::nn {

Mlp Mlp::Init(size_t input_dims, const std::vector<size_t>& hidden,
              Activation activation, uint64_t seed) {
  FML_CHECK_GT(input_dims, 0u);
  FML_CHECK(!hidden.empty());
  Mlp mlp;
  mlp.activation = activation;
  Rng rng(seed);
  size_t in = input_dims;
  std::vector<size_t> outs = hidden;
  outs.push_back(1);  // linear output unit
  for (size_t out : outs) {
    la::Matrix wl(out, in);
    const double scale = 1.0 / std::sqrt(static_cast<double>(in));
    for (size_t i = 0; i < out; ++i) {
      for (size_t j = 0; j < in; ++j) {
        wl(i, j) = scale * rng.NextGaussian();
      }
    }
    mlp.w.push_back(std::move(wl));
    mlp.b.emplace_back(out, 0.0);
    in = out;
  }
  return mlp;
}

void Mlp::Forward(const la::Matrix& x, la::Matrix* out) const {
  la::Matrix a;
  la::Matrix h = x;
  for (size_t l = 0; l < w.size(); ++l) {
    la::GemmNT(h, w[l], &a, /*accumulate=*/false);
    la::AddRowVector(b[l].data(), &a);
    if (l + 1 < w.size()) {
      ApplyActivation(activation, a, &h);
    } else {
      h = a;  // linear output
    }
  }
  *out = std::move(h);
}

double Mlp::HalfMse(const la::Matrix& x, const std::vector<double>& y) const {
  FML_CHECK_EQ(x.rows(), y.size());
  la::Matrix out;
  Forward(x, &out);
  double sse = 0.0;
  for (size_t r = 0; r < y.size(); ++r) {
    const double e = out(r, 0) - y[r];
    sse += e * e;
  }
  return sse / (2.0 * static_cast<double>(std::max<size_t>(1, y.size())));
}

double Mlp::MaxAbsDiffParams(const Mlp& a, const Mlp& b) {
  FML_CHECK_EQ(a.w.size(), b.w.size());
  double m = 0.0;
  for (size_t l = 0; l < a.w.size(); ++l) {
    m = std::max(m, la::Matrix::MaxAbsDiff(a.w[l], b.w[l]));
    for (size_t i = 0; i < a.b[l].size(); ++i) {
      m = std::max(m, std::fabs(a.b[l][i] - b.b[l][i]));
    }
  }
  return m;
}

}  // namespace factorml::nn

#include "nn/activation.h"

#include <cmath>

#include "common/opcount.h"

namespace factorml::nn {

const char* ActivationName(Activation a) {
  switch (a) {
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kIdentity:
      return "identity";
  }
  return "?";
}

bool IsAdditive(Activation a) { return a == Activation::kIdentity; }

void ApplyActivation(Activation act, const la::Matrix& a, la::Matrix* h) {
  if (h->rows() != a.rows() || h->cols() != a.cols()) {
    h->Resize(a.rows(), a.cols());
  }
  const size_t n = a.size();
  const double* src = a.data();
  double* dst = h->data();
  switch (act) {
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) dst[i] = 1.0 / (1.0 + std::exp(-src[i]));
      CountExps(n);
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) dst[i] = std::tanh(src[i]);
      CountExps(n);
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) dst[i] = src[i] > 0.0 ? src[i] : 0.0;
      break;
    case Activation::kIdentity:
      for (size_t i = 0; i < n; ++i) dst[i] = src[i];
      break;
  }
}

void ActivationGrad(Activation act, const la::Matrix& a, const la::Matrix& h,
                    la::Matrix* g) {
  if (g->rows() != a.rows() || g->cols() != a.cols()) {
    g->Resize(a.rows(), a.cols());
  }
  const size_t n = a.size();
  const double* pre = a.data();
  const double* out = h.data();
  double* dst = g->data();
  switch (act) {
    case Activation::kSigmoid:
      for (size_t i = 0; i < n; ++i) dst[i] = out[i] * (1.0 - out[i]);
      CountMults(n);
      CountSubs(n);
      break;
    case Activation::kTanh:
      for (size_t i = 0; i < n; ++i) dst[i] = 1.0 - out[i] * out[i];
      CountMults(n);
      CountSubs(n);
      break;
    case Activation::kRelu:
      for (size_t i = 0; i < n; ++i) dst[i] = pre[i] > 0.0 ? 1.0 : 0.0;
      break;
    case Activation::kIdentity:
      for (size_t i = 0; i < n; ++i) dst[i] = 1.0;
      break;
  }
}

}  // namespace factorml::nn

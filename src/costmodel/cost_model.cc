#include "costmodel/cost_model.h"

#include "common/logging.h"

namespace factorml::costmodel {

namespace {
uint64_t CeilDiv(uint64_t a, uint64_t b) {
  FML_CHECK_GT(b, 0u);
  return (a + b - 1) / b;
}
}  // namespace

uint64_t MGmmIoPages(uint64_t r_pages, uint64_t s_pages, uint64_t t_pages,
                     uint64_t block_pages, int iters) {
  const uint64_t join_cost = r_pages + CeilDiv(r_pages, block_pages) * s_pages;
  return join_cost + t_pages +
         3ULL * static_cast<uint64_t>(iters) * t_pages;
}

uint64_t SGmmIoPages(uint64_t r_pages, uint64_t s_pages, uint64_t block_pages,
                     int iters) {
  const uint64_t join_cost = r_pages + CeilDiv(r_pages, block_pages) * s_pages;
  return 3ULL * static_cast<uint64_t>(iters) * join_cost;
}

double SGmmCrossoverBlockPages(uint64_t r_pages, uint64_t s_pages,
                               uint64_t t_pages, int iters) {
  const double it = static_cast<double>(iters);
  const double num = (3.0 * it - 1.0) * static_cast<double>(r_pages) *
                     static_cast<double>(s_pages);
  const double den = (3.0 * it + 1.0) * static_cast<double>(t_pages) -
                     (3.0 * it - 1.0) * static_cast<double>(r_pages);
  if (den <= 0.0) return -1.0;
  return num / den;
}

uint64_t GmmSigmaOpsUnfactorized(int64_t n_s, int64_t d_s, int64_t d_r) {
  const uint64_t d = static_cast<uint64_t>(d_s + d_r);
  const uint64_t n = static_cast<uint64_t>(n_s);
  return n * d /*subs*/ + n * d * d /*mults*/;
}

uint64_t GmmSigmaOpsFactorized(int64_t n_s, int64_t n_r, int64_t d_s,
                               int64_t d_r) {
  const uint64_t ns = static_cast<uint64_t>(n_s);
  const uint64_t nr = static_cast<uint64_t>(n_r);
  const uint64_t ds = static_cast<uint64_t>(d_s);
  const uint64_t dr = static_cast<uint64_t>(d_r);
  const uint64_t subs = ns * ds + nr * dr;
  const uint64_t mults = ns * (ds * ds + 2 * ds * dr) + nr * dr * dr;
  return subs + mults;
}

double GmmSigmaSavingRate(int64_t n_s, int64_t n_r, int64_t d_s, int64_t d_r,
                          double tau_s, double tau_m) {
  FML_CHECK_GT(n_r, 0);
  FML_CHECK_GT(d_r, 0);
  const double ratio = static_cast<double>(n_s) / static_cast<double>(n_r);
  const double d = static_cast<double>(d_s + d_r);
  const double num =
      (ratio - 1.0) * (tau_s + static_cast<double>(d_r) * tau_m);
  const double den = ratio *
                     (static_cast<double>(d_s) / static_cast<double>(d_r) +
                      1.0) *
                     (tau_s + d * tau_m);
  return num / den;
}

uint64_t NnFirstLayerOpsUnfactorized(int64_t n_s, int64_t d, int64_t n_h) {
  return static_cast<uint64_t>(n_s) * static_cast<uint64_t>(n_h) *
         static_cast<uint64_t>(d);
}

uint64_t NnFirstLayerOpsFactorized(int64_t n_s, int64_t n_r, int64_t d_s,
                                   int64_t d_r, int64_t n_h) {
  return static_cast<uint64_t>(n_s) * static_cast<uint64_t>(n_h) *
             static_cast<uint64_t>(d_s) +
         static_cast<uint64_t>(n_r) * static_cast<uint64_t>(n_h) *
             static_cast<uint64_t>(d_r);
}

uint64_t NnSecondLayerOpsNoReuse(int64_t n_s, int64_t n_h, int64_t n_l) {
  // nh multiplications + nh additions per unit per tuple.
  return 2ULL * static_cast<uint64_t>(n_s) * static_cast<uint64_t>(n_h) *
         static_cast<uint64_t>(n_l);
}

uint64_t NnSecondLayerOpsWithReuse(int64_t n_s, int64_t n_r, int64_t n_h,
                                   int64_t n_l) {
  // Per tuple: nh products + nh additions (summing w2*f(T1)) plus the T3
  // addition; per R tuple: nh products + nh additions per unit for T3.
  const uint64_t per_tuple =
      (2ULL * static_cast<uint64_t>(n_h) + 1ULL) *
      static_cast<uint64_t>(n_l) * static_cast<uint64_t>(n_s);
  const uint64_t per_r = 2ULL * static_cast<uint64_t>(n_h) *
                         static_cast<uint64_t>(n_l) *
                         static_cast<uint64_t>(n_r);
  return per_tuple + per_r;
}

double AmdahlSpeedup(int threads, double parallel_fraction) {
  if (threads < 1) threads = 1;
  double f = parallel_fraction;
  if (f < 0.0) f = 0.0;
  if (f > 1.0) f = 1.0;
  return 1.0 / ((1.0 - f) + f / static_cast<double>(threads));
}

double ParallelCpuSeconds(uint64_t total_ops, double ops_per_second,
                          int threads, double parallel_fraction) {
  if (ops_per_second <= 0.0) return 0.0;
  const double serial_seconds =
      static_cast<double>(total_ops) / ops_per_second;
  return serial_seconds / AmdahlSpeedup(threads, parallel_fraction);
}

}  // namespace factorml::costmodel

#ifndef FACTORML_COSTMODEL_COST_MODEL_H_
#define FACTORML_COSTMODEL_COST_MODEL_H_

#include <cstdint>

namespace factorml::costmodel {

/// Analytical cost formulas from the paper, kept in one place so the tests
/// can validate them against the instrumented counters and the ablation
/// benches can plot them. Page counts |S|, |R|, |T| follow Sec. V-A;
/// operation counts follow Sec. V-B and VI-A2.

// ---------------------------------------------------------------------
// I/O model, Sec. V-A (block nested loops join, `block_pages` buffer).

/// Pages transferred by M-GMM: compute the BNL join (|R| reads plus one
/// scan of S per R block), write T, then read T three times per iteration.
uint64_t MGmmIoPages(uint64_t r_pages, uint64_t s_pages, uint64_t t_pages,
                     uint64_t block_pages, int iters);

/// Pages transferred by S-GMM (and F-GMM, which has identical I/O): the
/// BNL join is re-executed three times per iteration, nothing is written.
uint64_t SGmmIoPages(uint64_t r_pages, uint64_t s_pages, uint64_t block_pages,
                     int iters);

/// The BlockSize threshold above which S-GMM incurs less I/O than M-GMM:
///   BlockSize > (3*iter-1)|R||S| / ((3*iter+1)|T| - (3*iter-1)|R|).
/// Returns a negative value when the denominator is non-positive (S-GMM
/// never wins for this shape).
double SGmmCrossoverBlockPages(uint64_t r_pages, uint64_t s_pages,
                               uint64_t t_pages, int iters);

// ---------------------------------------------------------------------
// Computation model for the covariance update (Eq. 14 example, Sec. V-B).
// Counts are per Gaussian component per EM pass; the paper's tau_s / tau_m
// are the costs of one subtraction / multiplication.

/// Unfactorized: every joined tuple costs d subtractions and d^2 products.
uint64_t GmmSigmaOpsUnfactorized(int64_t n_s, int64_t d_s, int64_t d_r);

/// Factorized with PD_R and LR reused per R tuple:
/// nS*dS + nR*dR subtractions, nS*(dS^2 + 2*dS*dR) + nR*dR^2 products.
uint64_t GmmSigmaOpsFactorized(int64_t n_s, int64_t n_r, int64_t d_s,
                               int64_t d_r);

/// The paper's saving rate Delta-tau / tau for the covariance update:
///   ((nS/nR - 1)(tau_s + dR*tau_m)) /
///   ((nS/nR)(dS/dR + 1)(tau_s + d*tau_m)).
double GmmSigmaSavingRate(int64_t n_s, int64_t n_r, int64_t d_s, int64_t d_r,
                          double tau_s = 1.0, double tau_m = 1.0);

// ---------------------------------------------------------------------
// NN first layer, Sec. VI-A1 (multiplications per forward pass).

/// Unfactorized: every fact tuple pays nh * d products.
uint64_t NnFirstLayerOpsUnfactorized(int64_t n_s, int64_t d, int64_t n_h);

/// Factorized: nh * dS per fact tuple plus nh * dR once per R tuple.
uint64_t NnFirstLayerOpsFactorized(int64_t n_s, int64_t n_r, int64_t d_s,
                                   int64_t d_r, int64_t n_h);

// ---------------------------------------------------------------------
// NN second layer, Sec. VI-A2: operations to compute the pre-activations
// of all nl second-layer units for all tuples.

/// Without cross-layer reuse: nh multiplications and nh additions per unit
/// per tuple.
uint64_t NnSecondLayerOpsNoReuse(int64_t n_s, int64_t n_h, int64_t n_l);

/// With the additive-activation reuse of Eq. 27: the per-tuple cost stays
/// nh products (w2 * f(T1)) plus the T3 addition, and every R tuple
/// additionally pays nh products and nh additions per unit to build T3 —
/// i.e. strictly more total operations, the paper's negative result.
uint64_t NnSecondLayerOpsWithReuse(int64_t n_s, int64_t n_r, int64_t n_h,
                                   int64_t n_l);

// ---------------------------------------------------------------------
// Parallel CPU term (the exec/ morsel-driven runtime): the scan passes
// partition over workers while per-pass setup (cache builds, merges,
// parameter updates) stays serial, so the wall-clock model is Amdahl's
// law over the operation counts above.

/// Speedup bound for a run whose fraction `parallel_fraction` (in [0, 1])
/// of work parallelizes perfectly over `threads` workers:
///   1 / ((1 - f) + f / threads).
double AmdahlSpeedup(int threads, double parallel_fraction);

/// Wall-clock seconds to execute `total_ops` floating-point operations at
/// `ops_per_second` per worker when `parallel_fraction` of them
/// parallelizes: serial_seconds / AmdahlSpeedup. Combine with the I/O page
/// counts above (times the device's per-page latency) for an end-to-end
/// estimate of a parallel training run.
double ParallelCpuSeconds(uint64_t total_ops, double ops_per_second,
                          int threads, double parallel_fraction);

}  // namespace factorml::costmodel

#endif  // FACTORML_COSTMODEL_COST_MODEL_H_

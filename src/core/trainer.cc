#include "core/trainer.h"

namespace factorml::core {

Result<gmm::GmmParams> TrainGmm(const join::NormalizedRelations& rel,
                                const gmm::GmmOptions& options,
                                Algorithm algorithm,
                                storage::BufferPool* pool,
                                TrainReport* report) {
  switch (algorithm) {
    case Algorithm::kMaterialized:
      return gmm::TrainGmmMaterialized(rel, options, pool, report);
    case Algorithm::kStreaming:
      return gmm::TrainGmmStreaming(rel, options, pool, report);
    case Algorithm::kFactorized:
      return gmm::TrainGmmFactorized(rel, options, pool, report);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<nn::Mlp> TrainNn(const join::NormalizedRelations& rel,
                        const nn::NnOptions& options, Algorithm algorithm,
                        storage::BufferPool* pool, TrainReport* report) {
  switch (algorithm) {
    case Algorithm::kMaterialized:
      return nn::TrainNnMaterialized(rel, options, pool, report);
    case Algorithm::kStreaming:
      return nn::TrainNnStreaming(rel, options, pool, report);
    case Algorithm::kFactorized:
      return nn::TrainNnFactorized(rel, options, pool, report);
  }
  return Status::InvalidArgument("unknown algorithm");
}

Result<linreg::LinregModel> TrainLinreg(const join::NormalizedRelations& rel,
                                        const linreg::LinregOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report) {
  return linreg::TrainLinreg(rel, options, algorithm, pool, report);
}

Result<kmeans::KmeansModel> TrainKmeans(const join::NormalizedRelations& rel,
                                        const kmeans::KmeansOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report) {
  return kmeans::TrainKmeans(rel, options, algorithm, pool, report);
}

Result<logreg::LogregModel> TrainLogreg(const join::NormalizedRelations& rel,
                                        const logreg::LogregOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report) {
  return logreg::TrainLogreg(rel, options, algorithm, pool, report);
}

}  // namespace factorml::core

#include "core/statistics.h"

#include <cmath>

#include "common/opcount.h"
#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/join_cursor.h"
#include "storage/table.h"

namespace factorml::core {

namespace {

FeatureStats FinishMoments(const std::vector<double>& sum,
                           const std::vector<double>& sum_sq, double n) {
  FeatureStats stats;
  const size_t d = sum.size();
  stats.mean.resize(d);
  stats.stddev.resize(d);
  for (size_t j = 0; j < d; ++j) {
    stats.mean[j] = sum[j] / n;
    const double var = sum_sq[j] / n - stats.mean[j] * stats.mean[j];
    stats.stddev[j] = std::sqrt(var > 0.0 ? var : 0.0);
  }
  CountMults(3 * d);
  CountSubs(d);
  return stats;
}

}  // namespace

Result<FeatureStats> ComputeJoinedFeatureStats(
    const join::NormalizedRelations& rel, storage::BufferPool* pool) {
  FML_RETURN_IF_ERROR(rel.Validate());
  const size_t q = rel.num_joins();
  const size_t ds = rel.ds();
  const size_t d = rel.total_dims();
  const size_t y_off = rel.has_target ? 1 : 0;
  const double n = static_cast<double>(rel.s.num_rows());

  std::vector<double> sum(d, 0.0);
  std::vector<double> sum_sq(d, 0.0);

  // Pass 1: one scan of S accumulates the S-column moments and the per-rid
  // match counts of every attribute table.
  std::vector<std::vector<double>> counts(q);
  for (size_t i = 0; i < q; ++i) {
    counts[i].assign(static_cast<size_t>(rel.attrs[i].num_rows()), 0.0);
  }
  storage::TableScanner scanner(&rel.s, pool, 4096);
  storage::RowBatch batch;
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const double* xs = batch.feats.Row(r).data() + y_off;
      for (size_t j = 0; j < ds; ++j) {
        sum[j] += xs[j];
        sum_sq[j] += xs[j] * xs[j];
      }
      CountMults(ds);
      CountAdds(2 * ds);
      const int64_t* keys = batch.KeysOf(r);
      for (size_t i = 0; i < q; ++i) {
        counts[i][static_cast<size_t>(keys[rel.FkKeyIndex(i)])] += 1.0;
      }
      CountAdds(q);
    }
  }
  FML_RETURN_IF_ERROR(scanner.status());

  // Pass 2: one scan of each attribute table; each tuple contributes its
  // features weighted by its match count — the factorized aggregate.
  for (size_t i = 0; i < q; ++i) {
    join::AttributeTableView view;
    FML_RETURN_IF_ERROR(view.Load(rel.attrs[i], pool));
    const size_t off = rel.FeatureOffset(i + 1);
    const size_t dri = rel.dr(i);
    for (int64_t rid = 0; rid < view.num_rows(); ++rid) {
      const double c = counts[i][static_cast<size_t>(rid)];
      if (c == 0.0) continue;
      const auto xr = view.FeaturesOf(rid);
      for (size_t j = 0; j < dri; ++j) {
        sum[off + j] += c * xr[j];
        sum_sq[off + j] += c * xr[j] * xr[j];
      }
      CountMults(3 * dri);
      CountAdds(2 * dri);
    }
  }
  return FinishMoments(sum, sum_sq, n);
}

Result<FeatureStats> ComputeJoinedFeatureStatsDirect(
    const join::NormalizedRelations& rel, storage::BufferPool* pool) {
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  const size_t d = rel.total_dims();
  const double n = static_cast<double>(rel.s.num_rows());

  std::vector<join::AttributeTableView> views(rel.num_joins());
  for (size_t i = 0; i < rel.num_joins(); ++i) {
    FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
  }
  std::vector<double> sum(d, 0.0);
  std::vector<double> sum_sq(d, 0.0);
  std::vector<double> x(d);
  join::JoinCursor cursor(&rel, pool, 4096);
  join::JoinBatch batch;
  while (cursor.Next(&batch)) {
    for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
      join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
      for (size_t j = 0; j < d; ++j) {
        sum[j] += x[j];
        sum_sq[j] += x[j] * x[j];
      }
      CountMults(d);
      CountAdds(2 * d);
    }
  }
  FML_RETURN_IF_ERROR(cursor.status());
  return FinishMoments(sum, sum_sq, n);
}

}  // namespace factorml::core

#ifndef FACTORML_CORE_STATISTICS_H_
#define FACTORML_CORE_STATISTICS_H_

#include <vector>

#include "common/status.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"

namespace factorml::core {

/// Per-column mean and standard deviation of the joined feature vector
/// [XS | XR1 | ... | XRq] (length d). This is what input standardization
/// ("batch normalization applied before data enters the network", which
/// the paper notes is compatible with its factorization, Sec. VI-A) needs.
struct FeatureStats {
  std::vector<double> mean;
  std::vector<double> stddev;

  size_t dims() const { return mean.size(); }
};

/// Computes the joined-table feature statistics *without performing the
/// join*: S-column moments come from one scan of S; for attribute columns
/// the moments over the join result are exactly the attribute-table
/// moments weighted by each tuple's foreign-key match count —
///   E[x_j] = (1/N) sum_rid count(rid) * x_rid_j,
/// a factorized aggregate in the spirit of the paper's decompositions.
/// One scan of S (for the per-rid counts of the non-clustered tables) and
/// one scan of each attribute table suffice: nS + sum nRi rows touched
/// instead of nS * (1 + q).
Result<FeatureStats> ComputeJoinedFeatureStats(
    const join::NormalizedRelations& rel, storage::BufferPool* pool);

/// Reference implementation that assembles every joined tuple (the way a
/// conventional pipeline would, over the S-algorithm's streamed join) and
/// accumulates moments directly. Used by tests to validate the factorized
/// version and by the ablation bench to quantify its savings.
Result<FeatureStats> ComputeJoinedFeatureStatsDirect(
    const join::NormalizedRelations& rel, storage::BufferPool* pool);

}  // namespace factorml::core

#endif  // FACTORML_CORE_STATISTICS_H_

#ifndef FACTORML_CORE_FACTORML_H_
#define FACTORML_CORE_FACTORML_H_

/// Umbrella header: everything a downstream user needs to generate or load
/// normalized relations and train GMM / NN / linear-regression / k-means /
/// logistic-regression models over them with the materialized, streaming,
/// or factorized strategy.

#include "core/pipeline/access_strategy.h"  // IWYU pragma: export
#include "core/pipeline/model_program.h"    // IWYU pragma: export
#include "core/report.h"            // IWYU pragma: export
#include "core/statistics.h"        // IWYU pragma: export
#include "core/trainer.h"           // IWYU pragma: export
#include "gmm/inference.h"          // IWYU pragma: export
#include "costmodel/cost_model.h"   // IWYU pragma: export
#include "data/real_shapes.h"       // IWYU pragma: export
#include "data/synthetic.h"         // IWYU pragma: export
#include "gmm/gmm_model.h"          // IWYU pragma: export
#include "gmm/trainers.h"           // IWYU pragma: export
#include "join/materialize.h"       // IWYU pragma: export
#include "join/normalized_relations.h"  // IWYU pragma: export
#include "kmeans/kmeans.h"          // IWYU pragma: export
#include "linreg/linreg.h"          // IWYU pragma: export
#include "logreg/logreg.h"          // IWYU pragma: export
#include "nn/mlp.h"                 // IWYU pragma: export
#include "nn/trainers.h"            // IWYU pragma: export
#include "storage/buffer_pool.h"    // IWYU pragma: export
#include "storage/table.h"          // IWYU pragma: export

#endif  // FACTORML_CORE_FACTORML_H_

#ifndef FACTORML_CORE_PIPELINE_MODEL_PROGRAM_H_
#define FACTORML_CORE_PIPELINE_MODEL_PROGRAM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "core/report.h"
#include "exec/parallel_for.h"
#include "join/attribute_view.h"
#include "join/join_cursor.h"
#include "join/normalized_relations.h"
#include "la/matrix.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::core::pipeline {

/// What a ModelProgram can consume and how it wants to be driven. The
/// paper's M/S/F strategies are orthogonal to the model; the mask tells the
/// pipeline which planes the model implements so a strategy can be matched
/// (or rejected) up front.
enum Capability : uint32_t {
  /// Iterations are model-defined full passes over all joined rows
  /// (EM-style: GMM, k-means, closed-form linear regression).
  kFullPass = 1u << 0,
  /// Iterations are epochs of sequential mini-batches of whole FK1-rid
  /// groups (SGD-style: NN).
  kMiniBatch = 1u << 1,
  /// Implements the factorized hooks (AccumulateFactorized /
  /// OnFactorizedBatch); without it the F strategy is rejected.
  kFactorized = 1u << 2,
  /// Requires rel.has_target (Y carried as S feature column 0).
  kNeedsTarget = 1u << 3,
};

/// Everything a training run shares between the access strategy and the
/// model program. `views` is non-null only while the S/F strategies have
/// the attribute tables resident (between BeginPass/BeginEpoch and the end
/// of the pass/epoch); the M strategy never exposes views — the joined
/// rows it delivers already contain the attribute columns.
struct PipelineContext {
  const join::NormalizedRelations* rel = nullptr;
  storage::BufferPool* pool = nullptr;
  TrainReport* report = nullptr;
  int threads = 1;  // effective exec/ worker count
  Algorithm algorithm = Algorithm::kMaterialized;
  const std::vector<join::AttributeTableView>* views = nullptr;
  /// The rid-span contract of the full-pass accumulator plane: when
  /// non-null, entry `slot` is the contiguous half-open range of TABLE-0
  /// rid positions every row delivered to that slot's Accumulate calls
  /// falls in — the S/F strategies publish their morsel plan here (chunked
  /// mode: slot = chunk; legacy mode: slot = worker's static range).
  /// Models with per-rid slot state size it to the span instead of the
  /// whole attribute table (O(sum of spans) = O(n_R) total instead of
  /// O(slots x n_R)), and keep span-relative indexing a pure function of
  /// the BeginPass-time plan so VisitSlotState round-trips stay exact.
  /// Null for the M strategy (its morsels are fact rows, and it is never
  /// factorized) and on the mini-batch plane. Tables i >= 1 of a
  /// multi-way join are NOT covered — their rids are unordered within a
  /// chunk, so per-rid state for them stays full-domain.
  const std::vector<exec::Range>* slot_rid_spans = nullptr;

  bool factorized() const { return algorithm == Algorithm::kFactorized; }
};

/// The table-0 rid span accumulator slot `slot` observes, under the
/// contract above: the published span, the full domain [0, full_domain)
/// when no plan is published, or an empty span for a slot past the plan
/// (possible only for plans with zero chunks).
inline exec::Range SlotRidSpan(const PipelineContext& ctx, int slot,
                               int64_t full_domain) {
  if (ctx.slot_rid_spans == nullptr || ctx.slot_rid_spans->empty()) {
    return exec::Range{0, full_domain};
  }
  const auto s = static_cast<size_t>(slot);
  if (s >= ctx.slot_rid_spans->size()) return exec::Range{0, 0};
  return (*ctx.slot_rid_spans)[s];
}

/// A block of fully joined rows as the M/S strategies deliver them: row r's
/// features (target removed) start at `x + r * x_stride`, its target at
/// `y + r * y_stride` (y is null when the relations carry no target). The
/// strides let the M strategy point straight into the scanned page batch
/// while the S strategy points into its assembly buffer — no copy either
/// way.
struct DenseBlock {
  int64_t start_row = 0;  // global fact-row id of row 0
  size_t num_rows = 0;
  const double* x = nullptr;
  size_t x_stride = 0;
  const double* y = nullptr;
  size_t y_stride = 0;

  /// Batched-decode form (--kernels=simd): the same rows as column-major
  /// strips (storage::ColumnStrips). Null on the row-at-a-time path. When
  /// set, feature column j of the model lives at strip column
  /// `strip_col0 + j` and the target (if any) at column `strip_y_col`;
  /// the row pointers above may be null (the M strategy's fused decode
  /// never assembles rows), so strip-aware models must take this path.
  const storage::ColumnStrips* strips = nullptr;
  size_t strip_col0 = 0;
  int strip_y_col = -1;

  const double* X(size_t r) const { return x + r * x_stride; }
  double Y(size_t r) const { return y[r * y_stride]; }
  /// Strip-path accessors: feature column j / the target column of one
  /// strip, as contiguous runs of strips->RowsInStrip(s) doubles.
  const double* StripX(size_t s, size_t j) const {
    return strips->Col(s, strip_col0 + j);
  }
  const double* StripY(size_t s) const {
    return strips->Col(s, static_cast<size_t>(strip_y_col));
  }
};

/// A block of *normalized* rows as the F strategy delivers them: the S
/// slice plus foreign keys of every row (`s_rows`), with the rows grouped
/// by their R1 rid (`groups`) so per-attribute-tuple work can be reused.
/// Attribute features are reached through PipelineContext::views.
struct FactorizedBlock {
  const storage::RowBatch* s_rows = nullptr;
  const std::vector<join::JoinGroup>* groups = nullptr;
  /// Batched form of s_rows' features (--kernels=simd): the S-slice
  /// columns as column-major strips, transposed from s_rows by the F
  /// driver. Null on the row-at-a-time path. Models that can consume
  /// S-slice work in bulk (k-means' distance blocks) use it; the
  /// group-structured attribute work stays row/group-at-a-time.
  const storage::ColumnStrips* s_strips = nullptr;
};

/// One assembled mini-batch for the kMiniBatch plane: x is (batch x d)
/// with the target split into y.
struct DenseBatch {
  const la::Matrix* x = nullptr;
  const std::vector<double>* y = nullptr;
  /// Batched form of x (--kernels=simd): the same sampled rows transposed
  /// into column-major strips (feature column j is strip column j; the
  /// target stays in y). Null on the row-at-a-time path. The driver packs
  /// the strips from the already-assembled batch, so IoStats are identical
  /// to the row path by construction.
  const storage::ColumnStrips* strips = nullptr;
};

/// The model plane of the training pipeline. A ModelProgram owns the model
/// parameters and the per-pass math; it never touches storage, joins,
/// partitioning, or threads — the AccessStrategy (data-access plane) owns
/// those and calls back into the hooks below. Adding a new model family is
/// one subclass; it gets all three execution strategies (M/S/F) and the
/// exec/ parallel runtime for free.
///
/// Full-pass driving sequence (kFullPass), per iteration i:
///   for pass p in 0..NumPasses(i):
///     strategy reloads per-pass inputs (S/F: attribute views)
///     BeginPass(ctx, i, p, workers)          — build caches, zero accums
///     workers each call Accumulate{Dense,Factorized}(p, w, block)  — hot
///     MergeWorker(p, w) for w in worker order — deterministic reduction
///       (--shards > 1: the slots are first round-tripped through
///       ShardDelta bytes via VisitSlotState, then merged in the same
///       global chunk order — see core/pipeline/sharded_driver.h)
///     EndPass(ctx, i, p)                      — apply pass result
///   EndIteration(ctx, i) -> stop?
///
/// Mini-batch driving sequence (kMiniBatch), per epoch e:
///   strategy reloads inputs and orders rids by EpochRidOrder(e)
///   BeginEpoch(ctx, e)
///   On{Dense,Factorized}Batch(ctx, batch) for each planned batch
///   EndIteration(ctx, e) -> stop?
class ModelProgram {
 public:
  virtual ~ModelProgram() = default;

  /// Report tag suffix: the run is labeled "<M|S|F>-<Name()>".
  virtual const char* Name() const = 0;
  /// File stem for the M strategy's materialized join (the only strategy
  /// that materializes): <temp_dir>/m_<TempStem()>_T.fml.
  virtual const char* TempStem() const = 0;
  virtual uint32_t Capabilities() const = 0;
  /// Option/shape checks run before any measurement starts.
  virtual Status ValidateOptions(const join::NormalizedRelations& rel) const {
    (void)rel;
    return Status::OK();
  }
  /// Iteration budget: EM iterations or SGD epochs.
  virtual int MaxIterations() const = 0;
  /// Allocate parameters and per-run state. Runs after the strategy's
  /// Prepare (so the M strategy has already materialized T).
  virtual Status Init(const PipelineContext& ctx) = 0;

  // ---------------------------------------------------- full-pass plane
  virtual int NumPasses(int iter) const {
    (void)iter;
    return 1;
  }
  virtual const char* PassName(int pass) const {
    (void)pass;
    return "pass";
  }
  virtual Status BeginPass(const PipelineContext& ctx, int iter, int pass,
                           int workers) {
    (void)ctx, (void)iter, (void)pass, (void)workers;
    return Status::OK();
  }
  virtual void AccumulateDense(int pass, int worker, const DenseBlock& block) {
    (void)pass, (void)worker, (void)block;
    FML_CHECK(false) << Name() << ": dense full-pass hook not implemented";
  }
  virtual void AccumulateFactorized(int pass, int worker,
                                    const FactorizedBlock& block) {
    (void)pass, (void)worker, (void)block;
    FML_CHECK(false) << Name() << ": factorized full-pass hook not implemented";
  }
  virtual void MergeWorker(int pass, int worker) { (void)pass, (void)worker; }

  /// The shard plane's wire seam, extending MergeWorker to a serializable
  /// ShardDelta: visits every double of one accumulator slot's post-scan
  /// state as a sequence of contiguous spans. The ShardedDriver serializes
  /// a shard's slots by copying the visited doubles out (then zeroing
  /// them) and re-applies a received delta by copying them back in, so the
  /// visit sequence for a given (pass, slot) must be identical between the
  /// two visits — make it a pure function of the BeginPass-time shapes.
  /// Visit merged *state* only, never scratch buffers; per-rid state that
  /// stays resident with the rid's shard (e.g. GMM responsibilities) is
  /// shard-local by construction and must not be visited. Full-pass
  /// programs must implement this to train under --shards > 1; mini-batch
  /// programs never reach it (RunTraining rejects sharding for them).
  virtual void VisitSlotState(
      int pass, int slot,
      const std::function<void(double* data, size_t len)>& visit) {
    (void)pass, (void)slot, (void)visit;
    FML_CHECK(false) << Name()
                     << ": shard-plane slot-state visitor not implemented";
  }

  virtual Status EndPass(const PipelineContext& ctx, int iter, int pass) {
    (void)ctx, (void)iter, (void)pass;
    return Status::OK();
  }

  /// The checkpoint seam (core/pipeline/checkpoint.h): visits every double
  /// of the model's cross-iteration state — parameters, convergence
  /// scalars, and any generator cursors encoded as bit patterns — at an
  /// iteration boundary (after EndIteration, before the next BeginPass /
  /// BeginEpoch). Like VisitSlotState this one visitor serves both
  /// directions (save copies the doubles out, restore copies them back
  /// in), so the visit sequence must be a pure function of the Init-time
  /// shapes. Per-pass accumulators are rebuilt by the next BeginPass and
  /// must not be visited. Required for --checkpoint-dir; every in-tree
  /// family implements it.
  virtual void VisitIterationState(
      const std::function<void(double* data, size_t len)>& visit) {
    (void)visit;
    FML_CHECK(false) << Name()
                     << ": iteration-state visitor not implemented";
  }

  /// Whether a lost shard span of `pass` can be recovered by a bare
  /// rescan on a surviving worker: true when re-running RunPass over the
  /// lost chunks — with no BeginPass replay — reproduces the lost slot
  /// state bit-exactly. That holds by default (accumulate hooks read only
  /// parameters fixed at BeginPass), but a program whose EARLIER EndPass
  /// in the same iteration already mutated parameters that this pass's
  /// sibling passes read (GMM: EndPass(mean) rewrites mu before the cov
  /// pass) must return false for the affected passes; the process shard
  /// backend then falls back to a deterministic full-run restart instead
  /// of a mid-iteration rescan.
  virtual bool ShardRecoverableAtPass(int pass) const {
    (void)pass;
    return true;
  }

  // --------------------------------------------------- mini-batch plane
  /// R1-rid visit order for this epoch (the paper's per-epoch key
  /// permutation for SGD); empty = natural order.
  virtual std::vector<int64_t> EpochRidOrder(const PipelineContext& ctx,
                                             int epoch) {
    (void)ctx, (void)epoch;
    return {};
  }
  virtual Status BeginEpoch(const PipelineContext& ctx, int epoch) {
    (void)ctx, (void)epoch;
    return Status::OK();
  }
  virtual Status OnDenseBatch(const PipelineContext& ctx,
                              const DenseBatch& batch) {
    (void)ctx, (void)batch;
    FML_CHECK(false) << Name() << ": dense mini-batch hook not implemented";
    return Status::OK();
  }
  virtual Status OnFactorizedBatch(const PipelineContext& ctx,
                                   const FactorizedBlock& batch) {
    (void)ctx, (void)batch;
    FML_CHECK(false) << Name()
                     << ": factorized mini-batch hook not implemented";
    return Status::OK();
  }

  // ------------------------------------------------------------ epilogue
  /// Apply the iteration's result; true = converged, stop early.
  virtual Result<bool> EndIteration(const PipelineContext& ctx, int iter) = 0;
  /// Final objective for the TrainReport (log-likelihood, MSE, inertia...).
  virtual double Objective() const = 0;
};

}  // namespace factorml::core::pipeline

#endif  // FACTORML_CORE_PIPELINE_MODEL_PROGRAM_H_

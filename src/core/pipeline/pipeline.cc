// The orchestration loop of the training pipeline: strategy selection,
// measurement scopes, and the two driving planes (full-pass iterations and
// mini-batch epochs). Every trainer in the system — GMM, NN, linear
// regression, k-means — is a ModelProgram run through this single loop.

#include "core/pipeline/access_strategy.h"

#include <sys/resource.h>

#include <algorithm>
#include <cstring>
#include <string>

#include "core/pipeline/access_internal.h"
#include "core/pipeline/checkpoint.h"
#include "core/pipeline/shard_rpc.h"
#include "core/pipeline/sharded_driver.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "join/assemble.h"
#include "join/attribute_view.h"

namespace factorml::core::pipeline {

Result<std::unique_ptr<AccessStrategy>> AccessStrategy::Create(
    Algorithm algorithm, const join::NormalizedRelations* rel,
    storage::BufferPool* pool, const StrategyOptions& options,
    bool full_pass) {
  switch (algorithm) {
    case Algorithm::kMaterialized:
      return internal::MakeMaterialized(rel, pool, options, full_pass);
    case Algorithm::kStreaming:
      return internal::MakeStreaming(rel, pool, options, full_pass);
    case Algorithm::kFactorized:
      return internal::MakeFactorized(rel, pool, options, full_pass);
  }
  return Status::InvalidArgument("unknown algorithm");
}

namespace {

/// FNV-1a over the run-shape facts a checkpoint must agree on before its
/// state can be trusted: the label (strategy prefix + model name) plus
/// the dataset's row count and joined dimensionality. A mismatch means
/// the checkpoint belongs to a different run shape — warn, train fresh.
uint64_t CheckpointFingerprint(const std::string& label,
                               const join::NormalizedRelations& rel) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  for (const char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  mix(static_cast<uint64_t>(rel.s.num_rows()));
  mix(static_cast<uint64_t>(rel.total_dims()));
  mix(static_cast<uint64_t>(rel.num_joins()));
  return h;
}

/// One full deterministic training run: strategy creation, shard-plane
/// arming, the iteration loop, the report scope. `shard_driver` selects
/// the shard backend: nullptr = the in-process ShardedDriver when shards
/// are on; a ProcessShardCoordinator drives remote workers; a
/// ShardWorkerDriver makes this process one of those workers. The process
/// backend's restart protocol reruns this whole function — everything in
/// it is a pure function of (on-disk data, resolved options), so a rerun
/// reproduces the run bit-exactly.
Status RunTrainingAttempt(const join::NormalizedRelations& rel,
                          Algorithm algorithm,
                          const StrategyOptions& resolved, bool mini_batch,
                          ModelProgram* model, storage::BufferPool* pool,
                          TrainReport* report,
                          ShardPassDriver* shard_driver) {
  ReportScope scope(report, std::string(1, AlgorithmPrefix(algorithm)) +
                                "-" + model->Name());
  if (report != nullptr) report->threads = resolved.threads;
  // Bind the compute-kernel backend before any worker runs: one process-
  // wide vtable swap (la/kernels.h), plus the strip-decode switch the
  // strategies read from their options. Scalar keeps the seed's exact
  // loops; simd picks the best backend this CPU supports.
  la::SelectKernels(resolved.kernels);

  PipelineContext ctx;
  ctx.rel = &rel;
  ctx.pool = pool;
  ctx.report = report;
  ctx.threads = resolved.threads;
  ctx.algorithm = algorithm;

  FML_ASSIGN_OR_RETURN(
      std::unique_ptr<AccessStrategy> strategy,
      AccessStrategy::Create(algorithm, &rel, pool, resolved,
                             /*full_pass=*/!mini_batch));
  FML_RETURN_IF_ERROR(strategy->Prepare(&ctx, model->TempStem()));
  // The shard plane splits the (now fixed) morsel plan into rid-range
  // shards; every full pass below then runs one scan per shard and merges
  // the ShardDeltas in shard-id order (see sharded_driver.h).
  ShardedDriver sharded;
  const bool use_shards = resolved.shards > 1 && !mini_batch;
  ShardPassDriver* driver = shard_driver;
  if (driver == nullptr && use_shards) driver = &sharded;
  if (driver != nullptr) {
    FML_RETURN_IF_ERROR(driver->Init(strategy.get(), resolved, report));
  }
  FML_RETURN_IF_ERROR(model->Init(ctx));

  // Checkpoint/restore (iteration-boundary granularity). Every node of a
  // process-backend run restores — the lockstep replicas must all start
  // at the same iteration — but only the coordinating process (or the
  // sole process of an unsharded run) ever writes. The op-count delta
  // stored in the checkpoint is recharged on resume so the resumed run's
  // op totals equal the uninterrupted run's.
  const bool ckpt_enabled = !resolved.checkpoint_dir.empty();
  const bool ckpt_writer = ckpt_enabled && resolved.shard_channel == nullptr;
  const int64_t ckpt_every =
      resolved.checkpoint_every > 0 ? resolved.checkpoint_every : 1;
  const std::string ckpt_label =
      std::string(1, AlgorithmPrefix(algorithm)) + "-" + model->Name();
  const uint64_t ckpt_fp =
      ckpt_enabled ? CheckpointFingerprint(ckpt_label, rel) : 0;
  const OpCounters ops_mark = GlobalOps();
  int start_iter = 0;
  bool restored_converged = false;
  if (ckpt_enabled) {
    Result<CheckpointState> loaded =
        ReadCheckpoint(resolved.checkpoint_dir, ckpt_label);
    if (loaded.ok()) {
      const CheckpointState& st = loaded.value();
      size_t want = 0;
      model->VisitIterationState(
          [&want](double*, size_t len) { want += len; });
      if (st.fingerprint != ckpt_fp || want != st.state.size()) {
        FML_LOG(Warning) << "checkpoint " << ckpt_label
                         << " does not match this run (fingerprint/state "
                            "shape drift); training from scratch";
      } else {
        size_t off = 0;
        model->VisitIterationState([&st, &off](double* data, size_t len) {
          std::memcpy(data, st.state.data() + off, len * sizeof(double));
          off += len;
        });
        if (resolved.shard_channel == nullptr) GlobalOps() += st.ops;
        start_iter = static_cast<int>(st.completed_iterations);
        restored_converged = st.converged;
        FML_LOG(Info) << "resumed " << ckpt_label << " from checkpoint at "
                      << start_iter << " completed iteration(s)";
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      FML_LOG(Warning) << "ignoring corrupted checkpoint ("
                       << loaded.status().message()
                       << "); training from scratch";
    }
  }
  const auto maybe_checkpoint = [&](int completed, bool converged) -> Status {
    if (!ckpt_writer) return Status::OK();
    if (!converged && completed % ckpt_every != 0) return Status::OK();
    CheckpointState st;
    st.label = ckpt_label;
    st.fingerprint = ckpt_fp;
    st.completed_iterations = completed;
    st.converged = converged;
    st.ops = GlobalOps() - ops_mark;
    model->VisitIterationState([&st](double* data, size_t len) {
      st.state.insert(st.state.end(), data, data + len);
    });
    return WriteCheckpoint(resolved.checkpoint_dir, st);
  };

  // Run-level observability: iteration spans on the timeline and two
  // always-on counters. The per-pass spans come from the PhaseScope below
  // (every pass name is a "phase" trace span).
  static obs::Counter* iter_count =
      obs::Registry::Instance().GetCounter("pipeline.iterations");
  static obs::Counter* pass_count =
      obs::Registry::Instance().GetCounter("pipeline.passes");

  int iterations = start_iter;
  if (mini_batch) {
    for (int epoch = start_iter;
         !restored_converged && epoch < model->MaxIterations(); ++epoch) {
      {
        obs::TraceSpan iter_span(obs::kCatPipeline, "iteration");
        iter_span.Arg("iter", epoch);
        FML_RETURN_IF_ERROR(strategy->RunEpoch(&ctx, model, epoch));
      }
      iter_count->Add();
      FML_ASSIGN_OR_RETURN(const bool stop, model->EndIteration(ctx, epoch));
      ++iterations;
      FML_RETURN_IF_ERROR(maybe_checkpoint(iterations, stop));
      if (stop) break;
    }
  } else {
    // Peak accumulator-slot footprint, probed on the first executed
    // iteration right after BeginPass sizes the slots (rid-scoped slots
    // make this O(sum of spans x state width) instead of O(chunk count x
    // full table)). Gauges take the run's later value in the report
    // delta, so the Set lands in TrainReport::metrics.
    static obs::Gauge* slot_gauge =
        obs::Registry::Instance().GetGauge("pipeline.slot_bytes");
    double max_slot_bytes = 0.0;
    for (int iter = start_iter;
         !restored_converged && iter < model->MaxIterations(); ++iter) {
      obs::TraceSpan iter_span(obs::kCatPipeline, "iteration");
      iter_span.Arg("iter", iter);
      const int num_passes = model->NumPasses(iter);
      for (int pass = 0; pass < num_passes; ++pass) {
        FML_RETURN_IF_ERROR(strategy->BeginPass(&ctx));
        FML_RETURN_IF_ERROR(
            model->BeginPass(ctx, iter, pass, strategy->NumWorkers()));
        if (iter == start_iter) {
          size_t bytes = 0;
          for (int s = 0; s < strategy->NumWorkers(); ++s) {
            model->VisitSlotState(pass, s, [&bytes](double*, size_t len) {
              bytes += len * sizeof(double);
            });
          }
          max_slot_bytes =
              std::max(max_slot_bytes, static_cast<double>(bytes));
          slot_gauge->Set(max_slot_bytes);
        }
        {
          PhaseScope phase(report, model->PassName(pass));
          if (driver != nullptr) {
            FML_RETURN_IF_ERROR(
                driver->RunPass(strategy.get(), ctx, model, pass));
          } else {
            FML_RETURN_IF_ERROR(strategy->RunPass(ctx, model, pass));
          }
        }
        pass_count->Add();
        FML_RETURN_IF_ERROR(model->EndPass(ctx, iter, pass));
      }
      iter_count->Add();
      FML_ASSIGN_OR_RETURN(const bool stop, model->EndIteration(ctx, iter));
      ++iterations;
      FML_RETURN_IF_ERROR(maybe_checkpoint(iterations, stop));
      if (stop) break;
    }
  }
  // Peak RSS of this process (KB, getrusage), snapshotted before the
  // report delta is taken so it reaches TrainReport::metrics.
  static obs::Gauge* rss_gauge =
      obs::Registry::Instance().GetGauge("process.peak_rss_kb");
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    rss_gauge->Set(static_cast<double>(ru.ru_maxrss));
  }
  scope.Finish(iterations, model->Objective());
  // Backend epilogue after the report is final: the process coordinator
  // verifies bitwise objective agreement with every worker and shuts the
  // crew down; the worker driver reports DONE and waits for BYE.
  if (driver != nullptr) {
    FML_RETURN_IF_ERROR(driver->Finish(model, report));
  }
  return Status::OK();
}

}  // namespace

Status RunTraining(const join::NormalizedRelations& rel, Algorithm algorithm,
                   const StrategyOptions& options, ModelProgram* model,
                   storage::BufferPool* pool, TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  const uint32_t caps = model->Capabilities();
  if ((caps & kNeedsTarget) != 0 && !rel.has_target) {
    return Status::InvalidArgument(std::string(model->Name()) +
                                   " training requires a target column");
  }
  FML_RETURN_IF_ERROR(model->ValidateOptions(rel));
  if (algorithm == Algorithm::kFactorized && (caps & kFactorized) == 0) {
    return Status::InvalidArgument(
        std::string(model->Name()) +
        " does not implement the factorized hooks; use the materialized or "
        "streaming strategy");
  }
  FML_CHECK((caps & (kFullPass | kMiniBatch)) != 0 &&
            (caps & (kFullPass | kMiniBatch)) != (kFullPass | kMiniBatch))
      << model->Name() << ": exactly one driving plane must be declared";
  const bool mini_batch = (caps & kMiniBatch) != 0;

  StrategyOptions resolved = options;
  resolved.threads = exec::EffectiveThreads(options.threads);
  // Stealing needs a chunked decomposition to schedule over; an explicit
  // morsel size wins, otherwise the default chunk size kicks in. The
  // resolved morsel_rows — never the thread count or the steal schedule —
  // is what the chunk-ordered results depend on.
  if (resolved.morsel_rows < 0) resolved.morsel_rows = 0;
  if (resolved.steal && resolved.morsel_rows == 0) {
    resolved.morsel_rows = kDefaultMorselRows;
  }
  // Sharding needs the same chunked decomposition: shard = contiguous
  // chunk span, slot = global chunk id. Like steal, --shards alone
  // resolves to the default morsel size; the parity contract is against
  // --shards=1 at the same resolved morsel_rows.
  if (resolved.shards < 1) resolved.shards = 1;
  if (resolved.shards > 1) {
    if (mini_batch) {
      return Status::InvalidArgument(
          std::string(model->Name()) +
          ": --shards requires the full-pass plane; mini-batch (SGD) "
          "epochs are sequential and train unsharded");
    }
    if (resolved.morsel_rows == 0) resolved.morsel_rows = kDefaultMorselRows;
  }
  if (resolved.shard_backend != "inproc" &&
      resolved.shard_backend != "process") {
    return Status::InvalidArgument("unknown --shard-backend=" +
                                   resolved.shard_backend +
                                   " (expected inproc or process)");
  }
  if (resolved.delta_encoding != "dense" &&
      resolved.delta_encoding != "sparse") {
    return Status::InvalidArgument("unknown --delta-encoding=" +
                                   resolved.delta_encoding +
                                   " (expected dense or sparse)");
  }
  if (resolved.checkpoint_every < 0) {
    return Status::InvalidArgument(
        "--checkpoint-every=" + std::to_string(resolved.checkpoint_every) +
        " must be >= 1");
  }
  if (resolved.checkpoint_every > 0 && resolved.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every requires --checkpoint-dir");
  }

  // Worker mode: this process IS a shard worker; the coordinator on the
  // other end of shard_channel drives its passes. Single attempt — the
  // restart sentinel propagates to factormld, which reruns with a fresh
  // program.
  if (resolved.shard_channel != nullptr) {
    ShardWorkerDriver worker(resolved.shard_channel);
    return RunTrainingAttempt(rel, algorithm, resolved, mini_batch, model,
                              pool, report, &worker);
  }

  if (resolved.shard_backend == "process" && resolved.shards > 1) {
    if (resolved.shard_job_family.empty() ||
        resolved.shard_job_blob.empty()) {
      return Status::InvalidArgument(
          std::string(model->Name()) +
          ": this trainer entry point does not support "
          "--shard-backend=process (no shard job spec)");
    }
    // One coordinator (and worker crew) for all attempts; a restart
    // sentinel reruns the attempt on the surviving workers.
    ProcessShardCoordinator coordinator(resolved, algorithm, &rel, pool);
    constexpr int kMaxAttempts = 3;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      const Status st = RunTrainingAttempt(rel, algorithm, resolved,
                                           mini_batch, model, pool, report,
                                           &coordinator);
      if (!IsShardRestart(st)) return st;
    }
    return Status::Internal(
        "process shard backend: restart budget exhausted");
  }

  return RunTrainingAttempt(rel, algorithm, resolved, mini_batch, model,
                            pool, report, /*shard_driver=*/nullptr);
}

Result<la::Matrix> AssembleJoinedRows(const join::NormalizedRelations& rel,
                                      storage::BufferPool* pool,
                                      const std::vector<int64_t>& rows) {
  std::vector<join::AttributeTableView> views(rel.num_joins());
  for (size_t i = 0; i < rel.num_joins(); ++i) {
    FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
  }
  la::Matrix out(rows.size(), rel.total_dims());
  storage::RowBatch batch;
  for (size_t c = 0; c < rows.size(); ++c) {
    FML_RETURN_IF_ERROR(rel.s.ReadRows(pool, rows[c], 1, &batch));
    join::AssembleJoinedRow(rel, batch, 0, views, out.Row(c).data());
  }
  return out;
}

}  // namespace factorml::core::pipeline

#ifndef FACTORML_CORE_PIPELINE_SHARDED_DRIVER_H_
#define FACTORML_CORE_PIPELINE_SHARDED_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/pipeline/access_strategy.h"

namespace factorml::core::pipeline {

/// One shard's merged-state contribution to one full pass, serialized:
/// the bytes a distributed (RPC) backend would put on the wire. The
/// payload is the concatenation of the shard's per-chunk accumulator
/// slots, each streamed through ModelProgram::VisitSlotState, behind a
/// fixed header (magic/version, shard id, chunk span, payload length —
/// see sharded_driver.cc). Keeping the slots unfolded on the wire is what
/// preserves bit-exactness: the receiver replays MergeWorker per chunk in
/// global chunk order, the exact reduction the single-shard run performs,
/// instead of summing pre-folded shard partials in a different
/// floating-point association.
struct ShardDelta {
  int shard = 0;
  int64_t chunk_begin = 0;
  int64_t chunk_end = 0;
  std::string bytes;

  size_t wire_size() const { return bytes.size(); }
};

/// Serializes the post-scan accumulator slots [chunks.begin, chunks.end)
/// of `model` into a ShardDelta and ZEROES them — until the delta is
/// applied the model holds no trace of the shard's scan, which is what
/// proves the bytes carry the complete merged state (the in-process
/// backend's loopback is a real serialization boundary, not a no-op).
/// `sparse` selects wire format v2 ("FMLSHRD2"): zero stretches of the
/// slot stream become run-length counters, non-zero stretches stay
/// literal doubles — decode is bit-exact, only the wire size moves.
ShardDelta ExtractShardDelta(ModelProgram* model, int pass, int shard,
                             exec::Range chunks, bool sparse = false);

/// Writes a delta's payload back into the model's slots, auto-detecting
/// the wire version by magic. Fails on header or length mismatch — a
/// wire-format or accumulator-shape drift — naming the shard, the
/// expected vs. received chunk span, and the byte counts involved.
Status ApplyShardDelta(ModelProgram* model, int pass,
                       const ShardDelta& delta);

/// What RunTraining drives when shards > 1, independent of where the
/// shard scans execute. The in-process backend (ShardedDriver, below)
/// scans every shard on this process's workers; the process backend
/// (ProcessShardCoordinator, core/pipeline/shard_rpc.h) farms spans out
/// to factormld worker processes over sockets and applies the returned
/// ShardDelta bytes through the exact same chunk-ordered merge. Both
/// satisfy the same contract: after RunPass the model's merged state is
/// bit-identical to the unsharded run at the same resolved morsel size.
class ShardPassDriver {
 public:
  virtual ~ShardPassDriver() = default;

  /// Builds the shard plan over the strategy's (already Prepared) morsel
  /// plan; the effective shard count lands in report->shards with one
  /// ShardStat per shard. Called once, before model->Init. The resolved
  /// StrategyOptions carry the shard count plus the backend knobs the
  /// driver needs (delta_encoding, timeouts, transport).
  virtual Status Init(AccessStrategy* strategy,
                      const StrategyOptions& options,
                      TrainReport* report) = 0;

  /// One sharded full pass: scan (locally or remotely), then apply +
  /// merge all shard deltas in global chunk order.
  virtual Status RunPass(AccessStrategy* strategy, const PipelineContext& ctx,
                         ModelProgram* model, int pass) = 0;

  /// Called once after the iteration loop, with the final objective
  /// available. Backends with external workers verify convergence
  /// agreement and shut the workers down here.
  virtual Status Finish(ModelProgram* model, TrainReport* report) {
    (void)model;
    (void)report;
    return Status::OK();
  }

  virtual const exec::ShardPlan& plan() const = 0;
};

/// The shard plane's in-process backend: drives one RunTraining-style full
/// pass per shard over a strategy's morsel plan and merges the resulting
/// ShardDeltas in shard-id order.
///
/// Execution model — shards time-share the run's compute workers: shard
/// scans run sequentially in shard-id order, each as a span-restricted
/// morsel region (exec::RunMorselSpan) over the strategy's existing
/// per-worker pools and pass-scoped cursors, with chunk ownership taken
/// from the global split. Each shard therefore observes its own IoStats
/// window and busy time (TrainReport::shard_stats), while the union of all
/// shards performs exactly the page-request sequences of the unsharded
/// run — which yields the determinism contract:
///
///   objectives, params and op counts are bit-identical to --shards=1 at
///   the same resolved morsel size for ANY threads x steal x prefetch
///   schedule (slot = global chunk id; merge order = shard-id order =
///   global chunk order), and total page I/O is additionally bit-identical
///   whenever the schedule itself is I/O-deterministic (steal and
///   prefetch off; stealing re-homes chunks into thief pools and prefetch
///   races the crew, so those counters are not schedule-stable even at
///   shards=1).
///
/// A distributed backend replaces only the scan step — each remote shard
/// runs the same span over its own pools and ships its ShardDelta back —
/// and inherits the merge semantics verified here.
class ShardedDriver : public ShardPassDriver, public ShardScanObserver {
 public:
  /// Builds the shard plan over the strategy's (already Prepared) morsel
  /// plan; the effective shard count (= requested, bounded by the chunk
  /// count) lands in report->shards with one ShardStat per shard.
  Status Init(AccessStrategy* strategy, const StrategyOptions& options,
              TrainReport* report) override;

  /// One sharded full pass: arms the strategy's shard plane, scans shard
  /// by shard (OnShardScanned accounts each window and extracts its
  /// delta), then applies the deltas and merges the chunk slots in
  /// shard-id order.
  Status RunPass(AccessStrategy* strategy, const PipelineContext& ctx,
                 ModelProgram* model, int pass) override;

  /// ShardScanObserver: called by the strategy after each shard's span has
  /// been scanned and drained.
  Status OnShardScanned(int shard) override;

  const exec::ShardPlan& plan() const override { return plan_; }

 private:
  exec::ShardPlan plan_;
  TrainReport* report_ = nullptr;
  ModelProgram* model_ = nullptr;
  int pass_ = 0;
  bool sparse_deltas_ = false;
  std::vector<ShardDelta> deltas_;
  storage::IoStats io_mark_;
  Stopwatch scan_watch_;
};

}  // namespace factorml::core::pipeline

#endif  // FACTORML_CORE_PIPELINE_SHARDED_DRIVER_H_

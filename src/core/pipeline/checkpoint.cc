// CRC-verified checkpoint/restore of the training pipeline's iteration
// state. Write path: serialize header + state into length-prefixed
// CRC32 blocks, stage to <path>.tmp, fsync, rename — the POSIX recipe
// that makes the checkpoint either the complete new file or the complete
// old one, never a tear. Read path: verify magic, lengths and both CRCs
// before handing a single byte to the caller.

#include "core/pipeline/checkpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "net/wire.h"

namespace factorml::core::pipeline {

namespace {

constexpr char kMagic[8] = {'F', 'M', 'L', 'C', 'K', 'P', 'T', '1'};

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

/// One length-prefixed, CRC-suffixed block.
void AppendBlock(std::string* out, const std::string& bytes) {
  AppendU64(out, bytes.size());
  out->append(bytes);
  AppendU32(out, Crc32(bytes.data(), bytes.size()));
}

/// Parses the block at *off, advancing it. Errors name the block and the
/// CRCs so a corrupted checkpoint is diagnosable from the warning alone.
Status ReadBlock(const std::string& file, size_t* off, const char* what,
                 std::string* bytes) {
  if (*off + sizeof(uint64_t) > file.size()) {
    return Status::InvalidArgument(std::string("checkpoint: truncated ") +
                                   what + " block length");
  }
  uint64_t len = 0;
  std::memcpy(&len, file.data() + *off, sizeof(len));
  *off += sizeof(len);
  if (*off + len + sizeof(uint32_t) > file.size()) {
    return Status::InvalidArgument(
        std::string("checkpoint: truncated ") + what + " block (declares " +
        std::to_string(len) + " bytes, file has " +
        std::to_string(file.size() - *off) + " left)");
  }
  bytes->assign(file.data() + *off, len);
  *off += len;
  uint32_t stored = 0;
  std::memcpy(&stored, file.data() + *off, sizeof(stored));
  *off += sizeof(stored);
  const uint32_t computed = Crc32(bytes->data(), bytes->size());
  if (stored != computed) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "checkpoint: %s block CRC mismatch (stored 0x%08x, "
                  "computed 0x%08x)",
                  what, stored, computed);
    return Status::InvalidArgument(msg);
  }
  return Status::OK();
}

/// Stage-and-rename write with fsync: the atomic-replace idiom.
Status AtomicWrite(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("checkpoint: cannot open " + tmp);
  }
  const size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (n != bytes.size() || std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint: short write to " + tmp);
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint: rename " + tmp + " -> " + path +
                           " failed");
  }
  return Status::OK();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string CheckpointPath(const std::string& dir, const std::string& label) {
  return dir + "/" + label + ".ckpt";
}

Status WriteCheckpoint(const std::string& dir, const CheckpointState& st) {
  net::ByteWriter hw;
  hw.Str(st.label);
  hw.U64(st.fingerprint);
  hw.I64(st.completed_iterations);
  hw.U8(st.converged ? 1 : 0);
  hw.U64(st.ops.mults);
  hw.U64(st.ops.adds);
  hw.U64(st.ops.subs);
  hw.U64(st.ops.exps);
  hw.U64(st.state.size());
  const std::string header = hw.Take();
  std::string body(reinterpret_cast<const char*>(st.state.data()),
                   st.state.size() * sizeof(double));

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendBlock(&file, header);
  AppendBlock(&file, body);
  const std::string path = CheckpointPath(dir, st.label);
  FML_RETURN_IF_ERROR(AtomicWrite(path, file));

  char crc_hex[16];
  std::snprintf(crc_hex, sizeof(crc_hex), "0x%08x",
                Crc32(body.data(), body.size()));
  std::string json = "{\n";
  json += "  \"label\": \"" + JsonEscape(st.label) + "\",\n";
  json += "  \"fingerprint\": " + std::to_string(st.fingerprint) + ",\n";
  json += "  \"completed_iterations\": " +
          std::to_string(st.completed_iterations) + ",\n";
  json += std::string("  \"converged\": ") +
          (st.converged ? "true" : "false") + ",\n";
  json += "  \"state_doubles\": " + std::to_string(st.state.size()) + ",\n";
  json += "  \"state_crc32\": \"" + std::string(crc_hex) + "\",\n";
  json += "  \"ops\": {\"mults\": " + std::to_string(st.ops.mults) +
          ", \"adds\": " + std::to_string(st.ops.adds) +
          ", \"subs\": " + std::to_string(st.ops.subs) +
          ", \"exps\": " + std::to_string(st.ops.exps) + "},\n";
  json += "  \"file\": \"" + JsonEscape(st.label) + ".ckpt\"\n";
  json += "}\n";
  return AtomicWrite(path + ".json", json);
}

Result<CheckpointState> ReadCheckpoint(const std::string& dir,
                                       const std::string& label) {
  const std::string path = CheckpointPath(dir, label);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string file;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) file.append(buf, n);
  std::fclose(f);

  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("checkpoint: bad magic in " + path);
  }
  size_t off = sizeof(kMagic);
  std::string header, body;
  FML_RETURN_IF_ERROR(ReadBlock(file, &off, "header", &header));
  FML_RETURN_IF_ERROR(ReadBlock(file, &off, "state", &body));
  if (off != file.size()) {
    return Status::InvalidArgument(
        "checkpoint: " + std::to_string(file.size() - off) +
        " trailing bytes after the state block in " + path);
  }

  CheckpointState st;
  net::ByteReader r(header);
  uint8_t converged = 0;
  uint64_t count = 0;
  FML_RETURN_IF_ERROR(r.Str(&st.label));
  FML_RETURN_IF_ERROR(r.U64(&st.fingerprint));
  FML_RETURN_IF_ERROR(r.I64(&st.completed_iterations));
  FML_RETURN_IF_ERROR(r.U8(&converged));
  FML_RETURN_IF_ERROR(r.U64(&st.ops.mults));
  FML_RETURN_IF_ERROR(r.U64(&st.ops.adds));
  FML_RETURN_IF_ERROR(r.U64(&st.ops.subs));
  FML_RETURN_IF_ERROR(r.U64(&st.ops.exps));
  FML_RETURN_IF_ERROR(r.U64(&count));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("checkpoint: trailing header bytes");
  }
  st.converged = converged != 0;
  if (st.label != label) {
    return Status::InvalidArgument("checkpoint: label mismatch (file says '" +
                                   st.label + "', expected '" + label + "')");
  }
  if (body.size() != count * sizeof(double)) {
    return Status::InvalidArgument(
        "checkpoint: state block carries " + std::to_string(body.size()) +
        " bytes, header declares " + std::to_string(count) + " doubles");
  }
  st.state.resize(count);
  std::memcpy(st.state.data(), body.data(), body.size());
  return st;
}

}  // namespace factorml::core::pipeline

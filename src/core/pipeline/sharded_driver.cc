// The shard plane's in-process backend and the ShardDelta wire format.
//
// Wire format v1 — dense (native-endian; the in-process loopback and a
// homogeneous cluster share it — a heterogeneous RPC backend would pin
// endianness at the transport):
//   bytes [0, 8)   magic "FMLSHRD1"
//   bytes [8, 16)  int64  shard id
//   bytes [16, 24) int64  chunk_begin (global chunk id, inclusive)
//   bytes [24, 32) int64  chunk_end   (global chunk id, exclusive)
//   bytes [32, 40) uint64 payload double count
//   bytes [40, ..) payload: the doubles of slots chunk_begin..chunk_end-1
//                  in chunk order, each slot in its VisitSlotState span
//                  sequence.
//
// Wire format v2 — sparse (--delta-encoding=sparse): the same header
// fields behind magic "FMLSHRD2", followed by a run-length encoding of
// the v1 payload stream:
//   bytes [0, 8)   magic "FMLSHRD2"
//   bytes [8, 16)  int64  shard id
//   bytes [16, 24) int64  chunk_begin
//   bytes [24, 32) int64  chunk_end
//   bytes [32, 40) uint64 decoded payload double count (== v1's count)
//   bytes [40, 48) uint64 encoded byte count (everything after byte 48)
//   bytes [48, ..) runs of { uint64 zero_count, uint64 literal_count,
//                  literal_count literal doubles } until the decoded
//                  count is reached. Decoding replays the exact v1 double
//                  stream (zeros are bit-pattern +0.0), so results are
//                  bit-identical to dense; only the wire size moves.

#include "core/pipeline/sharded_driver.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::core::pipeline {

namespace {

constexpr char kMagic[8] = {'F', 'M', 'L', 'S', 'H', 'R', 'D', '1'};
constexpr char kMagicSparse[8] = {'F', 'M', 'L', 'S', 'H', 'R', 'D', '2'};
constexpr size_t kHeaderBytes = 40;        // v1: magic + 4 x i64
constexpr size_t kSparseHeaderBytes = 48;  // v2: magic + 5 x i64

void AppendI64(std::string* out, int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

int64_t ReadI64(const std::string& bytes, size_t off) {
  int64_t v;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

bool IsZeroDouble(double v) {
  // Bit-pattern zero only: -0.0 and denormals are literals, so the
  // decoded stream replays the encoder's doubles bit-for-bit.
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits == 0;
}

/// Run-length-encodes a v1 double payload: runs of bit-pattern +0.0
/// collapse to a counter, everything else is shipped literally.
std::string RunLengthEncode(const std::string& payload) {
  const auto* vals = reinterpret_cast<const double*>(payload.data());
  const size_t n = payload.size() / sizeof(double);
  std::string out;
  size_t i = 0;
  while (i < n) {
    size_t zeros = 0;
    while (i + zeros < n && IsZeroDouble(vals[i + zeros])) ++zeros;
    size_t lits = 0;
    while (i + zeros + lits < n && !IsZeroDouble(vals[i + zeros + lits])) {
      ++lits;
    }
    AppendI64(&out, static_cast<int64_t>(zeros));
    AppendI64(&out, static_cast<int64_t>(lits));
    out.append(payload.data() + (i + zeros) * sizeof(double),
               lits * sizeof(double));
    i += zeros + lits;
  }
  return out;
}

std::string DeltaError(const ShardDelta& delta, const std::string& what) {
  return "ShardDelta (shard " + std::to_string(delta.shard) + ", chunks [" +
         std::to_string(delta.chunk_begin) + ", " +
         std::to_string(delta.chunk_end) + "), " +
         std::to_string(delta.bytes.size()) + " wire bytes): " + what;
}

}  // namespace

ShardDelta ExtractShardDelta(ModelProgram* model, int pass, int shard,
                             exec::Range chunks, bool sparse) {
  ShardDelta delta;
  delta.shard = shard;
  delta.chunk_begin = chunks.begin;
  delta.chunk_end = chunks.end;
  std::string payload;
  for (int64_t c = chunks.begin; c < chunks.end; ++c) {
    model->VisitSlotState(
        pass, static_cast<int>(c), [&payload](double* data, size_t len) {
          payload.append(reinterpret_cast<const char*>(data),
                         len * sizeof(double));
          std::fill(data, data + len, 0.0);
        });
  }
  if (sparse) {
    const std::string encoded = RunLengthEncode(payload);
    delta.bytes.reserve(kSparseHeaderBytes + encoded.size());
    delta.bytes.append(kMagicSparse, sizeof(kMagicSparse));
    AppendI64(&delta.bytes, shard);
    AppendI64(&delta.bytes, chunks.begin);
    AppendI64(&delta.bytes, chunks.end);
    AppendI64(&delta.bytes,
              static_cast<int64_t>(payload.size() / sizeof(double)));
    AppendI64(&delta.bytes, static_cast<int64_t>(encoded.size()));
    delta.bytes += encoded;
    return delta;
  }
  delta.bytes.reserve(kHeaderBytes + payload.size());
  delta.bytes.append(kMagic, sizeof(kMagic));
  AppendI64(&delta.bytes, shard);
  AppendI64(&delta.bytes, chunks.begin);
  AppendI64(&delta.bytes, chunks.end);
  AppendI64(&delta.bytes,
            static_cast<int64_t>(payload.size() / sizeof(double)));
  delta.bytes += payload;
  return delta;
}

Status ApplyShardDelta(ModelProgram* model, int pass,
                       const ShardDelta& delta) {
  const std::string& bytes = delta.bytes;
  if (bytes.size() < sizeof(kMagic)) {
    return Status::InvalidArgument(DeltaError(
        delta, "truncated before the magic (need 8 bytes)"));
  }
  const bool sparse =
      std::memcmp(bytes.data(), kMagicSparse, sizeof(kMagicSparse)) == 0;
  if (!sparse && std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(DeltaError(delta, "bad magic"));
  }
  const size_t header = sparse ? kSparseHeaderBytes : kHeaderBytes;
  if (bytes.size() < header) {
    return Status::InvalidArgument(DeltaError(
        delta, "truncated header (need " + std::to_string(header) +
                   " bytes)"));
  }
  const int64_t wire_shard = ReadI64(bytes, 8);
  const int64_t wire_begin = ReadI64(bytes, 16);
  const int64_t wire_end = ReadI64(bytes, 24);
  if (wire_shard != delta.shard || wire_begin != delta.chunk_begin ||
      wire_end != delta.chunk_end) {
    return Status::InvalidArgument(DeltaError(
        delta, "header/span mismatch: wire header says shard " +
                   std::to_string(wire_shard) + " chunks [" +
                   std::to_string(wire_begin) + ", " +
                   std::to_string(wire_end) + ")"));
  }
  const auto payload_doubles = static_cast<uint64_t>(ReadI64(bytes, 32));
  // The dense double stream the slot copy-back consumes: the wire bytes
  // themselves for v1, the RLE-decoded buffer for v2.
  std::string decoded;
  const char* payload = nullptr;
  size_t payload_size = 0;
  if (sparse) {
    const auto encoded_bytes = static_cast<uint64_t>(ReadI64(bytes, 40));
    if (bytes.size() != header + encoded_bytes) {
      return Status::InvalidArgument(DeltaError(
          delta, "encoded length mismatch: header declares " +
                     std::to_string(encoded_bytes) +
                     " encoded bytes, frame carries " +
                     std::to_string(bytes.size() - header)));
    }
    decoded.reserve(payload_doubles * sizeof(double));
    size_t off = header;
    uint64_t produced = 0;
    while (off < bytes.size()) {
      if (off + 2 * sizeof(int64_t) > bytes.size()) {
        return Status::InvalidArgument(DeltaError(
            delta, "truncated run header at encoded offset " +
                       std::to_string(off - header)));
      }
      const int64_t zeros = ReadI64(bytes, off);
      const int64_t lits = ReadI64(bytes, off + sizeof(int64_t));
      off += 2 * sizeof(int64_t);
      if (zeros < 0 || lits < 0 ||
          produced + static_cast<uint64_t>(zeros + lits) > payload_doubles) {
        return Status::InvalidArgument(DeltaError(
            delta, "run overruns the declared " +
                       std::to_string(payload_doubles) + " payload doubles"));
      }
      const size_t lit_bytes = static_cast<size_t>(lits) * sizeof(double);
      if (off + lit_bytes > bytes.size()) {
        return Status::InvalidArgument(DeltaError(
            delta, "truncated literal run: need " +
                       std::to_string(lit_bytes) + " bytes, have " +
                       std::to_string(bytes.size() - off)));
      }
      decoded.append(static_cast<size_t>(zeros) * sizeof(double), '\0');
      decoded.append(bytes.data() + off, lit_bytes);
      off += lit_bytes;
      produced += static_cast<uint64_t>(zeros + lits);
    }
    if (produced != payload_doubles) {
      return Status::InvalidArgument(DeltaError(
          delta, "decoded " + std::to_string(produced) +
                     " doubles, header declared " +
                     std::to_string(payload_doubles)));
    }
    payload = decoded.data();
    payload_size = decoded.size();
  } else {
    if (bytes.size() != header + payload_doubles * sizeof(double)) {
      return Status::InvalidArgument(DeltaError(
          delta, "payload length mismatch: header declares " +
                     std::to_string(payload_doubles) +
                     " doubles, frame carries " +
                     std::to_string(bytes.size() - header) +
                     " payload bytes"));
    }
    payload = bytes.data() + header;
    payload_size = bytes.size() - header;
  }
  size_t off = 0;
  bool overrun = false;
  for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
    model->VisitSlotState(
        pass, static_cast<int>(c),
        [payload, payload_size, &off, &overrun](double* data, size_t len) {
          const size_t want = len * sizeof(double);
          if (overrun || off + want > payload_size) {
            overrun = true;
            return;
          }
          std::memcpy(data, payload + off, want);
          off += want;
        });
  }
  if (overrun || off != payload_size) {
    return Status::InvalidArgument(DeltaError(
        delta,
        "slot-state shape drifted between serialize and apply (consumed " +
            std::to_string(off) + " of " + std::to_string(payload_size) +
            " payload bytes)"));
  }
  return Status::OK();
}

Status ShardedDriver::Init(AccessStrategy* strategy,
                           const StrategyOptions& options,
                           TrainReport* report) {
  FML_CHECK_GT(options.shards, 1);
  sparse_deltas_ = options.delta_encoding == "sparse";
  plan_ = exec::PlanShards(strategy->MorselPlan(), options.shards);
  report_ = report;
  if (report_ != nullptr) {
    report_->shards = std::max(plan_.num_shards(), 1);
    report_->shard_stats.assign(
        static_cast<size_t>(plan_.num_shards()), TrainReport::ShardStat{});
    for (int k = 0; k < plan_.num_shards(); ++k) {
      report_->shard_stats[static_cast<size_t>(k)].chunk_begin =
          plan_.ChunkSpan(k).begin;
      report_->shard_stats[static_cast<size_t>(k)].chunk_end =
          plan_.ChunkSpan(k).end;
    }
  }
  return Status::OK();
}

Status ShardedDriver::RunPass(AccessStrategy* strategy,
                              const PipelineContext& ctx, ModelProgram* model,
                              int pass) {
  model_ = model;
  pass_ = pass;
  deltas_.clear();
  deltas_.reserve(static_cast<size_t>(plan_.num_shards()));
  io_mark_ = storage::GlobalIo();
  scan_watch_.Restart();
  strategy->SetShardScan(&plan_, this);
  const Status scan = strategy->RunPass(ctx, model, pass);
  strategy->SetShardScan(nullptr, nullptr);
  FML_RETURN_IF_ERROR(scan);
  FML_CHECK_EQ(deltas_.size(), static_cast<size_t>(plan_.num_shards()));
  // Merge in shard-id order. Shard spans ascend over the chunk ids, so
  // this replays MergeWorker in exactly the global chunk order of the
  // unsharded reduction — the delta round-trip in between is a pure
  // serialization boundary (memcpy of doubles), hence bit-exact.
  obs::TraceSpan merge_span(obs::kCatPipeline, "delta_merge");
  merge_span.Arg("shards", plan_.num_shards());
  for (const ShardDelta& delta : deltas_) {
    obs::TraceSpan apply_span(obs::kCatPipeline, "delta_apply");
    apply_span.Arg("shard", delta.shard);
    FML_RETURN_IF_ERROR(ApplyShardDelta(model, pass, delta));
    for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
      model->MergeWorker(pass, static_cast<int>(c));
    }
  }
  return Status::OK();
}

Status ShardedDriver::OnShardScanned(int shard) {
  FML_CHECK_EQ(static_cast<size_t>(shard), deltas_.size());
  // Contiguous accounting windows: everything since the previous shard's
  // snapshot — the scan, its prefetch drain (which folds the crew's
  // physical reads into this thread) and the worker-counter merges — is
  // this shard's, so the per-shard counters sum exactly to the scan
  // phase's totals with nothing double-counted or dropped.
  const storage::IoStats now = storage::GlobalIo();
  if (report_ != nullptr) {
    auto& stat = report_->shard_stats[static_cast<size_t>(shard)];
    stat.io += now - io_mark_;
    stat.scan_seconds += scan_watch_.ElapsedSeconds();
  }
  io_mark_ = now;
  static obs::Counter* delta_count =
      obs::Registry::Instance().GetCounter("pipeline.shard_deltas");
  static obs::Counter* delta_bytes =
      obs::Registry::Instance().GetCounter("pipeline.delta_bytes");
  {
    obs::TraceSpan extract_span(obs::kCatPipeline, "delta_extract");
    extract_span.Arg("shard", shard);
    deltas_.push_back(ExtractShardDelta(model_, pass_, shard,
                                        plan_.ChunkSpan(shard),
                                        sparse_deltas_));
    extract_span.Arg2("bytes",
                      static_cast<int64_t>(deltas_.back().bytes.size()));
  }
  delta_count->Add();
  delta_bytes->Add(deltas_.back().bytes.size());
  // Restart after the extraction so serialization time is charged to no
  // shard's scan window (it is merge-plane work, not scanning).
  scan_watch_.Restart();
  return Status::OK();
}

}  // namespace factorml::core::pipeline

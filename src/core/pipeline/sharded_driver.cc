// The shard plane's in-process backend and the ShardDelta wire format.
//
// Wire format (native-endian; the in-process loopback and a homogeneous
// cluster share it — a heterogeneous RPC backend would pin endianness at
// the transport):
//   bytes [0, 8)   magic "FMLSHRD1"
//   bytes [8, 16)  int64  shard id
//   bytes [16, 24) int64  chunk_begin (global chunk id, inclusive)
//   bytes [24, 32) int64  chunk_end   (global chunk id, exclusive)
//   bytes [32, 40) uint64 payload double count
//   bytes [40, ..) payload: the doubles of slots chunk_begin..chunk_end-1
//                  in chunk order, each slot in its VisitSlotState span
//                  sequence.

#include "core/pipeline/sharded_driver.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::core::pipeline {

namespace {

constexpr char kMagic[8] = {'F', 'M', 'L', 'S', 'H', 'R', 'D', '1'};
constexpr size_t kHeaderBytes = 40;

void AppendI64(std::string* out, int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

int64_t ReadI64(const std::string& bytes, size_t off) {
  int64_t v;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

}  // namespace

ShardDelta ExtractShardDelta(ModelProgram* model, int pass, int shard,
                             exec::Range chunks) {
  ShardDelta delta;
  delta.shard = shard;
  delta.chunk_begin = chunks.begin;
  delta.chunk_end = chunks.end;
  std::string payload;
  for (int64_t c = chunks.begin; c < chunks.end; ++c) {
    model->VisitSlotState(
        pass, static_cast<int>(c), [&payload](double* data, size_t len) {
          payload.append(reinterpret_cast<const char*>(data),
                         len * sizeof(double));
          std::fill(data, data + len, 0.0);
        });
  }
  delta.bytes.reserve(kHeaderBytes + payload.size());
  delta.bytes.append(kMagic, sizeof(kMagic));
  AppendI64(&delta.bytes, shard);
  AppendI64(&delta.bytes, chunks.begin);
  AppendI64(&delta.bytes, chunks.end);
  AppendI64(&delta.bytes,
            static_cast<int64_t>(payload.size() / sizeof(double)));
  delta.bytes += payload;
  return delta;
}

Status ApplyShardDelta(ModelProgram* model, int pass,
                       const ShardDelta& delta) {
  const std::string& bytes = delta.bytes;
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("ShardDelta: bad magic or truncated header");
  }
  if (ReadI64(bytes, 8) != delta.shard ||
      ReadI64(bytes, 16) != delta.chunk_begin ||
      ReadI64(bytes, 24) != delta.chunk_end) {
    return Status::InvalidArgument("ShardDelta: header/span mismatch");
  }
  const auto payload_doubles = static_cast<uint64_t>(ReadI64(bytes, 32));
  if (bytes.size() != kHeaderBytes + payload_doubles * sizeof(double)) {
    return Status::InvalidArgument("ShardDelta: payload length mismatch");
  }
  size_t off = kHeaderBytes;
  bool overrun = false;
  for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
    model->VisitSlotState(
        pass, static_cast<int>(c),
        [&bytes, &off, &overrun](double* data, size_t len) {
          const size_t want = len * sizeof(double);
          if (overrun || off + want > bytes.size()) {
            overrun = true;
            return;
          }
          std::memcpy(data, bytes.data() + off, want);
          off += want;
        });
  }
  if (overrun || off != bytes.size()) {
    return Status::InvalidArgument(
        "ShardDelta: slot-state shape drifted between serialize and apply");
  }
  return Status::OK();
}

Status ShardedDriver::Init(AccessStrategy* strategy, int shards,
                           TrainReport* report) {
  FML_CHECK_GT(shards, 1);
  plan_ = exec::PlanShards(strategy->MorselPlan(), shards);
  report_ = report;
  if (report_ != nullptr) {
    report_->shards = std::max(plan_.num_shards(), 1);
    report_->shard_stats.assign(
        static_cast<size_t>(plan_.num_shards()), TrainReport::ShardStat{});
    for (int k = 0; k < plan_.num_shards(); ++k) {
      report_->shard_stats[static_cast<size_t>(k)].chunk_begin =
          plan_.ChunkSpan(k).begin;
      report_->shard_stats[static_cast<size_t>(k)].chunk_end =
          plan_.ChunkSpan(k).end;
    }
  }
  return Status::OK();
}

Status ShardedDriver::RunPass(AccessStrategy* strategy,
                              const PipelineContext& ctx, ModelProgram* model,
                              int pass) {
  model_ = model;
  pass_ = pass;
  deltas_.clear();
  deltas_.reserve(static_cast<size_t>(plan_.num_shards()));
  io_mark_ = storage::GlobalIo();
  scan_watch_.Restart();
  strategy->SetShardScan(&plan_, this);
  const Status scan = strategy->RunPass(ctx, model, pass);
  strategy->SetShardScan(nullptr, nullptr);
  FML_RETURN_IF_ERROR(scan);
  FML_CHECK_EQ(deltas_.size(), static_cast<size_t>(plan_.num_shards()));
  // Merge in shard-id order. Shard spans ascend over the chunk ids, so
  // this replays MergeWorker in exactly the global chunk order of the
  // unsharded reduction — the delta round-trip in between is a pure
  // serialization boundary (memcpy of doubles), hence bit-exact.
  obs::TraceSpan merge_span(obs::kCatPipeline, "delta_merge");
  merge_span.Arg("shards", plan_.num_shards());
  for (const ShardDelta& delta : deltas_) {
    obs::TraceSpan apply_span(obs::kCatPipeline, "delta_apply");
    apply_span.Arg("shard", delta.shard);
    FML_RETURN_IF_ERROR(ApplyShardDelta(model, pass, delta));
    for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
      model->MergeWorker(pass, static_cast<int>(c));
    }
  }
  return Status::OK();
}

Status ShardedDriver::OnShardScanned(int shard) {
  FML_CHECK_EQ(static_cast<size_t>(shard), deltas_.size());
  // Contiguous accounting windows: everything since the previous shard's
  // snapshot — the scan, its prefetch drain (which folds the crew's
  // physical reads into this thread) and the worker-counter merges — is
  // this shard's, so the per-shard counters sum exactly to the scan
  // phase's totals with nothing double-counted or dropped.
  const storage::IoStats now = storage::GlobalIo();
  if (report_ != nullptr) {
    auto& stat = report_->shard_stats[static_cast<size_t>(shard)];
    stat.io += now - io_mark_;
    stat.scan_seconds += scan_watch_.ElapsedSeconds();
  }
  io_mark_ = now;
  static obs::Counter* delta_count =
      obs::Registry::Instance().GetCounter("pipeline.shard_deltas");
  {
    obs::TraceSpan extract_span(obs::kCatPipeline, "delta_extract");
    extract_span.Arg("shard", shard);
    deltas_.push_back(
        ExtractShardDelta(model_, pass_, shard, plan_.ChunkSpan(shard)));
    extract_span.Arg2("bytes",
                      static_cast<int64_t>(deltas_.back().bytes.size()));
  }
  delta_count->Add();
  // Restart after the extraction so serialization time is charged to no
  // shard's scan window (it is merge-plane work, not scanning).
  scan_watch_.Restart();
  return Status::OK();
}

}  // namespace factorml::core::pipeline

// The process shard backend: coordinator (parent) and worker sides of the
// lockstep-replica protocol described in shard_rpc.h. Determinism rests on
// three facts: (1) every node applies every ShardDelta and replays
// MergeWorker in global chunk order — the exact reduction of the unsharded
// run; (2) a requeued span's rescan produces the same chunk-slot values on
// any worker (chunk slots are worker-count invariant); (3) all control
// decisions (EndPass, EndIteration, convergence) are pure functions of the
// merged state, so replicas never diverge. The DONE objective check at the
// end verifies (3) bitwise on every run.

#include "core/pipeline/shard_rpc.h"

#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "core/algorithm.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

extern char** environ;

namespace factorml::core::pipeline {

namespace {

constexpr const char* kRestartPrefix = "shard-restart: attempt ";

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Counter* RpcCounter(const char* name) {
  return obs::Registry::Instance().GetCounter(name);
}

void WriteIoStats(net::ByteWriter* w, const storage::IoStats& io) {
  w->U64(io.pages_read);
  w->U64(io.pages_written);
  w->U64(io.pool_hits);
  w->U64(io.pool_misses);
  w->U64(io.prefetch_reads);
  w->U64(io.prefetch_hits);
  w->U64(io.stall_micros);
}

Status ReadIoStats(net::ByteReader* r, storage::IoStats* io) {
  FML_RETURN_IF_ERROR(r->U64(&io->pages_read));
  FML_RETURN_IF_ERROR(r->U64(&io->pages_written));
  FML_RETURN_IF_ERROR(r->U64(&io->pool_hits));
  FML_RETURN_IF_ERROR(r->U64(&io->pool_misses));
  FML_RETURN_IF_ERROR(r->U64(&io->prefetch_reads));
  FML_RETURN_IF_ERROR(r->U64(&io->prefetch_hits));
  return r->U64(&io->stall_micros);
}

void WriteOps(net::ByteWriter* w, const OpCounters& ops) {
  w->U64(ops.mults);
  w->U64(ops.adds);
  w->U64(ops.subs);
  w->U64(ops.exps);
}

Status ReadOps(net::ByteReader* r, OpCounters* ops) {
  FML_RETURN_IF_ERROR(r->U64(&ops->mults));
  FML_RETURN_IF_ERROR(r->U64(&ops->adds));
  FML_RETURN_IF_ERROR(r->U64(&ops->subs));
  return r->U64(&ops->exps);
}

/// Coordinator-side twin of ShardWorkerDriver::MaybeInjectFault:
/// FACTORMLD_FAULT_KILL="coord:<pass_seq>" SIGKILLs the coordinating
/// parent right before it sends the PASS frames of that sequence number —
/// the checkpoint kill-resume tests' way of dying mid-iteration. The
/// "coord" prefix fails the workers' numeric sscanf, so they ignore it.
void MaybeInjectCoordinatorFault(uint64_t pass_seq) {
  const char* spec = std::getenv("FACTORMLD_FAULT_KILL");
  if (spec == nullptr || std::strncmp(spec, "coord:", 6) != 0) return;
  char* end = nullptr;
  const long long seq = std::strtoll(spec + 6, &end, 10);
  if (end == spec + 6 || seq != static_cast<long long>(pass_seq)) return;
  raise(SIGKILL);
}

/// Resolves the factormld worker binary: explicit option, $FACTORMLD, a
/// sibling of the running executable (every binary lands in the build
/// root), then $PATH via posix_spawnp.
std::string ResolveWorkerBinary(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv("FACTORMLD");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string self(buf);
    const size_t slash = self.rfind('/');
    if (slash != std::string::npos) {
      const std::string sibling = self.substr(0, slash + 1) + "factormld";
      if (access(sibling.c_str(), X_OK) == 0) return sibling;
    }
  }
  return "factormld";
}

}  // namespace

// ------------------------------------------------------------- sentinel

Status ShardRestartStatus(uint32_t next_attempt) {
  return Status::FailedPrecondition(kRestartPrefix +
                                    std::to_string(next_attempt));
}

bool IsShardRestart(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind(kRestartPrefix, 0) == 0;
}

// ------------------------------------------------------------- job spec

std::string EncodeShardJobSpec(const ShardJobSpec& spec) {
  net::ByteWriter w;
  w.U32(spec.version);
  w.Str(spec.s_path);
  w.U64(spec.attr_paths.size());
  for (const auto& p : spec.attr_paths) w.Str(p);
  w.U8(spec.has_target ? 1 : 0);
  w.U64(spec.pool_pages);
  w.U8(static_cast<uint8_t>(spec.algorithm));
  w.U64(spec.batch_rows);
  w.I64(spec.threads);
  w.I64(spec.morsel_rows);
  w.U8(spec.steal ? 1 : 0);
  w.U8(spec.prefetch ? 1 : 0);
  w.I64(spec.prefetch_depth);
  w.I64(spec.shards);
  w.U8(spec.kernels);
  w.I64(spec.shard_timeout_ms);
  w.Str(spec.temp_dir);
  w.I64(spec.worker_id);
  w.Str(spec.family);
  w.Str(spec.family_blob);
  w.Str(spec.delta_encoding);
  w.Str(spec.checkpoint_dir);
  w.I64(spec.checkpoint_every);
  return w.Take();
}

Result<ShardJobSpec> DecodeShardJobSpec(const std::string& bytes) {
  ShardJobSpec spec;
  net::ByteReader r(bytes);
  FML_RETURN_IF_ERROR(r.U32(&spec.version));
  if (spec.version != kShardProtocolVersion) {
    return Status::InvalidArgument(
        "shard job: protocol version mismatch (got " +
        std::to_string(spec.version) + ", want " +
        std::to_string(kShardProtocolVersion) + ")");
  }
  FML_RETURN_IF_ERROR(r.Str(&spec.s_path));
  uint64_t nattrs = 0;
  FML_RETURN_IF_ERROR(r.U64(&nattrs));
  spec.attr_paths.resize(nattrs);
  for (uint64_t i = 0; i < nattrs; ++i) {
    FML_RETURN_IF_ERROR(r.Str(&spec.attr_paths[i]));
  }
  uint8_t b = 0;
  FML_RETURN_IF_ERROR(r.U8(&b));
  spec.has_target = b != 0;
  FML_RETURN_IF_ERROR(r.U64(&spec.pool_pages));
  uint8_t algo = 0;
  FML_RETURN_IF_ERROR(r.U8(&algo));
  spec.algorithm = static_cast<char>(algo);
  FML_RETURN_IF_ERROR(r.U64(&spec.batch_rows));
  FML_RETURN_IF_ERROR(r.I64(&spec.threads));
  FML_RETURN_IF_ERROR(r.I64(&spec.morsel_rows));
  FML_RETURN_IF_ERROR(r.U8(&b));
  spec.steal = b != 0;
  FML_RETURN_IF_ERROR(r.U8(&b));
  spec.prefetch = b != 0;
  FML_RETURN_IF_ERROR(r.I64(&spec.prefetch_depth));
  FML_RETURN_IF_ERROR(r.I64(&spec.shards));
  FML_RETURN_IF_ERROR(r.U8(&spec.kernels));
  FML_RETURN_IF_ERROR(r.I64(&spec.shard_timeout_ms));
  FML_RETURN_IF_ERROR(r.Str(&spec.temp_dir));
  FML_RETURN_IF_ERROR(r.I64(&spec.worker_id));
  FML_RETURN_IF_ERROR(r.Str(&spec.family));
  FML_RETURN_IF_ERROR(r.Str(&spec.family_blob));
  FML_RETURN_IF_ERROR(r.Str(&spec.delta_encoding));
  FML_RETURN_IF_ERROR(r.Str(&spec.checkpoint_dir));
  FML_RETURN_IF_ERROR(r.I64(&spec.checkpoint_every));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("shard job: trailing bytes");
  }
  return spec;
}

// ------------------------------------------------------ worker driver

Status ShardWorkerDriver::Init(AccessStrategy* strategy,
                               const StrategyOptions& options,
                               TrainReport* report) {
  // The identical deterministic split the parent computes — PlanShards is
  // a pure function of (morsel plan, shard count), and the morsel plan is
  // a pure function of (data, morsel_rows). Every PASS frame's spans are
  // verified against it.
  sparse_deltas_ = options.delta_encoding == "sparse";
  plan_ = exec::PlanShards(strategy->MorselPlan(), options.shards);
  report_ = report;
  if (report_ != nullptr) {
    report_->shards = std::max(plan_.num_shards(), 1);
    report_->shard_stats.assign(static_cast<size_t>(plan_.num_shards()),
                                TrainReport::ShardStat{});
    for (int k = 0; k < plan_.num_shards(); ++k) {
      report_->shard_stats[static_cast<size_t>(k)].chunk_begin =
          plan_.ChunkSpan(k).begin;
      report_->shard_stats[static_cast<size_t>(k)].chunk_end =
          plan_.ChunkSpan(k).end;
    }
  }
  return Status::OK();
}

void ShardWorkerDriver::MaybeInjectFault(uint64_t pass_seq) {
  const auto match = [&](const char* env, int64_t* extra_ms) -> bool {
    const char* spec = std::getenv(env);
    if (spec == nullptr || spec[0] == '\0') return false;
    // "<worker_id>:<pass_seq>[:<ms>]"
    long long id = -1, seq = -1, ms = 0;
    const int n = std::sscanf(spec, "%lld:%lld:%lld", &id, &seq, &ms);
    if (n < 2) return false;
    if (extra_ms != nullptr) *extra_ms = ms;
    return id == link_->worker_id() &&
           seq == static_cast<long long>(pass_seq);
  };
  if (match("FACTORMLD_FAULT_KILL", nullptr)) {
    raise(SIGKILL);
  }
  int64_t stall_ms = 0;
  static bool stalled_once = false;
  if (!stalled_once && match("FACTORMLD_FAULT_STALL", &stall_ms)) {
    stalled_once = true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(stall_ms > 0 ? stall_ms : 3600000));
  }
}

Status ShardWorkerDriver::DecodePass(const std::string& payload,
                                     PassCmd* cmd) {
  net::ByteReader r(payload);
  FML_RETURN_IF_ERROR(r.U32(&cmd->attempt));
  FML_RETURN_IF_ERROR(r.U64(&cmd->pass_seq));
  FML_RETURN_IF_ERROR(r.I64(&cmd->pass));
  FML_RETURN_IF_ERROR(r.U32(&cmd->recover_passes));
  uint64_t nspans = 0;
  FML_RETURN_IF_ERROR(r.U64(&nspans));
  cmd->spans.resize(nspans);
  for (uint64_t i = 0; i < nspans; ++i) {
    FML_RETURN_IF_ERROR(r.I64(&cmd->spans[i].shard));
    FML_RETURN_IF_ERROR(r.I64(&cmd->spans[i].chunks.begin));
    FML_RETURN_IF_ERROR(r.I64(&cmd->spans[i].chunks.end));
  }
  // Verify every span against the locally computed plan — any mismatch
  // means the two nodes derived different shard splits, which would break
  // bit-identity silently if allowed through.
  for (const AssignedSpan& s : cmd->spans) {
    if (s.shard < 0 || s.shard >= plan_.num_shards()) {
      return Status::Internal("shard worker: span for unknown shard " +
                              std::to_string(s.shard));
    }
    const exec::Range local = plan_.ChunkSpan(static_cast<int>(s.shard));
    if (local.begin != s.chunks.begin || local.end != s.chunks.end) {
      return Status::Internal("shard worker: plan drift on shard " +
                              std::to_string(s.shard));
    }
  }
  return Status::OK();
}

Status ShardWorkerDriver::OnShardScanned(int local_shard) {
  const int64_t global = scan_shards_[static_cast<size_t>(local_shard)];
  const exec::Range chunks = scan_plan_.ChunkSpan(local_shard);
  if (discard_scan_) {
    // Recovery prologue: the rescan only exists to rebuild per-row state
    // (e.g. GMM responsibilities) on this worker. Extract-and-zero the
    // slots so no accumulator state leaks, and drop the bytes — the real
    // values were applied when this pass's APPLY originally arrived.
    ExtractShardDelta(model_, pass_, static_cast<int>(global), chunks);
    return Status::OK();
  }
  const storage::IoStats io_now = storage::GlobalIo();
  const OpCounters ops_now = GlobalOps();
  SpanResult res;
  res.shard = global;
  res.scan_seconds = scan_watch_.ElapsedSeconds();
  res.io = io_now - io_mark_;
  res.ops = ops_now - ops_mark_;
  {
    obs::TraceSpan extract_span(obs::kCatPipeline, "delta_extract");
    extract_span.Arg("shard", static_cast<int64_t>(global));
    res.delta = ExtractShardDelta(model_, pass_, static_cast<int>(global),
                                  chunks, sparse_deltas_);
  }
  if (report_ != nullptr) {
    auto& stat = report_->shard_stats[static_cast<size_t>(global)];
    stat.io += res.io;
    stat.scan_seconds += res.scan_seconds;
  }
  results_.push_back(std::move(res));
  io_mark_ = io_now;
  ops_mark_ = ops_now;
  scan_watch_.Restart();
  return Status::OK();
}

Status ShardWorkerDriver::RunAssigned(AccessStrategy* strategy,
                                      const PipelineContext& ctx,
                                      ModelProgram* model, int pass,
                                      const PassCmd& cmd) {
  model_ = model;
  scan_plan_.spans.clear();
  scan_shards_.clear();
  for (const AssignedSpan& s : cmd.spans) {
    scan_plan_.spans.push_back(s.chunks);
    scan_shards_.push_back(s.shard);
  }
  // Recovery prologue: rescan the earlier passes of this iteration over
  // just these spans — no BeginPass replay (replaying BeginPass would
  // clobber cross-pass state like GMM's merged log-likelihood), slots
  // extracted and discarded. ModelProgram::ShardRecoverableAtPass has
  // already vouched that this reproduces the per-row state bit-exactly.
  for (uint32_t rp = 0; rp < cmd.recover_passes; ++rp) {
    discard_scan_ = true;
    pass_ = static_cast<int>(rp);
    strategy->SetShardScan(&scan_plan_, this);
    const Status st = strategy->RunPass(ctx, model, static_cast<int>(rp));
    strategy->SetShardScan(nullptr, nullptr);
    discard_scan_ = false;
    FML_RETURN_IF_ERROR(st);
  }
  // The real scan. Marks reset here so recovery work is excluded from the
  // DELTA windows — the op windows the parent folds in must match what
  // the lost worker's fault-free scan would have reported.
  pass_ = pass;
  results_.clear();
  io_mark_ = storage::GlobalIo();
  ops_mark_ = GlobalOps();
  scan_watch_.Restart();
  strategy->SetShardScan(&scan_plan_, this);
  const Status st = strategy->RunPass(ctx, model, pass);
  strategy->SetShardScan(nullptr, nullptr);
  FML_RETURN_IF_ERROR(st);
  // Ship one DELTA per scanned span.
  for (SpanResult& res : results_) {
    net::ByteWriter w;
    w.U32(link_->attempt());
    w.U64(cmd.pass_seq);
    w.I64(res.shard);
    w.F64(res.scan_seconds);
    WriteIoStats(&w, res.io);
    WriteOps(&w, res.ops);
    w.Bytes(res.delta.bytes);
    obs::TraceSpan send_span(obs::kCatRpc, "delta_send");
    send_span.Arg("shard", res.shard);
    FML_RETURN_IF_ERROR(link_->conn()->SendFrame(kFrameDelta, w.Take()));
  }
  return Status::OK();
}

Status ShardWorkerDriver::RunPass(AccessStrategy* strategy,
                                  const PipelineContext& ctx,
                                  ModelProgram* model, int pass) {
  const uint64_t seq = next_seq_;
  bool scanned_any = false;
  while (true) {
    net::Frame frame;
    {
      obs::TraceSpan wait_span(obs::kCatRpc, "worker_wait");
      FML_RETURN_IF_ERROR(link_->conn()->RecvFrame(&frame, /*timeout_ms=*/-1));
    }
    switch (frame.type) {
      case kFramePass: {
        PassCmd cmd;
        FML_RETURN_IF_ERROR(DecodePass(frame.payload, &cmd));
        if (cmd.attempt < link_->attempt()) break;  // stale, drop
        if (cmd.attempt != link_->attempt() || cmd.pass_seq != seq ||
            cmd.pass != pass) {
          return Status::Internal(
              "shard worker: PASS out of lockstep (attempt " +
              std::to_string(cmd.attempt) + " seq " +
              std::to_string(cmd.pass_seq) + " pass " +
              std::to_string(cmd.pass) + ")");
        }
        MaybeInjectFault(seq);
        FML_RETURN_IF_ERROR(RunAssigned(strategy, ctx, model, pass, cmd));
        scanned_any = true;
        break;
      }
      case kFrameApply: {
        net::ByteReader r(frame.payload);
        uint32_t attempt = 0;
        uint64_t pass_seq = 0, count = 0;
        FML_RETURN_IF_ERROR(r.U32(&attempt));
        FML_RETURN_IF_ERROR(r.U64(&pass_seq));
        if (attempt < link_->attempt()) break;  // stale, drop
        if (attempt != link_->attempt() || pass_seq != seq || !scanned_any) {
          return Status::Internal("shard worker: APPLY out of lockstep");
        }
        FML_RETURN_IF_ERROR(r.U64(&count));
        obs::TraceSpan merge_span(obs::kCatPipeline, "delta_merge");
        merge_span.Arg("shards", static_cast<int64_t>(count));
        for (uint64_t i = 0; i < count; ++i) {
          ShardDelta delta;
          int64_t shard = 0;
          FML_RETURN_IF_ERROR(r.I64(&shard));
          FML_RETURN_IF_ERROR(r.I64(&delta.chunk_begin));
          FML_RETURN_IF_ERROR(r.I64(&delta.chunk_end));
          FML_RETURN_IF_ERROR(r.Bytes(&delta.bytes));
          delta.shard = static_cast<int>(shard);
          obs::TraceSpan apply_span(obs::kCatPipeline, "delta_apply");
          apply_span.Arg("shard", shard);
          FML_RETURN_IF_ERROR(ApplyShardDelta(model, pass, delta));
          for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
            model->MergeWorker(pass, static_cast<int>(c));
          }
        }
        ++next_seq_;
        return Status::OK();
      }
      case kFrameRestart: {
        net::ByteReader r(frame.payload);
        uint32_t new_attempt = 0;
        FML_RETURN_IF_ERROR(r.U32(&new_attempt));
        link_->set_attempt(new_attempt);
        next_seq_ = 0;
        return ShardRestartStatus(new_attempt);
      }
      case kFrameBye:
        return Status::Internal("shard worker: BYE before training finished");
      default:
        return Status::Internal("shard worker: unexpected frame type " +
                                std::to_string(frame.type));
    }
  }
}

Status ShardWorkerDriver::Finish(ModelProgram* model, TrainReport* report) {
  net::ByteWriter w;
  w.U32(link_->attempt());
  w.F64(model->Objective());
  w.I64(report != nullptr ? report->iterations : 0);
  FML_RETURN_IF_ERROR(link_->conn()->SendFrame(kFrameDone, w.Take()));
  while (true) {
    net::Frame frame;
    const Status st = link_->conn()->RecvFrame(&frame, /*timeout_ms=*/-1);
    // The parent exiting (EOF) is as good as a BYE at this point: the
    // training result is already final on every node.
    if (!st.ok()) return Status::OK();
    if (frame.type == kFrameBye) return Status::OK();
    if (frame.type == kFrameRestart) {
      net::ByteReader r(frame.payload);
      uint32_t new_attempt = 0;
      FML_RETURN_IF_ERROR(r.U32(&new_attempt));
      link_->set_attempt(new_attempt);
      next_seq_ = 0;
      return ShardRestartStatus(new_attempt);
    }
    // Anything else here is a stale frame from this attempt; drop it.
  }
}

// --------------------------------------------------------- coordinator

ProcessShardCoordinator::ProcessShardCoordinator(
    const StrategyOptions& options, Algorithm algorithm,
    const join::NormalizedRelations* rel, storage::BufferPool* pool)
    : options_(options), algorithm_(algorithm), rel_(rel), pool_(pool) {}

ProcessShardCoordinator::~ProcessShardCoordinator() {
  for (Worker& w : workers_) {
    if (w.pid > 0 && w.alive) {
      kill(w.pid, SIGKILL);
      int wstatus = 0;
      waitpid(w.pid, &wstatus, 0);
    }
    w.conn.Close();
  }
  listener_.Close();
}

int ProcessShardCoordinator::live_workers() const {
  int n = 0;
  for (const Worker& w : workers_) n += w.alive ? 1 : 0;
  return n;
}

Status ProcessShardCoordinator::SendJob(Worker* w) {
  ShardJobSpec spec;
  spec.s_path = rel_->s.path();
  for (const auto& a : rel_->attrs) spec.attr_paths.push_back(a.path());
  spec.has_target = rel_->has_target;
  spec.pool_pages = pool_->capacity_pages();
  spec.algorithm = AlgorithmPrefix(algorithm_);
  spec.batch_rows = options_.batch_rows;
  spec.threads = options_.threads;
  spec.morsel_rows = options_.morsel_rows;
  spec.steal = options_.steal;
  spec.prefetch = options_.prefetch;
  spec.prefetch_depth = options_.prefetch_depth;
  spec.shards = options_.shards;
  spec.kernels = static_cast<uint8_t>(options_.kernels);
  spec.shard_timeout_ms = options_.shard_timeout_ms;
  spec.temp_dir =
      options_.temp_dir + "/w" + std::to_string(w->id);  // worker-private
  spec.worker_id = w->id;
  spec.family = options_.shard_job_family;
  spec.family_blob = options_.shard_job_blob;
  spec.delta_encoding = options_.delta_encoding;
  spec.checkpoint_dir = options_.checkpoint_dir;
  spec.checkpoint_every = options_.checkpoint_every;
  return w->conn.SendFrame(kFrameJob, EncodeShardJobSpec(spec));
}

Status ProcessShardCoordinator::SpawnWorkers(int shards) {
  const std::string binary = ResolveWorkerBinary(options_.shard_worker_path);
  // One socket endpoint for the whole crew. Unix-domain under the run's
  // temp dir by default; TCP loopback on request, or as the fallback when
  // the temp path exceeds sun_path.
  if (options_.shard_transport == "tcp") {
    FML_RETURN_IF_ERROR(listener_.ListenTcpLoopback());
  } else {
    const std::string sock_path = options_.temp_dir + "/fmld." +
                                  std::to_string(getpid()) + ".sock";
    Status st = listener_.ListenUnix(sock_path);
    if (!st.ok()) {
      FML_RETURN_IF_ERROR(listener_.ListenTcpLoopback());
    }
  }
  static obs::Counter* spawned = RpcCounter("shard_rpc.workers_spawned");
  workers_.resize(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    Worker& w = workers_[static_cast<size_t>(i)];
    w.id = i;
    const std::string connect_arg = "--connect=" + listener_.address();
    const std::string id_arg = "--worker-id=" + std::to_string(i);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    argv.push_back(const_cast<char*>(connect_arg.c_str()));
    argv.push_back(const_cast<char*>(id_arg.c_str()));
    argv.push_back(nullptr);
    pid_t pid = -1;
    const int rc = posix_spawnp(&pid, binary.c_str(), nullptr, nullptr,
                                argv.data(), environ);
    if (rc != 0) {
      return Status::IoError("failed to spawn shard worker '" + binary +
                             "': " + std::string(strerror(rc)));
    }
    w.pid = pid;
    spawned->Add();
  }
  // Accept + HELLO handshake. Connections arrive in arbitrary order; the
  // HELLO's worker id routes each to its slot.
  const int accept_timeout =
      static_cast<int>(std::max<int64_t>(options_.shard_timeout_ms, 10000));
  for (int i = 0; i < shards; ++i) {
    net::FrameConn conn;
    FML_RETURN_IF_ERROR(listener_.Accept(&conn, accept_timeout));
    net::Frame hello;
    FML_RETURN_IF_ERROR(conn.RecvFrame(&hello, accept_timeout));
    if (hello.type != kFrameHello) {
      return Status::Internal("shard worker handshake: expected HELLO");
    }
    net::ByteReader r(hello.payload);
    uint32_t version = 0;
    int64_t worker_id = 0, pid = 0;
    FML_RETURN_IF_ERROR(r.U32(&version));
    FML_RETURN_IF_ERROR(r.I64(&worker_id));
    FML_RETURN_IF_ERROR(r.I64(&pid));
    if (version != kShardProtocolVersion) {
      return Status::InvalidArgument("shard worker protocol mismatch");
    }
    if (worker_id < 0 || worker_id >= shards ||
        workers_[static_cast<size_t>(worker_id)].alive) {
      return Status::Internal("shard worker handshake: bad worker id " +
                              std::to_string(worker_id));
    }
    Worker& w = workers_[static_cast<size_t>(worker_id)];
    w.conn = std::move(conn);
    w.alive = true;
  }
  for (Worker& w : workers_) {
    FML_RETURN_IF_ERROR(SendJob(&w));
  }
  return Status::OK();
}

Status ProcessShardCoordinator::Init(AccessStrategy* strategy,
                                     const StrategyOptions& options,
                                     TrainReport* report) {
  FML_CHECK_GT(options.shards, 1);
  plan_ = exec::PlanShards(strategy->MorselPlan(), options.shards);
  report_ = report;
  if (report_ != nullptr) {
    report_->shards = std::max(plan_.num_shards(), 1);
    report_->shard_stats.assign(static_cast<size_t>(plan_.num_shards()),
                                TrainReport::ShardStat{});
    for (int k = 0; k < plan_.num_shards(); ++k) {
      report_->shard_stats[static_cast<size_t>(k)].chunk_begin =
          plan_.ChunkSpan(k).begin;
      report_->shard_stats[static_cast<size_t>(k)].chunk_end =
          plan_.ChunkSpan(k).end;
    }
  }
  if (!spawned_) {
    // One worker per effective shard, spawned once; restart attempts
    // reuse the surviving crew (dead workers stay dead — a deterministic
    // fault injection must not re-trigger on a respawned replacement).
    shard_owner_.resize(static_cast<size_t>(plan_.num_shards()));
    for (int s = 0; s < plan_.num_shards(); ++s) shard_owner_[s] = s;
    FML_RETURN_IF_ERROR(SpawnWorkers(plan_.num_shards()));
    spawned_ = true;
  }
  return Status::OK();
}

void ProcessShardCoordinator::MarkDead(Worker* w, const char* reason) {
  static obs::Counter* deaths = RpcCounter("shard_rpc.worker_deaths");
  deaths->Add();
  obs::TraceSpan death_span(obs::kCatRpc, "worker_death");
  death_span.Arg("worker", w->id);
  (void)reason;
  if (w->pid > 0) {
    kill(w->pid, SIGKILL);
    int wstatus = 0;
    waitpid(w->pid, &wstatus, 0);
    w->pid = -1;
  }
  w->conn.Close();
  w->alive = false;
}

std::vector<std::pair<int, std::vector<int>>>
ProcessShardCoordinator::ReassignDeadOwners() {
  static obs::Counter* requeues = RpcCounter("shard_rpc.requeues");
  // Owned-shard counts of the live workers.
  std::vector<int> owned(workers_.size(), 0);
  for (int s = 0; s < plan_.num_shards(); ++s) {
    const int o = shard_owner_[static_cast<size_t>(s)];
    if (workers_[static_cast<size_t>(o)].alive) ++owned[o];
  }
  std::vector<std::pair<int, std::vector<int>>> moved;
  for (int s = 0; s < plan_.num_shards(); ++s) {
    int& o = shard_owner_[static_cast<size_t>(s)];
    if (workers_[static_cast<size_t>(o)].alive) continue;
    // Fewest-owned live worker, lowest id tie-break — deterministic.
    int best = -1;
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i].alive) continue;
      if (best < 0 || owned[i] < owned[static_cast<size_t>(best)]) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return moved;  // no live workers; caller handles
    o = best;
    ++owned[static_cast<size_t>(best)];
    requeues->Add();
    bool found = false;
    for (auto& [dst, list] : moved) {
      if (dst == best) {
        list.push_back(s);
        found = true;
      }
    }
    if (!found) moved.push_back({best, {s}});
  }
  return moved;
}

Status ProcessShardCoordinator::SendPassFrame(Worker* w, uint64_t seq,
                                              int pass,
                                              const std::vector<int>& shards,
                                              uint32_t recover_passes) {
  net::ByteWriter wr;
  wr.U32(attempt_);
  wr.U64(seq);
  wr.I64(pass);
  wr.U32(recover_passes);
  wr.U64(shards.size());
  for (const int s : shards) {
    wr.I64(s);
    wr.I64(plan_.ChunkSpan(s).begin);
    wr.I64(plan_.ChunkSpan(s).end);
  }
  return w->conn.SendFrame(kFramePass, wr.Take());
}

Status ProcessShardCoordinator::InitiateRestart() {
  static obs::Counter* restarts = RpcCounter("shard_rpc.restarts");
  restarts->Add();
  ++attempt_;
  next_seq_ = 0;
  net::ByteWriter w;
  w.U32(attempt_);
  const std::string payload = w.Take();
  for (Worker& worker : workers_) {
    if (!worker.alive) continue;
    if (!worker.conn.SendFrame(kFrameRestart, payload).ok()) {
      MarkDead(&worker, "restart send failed");
    }
  }
  if (live_workers() == 0) {
    return Status::Internal(
        "process shard backend: all workers died; cannot restart");
  }
  return ShardRestartStatus(attempt_);
}

Status ProcessShardCoordinator::RunPass(AccessStrategy* strategy,
                                        const PipelineContext& ctx,
                                        ModelProgram* model, int pass) {
  (void)strategy;
  static obs::Counter* timeouts = RpcCounter("shard_rpc.timeouts");
  if (live_workers() == 0) {
    return Status::Internal("process shard backend: no live workers");
  }
  // Shards whose owner died since their last scan move to a healthy
  // worker now. Mid-iteration the new owner is missing the per-row state
  // of the earlier passes, so its first PASS carries a recovery prologue
  // — possible only while the model vouches for a bare rescan.
  const auto moved = ReassignDeadOwners();
  if (!moved.empty() && pass > 0 && !model->ShardRecoverableAtPass(pass)) {
    return InitiateRestart();
  }
  const uint32_t recover_on_move =
      pass > 0 ? static_cast<uint32_t>(pass) : 0;
  std::vector<bool> moved_shard(static_cast<size_t>(plan_.num_shards()),
                                false);
  for (const auto& [dst, list] : moved) {
    for (const int s : list) moved_shard[static_cast<size_t>(s)] = true;
  }

  const uint64_t seq = next_seq_++;
  MaybeInjectCoordinatorFault(seq);
  obs::TraceSpan pass_span(obs::kCatRpc, "rpc_pass");
  pass_span.Arg("seq", static_cast<int64_t>(seq));
  pass_span.Arg2("pass", pass);

  // Stable spans (recover 0) and freshly moved spans (recover prologue)
  // go out in separate PASS frames; a worker handles any number of PASS
  // frames per seq before the APPLY.
  for (size_t wi = 0; wi < workers_.size(); ++wi) {
    Worker& w = workers_[wi];
    if (!w.alive) continue;
    std::vector<int> stable, acquired;
    for (int s = 0; s < plan_.num_shards(); ++s) {
      if (shard_owner_[static_cast<size_t>(s)] != static_cast<int>(wi)) {
        continue;
      }
      (moved_shard[static_cast<size_t>(s)] ? acquired : stable).push_back(s);
    }
    Status st = Status::OK();
    if (!stable.empty() && st.ok()) {
      st = SendPassFrame(&w, seq, pass, stable, 0);
    }
    if (!acquired.empty() && st.ok()) {
      st = SendPassFrame(&w, seq, pass, acquired, recover_on_move);
    }
    if (!st.ok()) {
      MarkDead(&w, "PASS send failed");
      // Re-enter: reassign this worker's shards and resend. Rare path;
      // recursion depth is bounded by the worker count.
      return RunPass(strategy, ctx, model, pass);
    }
    w.deadline_ms = NowMs() + options_.shard_timeout_ms;
  }

  // Collect one DELTA per shard, detecting death (EOF) and hangs
  // (deadline) as we go.
  std::vector<ShardDelta> deltas(static_cast<size_t>(plan_.num_shards()));
  std::vector<bool> received(static_cast<size_t>(plan_.num_shards()), false);
  int64_t missing = plan_.num_shards();

  const auto handle_death = [&](Worker* w, const char* why) -> Status {
    MarkDead(w, why);
    if (!model->ShardRecoverableAtPass(pass)) {
      return InitiateRestart();
    }
    // Requeue the dead worker's unfinished spans on the least-loaded
    // survivor; already-received deltas from it stay valid.
    const auto groups = ReassignDeadOwners();
    if (live_workers() == 0) {
      return Status::Internal(
          "process shard backend: all workers died mid-pass");
    }
    for (const auto& [dst, list] : groups) {
      std::vector<int> todo;
      for (const int s : list) {
        if (!received[static_cast<size_t>(s)]) todo.push_back(s);
      }
      if (todo.empty()) continue;
      Worker& v = workers_[static_cast<size_t>(dst)];
      const Status st = SendPassFrame(&v, seq, pass, todo,
                                      static_cast<uint32_t>(pass));
      if (!st.ok()) {
        MarkDead(&v, "requeue send failed");
        return Status::Internal(
            "process shard backend: requeue target died; giving up pass");
      }
      v.deadline_ms = NowMs() + options_.shard_timeout_ms;
    }
    return Status::OK();
  };

  while (missing > 0) {
    // Workers we still expect frames from, with the nearest deadline.
    std::vector<net::FrameConn*> conns;
    std::vector<size_t> conn_worker;
    int64_t nearest = INT64_MAX;
    for (size_t wi = 0; wi < workers_.size(); ++wi) {
      Worker& w = workers_[wi];
      if (!w.alive) continue;
      bool awaiting = false;
      for (int s = 0; s < plan_.num_shards(); ++s) {
        if (shard_owner_[static_cast<size_t>(s)] == static_cast<int>(wi) &&
            !received[static_cast<size_t>(s)]) {
          awaiting = true;
          break;
        }
      }
      if (!awaiting) continue;
      conns.push_back(&w.conn);
      conn_worker.push_back(wi);
      nearest = std::min(nearest, w.deadline_ms);
    }
    if (conns.empty()) {
      return Status::Internal(
          "process shard backend: deltas missing with no worker to await");
    }
    const int64_t wait = std::max<int64_t>(1, nearest - NowMs());
    std::vector<size_t> ready;
    FML_RETURN_IF_ERROR(net::PollReadable(
        conns, static_cast<int>(std::min<int64_t>(wait, 60000)), &ready));
    for (const size_t ci : ready) {
      Worker& w = workers_[conn_worker[ci]];
      if (!w.alive) continue;  // killed earlier in this ready sweep
      const Status rd = w.conn.ReadAvailable();
      if (!rd.ok()) {
        FML_RETURN_IF_ERROR(handle_death(&w, rd.message().c_str()));
        continue;
      }
      // Drain every complete frame that arrived.
      while (w.alive) {
        net::Frame frame;
        bool got = false;
        const Status fr = w.conn.NextFrame(&frame, &got);
        if (!fr.ok()) {
          FML_RETURN_IF_ERROR(handle_death(&w, "corrupt frame stream"));
          break;
        }
        if (!got) break;
        w.deadline_ms = NowMs() + options_.shard_timeout_ms;
        if (frame.type == kFrameError) {
          return Status::Internal("shard worker " + std::to_string(w.id) +
                                  " failed: " + frame.payload);
        }
        if (frame.type != kFrameDelta) {
          return Status::Internal(
              "process shard backend: unexpected frame type " +
              std::to_string(frame.type));
        }
        net::ByteReader r(frame.payload);
        uint32_t attempt = 0;
        uint64_t pass_seq = 0;
        int64_t shard = 0;
        double scan_seconds = 0.0;
        storage::IoStats io;
        OpCounters ops;
        ShardDelta delta;
        FML_RETURN_IF_ERROR(r.U32(&attempt));
        FML_RETURN_IF_ERROR(r.U64(&pass_seq));
        FML_RETURN_IF_ERROR(r.I64(&shard));
        FML_RETURN_IF_ERROR(r.F64(&scan_seconds));
        FML_RETURN_IF_ERROR(ReadIoStats(&r, &io));
        FML_RETURN_IF_ERROR(ReadOps(&r, &ops));
        FML_RETURN_IF_ERROR(r.Bytes(&delta.bytes));
        if (attempt != attempt_ || pass_seq != seq) continue;  // stale
        if (shard < 0 || shard >= plan_.num_shards() ||
            received[static_cast<size_t>(shard)]) {
          return Status::Internal(
              "process shard backend: duplicate or bad DELTA shard " +
              std::to_string(shard));
        }
        delta.shard = static_cast<int>(shard);
        delta.chunk_begin = plan_.ChunkSpan(static_cast<int>(shard)).begin;
        delta.chunk_end = plan_.ChunkSpan(static_cast<int>(shard)).end;
        deltas[static_cast<size_t>(shard)] = std::move(delta);
        received[static_cast<size_t>(shard)] = true;
        --missing;
        // Remote op windows fold into this process's counters so the
        // run's op totals match the in-process backend bit-for-bit. The
        // io windows stay per-node: they land in shard_stats only.
        GlobalOps() += ops;
        if (report_ != nullptr) {
          auto& stat = report_->shard_stats[static_cast<size_t>(shard)];
          stat.io += io;
          stat.scan_seconds += scan_seconds;
        }
        static obs::Counter* delta_count =
            RpcCounter("pipeline.shard_deltas");
        static obs::Counter* delta_bytes =
            RpcCounter("pipeline.delta_bytes");
        delta_count->Add();
        delta_bytes->Add(deltas[static_cast<size_t>(shard)].bytes.size());
      }
      // EOF is recorded (not errored) by ReadAvailable; act on it here
      // or the closed socket stays poll-readable and the loop would spin
      // until the deadline. Only a death while deltas are still owed is
      // handled now — a worker that delivered everything and then died
      // is caught by the next pass's send failure.
      if (w.alive && w.conn.eof()) {
        bool owed = false;
        for (int s = 0; s < plan_.num_shards(); ++s) {
          if (shard_owner_[static_cast<size_t>(s)] ==
                  static_cast<int>(conn_worker[ci]) &&
              !received[static_cast<size_t>(s)]) {
            owed = true;
            break;
          }
        }
        if (owed) {
          FML_RETURN_IF_ERROR(handle_death(&w, "peer closed connection"));
        }
      }
    }
    // Deadline sweep: anything silent past its deadline is hung — kill
    // and requeue. (A worker that just produced frames had its deadline
    // refreshed above.)
    const int64_t now = NowMs();
    for (size_t wi = 0; wi < workers_.size(); ++wi) {
      Worker& w = workers_[wi];
      if (!w.alive || now < w.deadline_ms) continue;
      bool awaiting = false;
      for (int s = 0; s < plan_.num_shards(); ++s) {
        if (shard_owner_[static_cast<size_t>(s)] == static_cast<int>(wi) &&
            !received[static_cast<size_t>(s)]) {
          awaiting = true;
          break;
        }
      }
      if (!awaiting) continue;
      timeouts->Add();
      FML_RETURN_IF_ERROR(handle_death(&w, "deadline exceeded"));
    }
  }

  // Broadcast APPLY (shard-id order), then apply + merge locally — the
  // same global-chunk-order reduction as the in-process backend.
  net::ByteWriter aw;
  aw.U32(attempt_);
  aw.U64(seq);
  aw.U64(static_cast<uint64_t>(plan_.num_shards()));
  for (const ShardDelta& d : deltas) {
    aw.I64(d.shard);
    aw.I64(d.chunk_begin);
    aw.I64(d.chunk_end);
    aw.Bytes(d.bytes);
  }
  const std::string apply_payload = aw.Take();
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    if (!w.conn.SendFrame(kFrameApply, apply_payload).ok()) {
      // The pass result is already safe (all deltas held locally); the
      // death is handled at the next pass's reassignment.
      MarkDead(&w, "APPLY send failed");
    }
  }
  obs::TraceSpan merge_span(obs::kCatPipeline, "delta_merge");
  merge_span.Arg("shards", plan_.num_shards());
  for (const ShardDelta& delta : deltas) {
    obs::TraceSpan apply_span(obs::kCatPipeline, "delta_apply");
    apply_span.Arg("shard", delta.shard);
    FML_RETURN_IF_ERROR(ApplyShardDelta(model, pass, delta));
    for (int64_t c = delta.chunk_begin; c < delta.chunk_end; ++c) {
      model->MergeWorker(pass, static_cast<int>(c));
    }
  }
  return Status::OK();
}

Status ProcessShardCoordinator::Finish(ModelProgram* model,
                                       TrainReport* report) {
  (void)report;
  const double expect = model->Objective();
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    bool done = false;
    while (!done) {
      net::Frame frame;
      const Status st = w.conn.RecvFrame(
          &frame, static_cast<int>(options_.shard_timeout_ms));
      if (!st.ok()) {
        // A death this late cannot disturb the result — every delta of
        // every pass is already applied locally. Count it and move on.
        MarkDead(&w, "died before DONE");
        break;
      }
      if (frame.type != kFrameDone) continue;  // stale frame, drop
      net::ByteReader r(frame.payload);
      uint32_t attempt = 0;
      double objective = 0.0;
      int64_t iterations = 0;
      FML_RETURN_IF_ERROR(r.U32(&attempt));
      FML_RETURN_IF_ERROR(r.F64(&objective));
      FML_RETURN_IF_ERROR(r.I64(&iterations));
      if (attempt != attempt_) continue;  // stale DONE from old attempt
      // Bitwise agreement: replicas that executed the same reduction
      // must hold the same doubles. A tolerance here would paper over a
      // lost update; memcmp does not.
      if (std::memcmp(&objective, &expect, sizeof(double)) != 0) {
        return Status::Internal(
            "process shard backend: worker " + std::to_string(w.id) +
            " objective diverged from the coordinator (determinism "
            "breach)");
      }
      done = true;
    }
  }
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    (void)w.conn.SendFrame(kFrameBye, "");
  }
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    int wstatus = 0;
    waitpid(w.pid, &wstatus, 0);
    w.pid = -1;
    w.conn.Close();
    w.alive = false;
  }
  return Status::OK();
}

}  // namespace factorml::core::pipeline

// The M strategy: join once, write T to disk, then drive the model from
// sequential scans of T (full-pass plane, Algorithm 1 of the paper) or
// planned row-range reads of T (mini-batch plane). Page-aligned row-range
// morsels keep every data page owned by exactly one worker.

#include <cstring>
#include <optional>

#include "common/stopwatch.h"
#include "core/pipeline/access_internal.h"
#include "join/batch_plan.h"
#include "join/materialize.h"
#include "storage/table.h"

namespace factorml::core::pipeline::internal {

namespace {

class MaterializedStrategy final : public StrategyBase {
 public:
  using StrategyBase::StrategyBase;

  Algorithm algorithm() const override { return Algorithm::kMaterialized; }

  Status Prepare(PipelineContext* ctx, const std::string& temp_stem) override {
    Stopwatch mat_watch;
    FML_ASSIGN_OR_RETURN(
        storage::Table t,
        join::MaterializeJoin(*rel_, pool_,
                              temp_dir_ + "/m_" + temp_stem + "_T.fml",
                              threads_));
    t_.emplace(std::move(t));
    if (ctx->report != nullptr) {
      ctx->report->materialize_seconds = mat_watch.ElapsedSeconds();
    }
    if (full_pass_) {
      const auto align = static_cast<int64_t>(t_->schema().RowsPerPage());
      BuildWorkers(chunked()
                       ? exec::SplitRowChunks(t_->num_rows(), morsel_rows_,
                                              align)
                       : exec::PartitionRows(t_->num_rows(), threads_, align));
      RecordMorselPlan(ctx);
    }
    return Status::OK();
  }

  Status BeginPass(PipelineContext* ctx) override {
    ctx->views = nullptr;  // T already carries the attribute columns
    return Status::OK();
  }

  Status RunPass(const PipelineContext& ctx, ModelProgram* model,
                 int pass) override {
    const size_t y_off = ctx.rel->has_target ? 1 : 0;
    // One scanner + batch buffer per worker thread, reused across the
    // morsels it executes (the ranges are page-aligned, so whichever
    // worker ends up with a chunk reads the same pages and rows).
    struct Worker {
      std::optional<storage::TableScanner> scan;
      storage::RowBatch batch;
      storage::ColumnStrips strips;
    };
    std::vector<Worker> workers(static_cast<size_t>(pool_workers()));
    FML_RETURN_IF_ERROR(DriveMorsels(
        ctx, [&](exec::Range range, int slot, int w,
                 const exec::Range* next, Status* status) {
          Worker& wk = workers[static_cast<size_t>(w)];
          if (!wk.scan) {
            wk.scan.emplace(&*t_, pools_->Get(w), batch_rows_);
            if (prefetcher() != nullptr) {
              wk.scan->EnablePrefetch(prefetcher(), prefetch_depth_);
            }
          }
          // Overlap the next scheduled chunk's page reads with this
          // chunk's compute (residency-only; see DriveMorsels).
          if (next != nullptr) {
            wk.scan->PrefetchRowRange(next->begin, next->end);
          }
          wk.scan->SetRowRange(range.begin, range.end);
          if (simd_) {
            // Batched decode: the same batches and the same demand page
            // walk, fused straight into column strips (T's feature column
            // 0 is Y, so the strip target column is 0 when present).
            while (wk.scan->NextStrips(kDefaultStripRows, &wk.strips)) {
              if (wk.strips.num_rows == 0) continue;
              DenseBlock block;
              block.start_row = wk.strips.start_row;
              block.num_rows = wk.strips.num_rows;
              block.strips = &wk.strips;
              block.strip_col0 = y_off;
              block.strip_y_col = y_off != 0 ? 0 : -1;
              model->AccumulateDense(pass, slot, block);
            }
            *status = wk.scan->status();
            return;
          }
          while (wk.scan->Next(&wk.batch)) {
            if (wk.batch.num_rows == 0) continue;
            DenseBlock block;
            block.start_row = wk.batch.start_row;
            block.num_rows = wk.batch.num_rows;
            block.x = wk.batch.feats.data() + y_off;
            block.x_stride = wk.batch.feats.cols();
            if (y_off != 0) {
              block.y = wk.batch.feats.data();
              block.y_stride = wk.batch.feats.cols();
            }
            model->AccumulateDense(pass, slot, block);
          }
          *status = wk.scan->status();
        }));
    MergeSlots(model, pass);
    return Status::OK();
  }

  Status RunEpoch(PipelineContext* ctx, ModelProgram* model,
                  int epoch) override {
    const auto order = model->EpochRidOrder(*ctx, epoch);
    const auto plan = join::PlanGroupBatches(ctx->rel->fk1_index, batch_rows_,
                                             order.empty() ? nullptr : &order);
    ctx->views = nullptr;
    FML_RETURN_IF_ERROR(model->BeginEpoch(*ctx, epoch));

    const size_t y_off = ctx->rel->has_target ? 1 : 0;
    const size_t d = ctx->rel->total_dims();
    la::Matrix x;
    std::vector<double> y;
    storage::RowBatch rows;
    storage::ColumnStrips strips;
    for (const auto& batch : plan) {
      const size_t b = static_cast<size_t>(batch.total_rows);
      x.Reshape(b, d);
      y.resize(y_off != 0 ? b : 0);
      size_t filled = 0;
      for (const auto& range : batch.ranges) {
        FML_RETURN_IF_ERROR(t_->ReadRows(ctx->pool, range.start,
                                         static_cast<size_t>(range.count),
                                         &rows));
        for (size_t r = 0; r < rows.num_rows; ++r) {
          // T feature column 0 is Y; the remaining d columns are features.
          if (y_off != 0) y[filled] = rows.feats(r, 0);
          std::memcpy(x.Row(filled).data(), rows.feats.Row(r).data() + y_off,
                      sizeof(double) * d);
          ++filled;
        }
      }
      FML_CHECK_EQ(filled, b);
      DenseBatch dense{&x, &y};
      if (simd_) {
        // Strip-fed epoch plane: transpose the assembled batch (same page
        // walk and IoStats as the row path — the strips are packed from
        // the rows just read, including batches shorter than one strip).
        PackRowsToStrips(x.data(), d, nullptr, 0, b, d, 0, kDefaultStripRows,
                         &strips);
        dense.strips = &strips;
      }
      FML_RETURN_IF_ERROR(model->OnDenseBatch(*ctx, dense));
    }
    return Status::OK();
  }

 private:
  std::optional<storage::Table> t_;
};

}  // namespace

std::unique_ptr<AccessStrategy> MakeMaterialized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass) {
  return std::make_unique<MaterializedStrategy>(rel, pool, options,
                                                full_pass);
}

}  // namespace factorml::core::pipeline::internal

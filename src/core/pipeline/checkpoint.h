#ifndef FACTORML_CORE_PIPELINE_CHECKPOINT_H_
#define FACTORML_CORE_PIPELINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/opcount.h"
#include "common/status.h"

namespace factorml::core::pipeline {

/// CRC32 (IEEE 802.3 reflected polynomial 0xEDB88320), table-driven.
/// Exposed so tests and the bench harness can verify / corrupt blocks.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Everything a training run needs to resume at an iteration boundary
/// bit-identically: the model's iteration state (the flattened
/// ModelProgram::VisitIterationState stream), how many iterations
/// completed, whether convergence already fired, and the op-count delta
/// accumulated since the post-Init mark (recharged on resume so op-count
/// parity with the uninterrupted run holds).
struct CheckpointState {
  std::string label;         // "<M|S|F>-<model>", the run-shape identity
  uint64_t fingerprint = 0;  // config/data hash; mismatch = fresh start
  int64_t completed_iterations = 0;
  bool converged = false;
  OpCounters ops;
  std::vector<double> state;
};

/// <dir>/<label>.ckpt. On-disk layout (native-endian, like ShardDelta):
///   magic "FMLCKPT1"
/// then two length-prefixed CRC-verified blocks, each
///   uint64 byte_count | bytes | uint32 crc32(bytes)
/// block 1: the header (label, fingerprint, completed iterations,
///          converged flag, op counters, state double count), block 2:
///          the raw state doubles. A <label>.ckpt.json sidecar mirrors
///          the header for humans and CI.
std::string CheckpointPath(const std::string& dir, const std::string& label);

/// Atomically (staged .tmp + fsync + rename) writes the checkpoint and
/// its JSON sidecar — a crash mid-write never leaves a torn file, the old
/// checkpoint stays valid until the rename.
Status WriteCheckpoint(const std::string& dir, const CheckpointState& st);

/// NotFound when no checkpoint file exists; InvalidArgument (naming the
/// failing block and CRCs) when one exists but is corrupt or truncated —
/// callers log a warning and train from scratch in that case.
Result<CheckpointState> ReadCheckpoint(const std::string& dir,
                                       const std::string& label);

}  // namespace factorml::core::pipeline

#endif  // FACTORML_CORE_PIPELINE_CHECKPOINT_H_

#ifndef FACTORML_CORE_PIPELINE_ACCESS_STRATEGY_H_
#define FACTORML_CORE_PIPELINE_ACCESS_STRATEGY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline/model_program.h"
#include "exec/shard_plan.h"
#include "join/normalized_relations.h"
#include "la/kernels.h"
#include "storage/buffer_pool.h"

namespace factorml::core::pipeline {

/// Read-ahead window (in batches) of --prefetch without an explicit
/// --prefetch-depth: classic double buffering.
inline constexpr int kDefaultPrefetchDepth = 2;

/// Strip height of the batched (--kernels=simd) decode path: tall enough
/// to amortize the column transpose and keep the batch kernels in their
/// streaming regime, short enough that a strip of a few columns stays in
/// L1/L2 (256 rows x 8 B = 2 KiB per column).
inline constexpr size_t kDefaultStripRows = 256;

/// Knobs shared by every strategy, lifted from the model family's options
/// struct by the Train* wrappers. `threads` may be 0 (= DefaultThreads())
/// when handed to RunTraining, which resolves it via
/// exec::EffectiveThreads before any strategy sees it — the strategies
/// and the PipelineContext always observe the resolved count (>= 1).
struct StrategyOptions {
  size_t batch_rows = 8192;  // rows per streamed/scanned batch
  int threads = 0;           // exec/ workers; 0 = DefaultThreads()
  /// Rows per scheduler chunk for the full-pass plane. 0 (default) keeps
  /// the legacy static partition — one morsel per worker, merged in worker
  /// order, the seed-exact reproduction path. > 0 switches to the
  /// chunk-ordered scheduler: the pass is split into fixed,
  /// deterministically numbered chunks (page-aligned rows for M, whole
  /// FK1 runs for S/F), every chunk accumulates into its own slot, and
  /// the reduction merges in chunk order — so for a fixed morsel_rows the
  /// result is bit-identical for ANY thread count and ANY steal schedule.
  int64_t morsel_rows = 0;
  /// Work stealing over the chunked decomposition: idle workers acquire
  /// chunks from other workers' blocks (lock-free, exec::MorselQueue).
  /// Changes who computes each chunk, never what is merged. Implies
  /// chunking (kDefaultMorselRows) when morsel_rows is unset.
  bool steal = false;
  /// Asynchronous double-buffered page prefetch over the unified I/O
  /// cursor plane (storage::PageCursor / Prefetcher): while a worker
  /// computes on one morsel, the pages of its next scheduled morsel and
  /// of the following `prefetch_depth` batches are landed in its buffer
  /// pool by a background I/O crew. Residency-only by construction —
  /// prefetch never changes values, merge order, op counts, or the demand
  /// read sequence, so results are bit-identical at on and off; only the
  /// page-I/O split (IoStats prefetch_reads / prefetch_hits / stall) and
  /// wall time move. Off by default: the seed goldens pin the
  /// demand-path I/O counts.
  bool prefetch = false;
  /// Batches read ahead per worker when prefetch is on (>= 1).
  int prefetch_depth = kDefaultPrefetchDepth;
  /// Rid-range shards of the full-pass plane (see exec::ShardPlan and
  /// core/pipeline/sharded_driver.h). 1 (default) runs unsharded —
  /// byte-identical to the pre-shard engine. N > 1 splits every full pass
  /// into N contiguous chunk spans, runs one scan per shard, round-trips
  /// each shard's accumulator slots through serialized ShardDelta bytes
  /// (the wire seam a distributed backend plugs into), and merges the
  /// deltas in shard-id order. Sharding implies the chunk-ordered
  /// scheduler (kDefaultMorselRows when morsel_rows is unset); at the same
  /// resolved morsel size the objectives, params, op counts — and, at
  /// deterministic schedules (steal and prefetch off), total page I/O —
  /// are bit-identical to shards = 1 for any thread count. Rejected for
  /// mini-batch (SGD) programs, whose sequential epochs have no
  /// order-free merge.
  int shards = 1;
  /// Compute-kernel backend (la/kernels.h). kScalar (default) keeps the
  /// seed's exact loops and row-at-a-time decode — bit-identical to the
  /// goldens. kSimd selects the best runtime-dispatched vector backend
  /// (AVX2/FMA when the CPU has it, portable vector extensions otherwise)
  /// and switches the full-pass dense drivers to the batched column-strip
  /// decode (kDefaultStripRows). The op counts and the page I/O stream are
  /// identical to scalar by construction — only the floating-point
  /// summation order moves, so objectives and params agree to
  /// reassociation tolerance.
  la::KernelMode kernels = la::KernelMode::kScalar;
  std::string temp_dir = ".";
  /// Execution backend for shards > 1. "inproc" (default) drives shard
  /// scans in this process via ShardedDriver — byte-identical to the
  /// pre-backend engine. "process" forks one factormld worker per shard
  /// and exchanges ShardDelta bytes over length-prefixed socket frames
  /// (core/pipeline/shard_rpc.h); bit-identical results by the same
  /// chunk-ordered merge.
  std::string shard_backend = "inproc";
  /// Per-worker liveness deadline of the process backend, in
  /// milliseconds: a worker producing no frame within it is declared dead
  /// and its unfinished spans are requeued on a healthy worker.
  int64_t shard_timeout_ms = 30000;
  /// Socket family of the process backend: "unix" (default, a socket
  /// under temp_dir) or "tcp" (127.0.0.1, kernel-assigned port).
  std::string shard_transport = "unix";
  /// Explicit path to the factormld worker binary. Empty (default)
  /// resolves via $FACTORMLD, then a sibling of the running executable,
  /// then $PATH.
  std::string shard_worker_path;
  /// Set only inside a factormld worker process: the link back to the
  /// coordinator. RunTraining then follows the coordinator's PASS/APPLY
  /// frames instead of owning the shard schedule. Never set by users.
  class ShardWorkerLink* shard_channel = nullptr;
  /// Family tag + encoded family options for the process backend's JOB
  /// frame (e.g. "gmm" + EncodeShardJob(options)), filled by the Train*
  /// wrappers when shard_backend == "process". Workers decode the blob to
  /// rebuild the exact same ModelProgram.
  std::string shard_job_family;
  std::string shard_job_blob;
  /// ShardDelta payload encoding. "dense" (default) ships every slot
  /// double verbatim (wire format v1, byte-identical to the pre-knob
  /// engine). "sparse" run-length-encodes zero stretches (v2): with
  /// rid-scoped slots most non-owned state never hits the wire, and what
  /// remains is literal doubles — the decoded stream is bit-identical to
  /// dense, so results never move.
  std::string delta_encoding = "dense";
  /// Checkpoint/restore (full-pass plane only). Empty (default) disables.
  /// Non-empty: after every `checkpoint_every` completed iterations the
  /// coordinator atomically writes <dir>/<M|S|F>-<model>.ckpt (CRC32 per
  /// block, staged .tmp + rename) plus a JSON sidecar; a fresh run over
  /// the same configuration restores it and resumes at the next
  /// iteration, bit-identical to the uninterrupted run.
  std::string checkpoint_dir;
  /// Iterations between checkpoint writes; 0 = every iteration when
  /// checkpoint_dir is set.
  int64_t checkpoint_every = 0;
};

/// Chunk size used when stealing or sharding is requested without an
/// explicit --morsel-rows.
inline constexpr int64_t kDefaultMorselRows = 4096;

/// What the ShardedDriver hands a strategy while its shard plane is armed
/// (AccessStrategy::SetShardScan): after each shard's chunk span has been
/// scanned — accumulated into the model's slots, prefetch drained, worker
/// counters folded into the calling thread — the strategy reports it here,
/// still inside RunPass, before the next shard starts. The observer owns
/// everything that happens between scans: per-shard IoStats/timing
/// snapshots and the ShardDelta extraction.
class ShardScanObserver {
 public:
  virtual ~ShardScanObserver() = default;
  virtual Status OnShardScanned(int shard) = 0;
};

/// The data-access plane of the training pipeline: one driver per paper
/// strategy. A strategy owns materialization and temp files (M),
/// attribute-table views and their per-pass reloads (S/F),
/// TableScanner/JoinCursor iteration, page-aligned / FK1-run morsel
/// partitioning, per-worker buffer pools, exec/ dispatch, and the
/// deterministic worker-order merge — everything about *how rows reach the
/// model*, and nothing about the math.
class AccessStrategy {
 public:
  /// `options.threads` must already be resolved (>= 1).
  static Result<std::unique_ptr<AccessStrategy>> Create(
      Algorithm algorithm, const join::NormalizedRelations* rel,
      storage::BufferPool* pool, const StrategyOptions& options,
      bool full_pass);

  virtual ~AccessStrategy() = default;

  virtual Algorithm algorithm() const = 0;

  /// One-time setup: the M strategy joins and materializes T (recording
  /// report->materialize_seconds); S/F verify the FK1 index and carve the
  /// morsel ranges. Full-pass strategies also build their per-worker
  /// buffer pools here, once per training run, so pool contents persist
  /// across passes exactly as a hand-written trainer's would.
  virtual Status Prepare(PipelineContext* ctx, const std::string& temp_stem) = 0;

  /// Accumulator slot count of the full-pass plan, handed to
  /// ModelProgram::BeginPass: the worker count of the static partition in
  /// legacy mode (1 when threads == 1 — the bit-exact serial path), the
  /// chunk count when the chunk-ordered scheduler is active (slot = chunk
  /// id, so the merge order is a data invariant).
  virtual int NumWorkers() const = 0;

  /// Reloads per-pass inputs: S/F load the attribute views (one counted
  /// read of each R table per pass, the paper's per-pass join recompute)
  /// and publish them via ctx->views; M is a no-op.
  virtual Status BeginPass(PipelineContext* ctx) = 0;

  /// One parallel pass over all rows: each worker scans its morsel and
  /// feeds blocks to the model's accumulate hook; per-worker results are
  /// then merged in worker order on the calling thread. With the shard
  /// plane armed (SetShardScan), the scan instead runs shard by shard in
  /// shard-id order — same chunks, same owners, same per-worker cursor
  /// reuse — the observer is notified after each shard, and the merge is
  /// left to the ShardedDriver.
  virtual Status RunPass(const PipelineContext& ctx, ModelProgram* model,
                         int pass) = 0;

  /// The fixed full-pass morsel plan (empty before Prepare and in
  /// mini-batch mode): the chunk list the ShardedDriver splits into
  /// shards.
  virtual const std::vector<exec::Range>& MorselPlan() const = 0;

  /// Arms (plan + observer non-null) or disarms (both null) the shard
  /// plane for subsequent RunPass calls. Only the ShardedDriver calls
  /// this; the plan must be a decomposition of MorselPlan()'s chunk ids
  /// and requires the chunk-ordered scheduler (morsel_rows > 0).
  virtual void SetShardScan(const exec::ShardPlan* plan,
                            ShardScanObserver* observer) = 0;

  /// One mini-batch epoch: plans/streams whole-FK1-group batches in the
  /// model's epoch order and feeds them to the model sequentially (batch
  /// internals parallelize inside the model via ctx.threads).
  virtual Status RunEpoch(PipelineContext* ctx, ModelProgram* model,
                          int epoch) = 0;
};

/// Runs one complete training: validates, measures (ReportScope), creates
/// the strategy, and drives the model program's plane (full-pass or
/// mini-batch) to completion. This is the single orchestration loop behind
/// every trainer in the system.
Status RunTraining(const join::NormalizedRelations& rel, Algorithm algorithm,
                   const StrategyOptions& options, ModelProgram* model,
                   storage::BufferPool* pool, TrainReport* report);

/// Assembles the joined feature vectors of the given fact rows (views are
/// loaded once, each row read through the pool) — the shared deterministic
/// seed-row initialization used by GMM and k-means.
Result<la::Matrix> AssembleJoinedRows(const join::NormalizedRelations& rel,
                                      storage::BufferPool* pool,
                                      const std::vector<int64_t>& rows);

/// Lifts the strategy knobs every model family's options struct carries
/// (batch_rows / threads / temp_dir, by convention) — the one place the
/// Train* wrappers translate family options into StrategyOptions.
template <typename Options>
StrategyOptions LiftStrategyOptions(const Options& options) {
  StrategyOptions sopt;
  sopt.batch_rows = options.batch_rows;
  sopt.threads = options.threads;
  sopt.morsel_rows = options.morsel_rows;
  sopt.steal = options.steal;
  sopt.prefetch = options.prefetch;
  sopt.prefetch_depth = options.prefetch_depth;
  sopt.shards = options.shards;
  sopt.kernels = options.kernels;
  sopt.temp_dir = options.temp_dir;
  sopt.shard_backend = options.shard_backend;
  sopt.shard_timeout_ms = options.shard_timeout_ms;
  sopt.shard_transport = options.shard_transport;
  sopt.shard_worker_path = options.shard_worker_path;
  sopt.delta_encoding = options.delta_encoding;
  sopt.checkpoint_dir = options.checkpoint_dir;
  sopt.checkpoint_every = options.checkpoint_every;
  return sopt;
}

}  // namespace factorml::core::pipeline

#endif  // FACTORML_CORE_PIPELINE_ACCESS_STRATEGY_H_

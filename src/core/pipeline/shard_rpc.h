#ifndef FACTORML_CORE_PIPELINE_SHARD_RPC_H_
#define FACTORML_CORE_PIPELINE_SHARD_RPC_H_

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/pipeline/sharded_driver.h"
#include "net/socket.h"

namespace factorml::core::pipeline {

/// The process shard backend (--shard-backend=process): one factormld
/// worker process per shard, driven over length-prefixed socket frames
/// (net/frame.h) on a Unix-domain or TCP-loopback connection.
///
/// Protocol — a lockstep-replica design. Every node (the coordinating
/// parent and each worker) opens its own views of the on-disk tables,
/// runs the full deterministic training loop, and holds a complete model
/// replica; only the *scans* are partitioned. Per full pass:
///
///   parent:  PASS{spans}  ->  each worker scans its spans and answers
///   worker:  DELTA{ShardDelta bytes + per-shard io/op windows}
///   parent:  collects all deltas (requeueing a dead worker's spans on a
///            healthy one), then APPLY{all deltas in shard-id order}
///   every node applies every delta and replays MergeWorker in global
///   chunk order — the exact reduction of the unsharded run — so model
///   state stays bit-identical on all nodes, and EndPass/EndIteration/
///   convergence are computed locally and agree everywhere.
///
/// At the end each worker reports DONE{objective}; the parent verifies
/// the objectives agree bitwise with its own and sends BYE.
///
/// Failure semantics: a worker death (socket EOF) or hang (no frame
/// within --shard-timeout-ms; the worker is then SIGKILLed) loses only
/// the spans whose DELTAs were not yet received. If the current pass is
/// recoverable (ModelProgram::ShardRecoverableAtPass), the lost spans are
/// requeued on the live worker owning the fewest spans with a
/// recover_passes prologue — the new owner rescans the earlier passes of
/// the iteration over just those spans (slot state extracted and
/// discarded) to rebuild per-row state, then scans the real pass; the
/// requeued DELTA is bit-identical to what the dead worker would have
/// sent. Otherwise the parent broadcasts RESTART and the whole training
/// reruns deterministically on the surviving workers (dead workers stay
/// dead; ownership is sticky). The run fails only when no worker
/// survives or the restart budget is exhausted.
inline constexpr uint32_t kShardProtocolVersion = 1;

enum ShardFrameType : uint32_t {
  kFrameHello = 1,  // worker -> parent: version, worker id, pid
  kFrameJob,        // parent -> worker: dataset paths + resolved options
  kFramePass,       // parent -> worker: scan these spans (maybe recover)
  kFrameDelta,      // worker -> parent: one shard's ShardDelta + windows
  kFrameApply,      // parent -> worker: all deltas, shard-id order
  kFrameRestart,    // parent -> worker: abandon attempt, rerun training
  kFrameDone,       // worker -> parent: converged; objective, iterations
  kFrameBye,        // parent -> worker: shut down cleanly
  kFrameError,      // worker -> parent: fatal error message
};

/// Everything a worker needs to replicate the parent's training run: the
/// on-disk dataset, the resolved strategy knobs, and the model family's
/// own options (an opaque family blob decoded by the family's
/// DecodeShardJob). Carried once in the JOB frame.
struct ShardJobSpec {
  uint32_t version = kShardProtocolVersion;
  std::string s_path;
  std::vector<std::string> attr_paths;
  bool has_target = false;
  uint64_t pool_pages = 0;     // worker buffer-pool capacity (= parent's)
  char algorithm = 'm';        // AlgorithmPrefix char: m / s / f
  // Strategy section — already resolved (threads >= 1, morsel_rows > 0).
  uint64_t batch_rows = 8192;
  int64_t threads = 1;
  int64_t morsel_rows = 0;
  bool steal = false;
  bool prefetch = false;
  int64_t prefetch_depth = 2;
  int64_t shards = 1;
  uint8_t kernels = 0;         // la::KernelMode
  int64_t shard_timeout_ms = 30000;
  std::string temp_dir;        // per-worker subdir, created by the worker
  int64_t worker_id = 0;
  std::string family;          // "gmm" / "linreg" / "kmeans" / "logreg"
  std::string family_blob;     // family EncodeShardJob output
  // Appended fields (still protocol v1: encoder and decoder ship
  // together — coordinator and workers are the same binary build).
  std::string delta_encoding = "dense";  // ShardDelta wire: dense | sparse
  std::string checkpoint_dir;            // worker restores (never writes)
  int64_t checkpoint_every = 0;
};

std::string EncodeShardJobSpec(const ShardJobSpec& spec);
Result<ShardJobSpec> DecodeShardJobSpec(const std::string& bytes);

/// The sentinel a ShardPassDriver returns when the current attempt must
/// be abandoned and training rerun from scratch (non-recoverable worker
/// death). RunTraining's retry loop catches it on the parent; factormld
/// catches it on workers and reruns with a fresh program.
Status ShardRestartStatus(uint32_t next_attempt);
bool IsShardRestart(const Status& status);

/// A worker process's connection back to its coordinator, threaded into
/// RunTraining via StrategyOptions::shard_channel. Owns nothing; the
/// FrameConn lives in factormld's main.
class ShardWorkerLink {
 public:
  ShardWorkerLink(net::FrameConn* conn, int64_t worker_id)
      : conn_(conn), worker_id_(worker_id) {}

  net::FrameConn* conn() { return conn_; }
  int64_t worker_id() const { return worker_id_; }
  /// Current attempt number; bumped when a RESTART frame arrives so the
  /// next RunTraining round sends/accepts frames of the new attempt.
  uint32_t attempt() const { return attempt_; }
  void set_attempt(uint32_t a) { attempt_ = a; }

 private:
  net::FrameConn* conn_;
  int64_t worker_id_ = 0;
  uint32_t attempt_ = 0;
};

/// Worker-side ShardPassDriver: instead of owning the shard schedule, it
/// follows the coordinator's PASS frames — scans the assigned spans
/// through the strategy's armed shard plane, ships each span's ShardDelta
/// (with its io/op windows), then applies the broadcast APPLY exactly as
/// the parent does. Its local shard plan is its own PlanShards over the
/// identical morsel plan, verified span-by-span against every PASS frame.
class ShardWorkerDriver : public ShardPassDriver,
                          public ShardScanObserver {
 public:
  explicit ShardWorkerDriver(ShardWorkerLink* link) : link_(link) {}

  Status Init(AccessStrategy* strategy, const StrategyOptions& options,
              TrainReport* report) override;
  Status RunPass(AccessStrategy* strategy, const PipelineContext& ctx,
                 ModelProgram* model, int pass) override;
  /// Sends DONE{objective, iterations} and waits for BYE (EOF counts as
  /// a shutdown too). A RESTART here propagates as the restart sentinel.
  Status Finish(ModelProgram* model, TrainReport* report) override;
  const exec::ShardPlan& plan() const override { return plan_; }

  /// ShardScanObserver over the currently armed (local) sub-plan.
  Status OnShardScanned(int local_shard) override;

 private:
  struct AssignedSpan {
    int64_t shard = 0;  // global shard id
    exec::Range chunks{0, 0};
  };
  struct PassCmd {
    uint32_t attempt = 0;
    uint64_t pass_seq = 0;
    int64_t pass = 0;
    uint32_t recover_passes = 0;
    std::vector<AssignedSpan> spans;
  };
  Status DecodePass(const std::string& payload, PassCmd* cmd);
  Status RunAssigned(AccessStrategy* strategy, const PipelineContext& ctx,
                     ModelProgram* model, int pass, const PassCmd& cmd);
  void MaybeInjectFault(uint64_t pass_seq);

  ShardWorkerLink* link_;
  bool sparse_deltas_ = false;
  exec::ShardPlan plan_;        // full global plan (all shards)
  exec::ShardPlan scan_plan_;   // the sub-plan currently armed
  std::vector<int64_t> scan_shards_;  // global shard id per local index
  bool discard_scan_ = false;   // recovery prologue: extract and drop
  uint64_t next_seq_ = 0;
  TrainReport* report_ = nullptr;
  ModelProgram* model_ = nullptr;
  int pass_ = 0;
  // Per-scanned-span results of the armed RunPass, keyed by local index.
  struct SpanResult {
    int64_t shard = 0;
    ShardDelta delta;
    double scan_seconds = 0.0;
    storage::IoStats io;
    OpCounters ops;
  };
  std::vector<SpanResult> results_;
  storage::IoStats io_mark_;
  OpCounters ops_mark_;
  Stopwatch scan_watch_;
};

/// Parent-side ShardPassDriver: spawns one factormld per shard, feeds
/// every pass over the sockets, folds the returned op windows into this
/// process's counters (op-count parity with the in-process backend) and
/// the io windows into TrainReport::shard_stats (per-node I/O), applies
/// and merges the deltas locally in global chunk order, and broadcasts
/// APPLY so the replicas stay bit-identical. Survives worker deaths as
/// described above. Workers are spawned once and reused across restart
/// attempts; dead workers are never respawned.
class ProcessShardCoordinator : public ShardPassDriver {
 public:
  ProcessShardCoordinator(const StrategyOptions& options, Algorithm algorithm,
                          const join::NormalizedRelations* rel,
                          storage::BufferPool* pool);
  ~ProcessShardCoordinator() override;

  Status Init(AccessStrategy* strategy, const StrategyOptions& options,
              TrainReport* report) override;
  Status RunPass(AccessStrategy* strategy, const PipelineContext& ctx,
                 ModelProgram* model, int pass) override;
  Status Finish(ModelProgram* model, TrainReport* report) override;
  const exec::ShardPlan& plan() const override { return plan_; }

  uint32_t attempt() const { return attempt_; }
  int live_workers() const;

 private:
  struct Worker {
    int64_t id = 0;
    pid_t pid = -1;
    net::FrameConn conn;
    bool alive = false;
    int64_t deadline_ms = 0;  // steady-clock ms; refreshed on every frame
  };
  Status SpawnWorkers(int shards);
  Status SendJob(Worker* w);
  Status SendPassFrame(Worker* w, uint64_t seq, int pass,
                       const std::vector<int>& shards,
                       uint32_t recover_passes);
  /// Marks `w` dead (SIGKILL if still running, waitpid, close). Returns
  /// the shards it owned.
  void MarkDead(Worker* w, const char* reason);
  /// Reassigns every dead-owned shard to the live worker with the fewest
  /// owned shards (lowest id tie-break). Returns the reassigned shards
  /// grouped by new owner.
  std::vector<std::pair<int, std::vector<int>>> ReassignDeadOwners();
  Status InitiateRestart();

  StrategyOptions options_;
  Algorithm algorithm_;
  const join::NormalizedRelations* rel_;
  storage::BufferPool* pool_;

  exec::ShardPlan plan_;
  TrainReport* report_ = nullptr;
  bool spawned_ = false;
  net::Listener listener_;
  std::vector<Worker> workers_;
  std::vector<int> shard_owner_;  // shard id -> index into workers_
  uint32_t attempt_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace factorml::core::pipeline

#endif  // FACTORML_CORE_PIPELINE_SHARD_RPC_H_

#ifndef FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_
#define FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline/access_strategy.h"
#include "exec/morsel_queue.h"
#include "exec/parallel_for.h"
#include "exec/worker_pools.h"
#include "join/attribute_view.h"
#include "obs/trace.h"
#include "storage/page_cursor.h"

namespace factorml::core::pipeline::internal {

/// State shared by the three strategy drivers: the relations, the caller's
/// buffer pool, the full-pass morsel plan and the per-worker pools (built
/// once per training run so private pool contents persist across passes,
/// exactly like the hand-written trainers' WorkerPools did).
///
/// Two scheduling modes share one plan representation (`ranges_`):
///  - legacy (morsel_rows == 0): one static range per worker, accumulator
///    slot == worker, merged in worker order — the seed-exact path;
///  - chunked (morsel_rows > 0): fixed deterministically numbered chunks,
///    slot == chunk id, workers acquire chunks from the MorselQueue (with
///    stealing when enabled) and the reduction merges in chunk order, so
///    the result is invariant under thread count and steal schedule.
class StrategyBase : public AccessStrategy {
 public:
  int NumWorkers() const override { return nw_; }

  const std::vector<exec::Range>& MorselPlan() const override {
    return ranges_;
  }

  void SetShardScan(const exec::ShardPlan* plan,
                    ShardScanObserver* observer) override {
    FML_CHECK((plan == nullptr) == (observer == nullptr));
    FML_CHECK(plan == nullptr || chunked())
        << "sharding requires the chunk-ordered scheduler";
    shard_plan_ = plan;
    shard_observer_ = observer;
  }

  StrategyBase(const join::NormalizedRelations* rel,
               storage::BufferPool* pool, const StrategyOptions& options,
               bool full_pass)
      : rel_(rel),
        pool_(pool),
        batch_rows_(options.batch_rows),
        temp_dir_(options.temp_dir),
        threads_(options.threads),
        morsel_rows_(options.morsel_rows),
        steal_(options.steal),
        prefetch_(options.prefetch),
        prefetch_depth_(options.prefetch_depth < 1 ? 1
                                                   : options.prefetch_depth),
        simd_(options.kernels == la::KernelMode::kSimd),
        full_pass_(full_pass) {}

  /// Chunk-ordered scheduler active? (RunTraining resolves steal-without-
  /// morsel-rows to kDefaultMorselRows before strategies are created.)
  bool chunked() const { return morsel_rows_ > 0; }

  /// Scanner/cursor states and buffer pools one pass needs: the actual
  /// worker threads in chunked mode, one per static range otherwise.
  int pool_workers() const { return chunked() ? threads_ : nw_; }

  /// Installs the full-pass morsel plan — the per-worker static partition
  /// (legacy) or the deterministic chunk list (chunked). NumWorkers()
  /// becomes the accumulator slot count handed to ModelProgram::BeginPass.
  /// Also brings up the async I/O plane when prefetch is on: one
  /// Prefetcher serves every worker of the run (each request lands in the
  /// issuing worker's own pool).
  void BuildWorkers(std::vector<exec::Range> ranges) {
    ranges_ = std::move(ranges);
    nw_ = ranges_.empty() ? 1 : static_cast<int>(ranges_.size());
    pools_ = std::make_unique<exec::WorkerPools>(pool_, pool_workers());
    if (prefetch_ && prefetcher_ == nullptr) {
      // Wide (and capped) arithmetic: --prefetch-depth accepts anything
      // up to INT_MAX, and an in-flight cap beyond a few per worker buys
      // nothing.
      const int64_t inflight = std::min<int64_t>(
          1024, 2ll * pool_workers() * prefetch_depth_);
      prefetcher_ =
          std::make_unique<storage::Prefetcher>(static_cast<int>(inflight));
    }
  }

  /// The async plane, or null when --prefetch=off. Strategies attach it
  /// to their per-worker scanners/cursors (EnablePrefetch).
  storage::Prefetcher* prefetcher() const { return prefetcher_.get(); }

  /// Publishes the plan shape to the report (called from Prepare).
  void RecordMorselPlan(PipelineContext* ctx) const {
    if (ctx->report != nullptr) {
      ctx->report->morsel_chunks =
          chunked() ? static_cast<int64_t>(ranges_.size()) : 0;
    }
  }

  /// Drives one full pass over the morsel plan: body(range, slot, worker,
  /// next, status-slot) runs once per morsel; the caller then merges slots
  /// 0..NumWorkers()-1 in order. Legacy mode runs each worker's one static
  /// range (slot == worker); chunked mode lets workers acquire chunks from
  /// the scheduler, stealing when enabled (slot = chunk id). Steal counts
  /// and per-worker busy time accumulate into ctx.report; the returned
  /// status is the first error in slot order.
  ///
  /// `next` is the range of the worker's next scheduled chunk — the front
  /// of its own MorselQueue block, known deterministically from the morsel
  /// plan — or null at the block end, in legacy mode, or with prefetch
  /// off. Strategies hand it to the cursor plane so the next chunk's pages
  /// load while this chunk computes. (A stolen chunk's successor may
  /// belong to another worker's block; prefetch is then skipped rather
  /// than landed in the wrong worker's pool — residency is best-effort.)
  /// All prefetch requests are drained before returning, so the pass
  /// dispatcher's I/O delta covers them and no request outlives the pass.
  template <typename Body>
  Status DriveMorsels(const PipelineContext& ctx, const Body& body) {
    std::vector<Status> slot_status(static_cast<size_t>(nw_));
    // Static chunk ownership, same split as the MorselQueue's blocks.
    const std::vector<exec::Range> owned =
        (chunked() && prefetcher_ != nullptr)
            ? exec::PartitionRows(static_cast<int64_t>(ranges_.size()),
                                  pool_workers())
            : std::vector<exec::Range>{};
    const auto run_span = [&](exec::Range span) {
      // One "scan" span per scheduled chunk span: the whole plan when
      // unsharded, one per shard otherwise (nested under its shard_scan).
      obs::TraceSpan scan_span(obs::kCatPipeline, "scan");
      scan_span.Arg("chunk_begin", span.begin);
      scan_span.Arg2("chunk_end", span.end);
      const exec::MorselStats stats = exec::RunMorselSpan(
          ranges_, span, pool_workers(), chunked() && steal_,
          [&](exec::Range range, int64_t chunk, int worker) {
            const exec::Range* next = nullptr;
            const auto w = static_cast<size_t>(worker);
            if (w < owned.size() && chunk >= owned[w].begin &&
                chunk + 1 < std::min(owned[w].end, span.end)) {
              next = &ranges_[static_cast<size_t>(chunk) + 1];
            }
            body(range, static_cast<int>(chunk), worker, next,
                 &slot_status[static_cast<size_t>(chunk)]);
          });
      if (prefetcher_ != nullptr) prefetcher_->Drain();
      if (ctx.report != nullptr) {
        ctx.report->steals += stats.steals;
        auto& busy = ctx.report->worker_busy_seconds;
        if (busy.size() < stats.busy_seconds.size()) {
          busy.resize(stats.busy_seconds.size(), 0.0);
        }
        for (size_t w = 0; w < stats.busy_seconds.size(); ++w) {
          busy[w] += stats.busy_seconds[w];
        }
      }
    };
    if (shard_plan_ == nullptr) {
      run_span(exec::Range{0, static_cast<int64_t>(ranges_.size())});
      return exec::FirstError(slot_status);
    }
    // Shard plane armed: scan shard by shard in shard-id order. Ownership
    // blocks stay global (RunMorselSpan), so each worker visits its chunks
    // — and fills its buffer pool — in the same ascending order as the
    // unsharded run; the observer snapshots I/O and extracts the shard's
    // ShardDelta between spans, and the merge is left to the driver.
    for (int shard = 0; shard < shard_plan_->num_shards(); ++shard) {
      obs::TraceSpan shard_span(obs::kCatPipeline, "shard_scan");
      shard_span.Arg("shard", shard);
      run_span(shard_plan_->ChunkSpan(shard));
      FML_RETURN_IF_ERROR(shard_observer_->OnShardScanned(shard));
    }
    return exec::FirstError(slot_status);
  }

  /// The unsharded chunk-order reduction: merges slots 0..NumWorkers()-1
  /// on the calling thread. A no-op while the shard plane is armed — the
  /// ShardedDriver owns the merge there (delta round-trip first, same
  /// global slot order).
  void MergeSlots(ModelProgram* model, int pass) const {
    if (shard_plan_ != nullptr) return;
    for (int w = 0; w < nw_; ++w) model->MergeWorker(pass, w);
  }

  const join::NormalizedRelations* rel_;
  storage::BufferPool* pool_;
  size_t batch_rows_;
  std::string temp_dir_;
  int threads_;
  int64_t morsel_rows_;
  bool steal_;
  bool prefetch_;
  int prefetch_depth_;
  /// --kernels=simd: feed the model column-major strips (batched decode /
  /// assembly transpose) instead of row pointers. The la/ backend switch
  /// itself is global (la::SelectKernels, done once by RunTraining).
  bool simd_;
  bool full_pass_;
  std::vector<exec::Range> ranges_;
  int nw_ = 1;
  /// Armed by the ShardedDriver for the duration of a sharded RunPass.
  const exec::ShardPlan* shard_plan_ = nullptr;
  ShardScanObserver* shard_observer_ = nullptr;
  std::unique_ptr<exec::WorkerPools> pools_;
  /// Declared after pools_ so destruction drains the crew (Prefetcher's
  /// destructor) before the per-worker pools its requests land in go away.
  std::unique_ptr<storage::Prefetcher> prefetcher_;
};

/// Common ground of the S and F strategies: both stream the join through
/// JoinCursor over FK1-run morsels and reload the attribute views at every
/// pass / epoch (the per-pass join recompute of Fig. 1(b)/(c)).
class JoinStreamStrategyBase : public StrategyBase {
 public:
  Status Prepare(PipelineContext* ctx, const std::string& temp_stem) override {
    (void)temp_stem;
    FML_CHECK_GT(rel_->fk1_index.num_rids(), 0) << "BuildIndex() not called";
    views_.resize(rel_->num_joins());
    if (full_pass_) {
      BuildWorkers(chunked()
                       ? join::ChunkFk1Runs(rel_->fk1_index, morsel_rows_)
                       : join::PartitionFk1Runs(rel_->fk1_index, threads_));
      RecordMorselPlan(ctx);
      // S/F morsels are whole FK1 runs: every slot's range is a contiguous
      // span of table-0 rid positions in both scheduling modes, so the
      // plan doubles as the rid-span contract (PipelineContext docs).
      ctx->slot_rid_spans = &ranges_;
    }
    return Status::OK();
  }

  Status BeginPass(PipelineContext* ctx) override {
    FML_RETURN_IF_ERROR(LoadViews());
    ctx->views = &views_;
    return Status::OK();
  }

  using StrategyBase::StrategyBase;

 protected:
  Status LoadViews() {
    for (size_t i = 0; i < rel_->num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views_[i].Load(rel_->attrs[i], pool_));
    }
    return Status::OK();
  }

  std::vector<join::AttributeTableView> views_;
};

/// Transposes `num_rows` assembled rows into the column-strip layout the
/// batch kernels consume — the S/F drivers' counterpart of the M
/// strategy's fused PageCursor::ReadStrips decode. When `y` is non-null it
/// becomes strip column 0 (matching T's layout, where the target is
/// feature column 0) and the x columns shift up by one.
inline void PackRowsToStrips(const double* x, size_t x_stride,
                             const double* y, size_t y_stride,
                             size_t num_rows, size_t d, int64_t start_row,
                             size_t strip_rows, storage::ColumnStrips* out) {
  const size_t y_off = y != nullptr ? 1 : 0;
  out->strip_rows = strip_rows;
  out->num_strips = (num_rows + strip_rows - 1) / strip_rows;
  out->num_rows = num_rows;
  out->num_cols = d + y_off;
  out->num_keys = 0;
  out->start_row = start_row;
  out->keys.clear();
  out->data.resize(out->num_strips * out->num_cols * strip_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    double* strip0 = out->data.data() +
                     (r / strip_rows) * out->num_cols * strip_rows +
                     r % strip_rows;
    if (y_off != 0) strip0[0] = y[r * y_stride];
    const double* row = x + r * x_stride;
    for (size_t j = 0; j < d; ++j) {
      strip0[(y_off + j) * strip_rows] = row[j];
    }
  }
}

std::unique_ptr<AccessStrategy> MakeMaterialized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);
std::unique_ptr<AccessStrategy> MakeStreaming(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);
std::unique_ptr<AccessStrategy> MakeFactorized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);

}  // namespace factorml::core::pipeline::internal

#endif  // FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_

#ifndef FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_
#define FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline/access_strategy.h"
#include "exec/parallel_for.h"
#include "exec/worker_pools.h"
#include "join/attribute_view.h"

namespace factorml::core::pipeline::internal {

/// State shared by the three strategy drivers: the relations, the caller's
/// buffer pool, the morsel partition and the per-worker pools (built once
/// per training run so private pool contents persist across passes, exactly
/// like the hand-written trainers' WorkerPools did).
class StrategyBase : public AccessStrategy {
 public:
  int NumWorkers() const override { return nw_; }

  StrategyBase(const join::NormalizedRelations* rel,
               storage::BufferPool* pool, const StrategyOptions& options,
               bool full_pass)
      : rel_(rel),
        pool_(pool),
        batch_rows_(options.batch_rows),
        temp_dir_(options.temp_dir),
        threads_(options.threads),
        full_pass_(full_pass) {}

  void BuildWorkers(std::vector<exec::Range> ranges) {
    ranges_ = std::move(ranges);
    nw_ = ranges_.empty() ? 1 : static_cast<int>(ranges_.size());
    pools_ = std::make_unique<exec::WorkerPools>(pool_, nw_);
  }

  const join::NormalizedRelations* rel_;
  storage::BufferPool* pool_;
  size_t batch_rows_;
  std::string temp_dir_;
  int threads_;
  bool full_pass_;
  std::vector<exec::Range> ranges_;
  int nw_ = 1;
  std::unique_ptr<exec::WorkerPools> pools_;
};

/// Common ground of the S and F strategies: both stream the join through
/// JoinCursor over FK1-run morsels and reload the attribute views at every
/// pass / epoch (the per-pass join recompute of Fig. 1(b)/(c)).
class JoinStreamStrategyBase : public StrategyBase {
 public:
  Status Prepare(PipelineContext* ctx, const std::string& temp_stem) override {
    (void)ctx, (void)temp_stem;
    FML_CHECK_GT(rel_->fk1_index.num_rids(), 0) << "BuildIndex() not called";
    views_.resize(rel_->num_joins());
    if (full_pass_) {
      BuildWorkers(join::PartitionFk1Runs(rel_->fk1_index, threads_));
    }
    return Status::OK();
  }

  Status BeginPass(PipelineContext* ctx) override {
    FML_RETURN_IF_ERROR(LoadViews());
    ctx->views = &views_;
    return Status::OK();
  }

  using StrategyBase::StrategyBase;

 protected:
  Status LoadViews() {
    for (size_t i = 0; i < rel_->num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views_[i].Load(rel_->attrs[i], pool_));
    }
    return Status::OK();
  }

  std::vector<join::AttributeTableView> views_;
};

std::unique_ptr<AccessStrategy> MakeMaterialized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);
std::unique_ptr<AccessStrategy> MakeStreaming(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);
std::unique_ptr<AccessStrategy> MakeFactorized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass);

}  // namespace factorml::core::pipeline::internal

#endif  // FACTORML_CORE_PIPELINE_ACCESS_INTERNAL_H_

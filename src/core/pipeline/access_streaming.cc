// The S strategy: recompute the join on the fly every pass/epoch — reload
// the attribute tables (build side), stream S (probe side) and assemble
// each joined tuple into a full d-vector before it enters the model
// (Fig. 1(b) of the paper). Morsels are whole FK1 runs so each worker's
// scan of S stays a sequential range read.

#include <optional>

#include "core/pipeline/access_internal.h"
#include "join/assemble.h"
#include "join/join_cursor.h"

namespace factorml::core::pipeline::internal {

namespace {

class StreamingStrategy final : public JoinStreamStrategyBase {
 public:
  using JoinStreamStrategyBase::JoinStreamStrategyBase;

  Algorithm algorithm() const override { return Algorithm::kStreaming; }

  Status RunPass(const PipelineContext& ctx, ModelProgram* model,
                 int pass) override {
    const size_t y_off = ctx.rel->has_target ? 1 : 0;
    const size_t d = ctx.rel->total_dims();
    // One join cursor + assembly buffer per worker thread, reused across
    // the FK1-run morsels it executes.
    struct Worker {
      std::optional<join::JoinCursor> cursor;
      join::JoinBatch batch;
      la::Matrix xbuf;
      std::vector<double> ybuf;
      storage::ColumnStrips strips;
    };
    std::vector<Worker> workers(static_cast<size_t>(pool_workers()));
    FML_RETURN_IF_ERROR(DriveMorsels(
        ctx, [&](exec::Range range, int slot, int w,
                 const exec::Range* next, Status* status) {
          Worker& wk = workers[static_cast<size_t>(w)];
          if (!wk.cursor) {
            wk.cursor.emplace(ctx.rel, pools_->Get(w), batch_rows_);
            if (prefetcher() != nullptr) {
              wk.cursor->EnablePrefetch(prefetcher(), prefetch_depth_);
            }
          }
          // Overlap the next scheduled chunk's S-run reads with this
          // chunk's compute (residency-only; see DriveMorsels).
          if (next != nullptr) {
            wk.cursor->PrefetchPositionRange(next->begin, next->end);
          }
          wk.cursor->SetPositionRange(range.begin, range.end);
          while (wk.cursor->Next(&wk.batch)) {
            const size_t b = wk.batch.s_rows.num_rows;
            if (b == 0) continue;
            wk.xbuf.Reshape(b, d);
            if (y_off != 0) wk.ybuf.resize(b);
            for (size_t r = 0; r < b; ++r) {
              if (y_off != 0) wk.ybuf[r] = wk.batch.s_rows.feats(r, 0);
              join::AssembleJoinedRow(*ctx.rel, wk.batch.s_rows, r, views_,
                                      wk.xbuf.Row(r).data());
            }
            DenseBlock block;
            block.start_row = wk.batch.s_rows.start_row;
            block.num_rows = b;
            block.x = wk.xbuf.data();
            block.x_stride = d;
            if (y_off != 0) {
              block.y = wk.ybuf.data();
              block.y_stride = 1;
            }
            if (simd_) {
              // Batched path: transpose the assembled rows into column
              // strips (target at strip column 0, like T's layout).
              PackRowsToStrips(wk.xbuf.data(), d,
                               y_off != 0 ? wk.ybuf.data() : nullptr, 1, b,
                               d, block.start_row, kDefaultStripRows,
                               &wk.strips);
              block.strips = &wk.strips;
              block.strip_col0 = y_off;
              block.strip_y_col = y_off != 0 ? 0 : -1;
            }
            model->AccumulateDense(pass, slot, block);
          }
          *status = wk.cursor->status();
        }));
    MergeSlots(model, pass);
    return Status::OK();
  }

  Status RunEpoch(PipelineContext* ctx, ModelProgram* model,
                  int epoch) override {
    FML_RETURN_IF_ERROR(LoadViews());
    ctx->views = &views_;
    join::JoinCursor cursor(ctx->rel, pool_, batch_rows_);
    auto order = model->EpochRidOrder(*ctx, epoch);
    if (!order.empty()) cursor.SetRidOrder(std::move(order));
    FML_RETURN_IF_ERROR(model->BeginEpoch(*ctx, epoch));

    const size_t y_off = ctx->rel->has_target ? 1 : 0;
    const size_t d = ctx->rel->total_dims();
    la::Matrix x;
    std::vector<double> y;
    storage::ColumnStrips strips;
    join::JoinBatch batch;
    while (cursor.Next(&batch)) {
      const size_t b = batch.s_rows.num_rows;
      if (b == 0) continue;
      x.Reshape(b, d);
      y.resize(y_off != 0 ? b : 0);
      {
        // On-the-fly join: assemble the full joined tuples, row-parallel
        // (pure data movement against shared read-only views).
        PhaseScope phase(ctx->report, "assemble");
        exec::ParallelFor(
            ctx->threads, static_cast<int64_t>(b), /*align=*/1,
            [&](exec::Range rg, int) {
              for (int64_t r = rg.begin; r < rg.end; ++r) {
                if (y_off != 0) {
                  y[static_cast<size_t>(r)] =
                      batch.s_rows.feats(static_cast<size_t>(r), 0);
                }
                join::AssembleJoinedRow(*ctx->rel, batch.s_rows,
                                        static_cast<size_t>(r), views_,
                                        x.Row(static_cast<size_t>(r)).data());
              }
            });
      }
      DenseBatch dense{&x, &y};
      if (simd_) {
        // Strip-fed epoch plane: pack the assembled batch into strips
        // (short batches included — the pack handles any row count), so
        // the model's epoch math runs as batch matrix products.
        PackRowsToStrips(x.data(), d, nullptr, 0, b, d, 0, kDefaultStripRows,
                         &strips);
        dense.strips = &strips;
      }
      FML_RETURN_IF_ERROR(model->OnDenseBatch(*ctx, dense));
    }
    return cursor.status();
  }
};

}  // namespace

std::unique_ptr<AccessStrategy> MakeStreaming(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass) {
  return std::make_unique<StreamingStrategy>(rel, pool, options,
                                             full_pass);
}

}  // namespace factorml::core::pipeline::internal

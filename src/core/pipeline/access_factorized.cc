// The F strategy: push the model through the join. Rows are delivered in
// normalized form — the S slice plus foreign keys, grouped by R1 rid —
// and the model reaches attribute features through the resident views,
// reusing per-attribute-tuple work across all matching fact tuples
// (Fig. 1(c) / Fig. 2 of the paper). Morsels are whole FK1 runs so the
// per-R-tuple reuse is preserved within each worker.

#include <optional>

#include "core/pipeline/access_internal.h"
#include "join/join_cursor.h"

namespace factorml::core::pipeline::internal {

namespace {

class FactorizedStrategy final : public JoinStreamStrategyBase {
 public:
  using JoinStreamStrategyBase::JoinStreamStrategyBase;

  Algorithm algorithm() const override { return Algorithm::kFactorized; }

  Status RunPass(const PipelineContext& ctx, ModelProgram* model,
                 int pass) override {
    // One join cursor per worker thread, reused across the FK1-run
    // morsels it executes (runs are atomic, so whichever worker ends up
    // with a chunk delivers the same groups and preserves the per-R-tuple
    // reuse).
    struct Worker {
      std::optional<join::JoinCursor> cursor;
      join::JoinBatch batch;
      storage::ColumnStrips s_strips;
    };
    std::vector<Worker> workers(static_cast<size_t>(pool_workers()));
    FML_RETURN_IF_ERROR(DriveMorsels(
        ctx, [&](exec::Range range, int slot, int w,
                 const exec::Range* next, Status* status) {
          Worker& wk = workers[static_cast<size_t>(w)];
          if (!wk.cursor) {
            wk.cursor.emplace(ctx.rel, pools_->Get(w), batch_rows_);
            if (prefetcher() != nullptr) {
              wk.cursor->EnablePrefetch(prefetcher(), prefetch_depth_);
            }
          }
          // Overlap the next scheduled chunk's S-run reads with this
          // chunk's compute (residency-only; see DriveMorsels).
          if (next != nullptr) {
            wk.cursor->PrefetchPositionRange(next->begin, next->end);
          }
          wk.cursor->SetPositionRange(range.begin, range.end);
          while (wk.cursor->Next(&wk.batch)) {
            if (wk.batch.s_rows.num_rows == 0) continue;
            FactorizedBlock block{&wk.batch.s_rows, &wk.batch.groups};
            if (simd_) {
              // Batched path: the S-slice columns as strips (a straight
              // transpose of s_rows.feats — no target special-casing, the
              // model knows the S-slice layout). Group-structured
              // attribute work stays row-at-a-time.
              const storage::RowBatch& s = wk.batch.s_rows;
              PackRowsToStrips(s.feats.data(), s.feats.cols(),
                               /*y=*/nullptr, 0, s.num_rows, s.feats.cols(),
                               s.start_row, kDefaultStripRows,
                               &wk.s_strips);
              block.s_strips = &wk.s_strips;
            }
            model->AccumulateFactorized(pass, slot, block);
          }
          *status = wk.cursor->status();
        }));
    MergeSlots(model, pass);
    return Status::OK();
  }

  Status RunEpoch(PipelineContext* ctx, ModelProgram* model,
                  int epoch) override {
    FML_RETURN_IF_ERROR(LoadViews());
    ctx->views = &views_;
    join::JoinCursor cursor(ctx->rel, pool_, batch_rows_);
    auto order = model->EpochRidOrder(*ctx, epoch);
    if (!order.empty()) cursor.SetRidOrder(std::move(order));
    FML_RETURN_IF_ERROR(model->BeginEpoch(*ctx, epoch));

    join::JoinBatch batch;
    storage::ColumnStrips s_strips;
    while (cursor.Next(&batch)) {
      if (batch.s_rows.num_rows == 0) continue;
      FactorizedBlock block{&batch.s_rows, &batch.groups};
      if (simd_) {
        // Strip-fed epoch plane: the S slice as strips, same transpose as
        // RunPass (short mini-batches pack into one partial strip).
        const storage::RowBatch& s = batch.s_rows;
        PackRowsToStrips(s.feats.data(), s.feats.cols(), /*y=*/nullptr, 0,
                         s.num_rows, s.feats.cols(), s.start_row,
                         kDefaultStripRows, &s_strips);
        block.s_strips = &s_strips;
      }
      FML_RETURN_IF_ERROR(model->OnFactorizedBatch(*ctx, block));
    }
    return cursor.status();
  }
};

}  // namespace

std::unique_ptr<AccessStrategy> MakeFactorized(
    const join::NormalizedRelations* rel, storage::BufferPool* pool,
    const StrategyOptions& options, bool full_pass) {
  return std::make_unique<FactorizedStrategy>(rel, pool, options,
                                              full_pass);
}

}  // namespace factorml::core::pipeline::internal

#ifndef FACTORML_CORE_TRAINER_H_
#define FACTORML_CORE_TRAINER_H_

#include <string>

#include "common/status.h"
#include "core/report.h"
#include "gmm/trainers.h"
#include "join/normalized_relations.h"
#include "nn/trainers.h"
#include "storage/buffer_pool.h"

namespace factorml::core {

/// The three execution strategies the paper compares for each model family
/// (M-*, S-*, F-*).
enum class Algorithm {
  kMaterialized,  // join -> write T -> train over T
  kStreaming,     // recompute the join on the fly every pass
  kFactorized,    // push the training computation through the join
};

const char* AlgorithmName(Algorithm a);

/// Trains a GMM over the normalized relations with the chosen strategy.
/// All strategies return the same parameters (up to floating-point
/// reordering); they differ in cost, which is captured in `report`.
Result<gmm::GmmParams> TrainGmm(const join::NormalizedRelations& rel,
                                const gmm::GmmOptions& options,
                                Algorithm algorithm,
                                storage::BufferPool* pool,
                                TrainReport* report);

/// Trains a neural network over the normalized relations with the chosen
/// strategy; the relations must carry a target column.
Result<nn::Mlp> TrainNn(const join::NormalizedRelations& rel,
                        const nn::NnOptions& options, Algorithm algorithm,
                        storage::BufferPool* pool, TrainReport* report);

}  // namespace factorml::core

#endif  // FACTORML_CORE_TRAINER_H_

#ifndef FACTORML_CORE_TRAINER_H_
#define FACTORML_CORE_TRAINER_H_

#include <string>

#include "common/status.h"
#include "core/algorithm.h"
#include "core/report.h"
#include "gmm/trainers.h"
#include "join/normalized_relations.h"
#include "kmeans/kmeans.h"
#include "linreg/linreg.h"
#include "logreg/logreg.h"
#include "nn/trainers.h"
#include "storage/buffer_pool.h"

namespace factorml::core {

/// Trains a GMM over the normalized relations with the chosen strategy.
/// All strategies return the same parameters (up to floating-point
/// reordering); they differ in cost, which is captured in `report`.
/// Every trainer below runs through the core/pipeline layer: the strategy
/// (data-access plane) and the model (ModelProgram) are independent.
Result<gmm::GmmParams> TrainGmm(const join::NormalizedRelations& rel,
                                const gmm::GmmOptions& options,
                                Algorithm algorithm,
                                storage::BufferPool* pool,
                                TrainReport* report);

/// Trains a neural network over the normalized relations with the chosen
/// strategy; the relations must carry a target column.
Result<nn::Mlp> TrainNn(const join::NormalizedRelations& rel,
                        const nn::NnOptions& options, Algorithm algorithm,
                        storage::BufferPool* pool, TrainReport* report);

/// Trains a ridge linear regression (closed form via Gram/cofactor
/// accumulation) with the chosen strategy; requires a target column.
Result<linreg::LinregModel> TrainLinreg(const join::NormalizedRelations& rel,
                                        const linreg::LinregOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report);

/// Trains k-means (Lloyd's iterations) with the chosen strategy.
Result<kmeans::KmeansModel> TrainKmeans(const join::NormalizedRelations& rel,
                                        const kmeans::KmeansOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report);

/// Trains a logistic regression (IRLS over the factorized Gram) with the
/// chosen strategy; requires a target column.
Result<logreg::LogregModel> TrainLogreg(const join::NormalizedRelations& rel,
                                        const logreg::LogregOptions& options,
                                        Algorithm algorithm,
                                        storage::BufferPool* pool,
                                        TrainReport* report);

}  // namespace factorml::core

#endif  // FACTORML_CORE_TRAINER_H_

#ifndef FACTORML_CORE_REPORT_H_
#define FACTORML_CORE_REPORT_H_

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/opcount.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/io_stats.h"

namespace factorml::core {

/// Wall time accumulated by one (possibly parallel) phase of a training
/// run — e.g. the GMM E-step across all iterations, or the NN first-layer
/// forward across all mini-batches.
struct PhaseTiming {
  std::string name;
  double seconds = 0.0;
};

/// Measured cost of one training run: wall time, physical page I/O and
/// floating-point operation counts. Every trainer fills one of these; the
/// benchmark harness prints them side by side for M/S/F, which is exactly
/// the comparison in the paper's figures and tables.
struct TrainReport {
  std::string algorithm;
  double wall_seconds = 0.0;
  double materialize_seconds = 0.0;  // M-* only: join + write of T
  int iterations = 0;                // EM iterations or NN epochs run
  double final_objective = 0.0;      // log-likelihood (GMM) or MSE (NN)
  int threads = 1;                   // exec/ workers used by the run
  /// Chunk count of the full-pass morsel plan (0 = legacy static
  /// partition, one morsel per worker).
  int64_t morsel_chunks = 0;
  /// Chunks executed by a worker other than their static owner, summed
  /// over all passes (always 0 with --steal=off).
  uint64_t steals = 0;
  /// Effective rid-range shard count of the full-pass plane (1 =
  /// unsharded; bounded above by morsel_chunks when --shards exceeds the
  /// chunk count).
  int shards = 1;
  /// Per-shard breakdown, --shards > 1 only: each shard's chunk span of
  /// the morsel plan, the wall time of its scan windows (its busy share of
  /// every pass) and the I/O charged inside them — demand and prefetch
  /// counters both, including the crew reads the prefetcher folds in at
  /// drain, so the shard entries sum exactly to the run's scan-phase
  /// totals (storage_test pins this).
  struct ShardStat {
    int64_t chunk_begin = 0;
    int64_t chunk_end = 0;
    double scan_seconds = 0.0;
    storage::IoStats io;
  };
  std::vector<ShardStat> shard_stats;
  storage::IoStats io;               // delta over the run
  OpCounters ops;                    // delta over the run
  std::vector<PhaseTiming> phases;   // per-phase parallel wall timings
  /// Wall time each worker spent executing morsels, summed over all full
  /// passes — the load-balance evidence (spread shrinks when stealing
  /// works; wall-clock speedup additionally needs multi-core hardware).
  std::vector<double> worker_busy_seconds;
  /// Delta of the obs::Registry over the run (counters, gauges, fixed-
  /// bucket histograms — chunk counts, demand-stall and morsel-execution
  /// latencies, prefetch drain waits). Timings and schedule evidence
  /// only: nothing here feeds the bitwise parity contract. Emitted into
  /// the bench --json schema as the "metrics" object.
  obs::MetricsSnapshot metrics;

  /// Min/max of worker_busy_seconds ({0, 0} when empty) — the one
  /// reduction behind ToString, the bench tables and the JSON records.
  std::pair<double, double> BusyRange() const {
    if (worker_busy_seconds.empty()) return {0.0, 0.0};
    double lo = worker_busy_seconds[0], hi = worker_busy_seconds[0];
    for (const double b : worker_busy_seconds) {
      lo = b < lo ? b : lo;
      hi = b > hi ? b : hi;
    }
    return {lo, hi};
  }

  /// Accumulates wall time under `name` (phases repeat across EM
  /// iterations / epochs; one entry per distinct name).
  void AddPhaseSeconds(const std::string& name, double seconds) {
    for (auto& p : phases) {
      if (p.name == name) {
        p.seconds += seconds;
        return;
      }
    }
    phases.push_back(PhaseTiming{name, seconds});
  }

  std::string ToString() const {
    std::ostringstream os;
    os << algorithm << ": " << wall_seconds << "s";
    if (materialize_seconds > 0.0) {
      os << " (materialize " << materialize_seconds << "s)";
    }
    os << " iters=" << iterations << " objective=" << final_objective;
    if (threads > 1) os << " threads=" << threads;
    if (morsel_chunks > 0) {
      os << " morsels=" << morsel_chunks << " steals=" << steals;
    }
    if (shards > 1) {
      // Per-shard busy/stall breakdown: scan wall time and demand-stall
      // time of each shard's scan windows, in shard-id order.
      os << " shards=" << shards << " shard_busy=[";
      for (size_t k = 0; k < shard_stats.size(); ++k) {
        os << (k > 0 ? "," : "") << shard_stats[k].scan_seconds;
      }
      os << "]s shard_stall=[";
      for (size_t k = 0; k < shard_stats.size(); ++k) {
        os << (k > 0 ? "," : "")
           << static_cast<double>(shard_stats[k].io.stall_micros) * 1e-6;
      }
      os << "]s";
    }
    if (worker_busy_seconds.size() > 1) {
      const auto [lo, hi] = BusyRange();
      os << " busy=" << lo << ".." << hi << "s";
    }
    os << " | " << io.ToString();
    if (io.prefetch_reads > 0 || io.prefetch_hits > 0) {
      // Useful-prefetch ratio: fraction of asynchronously landed pages a
      // demand read went on to consume.
      const double rate =
          io.prefetch_reads > 0
              ? static_cast<double>(io.prefetch_hits) /
                    static_cast<double>(io.prefetch_reads)
              : 0.0;
      os << " prefetch_hit_rate=" << rate;
    }
    if (io.stall_micros > 0) {
      os << " stall=" << static_cast<double>(io.stall_micros) * 1e-6 << "s";
    }
    os << " | " << ops.ToString();
    if (!phases.empty()) {
      os << " |";
      for (const auto& p : phases) {
        os << " " << p.name << "=" << p.seconds << "s";
      }
    }
    return os.str();
  }
};

/// RAII accumulation of one phase's wall time into a report (null-safe):
/// construct at phase entry, destroy at exit; repeated phases sum. Every
/// phase is also a trace span (category "phase") when --trace is on, so
/// the model programs' named phases land in the timeline for free.
class PhaseScope {
 public:
  PhaseScope(TrainReport* report, const char* name)
      : report_(report), name_(name), span_(obs::kCatPhase, name) {}
  ~PhaseScope() {
    if (report_ != nullptr) {
      report_->AddPhaseSeconds(name_, watch_.ElapsedSeconds());
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  TrainReport* report_;
  const char* name_;
  Stopwatch watch_;
  obs::TraceSpan span_;
};

/// RAII measurement of a training run: snapshots wall clock, I/O and op
/// counters at construction; Finish() stores the deltas in the report.
/// A null report disables measurement (the trainer still runs).
class ReportScope {
 public:
  ReportScope(TrainReport* report, std::string algorithm)
      : report_(report),
        io_before_(storage::GlobalIo()),
        ops_before_(GlobalOps()) {
    if (report_ != nullptr) {
      *report_ = TrainReport{};
      report_->algorithm = std::move(algorithm);
      metrics_before_ = obs::Registry::Instance().Snap();
    }
  }

  void Finish(int iterations, double objective) {
    if (report_ == nullptr) return;
    report_->wall_seconds = watch_.ElapsedSeconds();
    report_->iterations = iterations;
    report_->final_objective = objective;
    report_->io = storage::GlobalIo() - io_before_;
    report_->ops = GlobalOps() - ops_before_;
    report_->metrics =
        obs::SnapshotDelta(obs::Registry::Instance().Snap(), metrics_before_);
  }

 private:
  TrainReport* report_;
  Stopwatch watch_;
  storage::IoStats io_before_;
  OpCounters ops_before_;
  obs::MetricsSnapshot metrics_before_;
};

}  // namespace factorml::core

#endif  // FACTORML_CORE_REPORT_H_

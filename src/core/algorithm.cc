#include "core/algorithm.h"

namespace factorml::core {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kMaterialized:
      return "materialized";
    case Algorithm::kStreaming:
      return "streaming";
    case Algorithm::kFactorized:
      return "factorized";
  }
  return "?";
}

char AlgorithmPrefix(Algorithm a) {
  switch (a) {
    case Algorithm::kMaterialized:
      return 'M';
    case Algorithm::kStreaming:
      return 'S';
    case Algorithm::kFactorized:
      return 'F';
  }
  return '?';
}

}  // namespace factorml::core

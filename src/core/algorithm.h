#ifndef FACTORML_CORE_ALGORITHM_H_
#define FACTORML_CORE_ALGORITHM_H_

namespace factorml::core {

/// The three execution strategies the paper compares for each model family
/// (M-*, S-*, F-*). Orthogonal to the model being trained: any ModelProgram
/// (core/pipeline) runs under any of these via the matching AccessStrategy.
enum class Algorithm {
  kMaterialized,  // join -> write T -> train over T
  kStreaming,     // recompute the join on the fly every pass
  kFactorized,    // push the training computation through the join
};

const char* AlgorithmName(Algorithm a);

/// The report-tag letter of a strategy ("M-GMM", "F-LINREG", ...).
char AlgorithmPrefix(Algorithm a);

}  // namespace factorml::core

#endif  // FACTORML_CORE_ALGORITHM_H_

#ifndef FACTORML_GMM_EM_UTIL_H_
#define FACTORML_GMM_EM_UTIL_H_

#include <vector>

#include "common/status.h"
#include "core/report.h"
#include "gmm/gmm_model.h"
#include "gmm/trainers.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"

namespace factorml::gmm::internal {

using core::ReportScope;

/// Deterministic initialization seeds: the joined feature vectors of
/// either rows spread evenly through S (row i*N/K) or K distinct rows
/// drawn by a seeded generator. All three trainers call this with the
/// same relations and options, guaranteeing identical starting
/// parameters.
Result<la::Matrix> InitSeedRows(const join::NormalizedRelations& rel,
                                storage::BufferPool* pool,
                                const GmmOptions& options);

/// Converts per-component unnormalized log posteriors `logp` (length k)
/// into responsibilities written to `gamma_row`, returning the log of the
/// normalizer (this point's contribution to the log-likelihood, Eq. 6).
double PosteriorFromLogps(const double* logp, size_t k, double* gamma_row);

/// Shared EM driver bookkeeping: responsibilities for all N points plus
/// per-component responsibility mass N_k.
struct Responsibilities {
  size_t n = 0;
  size_t k = 0;
  std::vector<double> gamma;  // n * k, row-major
  std::vector<double> n_k;    // k

  void Reset(size_t n_points, size_t n_components) {
    n = n_points;
    k = n_components;
    gamma.assign(n * k, 0.0);
    n_k.assign(k, 0.0);
  }
  double* Row(int64_t point) { return gamma.data() + point * k; }
  const double* Row(int64_t point) const { return gamma.data() + point * k; }
};

/// True when EM should stop: either the iteration budget is exhausted or
/// the relative log-likelihood change fell below tol (when tol > 0).
bool Converged(double prev_ll, double ll, double tol);

}  // namespace factorml::gmm::internal

#endif  // FACTORML_GMM_EM_UTIL_H_

#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "exec/parallel_for.h"
#include "exec/worker_pools.h"
#include "gmm/em_util.h"
#include "gmm/trainers.h"
#include "join/attribute_view.h"
#include "join/join_cursor.h"
#include "la/ops.h"

namespace factorml::gmm {

namespace {

using internal::Responsibilities;
using join::AttributeTableView;
using la::Matrix;

inline void CenterInto(const double* x, const double* mu, size_t d,
                       double* diff) {
  for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu[j];
  CountSubs(d);
}

/// Per-pass factorized state for one attribute table and one component:
/// the centered rows PD_Ri = x_Ri - mu[slice i] for every rid (Eq. 20),
/// computed once per R tuple per pass and reused for all matching S rows.
struct CenteredCache {
  // pd[c] is nRi x dRi.
  std::vector<Matrix> pd;
  // diag[c][rid] = PD^T * I_ii * PD, the reusable diagonal quadratic block
  // of the E-step (the LR term of Eq. 12 / i==j terms of Eq. 19).
  std::vector<std::vector<double>> diag;
};

/// Rebuilds the centered caches against the current means. `with_diag`
/// additionally caches the diagonal quadratic form (E-step only).
void BuildCenteredCaches(const std::vector<AttributeTableView>& views,
                         const GmmParams& params,
                         const std::vector<size_t>& attr_offset,
                         const GmmDensity* density, bool with_diag,
                         std::vector<CenteredCache>* caches) {
  const size_t k = params.num_components();
  caches->resize(views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    const Matrix& feats = views[i].feats();
    const size_t n_ri = feats.rows();
    const size_t d_ri = feats.cols();
    auto& cache = (*caches)[i];
    cache.pd.assign(k, Matrix());
    cache.diag.assign(k, {});
    for (size_t c = 0; c < k; ++c) {
      Matrix& pd = cache.pd[c];
      pd.Resize(n_ri, d_ri);
      const double* mu_slice = params.mu.Row(c).data() + attr_offset[i];
      for (size_t rid = 0; rid < n_ri; ++rid) {
        CenterInto(feats.Row(rid).data(), mu_slice, d_ri, pd.Row(rid).data());
      }
      if (with_diag) {
        auto& diag = cache.diag[c];
        diag.resize(n_ri);
        for (size_t rid = 0; rid < n_ri; ++rid) {
          diag[rid] =
              la::Bilinear(density->precision[c], attr_offset[i],
                           attr_offset[i], pd.Row(rid).data(), d_ri,
                           pd.Row(rid).data(), d_ri);
        }
      }
    }
  }
}

}  // namespace

Result<GmmParams> TrainGmmFactorized(const join::NormalizedRelations& rel,
                                     const GmmOptions& options,
                                     storage::BufferPool* pool,
                                     core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  internal::ReportScope scope(report, "F-GMM");

  const int threads = exec::EffectiveThreads(options.threads);
  if (report != nullptr) report->threads = threads;

  const size_t k = options.num_components;
  const size_t q = rel.num_joins();
  const size_t ds = rel.ds();
  const size_t d = rel.total_dims();
  const size_t y_off = rel.has_target ? 1 : 0;
  const int64_t n = rel.s.num_rows();

  // Joined-vector offset of each attribute table's feature slice.
  std::vector<size_t> attr_offset(q);
  for (size_t i = 0; i < q; ++i) attr_offset[i] = rel.FeatureOffset(i + 1);

  FML_ASSIGN_OR_RETURN(Matrix seeds, internal::InitSeedRows(rel, pool, options));
  GmmParams params = GmmParams::Init(seeds, options.init_spread);

  Responsibilities resp;
  resp.Reset(static_cast<size_t>(n), k);

  // Morsels: whole FK1 runs per worker, preserving the factorized
  // per-R1-tuple reuse inside each morsel; the centered caches are built
  // once by the dispatching thread and read shared by all workers.
  const std::vector<exec::Range> ranges =
      join::PartitionFk1Runs(rel.fk1_index, threads);
  const int nw = ranges.empty() ? 1 : static_cast<int>(ranges.size());
  exec::WorkerPools pools(pool, nw);
  std::vector<Status> worker_status(static_cast<size_t>(nw));

  std::vector<Matrix> sigma_sum(k);
  std::vector<double> mu_sum_s;                          // k * ds
  std::vector<std::vector<std::vector<double>>> gsum(q);  // [i][c][rid]
  std::vector<CenteredCache> caches;
  std::vector<AttributeTableView> views(q);

  double loglik = -std::numeric_limits<double>::infinity();
  int iter = 0;
  for (; iter < options.max_iters; ++iter) {
    FML_ASSIGN_OR_RETURN(GmmDensity density, GmmDensity::From(params));

    // =========================== E-step ===========================
    for (size_t i = 0; i < q; ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    // Once per R tuple: centered slices and diagonal quadratic blocks.
    BuildCenteredCaches(views, params, attr_offset, &density,
                        /*with_diag=*/true, &caches);

    struct EAcc {
      double ll = 0.0;
      std::vector<double> n_k;
    };
    double ll = 0.0;
    std::fill(resp.n_k.begin(), resp.n_k.end(), 0.0);
    {
      core::PhaseScope phase(report, "e_step");
      exec::ParallelReduce<EAcc>(
          ranges,
          [&](exec::Range range, int w, EAcc* acc) {
            acc->n_k.assign(k, 0.0);
            std::vector<double> logp(k);
            std::vector<double> pds(ds);  // centered S slice, per worker
            join::JoinBatch batch;
            join::JoinCursor e_cursor(&rel, pools.Get(w), options.batch_rows);
            e_cursor.SetPositionRange(range.begin, range.end);
            while (e_cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                const double* xs = batch.s_rows.feats.Row(r).data() + y_off;
                const int64_t* keys = batch.s_rows.KeysOf(r);
                for (size_t c = 0; c < k; ++c) {
                  CenterInto(xs, params.mu.Row(c).data(), ds, pds.data());
                  // Block decomposition of (x - mu)^T I (x - mu), Eq. 19:
                  // the S-diagonal block plus, per attribute table, the two
                  // cross blocks (UR + LL, Eqs. 10-11) and the cached
                  // diagonal block (LR, Eq. 12); multi-way adds the
                  // attr-attr cross blocks.
                  double quad =
                      la::Bilinear(density.precision[c], 0, 0, pds.data(),
                                   ds, pds.data(), ds);
                  for (size_t i = 0; i < q; ++i) {
                    const int64_t rid = keys[rel.FkKeyIndex(i)];
                    const double* pdr = caches[i].pd[c].Row(rid).data();
                    const size_t dri = rel.dr(i);
                    const double ur = la::Bilinear(density.precision[c], 0,
                                                   attr_offset[i],
                                                   pds.data(), ds, pdr, dri);
                    if (options.exploit_symmetry) {
                      // LL = UR because the precision matrix is symmetric.
                      quad += 2.0 * ur;
                      CountMults(1);
                    } else {
                      quad += ur + la::Bilinear(density.precision[c],
                                                attr_offset[i], 0, pdr, dri,
                                                pds.data(), ds);
                    }
                    quad += caches[i].diag[c][rid];
                    CountAdds(3);
                    for (size_t j = i + 1; j < q; ++j) {
                      const int64_t rid_j = keys[rel.FkKeyIndex(j)];
                      const double* pdj = caches[j].pd[c].Row(rid_j).data();
                      const size_t drj = rel.dr(j);
                      const double cross = la::Bilinear(
                          density.precision[c], attr_offset[i],
                          attr_offset[j], pdr, dri, pdj, drj);
                      if (options.exploit_symmetry) {
                        quad += 2.0 * cross;
                        CountMults(1);
                      } else {
                        quad += cross + la::Bilinear(density.precision[c],
                                                     attr_offset[j],
                                                     attr_offset[i], pdj,
                                                     drj, pdr, dri);
                      }
                      CountAdds(2);
                    }
                  }
                  logp[c] = density.log_coeff[c] - 0.5 * quad;
                }
                double* gamma = resp.Row(batch.s_rows.start_row +
                                         static_cast<int64_t>(r));
                acc->ll += internal::PosteriorFromLogps(logp.data(), k, gamma);
                for (size_t c = 0; c < k; ++c) acc->n_k[c] += gamma[c];
              }
            }
            worker_status[static_cast<size_t>(w)] = e_cursor.status();
          },
          [&](EAcc&& acc, int) {
            ll += acc.ll;
            for (size_t c = 0; c < k; ++c) resp.n_k[c] += acc.n_k[c];
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));

    // ====================== M-step: means (Eq. 22) ======================
    for (size_t i = 0; i < q; ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
      gsum[i].assign(k, std::vector<double>(views[i].feats().rows(), 0.0));
    }
    mu_sum_s.assign(k * ds, 0.0);
    struct MuAcc {
      std::vector<double> mu_sum_s;                          // k * ds
      std::vector<std::vector<std::vector<double>>> gsum;    // [i][c][rid]
    };
    {
      core::PhaseScope phase(report, "m_step_mean");
      exec::ParallelReduce<MuAcc>(
          ranges,
          [&](exec::Range range, int w, MuAcc* acc) {
            acc->mu_sum_s.assign(k * ds, 0.0);
            acc->gsum.resize(q);
            for (size_t i = 0; i < q; ++i) {
              acc->gsum[i].assign(
                  k, std::vector<double>(views[i].feats().rows(), 0.0));
            }
            join::JoinBatch batch;
            join::JoinCursor mu_cursor(&rel, pools.Get(w),
                                       options.batch_rows);
            mu_cursor.SetPositionRange(range.begin, range.end);
            while (mu_cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                const double* xs = batch.s_rows.feats.Row(r).data() + y_off;
                const int64_t* keys = batch.s_rows.KeysOf(r);
                const double* gamma = resp.Row(batch.s_rows.start_row +
                                               static_cast<int64_t>(r));
                for (size_t c = 0; c < k; ++c) {
                  // S slice accumulates per fact tuple; the R slices only
                  // accumulate responsibility mass per rid — the
                  // factorization of Eq. 13/22 that replaces nS * dR
                  // multiplies by nS adds.
                  la::Axpy(gamma[c], xs, acc->mu_sum_s.data() + c * ds, ds);
                  for (size_t i = 0; i < q; ++i) {
                    acc->gsum[i][c][keys[rel.FkKeyIndex(i)]] += gamma[c];
                  }
                  CountAdds(q);
                }
              }
            }
            worker_status[static_cast<size_t>(w)] = mu_cursor.status();
          },
          [&](MuAcc&& acc, int) {
            for (size_t j = 0; j < k * ds; ++j) mu_sum_s[j] += acc.mu_sum_s[j];
            for (size_t i = 0; i < q; ++i) {
              for (size_t c = 0; c < k; ++c) {
                auto& dst = gsum[i][c];
                const auto& src = acc.gsum[i][c];
                for (size_t rid = 0; rid < dst.size(); ++rid) {
                  dst[rid] += src[rid];
                }
              }
            }
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));
    for (size_t c = 0; c < k; ++c) {
      const double inv_nk = 1.0 / std::max(resp.n_k[c], 1e-300);
      double* mu_row = params.mu.Row(c).data();
      for (size_t j = 0; j < ds; ++j) mu_row[j] = mu_sum_s[c * ds + j] * inv_nk;
      CountMults(ds);
      for (size_t i = 0; i < q; ++i) {
        const Matrix& feats = views[i].feats();
        const size_t dri = feats.cols();
        double* slice = mu_row + attr_offset[i];
        std::fill(slice, slice + dri, 0.0);
        for (size_t rid = 0; rid < feats.rows(); ++rid) {
          la::Axpy(gsum[i][c][rid], feats.Row(rid).data(), slice, dri);
        }
        for (size_t j = 0; j < dri; ++j) slice[j] *= inv_nk;
        CountMults(dri);
      }
    }

    // ================= M-step: covariances (Eqs. 23-24) =================
    for (size_t i = 0; i < q; ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    // Centered caches against the *updated* means; no diagonal quad cache
    // is needed here.
    BuildCenteredCaches(views, params, attr_offset, nullptr,
                        /*with_diag=*/false, &caches);
    for (size_t c = 0; c < k; ++c) sigma_sum[c].Resize(d, d);

    {
      core::PhaseScope phase(report, "m_step_cov");
      exec::ParallelReduce<std::vector<Matrix>>(
          ranges,
          [&](exec::Range range, int w, std::vector<Matrix>* acc) {
            acc->assign(k, Matrix());
            for (size_t c = 0; c < k; ++c) (*acc)[c].Resize(d, d);
            std::vector<double> pds(ds);
            join::JoinBatch batch;
            join::JoinCursor sg_cursor(&rel, pools.Get(w),
                                       options.batch_rows);
            sg_cursor.SetPositionRange(range.begin, range.end);
            while (sg_cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                const double* xs = batch.s_rows.feats.Row(r).data() + y_off;
                const int64_t* keys = batch.s_rows.KeysOf(r);
                const double* gamma = resp.Row(batch.s_rows.start_row +
                                               static_cast<int64_t>(r));
                for (size_t c = 0; c < k; ++c) {
                  CenterInto(xs, params.mu.Row(c).data(), ds, pds.data());
                  Matrix& sg = (*acc)[c];
                  // Off-diagonal blocks must be accumulated per fact tuple;
                  // the attribute-diagonal blocks (LR of Eq. 18 / M_ii of
                  // Eq. 24) are deferred: only the responsibility mass per
                  // rid is accumulated here and one outer product per R
                  // tuple is added afterwards.
                  la::AddOuter(gamma[c], pds.data(), ds, pds.data(), ds, &sg,
                               0, 0);
                  for (size_t i = 0; i < q; ++i) {
                    const int64_t rid = keys[rel.FkKeyIndex(i)];
                    const double* pdr = caches[i].pd[c].Row(rid).data();
                    const size_t dri = rel.dr(i);
                    la::AddOuter(gamma[c], pds.data(), ds, pdr, dri, &sg, 0,
                                 attr_offset[i]);
                    if (!options.exploit_symmetry) {
                      la::AddOuter(gamma[c], pdr, dri, pds.data(), ds, &sg,
                                   attr_offset[i], 0);
                    }
                    for (size_t j = i + 1; j < q; ++j) {
                      const int64_t rid_j = keys[rel.FkKeyIndex(j)];
                      const double* pdj = caches[j].pd[c].Row(rid_j).data();
                      const size_t drj = rel.dr(j);
                      la::AddOuter(gamma[c], pdr, dri, pdj, drj, &sg,
                                   attr_offset[i], attr_offset[j]);
                      if (!options.exploit_symmetry) {
                        la::AddOuter(gamma[c], pdj, drj, pdr, dri, &sg,
                                     attr_offset[j], attr_offset[i]);
                      }
                    }
                  }
                }
              }
            }
            worker_status[static_cast<size_t>(w)] = sg_cursor.status();
          },
          [&](std::vector<Matrix>&& acc, int) {
            for (size_t c = 0; c < k; ++c) sigma_sum[c].Add(acc[c]);
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));
    // Mirror the cross blocks that were accumulated single-sided: the
    // covariance accumulator is symmetric, so LL = UR^T exactly (one
    // O(d^2) copy per component per pass instead of per fact tuple).
    if (options.exploit_symmetry) {
      for (size_t c = 0; c < k; ++c) {
        Matrix& acc = sigma_sum[c];
        for (size_t i = 0; i < q; ++i) {
          const size_t dri = rel.dr(i);
          for (size_t a = 0; a < ds; ++a) {
            for (size_t b2 = 0; b2 < dri; ++b2) {
              acc(attr_offset[i] + b2, a) = acc(a, attr_offset[i] + b2);
            }
          }
          for (size_t j = i + 1; j < q; ++j) {
            const size_t drj = rel.dr(j);
            for (size_t a = 0; a < dri; ++a) {
              for (size_t b2 = 0; b2 < drj; ++b2) {
                acc(attr_offset[j] + b2, attr_offset[i] + a) =
                    acc(attr_offset[i] + a, attr_offset[j] + b2);
              }
            }
          }
        }
      }
    }

    // Deferred diagonal blocks: one outer product per R tuple, scaled by
    // the responsibility mass of its matching fact tuples (gsum reuses the
    // responsibilities accumulated in the mean pass — same gamma).
    for (size_t c = 0; c < k; ++c) {
      for (size_t i = 0; i < q; ++i) {
        const size_t dri = rel.dr(i);
        const size_t n_ri = caches[i].pd[c].rows();
        for (size_t rid = 0; rid < n_ri; ++rid) {
          const double* pdr = caches[i].pd[c].Row(rid).data();
          la::AddOuter(gsum[i][c][rid], pdr, dri, pdr, dri, &sigma_sum[c],
                       attr_offset[i], attr_offset[i]);
        }
      }
      sigma_sum[c].Scale(1.0 / std::max(resp.n_k[c], 1e-300));
      for (size_t j = 0; j < d; ++j) sigma_sum[c](j, j) += options.cov_reg;
      params.sigma[c] = sigma_sum[c];
      params.pi[c] = resp.n_k[c] / static_cast<double>(n);
    }

    if (internal::Converged(loglik, ll, options.tol)) {
      loglik = ll;
      ++iter;
      break;
    }
    loglik = ll;
  }

  scope.Finish(iter, loglik);
  return params;
}

}  // namespace factorml::gmm

#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "gmm/em_util.h"
#include "gmm/trainers.h"
#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/join_cursor.h"
#include "la/ops.h"

namespace factorml::gmm {

namespace {

using internal::Responsibilities;
using la::Matrix;

inline void CenterInto(const double* x, const double* mu, size_t d,
                       double* diff) {
  for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu[j];
  CountSubs(d);
}

}  // namespace

Result<GmmParams> TrainGmmStreaming(const join::NormalizedRelations& rel,
                                    const GmmOptions& options,
                                    storage::BufferPool* pool,
                                    core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  internal::ReportScope scope(report, "S-GMM");

  const size_t k = options.num_components;
  const size_t d = rel.total_dims();
  const int64_t n = rel.s.num_rows();

  FML_ASSIGN_OR_RETURN(Matrix seeds, internal::InitSeedRows(rel, pool, options));
  GmmParams params = GmmParams::Init(seeds, options.init_spread);

  Responsibilities resp;
  resp.Reset(static_cast<size_t>(n), k);

  std::vector<double> logp(k);
  std::vector<double> x(d);  // the on-the-fly assembled joined tuple
  std::vector<double> diff(d);
  std::vector<Matrix> sigma_sum(k);
  std::vector<double> mu_sum;

  double loglik = -std::numeric_limits<double>::infinity();
  int iter = 0;
  join::JoinBatch batch;
  for (; iter < options.max_iters; ++iter) {
    FML_ASSIGN_OR_RETURN(GmmDensity density, GmmDensity::From(params));

    // Each pass re-executes the join: attribute tables are reloaded (build
    // side) and S is streamed (probe side) — Fig. 1(b) of the paper.
    // ---- E-step pass.
    std::vector<join::AttributeTableView> views(rel.num_joins());
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    double ll = 0.0;
    std::fill(resp.n_k.begin(), resp.n_k.end(), 0.0);
    join::JoinCursor e_cursor(&rel, pool, options.batch_rows);
    while (e_cursor.Next(&batch)) {
      for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
        join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
        for (size_t c = 0; c < k; ++c) {
          CenterInto(x.data(), params.mu.Row(c).data(), d, diff.data());
          const double q = la::QuadForm(density.precision[c], diff.data(), d);
          logp[c] = density.log_coeff[c] - 0.5 * q;
        }
        double* gamma =
            resp.Row(batch.s_rows.start_row + static_cast<int64_t>(r));
        ll += internal::PosteriorFromLogps(logp.data(), k, gamma);
        for (size_t c = 0; c < k; ++c) resp.n_k[c] += gamma[c];
      }
    }
    FML_RETURN_IF_ERROR(e_cursor.status());

    // ---- M-step mean pass (join recomputed).
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    mu_sum.assign(k * d, 0.0);
    join::JoinCursor mu_cursor(&rel, pool, options.batch_rows);
    while (mu_cursor.Next(&batch)) {
      for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
        join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
        const double* gamma =
            resp.Row(batch.s_rows.start_row + static_cast<int64_t>(r));
        for (size_t c = 0; c < k; ++c) {
          la::Axpy(gamma[c], x.data(), mu_sum.data() + c * d, d);
        }
      }
    }
    FML_RETURN_IF_ERROR(mu_cursor.status());
    for (size_t c = 0; c < k; ++c) {
      const double inv_nk = 1.0 / std::max(resp.n_k[c], 1e-300);
      for (size_t j = 0; j < d; ++j) {
        params.mu(c, j) = mu_sum[c * d + j] * inv_nk;
      }
      CountMults(d);
    }

    // ---- M-step covariance pass (join recomputed, new means).
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    for (size_t c = 0; c < k; ++c) sigma_sum[c].Resize(d, d);
    join::JoinCursor sg_cursor(&rel, pool, options.batch_rows);
    while (sg_cursor.Next(&batch)) {
      for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
        join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
        const double* gamma =
            resp.Row(batch.s_rows.start_row + static_cast<int64_t>(r));
        for (size_t c = 0; c < k; ++c) {
          CenterInto(x.data(), params.mu.Row(c).data(), d, diff.data());
          la::AddOuter(gamma[c], diff.data(), d, diff.data(), d,
                       &sigma_sum[c], 0, 0);
        }
      }
    }
    FML_RETURN_IF_ERROR(sg_cursor.status());
    for (size_t c = 0; c < k; ++c) {
      sigma_sum[c].Scale(1.0 / std::max(resp.n_k[c], 1e-300));
      for (size_t j = 0; j < d; ++j) sigma_sum[c](j, j) += options.cov_reg;
      params.sigma[c] = sigma_sum[c];
      params.pi[c] = resp.n_k[c] / static_cast<double>(n);
    }

    if (internal::Converged(loglik, ll, options.tol)) {
      loglik = ll;
      ++iter;
      break;
    }
    loglik = ll;
  }

  scope.Finish(iter, loglik);
  return params;
}

}  // namespace factorml::gmm

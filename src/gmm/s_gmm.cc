#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "exec/parallel_for.h"
#include "exec/worker_pools.h"
#include "gmm/em_util.h"
#include "gmm/trainers.h"
#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/join_cursor.h"
#include "la/ops.h"

namespace factorml::gmm {

namespace {

using internal::Responsibilities;
using la::Matrix;

inline void CenterInto(const double* x, const double* mu, size_t d,
                       double* diff) {
  for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu[j];
  CountSubs(d);
}

}  // namespace

Result<GmmParams> TrainGmmStreaming(const join::NormalizedRelations& rel,
                                    const GmmOptions& options,
                                    storage::BufferPool* pool,
                                    core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_CHECK_GT(rel.fk1_index.num_rids(), 0) << "BuildIndex() not called";
  internal::ReportScope scope(report, "S-GMM");

  const int threads = exec::EffectiveThreads(options.threads);
  if (report != nullptr) report->threads = threads;

  const size_t k = options.num_components;
  const size_t d = rel.total_dims();
  const int64_t n = rel.s.num_rows();

  FML_ASSIGN_OR_RETURN(Matrix seeds, internal::InitSeedRows(rel, pool, options));
  GmmParams params = GmmParams::Init(seeds, options.init_spread);

  Responsibilities resp;
  resp.Reset(static_cast<size_t>(n), k);

  // Morsels: whole FK1 runs per worker, so each worker's scan stays a
  // sequential range read of S (Fig. 1(b)).
  const std::vector<exec::Range> ranges =
      join::PartitionFk1Runs(rel.fk1_index, threads);
  const int nw = ranges.empty() ? 1 : static_cast<int>(ranges.size());
  exec::WorkerPools pools(pool, nw);
  std::vector<Status> worker_status(static_cast<size_t>(nw));

  std::vector<Matrix> sigma_sum(k);
  std::vector<double> mu_sum;

  double loglik = -std::numeric_limits<double>::infinity();
  int iter = 0;
  for (; iter < options.max_iters; ++iter) {
    FML_ASSIGN_OR_RETURN(GmmDensity density, GmmDensity::From(params));

    // Each pass re-executes the join: attribute tables are reloaded (build
    // side) and S is streamed (probe side) — Fig. 1(b) of the paper. The
    // views are shared read-only by all workers.
    // ---- E-step pass.
    std::vector<join::AttributeTableView> views(rel.num_joins());
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    struct EAcc {
      double ll = 0.0;
      std::vector<double> n_k;
    };
    double ll = 0.0;
    std::fill(resp.n_k.begin(), resp.n_k.end(), 0.0);
    {
      core::PhaseScope phase(report, "e_step");
      exec::ParallelReduce<EAcc>(
          ranges,
          [&](exec::Range range, int w, EAcc* acc) {
            acc->n_k.assign(k, 0.0);
            std::vector<double> logp(k);
            std::vector<double> x(d);
            std::vector<double> diff(d);
            join::JoinBatch batch;
            join::JoinCursor cursor(&rel, pools.Get(w), options.batch_rows);
            cursor.SetPositionRange(range.begin, range.end);
            while (cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
                for (size_t c = 0; c < k; ++c) {
                  CenterInto(x.data(), params.mu.Row(c).data(), d,
                             diff.data());
                  const double q =
                      la::QuadForm(density.precision[c], diff.data(), d);
                  logp[c] = density.log_coeff[c] - 0.5 * q;
                }
                double* gamma = resp.Row(batch.s_rows.start_row +
                                         static_cast<int64_t>(r));
                acc->ll += internal::PosteriorFromLogps(logp.data(), k, gamma);
                for (size_t c = 0; c < k; ++c) acc->n_k[c] += gamma[c];
              }
            }
            worker_status[static_cast<size_t>(w)] = cursor.status();
          },
          [&](EAcc&& acc, int) {
            ll += acc.ll;
            for (size_t c = 0; c < k; ++c) resp.n_k[c] += acc.n_k[c];
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));

    // ---- M-step mean pass (join recomputed).
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    mu_sum.assign(k * d, 0.0);
    {
      core::PhaseScope phase(report, "m_step_mean");
      exec::ParallelReduce<std::vector<double>>(
          ranges,
          [&](exec::Range range, int w, std::vector<double>* acc) {
            acc->assign(k * d, 0.0);
            std::vector<double> x(d);
            join::JoinBatch batch;
            join::JoinCursor cursor(&rel, pools.Get(w), options.batch_rows);
            cursor.SetPositionRange(range.begin, range.end);
            while (cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
                const double* gamma = resp.Row(batch.s_rows.start_row +
                                               static_cast<int64_t>(r));
                for (size_t c = 0; c < k; ++c) {
                  la::Axpy(gamma[c], x.data(), acc->data() + c * d, d);
                }
              }
            }
            worker_status[static_cast<size_t>(w)] = cursor.status();
          },
          [&](std::vector<double>&& acc, int) {
            for (size_t j = 0; j < k * d; ++j) mu_sum[j] += acc[j];
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));
    for (size_t c = 0; c < k; ++c) {
      const double inv_nk = 1.0 / std::max(resp.n_k[c], 1e-300);
      for (size_t j = 0; j < d; ++j) {
        params.mu(c, j) = mu_sum[c * d + j] * inv_nk;
      }
      CountMults(d);
    }

    // ---- M-step covariance pass (join recomputed, new means).
    for (size_t i = 0; i < rel.num_joins(); ++i) {
      FML_RETURN_IF_ERROR(views[i].Load(rel.attrs[i], pool));
    }
    for (size_t c = 0; c < k; ++c) sigma_sum[c].Resize(d, d);
    {
      core::PhaseScope phase(report, "m_step_cov");
      exec::ParallelReduce<std::vector<Matrix>>(
          ranges,
          [&](exec::Range range, int w, std::vector<Matrix>* acc) {
            acc->assign(k, Matrix());
            for (size_t c = 0; c < k; ++c) (*acc)[c].Resize(d, d);
            std::vector<double> x(d);
            std::vector<double> diff(d);
            join::JoinBatch batch;
            join::JoinCursor cursor(&rel, pools.Get(w), options.batch_rows);
            cursor.SetPositionRange(range.begin, range.end);
            while (cursor.Next(&batch)) {
              for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
                join::AssembleJoinedRow(rel, batch.s_rows, r, views, x.data());
                const double* gamma = resp.Row(batch.s_rows.start_row +
                                               static_cast<int64_t>(r));
                for (size_t c = 0; c < k; ++c) {
                  CenterInto(x.data(), params.mu.Row(c).data(), d,
                             diff.data());
                  la::AddOuter(gamma[c], diff.data(), d, diff.data(), d,
                               &(*acc)[c], 0, 0);
                }
              }
            }
            worker_status[static_cast<size_t>(w)] = cursor.status();
          },
          [&](std::vector<Matrix>&& acc, int) {
            for (size_t c = 0; c < k; ++c) sigma_sum[c].Add(acc[c]);
          });
    }
    FML_RETURN_IF_ERROR(exec::FirstError(worker_status));
    for (size_t c = 0; c < k; ++c) {
      sigma_sum[c].Scale(1.0 / std::max(resp.n_k[c], 1e-300));
      for (size_t j = 0; j < d; ++j) sigma_sum[c](j, j) += options.cov_reg;
      params.sigma[c] = sigma_sum[c];
      params.pi[c] = resp.n_k[c] / static_cast<double>(n);
    }

    if (internal::Converged(loglik, ll, options.tol)) {
      loglik = ll;
      ++iter;
      break;
    }
    loglik = ll;
  }

  scope.Finish(iter, loglik);
  return params;
}

}  // namespace factorml::gmm

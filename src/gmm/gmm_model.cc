#include "gmm/gmm_model.h"

#include <algorithm>
#include <cmath>

#include "common/opcount.h"

namespace factorml::gmm {

GmmParams GmmParams::Init(const la::Matrix& seed_rows, double spread) {
  const size_t k = seed_rows.rows();
  const size_t d = seed_rows.cols();
  FML_CHECK_GT(k, 0u);
  FML_CHECK_GT(d, 0u);
  GmmParams p;
  p.pi.assign(k, 1.0 / static_cast<double>(k));
  p.mu = seed_rows;
  p.sigma.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    la::Matrix s = la::Matrix::Identity(d);
    s.Scale(spread);
    p.sigma.push_back(std::move(s));
  }
  return p;
}

double GmmParams::MaxAbsDiff(const GmmParams& a, const GmmParams& b) {
  FML_CHECK_EQ(a.num_components(), b.num_components());
  FML_CHECK_EQ(a.dims(), b.dims());
  double m = 0.0;
  for (size_t k = 0; k < a.pi.size(); ++k) {
    m = std::max(m, std::fabs(a.pi[k] - b.pi[k]));
    m = std::max(m, la::Matrix::MaxAbsDiff(a.sigma[k], b.sigma[k]));
  }
  m = std::max(m, la::Matrix::MaxAbsDiff(a.mu, b.mu));
  return m;
}

Result<GmmDensity> GmmDensity::From(const GmmParams& params) {
  const size_t k = params.num_components();
  const size_t d = params.dims();
  const double log_two_pi = 1.8378770664093454835606594728112;
  GmmDensity out;
  out.precision.reserve(k);
  out.log_coeff.reserve(k);
  la::Cholesky chol;
  for (size_t c = 0; c < k; ++c) {
    FML_RETURN_IF_ERROR(chol.FactorWithJitter(params.sigma[c]));
    out.precision.push_back(chol.Inverse());
    const double log_det = chol.LogDet();
    const double pi_c = std::max(params.pi[c], 1e-300);
    out.log_coeff.push_back(std::log(pi_c) -
                            0.5 * (static_cast<double>(d) * log_two_pi +
                                   log_det));
  }
  return out;
}

double LogSumExp(const double* v, size_t n) {
  double m = v[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, v[i]);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += std::exp(v[i] - m);
  CountExps(n + 1);
  CountAdds(n);
  return m + std::log(s);
}

}  // namespace factorml::gmm

#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "common/stopwatch.h"
#include "gmm/em_util.h"
#include "gmm/trainers.h"
#include "join/materialize.h"
#include "la/ops.h"
#include "storage/table.h"

namespace factorml::gmm {

namespace {

using internal::Responsibilities;
using la::Matrix;

/// Subtracts mu (length d) from x into diff, counting the d subtractions
/// the paper's cost model charges per tuple (Sec. V-B).
inline void CenterInto(const double* x, const double* mu, size_t d,
                       double* diff) {
  for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu[j];
  CountSubs(d);
}

}  // namespace

Result<GmmParams> TrainGmmMaterialized(const join::NormalizedRelations& rel,
                                       const GmmOptions& options,
                                       storage::BufferPool* pool,
                                       core::TrainReport* report) {
  FML_RETURN_IF_ERROR(rel.Validate());
  internal::ReportScope scope(report, "M-GMM");

  // Line 1 of Algorithm 1: compute the join and materialize T on disk.
  Stopwatch mat_watch;
  FML_ASSIGN_OR_RETURN(
      storage::Table t,
      join::MaterializeJoin(rel, pool, options.temp_dir + "/m_gmm_T.fml"));
  if (report != nullptr) {
    report->materialize_seconds = mat_watch.ElapsedSeconds();
  }

  const size_t k = options.num_components;
  const size_t d = rel.total_dims();
  const size_t y_off = rel.has_target ? 1 : 0;
  const int64_t n = t.num_rows();

  FML_ASSIGN_OR_RETURN(Matrix seeds, internal::InitSeedRows(rel, pool, options));
  GmmParams params = GmmParams::Init(seeds, options.init_spread);

  Responsibilities resp;
  resp.Reset(static_cast<size_t>(n), k);

  std::vector<double> logp(k);
  std::vector<double> diff(d);
  std::vector<Matrix> sigma_sum(k);
  std::vector<double> mu_sum;  // k * d

  double loglik = -std::numeric_limits<double>::infinity();
  int iter = 0;
  storage::RowBatch batch;
  for (; iter < options.max_iters; ++iter) {
    FML_ASSIGN_OR_RETURN(GmmDensity density, GmmDensity::From(params));

    // ---- E-step: one full read of T (Lines 4-8).
    double ll = 0.0;
    std::fill(resp.n_k.begin(), resp.n_k.end(), 0.0);
    storage::TableScanner e_scan(&t, pool, options.batch_rows);
    while (e_scan.Next(&batch)) {
      for (size_t r = 0; r < batch.num_rows; ++r) {
        const double* x = batch.feats.Row(r).data() + y_off;
        for (size_t c = 0; c < k; ++c) {
          CenterInto(x, params.mu.Row(c).data(), d, diff.data());
          const double q = la::QuadForm(density.precision[c], diff.data(), d);
          logp[c] = density.log_coeff[c] - 0.5 * q;
        }
        double* gamma = resp.Row(batch.start_row + static_cast<int64_t>(r));
        ll += internal::PosteriorFromLogps(logp.data(), k, gamma);
        for (size_t c = 0; c < k; ++c) resp.n_k[c] += gamma[c];
      }
    }
    FML_RETURN_IF_ERROR(e_scan.status());

    // ---- M-step, mean update: second read of T (Lines 10-15).
    mu_sum.assign(k * d, 0.0);
    storage::TableScanner mu_scan(&t, pool, options.batch_rows);
    while (mu_scan.Next(&batch)) {
      for (size_t r = 0; r < batch.num_rows; ++r) {
        const double* x = batch.feats.Row(r).data() + y_off;
        const double* gamma =
            resp.Row(batch.start_row + static_cast<int64_t>(r));
        for (size_t c = 0; c < k; ++c) {
          la::Axpy(gamma[c], x, mu_sum.data() + c * d, d);
        }
      }
    }
    FML_RETURN_IF_ERROR(mu_scan.status());
    for (size_t c = 0; c < k; ++c) {
      const double inv_nk = 1.0 / std::max(resp.n_k[c], 1e-300);
      for (size_t j = 0; j < d; ++j) {
        params.mu(c, j) = mu_sum[c * d + j] * inv_nk;
      }
      CountMults(d);
    }

    // ---- M-step, covariance update: third read of T (Lines 16-21).
    for (size_t c = 0; c < k; ++c) sigma_sum[c].Resize(d, d);
    storage::TableScanner sg_scan(&t, pool, options.batch_rows);
    while (sg_scan.Next(&batch)) {
      for (size_t r = 0; r < batch.num_rows; ++r) {
        const double* x = batch.feats.Row(r).data() + y_off;
        const double* gamma =
            resp.Row(batch.start_row + static_cast<int64_t>(r));
        for (size_t c = 0; c < k; ++c) {
          CenterInto(x, params.mu.Row(c).data(), d, diff.data());
          la::AddOuter(gamma[c], diff.data(), d, diff.data(), d,
                       &sigma_sum[c], 0, 0);
        }
      }
    }
    FML_RETURN_IF_ERROR(sg_scan.status());
    for (size_t c = 0; c < k; ++c) {
      sigma_sum[c].Scale(1.0 / std::max(resp.n_k[c], 1e-300));
      for (size_t j = 0; j < d; ++j) sigma_sum[c](j, j) += options.cov_reg;
      params.sigma[c] = sigma_sum[c];
      params.pi[c] = resp.n_k[c] / static_cast<double>(n);
    }

    if (internal::Converged(loglik, ll, options.tol)) {
      loglik = ll;
      ++iter;
      break;
    }
    loglik = ll;
  }

  scope.Finish(iter, loglik);
  return params;
}

}  // namespace factorml::gmm

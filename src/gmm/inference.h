#ifndef FACTORML_GMM_INFERENCE_H_
#define FACTORML_GMM_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gmm/gmm_model.h"
#include "la/matrix.h"

namespace factorml::gmm {

/// Inference utilities over a trained mixture: density evaluation, soft
/// and hard cluster assignment, and sampling. These are what a downstream
/// application (segmentation, anomaly scoring, data synthesis) calls after
/// training with any of the M/S/F algorithms.

/// log p(x) = log sum_k pi_k N(x | mu_k, Sigma_k) for one point x
/// (length d). `density` must be built from the same params.
double MixtureLogDensity(const GmmDensity& density, const la::Matrix& mu,
                         const double* x);

/// Posterior responsibilities gamma_k = p(z = k | x) for one point
/// (written to `gamma`, length K). Returns log p(x).
double PosteriorResponsibilities(const GmmDensity& density,
                                 const la::Matrix& mu, const double* x,
                                 double* gamma);

/// Index of the most probable component for x (hard assignment).
size_t MostLikelyComponent(const GmmDensity& density, const la::Matrix& mu,
                           const double* x);

/// Draws n iid samples from the mixture: component by the mixing weights,
/// point by mu_k + L_k z with L_k the Cholesky factor of Sigma_k.
Result<la::Matrix> SampleFromMixture(const GmmParams& params, size_t n,
                                     uint64_t seed);

/// Mean log-density of a set of points (rows of x) under the mixture —
/// the held-out likelihood metric used to compare model quality.
Result<double> MeanLogDensity(const GmmParams& params, const la::Matrix& x);

}  // namespace factorml::gmm

#endif  // FACTORML_GMM_INFERENCE_H_

#include "gmm/inference.h"

#include <cmath>
#include <vector>

#include "common/opcount.h"
#include "common/rng.h"
#include "la/cholesky.h"
#include "la/ops.h"

namespace factorml::gmm {

namespace {

void ComponentLogps(const GmmDensity& density, const la::Matrix& mu,
                    const double* x, std::vector<double>* logp) {
  const size_t k = density.precision.size();
  const size_t d = mu.cols();
  logp->resize(k);
  std::vector<double> diff(d);
  for (size_t c = 0; c < k; ++c) {
    const double* mu_c = mu.Row(c).data();
    for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu_c[j];
    CountSubs(d);
    (*logp)[c] = density.log_coeff[c] -
                 0.5 * la::QuadForm(density.precision[c], diff.data(), d);
  }
}

}  // namespace

double MixtureLogDensity(const GmmDensity& density, const la::Matrix& mu,
                         const double* x) {
  std::vector<double> logp;
  ComponentLogps(density, mu, x, &logp);
  return LogSumExp(logp.data(), logp.size());
}

double PosteriorResponsibilities(const GmmDensity& density,
                                 const la::Matrix& mu, const double* x,
                                 double* gamma) {
  std::vector<double> logp;
  ComponentLogps(density, mu, x, &logp);
  const double lse = LogSumExp(logp.data(), logp.size());
  for (size_t c = 0; c < logp.size(); ++c) {
    gamma[c] = std::exp(logp[c] - lse);
  }
  CountExps(logp.size());
  return lse;
}

size_t MostLikelyComponent(const GmmDensity& density, const la::Matrix& mu,
                           const double* x) {
  std::vector<double> logp;
  ComponentLogps(density, mu, x, &logp);
  size_t best = 0;
  for (size_t c = 1; c < logp.size(); ++c) {
    if (logp[c] > logp[best]) best = c;
  }
  return best;
}

Result<la::Matrix> SampleFromMixture(const GmmParams& params, size_t n,
                                     uint64_t seed) {
  const size_t k = params.num_components();
  const size_t d = params.dims();
  if (k == 0 || d == 0) {
    return Status::InvalidArgument("empty mixture");
  }
  // Pre-factor every covariance.
  std::vector<la::Cholesky> chol(k);
  for (size_t c = 0; c < k; ++c) {
    FML_RETURN_IF_ERROR(chol[c].FactorWithJitter(params.sigma[c]));
  }
  Rng rng(seed);
  la::Matrix out(n, d);
  std::vector<double> z(d);
  std::vector<double> y(d);
  for (size_t i = 0; i < n; ++i) {
    // Component by inverse CDF over the mixing weights.
    const double u = rng.NextDouble();
    double acc = 0.0;
    size_t c = k - 1;
    for (size_t j = 0; j < k; ++j) {
      acc += params.pi[j];
      if (u < acc) {
        c = j;
        break;
      }
    }
    for (size_t j = 0; j < d; ++j) z[j] = rng.NextGaussian();
    chol[c].MultiplyLower(z.data(), y.data());
    const double* mu_c = params.mu.Row(c).data();
    double* row = out.Row(i).data();
    for (size_t j = 0; j < d; ++j) row[j] = mu_c[j] + y[j];
    CountAdds(d);
  }
  return out;
}

Result<double> MeanLogDensity(const GmmParams& params, const la::Matrix& x) {
  if (x.rows() == 0 || x.cols() != params.dims()) {
    return Status::InvalidArgument("shape mismatch in MeanLogDensity");
  }
  FML_ASSIGN_OR_RETURN(GmmDensity density, GmmDensity::From(params));
  double total = 0.0;
  for (size_t i = 0; i < x.rows(); ++i) {
    total += MixtureLogDensity(density, params.mu, x.Row(i).data());
  }
  return total / static_cast<double>(x.rows());
}

}  // namespace factorml::gmm

#include "gmm/em_util.h"

#include <cmath>
#include <set>

#include "common/opcount.h"
#include "common/rng.h"
#include "core/pipeline/access_strategy.h"
#include "storage/table.h"

namespace factorml::gmm::internal {

Result<la::Matrix> InitSeedRows(const join::NormalizedRelations& rel,
                                storage::BufferPool* pool,
                                const GmmOptions& options) {
  const size_t k = options.num_components;
  const int64_t n = rel.s.num_rows();
  if (static_cast<int64_t>(k) > n) {
    return Status::InvalidArgument("more components than data points");
  }

  std::vector<int64_t> rows(k);
  switch (options.init) {
    case GmmInit::kSpreadRows:
      for (size_t c = 0; c < k; ++c) {
        rows[c] = static_cast<int64_t>(c) * n / static_cast<int64_t>(k);
      }
      break;
    case GmmInit::kRandomRows: {
      // K distinct rows; rejection is cheap because K << N.
      Rng rng(options.seed);
      std::set<int64_t> chosen;
      while (chosen.size() < k) {
        chosen.insert(
            static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n))));
      }
      rows.assign(chosen.begin(), chosen.end());
      break;
    }
  }
  return core::pipeline::AssembleJoinedRows(rel, pool, rows);
}

double PosteriorFromLogps(const double* logp, size_t k, double* gamma_row) {
  const double lse = LogSumExp(logp, k);
  for (size_t c = 0; c < k; ++c) {
    gamma_row[c] = std::exp(logp[c] - lse);
  }
  CountExps(k);
  CountSubs(k);
  return lse;
}

bool Converged(double prev_ll, double ll, double tol) {
  if (tol <= 0.0) return false;
  if (!std::isfinite(prev_ll)) return false;
  return std::fabs(ll - prev_ll) < tol * std::fabs(ll);
}

}  // namespace factorml::gmm::internal

// GMM as a core/pipeline ModelProgram: the EM recurrence of the paper
// (Algorithm 1 / Sec. V) expressed as three full passes per iteration —
// e_step, m_step_mean, m_step_cov — with a dense row path shared by the M
// and S strategies and the factorized path of F-GMM (Eqs. 19-24). The
// former m_gmm.cc / s_gmm.cc / f_gmm.cc trainers are now thin wrappers
// that run this one program under the matching AccessStrategy; at
// --threads=1 the pipeline replays their exact op/I/O stream.

#include <cmath>
#include <limits>
#include <vector>

#include "common/opcount.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "gmm/em_util.h"
#include "gmm/trainers.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace factorml::gmm {

namespace {

using core::pipeline::DenseBlock;
using core::pipeline::FactorizedBlock;
using core::pipeline::PipelineContext;
using internal::Responsibilities;
using join::AttributeTableView;
using la::Matrix;

/// Subtracts mu (length d) from x into diff, counting the d subtractions
/// the paper's cost model charges per tuple (Sec. V-B).
inline void CenterInto(const double* x, const double* mu, size_t d,
                       double* diff) {
  for (size_t j = 0; j < d; ++j) diff[j] = x[j] - mu[j];
  CountSubs(d);
}

/// Per-pass factorized state for one attribute table and one component:
/// the centered rows PD_Ri = x_Ri - mu[slice i] for every rid (Eq. 20),
/// computed once per R tuple per pass and reused for all matching S rows.
struct CenteredCache {
  // pd[c] is nRi x dRi.
  std::vector<Matrix> pd;
  // diag[c][rid] = PD^T * I_ii * PD, the reusable diagonal quadratic block
  // of the E-step (the LR term of Eq. 12 / i==j terms of Eq. 19).
  std::vector<std::vector<double>> diag;
};

/// Rebuilds the centered caches against the current means. `with_diag`
/// additionally caches the diagonal quadratic form (E-step only).
void BuildCenteredCaches(const std::vector<AttributeTableView>& views,
                         const GmmParams& params,
                         const std::vector<size_t>& attr_offset,
                         const GmmDensity* density, bool with_diag,
                         std::vector<CenteredCache>* caches) {
  const size_t k = params.num_components();
  caches->resize(views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    const Matrix& feats = views[i].feats();
    const size_t n_ri = feats.rows();
    const size_t d_ri = feats.cols();
    auto& cache = (*caches)[i];
    cache.pd.assign(k, Matrix());
    cache.diag.assign(k, {});
    for (size_t c = 0; c < k; ++c) {
      Matrix& pd = cache.pd[c];
      pd.Resize(n_ri, d_ri);
      const double* mu_slice = params.mu.Row(c).data() + attr_offset[i];
      for (size_t rid = 0; rid < n_ri; ++rid) {
        CenterInto(feats.Row(rid).data(), mu_slice, d_ri, pd.Row(rid).data());
      }
      if (with_diag) {
        auto& diag = cache.diag[c];
        diag.resize(n_ri);
        for (size_t rid = 0; rid < n_ri; ++rid) {
          diag[rid] =
              la::Bilinear(density->precision[c], attr_offset[i],
                           attr_offset[i], pd.Row(rid).data(), d_ri,
                           pd.Row(rid).data(), d_ri);
        }
      }
    }
  }
}

class GmmProgram final : public core::pipeline::ModelProgram {
 public:
  explicit GmmProgram(const GmmOptions& options) : opt_(options) {}

  const char* Name() const override { return "GMM"; }
  const char* TempStem() const override { return "gmm"; }
  uint32_t Capabilities() const override {
    return core::pipeline::kFullPass | core::pipeline::kFactorized;
  }
  int MaxIterations() const override { return opt_.max_iters; }
  int NumPasses(int) const override { return 3; }
  const char* PassName(int pass) const override {
    switch (pass) {
      case kEStep:
        return "e_step";
      case kMeanStep:
        return "m_step_mean";
      default:
        return "m_step_cov";
    }
  }

  Status Init(const PipelineContext& ctx) override {
    rel_ = ctx.rel;
    factorized_ = ctx.factorized();
    k_ = opt_.num_components;
    d_ = rel_->total_dims();
    ds_ = rel_->ds();
    q_ = rel_->num_joins();
    y_off_ = rel_->has_target ? 1 : 0;
    n_ = rel_->s.num_rows();
    attr_offset_.resize(q_);
    for (size_t i = 0; i < q_; ++i) attr_offset_[i] = rel_->FeatureOffset(i + 1);

    FML_ASSIGN_OR_RETURN(Matrix seeds,
                         internal::InitSeedRows(*rel_, ctx.pool, opt_));
    params_ = GmmParams::Init(seeds, opt_.init_spread);
    resp_.Reset(static_cast<size_t>(n_), k_);
    sigma_sum_.resize(k_);
    if (factorized_) gsum_.resize(q_);
    loglik_ = -std::numeric_limits<double>::infinity();
    return Status::OK();
  }

  Status BeginPass(const PipelineContext& ctx, int /*iter*/, int pass,
                   int workers) override {
    acc_.resize(static_cast<size_t>(workers));
    if (factorized_) {
      // The rid-span contract: slot w only ever sees table-0 rids inside
      // its morsel range, so its per-rid state (gsum[0]) is sized to the
      // span, not the table — O(n_R0) across all slots instead of
      // O(slots x n_R0). Further tables' rids are unordered within a
      // chunk and stay full-domain.
      const int64_t n_r0 = static_cast<int64_t>((*ctx.views)[0].feats().rows());
      slot_spans_.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        slot_spans_[static_cast<size_t>(w)] =
            core::pipeline::SlotRidSpan(ctx, w, n_r0);
      }
    }
    switch (pass) {
      case kEStep: {
        FML_ASSIGN_OR_RETURN(density_, GmmDensity::From(params_));
        if (factorized_) {
          // Once per R tuple: centered slices and diagonal quadratic blocks.
          BuildCenteredCaches(*ctx.views, params_, attr_offset_, &density_,
                              /*with_diag=*/true, &caches_);
        }
        ll_sum_ = 0.0;
        std::fill(resp_.n_k.begin(), resp_.n_k.end(), 0.0);
        for (auto& acc : acc_) {
          acc.ll = 0.0;
          acc.n_k.assign(k_, 0.0);
          acc.logp.resize(k_);
          acc.diff.resize(factorized_ ? ds_ : d_);
        }
        break;
      }
      case kMeanStep: {
        const size_t mu_len = k_ * (factorized_ ? ds_ : d_);
        mu_sum_.assign(mu_len, 0.0);
        for (auto& acc : acc_) acc.mu_sum.assign(mu_len, 0.0);
        if (factorized_) {
          for (size_t i = 0; i < q_; ++i) {
            const size_t n_ri = (*ctx.views)[i].feats().rows();
            gsum_[i].assign(k_, std::vector<double>(n_ri, 0.0));
            for (size_t w = 0; w < acc_.size(); ++w) {
              Acc& acc = acc_[w];
              acc.gsum.resize(q_);
              const size_t len =
                  i == 0 ? static_cast<size_t>(slot_spans_[w].size()) : n_ri;
              acc.gsum[i].assign(k_, std::vector<double>(len, 0.0));
            }
          }
        }
        break;
      }
      case kCovStep: {
        if (factorized_) {
          // Centered caches against the *updated* means; no diagonal quad
          // cache is needed here.
          BuildCenteredCaches(*ctx.views, params_, attr_offset_, nullptr,
                              /*with_diag=*/false, &caches_);
        }
        for (size_t c = 0; c < k_; ++c) sigma_sum_[c].Resize(d_, d_);
        for (auto& acc : acc_) {
          acc.sigma.assign(k_, Matrix());
          for (size_t c = 0; c < k_; ++c) acc.sigma[c].Resize(d_, d_);
          acc.diff.resize(factorized_ ? ds_ : d_);
        }
        break;
      }
    }
    return Status::OK();
  }

  void AccumulateDense(int pass, int worker, const DenseBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    if (block.strips != nullptr) {
      AccumulateDenseStrips(pass, worker, block);
      return;
    }
    switch (pass) {
      case kEStep: {
        // One full read of the joined rows (Lines 4-8 of Algorithm 1).
        for (size_t r = 0; r < block.num_rows; ++r) {
          const double* x = block.X(r);
          for (size_t c = 0; c < k_; ++c) {
            CenterInto(x, params_.mu.Row(c).data(), d_, acc.diff.data());
            const double q =
                la::QuadForm(density_.precision[c], acc.diff.data(), d_);
            acc.logp[c] = density_.log_coeff[c] - 0.5 * q;
          }
          double* gamma =
              resp_.Row(block.start_row + static_cast<int64_t>(r));
          acc.ll += internal::PosteriorFromLogps(acc.logp.data(), k_, gamma);
          for (size_t c = 0; c < k_; ++c) acc.n_k[c] += gamma[c];
        }
        break;
      }
      case kMeanStep: {
        // Second read (Lines 10-15): responsibility-weighted feature sums.
        for (size_t r = 0; r < block.num_rows; ++r) {
          const double* x = block.X(r);
          const double* gamma =
              resp_.Row(block.start_row + static_cast<int64_t>(r));
          for (size_t c = 0; c < k_; ++c) {
            la::Axpy(gamma[c], x, acc.mu_sum.data() + c * d_, d_);
          }
        }
        break;
      }
      case kCovStep: {
        // Third read (Lines 16-21): centered outer products.
        for (size_t r = 0; r < block.num_rows; ++r) {
          const double* x = block.X(r);
          const double* gamma =
              resp_.Row(block.start_row + static_cast<int64_t>(r));
          for (size_t c = 0; c < k_; ++c) {
            CenterInto(x, params_.mu.Row(c).data(), d_, acc.diff.data());
            la::AddOuter(gamma[c], acc.diff.data(), d_, acc.diff.data(), d_,
                         &acc.sigma[c], 0, 0);
          }
        }
        break;
      }
    }
  }

  /// Batched (--kernels=simd) twins of the three dense passes. The
  /// component-structured kernels work on a centered d x rows strip
  /// (diff[i*rows + r]); the per-row posterior normalization stays
  /// row-at-a-time so its exp/log stream matches the scalar path exactly.
  /// Every kernel call is charged the op counts of the per-row loop it
  /// replaces.
  void AccumulateDenseStrips(int pass, int worker, const DenseBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::ColumnStrips& st = *block.strips;
    const la::Kernels& kern = la::Active();
    std::vector<const double*> cols(d_);
    std::vector<double> diffm;          // centered strip, d x rows row-major
    std::vector<const double*> dptr;    // row pointers into diffm
    std::vector<double> gbuf;           // contiguous per-component gammas
    Matrix qbuf;                        // k x rows quadratic forms
    if (pass != kMeanStep) {
      diffm.resize(d_ * st.strip_rows);
      dptr.resize(d_);
    }
    if (pass == kEStep) qbuf.Resize(k_, st.strip_rows);
    if (pass != kEStep) gbuf.resize(st.strip_rows);
    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      const int64_t base =
          block.start_row + static_cast<int64_t>(st.StripStart(s));
      for (size_t j = 0; j < d_; ++j) cols[j] = block.StripX(s, j);
      switch (pass) {
        case kEStep: {
          for (size_t c = 0; c < k_; ++c) {
            const double* mu = params_.mu.Row(c).data();
            for (size_t i = 0; i < d_; ++i) {
              const double* xi = cols[i];
              double* di = diffm.data() + i * rows;
              for (size_t r = 0; r < rows; ++r) di[r] = xi[r] - mu[i];
            }
            CountSubs(rows * d_);  // the per-row CenterInto stream
            kern.quadform_strip(diffm.data(), d_, rows,
                                density_.precision[c].data(),
                                density_.precision[c].cols(),
                                qbuf.Row(c).data());
            CountMults(rows * (d_ * d_ + d_));  // the QuadForm stream
            CountAdds(rows * (d_ * d_ + d_));
          }
          for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < k_; ++c) {
              acc.logp[c] = density_.log_coeff[c] - 0.5 * qbuf(c, r);
            }
            double* gamma = resp_.Row(base + static_cast<int64_t>(r));
            acc.ll +=
                internal::PosteriorFromLogps(acc.logp.data(), k_, gamma);
            for (size_t c = 0; c < k_; ++c) acc.n_k[c] += gamma[c];
          }
          break;
        }
        case kMeanStep: {
          for (size_t c = 0; c < k_; ++c) {
            // resp_ rows are k_-strided; the kernel wants one contiguous
            // gamma column per component.
            for (size_t r = 0; r < rows; ++r) {
              gbuf[r] = resp_.Row(base + static_cast<int64_t>(r))[c];
            }
            kern.colsum_strip(cols.data(), d_, rows, gbuf.data(),
                              acc.mu_sum.data() + c * d_);
            CountMults(rows * d_);  // the per-row Axpy(gamma, x) stream
            CountAdds(rows * d_);
          }
          break;
        }
        case kCovStep: {
          for (size_t c = 0; c < k_; ++c) {
            const double* mu = params_.mu.Row(c).data();
            for (size_t i = 0; i < d_; ++i) {
              const double* xi = cols[i];
              double* di = diffm.data() + i * rows;
              for (size_t r = 0; r < rows; ++r) di[r] = xi[r] - mu[i];
              dptr[i] = di;
            }
            CountSubs(rows * d_);
            for (size_t r = 0; r < rows; ++r) {
              gbuf[r] = resp_.Row(base + static_cast<int64_t>(r))[c];
            }
            kern.syrk_strip(dptr.data(), d_, rows, gbuf.data(),
                            acc.sigma[c].data(), acc.sigma[c].cols());
            CountMults(rows * (d_ * d_ + d_));  // the AddOuter stream
            CountAdds(rows * d_ * d_);
          }
          break;
        }
      }
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  void AccumulateFactorized(int pass, int worker,
                            const FactorizedBlock& block) override {
    if (block.s_strips != nullptr) {
      AccumulateFactorizedStrips(pass, worker, block);
      return;
    }
    Acc& acc = acc_[static_cast<size_t>(worker)];
    const storage::RowBatch& s_rows = *block.s_rows;
    switch (pass) {
      case kEStep: {
        std::vector<double>& pds = acc.diff;  // centered S slice, per worker
        for (size_t r = 0; r < s_rows.num_rows; ++r) {
          const double* xs = s_rows.feats.Row(r).data() + y_off_;
          const int64_t* keys = s_rows.KeysOf(r);
          for (size_t c = 0; c < k_; ++c) {
            CenterInto(xs, params_.mu.Row(c).data(), ds_, pds.data());
            // Block decomposition of (x - mu)^T I (x - mu), Eq. 19:
            // the S-diagonal block plus, per attribute table, the two
            // cross blocks (UR + LL, Eqs. 10-11) and the cached
            // diagonal block (LR, Eq. 12); multi-way adds the
            // attr-attr cross blocks.
            double quad = la::Bilinear(density_.precision[c], 0, 0,
                                       pds.data(), ds_, pds.data(), ds_);
            for (size_t i = 0; i < q_; ++i) {
              const int64_t rid = keys[rel_->FkKeyIndex(i)];
              const double* pdr = caches_[i].pd[c].Row(rid).data();
              const size_t dri = rel_->dr(i);
              const double ur =
                  la::Bilinear(density_.precision[c], 0, attr_offset_[i],
                               pds.data(), ds_, pdr, dri);
              if (opt_.exploit_symmetry) {
                // LL = UR because the precision matrix is symmetric.
                quad += 2.0 * ur;
                CountMults(1);
              } else {
                quad += ur + la::Bilinear(density_.precision[c],
                                          attr_offset_[i], 0, pdr, dri,
                                          pds.data(), ds_);
              }
              quad += caches_[i].diag[c][rid];
              CountAdds(3);
              for (size_t j = i + 1; j < q_; ++j) {
                const int64_t rid_j = keys[rel_->FkKeyIndex(j)];
                const double* pdj = caches_[j].pd[c].Row(rid_j).data();
                const size_t drj = rel_->dr(j);
                const double cross =
                    la::Bilinear(density_.precision[c], attr_offset_[i],
                                 attr_offset_[j], pdr, dri, pdj, drj);
                if (opt_.exploit_symmetry) {
                  quad += 2.0 * cross;
                  CountMults(1);
                } else {
                  quad += cross + la::Bilinear(density_.precision[c],
                                               attr_offset_[j],
                                               attr_offset_[i], pdj, drj,
                                               pdr, dri);
                }
                CountAdds(2);
              }
            }
            acc.logp[c] = density_.log_coeff[c] - 0.5 * quad;
          }
          double* gamma =
              resp_.Row(s_rows.start_row + static_cast<int64_t>(r));
          acc.ll += internal::PosteriorFromLogps(acc.logp.data(), k_, gamma);
          for (size_t c = 0; c < k_; ++c) acc.n_k[c] += gamma[c];
        }
        break;
      }
      case kMeanStep: {
        const int64_t base0 = slot_spans_[static_cast<size_t>(worker)].begin;
        for (size_t r = 0; r < s_rows.num_rows; ++r) {
          const double* xs = s_rows.feats.Row(r).data() + y_off_;
          const int64_t* keys = s_rows.KeysOf(r);
          const double* gamma =
              resp_.Row(s_rows.start_row + static_cast<int64_t>(r));
          for (size_t c = 0; c < k_; ++c) {
            // S slice accumulates per fact tuple; the R slices only
            // accumulate responsibility mass per rid — the
            // factorization of Eq. 13/22 that replaces nS * dR
            // multiplies by nS adds. Table 0 indexes span-relative.
            la::Axpy(gamma[c], xs, acc.mu_sum.data() + c * ds_, ds_);
            for (size_t i = 0; i < q_; ++i) {
              const int64_t rid = keys[rel_->FkKeyIndex(i)];
              acc.gsum[i][c][static_cast<size_t>(
                  i == 0 ? rid - base0 : rid)] += gamma[c];
            }
            CountAdds(q_);
          }
        }
        break;
      }
      case kCovStep: {
        std::vector<double>& pds = acc.diff;
        for (size_t r = 0; r < s_rows.num_rows; ++r) {
          const double* xs = s_rows.feats.Row(r).data() + y_off_;
          const int64_t* keys = s_rows.KeysOf(r);
          const double* gamma =
              resp_.Row(s_rows.start_row + static_cast<int64_t>(r));
          for (size_t c = 0; c < k_; ++c) {
            CenterInto(xs, params_.mu.Row(c).data(), ds_, pds.data());
            Matrix& sg = acc.sigma[c];
            // Off-diagonal blocks must be accumulated per fact tuple;
            // the attribute-diagonal blocks (LR of Eq. 18 / M_ii of
            // Eq. 24) are deferred: only the responsibility mass per
            // rid is accumulated here and one outer product per R
            // tuple is added afterwards.
            la::AddOuter(gamma[c], pds.data(), ds_, pds.data(), ds_, &sg, 0,
                         0);
            for (size_t i = 0; i < q_; ++i) {
              const int64_t rid = keys[rel_->FkKeyIndex(i)];
              const double* pdr = caches_[i].pd[c].Row(rid).data();
              const size_t dri = rel_->dr(i);
              la::AddOuter(gamma[c], pds.data(), ds_, pdr, dri, &sg, 0,
                           attr_offset_[i]);
              if (!opt_.exploit_symmetry) {
                la::AddOuter(gamma[c], pdr, dri, pds.data(), ds_, &sg,
                             attr_offset_[i], 0);
              }
              for (size_t j = i + 1; j < q_; ++j) {
                const int64_t rid_j = keys[rel_->FkKeyIndex(j)];
                const double* pdj = caches_[j].pd[c].Row(rid_j).data();
                const size_t drj = rel_->dr(j);
                la::AddOuter(gamma[c], pdr, dri, pdj, drj, &sg,
                             attr_offset_[i], attr_offset_[j]);
                if (!opt_.exploit_symmetry) {
                  la::AddOuter(gamma[c], pdj, drj, pdr, dri, &sg,
                               attr_offset_[j], attr_offset_[i]);
                }
              }
            }
          }
        }
        break;
      }
    }
  }

  /// Batched (--kernels=simd) twins of the three factorized passes. The
  /// S-slice work runs on the driver-packed strips (`quadform_strip`,
  /// `colsum_strip`, `syrk_strip`); the FK1 group structure turns the
  /// table-0 attribute terms into per-run strip work (one precision-slice
  /// product per R1 tuple, then `col_dot_strip` / a single outer product
  /// over the run's rows); per-rid responsibility mass lands through
  /// `scatter_add_strip` in row-ascending order, bit-identical to the
  /// scalar scatter. Further tables (multi-way joins) and the cross blocks
  /// stay row-at-a-time over the centered strip. Every kernel call is
  /// charged the exact op counts of the per-row loop it replaces, and the
  /// posterior exp stream is untouched — the PR 7 determinism contract.
  void AccumulateFactorizedStrips(int pass, int worker,
                                  const FactorizedBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::ColumnStrips& st = *block.s_strips;
    const storage::RowBatch& s_rows = *block.s_rows;
    const std::vector<join::JoinGroup>& groups = *block.groups;
    const la::Kernels& kern = la::Active();
    const size_t dr0 = q_ > 0 ? rel_->dr(0) : 0;

    std::vector<const double*> cols(ds_);  // S feature strip columns
    std::vector<double> diffm;             // centered S slice, ds x rows
    std::vector<const double*> dptr(ds_);  // row pointers into diffm
    std::vector<double> gbuf;              // contiguous per-component gammas
    std::vector<double> vbuf;              // per-run precision-slice product
    std::vector<double> ubuf;              // per-run col_dot output
    std::vector<double> lbuf;              // per-run LL col_dot (no symmetry)
    std::vector<double> wsum;              // per-run weighted column sum
    Matrix qbuf;                           // k x rows quadratic forms
    if (pass != kMeanStep) diffm.resize(ds_ * st.strip_rows);
    if (pass == kEStep) {
      qbuf.Resize(k_, st.strip_rows);
      vbuf.resize(ds_);
      ubuf.resize(st.strip_rows);
      if (!opt_.exploit_symmetry) lbuf.resize(st.strip_rows);
    }
    if (pass != kEStep) gbuf.resize(st.strip_rows);
    if (pass == kCovStep) wsum.resize(ds_);
    // Per-table rid columns for the gather/scatter kernels (uncharged
    // index movement, like the scalar path's KeysOf reads).
    std::vector<std::vector<int64_t>> ridbuf;
    if (pass == kMeanStep) {
      // Table-0 rids are rebased to the slot's span so the scatter targets
      // the span-sized gsum[0] slot (the rid-span contract).
      const int64_t base0 = slot_spans_[static_cast<size_t>(worker)].begin;
      ridbuf.resize(q_);
      for (size_t i = 0; i < q_; ++i) ridbuf[i].resize(s_rows.num_rows);
      for (size_t r = 0; r < s_rows.num_rows; ++r) {
        const int64_t* keys = s_rows.KeysOf(r);
        for (size_t i = 0; i < q_; ++i) {
          const int64_t rid = keys[rel_->FkKeyIndex(i)];
          ridbuf[i][r] = i == 0 ? rid - base0 : rid;
        }
      }
    }

    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      const size_t row0 = st.StripStart(s);
      const int64_t base = s_rows.start_row + static_cast<int64_t>(row0);
      for (size_t j = 0; j < ds_; ++j) cols[j] = st.Col(s, y_off_ + j);
      switch (pass) {
        case kEStep: {
          for (size_t c = 0; c < k_; ++c) {
            const Matrix& prec = density_.precision[c];
            const double* mu = params_.mu.Row(c).data();
            for (size_t i = 0; i < ds_; ++i) {
              const double* xi = cols[i];
              double* di = diffm.data() + i * rows;
              for (size_t r = 0; r < rows; ++r) di[r] = xi[r] - mu[i];
            }
            CountSubs(rows * ds_);  // the per-row CenterInto stream
            kern.quadform_strip(diffm.data(), ds_, rows, prec.data(),
                                prec.cols(), qbuf.Row(c).data());
            CountMults(rows * (ds_ * ds_ + ds_));  // the S-diag Bilinear
            CountAdds(rows * (ds_ * ds_ + ds_));
            // Table-0 terms per FK1 run: UR (and LL) collapse to one
            // precision-slice product per R1 tuple followed by a strip
            // col-dot over the run's centered rows; the cached diagonal
            // block adds per row. Charged with the per-row Bilinear
            // formulas the run replaces.
            double* qrow = qbuf.Row(c).data();
            for (const auto& g : groups) {
              const size_t lo = std::max(g.offset, row0);
              const size_t hi = std::min(g.offset + g.count, row0 + rows);
              if (lo >= hi) continue;
              const size_t rn = hi - lo;
              const size_t ll = lo - row0;  // strip-local run start
              const double* pdr = caches_[0].pd[c].Row(g.rid).data();
              for (size_t i = 0; i < ds_; ++i) {
                vbuf[i] = kern.dot(prec.Row(i).data() + attr_offset_[0],
                                   pdr, dr0);
              }
              for (size_t i = 0; i < ds_; ++i) {
                dptr[i] = diffm.data() + i * rows + ll;
              }
              kern.col_dot_strip(dptr.data(), ds_, rn, vbuf.data(),
                                 ubuf.data());
              CountMults(rn * (ds_ * dr0 + ds_));  // the UR Bilinear stream
              CountAdds(rn * (ds_ * dr0 + ds_));
              const double diag = caches_[0].diag[c][g.rid];
              if (opt_.exploit_symmetry) {
                for (size_t r = 0; r < rn; ++r) {
                  qrow[ll + r] += 2.0 * ubuf[r] + diag;
                }
                CountMults(rn);
              } else {
                // LL = pdr^T P[off0:, 0:ds] pds: fold pdr through the
                // precision rows once per run, then one more col-dot.
                std::fill(vbuf.begin(), vbuf.end(), 0.0);
                for (size_t j2 = 0; j2 < dr0; ++j2) {
                  kern.axpy(pdr[j2],
                            prec.Row(attr_offset_[0] + j2).data(),
                            vbuf.data(), ds_);
                }
                kern.col_dot_strip(dptr.data(), ds_, rn, vbuf.data(),
                                   lbuf.data());
                for (size_t r = 0; r < rn; ++r) {
                  qrow[ll + r] += ubuf[r] + lbuf[r] + diag;
                }
                CountMults(rn * (dr0 * ds_ + dr0));  // the LL Bilinear
                CountAdds(rn * (dr0 * ds_ + dr0));
              }
              CountAdds(3 * rn);
            }
          }
          // Multi-way tables and cross blocks row-at-a-time over the
          // centered strip (the centered S slice is gathered back from
          // diffm — pure data movement), exactly the scalar code.
          if (q_ > 1) {
            for (size_t c = 0; c < k_; ++c) {
              const Matrix& prec = density_.precision[c];
              const double* mu = params_.mu.Row(c).data();
              for (size_t r = 0; r < rows; ++r) {
                double* pds = acc.diff.data();
                for (size_t i = 0; i < ds_; ++i) {
                  pds[i] = cols[i][r] - mu[i];
                }
                const int64_t* keys = s_rows.KeysOf(row0 + r);
                double extra = 0.0;
                for (size_t i = 0; i < q_; ++i) {
                  const int64_t rid = keys[rel_->FkKeyIndex(i)];
                  const double* pdr = caches_[i].pd[c].Row(rid).data();
                  const size_t dri = rel_->dr(i);
                  if (i >= 1) {
                    const double ur =
                        la::Bilinear(prec, 0, attr_offset_[i], pds, ds_,
                                     pdr, dri);
                    if (opt_.exploit_symmetry) {
                      extra += 2.0 * ur;
                      CountMults(1);
                    } else {
                      extra += ur + la::Bilinear(prec, attr_offset_[i], 0,
                                                 pdr, dri, pds, ds_);
                    }
                    extra += caches_[i].diag[c][rid];
                    CountAdds(3);
                  }
                  for (size_t j = i + 1; j < q_; ++j) {
                    const int64_t rid_j = keys[rel_->FkKeyIndex(j)];
                    const double* pdj = caches_[j].pd[c].Row(rid_j).data();
                    const size_t drj = rel_->dr(j);
                    const double cross =
                        la::Bilinear(prec, attr_offset_[i], attr_offset_[j],
                                     pdr, dri, pdj, drj);
                    if (opt_.exploit_symmetry) {
                      extra += 2.0 * cross;
                      CountMults(1);
                    } else {
                      extra += cross + la::Bilinear(prec, attr_offset_[j],
                                                    attr_offset_[i], pdj,
                                                    drj, pdr, dri);
                    }
                    CountAdds(2);
                  }
                }
                qbuf(c, r) += extra;
              }
            }
          }
          // Posterior row-at-a-time: identical exp stream to scalar.
          for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < k_; ++c) {
              acc.logp[c] = density_.log_coeff[c] - 0.5 * qbuf(c, r);
            }
            double* gamma = resp_.Row(base + static_cast<int64_t>(r));
            acc.ll +=
                internal::PosteriorFromLogps(acc.logp.data(), k_, gamma);
            for (size_t c = 0; c < k_; ++c) acc.n_k[c] += gamma[c];
          }
          break;
        }
        case kMeanStep: {
          for (size_t c = 0; c < k_; ++c) {
            for (size_t r = 0; r < rows; ++r) {
              gbuf[r] = resp_.Row(base + static_cast<int64_t>(r))[c];
            }
            kern.colsum_strip(cols.data(), ds_, rows, gbuf.data(),
                              acc.mu_sum.data() + c * ds_);
            CountMults(rows * ds_);  // the per-row Axpy(gamma, xs) stream
            CountAdds(rows * ds_);
            // Per-rid responsibility mass: scatter in row order — every
            // slot accumulates the same gamma sequence as the scalar
            // loop, so the merge (and the shard wire) stay bit-identical.
            for (size_t i = 0; i < q_; ++i) {
              kern.scatter_add_strip(ridbuf[i].data() + row0, gbuf.data(),
                                     rows, acc.gsum[i][c].data());
            }
            CountAdds(rows * q_);
          }
          break;
        }
        case kCovStep: {
          for (size_t c = 0; c < k_; ++c) {
            const double* mu = params_.mu.Row(c).data();
            for (size_t i = 0; i < ds_; ++i) {
              const double* xi = cols[i];
              double* di = diffm.data() + i * rows;
              for (size_t r = 0; r < rows; ++r) di[r] = xi[r] - mu[i];
              dptr[i] = di;
            }
            CountSubs(rows * ds_);
            for (size_t r = 0; r < rows; ++r) {
              gbuf[r] = resp_.Row(base + static_cast<int64_t>(r))[c];
            }
            Matrix& sg = acc.sigma[c];
            kern.syrk_strip(dptr.data(), ds_, rows, gbuf.data(), sg.data(),
                            sg.cols());
            CountMults(rows * (ds_ * ds_ + ds_));  // the S-diag AddOuter
            CountAdds(rows * ds_ * ds_);
            // Table-0 cross blocks per FK1 run: the responsibility-
            // weighted centered-row sum collapses the run to ONE outer
            // product per R1 tuple (and its mirror without symmetry).
            for (const auto& g : groups) {
              const size_t lo = std::max(g.offset, row0);
              const size_t hi = std::min(g.offset + g.count, row0 + rows);
              if (lo >= hi) continue;
              const size_t rn = hi - lo;
              const size_t ll = lo - row0;
              const double* pdr = caches_[0].pd[c].Row(g.rid).data();
              for (size_t i = 0; i < ds_; ++i) {
                dptr[i] = diffm.data() + i * rows + ll;
              }
              std::fill(wsum.begin(), wsum.end(), 0.0);
              kern.colsum_strip(dptr.data(), ds_, rn, gbuf.data() + ll,
                                wsum.data());
              kern.add_outer(1.0, wsum.data(), ds_, pdr, dr0,
                             sg.data() + attr_offset_[0], sg.cols());
              CountMults(rn * (ds_ * dr0 + ds_));  // the S x R0 AddOuter
              CountAdds(rn * ds_ * dr0);
              if (!opt_.exploit_symmetry) {
                kern.add_outer(1.0, pdr, dr0, wsum.data(), ds_,
                               sg.data() + attr_offset_[0] * sg.cols(),
                               sg.cols());
                CountMults(rn * (dr0 * ds_ + dr0));
                CountAdds(rn * dr0 * ds_);
              }
            }
            // Multi-way tables and cross pairs row-at-a-time (gathered
            // centered S slice), exactly the scalar code.
            if (q_ > 1) {
              for (size_t r = 0; r < rows; ++r) {
                double* pds = acc.diff.data();
                for (size_t i = 0; i < ds_; ++i) {
                  pds[i] = diffm[i * rows + r];
                }
                const double gamma_c = gbuf[r];
                const int64_t* keys = s_rows.KeysOf(row0 + r);
                for (size_t i = 0; i < q_; ++i) {
                  const int64_t rid = keys[rel_->FkKeyIndex(i)];
                  const double* pdr = caches_[i].pd[c].Row(rid).data();
                  const size_t dri = rel_->dr(i);
                  if (i >= 1) {
                    la::AddOuter(gamma_c, pds, ds_, pdr, dri, &sg, 0,
                                 attr_offset_[i]);
                    if (!opt_.exploit_symmetry) {
                      la::AddOuter(gamma_c, pdr, dri, pds, ds_, &sg,
                                   attr_offset_[i], 0);
                    }
                  }
                  for (size_t j = i + 1; j < q_; ++j) {
                    const int64_t rid_j = keys[rel_->FkKeyIndex(j)];
                    const double* pdj = caches_[j].pd[c].Row(rid_j).data();
                    const size_t drj = rel_->dr(j);
                    la::AddOuter(gamma_c, pdr, dri, pdj, drj, &sg,
                                 attr_offset_[i], attr_offset_[j]);
                    if (!opt_.exploit_symmetry) {
                      la::AddOuter(gamma_c, pdj, drj, pdr, dri, &sg,
                                   attr_offset_[j], attr_offset_[i]);
                    }
                  }
                }
              }
            }
          }
          break;
        }
      }
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  void MergeWorker(int pass, int worker) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    switch (pass) {
      case kEStep:
        ll_sum_ += acc.ll;
        for (size_t c = 0; c < k_; ++c) resp_.n_k[c] += acc.n_k[c];
        break;
      case kMeanStep:
        for (size_t j = 0; j < mu_sum_.size(); ++j) mu_sum_[j] += acc.mu_sum[j];
        if (factorized_) {
          // Table 0's span-sized slot lands at its span offset of the
          // full-domain merged state; further tables merge full-domain.
          const auto off0 = static_cast<size_t>(
              slot_spans_[static_cast<size_t>(worker)].begin);
          for (size_t i = 0; i < q_; ++i) {
            for (size_t c = 0; c < k_; ++c) {
              double* dst = gsum_[i][c].data() + (i == 0 ? off0 : 0);
              const auto& src = acc.gsum[i][c];
              for (size_t j = 0; j < src.size(); ++j) dst[j] += src[j];
            }
          }
        }
        break;
      case kCovStep:
        for (size_t c = 0; c < k_; ++c) sigma_sum_[c].Add(acc.sigma[c]);
        break;
    }
  }

  void VisitSlotState(
      int pass, int slot,
      const std::function<void(double*, size_t)>& visit) override {
    // Shard-plane wire seam: the merged state of one accumulator slot,
    // per pass. logp/diff are scratch and the responsibilities (resp_)
    // are per-rid state resident with the rid's shard — neither crosses
    // the wire.
    Acc& acc = acc_[static_cast<size_t>(slot)];
    switch (pass) {
      case kEStep:
        visit(&acc.ll, 1);
        visit(acc.n_k.data(), acc.n_k.size());
        break;
      case kMeanStep:
        visit(acc.mu_sum.data(), acc.mu_sum.size());
        if (factorized_) {
          for (size_t i = 0; i < q_; ++i) {
            for (size_t c = 0; c < k_; ++c) {
              visit(acc.gsum[i][c].data(), acc.gsum[i][c].size());
            }
          }
        }
        break;
      case kCovStep:
        for (size_t c = 0; c < k_; ++c) {
          visit(acc.sigma[c].data(), acc.sigma[c].rows() * acc.sigma[c].cols());
        }
        break;
    }
  }

  /// The mean pass's EndPass (below) rewrites params_.mu mid-iteration,
  /// so a cov-pass rescan on a surviving shard worker would recompute the
  /// E-step's responsibilities against the NEW means — not the state the
  /// dead worker accumulated under. The e_step and m_step_mean passes
  /// only read BeginPass-time parameters and are exactly replayable.
  bool ShardRecoverableAtPass(int pass) const override {
    return pass <= kMeanStep;
  }

  Status EndPass(const PipelineContext& ctx, int /*iter*/, int pass) override {
    switch (pass) {
      case kEStep:
        break;
      case kMeanStep: {
        // Deferred m-step work outside the scan: reported as "finalize"
        // next to the e_step / m_step_* pass times.
        core::PhaseScope phase(ctx.report, "finalize");
        if (!factorized_) {
          for (size_t c = 0; c < k_; ++c) {
            const double inv_nk = 1.0 / std::max(resp_.n_k[c], 1e-300);
            for (size_t j = 0; j < d_; ++j) {
              params_.mu(c, j) = mu_sum_[c * d_ + j] * inv_nk;
            }
            CountMults(d_);
          }
          break;
        }
        // Factorized mean update (Eq. 22): the S slice from the per-tuple
        // sums, the R slices from per-rid responsibility mass times the
        // attribute features.
        for (size_t c = 0; c < k_; ++c) {
          const double inv_nk = 1.0 / std::max(resp_.n_k[c], 1e-300);
          double* mu_row = params_.mu.Row(c).data();
          for (size_t j = 0; j < ds_; ++j) {
            mu_row[j] = mu_sum_[c * ds_ + j] * inv_nk;
          }
          CountMults(ds_);
          for (size_t i = 0; i < q_; ++i) {
            const Matrix& feats = (*ctx.views)[i].feats();
            const size_t dri = feats.cols();
            double* slice = mu_row + attr_offset_[i];
            std::fill(slice, slice + dri, 0.0);
            for (size_t rid = 0; rid < feats.rows(); ++rid) {
              la::Axpy(gsum_[i][c][rid], feats.Row(rid).data(), slice, dri);
            }
            for (size_t j = 0; j < dri; ++j) slice[j] *= inv_nk;
            CountMults(dri);
          }
        }
        break;
      }
      case kCovStep: {
        core::PhaseScope phase(ctx.report, "finalize");
        if (factorized_ && opt_.exploit_symmetry) {
          // Mirror the cross blocks that were accumulated single-sided: the
          // covariance accumulator is symmetric, so LL = UR^T exactly (one
          // O(d^2) copy per component per pass instead of per fact tuple).
          for (size_t c = 0; c < k_; ++c) {
            Matrix& acc = sigma_sum_[c];
            for (size_t i = 0; i < q_; ++i) {
              const size_t dri = rel_->dr(i);
              for (size_t a = 0; a < ds_; ++a) {
                for (size_t b2 = 0; b2 < dri; ++b2) {
                  acc(attr_offset_[i] + b2, a) = acc(a, attr_offset_[i] + b2);
                }
              }
              for (size_t j = i + 1; j < q_; ++j) {
                const size_t drj = rel_->dr(j);
                for (size_t a = 0; a < dri; ++a) {
                  for (size_t b2 = 0; b2 < drj; ++b2) {
                    acc(attr_offset_[j] + b2, attr_offset_[i] + a) =
                        acc(attr_offset_[i] + a, attr_offset_[j] + b2);
                  }
                }
              }
            }
          }
        }
        if (factorized_) {
          // Deferred diagonal blocks: one outer product per R tuple, scaled
          // by the responsibility mass of its matching fact tuples (gsum
          // reuses the responsibilities accumulated in the mean pass —
          // same gamma).
          for (size_t c = 0; c < k_; ++c) {
            for (size_t i = 0; i < q_; ++i) {
              const size_t dri = rel_->dr(i);
              const size_t n_ri = caches_[i].pd[c].rows();
              for (size_t rid = 0; rid < n_ri; ++rid) {
                const double* pdr = caches_[i].pd[c].Row(rid).data();
                la::AddOuter(gsum_[i][c][rid], pdr, dri, pdr, dri,
                             &sigma_sum_[c], attr_offset_[i],
                             attr_offset_[i]);
              }
            }
          }
        }
        for (size_t c = 0; c < k_; ++c) {
          sigma_sum_[c].Scale(1.0 / std::max(resp_.n_k[c], 1e-300));
          for (size_t j = 0; j < d_; ++j) {
            sigma_sum_[c](j, j) += opt_.cov_reg;
          }
          params_.sigma[c] = sigma_sum_[c];
          params_.pi[c] = resp_.n_k[c] / static_cast<double>(n_);
        }
        break;
      }
    }
    return Status::OK();
  }

  Result<bool> EndIteration(const PipelineContext&, int) override {
    const bool stop = internal::Converged(loglik_, ll_sum_, opt_.tol);
    loglik_ = ll_sum_;
    return stop;
  }

  void VisitIterationState(
      const std::function<void(double*, size_t)>& visit) override {
    // Cross-iteration state: the parameters and the convergence scalar.
    // resp_ and every accumulator are rebuilt by the next e_step.
    visit(params_.mu.data(), params_.mu.rows() * params_.mu.cols());
    for (size_t c = 0; c < k_; ++c) {
      visit(params_.sigma[c].data(),
            params_.sigma[c].rows() * params_.sigma[c].cols());
    }
    visit(params_.pi.data(), params_.pi.size());
    visit(&loglik_, 1);
  }

  double Objective() const override { return loglik_; }

  GmmParams&& TakeParams() && { return std::move(params_); }

 private:
  enum Pass { kEStep = 0, kMeanStep = 1, kCovStep = 2 };

  /// Per-worker accumulators and scratch; merged in worker order.
  struct Acc {
    double ll = 0.0;
    std::vector<double> n_k;
    std::vector<double> logp;
    std::vector<double> diff;     // centered row (d) or S slice (ds)
    std::vector<double> mu_sum;   // k * d (dense) or k * ds (factorized)
    std::vector<std::vector<std::vector<double>>> gsum;  // [i][c][rid]
    std::vector<Matrix> sigma;    // k of d x d
  };

  GmmOptions opt_;
  const join::NormalizedRelations* rel_ = nullptr;
  bool factorized_ = false;
  size_t k_ = 0, d_ = 0, ds_ = 0, q_ = 0, y_off_ = 0;
  int64_t n_ = 0;
  std::vector<size_t> attr_offset_;

  GmmParams params_;
  GmmDensity density_;
  Responsibilities resp_;
  std::vector<CenteredCache> caches_;
  std::vector<Acc> acc_;
  /// Table-0 rid span per accumulator slot (the rid-span contract),
  /// refreshed every BeginPass from the strategy's published plan.
  std::vector<exec::Range> slot_spans_;

  double ll_sum_ = 0.0;
  double loglik_ = 0.0;
  std::vector<double> mu_sum_;
  std::vector<std::vector<std::vector<double>>> gsum_;  // [i][c][rid]
  std::vector<Matrix> sigma_sum_;
};

Result<GmmParams> TrainGmmWith(const join::NormalizedRelations& rel,
                               const GmmOptions& options,
                               core::Algorithm algorithm,
                               storage::BufferPool* pool,
                               core::TrainReport* report) {
  GmmProgram program(options);
  core::pipeline::StrategyOptions sopt =
      core::pipeline::LiftStrategyOptions(options);
  if (sopt.shard_backend == "process") {
    sopt.shard_job_family = "gmm";
    sopt.shard_job_blob = EncodeShardJob(options);
  }
  FML_RETURN_IF_ERROR(
      core::pipeline::RunTraining(rel, algorithm, sopt, &program, pool,
                                  report));
  return std::move(program).TakeParams();
}

}  // namespace

std::string EncodeShardJob(const GmmOptions& options) {
  net::ByteWriter w;
  w.U64(options.num_components);
  w.I64(options.max_iters);
  w.F64(options.tol);
  w.F64(options.init_spread);
  w.F64(options.cov_reg);
  w.U8(static_cast<uint8_t>(options.init));
  w.U64(options.seed);
  w.U8(options.exploit_symmetry ? 1 : 0);
  return w.Take();
}

Result<GmmOptions> DecodeShardJob(const std::string& blob) {
  GmmOptions options;
  net::ByteReader r(blob);
  uint64_t k = 0;
  int64_t max_iters = 0;
  uint8_t init = 0, symmetry = 0;
  FML_RETURN_IF_ERROR(r.U64(&k));
  FML_RETURN_IF_ERROR(r.I64(&max_iters));
  FML_RETURN_IF_ERROR(r.F64(&options.tol));
  FML_RETURN_IF_ERROR(r.F64(&options.init_spread));
  FML_RETURN_IF_ERROR(r.F64(&options.cov_reg));
  FML_RETURN_IF_ERROR(r.U8(&init));
  FML_RETURN_IF_ERROR(r.U64(&options.seed));
  FML_RETURN_IF_ERROR(r.U8(&symmetry));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("gmm shard job: trailing bytes");
  }
  options.num_components = k;
  options.max_iters = static_cast<int>(max_iters);
  options.init = static_cast<GmmInit>(init);
  options.exploit_symmetry = symmetry != 0;
  return options;
}

std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const GmmOptions& options) {
  return std::make_unique<GmmProgram>(options);
}

Result<GmmParams> TrainGmmMaterialized(const join::NormalizedRelations& rel,
                                       const GmmOptions& options,
                                       storage::BufferPool* pool,
                                       core::TrainReport* report) {
  return TrainGmmWith(rel, options, core::Algorithm::kMaterialized, pool,
                      report);
}

Result<GmmParams> TrainGmmStreaming(const join::NormalizedRelations& rel,
                                    const GmmOptions& options,
                                    storage::BufferPool* pool,
                                    core::TrainReport* report) {
  return TrainGmmWith(rel, options, core::Algorithm::kStreaming, pool,
                      report);
}

Result<GmmParams> TrainGmmFactorized(const join::NormalizedRelations& rel,
                                     const GmmOptions& options,
                                     storage::BufferPool* pool,
                                     core::TrainReport* report) {
  return TrainGmmWith(rel, options, core::Algorithm::kFactorized, pool,
                      report);
}

}  // namespace factorml::gmm

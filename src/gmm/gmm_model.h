#ifndef FACTORML_GMM_GMM_MODEL_H_
#define FACTORML_GMM_GMM_MODEL_H_

#include <vector>

#include "common/status.h"
#include "la/cholesky.h"
#include "la/matrix.h"

namespace factorml::gmm {

/// Parameters of a K-component full-covariance Gaussian mixture over
/// d-dimensional data: mixing weights pi_k, means mu_k, covariances
/// Sigma_k (Sec. III-A of the paper; no independence assumptions).
struct GmmParams {
  std::vector<double> pi;          // K
  la::Matrix mu;                   // K x d
  std::vector<la::Matrix> sigma;   // K matrices, each d x d

  size_t num_components() const { return pi.size(); }
  size_t dims() const { return mu.cols(); }

  /// Deterministic initialization shared by all trainers so the exactness
  /// of the factorization can be asserted parameter-by-parameter: means are
  /// the given seed rows, covariances are `spread * I`, weights uniform.
  static GmmParams Init(const la::Matrix& seed_rows, double spread = 5.0);

  /// Max absolute difference over all parameters of two models of equal
  /// shape (used by tests and the exactness self-checks).
  static double MaxAbsDiff(const GmmParams& a, const GmmParams& b);
};

/// Per-iteration derived quantities for density evaluation: precision
/// matrices Sigma_k^{-1} (the paper's I_k) and the constant part of the
/// log-density log(pi_k) - 0.5 (d log 2pi + log|Sigma_k|).
struct GmmDensity {
  std::vector<la::Matrix> precision;  // K of d x d
  std::vector<double> log_coeff;      // K

  /// Builds from parameters; covariances are ridged if needed to stay SPD.
  static Result<GmmDensity> From(const GmmParams& params);
};

/// log(sum_i exp(v_i)) computed stably; `v` holds the per-component
/// unnormalized log posteriors of one data point.
double LogSumExp(const double* v, size_t n);

}  // namespace factorml::gmm

#endif  // FACTORML_GMM_GMM_MODEL_H_

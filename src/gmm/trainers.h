#ifndef FACTORML_GMM_TRAINERS_H_
#define FACTORML_GMM_TRAINERS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/report.h"
#include "gmm/gmm_model.h"
#include "join/normalized_relations.h"
#include "la/kernels.h"
#include "storage/buffer_pool.h"

namespace factorml::core::pipeline {
class ModelProgram;
}

namespace factorml::gmm {

/// Options shared by the three GMM training algorithms. All three run the
/// identical EM recurrence from the identical deterministic initialization,
/// so their outputs agree to floating-point reordering tolerance — the
/// paper's exactness guarantee (Sec. V-B).
/// Mean-initialization strategies. Both are deterministic given the seed,
/// so every algorithm starts from the identical model.
enum class GmmInit {
  kSpreadRows,  // means = joined rows at i*N/K (default)
  kRandomRows,  // means = K distinct uniformly drawn joined rows
};

struct GmmOptions {
  size_t num_components = 5;   // K
  int max_iters = 10;          // EM iterations (the paper times fixed iters)
  double tol = 0.0;            // >0: stop when |delta loglik| < tol*|loglik|
  size_t batch_rows = 8192;    // rows per streamed batch
  double init_spread = 5.0;    // initial covariance scale
  /// Ridge added to every covariance diagonal in each M-step (standard
  /// EM regularization; keeps components from collapsing to singular
  /// covariances on degenerate data). Applied identically by all three
  /// algorithms, so exactness is preserved.
  double cov_reg = 1e-6;
  GmmInit init = GmmInit::kSpreadRows;
  uint64_t seed = 1;           // used by kRandomRows
  std::string temp_dir = ".";  // where M-GMM materializes T
  /// F-GMM refinement over the paper's literal accounting: the precision
  /// matrix and the covariance accumulator are symmetric, so the UR and LL
  /// cross blocks (Eqs. 10-11 / 16-17) are transposes of each other. When
  /// set (default), F-GMM computes each cross block once — doubling it in
  /// the E-step quadratic form and mirroring it once per pass in the
  /// covariance update — which is exact and cuts the per-tuple cross work
  /// in half. Clear it to reproduce the paper's op counts verbatim.
  bool exploit_symmetry = true;
  /// Worker threads for the exec/ morsel-driven runtime (all three
  /// algorithms): E-step, mean and covariance passes partition the scan
  /// over page-aligned row ranges (M) or whole FK1-rid runs (S/F), with
  /// per-worker accumulators merged deterministically in worker order.
  /// 0 = use exec::DefaultThreads() (the --threads flag); 1 = the exact
  /// bit-for-bit serial path of the paper reproduction.
  int threads = 0;
  /// Full-pass scheduler knobs (strategy plane, see StrategyOptions):
  /// morsel_rows > 0 switches the pass to fixed deterministically numbered
  /// chunks with a chunk-ordered reduction — results then depend on
  /// morsel_rows but not on threads or stealing; steal lets idle workers
  /// take chunks from busy ones (implies chunking).
  int64_t morsel_rows = 0;
  bool steal = false;
  /// Asynchronous double-buffered page prefetch (strategy plane, see
  /// StrategyOptions): overlap the next morsel's page reads with compute.
  /// Residency-only — results are bit-identical either way; prefetch_depth
  /// is the number of batches read ahead per worker.
  bool prefetch = false;
  int prefetch_depth = 2;
  /// Rid-range shards of the full-pass plane (strategy plane, see
  /// StrategyOptions): shards > 1 scans each contiguous chunk span
  /// separately and merges serialized ShardDeltas in shard-id order —
  /// bit-identical to shards = 1 at the same resolved morsel size
  /// (implies chunking, like steal).
  int shards = 1;
  /// Compute-kernel backend (--kernels): kScalar (default) keeps the
  /// seed's bit-identical loops and row-at-a-time decode; kSimd routes
  /// the la/ primitives through the runtime-dispatched vector backend
  /// (AVX2/FMA when available) and the full-pass dense drivers through
  /// the batched column-strip decode. Op counts and page I/O are
  /// identical either way; objectives and params agree to floating-point
  /// reassociation tolerance.
  la::KernelMode kernels = la::KernelMode::kScalar;
  /// Shard execution backend (--shard-backend, see StrategyOptions):
  /// "inproc" (default) keeps the byte-identical in-process driver;
  /// "process" farms shard scans out to factormld worker processes over
  /// length-prefixed socket frames — bit-identical results either way.
  std::string shard_backend = "inproc";
  /// Process-backend liveness deadline per worker, in milliseconds.
  int64_t shard_timeout_ms = 30000;
  /// Process-backend socket family: "unix" (default) or "tcp" loopback.
  std::string shard_transport = "unix";
  /// Explicit factormld binary path; empty = resolve automatically.
  std::string shard_worker_path;
  /// ShardDelta wire encoding (--delta-encoding): "dense" (v1 frames) or
  /// "sparse" (v2 zero-run-length frames, decoded bit-identically).
  std::string delta_encoding = "dense";
  /// Non-empty (--checkpoint-dir): CRC-verified checkpoint/restore of the
  /// iteration state; a resumed run is bit-identical to an uninterrupted
  /// one. Empty = checkpointing off.
  std::string checkpoint_dir;
  /// Iterations between checkpoint writes (--checkpoint-every); 0 = every
  /// iteration when checkpoint_dir is set.
  int64_t checkpoint_every = 0;
};

/// Algorithm M-GMM (paper Algorithm 1): joins S with R1..Rq, materializes
/// table T on disk, then runs EM reading T three times per iteration.
Result<GmmParams> TrainGmmMaterialized(const join::NormalizedRelations& rel,
                                       const GmmOptions& options,
                                       storage::BufferPool* pool,
                                       core::TrainReport* report);

/// Algorithm S-GMM: identical EM, but the join is recomputed on the fly
/// each pass (stream S, probe resident attribute tables) and each joined
/// tuple is assembled into a full d-vector before entering the math.
Result<GmmParams> TrainGmmStreaming(const join::NormalizedRelations& rel,
                                    const GmmOptions& options,
                                    storage::BufferPool* pool,
                                    core::TrainReport* report);

/// Algorithm F-GMM (the paper's contribution, Sec. V-B/V-C): EM pushed
/// through the join. Per-attribute-tuple quantities — the centered slices
/// PD_Ri, the diagonal quadratic blocks PD^T I_ii PD, and the diagonal
/// outer-product blocks of the covariance update — are computed once per
/// R tuple per pass and reused for every matching fact tuple. Handles any
/// number of joins q >= 1 (q = 1 is the paper's binary case).
Result<GmmParams> TrainGmmFactorized(const join::NormalizedRelations& rel,
                                     const GmmOptions& options,
                                     storage::BufferPool* pool,
                                     core::TrainReport* report);

/// Process-shard-backend seam (core/pipeline/shard_rpc.h): the
/// coordinator serializes the math-relevant GmmOptions into the JOB
/// frame's family blob; a factormld worker decodes the blob and rebuilds
/// the identical ModelProgram, so both sides run the same EM recurrence
/// from the same deterministic initialization.
std::string EncodeShardJob(const GmmOptions& options);
Result<GmmOptions> DecodeShardJob(const std::string& blob);
std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const GmmOptions& options);

}  // namespace factorml::gmm

#endif  // FACTORML_GMM_TRAINERS_H_

#include "data/real_shapes.h"

#include <algorithm>

namespace factorml::data {

const std::vector<RealShape>& AllRealShapes() {
  // Cardinalities and dimensions exactly as published in Tables IV and V of
  // the paper. The sparse variants are the one-hot encodings used for NN.
  static const std::vector<RealShape>* kShapes = new std::vector<RealShape>{
      {"Expedia1", 942142, 7, 11938, 8, false, false, 0, 0},
      {"Expedia2", 942142, 7, 37021, 14, false, false, 0, 0},
      {"Walmart", 421570, 3, 2340, 9, false, false, 0, 0},
      {"Movies", 1000209, 1, 3706, 21, false, false, 0, 0},
      {"Walmart-Sparse", 421570, 126, 2340, 175, true, false, 0, 0},
      {"Movies-Sparse", 1000209, 1, 3706, 21, true, false, 0, 0},
      {"Expedia3", 634133, 7, 2899, 29, false, false, 0, 0},
      {"Expedia4", 634133, 7, 2899, 78, false, false, 0, 0},
      {"Expedia5", 634133, 7, 2899, 218, false, false, 0, 0},
      // Movies-3way: S_ratings joins R1_users and R2_movies (Sec. VII-A).
      {"Movies-3way", 1000209, 1, 6040, 4, false, true, 3706, 21},
  };
  return *kShapes;
}

Result<RealShape> FindRealShape(const std::string& name) {
  for (const auto& s : AllRealShapes()) {
    if (s.name == name) return s;
  }
  return Status::NotFound("unknown real-dataset shape: " + name);
}

Result<join::NormalizedRelations> GenerateRealShape(
    const RealShape& shape, const std::string& dir,
    storage::BufferPool* pool, double scale, uint64_t seed,
    bool with_target) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  auto scaled = [scale](int64_t n) {
    return std::max<int64_t>(1, static_cast<int64_t>(n * scale));
  };
  SyntheticSpec spec;
  spec.dir = dir;
  spec.name = shape.name;
  // Keep the file prefix filesystem-friendly.
  std::replace(spec.name.begin(), spec.name.end(), '/', '_');
  spec.s_rows = scaled(shape.n_s);
  spec.s_feats = shape.d_s;
  spec.attrs.push_back(AttributeSpec{scaled(shape.n_r), shape.d_r});
  if (shape.three_way) {
    spec.attrs.push_back(AttributeSpec{scaled(shape.n_r2), shape.d_r2});
  }
  spec.with_target = with_target;
  spec.one_hot = shape.sparse;
  spec.seed = seed;
  return GenerateSynthetic(spec, pool);
}

}  // namespace factorml::data

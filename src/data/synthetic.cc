#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "la/matrix.h"

namespace factorml::data {

namespace {

using join::NormalizedRelations;
using la::Matrix;
using storage::Schema;
using storage::Table;

/// Mixture-of-Gaussians feature sampler for one relation: `clusters`
/// centers in [-5, 5]^dims with unit within-cluster spread.
class FeatureSampler {
 public:
  FeatureSampler(int clusters, size_t dims, double noise, Rng* rng)
      : dims_(dims), noise_(noise), rng_(rng), centers_(clusters, dims) {
    for (int c = 0; c < clusters; ++c) {
      for (size_t j = 0; j < dims; ++j) {
        centers_(c, j) = rng->NextUniform(-5.0, 5.0);
      }
    }
  }

  void Sample(double* out) {
    const size_t c = static_cast<size_t>(rng_->NextBelow(centers_.rows()));
    for (size_t j = 0; j < dims_; ++j) {
      out[j] = centers_(c, j) + rng_->NextGaussian() +
               noise_ * rng_->NextGaussian();
    }
  }

 private:
  size_t dims_;
  double noise_;
  Rng* rng_;
  Matrix centers_;
};

/// One-hot sampler: dims are split into categorical blocks of up to 8
/// columns; each row activates exactly one column per block (the paper's
/// "Sparse" one-hot representation).
class OneHotSampler {
 public:
  OneHotSampler(size_t dims, Rng* rng) : dims_(dims), rng_(rng) {
    size_t off = 0;
    while (off < dims) {
      const size_t width = std::min<size_t>(8, dims - off);
      blocks_.push_back({off, width});
      off += width;
    }
  }

  void Sample(double* out) {
    for (size_t j = 0; j < dims_; ++j) out[j] = 0.0;
    for (const auto& b : blocks_) {
      out[b.first + rng_->NextBelow(b.second)] = 1.0;
    }
  }

 private:
  size_t dims_;
  Rng* rng_;
  std::vector<std::pair<size_t, size_t>> blocks_;
};

}  // namespace

Result<NormalizedRelations> GenerateSynthetic(const SyntheticSpec& spec,
                                              storage::BufferPool* pool) {
  if (spec.attrs.empty() || spec.s_rows <= 0 || spec.s_feats == 0) {
    return Status::InvalidArgument("incomplete synthetic spec");
  }
  for (const auto& a : spec.attrs) {
    if (a.rows <= 0 || a.feats == 0) {
      return Status::InvalidArgument("empty attribute table in spec");
    }
  }
  Rng rng(spec.seed);

  // --- Attribute tables; kept resident so S's target can depend on them.
  const size_t q = spec.attrs.size();
  std::vector<Table> attr_tables;
  std::vector<Matrix> attr_feats;
  attr_tables.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    const auto& aspec = spec.attrs[i];
    const std::string path =
        spec.dir + "/" + spec.name + "_r" + std::to_string(i + 1) + ".fml";
    FML_ASSIGN_OR_RETURN(Table t, Table::Create(path, Schema{1, aspec.feats}));
    Matrix feats(static_cast<size_t>(aspec.rows), aspec.feats);
    FeatureSampler dense(spec.clusters, aspec.feats, spec.noise, &rng);
    OneHotSampler sparse(aspec.feats, &rng);
    for (int64_t rid = 0; rid < aspec.rows; ++rid) {
      double* row = feats.Row(static_cast<size_t>(rid)).data();
      if (spec.one_hot) {
        sparse.Sample(row);
      } else {
        dense.Sample(row);
      }
      FML_RETURN_IF_ERROR(t.Append(&rid, row));
    }
    FML_RETURN_IF_ERROR(t.Finish());
    attr_tables.push_back(std::move(t));
    attr_feats.push_back(std::move(feats));
  }

  // --- Per-FK1-rid fact-tuple counts, summing exactly to nS under the
  // requested run-length profile.
  const int64_t n_r1 = spec.attrs[0].rows;
  std::vector<int64_t> counts(static_cast<size_t>(n_r1), 0);
  switch (spec.run_dist) {
    case RunDist::kUniform: {
      // floor/ceil of nS/nR1, with the remainder assigned to a random
      // subset so the ratio is exact (the seed generator, byte-for-byte).
      const int64_t base = spec.s_rows / n_r1;
      const int64_t remainder = spec.s_rows % n_r1;
      counts.assign(static_cast<size_t>(n_r1), base);
      std::vector<int64_t> rids(static_cast<size_t>(n_r1));
      for (int64_t i = 0; i < n_r1; ++i) rids[static_cast<size_t>(i)] = i;
      rng.Shuffle(&rids);
      for (int64_t i = 0; i < remainder; ++i) {
        counts[static_cast<size_t>(rids[static_cast<size_t>(i)])]++;
      }
      break;
    }
    case RunDist::kZipf: {
      // Rank r (over shuffled rids) gets weight 1/(r+1)^s; counts are the
      // largest-remainder apportionment of nS over those weights, so the
      // skew is heavy but the total stays exact. Low-rank rids may end up
      // with zero matching rows — a degenerate case worth generating.
      std::vector<int64_t> rids(static_cast<size_t>(n_r1));
      for (int64_t i = 0; i < n_r1; ++i) rids[static_cast<size_t>(i)] = i;
      rng.Shuffle(&rids);
      std::vector<double> weight(static_cast<size_t>(n_r1));
      double total_w = 0.0;
      for (int64_t r = 0; r < n_r1; ++r) {
        weight[static_cast<size_t>(r)] =
            1.0 / std::pow(static_cast<double>(r + 1), spec.zipf_s);
        total_w += weight[static_cast<size_t>(r)];
      }
      int64_t assigned = 0;
      std::vector<std::pair<double, int64_t>> frac;  // (-fraction, rank)
      frac.reserve(static_cast<size_t>(n_r1));
      for (int64_t r = 0; r < n_r1; ++r) {
        const double share = static_cast<double>(spec.s_rows) *
                             weight[static_cast<size_t>(r)] / total_w;
        const auto floor_share = static_cast<int64_t>(share);
        counts[static_cast<size_t>(rids[static_cast<size_t>(r)])] =
            floor_share;
        assigned += floor_share;
        frac.emplace_back(-(share - static_cast<double>(floor_share)), r);
      }
      std::sort(frac.begin(), frac.end());  // largest remainder first,
                                            // rank as deterministic tie-break
      for (int64_t i = 0; i < spec.s_rows - assigned; ++i) {
        const int64_t rank = frac[static_cast<size_t>(i % n_r1)].second;
        counts[static_cast<size_t>(rids[static_cast<size_t>(rank)])]++;
      }
      break;
    }
    case RunDist::kSingleGiant: {
      // Every rid gets one row (as long as rows remain); one random rid
      // absorbs the entire surplus — the worst case for static run
      // morsels and for "run longer than a chunk".
      const int64_t giant =
          static_cast<int64_t>(rng.NextBelow(static_cast<uint64_t>(n_r1)));
      int64_t remaining = spec.s_rows;
      for (int64_t rid = 0; rid < n_r1 && remaining > 0; ++rid) {
        counts[static_cast<size_t>(rid)] = 1;
        --remaining;
      }
      counts[static_cast<size_t>(giant)] += remaining;
      break;
    }
  }

  // --- Fact table S(SID, [Y,] XS, FK1..FKq), clustered by FK1.
  const size_t s_feat_cols = spec.s_feats + (spec.with_target ? 1 : 0);
  const std::string s_path = spec.dir + "/" + spec.name + "_s.fml";
  FML_ASSIGN_OR_RETURN(Table s,
                       Table::Create(s_path, Schema{1 + q, s_feat_cols}));

  FeatureSampler s_dense(spec.clusters, spec.s_feats, spec.noise, &rng);
  OneHotSampler s_sparse(spec.s_feats, &rng);

  // Random projection weights for the nonlinear target
  //   y = sin(wS . xS) + sum_i tanh(wRi . xRi) + noise.
  std::vector<double> w_s(spec.s_feats);
  for (auto& w : w_s) w = rng.NextGaussian() / std::sqrt(double(spec.s_feats));
  std::vector<std::vector<double>> w_r(q);
  for (size_t i = 0; i < q; ++i) {
    w_r[i].resize(spec.attrs[i].feats);
    for (auto& w : w_r[i]) {
      w = rng.NextGaussian() / std::sqrt(double(spec.attrs[i].feats));
    }
  }

  std::vector<int64_t> keys(1 + q);
  std::vector<double> feat_row(s_feat_cols);
  int64_t sid = 0;
  for (int64_t rid1 = 0; rid1 < n_r1; ++rid1) {
    for (int64_t c = 0; c < counts[static_cast<size_t>(rid1)]; ++c) {
      keys[0] = sid++;
      keys[1] = rid1;
      for (size_t i = 1; i < q; ++i) {
        keys[1 + i] =
            static_cast<int64_t>(rng.NextBelow(spec.attrs[i].rows));
      }
      double* xs = feat_row.data() + (spec.with_target ? 1 : 0);
      if (spec.one_hot) {
        s_sparse.Sample(xs);
      } else {
        s_dense.Sample(xs);
      }
      if (spec.with_target) {
        double dot_s = 0.0;
        for (size_t j = 0; j < spec.s_feats; ++j) dot_s += w_s[j] * xs[j];
        double y = std::sin(dot_s);
        for (size_t i = 0; i < q; ++i) {
          const auto xr = attr_feats[i].Row(static_cast<size_t>(keys[1 + i]));
          double dot_r = 0.0;
          for (size_t j = 0; j < xr.size(); ++j) dot_r += w_r[i][j] * xr[j];
          y += std::tanh(dot_r);
        }
        feat_row[0] = y + spec.noise * rng.NextGaussian();
      }
      FML_RETURN_IF_ERROR(s.Append(keys.data(), feat_row.data()));
    }
  }
  FML_RETURN_IF_ERROR(s.Finish());

  NormalizedRelations rel(std::move(s), std::move(attr_tables),
                          spec.with_target);
  FML_RETURN_IF_ERROR(rel.Validate());
  FML_RETURN_IF_ERROR(rel.BuildIndex(pool));
  return rel;
}

}  // namespace factorml::data

#ifndef FACTORML_DATA_REAL_SHAPES_H_
#define FACTORML_DATA_REAL_SHAPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/synthetic.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"

namespace factorml::data {

/// Published shape of one Hamlet-Plus dataset (paper Tables IV and V).
/// We do not have the raw Hamlet data offline, so we regenerate datasets
/// with identical cardinalities, feature splits and sparsity; the
/// M/S/F-algorithm runtimes depend only on these shape parameters (see
/// DESIGN.md substitution table).
struct RealShape {
  std::string name;
  int64_t n_s = 0;   // nS
  size_t d_s = 0;    // dS
  int64_t n_r = 0;   // nR  (second attribute table for the 3-way variants)
  size_t d_r = 0;    // dR
  bool sparse = false;
  bool three_way = false;
  int64_t n_r2 = 0;
  size_t d_r2 = 0;
};

/// All dataset shapes from Tables IV (real) and V (augmented), plus the
/// Movies-3way configuration of Tables VI/VII.
const std::vector<RealShape>& AllRealShapes();

/// Looks up a shape by dataset name ("Expedia1", "Walmart-Sparse",
/// "Movies-3way", ...).
Result<RealShape> FindRealShape(const std::string& name);

/// Materializes a dataset with this shape under `dir`. `scale` in (0, 1]
/// shrinks nS and nR proportionally (feature counts are never scaled) so
/// that the full Table VI/VII sweep fits a laptop-scale budget; scale=1
/// reproduces the published cardinalities.
Result<join::NormalizedRelations> GenerateRealShape(
    const RealShape& shape, const std::string& dir,
    storage::BufferPool* pool, double scale = 1.0, uint64_t seed = 42,
    bool with_target = false);

}  // namespace factorml::data

#endif  // FACTORML_DATA_REAL_SHAPES_H_

#ifndef FACTORML_DATA_SYNTHETIC_H_
#define FACTORML_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"

namespace factorml::data {

/// Shape of one attribute table Ri(RIDi, XRi).
struct AttributeSpec {
  int64_t rows = 0;    // nRi
  size_t feats = 0;    // dRi
};

/// FK1 run-length profile of the generated fact table — how the nS rows
/// spread over the nR1 clustered runs. kUniform is the paper's controlled
/// tuple-ratio regime; the skewed profiles exist to stress the
/// work-stealing scheduler (static run morsels leave workers idle when a
/// few runs carry most of the rows).
enum class RunDist {
  kUniform,      // floor/ceil of nS/nR1 per rid (the paper's regime)
  kZipf,         // run length ∝ 1 / rank^zipf_s over shuffled rids
  kSingleGiant,  // one run carries every surplus row, the rest get one
};

/// Specification of a synthetic normalized dataset, following the paper's
/// synthetic methodology (Sec. VII-A): features sampled from a mixture of
/// Gaussians with added random noise; S tuples reference attribute tuples
/// through dense foreign keys so the tuple ratio rr = nS / nR1 controls the
/// redundancy a join would introduce.
struct SyntheticSpec {
  std::string dir;            // directory that receives the table files
  std::string name = "syn";   // file name prefix
  int64_t s_rows = 0;         // nS
  size_t s_feats = 0;         // dS (learning target excluded)
  std::vector<AttributeSpec> attrs;  // R1..Rq
  bool with_target = false;   // adds Y (for NN training)
  int clusters = 5;           // Gaussian components in the generated data
  double noise = 0.05;        // iid noise added to every feature
  uint64_t seed = 42;
  /// Sparse variant: features are one-hot encoded categorical blocks (the
  /// paper's "Sparse" representation used for the NN real datasets).
  bool one_hot = false;
  /// FK1 run-length profile; kUniform reproduces the seed generator
  /// byte-for-byte (same RNG call sequence).
  RunDist run_dist = RunDist::kUniform;
  double zipf_s = 1.2;  // Zipf exponent when run_dist == kZipf
};

/// Generates the tables on disk, builds the FK1 index, and returns the
/// ready-to-train relations. S is written clustered by FK1 with foreign
/// keys spread so that every R1 tuple matches either floor or ceil of
/// nS/nR1 fact tuples (the controlled tuple-ratio regime of the paper's
/// experiments); FK2..FKq are uniform random.
Result<join::NormalizedRelations> GenerateSynthetic(
    const SyntheticSpec& spec, storage::BufferPool* pool);

}  // namespace factorml::data

#endif  // FACTORML_DATA_SYNTHETIC_H_

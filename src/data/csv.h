#ifndef FACTORML_DATA_CSV_H_
#define FACTORML_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/table.h"

namespace factorml::data {

/// Column roles for CSV import: the first `num_keys` columns are parsed as
/// int64 keys (SID / RIDs / FKs in the order required by
/// NormalizedRelations), the rest as double features.
struct CsvImportOptions {
  size_t num_keys = 1;
  char delimiter = ',';
  bool has_header = true;
  /// When true, rows whose key columns fail to parse are skipped instead
  /// of failing the import (real exports often carry ragged tails).
  bool skip_bad_rows = false;
};

/// Imports a CSV file into a factorml table at `table_path`. This is the
/// on-ramp for the actual Hamlet-Plus datasets the paper uses (our offline
/// reproduction generates shape-identical data instead; see DESIGN.md) —
/// with the real CSVs on disk, `ImportCsv` + NormalizedRelations runs the
/// paper's exact experiments.
Result<storage::Table> ImportCsv(const std::string& csv_path,
                                 const std::string& table_path,
                                 const CsvImportOptions& options);

/// Exports a table to CSV (keys first, then features), e.g. to inspect a
/// generated dataset or hand results to another tool.
Status ExportCsv(const storage::Table& table, storage::BufferPool* pool,
                 const std::string& csv_path, char delimiter = ',');

}  // namespace factorml::data

#endif  // FACTORML_DATA_CSV_H_

#include "data/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace factorml::data {

namespace {

/// Splits one CSV line on the delimiter. Quoting is not supported: the
/// Hamlet exports and our own exports are plain numeric CSVs.
void SplitLine(const std::string& line, char delim,
               std::vector<std::string>* out) {
  out->clear();
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, delim)) {
    out->push_back(field);
  }
  // A trailing delimiter denotes one final empty field.
  if (!line.empty() && line.back() == delim) out->push_back("");
}

bool ParseInt(const std::string& s, int64_t* v) {
  if (s.empty()) return false;
  char* end = nullptr;
  *v = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

bool ParseDouble(const std::string& s, double* v) {
  if (s.empty()) return false;
  char* end = nullptr;
  *v = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<storage::Table> ImportCsv(const std::string& csv_path,
                                 const std::string& table_path,
                                 const CsvImportOptions& options) {
  std::ifstream in(csv_path);
  if (!in.is_open()) {
    return Status::IoError("cannot open CSV: " + csv_path);
  }
  std::string line;
  std::vector<std::string> fields;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("CSV has no header row: " + csv_path);
    }
  }
  // Peek the first data row to derive the schema.
  std::streampos data_start = in.tellg();
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV has no data rows: " + csv_path);
  }
  SplitLine(line, options.delimiter, &fields);
  if (fields.size() <= options.num_keys) {
    return Status::InvalidArgument(
        "CSV has no feature columns after " +
        std::to_string(options.num_keys) + " key columns: " + csv_path);
  }
  const size_t num_feats = fields.size() - options.num_keys;
  in.seekg(data_start);

  storage::Schema schema{options.num_keys, num_feats};
  FML_ASSIGN_OR_RETURN(storage::Table table,
                       storage::Table::Create(table_path, schema));

  std::vector<int64_t> keys(options.num_keys);
  std::vector<double> feats(num_feats);
  size_t line_no = options.has_header ? 1 : 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    SplitLine(line, options.delimiter, &fields);
    bool ok = fields.size() == options.num_keys + num_feats;
    for (size_t j = 0; ok && j < options.num_keys; ++j) {
      ok = ParseInt(fields[j], &keys[j]);
    }
    for (size_t j = 0; ok && j < num_feats; ++j) {
      ok = ParseDouble(fields[options.num_keys + j], &feats[j]);
    }
    if (!ok) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument("bad CSV row at line " +
                                     std::to_string(line_no) + " in " +
                                     csv_path);
    }
    FML_RETURN_IF_ERROR(table.Append(keys.data(), feats.data()));
  }
  FML_RETURN_IF_ERROR(table.Finish());
  return table;
}

Status ExportCsv(const storage::Table& table, storage::BufferPool* pool,
                 const std::string& csv_path, char delimiter) {
  std::ofstream out(csv_path);
  if (!out.is_open()) {
    return Status::IoError("cannot create CSV: " + csv_path);
  }
  // Header: k0..k{nk-1}, f0..f{nf-1}.
  const auto& schema = table.schema();
  for (size_t j = 0; j < schema.num_keys; ++j) {
    out << (j > 0 ? std::string(1, delimiter) : "") << "k" << j;
  }
  for (size_t j = 0; j < schema.num_feats; ++j) {
    out << delimiter << "f" << j;
  }
  out << "\n";

  storage::TableScanner scanner(&table, pool, 4096);
  storage::RowBatch batch;
  char buf[64];
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const int64_t* keys = batch.KeysOf(r);
      for (size_t j = 0; j < schema.num_keys; ++j) {
        if (j > 0) out << delimiter;
        out << keys[j];
      }
      for (size_t j = 0; j < schema.num_feats; ++j) {
        std::snprintf(buf, sizeof(buf), "%.17g", batch.feats(r, j));
        out << delimiter << buf;
      }
      out << "\n";
    }
  }
  FML_RETURN_IF_ERROR(scanner.status());
  if (!out.good()) {
    return Status::IoError("write failed: " + csv_path);
  }
  return Status::OK();
}

}  // namespace factorml::data

#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace factorml::la {

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

void Matrix::Add(const Matrix& other) {
  FML_CHECK_EQ(rows_, other.rows_);
  FML_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::MaxAbsDiff(const Matrix& a, const Matrix& b) {
  FML_CHECK_EQ(a.rows(), b.rows());
  FML_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " [";
  for (size_t i = 0; i < rows_; ++i) {
    os << "\n  ";
    for (size_t j = 0; j < cols_; ++j) {
      os << (*this)(i, j) << (j + 1 < cols_ ? ", " : "");
    }
  }
  os << "\n]";
  return os.str();
}

}  // namespace factorml::la

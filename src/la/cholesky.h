#ifndef FACTORML_LA_CHOLESKY_H_
#define FACTORML_LA_CHOLESKY_H_

#include "common/status.h"
#include "la/matrix.h"

namespace factorml::la {

/// Cholesky factorization A = L * L^T of a symmetric positive-definite
/// matrix. Used by the GMM trainers to invert covariance matrices and to
/// compute log-determinants for the Gaussian density (Eq. 1), and by the
/// data generator to sample from full-covariance Gaussians.
class Cholesky {
 public:
  Cholesky() = default;

  /// Factors the SPD matrix `a`. Fails with FailedPrecondition when a
  /// non-positive pivot is found.
  Status Factor(const Matrix& a);

  /// Factors `a + jitter*I`, growing `jitter` geometrically from
  /// `initial_jitter` up to `max_tries` times. Covariance estimates from a
  /// degenerate responsibility assignment can be slightly indefinite; the
  /// ridge keeps EM running (standard GMM practice).
  Status FactorWithJitter(const Matrix& a, double initial_jitter = 1e-9,
                          int max_tries = 8);

  bool factored() const { return factored_; }
  size_t order() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// log(det(A)) = 2 * sum_i log(L_ii). Requires a prior successful Factor.
  double LogDet() const;

  /// Solves A x = b (length-n arrays). Requires a prior successful Factor.
  void Solve(const double* b, double* x) const;

  /// Returns A^{-1} (the precision matrix when A is a covariance).
  Matrix Inverse() const;

  /// Samples y = mu + L*z where z is iid standard normal; used by the
  /// synthetic generator. `z` is length-n scratch input, `y` output.
  void MultiplyLower(const double* z, double* y) const;

 private:
  Matrix l_;
  bool factored_ = false;
};

}  // namespace factorml::la

#endif  // FACTORML_LA_CHOLESKY_H_

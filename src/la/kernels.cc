#include "la/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "obs/metrics.h"

namespace factorml::la {

namespace {

// ------------------------------------------------------- scalar backend
//
// The primitive bodies below are the seed's exact loops, moved verbatim
// from ops.cc (which now routes through the active table). The build is
// IEEE-strict, so `--kernels=scalar` reproduces the pre-kernel-plane bits
// that the tier-1 goldens pin. The strip kernels replay the per-row order
// the model programs used before batching, making them the reference the
// vector backends are tolerance-tested against.

double ScalarDot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void ScalarAxpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarGemv(const double* a, size_t m, size_t n, const double* x,
                double* y) {
  for (size_t i = 0; i < m; ++i) {
    const double* row = a + i * n;
    double s = 0.0;
    for (size_t j = 0; j < n; ++j) s += row[j] * x[j];
    y[i] = s;
  }
}

double ScalarBilinear(const double* a, size_t lda, const double* u, size_t nu,
                      const double* v, size_t nv) {
  double total = 0.0;
  for (size_t i = 0; i < nu; ++i) {
    const double* row = a + i * lda;
    double s = 0.0;
    for (size_t j = 0; j < nv; ++j) s += row[j] * v[j];
    total += u[i] * s;
  }
  return total;
}

void ScalarAddOuter(double alpha, const double* u, size_t nu, const double* v,
                    size_t nv, double* a, size_t lda) {
  for (size_t i = 0; i < nu; ++i) {
    const double ui = alpha * u[i];
    double* row = a + i * lda;
    for (size_t j = 0; j < nv; ++j) row[j] += ui * v[j];
  }
}

void ScalarSyrkStrip(const double* const* cols, size_t d, size_t rows,
                     const double* w, double* gram, size_t ldg) {
  for (size_t r = 0; r < rows; ++r) {
    const double wr = w != nullptr ? w[r] : 1.0;
    for (size_t i = 0; i < d; ++i) {
      const double ui = wr * cols[i][r];
      double* row = gram + i * ldg;
      for (size_t j = 0; j < d; ++j) row[j] += ui * cols[j][r];
    }
  }
}

void ScalarColDotStrip(const double* const* cols, size_t d, size_t rows,
                       const double* v, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += v[j] * cols[j][r];
    out[r] = s;
  }
}

void ScalarColSumStrip(const double* const* cols, size_t d, size_t rows,
                       const double* w, double* acc) {
  for (size_t r = 0; r < rows; ++r) {
    const double wr = w != nullptr ? w[r] : 1.0;
    for (size_t j = 0; j < d; ++j) acc[j] += wr * cols[j][r];
  }
}

void ScalarDistStrip(const double* const* cols, size_t d, size_t rows,
                     const double* center, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double t = cols[j][r] - center[j];
      s += t * t;
    }
    out[r] = s;
  }
}

void ScalarQuadFormStrip(const double* diff, size_t d, size_t rows,
                         const double* a, size_t lda, double* out) {
  for (size_t r = 0; r < rows; ++r) {
    double q = 0.0;
    for (size_t i = 0; i < d; ++i) {
      const double* ai = a + i * lda;
      double t = 0.0;
      for (size_t j = 0; j < d; ++j) t += ai[j] * diff[j * rows + r];
      q += diff[i * rows + r] * t;
    }
    out[r] = q;
  }
}

void ScalarGemmStrip(const double* a, size_t lda, const double* b, size_t ldb,
                     size_t m, size_t n, size_t k, double* c, size_t ldc,
                     bool trans_b, bool accumulate) {
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    double* ci = c + i * ldc;
    if (!accumulate) {
      for (size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    if (trans_b) {
      for (size_t j = 0; j < n; ++j) {
        const double* bj = b + j * ldb;
        double s = 0.0;
        for (size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
        ci[j] += s;
      }
    } else {
      for (size_t p = 0; p < k; ++p) {
        const double aip = ai[p];
        const double* bp = b + p * ldb;
        for (size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

void ScalarGatherAddRowsStrip(const double* base, size_t ldb,
                              const int64_t* idx, size_t rows, size_t n,
                              double* out, size_t ldo) {
  for (size_t r = 0; r < rows; ++r) {
    const double* src = base + static_cast<size_t>(idx[r]) * ldb;
    double* dst = out + r * ldo;
    for (size_t j = 0; j < n; ++j) dst[j] += src[j];
  }
}

void ScalarGatherAddStrip(const double* src, const int64_t* idx, size_t rows,
                          double* out) {
  for (size_t r = 0; r < rows; ++r) out[r] += src[idx[r]];
}

void ScalarScatterAddStrip(const int64_t* idx, const double* w, size_t rows,
                           double* acc) {
  for (size_t r = 0; r < rows; ++r) {
    acc[idx[r]] += w != nullptr ? w[r] : 1.0;
  }
}

constexpr Kernels kScalarKernels = {
    "scalar",          false,
    ScalarDot,         ScalarAxpy,       ScalarGemv,
    ScalarBilinear,    ScalarAddOuter,
    ScalarSyrkStrip,   ScalarColDotStrip, ScalarColSumStrip,
    ScalarDistStrip,   ScalarQuadFormStrip,
    ScalarGemmStrip,   ScalarGatherAddRowsStrip,
    ScalarGatherAddStrip, ScalarScatterAddStrip,
};

// ------------------------------------------------------- vector backends

typedef double fml_v4d __attribute__((vector_size(32)));
typedef double fml_v4d_u
    __attribute__((vector_size(32), aligned(8), __may_alias__));

// The baseline instantiation passes 32-byte vectors between static
// (fully-internal) helpers; GCC's ABI note about that is irrelevant here.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

// Baseline-ISA instantiation (SSE2 on x86-64, NEON on aarch64 — the
// compiler splits the 32-byte lanes to whatever the target offers).
#define FML_VEC_FN(name) Portable##name
#define FML_VEC_ATTR
#include "la/kernels_vec.inc"
#undef FML_VEC_FN
#undef FML_VEC_ATTR

constexpr Kernels kPortableKernels = {
    "portable",          true,
    PortableDot,         PortableAxpy,       PortableGemv,
    PortableBilinear,    PortableAddOuter,
    PortableSyrkStrip,   PortableColDotStrip, PortableColSumStrip,
    PortableDistStrip,   PortableQuadFormStrip,
    PortableGemmStrip,   PortableGatherAddRowsStrip,
    PortableGatherAddStrip, PortableScatterAddStrip,
};

#if defined(__x86_64__) || defined(_M_X64)
#define FML_HAVE_AVX2_CLONE 1
// AVX2+FMA instantiation of the same source; selected at runtime only when
// __builtin_cpu_supports agrees, so the baseline binary stays portable.
#define FML_VEC_FN(name) Avx2##name
#define FML_VEC_ATTR __attribute__((target("avx2,fma")))
#include "la/kernels_vec.inc"
#undef FML_VEC_FN
#undef FML_VEC_ATTR

constexpr Kernels kAvx2Kernels = {
    "avx2",          true,
    Avx2Dot,         Avx2Axpy,       Avx2Gemv,
    Avx2Bilinear,    Avx2AddOuter,
    Avx2SyrkStrip,   Avx2ColDotStrip, Avx2ColSumStrip,
    Avx2DistStrip,   Avx2QuadFormStrip,
    Avx2GemmStrip,   Avx2GatherAddRowsStrip,
    Avx2GatherAddStrip, Avx2ScatterAddStrip,
};

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
#endif  // x86-64

const Kernels& NativeSimdKernels() {
#if defined(FML_HAVE_AVX2_CLONE)
  static const bool avx2 = CpuHasAvx2Fma();
  if (avx2) return kAvx2Kernels;
#endif
  return kPortableKernels;
}

/// What kSimd resolves to: the CPU-feature pick, unless the
/// FACTORML_KERNELS_BACKEND override names a specific table. Re-read on
/// every selection so tests can flip the variable between runs. kScalar
/// selection never consults this — the scalar goldens must hold with the
/// override set (the forced-portable CI job runs the whole tier1 suite).
const Kernels& SimdKernels() {
  const char* env = std::getenv("FACTORML_KERNELS_BACKEND");
  if (env == nullptr || *env == '\0') return NativeSimdKernels();
  const std::string_view v(env);
  if (v == "scalar") return kScalarKernels;
  if (v == "portable") return kPortableKernels;
  if (v == "native") return NativeSimdKernels();
  std::fprintf(stderr,
               "invalid FACTORML_KERNELS_BACKEND=%s "
               "(expected scalar, portable or native)\n",
               env);
  std::exit(2);
}

std::atomic<const Kernels*> g_active{&kScalarKernels};

}  // namespace

void SelectKernels(KernelMode mode) {
  const Kernels& k =
      mode == KernelMode::kSimd ? SimdKernels() : kScalarKernels;
  g_active.store(&k, std::memory_order_release);
  // 0 = scalar, 1 = portable vector, 2 = avx2 — the dispatch decision as a
  // scrapeable signal (last run wins, like every gauge).
  static obs::Gauge* dispatch =
      obs::Registry::Instance().GetGauge("kernels.dispatch");
  dispatch->Set(!k.simd ? 0.0 : (k.name[0] == 'a' ? 2.0 : 1.0));
}

const Kernels& Active() {
  return *g_active.load(std::memory_order_acquire);
}

const char* SimdBackendName() { return SimdKernels().name; }

std::string CpuFeatures() {
#if defined(FML_HAVE_AVX2_CLONE)
  return CpuHasAvx2Fma() ? "x86-64 avx2 fma" : "x86-64 baseline";
#elif defined(__aarch64__) || defined(__ARM_NEON)
  return "aarch64 neon";
#else
  return "generic";
#endif
}

const char* KernelModeName(KernelMode mode) {
  return mode == KernelMode::kSimd ? "simd" : "scalar";
}

}  // namespace factorml::la

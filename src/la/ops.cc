#include "la/ops.h"

#include "common/opcount.h"
#include "la/kernels.h"

namespace factorml::la {

// The vector-width-sensitive primitives (Dot/Axpy/Gemv/Bilinear/AddOuter)
// dispatch through the kernel plane's active backend (la/kernels.h) so
// every consumer — dense, factorized, NN — rides --kernels=simd without
// model-code changes. Op accounting stays here, in the wrappers, making
// the measured counts backend-independent by construction. The remaining
// Gemm* kernels keep their direct loops: their skip-on-zero branches are
// part of the pinned work stream.

double Dot(const double* a, const double* b, size_t n) {
  const double s = Active().dot(a, b, n);
  CountMults(n);
  CountAdds(n);
  return s;
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  Active().axpy(alpha, x, y, n);
  CountMults(n);
  CountAdds(n);
}

void Gemv(const Matrix& a, const double* x, double* y) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  Active().gemv(a.data(), m, n, x, y);
  CountMults(m * n);
  CountAdds(m * n);
}

double Bilinear(const Matrix& a, size_t r0, size_t c0, const double* u,
                size_t nu, const double* v, size_t nv) {
  FML_DCHECK(r0 + nu <= a.rows() && c0 + nv <= a.cols());
  const size_t lda = a.cols();
  const double total =
      Active().bilinear(a.data() + r0 * lda + c0, lda, u, nu, v, nv);
  CountMults(nu * nv + nu);
  CountAdds(nu * nv + nu);
  return total;
}

double QuadForm(const Matrix& a, const double* x, size_t n) {
  FML_DCHECK(a.rows() == n && a.cols() == n);
  return Bilinear(a, 0, 0, x, n, x, n);
}

void GemmNT(const Matrix& x, const Matrix& w, Matrix* c, bool accumulate) {
  FML_CHECK_EQ(x.cols(), w.cols());
  const size_t m = x.rows();
  const size_t n = w.rows();
  const size_t k = x.cols();
  if (!accumulate) c->Resize(m, n);
  FML_CHECK_EQ(c->rows(), m);
  FML_CHECK_EQ(c->cols(), n);
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x.data() + i * k;
    double* ci = c->data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* wj = w.data() + j * k;
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += xi[p] * wj[p];
      ci[j] += s;
    }
  }
  CountMults(m * n * k);
  CountAdds(m * n * k);
}

void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate) {
  FML_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (!accumulate) c->Resize(m, n);
  FML_CHECK_EQ(c->rows(), m);
  FML_CHECK_EQ(c->cols(), n);
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a.data() + i * k;
    double* ci = c->data() + i * n;
    for (size_t p = 0; p < k; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;
      const double* bp = b.data() + p * n;
      for (size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
  CountMults(m * n * k);
  CountAdds(m * n * k);
}

void GemmNTSlice(const Matrix& x, const Matrix& w, size_t wcol0, Matrix* c,
                 bool accumulate) {
  const size_t m = x.rows();
  const size_t n = w.rows();
  const size_t k = x.cols();
  FML_CHECK_LE(wcol0 + k, w.cols());
  const size_t ldw = w.cols();
  if (!accumulate) c->Resize(m, n);
  FML_CHECK_EQ(c->rows(), m);
  FML_CHECK_EQ(c->cols(), n);
  for (size_t i = 0; i < m; ++i) {
    const double* xi = x.data() + i * k;
    double* ci = c->data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* wj = w.data() + j * ldw + wcol0;
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += xi[p] * wj[p];
      ci[j] += s;
    }
  }
  CountMults(m * n * k);
  CountAdds(m * n * k);
}

void GemmTN(const Matrix& d, const Matrix& x, Matrix* g, bool accumulate) {
  FML_CHECK_EQ(d.rows(), x.rows());
  const size_t m = d.rows();
  const size_t n = d.cols();
  const size_t k = x.cols();
  if (!accumulate) g->Resize(n, k);
  FML_CHECK_EQ(g->rows(), n);
  FML_CHECK_EQ(g->cols(), k);
  for (size_t r = 0; r < m; ++r) {
    const double* dr = d.data() + r * n;
    const double* xr = x.data() + r * k;
    for (size_t i = 0; i < n; ++i) {
      const double di = dr[i];
      if (di == 0.0) continue;
      double* gi = g->data() + i * k;
      for (size_t j = 0; j < k; ++j) gi[j] += di * xr[j];
    }
  }
  CountMults(m * n * k);
  CountAdds(m * n * k);
}

void GemmTNSlice(const Matrix& d, const Matrix& x, Matrix* g, size_t gcol0) {
  FML_CHECK_EQ(d.rows(), x.rows());
  const size_t m = d.rows();
  const size_t n = d.cols();
  const size_t k = x.cols();
  FML_CHECK_EQ(g->rows(), n);
  FML_CHECK_LE(gcol0 + k, g->cols());
  const size_t ldg = g->cols();
  for (size_t r = 0; r < m; ++r) {
    const double* dr = d.data() + r * n;
    const double* xr = x.data() + r * k;
    for (size_t i = 0; i < n; ++i) {
      const double di = dr[i];
      double* gi = g->data() + i * ldg + gcol0;
      for (size_t j = 0; j < k; ++j) gi[j] += di * xr[j];
    }
  }
  CountMults(m * n * k);
  CountAdds(m * n * k);
}

void GemmNTSliceRows(const Matrix& x, const Matrix& w, size_t wcol0,
                     Matrix* c, size_t row_begin, size_t row_end,
                     bool accumulate) {
  const size_t n = w.rows();
  const size_t k = x.cols();
  FML_CHECK_LE(wcol0 + k, w.cols());
  FML_CHECK_LE(row_end, x.rows());
  FML_CHECK_EQ(c->rows(), x.rows());
  FML_CHECK_EQ(c->cols(), n);
  const size_t ldw = w.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    const double* xi = x.data() + i * k;
    double* ci = c->data() + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* wj = w.data() + j * ldw + wcol0;
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += xi[p] * wj[p];
      ci[j] = accumulate ? ci[j] + s : s;
    }
  }
  CountMults((row_end - row_begin) * n * k);
  CountAdds((row_end - row_begin) * n * k);
}

void GemmTNSliceCols(const Matrix& d, const Matrix& x, Matrix* g,
                     size_t gcol0, size_t xcol_begin, size_t xcol_end) {
  FML_CHECK_EQ(d.rows(), x.rows());
  const size_t m = d.rows();
  const size_t n = d.cols();
  const size_t k = x.cols();
  FML_CHECK_LE(xcol_end, k);
  FML_CHECK_EQ(g->rows(), n);
  FML_CHECK_LE(gcol0 + k, g->cols());
  const size_t ldg = g->cols();
  for (size_t r = 0; r < m; ++r) {
    const double* dr = d.data() + r * n;
    const double* xr = x.data() + r * k;
    for (size_t i = 0; i < n; ++i) {
      const double di = dr[i];
      double* gi = g->data() + i * ldg + gcol0;
      for (size_t j = xcol_begin; j < xcol_end; ++j) gi[j] += di * xr[j];
    }
  }
  CountMults(m * n * (xcol_end - xcol_begin));
  CountAdds(m * n * (xcol_end - xcol_begin));
}

void AddOuter(double alpha, const double* u, size_t nu, const double* v,
              size_t nv, Matrix* a, size_t r0, size_t c0) {
  FML_DCHECK(r0 + nu <= a->rows() && c0 + nv <= a->cols());
  const size_t lda = a->cols();
  Active().add_outer(alpha, u, nu, v, nv, a->data() + r0 * lda + c0, lda);
  CountMults(nu * nv + nu);
  CountAdds(nu * nv);
}

void AddRowVector(const double* b, Matrix* x) {
  AddRowVectorRows(b, x, 0, x->rows());
}

void AddRowVectorRows(const double* b, Matrix* x, size_t row_begin,
                      size_t row_end) {
  FML_CHECK_LE(row_end, x->rows());
  const size_t n = x->cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    double* row = x->data() + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += b[j];
  }
  CountAdds((row_end - row_begin) * n);
}

}  // namespace factorml::la

#ifndef FACTORML_LA_KERNELS_H_
#define FACTORML_LA_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace factorml::la {

/// Runtime-dispatched compute kernel plane behind `--kernels={scalar,simd}`.
///
/// Every function pointer in `Kernels` is a *raw* kernel: it performs the
/// arithmetic only and never touches the OpCounters — accounting stays in
/// the `la/ops.h` wrappers (per-call totals) and in the model programs'
/// strip paths (per-batch totals), so the measured op counts are identical
/// for every backend by construction.
///
/// Backends:
///  - `scalar`  — the seed's exact loop bodies, moved verbatim from
///    `ops.cc`. The build uses strict IEEE semantics (no -ffast-math), so
///    routing through this table is bit-identical to the pre-kernel-plane
///    code: the tier-1 goldens pin it.
///  - `portable` — GNU vector extensions (32-byte double lanes) compiled
///    at the baseline ISA. On x86-64 that is SSE2; on aarch64 the same
///    source lowers to NEON. Fixed multi-accumulator reduction order, so
///    results are deterministic per build but differ from scalar by
///    reassociation — the tolerance contract.
///  - `avx2` — the identical vector source re-compiled per-function with
///    `target("avx2,fma")`, selected at runtime via __builtin_cpu_supports.
///
/// SelectKernels() is called once per training run (RunTraining) before
/// any parallel region; workers only ever read the table.
struct Kernels {
  const char* name;  // "scalar", "portable", "avx2"
  bool simd;

  // ------------------------------------------------- routed primitives
  // Semantics match the `la/ops.h` wrappers of the same shape.
  double (*dot)(const double* a, const double* b, size_t n);
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  // y = A x; `a` is m x n row-major.
  void (*gemv)(const double* a, size_t m, size_t n, const double* x,
               double* y);
  // total = u^T A v over an nu x nv block at `a` with row stride lda.
  double (*bilinear)(const double* a, size_t lda, const double* u, size_t nu,
                     const double* v, size_t nv);
  // a[i*lda + j] += (alpha * u[i]) * v[j].
  void (*add_outer)(double alpha, const double* u, size_t nu, const double* v,
                    size_t nv, double* a, size_t lda);

  // ---------------------------------------------- strip batch kernels
  // `cols` is an array of d pointers, each to a contiguous column of
  // `rows` doubles (one decoded strip, see storage::ColumnStrips).

  // gram[i*ldg + j] += sum_r w[r] * cols[i][r] * cols[j][r] over the full
  // (symmetric) d x d square; w == nullptr means unit weights. Batches the
  // per-row rank-1 AddOuter of the linreg/logreg Gram update and the GMM
  // covariance moment.
  void (*syrk_strip)(const double* const* cols, size_t d, size_t rows,
                     const double* w, double* gram, size_t ldg);
  // out[r] = sum_j v[j] * cols[j][r] — the transposed-gemv shape of the
  // logreg eta pass (one dot per row, batched across the strip).
  void (*col_dot_strip)(const double* const* cols, size_t d, size_t rows,
                        const double* v, double* out);
  // acc[j] += sum_r w[r] * cols[j][r]; w == nullptr means unit weights.
  // Batches the per-row Axpy of the cofactor / weighted-mean updates.
  void (*colsum_strip)(const double* const* cols, size_t d, size_t rows,
                       const double* w, double* acc);
  // out[r] = sum_j (cols[j][r] - center[j])^2 — one k-means distance
  // column per call.
  void (*dist_strip)(const double* const* cols, size_t d, size_t rows,
                     const double* center, double* out);
  // out[r] = diff_r^T A diff_r where diff is d x rows row-major
  // (diff[i*rows + r]) — the batched GMM responsibility quadratic form.
  void (*quadform_strip)(const double* diff, size_t d, size_t rows,
                         const double* a, size_t lda, double* out);

  // ------------------------------------------- dgemm-shaped strip kernel
  // trans_b == false:  C(m x n, ldc) (+)= A(m x k, lda) * B(k x n, ldb)
  //   — axpy-form over n; B's rows are contiguous length-n runs (strip
  //   columns / transposed batch rows), so the vector backends stream
  //   whole lanes of C. The NN first-layer forward shape: A = W1 slice,
  //   B = one feature strip, C = the transposed activation block.
  // trans_b == true:   C(m x n, ldc) (+)= A(m x k, lda) * B(n x k, ldb)^T
  //   — dot-form over k; both operands contiguous along k (two strip
  //   blocks of the same height). The NN backward shape: A = transposed
  //   delta strip, B = the feature strip, C = a W1-gradient block.
  // accumulate == false overwrites C's m x n block instead of adding.
  void (*gemm_strip)(const double* a, size_t lda, const double* b, size_t ldb,
                     size_t m, size_t n, size_t k, double* c, size_t ldc,
                     bool trans_b, bool accumulate);

  // ----------------------------------------- FK1 gather/scatter kernels
  // Rid-indexed strip kernels for the group-structured attribute loops:
  // `idx` holds one row id per strip row (contiguous rid runs when they
  // come from join::ChunkFk1Runs group batches, arbitrary otherwise).
  // Scatters visit rows in ascending order in every backend, so duplicate
  // indices accumulate bit-identically to the scalar row loop.

  // out[r] += base[idx[r] * ldb + j] for j in [0, n) — adds one gathered
  // base row per strip row (NN's per-attribute partial-cache gather).
  void (*gather_add_rows_strip)(const double* base, size_t ldb,
                                const int64_t* idx, size_t rows, size_t n,
                                double* out, size_t ldo);
  // out[r] += src[idx[r]] — element gather-add (k-means' cached
  // per-attribute distance lookups).
  void (*gather_add_strip)(const double* src, const int64_t* idx,
                           size_t rows, double* out);
  // acc[idx[r]] += w[r] (w == nullptr means unit weights) — element
  // scatter-add (GMM's per-rid responsibility mass, k-means' group mass).
  void (*scatter_add_strip)(const int64_t* idx, const double* w, size_t rows,
                            double* acc);
};

/// Kernel backend selection mode, resolved from --kernels.
enum class KernelMode {
  kScalar = 0,  // bit-identical seed loops (default)
  kSimd = 1,    // best vector backend this CPU supports
};

/// Installs the backend for `mode` as the process-wide active table and
/// publishes the choice to the obs registry (`kernels.dispatch` gauge:
/// 0 = scalar, 1 = portable vector, 2 = avx2). kSimd resolves to "avx2"
/// when the CPU reports AVX2+FMA, else the portable vector backend.
///
/// The FACTORML_KERNELS_BACKEND environment variable overrides what kSimd
/// resolves to — "scalar", "portable", or "native" (the CPU-feature pick
/// above) — so tests/CI can force the portable GNU-vector lowering on AVX2
/// hosts. kScalar ignores the override: the bit-identity goldens must hold
/// whatever the environment says. An unrecognized value exits with code 2.
void SelectKernels(KernelMode mode);

/// The active kernel table (scalar until SelectKernels says otherwise).
/// Safe to call concurrently from workers; selection happens before
/// parallel regions.
const Kernels& Active();

/// Name of the backend SelectKernels(kSimd) would pick on this machine,
/// honoring the FACTORML_KERNELS_BACKEND override (so run manifests report
/// the backend a forced run actually used).
const char* SimdBackendName();

/// Detected CPU feature summary for manifests, e.g. "x86-64 avx2 fma",
/// "x86-64 baseline", "aarch64 neon".
std::string CpuFeatures();

/// "scalar" / "simd" — the flag spelling of a mode.
const char* KernelModeName(KernelMode mode);

}  // namespace factorml::la

#endif  // FACTORML_LA_KERNELS_H_

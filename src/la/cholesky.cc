#include "la/cholesky.h"

#include <cmath>
#include <vector>

#include "common/opcount.h"

namespace factorml::la {

Status Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix is not square");
  }
  const size_t n = a.rows();
  l_.Resize(n, n);
  factored_ = false;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t p = 0; p < j; ++p) s -= l_(i, p) * l_(j, p);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) {
          return Status::FailedPrecondition(
              "Cholesky: matrix is not positive definite");
        }
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
  CountMults(n * n * n / 6 + n * n);
  CountAdds(n * n * n / 6);
  factored_ = true;
  return Status::OK();
}

Status Cholesky::FactorWithJitter(const Matrix& a, double initial_jitter,
                                  int max_tries) {
  Status st = Factor(a);
  double jitter = initial_jitter;
  for (int attempt = 0; !st.ok() && attempt < max_tries; ++attempt) {
    Matrix ridged = a;
    for (size_t i = 0; i < a.rows(); ++i) ridged(i, i) += jitter;
    st = Factor(ridged);
    jitter *= 10.0;
  }
  return st;
}

double Cholesky::LogDet() const {
  FML_CHECK(factored_);
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  CountExps(l_.rows());
  return 2.0 * s;
}

void Cholesky::Solve(const double* b, double* x) const {
  FML_CHECK(factored_);
  const size_t n = l_.rows();
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  // Backward substitution: L^T x = y.
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  CountMults(n * n + 2 * n);
  CountAdds(n * n);
}

Matrix Cholesky::Inverse() const {
  FML_CHECK(factored_);
  const size_t n = l_.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  std::vector<double> col(n, 0.0);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Solve(e.data(), col.data());
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  // Symmetrize to wash out round-off (A^{-1} of SPD is symmetric).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (inv(i, j) + inv(j, i));
      inv(i, j) = v;
      inv(j, i) = v;
    }
  }
  return inv;
}

void Cholesky::MultiplyLower(const double* z, double* y) const {
  FML_CHECK(factored_);
  const size_t n = l_.rows();
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j <= i; ++j) s += l_(i, j) * z[j];
    y[i] = s;
  }
  CountMults(n * n / 2);
  CountAdds(n * n / 2);
}

}  // namespace factorml::la

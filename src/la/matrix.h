#ifndef FACTORML_LA_MATRIX_H_
#define FACTORML_LA_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace factorml::la {

/// Dense row-major matrix of doubles. All model math (EM statistics, NN
/// weights/activations) is built on this type; there is no external BLAS.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t i, size_t j) {
    FML_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(size_t i, size_t j) const {
    FML_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Mutable view of row i.
  std::span<double> Row(size_t i) {
    FML_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> Row(size_t i) const {
    FML_DCHECK(i < rows_);
    return {data_.data() + i * cols_, cols_};
  }

  /// Resets shape and zero-fills.
  void Resize(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0);
  }

  /// Resets shape WITHOUT zero-filling retained storage — for hot batch
  /// buffers whose every element is written before being read (assembly
  /// buffers, non-accumulating gemm outputs). Newly grown storage is
  /// value-initialized by vector::resize; shrinking or reshaping keeps
  /// stale values, so never use this for accumulators.
  void Reshape(size_t rows, size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  void Fill(double v) { data_.assign(data_.size(), v); }
  void SetZero() { Fill(0.0); }

  /// Element-wise in-place scale.
  void Scale(double alpha);

  /// Element-wise in-place add of another matrix of identical shape.
  void Add(const Matrix& other);

  /// Returns the transpose as a new matrix.
  Matrix Transposed() const;

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  /// Max |a_ij - b_ij| over all entries; matrices must have equal shape.
  static double MaxAbsDiff(const Matrix& a, const Matrix& b);

  /// Multi-line debug representation (small matrices only).
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace factorml::la

#endif  // FACTORML_LA_MATRIX_H_

#ifndef FACTORML_LA_OPS_H_
#define FACTORML_LA_OPS_H_

#include <cstddef>

#include "la/matrix.h"

namespace factorml::la {

/// Dense kernels used by the trainers. Every kernel credits the global
/// OpCounters with its multiply/add totals so the analytical cost model of
/// the paper can be validated against measured counts.

/// Inner product of two length-n arrays.
double Dot(const double* a, const double* b, size_t n);

/// y += alpha * x (length n).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// y = A * x for the full matrix A (m x n), x length n, y length m.
void Gemv(const Matrix& a, const double* x, double* y);

/// Bilinear form u^T * A[r0:r0+nu, c0:c0+nv] * v over a rectangular block
/// of A. This is the building block for the paper's UL/UR/LL/LR quadratic
/// form decomposition (Eqs. 9-12, 19).
double Bilinear(const Matrix& a, size_t r0, size_t c0, const double* u,
                size_t nu, const double* v, size_t nv);

/// x^T * A * x for the full square matrix A (n x n).
double QuadForm(const Matrix& a, const double* x, size_t n);

/// C = X * W^T (or C += if accumulate): X is (m x k), W is (n x k),
/// C is (m x n).
void GemmNT(const Matrix& x, const Matrix& w, Matrix* c, bool accumulate);

/// C = A * B (or C += if accumulate): A is (m x k), B is (k x n),
/// C is (m x n). Used to push NN error terms down a layer
/// (delta_{l-1} = delta_l * W_l before the activation derivative).
void GemmNN(const Matrix& a, const Matrix& b, Matrix* c, bool accumulate);

/// C (+)= X * W[:, wcol0 : wcol0+X.cols()]^T — multiplies X (m x k) by the
/// transposed column slice of W (n x k_total, k_total >= wcol0 + k).
/// Used for per-relation slices of the first-layer weight matrix.
void GemmNTSlice(const Matrix& x, const Matrix& w, size_t wcol0, Matrix* c,
                 bool accumulate);

/// G (+)= D^T * X: D is (m x n), X is (m x k), G is (n x k). This is the
/// backprop weight-gradient kernel (Eq. 28).
void GemmTN(const Matrix& d, const Matrix& x, Matrix* g, bool accumulate);

/// G[:, gcol0 : gcol0+X.cols()] += D^T * X — accumulates the gradient into
/// a column slice of G (the PG_S / PG_R split of Eq. 29).
void GemmTNSlice(const Matrix& d, const Matrix& x, Matrix* g, size_t gcol0);

/// Row-morsel of GemmNT / GemmNTSlice for the exec/ parallel runtime:
/// rows [row_begin, row_end) of C (+)= X * W[:, wcol0 : wcol0+X.cols()]^T.
/// Each output row depends only on its own X row, so any row partition
/// produces bit-identical results to the full kernel. C must already have
/// shape (X.rows() x W.rows()); accumulate=false overwrites the rows.
void GemmNTSliceRows(const Matrix& x, const Matrix& w, size_t wcol0,
                     Matrix* c, size_t row_begin, size_t row_end,
                     bool accumulate);

/// Column-morsel of GemmTN / GemmTNSlice for the exec/ parallel runtime:
/// G[:, gcol0+j] += sum_r D[r, i] * X[r, j] for j in
/// [xcol_begin, xcol_end). The per-element accumulation order over rows is
/// that of the full kernel, so any column partition is bit-identical.
void GemmTNSliceCols(const Matrix& d, const Matrix& x, Matrix* g,
                     size_t gcol0, size_t xcol_begin, size_t xcol_end);

/// A[r0:r0+nu, c0:c0+nv] += alpha * u * v^T (outer-product accumulate);
/// the building block of the factorized covariance update (Eqs. 15-18, 24).
void AddOuter(double alpha, const double* u, size_t nu, const double* v,
              size_t nv, Matrix* a, size_t r0, size_t c0);

/// Adds the length-cols vector b to every row of X.
void AddRowVector(const double* b, Matrix* x);

/// Row-morsel of AddRowVector: adds b to rows [row_begin, row_end) of X.
void AddRowVectorRows(const double* b, Matrix* x, size_t row_begin,
                      size_t row_end);

}  // namespace factorml::la

#endif  // FACTORML_LA_OPS_H_

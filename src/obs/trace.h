#ifndef FACTORML_OBS_TRACE_H_
#define FACTORML_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace factorml::obs {

/// The span tracer: per-worker lock-free ring buffers recording the
/// runtime's begin/end spans, flushed at run end to Chrome trace-event
/// JSON (`--trace=PATH`), loadable in Perfetto or chrome://tracing.
///
/// Design constraints, in order:
///  1. Tracing must not perturb the determinism contract. Emitting an
///     event touches no OpCounters, no IoStats, no scheduler state — only
///     the emitting thread's own ring buffer and the monotonic clock.
///     TraceParityTest pins trace-on == trace-off bit-identity of
///     objectives, op counts and page I/O.
///  2. `--trace` off must be free. Every instrumentation site guards on
///     TraceEnabled(), an inlined relaxed load of one cold atomic flag;
///     the span machinery behind the branch is never entered.
///  3. Emission must never block or allocate. Each thread writes to its
///     own fixed-capacity TraceBuffer; when the ring is full, events are
///     dropped and counted (never overwritten, never waited on).
///
/// ---------------------------------------------------------------------
/// Trace file schema (Chrome trace-event "JSON Object Format")
/// ---------------------------------------------------------------------
/// The file is one JSON object:
///
///   {
///     "displayTimeUnit": "ms",
///     "otherData": { ...RunManifest::ToJson()... },
///     "traceEvents": [ <event>, ... ]
///   }
///
/// `otherData` carries the run manifest (resolved config, schema, seed,
/// git describe — see obs/manifest.h) so every trace is self-describing.
///
/// Each element of `traceEvents` is one event:
///
///   name  string  span name (see the catalog below)
///   cat   string  category: "exec" | "morsel" | "storage" | "pipeline"
///                 | "phase"
///   ph    string  "X" = complete span (has dur), "i" = instant event
///   ts    int     begin time, microseconds since trace start
///   dur   int     span length in microseconds ("X" only)
///   pid   int     always 1 (single process)
///   tid   int     emitting thread: 0 = the dispatching thread, then in
///                 order of first emission (pool workers, I/O crew)
///   args  object  span-specific int fields, at most two
///
/// Span catalog (name / cat / args):
///   region         exec      workers      parallel region (ThreadPool::Run)
///   task           exec      worker       one worker's share of a region
///   io_submit      exec      —            I/O-crew submission (instant)
///   io_task        exec      —            one crew task execution
///   chunk          morsel    chunk,stolen one morsel execution; stolen=1
///                                         when the executing worker is not
///                                         the chunk's static owner
///   demand_read    storage   page         a demand miss's physical page
///                                         read; dur = the stall it caused
///   prefetch_issue storage   page,pages   async request issued (instant)
///   prefetch_land  storage   pages        crew execution of one request
///   prefetch_drain storage   pages        end-of-span wait + counter fold
///   iteration      pipeline  iter         one EM iteration / SGD epoch
///   scan           pipeline  chunk_begin,chunk_end
///                                         one AccessStrategy pass/span scan
///   shard_scan     pipeline  shard        one shard's scan window
///   delta_extract  pipeline  shard,bytes  ShardDelta serialization
///   delta_apply    pipeline  shard        ShardDelta deserialization
///   delta_merge    pipeline  shards       the shard-id-order merge
///   <phase name>   phase     —            every core::PhaseScope (model
///                                         phases: e_step, gram, solve,
///                                         assign, update, irls, ...)
/// ---------------------------------------------------------------------

/// Microseconds since process start (monotonic). Used for both span
/// timestamps and durations so they share one clock.
uint64_t NowMicros();

/// One recorded event. POD; name/cat/arg-name pointers must be string
/// literals (or otherwise outlive the tracer) — they are written to JSON
/// at flush, not copied at emit.
struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  uint64_t ts_micros = 0;
  uint64_t dur_micros = 0;
  char phase = 'X';  // 'X' complete span, 'i' instant
  const char* arg1_name = nullptr;
  const char* arg2_name = nullptr;
  int64_t arg1 = 0;
  int64_t arg2 = 0;
};

/// Span categories (string literals shared by emit sites and tests).
inline constexpr const char kCatExec[] = "exec";
inline constexpr const char kCatMorsel[] = "morsel";
inline constexpr const char kCatStorage[] = "storage";
inline constexpr const char kCatPipeline[] = "pipeline";
inline constexpr const char kCatPhase[] = "phase";
inline constexpr const char kCatRpc[] = "rpc";

/// Fixed-capacity single-writer ring: the emitting thread appends, the
/// flusher reads after the run quiesces. Overflow drops (counted), never
/// blocks and never overwrites — so every stored event was written before
/// the release-store of size_ that published it, and a reader's acquire
/// load of size() bounds what it may touch (TSan-clean by construction).
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity_events)
      : events_(capacity_events < 1 ? 1 : capacity_events) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends one event; false (and one counted drop) when full.
  bool Emit(const TraceEvent& ev) {
    const size_t i = size_.load(std::memory_order_relaxed);
    if (i >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    events_[i] = ev;
    size_.store(i + 1, std::memory_order_release);
    return true;
  }

  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t capacity() const { return events_.size(); }
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  const TraceEvent& event(size_t i) const { return events_[i]; }

  /// Empties the ring (and resizes it when the capacity changed). Only
  /// safe while no thread is emitting — Tracer::Start calls it between
  /// runs, when the pool is idle.
  void Reset(size_t capacity_events) {
    events_.clear();
    events_.resize(capacity_events < 1 ? 1 : capacity_events);
    size_.store(0, std::memory_order_release);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> events_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
};

namespace internal {
/// The cold global switch every guard branches on. Off by default; only
/// Tracer::Start/Stop write it.
extern std::atomic<bool> g_trace_enabled;
/// Routes one event to the calling thread's ring (registering a buffer on
/// first emission). Out-of-line: only reached when tracing is on.
void EmitToThreadBuffer(const TraceEvent& ev);
}  // namespace internal

/// The compile-time-inlined guard: one relaxed load + branch when off.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Emits an instant event (no-op when tracing is off).
inline void TraceInstant(const char* cat, const char* name,
                         const char* arg_name = nullptr, int64_t arg = 0) {
  if (!TraceEnabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_micros = NowMicros();
  ev.phase = 'i';
  ev.arg1_name = arg_name;
  ev.arg1 = arg;
  internal::EmitToThreadBuffer(ev);
}

/// RAII complete-span guard: stamps the begin time at construction, emits
/// one "X" event with the measured duration at destruction. When tracing
/// is off the constructor is a single branch and the destructor another;
/// no clock is read and nothing is stored.
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) {
    if (!TraceEnabled()) return;
    cat_ = cat;
    name_ = name;
    begin_ = NowMicros();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches args (any time before destruction; later wins).
  void Arg(const char* key, int64_t value) {
    if (cat_ == nullptr) return;
    arg1_name_ = key;
    arg1_ = value;
  }
  void Arg2(const char* key, int64_t value) {
    if (cat_ == nullptr) return;
    arg2_name_ = key;
    arg2_ = value;
  }

  ~TraceSpan() {
    if (cat_ == nullptr) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ts_micros = begin_;
    ev.dur_micros = NowMicros() - begin_;
    ev.arg1_name = arg1_name_;
    ev.arg1 = arg1_;
    ev.arg2_name = arg2_name_;
    ev.arg2 = arg2_;
    internal::EmitToThreadBuffer(ev);
  }

 private:
  const char* cat_ = nullptr;  // nullptr = tracing was off at construction
  const char* name_ = nullptr;
  uint64_t begin_ = 0;
  const char* arg1_name_ = nullptr;
  const char* arg2_name_ = nullptr;
  int64_t arg1_ = 0;
  int64_t arg2_ = 0;
};

/// The process-wide tracer: owns every thread's ring buffer (registered
/// lazily at first emission, kept for the process lifetime so thread-local
/// pointers never dangle) and the JSON flush. Start/Stop/WriteJson must be
/// called outside parallel regions — between training runs, when the pool
/// workers are idle.
class Tracer {
 public:
  static Tracer& Instance();

  /// Enables tracing with `buffer_kb` KiB of ring per thread (events are
  /// fixed-size; the capacity in events is buffer_kb * 1024 / sizeof).
  /// Resets all previously registered buffers.
  void Start(size_t buffer_kb);

  /// Disables tracing. Buffers keep their contents for WriteJson.
  void Stop();

  /// Flushes every buffer to `path` as Chrome trace-event JSON, embedding
  /// `manifest_json` (a JSON object, may be empty -> "{}") as otherData.
  Status WriteJson(const std::string& path,
                   const std::string& manifest_json) const;

  /// Events currently buffered / dropped across all threads.
  uint64_t TotalEvents() const;
  uint64_t TotalDropped() const;

  size_t buffer_capacity_events() const { return capacity_events_; }

 private:
  Tracer() = default;
  friend void internal::EmitToThreadBuffer(const TraceEvent& ev);

  /// Registers (or returns) the calling thread's buffer.
  TraceBuffer* ThreadBuffer();

  mutable std::mutex mu_;  // guards buffers_ registration and flush
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  size_t capacity_events_ = 1;
};

}  // namespace factorml::obs

#endif  // FACTORML_OBS_TRACE_H_

#include "obs/manifest.h"

#include <cstdio>
#include <sstream>

#include "common/json.h"
#include "la/kernels.h"

namespace factorml::obs {

const char* GitDescribe() {
#ifdef FACTORML_GIT_DESCRIBE
  return FACTORML_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

RunManifest RunManifest::FromArgs(const std::string& binary,
                                  const ArgParser& args) {
  RunManifest m;
  m.binary = binary;
  m.git_describe = GitDescribe();
  m.threads = args.GetThreads(1);
  m.morsel_rows = args.GetMorselRows(0);
  m.steal = args.GetSteal(false);
  m.shards = args.GetShards(1);
  m.prefetch = args.GetPrefetch(false);
  m.prefetch_depth = args.GetPrefetchDepth(2);
  m.kernels = args.GetKernels();
  m.kernel_backend = m.kernels == "simd" ? la::SimdBackendName() : "scalar";
  m.shard_backend = args.GetShardBackend("inproc");
  m.cpu_features = la::CpuFeatures();
  m.buffer_pages = args.GetBufferPages(8192);
  m.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  m.trace_path = args.GetTracePath();
  m.trace_buffer_kb = args.GetTraceBufferKb();
  return m;
}

std::string RunManifest::ToJson() const {
  std::ostringstream os;
  os << "{\"binary\": \"" << JsonEscape(binary) << "\""
     << ", \"git_describe\": \"" << JsonEscape(git_describe) << "\""
     << ", \"threads\": " << threads
     << ", \"morsel_rows\": " << morsel_rows
     << ", \"steal\": " << (steal ? "true" : "false")
     << ", \"shards\": " << shards
     << ", \"shard_backend\": \"" << JsonEscape(shard_backend) << "\""
     << ", \"prefetch\": " << (prefetch ? "true" : "false")
     << ", \"prefetch_depth\": " << prefetch_depth
     << ", \"kernels\": \"" << JsonEscape(kernels) << "\""
     << ", \"kernel_backend\": \"" << JsonEscape(kernel_backend) << "\""
     << ", \"cpu_features\": \"" << JsonEscape(cpu_features) << "\""
     << ", \"buffer_pages\": " << buffer_pages << ", \"seed\": " << seed
     << ", \"schema\": \"" << JsonEscape(schema) << "\""
     << ", \"trace\": \"" << JsonEscape(trace_path) << "\""
     << ", \"trace_buffer_kb\": " << trace_buffer_kb << "}";
  return os.str();
}

Status RunManifest::WriteTo(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write manifest file " + path);
  }
  const std::string json = ToJson();
  std::fprintf(f, "%s\n", json.c_str());
  if (std::fclose(f) != 0) {
    return Status::IoError("short write to manifest file " + path);
  }
  return Status::OK();
}

}  // namespace factorml::obs

#ifndef FACTORML_OBS_METRICS_H_
#define FACTORML_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace factorml::obs {

/// The always-on metrics registry: named counters, gauges and fixed-bucket
/// histograms the runtime increments from its hot paths. Unlike the span
/// tracer (off unless --trace is given), metrics cost one relaxed atomic
/// add per event and are always live; ReportScope snapshots the registry
/// before/after a training run and stores the delta in
/// TrainReport::metrics, from where the bench --json schema emits it.
///
/// Instances are process-wide and never destroyed; hot paths cache the
/// pointer returned by Registry::Get* in a function-local static so the
/// name lookup happens once.

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed power-of-two-bucket histogram for microsecond-scale latencies:
/// bucket b counts samples with value < 2^b micros (b = 0..kBuckets-2);
/// the last bucket is the overflow. Count and sum are tracked alongside
/// so means survive the bucketing.
class Histogram {
 public:
  static constexpr size_t kBuckets = 22;  // < 1us .. < ~2.1s, + overflow

  void Record(uint64_t value) {
    size_t b = 0;
    while (b + 1 < kBuckets && value >= (uint64_t{1} << b)) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Bucket(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One named series captured at a point in time (or a delta of two
/// captures). Counters/gauges use `value`; histograms additionally carry
/// count/sum/buckets (value mirrors sum for uniform consumers).
struct MetricSample {
  std::string name;
  char kind = 'c';  // 'c' counter, 'g' gauge, 'h' histogram
  double value = 0.0;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;
};

/// A full registry capture, sorted by name.
using MetricsSnapshot = std::vector<MetricSample>;

/// after - before, series matched by name. Counters and histograms
/// subtract; gauges take the later value. Series absent from `before`
/// (registered mid-run) keep their `after` totals.
MetricsSnapshot SnapshotDelta(const MetricsSnapshot& after,
                              const MetricsSnapshot& before);

/// Flat JSON object: counters/gauges as "name": value, histograms as
/// "name.count", "name.sum_micros" and "name.mean_micros" (buckets are
/// elided from reports; the trace carries the raw latencies).
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

class Registry {
 public:
  static Registry& Instance();

  /// Named lookup, registering on first use. The returned pointer is
  /// stable for the process lifetime. A name keeps its first kind;
  /// re-requesting it with Get of another kind aborts.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snap() const;

 private:
  Registry() = default;

  struct Entry {
    char kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace factorml::obs

#endif  // FACTORML_OBS_METRICS_H_

#include "obs/trace.h"

#include <chrono>
#include <cstdio>

namespace factorml::obs {

namespace {

/// One anchor for the whole process so every thread's timestamps share an
/// origin. Initialized on first use (thread-safe static init).
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// The calling thread's ring, valid for the thread's lifetime once set.
/// Buffers live in Tracer::buffers_ and are never destroyed (the vector
/// only grows), so a pool thread's pointer survives Start/Stop cycles.
thread_local TraceBuffer* tls_buffer = nullptr;

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};

void EmitToThreadBuffer(const TraceEvent& ev) {
  TraceBuffer* buf = tls_buffer;
  if (buf == nullptr) {
    buf = Tracer::Instance().ThreadBuffer();
    tls_buffer = buf;
  }
  buf->Emit(ev);
}

}  // namespace internal

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

Tracer& Tracer::Instance() {
  // Leaked on purpose, like exec::ThreadPool: worker threads may emit
  // until process exit, after static destruction would have run.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceBuffer* Tracer::ThreadBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<TraceBuffer>(capacity_events_));
  return buffers_.back().get();
}

void Tracer::Start(size_t buffer_kb) {
  ProcessEpoch();  // pin the clock origin before any event
  if (buffer_kb < 1) buffer_kb = 1;
  const size_t events = buffer_kb * 1024 / sizeof(TraceEvent);
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_events_ = events < 1 ? 1 : events;
    for (auto& buf : buffers_) buf->Reset(capacity_events_);
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Stop() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

uint64_t Tracer::TotalEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->size();
  return total;
}

uint64_t Tracer::TotalDropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buf : buffers_) total += buf->dropped();
  return total;
}

Status Tracer::WriteJson(const std::string& path,
                         const std::string& manifest_json) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write trace file " + path);
  }
  std::fprintf(f, "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": %s,\n"
               "\"traceEvents\": [\n",
               manifest_json.empty() ? "{}" : manifest_json.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  for (size_t tid = 0; tid < buffers_.size(); ++tid) {
    const TraceBuffer& buf = *buffers_[tid];
    const size_t n = buf.size();  // acquire: bounds the readable prefix
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& ev = buf.event(i);
      std::fprintf(f, "%s{\"name\": \"%s\", \"cat\": \"%s\", "
                   "\"ph\": \"%c\", \"ts\": %llu",
                   first ? "" : ",\n", ev.name, ev.cat, ev.phase,
                   static_cast<unsigned long long>(ev.ts_micros));
      if (ev.phase == 'X') {
        std::fprintf(f, ", \"dur\": %llu",
                     static_cast<unsigned long long>(ev.dur_micros));
      }
      std::fprintf(f, ", \"pid\": 1, \"tid\": %zu", tid);
      if (ev.arg1_name != nullptr || ev.arg2_name != nullptr) {
        std::fprintf(f, ", \"args\": {");
        if (ev.arg1_name != nullptr) {
          std::fprintf(f, "\"%s\": %lld", ev.arg1_name,
                       static_cast<long long>(ev.arg1));
        }
        if (ev.arg2_name != nullptr) {
          std::fprintf(f, "%s\"%s\": %lld",
                       ev.arg1_name != nullptr ? ", " : "", ev.arg2_name,
                       static_cast<long long>(ev.arg2));
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}");
      first = false;
    }
  }
  std::fprintf(f, "\n]\n}\n");
  if (std::fclose(f) != 0) {
    return Status::IoError("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace factorml::obs

#ifndef FACTORML_OBS_MANIFEST_H_
#define FACTORML_OBS_MANIFEST_H_

#include <cstdint>
#include <string>

#include "common/flags.h"
#include "common/status.h"

namespace factorml::obs {

/// The run manifest: the full resolved configuration of one binary
/// invocation, emitted alongside every trace (as the Chrome trace's
/// otherData) and every bench --json record so artifacts are
/// self-describing — a BENCH_*.json or TRACE_*.json pulled from CI months
/// later carries the exact knobs and build that produced it.
struct RunManifest {
  std::string binary;        // "factorml_cli train-gmm", "fig3_gmm_binary"
  std::string git_describe;  // compiled-in `git describe` of the build
  int threads = 1;
  int64_t morsel_rows = 0;
  bool steal = false;
  int shards = 1;
  std::string shard_backend = "inproc";  // --shard-backend flag value
  bool prefetch = false;
  int prefetch_depth = 2;
  std::string kernels = "scalar";    // --kernels flag value
  std::string kernel_backend;        // table simd resolves to ("avx2", ...)
  std::string cpu_features;          // detected ISA, e.g. "x86-64 avx2 fma"
  int64_t buffer_pages = 0;
  uint64_t seed = 0;
  std::string schema;  // free-form dataset/relation shape description
  std::string trace_path;
  int64_t trace_buffer_kb = 0;

  /// Captures the shared runtime flags (threads/morsel-rows/steal/shards/
  /// prefetch/buffer-pages/seed/trace) through the same validating getters
  /// the binaries use, plus the compiled-in git describe.
  static RunManifest FromArgs(const std::string& binary,
                              const ArgParser& args);

  /// One JSON object; keys are fixed, values resolved (never the raw flag
  /// strings).
  std::string ToJson() const;

  /// Writes ToJson() to `path` (the sibling manifest artifact CI uploads
  /// next to the trace).
  Status WriteTo(const std::string& path) const;
};

/// The `git describe --always --dirty` string baked in at configure time
/// ("unknown" outside a git checkout).
const char* GitDescribe();

}  // namespace factorml::obs

#endif  // FACTORML_OBS_MANIFEST_H_

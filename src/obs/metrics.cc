#include "obs/metrics.h"

#include <sstream>

#include "common/json.h"
#include "common/logging.h"

namespace factorml::obs {

Registry& Registry::Instance() {
  // Leaked on purpose: hot paths cache Counter*/Histogram* pointers in
  // function-local statics and may fire during static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    FML_CHECK(e.gauge == nullptr && e.histogram == nullptr)
        << "metric '" << name << "' already registered with another kind";
    e.kind = 'c';
    e.counter = std::make_unique<Counter>();
  }
  return e.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    FML_CHECK(e.counter == nullptr && e.histogram == nullptr)
        << "metric '" << name << "' already registered with another kind";
    e.kind = 'g';
    e.gauge = std::make_unique<Gauge>();
  }
  return e.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    FML_CHECK(e.counter == nullptr && e.gauge == nullptr)
        << "metric '" << name << "' already registered with another kind";
    e.kind = 'h';
    e.histogram = std::make_unique<Histogram>();
  }
  return e.histogram.get();
}

MetricsSnapshot Registry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // map: already name-sorted
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case 'c':
        s.value = static_cast<double>(e.counter->Value());
        break;
      case 'g':
        s.value = e.gauge->Value();
        break;
      case 'h':
        s.count = e.histogram->Count();
        s.sum = e.histogram->Sum();
        s.value = static_cast<double>(s.sum);
        s.buckets.resize(Histogram::kBuckets);
        for (size_t b = 0; b < Histogram::kBuckets; ++b) {
          s.buckets[b] = e.histogram->Bucket(b);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

MetricsSnapshot SnapshotDelta(const MetricsSnapshot& after,
                              const MetricsSnapshot& before) {
  MetricsSnapshot out;
  out.reserve(after.size());
  size_t j = 0;
  for (const MetricSample& a : after) {
    while (j < before.size() && before[j].name < a.name) ++j;
    const MetricSample* b =
        (j < before.size() && before[j].name == a.name) ? &before[j]
                                                        : nullptr;
    MetricSample d = a;
    if (b != nullptr && a.kind != 'g') {
      d.value = a.value - b->value;
      d.count = a.count - b->count;
      d.sum = a.sum - b->sum;
      for (size_t k = 0; k < d.buckets.size() && k < b->buckets.size();
           ++k) {
        d.buckets[k] = a.buckets[k] - b->buckets[k];
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const MetricSample& s : snapshot) {
    if (s.kind == 'h') {
      const double mean =
          s.count > 0 ? static_cast<double>(s.sum) /
                            static_cast<double>(s.count)
                      : 0.0;
      os << (first ? "" : ", ") << "\"" << s.name << ".count\": " << s.count
         << ", \"" << s.name << ".sum_micros\": " << s.sum << ", \""
         << s.name << ".mean_micros\": " << JsonDouble(mean);
    } else if (s.kind == 'g') {
      // Gauges are free-form doubles; JsonDouble keeps a NaN/inf reading
      // from poisoning the whole snapshot (JSON has no such literals).
      os << (first ? "" : ", ") << "\"" << s.name
         << "\": " << JsonDouble(s.value);
    } else {
      os << (first ? "" : ", ") << "\"" << s.name << "\": "
         << static_cast<uint64_t>(s.value);
    }
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace factorml::obs

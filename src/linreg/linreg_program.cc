// Ridge linear regression as a core/pipeline ModelProgram: one "gram"
// full pass accumulates G = X^T X, c = X^T y and sum(y^2); the closed-form
// solve happens in EndIteration. The dense path (M/S) pays the full d x d
// outer product per joined tuple. The factorized path mirrors the paper's
// decompositions: per fact tuple it touches only the S slice (S-diagonal
// block, per-rid S-slice sums, per-rid match counts and target mass); the
// S x Ri cross blocks, the Ri-diagonal blocks and the Ri slices of c are
// deferred to one rank-1 update per *attribute* tuple — the classic
// cofactor factorization of linear models over joins.

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/opcount.h"
#include "core/pipeline/access_strategy.h"
#include "core/pipeline/model_program.h"
#include "la/cholesky.h"
#include "la/kernels.h"
#include "la/ops.h"
#include "linreg/linreg.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace factorml::linreg {

namespace {

using core::pipeline::DenseBlock;
using core::pipeline::FactorizedBlock;
using core::pipeline::PipelineContext;
using la::Matrix;

class LinregProgram final : public core::pipeline::ModelProgram {
 public:
  explicit LinregProgram(const LinregOptions& options) : opt_(options) {}

  const char* Name() const override { return "LINREG"; }
  const char* TempStem() const override { return "linreg"; }
  uint32_t Capabilities() const override {
    return core::pipeline::kFullPass | core::pipeline::kFactorized |
           core::pipeline::kNeedsTarget;
  }
  int MaxIterations() const override { return 1; }  // closed form
  const char* PassName(int) const override { return "gram"; }

  Status Init(const PipelineContext& ctx) override {
    rel_ = ctx.rel;
    factorized_ = ctx.factorized();
    d_ = rel_->total_dims();
    ds_ = rel_->ds();
    q_ = rel_->num_joins();
    da_ = d_ + (opt_.intercept ? 1 : 0);
    n_ = rel_->s.num_rows();
    attr_offset_.resize(q_);
    for (size_t i = 0; i < q_; ++i) attr_offset_[i] = rel_->FeatureOffset(i + 1);
    gram_.Resize(da_, da_);
    cvec_.assign(da_, 0.0);
    yy_ = 0.0;
    // Pre-sized so VisitIterationState is a pure function of Init-time
    // shapes (the checkpoint seam's contract).
    model_.w.assign(d_, 0.0);
    model_.bias = 0.0;
    sse_ = 0.0;
    return Status::OK();
  }

  Status BeginPass(const PipelineContext& ctx, int, int, int workers) override {
    views_ = ctx.views;
    acc_.resize(static_cast<size_t>(workers));
    if (factorized_) {
      // Rid-span contract: size each slot's table-0 per-rid masses to the
      // contiguous rid span that slot actually scans, not the full table.
      const auto n_r0 = static_cast<int64_t>((*ctx.views)[0].feats().rows());
      slot_spans_.resize(static_cast<size_t>(workers));
      for (int w = 0; w < workers; ++w) {
        slot_spans_[static_cast<size_t>(w)] =
            core::pipeline::SlotRidSpan(ctx, w, n_r0);
      }
      // Merged per-rid masses stay full-domain; EndPass clears them, so
      // reallocate zeroed every pass (slot states offset-add into them).
      vsum_.resize(q_);
      count_.resize(q_);
      ysum_.resize(q_);
      for (size_t i = 0; i < q_; ++i) {
        const size_t n_ri = (*ctx.views)[i].feats().rows();
        vsum_[i].Resize(n_ri, ds_);
        count_[i].assign(n_ri, 0.0);
        ysum_[i].assign(n_ri, 0.0);
      }
    }
    for (size_t w = 0; w < acc_.size(); ++w) {
      Acc& acc = acc_[w];
      acc.gram.Resize(da_, da_);
      acc.cvec.assign(da_, 0.0);
      acc.yy = 0.0;
      if (factorized_) {
        acc.vsum.resize(q_);
        acc.count.resize(q_);
        acc.ysum.resize(q_);
        for (size_t i = 0; i < q_; ++i) {
          const size_t n_ri =
              i == 0 ? static_cast<size_t>(slot_spans_[w].size())
                     : (*ctx.views)[i].feats().rows();
          acc.vsum[i].Resize(n_ri, ds_);
          acc.count[i].assign(n_ri, 0.0);
          acc.ysum[i].assign(n_ri, 0.0);
        }
      }
    }
    return Status::OK();
  }

  void AccumulateDense(int, int worker, const DenseBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    if (block.strips != nullptr) {
      AccumulateDenseStrips(worker, block);
      return;
    }
    for (size_t r = 0; r < block.num_rows; ++r) {
      const double* x = block.X(r);
      const double y = block.Y(r);
      // Full redundancy of the joined representation: every tuple pays
      // the complete d x d outer product.
      la::AddOuter(1.0, x, d_, x, d_, &acc.gram, 0, 0);
      la::Axpy(y, x, acc.cvec.data(), d_);
      if (opt_.intercept) {
        for (size_t j = 0; j < d_; ++j) acc.gram(j, d_) += x[j];
        acc.gram(d_, d_) += 1.0;
        acc.cvec[d_] += y;
        CountAdds(d_ + 2);
      }
      acc.yy += y * y;
      CountMults(1);
      CountAdds(1);
    }
  }

  /// Batched (--kernels=simd) twin of the dense row loop: whole column
  /// strips through the la/ batch kernels. Each kernel call is charged the
  /// exact op-count stream of the per-row loop it replaces, so the
  /// measured counts are invariant across backends; only the summation
  /// order inside each accumulator entry moves (tolerance contract).
  void AccumulateDenseStrips(int worker, const DenseBlock& block) {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    static obs::Histogram* batch_micros =
        obs::Registry::Instance().GetHistogram("la.batch_kernel_micros");
    const storage::ColumnStrips& st = *block.strips;
    const la::Kernels& kern = la::Active();
    std::vector<const double*> cols(d_);
    std::vector<double> colsum(opt_.intercept ? d_ : 0);
    for (size_t s = 0; s < st.num_strips; ++s) {
      const size_t rows = st.RowsInStrip(s);
      if (rows == 0) continue;
      const uint64_t t0 = obs::NowMicros();
      for (size_t j = 0; j < d_; ++j) cols[j] = block.StripX(s, j);
      const double* y = block.StripY(s);
      // G += X^T X — the per-row AddOuter(1, x, x) stream, batched.
      kern.syrk_strip(cols.data(), d_, rows, nullptr, acc.gram.data(),
                      acc.gram.cols());
      CountMults(rows * (d_ * d_ + d_));
      CountAdds(rows * d_ * d_);
      // c += X^T y — the per-row Axpy(y, x) stream.
      kern.colsum_strip(cols.data(), d_, rows, y, acc.cvec.data());
      CountMults(rows * d_);
      CountAdds(rows * d_);
      if (opt_.intercept) {
        std::fill(colsum.begin(), colsum.end(), 0.0);
        kern.colsum_strip(cols.data(), d_, rows, nullptr, colsum.data());
        for (size_t j = 0; j < d_; ++j) acc.gram(j, d_) += colsum[j];
        acc.gram(d_, d_) += static_cast<double>(rows);
        double ysum = 0.0;
        kern.colsum_strip(&y, 1, rows, nullptr, &ysum);
        acc.cvec[d_] += ysum;
        CountAdds(rows * (d_ + 2));
      }
      acc.yy += kern.dot(y, y, rows);
      CountMults(rows);
      CountAdds(rows);
      batch_micros->Record(obs::NowMicros() - t0);
    }
  }

  void AccumulateFactorized(int, int worker,
                            const FactorizedBlock& block) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    const storage::RowBatch& s_rows = *block.s_rows;
    const size_t y_off = 1;  // kNeedsTarget: S feature column 0 is Y
    for (size_t r = 0; r < s_rows.num_rows; ++r) {
      const double* xs = s_rows.feats.Row(r).data() + y_off;
      const double y = s_rows.feats(r, 0);
      const int64_t* keys = s_rows.KeysOf(r);
      // Per fact tuple: only the S-diagonal block and per-rid masses.
      la::AddOuter(1.0, xs, ds_, xs, ds_, &acc.gram, 0, 0);
      la::Axpy(y, xs, acc.cvec.data(), ds_);
      const int64_t base0 = slot_spans_[static_cast<size_t>(worker)].begin;
      for (size_t i = 0; i < q_; ++i) {
        const auto rid = static_cast<size_t>(keys[rel_->FkKeyIndex(i)]);
        // Table-0 per-rid masses are span-relative; i>=1 keep full rids.
        const size_t arid =
            i == 0 ? rid - static_cast<size_t>(base0) : rid;
        la::Axpy(1.0, xs, acc.vsum[i].Row(arid).data(), ds_);
        acc.count[i][arid] += 1.0;
        acc.ysum[i][arid] += y;
        CountAdds(2);
        // Attr-attr cross blocks (multi-way joins only) have no
        // single-table factorization; accumulate them per fact tuple like
        // F-GMM's covariance cross blocks.
        if (i + 1 < q_) {
          const auto xr_i =
              (*views_)[i].FeaturesOf(static_cast<int64_t>(rid));
          for (size_t j = i + 1; j < q_; ++j) {
            const auto rid_j = keys[rel_->FkKeyIndex(j)];
            const auto xr_j = (*views_)[j].FeaturesOf(rid_j);
            la::AddOuter(1.0, xr_i.data(), xr_i.size(), xr_j.data(),
                         xr_j.size(), &acc.gram, attr_offset_[i],
                         attr_offset_[j]);
          }
        }
      }
      acc.yy += y * y;
      CountMults(1);
      CountAdds(1);
    }
  }

  void MergeWorker(int, int worker) override {
    Acc& acc = acc_[static_cast<size_t>(worker)];
    gram_.Add(acc.gram);
    for (size_t j = 0; j < da_; ++j) cvec_[j] += acc.cvec[j];
    yy_ += acc.yy;
    if (factorized_) {
      // Table 0 is span-scoped per slot: offset-add into the full-domain
      // merged masses at the slot's span base. Tables i>=1 are full-domain.
      const auto off0 =
          static_cast<size_t>(slot_spans_[static_cast<size_t>(worker)].begin);
      for (size_t i = 0; i < q_; ++i) {
        const size_t off = i == 0 ? off0 : 0;
        for (size_t r = 0; r < static_cast<size_t>(acc.vsum[i].rows()); ++r) {
          const double* src = acc.vsum[i].Row(r).data();
          double* dst = vsum_[i].Row(r + off).data();
          for (size_t j = 0; j < ds_; ++j) dst[j] += src[j];
        }
        for (size_t r = 0; r < acc.count[i].size(); ++r) {
          count_[i][r + off] += acc.count[i][r];
          ysum_[i][r + off] += acc.ysum[i][r];
        }
      }
    }
  }

  void VisitSlotState(
      int, int slot,
      const std::function<void(double*, size_t)>& visit) override {
    // Shard-plane wire seam: one slot's Gram/cofactor state (and, on the
    // factorized path, its deferred per-rid masses).
    Acc& acc = acc_[static_cast<size_t>(slot)];
    visit(acc.gram.data(), acc.gram.rows() * acc.gram.cols());
    visit(acc.cvec.data(), acc.cvec.size());
    visit(&acc.yy, 1);
    if (factorized_) {
      for (size_t i = 0; i < q_; ++i) {
        visit(acc.vsum[i].data(), acc.vsum[i].rows() * acc.vsum[i].cols());
        visit(acc.count[i].data(), acc.count[i].size());
        visit(acc.ysum[i].data(), acc.ysum[i].size());
      }
    }
  }

  Status EndPass(const PipelineContext& ctx, int, int) override {
    if (factorized_) {
      // Deferred blocks: one rank-1 update per attribute tuple instead of
      // per fact tuple (the I/O and FLOP saving of the factorization).
      for (size_t i = 0; i < q_; ++i) {
        const Matrix& feats = (*ctx.views)[i].feats();
        const size_t dri = feats.cols();
        const size_t off = attr_offset_[i];
        for (size_t rid = 0; rid < feats.rows(); ++rid) {
          const double cnt = count_[i][rid];
          if (cnt == 0.0) continue;
          const double* xr = feats.Row(rid).data();
          // S x Ri cross block from the per-rid S-slice sums.
          la::AddOuter(1.0, vsum_[i].Row(rid).data(), ds_, xr, dri, &gram_,
                       0, off);
          // Ri-diagonal block, weighted by the match count.
          la::AddOuter(cnt, xr, dri, xr, dri, &gram_, off, off);
          // Ri slice of the cofactor vector from the per-rid target mass.
          la::Axpy(ysum_[i][rid], xr, cvec_.data() + off, dri);
          if (opt_.intercept) {
            for (size_t j = 0; j < dri; ++j) {
              gram_(off + j, da_ - 1) += cnt * xr[j];
            }
            CountMults(dri);
            CountAdds(dri);
          }
        }
      }
      if (opt_.intercept) {
        // Intercept column, S part and total count, recovered from the
        // table-0 per-rid masses (no extra per-fact-tuple work).
        for (size_t rid = 0; rid < count_[0].size(); ++rid) {
          const double* vs = vsum_[0].Row(rid).data();
          for (size_t j = 0; j < ds_; ++j) gram_(j, da_ - 1) += vs[j];
          gram_(da_ - 1, da_ - 1) += count_[0][rid];
          cvec_[da_ - 1] += ysum_[0][rid];
          CountAdds(ds_ + 2);
        }
      }
      vsum_.clear();
      count_.clear();
      ysum_.clear();
    }
    // The Gram matrix is symmetric; cross blocks were accumulated
    // one-sided (upper), so mirror once per run — exact, like F-GMM's
    // covariance mirroring.
    for (size_t r = 0; r < da_; ++r) {
      for (size_t c = r + 1; c < da_; ++c) gram_(c, r) = gram_(r, c);
    }
    return Status::OK();
  }

  Result<bool> EndIteration(const PipelineContext& ctx, int) override {
    // The closed-form Cholesky solve, reported as its own phase next to
    // the "gram" pass time.
    core::PhaseScope phase(ctx.report, "solve");
    Matrix a = gram_;
    for (size_t j = 0; j < d_; ++j) a(j, j) += opt_.l2;  // bias unpenalized
    la::Cholesky chol;
    FML_RETURN_IF_ERROR(chol.FactorWithJitter(a));
    std::vector<double> w_full(da_);
    chol.Solve(cvec_.data(), w_full.data());
    model_.w.assign(w_full.begin(), w_full.begin() + static_cast<long>(d_));
    model_.bias = opt_.intercept ? w_full[da_ - 1] : 0.0;
    // SSE = w^T G w - 2 w^T c + sum(y^2), no further data pass needed.
    const double wgw = la::QuadForm(gram_, w_full.data(), da_);
    const double wc = la::Dot(w_full.data(), cvec_.data(), da_);
    sse_ = wgw - 2.0 * wc + yy_;
    CountMults(1);
    CountSubs(2);
    return true;
  }

  double Objective() const override {
    return sse_ / (2.0 * static_cast<double>(n_));  // half-MSE, as NN
  }

  void VisitIterationState(
      const std::function<void(double*, size_t)>& visit) override {
    visit(model_.w.data(), model_.w.size());
    visit(&model_.bias, 1);
    visit(&sse_, 1);
  }

  LinregModel&& TakeModel() && { return std::move(model_); }

 private:
  struct Acc {
    Matrix gram;                // da x da (upper cross blocks only)
    std::vector<double> cvec;   // da
    double yy = 0.0;
    std::vector<Matrix> vsum;               // [i]: nRi x ds S-slice sums
    std::vector<std::vector<double>> count; // [i][rid] match count
    std::vector<std::vector<double>> ysum;  // [i][rid] target mass
  };

  LinregOptions opt_;
  const join::NormalizedRelations* rel_ = nullptr;
  const std::vector<join::AttributeTableView>* views_ = nullptr;
  bool factorized_ = false;
  size_t d_ = 0, ds_ = 0, q_ = 0, da_ = 0;
  int64_t n_ = 0;
  std::vector<size_t> attr_offset_;

  Matrix gram_;
  std::vector<double> cvec_;
  double yy_ = 0.0;
  std::vector<Matrix> vsum_;
  std::vector<std::vector<double>> count_;
  std::vector<std::vector<double>> ysum_;
  std::vector<Acc> acc_;
  std::vector<exec::Range> slot_spans_;  // table-0 rid span per slot

  LinregModel model_;
  double sse_ = 0.0;
};

}  // namespace

double LinregModel::Predict(const double* x) const {
  return la::Dot(x, w.data(), w.size()) + bias;
}

double LinregModel::MaxAbsDiff(const LinregModel& a, const LinregModel& b) {
  FML_CHECK_EQ(a.w.size(), b.w.size());
  double m = std::fabs(a.bias - b.bias);
  for (size_t j = 0; j < a.w.size(); ++j) {
    m = std::max(m, std::fabs(a.w[j] - b.w[j]));
  }
  return m;
}

Result<LinregModel> TrainLinreg(const join::NormalizedRelations& rel,
                                const LinregOptions& options,
                                core::Algorithm algorithm,
                                storage::BufferPool* pool,
                                core::TrainReport* report) {
  LinregProgram program(options);
  core::pipeline::StrategyOptions sopt =
      core::pipeline::LiftStrategyOptions(options);
  if (sopt.shard_backend == "process") {
    sopt.shard_job_family = "linreg";
    sopt.shard_job_blob = EncodeShardJob(options);
  }
  FML_RETURN_IF_ERROR(
      core::pipeline::RunTraining(rel, algorithm, sopt, &program, pool,
                                  report));
  return std::move(program).TakeModel();
}

std::string EncodeShardJob(const LinregOptions& options) {
  net::ByteWriter w;
  w.F64(options.l2);
  w.U8(options.intercept ? 1 : 0);
  return w.Take();
}

Result<LinregOptions> DecodeShardJob(const std::string& blob) {
  LinregOptions options;
  net::ByteReader r(blob);
  uint8_t intercept = 0;
  FML_RETURN_IF_ERROR(r.F64(&options.l2));
  FML_RETURN_IF_ERROR(r.U8(&intercept));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("linreg shard job: trailing bytes");
  }
  options.intercept = intercept != 0;
  return options;
}

std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const LinregOptions& options) {
  return std::make_unique<LinregProgram>(options);
}

}  // namespace factorml::linreg

#ifndef FACTORML_LINREG_LINREG_H_
#define FACTORML_LINREG_LINREG_H_

#include <cstdint>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/algorithm.h"
#include "core/report.h"
#include "join/normalized_relations.h"
#include "la/kernels.h"
#include "storage/buffer_pool.h"

namespace factorml::core::pipeline {
class ModelProgram;
}

namespace factorml::linreg {

/// Options for closed-form ridge linear regression — the classic
/// factorized-learning baseline. One pass over the join accumulates the
/// Gram matrix G = X^T X and the cofactor vector c = X^T y; the weights
/// solve (G + l2*I) w = c. All three strategies accumulate the identical
/// statistics (up to floating-point reordering), so their weights agree —
/// the same exactness property the paper proves for GMM/NN.
struct LinregOptions {
  double l2 = 1e-3;           // ridge penalty (never applied to the bias)
  bool intercept = true;      // augment X with a constant-1 column
  size_t batch_rows = 8192;   // rows per streamed batch
  std::string temp_dir = ".";  // where the M strategy materializes T
  /// Worker threads for the exec/ morsel runtime; 0 = DefaultThreads(),
  /// 1 = the exact serial path.
  int threads = 0;
  /// Full-pass scheduler knobs (strategy plane, see StrategyOptions):
  /// morsel_rows > 0 switches the pass to fixed deterministically numbered
  /// chunks with a chunk-ordered reduction — results then depend on
  /// morsel_rows but not on threads or stealing; steal lets idle workers
  /// take chunks from busy ones (implies chunking).
  int64_t morsel_rows = 0;
  bool steal = false;
  /// Asynchronous double-buffered page prefetch (strategy plane, see
  /// StrategyOptions): overlap the next morsel's page reads with compute.
  /// Residency-only — results are bit-identical either way; prefetch_depth
  /// is the number of batches read ahead per worker.
  bool prefetch = false;
  int prefetch_depth = 2;
  /// Rid-range shards of the full-pass plane (strategy plane, see
  /// StrategyOptions): shards > 1 scans each contiguous chunk span
  /// separately and merges serialized ShardDeltas in shard-id order —
  /// bit-identical to shards = 1 at the same resolved morsel size
  /// (implies chunking, like steal).
  int shards = 1;
  /// Compute-kernel backend (--kernels): kScalar (default) keeps the
  /// seed's bit-identical loops and row-at-a-time decode; kSimd routes
  /// the la/ primitives through the runtime-dispatched vector backend
  /// (AVX2/FMA when available) and the full-pass dense drivers through
  /// the batched column-strip decode. Op counts and page I/O are
  /// identical either way; objectives and params agree to floating-point
  /// reassociation tolerance.
  la::KernelMode kernels = la::KernelMode::kScalar;
  /// Shard execution backend (--shard-backend, see StrategyOptions):
  /// "inproc" (default) keeps the byte-identical in-process driver;
  /// "process" farms shard scans out to factormld worker processes over
  /// length-prefixed socket frames — bit-identical results either way.
  std::string shard_backend = "inproc";
  /// Process-backend liveness deadline per worker, in milliseconds.
  int64_t shard_timeout_ms = 30000;
  /// Process-backend socket family: "unix" (default) or "tcp" loopback.
  std::string shard_transport = "unix";
  /// Explicit factormld binary path; empty = resolve automatically.
  std::string shard_worker_path;
  /// ShardDelta wire encoding (--delta-encoding): "dense" (v1 frames) or
  /// "sparse" (v2 zero-run-length frames, decoded bit-identically).
  std::string delta_encoding = "dense";
  /// Non-empty (--checkpoint-dir): CRC-verified checkpoint/restore of the
  /// iteration state; a resumed run is bit-identical to an uninterrupted
  /// one. Empty = checkpointing off.
  std::string checkpoint_dir;
  /// Iterations between checkpoint writes (--checkpoint-every); 0 = every
  /// iteration when checkpoint_dir is set.
  int64_t checkpoint_every = 0;
};

/// A trained linear model over the joined feature vector
/// [XS | XR1 | ... | XRq].
struct LinregModel {
  std::vector<double> w;  // d coefficients in joined-column order
  double bias = 0.0;      // intercept (0 when disabled)

  size_t dims() const { return w.size(); }
  double Predict(const double* x) const;

  /// Max absolute coefficient difference (bias included); used by the
  /// M==S==F parity tests.
  static double MaxAbsDiff(const LinregModel& a, const LinregModel& b);
};

/// Trains with the chosen execution strategy via core/pipeline. The
/// relations must carry a target column.
Result<LinregModel> TrainLinreg(const join::NormalizedRelations& rel,
                                const LinregOptions& options,
                                core::Algorithm algorithm,
                                storage::BufferPool* pool,
                                core::TrainReport* report);

/// Process-shard-backend seam (core/pipeline/shard_rpc.h): serialize /
/// decode the math-relevant LinregOptions for the JOB frame's family blob
/// and rebuild the identical ModelProgram on a factormld worker.
std::string EncodeShardJob(const LinregOptions& options);
Result<LinregOptions> DecodeShardJob(const std::string& blob);
std::unique_ptr<core::pipeline::ModelProgram> MakeShardProgram(
    const LinregOptions& options);

}  // namespace factorml::linreg

#endif  // FACTORML_LINREG_LINREG_H_

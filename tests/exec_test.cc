#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/opcount.h"
#include "data/synthetic.h"
#include "exec/morsel_queue.h"
#include "exec/parallel_for.h"
#include "exec/shard_plan.h"
#include "exec/thread_pool.h"
#include "exec/worker_pools.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/table.h"
#include "test_util.h"

namespace factorml::exec {
namespace {

using factorml::testing::TempDir;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h = 0;
  ThreadPool::Instance().Run(8, [&](int w) { hits[w]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  // Worker 0 must execute on the calling thread (the serial path).
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  ThreadPool::Instance().Run(1, [&](int) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, MergesWorkerOpCountersIntoCaller) {
  const OpCounters before = GlobalOps();
  ThreadPool::Instance().Run(4, [&](int w) {
    CountMults(static_cast<uint64_t>(w) + 1);  // 1 + 2 + 3 + 4 = 10
  });
  const OpCounters delta = GlobalOps() - before;
  EXPECT_EQ(delta.mults, 10u);
}

TEST(ThreadPoolTest, RepeatedRegionsKeepMerging) {
  const OpCounters before = GlobalOps();
  for (int round = 0; round < 3; ++round) {
    ThreadPool::Instance().Run(3, [&](int) { CountAdds(5); });
  }
  EXPECT_EQ((GlobalOps() - before).adds, 45u);
}

TEST(ThreadPoolTest, DefaultThreadsRoundTrip) {
  const int saved = DefaultThreads();
  SetDefaultThreads(7);
  EXPECT_EQ(DefaultThreads(), 7);
  EXPECT_EQ(EffectiveThreads(0), 7);
  EXPECT_EQ(EffectiveThreads(3), 3);
  SetDefaultThreads(0);  // clamped
  EXPECT_EQ(DefaultThreads(), 1);
  SetDefaultThreads(saved);
}

// ---------------------------------------------------------- Partitioning

TEST(PartitionTest, RowsCoverTotalWithoutOverlap) {
  for (const int64_t total : {1L, 7L, 100L, 4096L}) {
    for (const int parts : {1, 2, 3, 8, 200}) {
      const auto ranges = PartitionRows(total, parts);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(static_cast<int>(ranges.size()), parts);
      int64_t expect_begin = 0;
      for (const auto& r : ranges) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_GT(r.end, r.begin);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, total);
    }
  }
}

TEST(PartitionTest, RowsRespectAlignment) {
  // Interior boundaries on multiples of the page row count: no two
  // ranges share a storage page.
  const auto ranges = PartitionRows(1000, 4, /*align=*/64);
  int64_t expect_begin = 0;
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].begin, expect_begin);
    if (i + 1 < ranges.size()) {
      EXPECT_EQ(ranges[i].end % 64, 0);
    }
    expect_begin = ranges[i].end;
  }
  EXPECT_EQ(expect_begin, 1000);
}

TEST(PartitionTest, EmptyTotalYieldsNoRanges) {
  EXPECT_TRUE(PartitionRows(0, 4).empty());
  EXPECT_TRUE(PartitionWeighted(nullptr, 0, 4).empty());
}

TEST(PartitionTest, WeightedNeverSplitsAPositionAndBalances) {
  // One heavy run at the front (the skew of a clustered FK1 column).
  std::vector<int64_t> weights = {1000, 1, 1, 1, 1, 1, 1, 1};
  const auto ranges =
      PartitionWeighted(weights.data(), static_cast<int64_t>(weights.size()), 4);
  ASSERT_FALSE(ranges.empty());
  int64_t expect_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_GT(r.end, r.begin);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, static_cast<int64_t>(weights.size()));
  // The heavy position must sit alone in the first range.
  EXPECT_EQ(ranges[0].end, 1);
}

TEST(PartitionTest, WeightedBalancesUniformWeights) {
  std::vector<int64_t> weights(100, 5);
  const auto ranges = PartitionWeighted(weights.data(), 100, 4);
  ASSERT_EQ(ranges.size(), 4u);
  for (const auto& r : ranges) {
    EXPECT_GE(r.size(), 20);
    EXPECT_LE(r.size(), 30);
  }
}

TEST(PartitionTest, WeightedSinglePosition) {
  // One-run table: every worker count collapses to one whole-run range.
  const int64_t weights[] = {5000};
  for (const int parts : {1, 2, 8}) {
    const auto ranges = PartitionWeighted(weights, 1, parts);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].begin, 0);
    EXPECT_EQ(ranges[0].end, 1);
  }
}

TEST(PartitionTest, WeightedFewerPositionsThanParts) {
  // total < threads: at most n non-empty ranges, never an empty one.
  std::vector<int64_t> weights = {3, 9, 1};
  const auto ranges = PartitionWeighted(weights.data(), 3, 8);
  ASSERT_LE(ranges.size(), 3u);
  int64_t expect_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_GT(r.end, r.begin);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, 3);
}

TEST(PartitionTest, WeightedAllZeroWeights) {
  // Rids with no matching fact rows: coverage must survive a zero total.
  std::vector<int64_t> weights(6, 0);
  const auto ranges = PartitionWeighted(weights.data(), 6, 3);
  ASSERT_FALSE(ranges.empty());
  int64_t expect_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.begin, expect_begin);
    EXPECT_GT(r.end, r.begin);
    expect_begin = r.end;
  }
  EXPECT_EQ(expect_begin, 6);
}

TEST(PartitionTest, RowsAlignmentLargerThanTotal) {
  // align > total: a single range covering everything, not an empty set.
  const auto ranges = PartitionRows(10, 3, /*align=*/64);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0);
  EXPECT_EQ(ranges[0].end, 10);
}

// ---------------------------------------------------------- Chunk plans

TEST(SplitChunksTest, RowChunksCoverAndAlign) {
  // morsel 100 aligned to 64 -> 128-row chunks; boundaries on multiples.
  const auto chunks = SplitRowChunks(1000, 100, /*align=*/64);
  ASSERT_EQ(chunks.size(), 8u);
  int64_t expect_begin = 0;
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(chunks[c].begin, expect_begin);
    if (c + 1 < chunks.size()) EXPECT_EQ(chunks[c].end % 64, 0);
    expect_begin = chunks[c].end;
  }
  EXPECT_EQ(expect_begin, 1000);
}

TEST(SplitChunksTest, RowChunksIndependentOfWorkerCount) {
  // The chunk plan takes no worker count at all — this pins the API shape
  // of the determinism contract: only (total, morsel, align) matter.
  const auto a = SplitRowChunks(4096, 512, 64);
  ASSERT_EQ(a.size(), 8u);
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].begin, static_cast<int64_t>(c) * 512);
  }
}

TEST(SplitChunksTest, RowChunksDegenerateInputs) {
  EXPECT_TRUE(SplitRowChunks(0, 128).empty());
  // morsel > total and align > total both give one whole-range chunk.
  for (const int64_t align : {1L, 4096L}) {
    const auto chunks = SplitRowChunks(10, 4096, align);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].begin, 0);
    EXPECT_EQ(chunks[0].end, 10);
  }
  // morsel < 1 is clamped to one row per chunk.
  EXPECT_EQ(SplitRowChunks(5, 0).size(), 5u);
}

TEST(SplitChunksTest, WeightedChunksRespectRunAtomicity) {
  // A run longer than the morsel target forms its own chunk; neighbors
  // pack up to the target.
  std::vector<int64_t> weights = {10, 10, 1000, 10, 10, 10};
  const auto chunks = SplitWeightedChunks(weights.data(), 6, 50);
  int64_t expect_begin = 0;
  for (const auto& c : chunks) {
    EXPECT_EQ(c.begin, expect_begin);
    EXPECT_GT(c.end, c.begin);
    expect_begin = c.end;
  }
  EXPECT_EQ(expect_begin, 6);
  // The giant run (position 2) sits ALONE in its chunk: the pending light
  // runs are flushed first, the giant closes its own chunk immediately.
  bool giant_alone = false;
  for (const auto& c : chunks) {
    if (c.begin <= 2 && 2 < c.end) giant_alone = (c.size() == 1);
  }
  EXPECT_TRUE(giant_alone);
}

TEST(SplitChunksTest, WeightedChunksSingleRunAndZeroTails) {
  // One-run table -> one chunk.
  const int64_t one[] = {100000};
  ASSERT_EQ(SplitWeightedChunks(one, 1, 64).size(), 1u);
  // Trailing zero-weight positions join a final short chunk instead of
  // being dropped or forming empty ranges.
  std::vector<int64_t> weights = {64, 64, 0, 0, 0};
  const auto chunks = SplitWeightedChunks(weights.data(), 5, 64);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[2].begin, 2);
  EXPECT_EQ(chunks[2].end, 5);
  EXPECT_TRUE(SplitWeightedChunks(nullptr, 0, 64).empty());
}

// ------------------------------------------------------------ MorselQueue

TEST(MorselQueueTest, OwnerPopsAscendingWithoutStealing) {
  MorselQueue queue(10, 2, /*steal=*/false);
  for (int64_t c = 0; c < 5; ++c) EXPECT_EQ(queue.Next(0), c);
  EXPECT_EQ(queue.Next(0), -1);  // steal off: never crosses blocks
  for (int64_t c = 5; c < 10; ++c) EXPECT_EQ(queue.Next(1), c);
  EXPECT_EQ(queue.Next(1), -1);
  EXPECT_EQ(queue.steals(), 0u);
}

TEST(MorselQueueTest, ThiefRobsFromTheBack) {
  MorselQueue queue(10, 2, /*steal=*/true);
  for (int64_t c = 0; c < 5; ++c) EXPECT_EQ(queue.Next(0), c);
  // Own block dry: worker 0 steals the victim's block back-to-front.
  for (int64_t c = 9; c >= 5; --c) EXPECT_EQ(queue.Next(0), c);
  EXPECT_EQ(queue.Next(0), -1);
  EXPECT_EQ(queue.Next(1), -1);
  EXPECT_EQ(queue.steals(), 5u);
}

TEST(MorselQueueTest, FewerChunksThanWorkers) {
  MorselQueue queue(2, 8, /*steal=*/true);
  // Workers 2..7 own empty blocks and must steal or bail out cleanly.
  EXPECT_EQ(queue.Next(5), 0);
  EXPECT_EQ(queue.Next(6), 1);
  EXPECT_EQ(queue.Next(0), -1);
}

TEST(RunMorselsTest, EveryChunkExactlyOnceUnderContention) {
  for (const bool steal : {false, true}) {
    const auto chunks = SplitRowChunks(64 * 97, 97);
    ASSERT_EQ(chunks.size(), 64u);
    std::vector<std::atomic<int>> hits(chunks.size());
    for (auto& h : hits) h = 0;
    const MorselStats stats =
        RunMorsels(chunks, /*threads=*/8, steal,
                   [&](Range r, int64_t c, int /*worker*/) {
                     EXPECT_EQ(r.begin, c * 97);
                     hits[static_cast<size_t>(c)]++;
                   });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    EXPECT_EQ(stats.busy_seconds.size(), 8u);
    if (!steal) EXPECT_EQ(stats.steals, 0u);
  }
}

TEST(RunMorselsTest, SerialDrainIsAscendingAndInline) {
  const auto caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  RunMorsels(SplitRowChunks(100, 10), /*threads=*/1, /*steal=*/true,
             [&](Range, int64_t c, int worker) {
               EXPECT_EQ(worker, 0);
               EXPECT_EQ(std::this_thread::get_id(), caller);
               order.push_back(c);
             });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t c = 0; c < 10; ++c) EXPECT_EQ(order[static_cast<size_t>(c)], c);
}

TEST(RunMorselsTest, NestedRegionRunsInlineWithoutDeadlock) {
  // Regions do not nest: a RunMorsels issued from inside a pool worker
  // must drain serially on that worker.
  std::atomic<int> total{0};
  ThreadPool::Instance().Run(4, [&](int) {
    RunMorsels(SplitRowChunks(20, 5), /*threads=*/4, /*steal=*/true,
               [&](Range, int64_t, int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * 4);
}

TEST(RunMorselsTest, MergesWorkerOpCountersIntoCaller) {
  const OpCounters before = GlobalOps();
  RunMorsels(SplitRowChunks(12, 1), /*threads=*/4, /*steal=*/true,
             [&](Range, int64_t, int) { CountMults(3); });
  EXPECT_EQ((GlobalOps() - before).mults, 36u);
}

// -------------------------------------------------------- ParallelReduce

TEST(ParallelReduceTest, MergesInWorkerOrder) {
  const auto ranges = PartitionRows(8, 8);
  ASSERT_EQ(ranges.size(), 8u);
  std::string merged;
  ParallelReduce<std::string>(
      ranges,
      [](Range r, int, std::string* acc) {
        *acc = std::to_string(r.begin);
      },
      [&](std::string&& acc, int) { merged += acc; });
  EXPECT_EQ(merged, "01234567");
}

TEST(ParallelReduceTest, SumMatchesSerial) {
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 1.0);
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);

  double parallel = 0.0;
  ParallelReduce<double>(
      PartitionRows(static_cast<int64_t>(values.size()), 4),
      [&](Range r, int, double* acc) {
        *acc = 0.0;
        for (int64_t i = r.begin; i < r.end; ++i) {
          *acc += values[static_cast<size_t>(i)];
        }
      },
      [&](double&& acc, int) { parallel += acc; });
  EXPECT_DOUBLE_EQ(parallel, serial);
}

TEST(StatusPlumbingTest, FirstErrorPicksWorkerOrder) {
  std::vector<Status> statuses(3);
  EXPECT_TRUE(FirstError(statuses).ok());
  statuses[2] = Status::Internal("late");
  statuses[1] = Status::IoError("early");
  EXPECT_EQ(FirstError(statuses).code(), StatusCode::kIoError);
}

// ----------------------------------------- Concurrent BufferPool access

TEST(BufferPoolConcurrencyTest, ParallelGetPageStress) {
  TempDir dir;
  storage::BufferPool setup_pool(64);
  // A table spanning a few dozen pages with recognizable row contents.
  storage::Schema schema{1, 8};
  auto table =
      std::move(storage::Table::Create(dir.str() + "/stress.fml", schema))
          .value();
  const int64_t rows = 20000;
  std::vector<double> feats(8);
  for (int64_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < 8; ++j) feats[j] = static_cast<double>(i * 8) + j;
    FML_CHECK_OK(table.Append(&i, feats.data()));
  }
  FML_CHECK_OK(table.Finish());
  auto reopened = std::move(storage::Table::Open(table.path())).value();

  // Capacity covers the whole file, so frames are never evicted and the
  // returned pointers stay valid for the duration (the documented
  // contract for concurrent sharing).
  storage::BufferPool shared(reopened.num_data_pages() + 8);
  const storage::IoStats io_before = storage::GlobalIo();
  constexpr int kWorkers = 8;
  std::vector<int64_t> errors(kWorkers, 0);
  ThreadPool::Instance().Run(kWorkers, [&](int w) {
    storage::RowBatch batch;
    // Every worker scans the whole table with a different batch size and
    // hence a different GetPage interleaving.
    storage::TableScanner scan(&reopened, &shared,
                               257 + static_cast<size_t>(w) * 131);
    int64_t seen = 0;
    while (scan.Next(&batch)) {
      for (size_t r = 0; r < batch.num_rows; ++r) {
        const int64_t row = batch.start_row + static_cast<int64_t>(r);
        if (batch.KeysOf(r)[0] != row ||
            batch.feats(r, 3) != static_cast<double>(row * 8) + 3) {
          errors[static_cast<size_t>(w)]++;
        }
      }
      seen += static_cast<int64_t>(batch.num_rows);
    }
    if (!scan.status().ok() || seen != rows) {
      errors[static_cast<size_t>(w)]++;
    }
  });
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(errors[static_cast<size_t>(w)], 0) << "worker " << w;
  }
  // Every page was physically read exactly once across all workers: the
  // latch is held across the miss's disk read, so two concurrent misses
  // on the same page can never both reach the file. Worker I/O deltas are
  // merged into this thread by Run, so the snapshot delta sees them all.
  EXPECT_EQ(shared.cached_pages(), reopened.num_data_pages());
  EXPECT_EQ((storage::GlobalIo() - io_before).pages_read,
            reopened.num_data_pages());
  EXPECT_EQ((storage::GlobalIo() - io_before).pool_misses,
            reopened.num_data_pages());
}

TEST(WorkerPoolsTest, WorkerZeroSharesCallerPool) {
  storage::BufferPool shared(32);
  WorkerPools pools(&shared, 4);
  EXPECT_EQ(pools.Get(0), &shared);
  EXPECT_NE(pools.Get(1), &shared);
  EXPECT_NE(pools.Get(1), pools.Get(2));
  EXPECT_EQ(pools.Get(1)->capacity_pages(), shared.capacity_pages());
}

// Thread-local counters: a worker's I/O lands on its own thread first and
// reaches the caller only through the region's ordered merge.
TEST(ThreadLocalCountersTest, IoMergedAfterRegion) {
  TempDir dir;
  storage::Schema schema{1, 2};
  auto table =
      std::move(storage::Table::Create(dir.str() + "/io.fml", schema)).value();
  std::vector<double> feats = {1.0, 2.0};
  for (int64_t i = 0; i < 2000; ++i) FML_CHECK_OK(table.Append(&i, feats.data()));
  FML_CHECK_OK(table.Finish());
  auto reopened = std::move(storage::Table::Open(table.path())).value();

  const storage::IoStats before = storage::GlobalIo();
  storage::BufferPool shared(256);
  WorkerPools pools(&shared, 4);
  ThreadPool::Instance().Run(4, [&](int w) {
    storage::RowBatch batch;
    storage::TableScanner scan(&reopened, pools.Get(w), 512);
    while (scan.Next(&batch)) {
    }
    FML_CHECK(scan.status().ok());
  });
  const storage::IoStats delta = storage::GlobalIo() - before;
  // All four workers read every data page through their own pool; the
  // caller's snapshot delta must see all of it.
  EXPECT_EQ(delta.pages_read, 4 * reopened.num_data_pages());
}

// ------------------------------------------------------------- I/O crew

TEST(IoCrewTest, SubmitIoRunsDetachedTasks) {
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    ThreadPool::Instance().SubmitIo([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return done.load() == kTasks; }));
}

TEST(IoCrewTest, SubmitIoProgressesWhileComputeRegionIsSaturated) {
  // The crew is disjoint from the compute workers: tasks submitted from
  // inside a busy parallel region must still complete while every compute
  // worker is occupied — the property async prefetch depends on.
  std::atomic<bool> crew_ran{false};
  ThreadPool::Instance().Run(4, [&](int w) {
    if (w == 0) {
      ThreadPool::Instance().SubmitIo([&] { crew_ran.store(true); });
    }
    // Every compute worker spins until the crew task lands (bounded, so a
    // starved crew stalls the region instead of hanging it forever).
    for (int spin = 0; spin < 200000 && !crew_ran.load(); ++spin) {
      std::this_thread::yield();
    }
  });
  // The interesting observation is the spin loop above exiting early on a
  // live crew; the assertion itself only needs the task to land
  // eventually, so give a loaded CI machine a bounded grace period.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!crew_ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(crew_ran.load());
}

// ------------------------------------------------------------ ShardPlan

TEST(ShardPlanTest, SpansCoverChunksContiguouslyAndBalance) {
  const auto chunks = SplitRowChunks(1000, 100);  // 10 equal chunks
  const ShardPlan plan = PlanShards(chunks, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  int64_t next = 0;
  for (int k = 0; k < plan.num_shards(); ++k) {
    const Range span = plan.ChunkSpan(k);
    EXPECT_EQ(span.begin, next);
    EXPECT_FALSE(span.empty());
    next = span.end;
  }
  EXPECT_EQ(next, static_cast<int64_t>(chunks.size()));
  // Near-equal row weight: 10 equal chunks over 4 shards is 3/3/2/2.
  for (int k = 0; k < plan.num_shards(); ++k) {
    EXPECT_LE(plan.ChunkSpan(k).size(), 3);
    EXPECT_GE(plan.ChunkSpan(k).size(), 2);
  }
}

TEST(ShardPlanTest, MoreShardsThanChunksDropsToOneChunkEach) {
  // "shards > rows": a tiny dataset yields fewer chunks than requested
  // shards; the plan caps at one chunk per shard, never an empty span.
  const auto chunks = SplitRowChunks(90, 40);  // 3 chunks
  const ShardPlan plan = PlanShards(chunks, 8);
  ASSERT_EQ(plan.num_shards(), 3);
  for (int k = 0; k < 3; ++k) EXPECT_EQ(plan.ChunkSpan(k).size(), 1);
}

TEST(ShardPlanTest, WeightedChunksStayAtomicAcrossShards) {
  // S/F plans: chunks are whole-position (whole-FK1-run) groups built by
  // SplitWeightedChunks; a giant run is already isolated in its own chunk
  // and sharding must keep every chunk — giant included — in exactly one
  // shard, with the spans covering the chunk ids contiguously.
  const int64_t weights[] = {4, 3, 900, 2, 5};
  const auto chunks = SplitWeightedChunks(weights, 5, 10);
  ASSERT_EQ(chunks.size(), 3u);  // {light, giant-alone, light}
  const ShardPlan plan = PlanShards(chunks, 3);
  ASSERT_EQ(plan.num_shards(), 3);
  int64_t next = 0;
  for (int k = 0; k < plan.num_shards(); ++k) {
    EXPECT_EQ(plan.ChunkSpan(k).begin, next);
    EXPECT_EQ(plan.ChunkSpan(k).size(), 1);
    next = plan.ChunkSpan(k).end;
  }
  EXPECT_EQ(next, 3);
}

TEST(ShardPlanTest, EmptyChunkListAndMaxChunkCap) {
  EXPECT_EQ(PlanShards({}, 4).num_shards(), 0);
  // shards x morsel interaction at the kMaxMorselChunks cap: a tiny
  // morsel over many rows caps at kMaxMorselChunks chunks, and the shard
  // plan still partitions the capped chunk-id space exactly.
  const auto chunks = SplitRowChunks(10 * kMaxMorselChunks, 1);
  ASSERT_EQ(static_cast<int64_t>(chunks.size()), kMaxMorselChunks);
  const ShardPlan plan = PlanShards(chunks, 4);
  ASSERT_EQ(plan.num_shards(), 4);
  EXPECT_EQ(plan.ChunkSpan(0).begin, 0);
  EXPECT_EQ(plan.ChunkSpan(3).end, kMaxMorselChunks);
}

// -------------------------------------------------------- RunMorselSpan

TEST(RunMorselSpanTest, SpanChunksKeepGlobalOwners) {
  // The shard plane's time-sharing rule: within a span, a chunk is
  // executed by the worker that owns it in the whole-plan split (steal
  // off), so per-worker visit order — and buffer-pool residency — is
  // invariant under sharding.
  const auto chunks = SplitRowChunks(12 * 8, 8);  // 12 chunks
  const auto owned = PartitionRows(12, 3);        // global split, 3 workers
  for (const Range span : {Range{0, 12}, Range{2, 7}, Range{5, 12}}) {
    std::vector<std::atomic<int>> worker_of(12);
    for (auto& w : worker_of) w = -1;
    RunMorselSpan(chunks, span, /*threads=*/3, /*steal=*/false,
                  [&](Range, int64_t c, int worker) {
                    worker_of[static_cast<size_t>(c)] = worker;
                  });
    for (int64_t c = 0; c < 12; ++c) {
      if (c < span.begin || c >= span.end) {
        EXPECT_EQ(worker_of[static_cast<size_t>(c)].load(), -1);
        continue;
      }
      int expect = -1;
      for (size_t w = 0; w < owned.size(); ++w) {
        if (c >= owned[w].begin && c < owned[w].end) {
          expect = static_cast<int>(w);
        }
      }
      EXPECT_EQ(worker_of[static_cast<size_t>(c)].load(), expect)
          << "chunk " << c << " span [" << span.begin << "," << span.end
          << ")";
    }
  }
}

TEST(RunMorselSpanTest, SequentialSpansCoverEveryChunkOnce) {
  for (const bool steal : {false, true}) {
    const auto chunks = SplitRowChunks(31 * 13, 13);
    const ShardPlan plan = PlanShards(chunks, 3);
    std::vector<std::atomic<int>> hits(chunks.size());
    for (auto& h : hits) h = 0;
    for (int k = 0; k < plan.num_shards(); ++k) {
      RunMorselSpan(chunks, plan.ChunkSpan(k), /*threads=*/4, steal,
                    [&](Range r, int64_t c, int) {
                      EXPECT_EQ(r.begin, chunks[static_cast<size_t>(c)].begin);
                      hits[static_cast<size_t>(c)]++;
                    });
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(RunMorselSpanTest, SerialDrainAscendingWithinSpanOnly) {
  std::vector<int64_t> order;
  RunMorselSpan(SplitRowChunks(100, 10), Range{3, 8}, /*threads=*/1,
                /*steal=*/true,
                [&](Range, int64_t c, int worker) {
                  EXPECT_EQ(worker, 0);
                  order.push_back(c);
                });
  ASSERT_EQ(order.size(), 5u);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<int64_t>(i) + 3);
  }
}

TEST(RunMorselSpanTest, OutOfRangeSpanClampsAndEmptySpanNoops) {
  const auto chunks = SplitRowChunks(40, 10);  // 4 chunks
  std::atomic<int> hits{0};
  RunMorselSpan(chunks, Range{2, 99}, /*threads=*/2, /*steal=*/true,
                [&](Range, int64_t, int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 2);  // chunks 2 and 3 only
  hits = 0;
  RunMorselSpan(chunks, Range{3, 3}, /*threads=*/2, /*steal=*/false,
                [&](Range, int64_t, int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);  // empty trailing span: clean no-op
}

}  // namespace
}  // namespace factorml::exec

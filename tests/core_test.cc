#include <string>

#include "core/factorml.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace factorml::core {
namespace {

using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir, bool target) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 400;
  spec.s_feats = 2;
  spec.attrs = {data::AttributeSpec{20, 3}};
  spec.with_target = target;
  spec.seed = 44;
  return spec;
}

TEST(CoreTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kMaterialized), "materialized");
  EXPECT_STREQ(AlgorithmName(Algorithm::kStreaming), "streaming");
  EXPECT_STREQ(AlgorithmName(Algorithm::kFactorized), "factorized");
}

TEST(CoreTest, TrainGmmDispatchesAllStrategies) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(data::GenerateSynthetic(Spec(dir.str(), false),
                                               &pool))
                 .value();
  gmm::GmmOptions opt;
  opt.num_components = 2;
  opt.max_iters = 2;
  opt.temp_dir = dir.str();

  TrainReport rm, rs, rf;
  auto m =
      std::move(TrainGmm(rel, opt, Algorithm::kMaterialized, &pool, &rm))
          .value();
  auto s =
      std::move(TrainGmm(rel, opt, Algorithm::kStreaming, &pool, &rs))
          .value();
  auto f =
      std::move(TrainGmm(rel, opt, Algorithm::kFactorized, &pool, &rf))
          .value();
  EXPECT_EQ(rm.algorithm, "M-GMM");
  EXPECT_EQ(rs.algorithm, "S-GMM");
  EXPECT_EQ(rf.algorithm, "F-GMM");
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(m, s), 1e-8);
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(m, f), 1e-6);
}

TEST(CoreTest, TrainNnDispatchesAllStrategies) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(data::GenerateSynthetic(Spec(dir.str(), true),
                                               &pool))
                 .value();
  nn::NnOptions opt;
  opt.hidden = {4};
  opt.epochs = 2;
  opt.temp_dir = dir.str();

  TrainReport rm, rf;
  auto m = std::move(TrainNn(rel, opt, Algorithm::kMaterialized, &pool, &rm))
               .value();
  auto f = std::move(TrainNn(rel, opt, Algorithm::kFactorized, &pool, &rf))
               .value();
  EXPECT_EQ(rm.algorithm, "M-NN");
  EXPECT_EQ(rf.algorithm, "F-NN");
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(CoreTest, ReportToStringMentionsAlgorithmAndCosts) {
  TrainReport r;
  r.algorithm = "F-GMM";
  r.wall_seconds = 1.5;
  r.iterations = 10;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("F-GMM"), std::string::npos);
  EXPECT_NE(s.find("iters=10"), std::string::npos);
  EXPECT_NE(s.find("pages_read"), std::string::npos);
}

TEST(CoreTest, NullReportIsAccepted) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(data::GenerateSynthetic(Spec(dir.str(), false),
                                               &pool))
                 .value();
  gmm::GmmOptions opt;
  opt.num_components = 2;
  opt.max_iters = 1;
  opt.temp_dir = dir.str();
  EXPECT_TRUE(TrainGmm(rel, opt, Algorithm::kFactorized, &pool, nullptr).ok());
}

}  // namespace
}  // namespace factorml::core

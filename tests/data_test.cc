#include <cmath>
#include <set>
#include <vector>

#include "data/real_shapes.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "join/attribute_view.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::data {
namespace {

using factorml::testing::TempDir;
using storage::BufferPool;

SyntheticSpec BaseSpec(const std::string& dir) {
  SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 500;
  spec.s_feats = 3;
  spec.attrs = {AttributeSpec{50, 4}};
  spec.seed = 7;
  return spec;
}

TEST(SyntheticTest, ShapesMatchSpec) {
  TempDir dir;
  BufferPool pool(256);
  auto rel = std::move(GenerateSynthetic(BaseSpec(dir.str()), &pool)).value();
  EXPECT_EQ(rel.s.num_rows(), 500);
  EXPECT_EQ(rel.attrs[0].num_rows(), 50);
  EXPECT_EQ(rel.ds(), 3u);
  EXPECT_EQ(rel.dr(0), 4u);
  EXPECT_EQ(rel.total_dims(), 7u);
  EXPECT_FALSE(rel.has_target);
  FML_EXPECT_OK(rel.Validate());
}

TEST(SyntheticTest, ExactTupleRatioPerRid) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.s_rows = 500;             // 500 / 50 = exactly 10 per rid
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  for (int64_t rid = 0; rid < 50; ++rid) {
    EXPECT_EQ(rel.fk1_index.CountOf(rid), 10) << "rid " << rid;
  }
}

TEST(SyntheticTest, RemainderSpreadKeepsCountsBalanced) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.s_rows = 507;  // 10 or 11 per rid
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  int64_t total = 0;
  for (int64_t rid = 0; rid < 50; ++rid) {
    const int64_t c = rel.fk1_index.CountOf(rid);
    EXPECT_GE(c, 10);
    EXPECT_LE(c, 11);
    total += c;
  }
  EXPECT_EQ(total, 507);
}

TEST(SyntheticTest, DeterministicForSeed) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.name = "a";
  auto rel1 = std::move(GenerateSynthetic(spec, &pool)).value();
  spec.name = "b";
  auto rel2 = std::move(GenerateSynthetic(spec, &pool)).value();
  storage::RowBatch b1, b2;
  FML_ASSERT_OK(rel1.s.ReadRows(&pool, 0, 100, &b1));
  FML_ASSERT_OK(rel2.s.ReadRows(&pool, 0, 100, &b2));
  for (size_t r = 0; r < 100; ++r) {
    for (size_t j = 0; j < rel1.s.schema().num_feats; ++j) {
      EXPECT_DOUBLE_EQ(b1.feats(r, j), b2.feats(r, j));
    }
  }
}

TEST(SyntheticTest, TargetPresentAndFinite) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.with_target = true;
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  EXPECT_TRUE(rel.has_target);
  EXPECT_EQ(rel.ds(), 3u);  // target not counted as a feature
  EXPECT_EQ(rel.s.schema().num_feats, 4u);
  storage::RowBatch batch;
  FML_ASSERT_OK(rel.s.ReadRows(&pool, 0, 500, &batch));
  double variance_probe = 0.0;
  for (size_t r = 0; r < 500; ++r) {
    EXPECT_TRUE(std::isfinite(batch.feats(r, 0)));
    variance_probe += std::fabs(batch.feats(r, 0));
  }
  EXPECT_GT(variance_probe, 0.0);  // target is not identically zero
}

TEST(SyntheticTest, OneHotRowsAreSparseBinary) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.one_hot = true;
  spec.s_feats = 12;             // blocks of 8 + 4
  spec.attrs = {AttributeSpec{20, 10}};
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  storage::RowBatch batch;
  FML_ASSERT_OK(rel.s.ReadRows(&pool, 0, 200, &batch));
  for (size_t r = 0; r < 200; ++r) {
    int ones = 0;
    for (size_t j = 0; j < 12; ++j) {
      const double v = batch.feats(r, j);
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      if (v == 1.0) ++ones;
    }
    EXPECT_EQ(ones, 2);  // one active column per block, two blocks
  }
}

TEST(SyntheticTest, MultiwayForeignKeysInRange) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = BaseSpec(dir.str());
  spec.attrs = {AttributeSpec{10, 2}, AttributeSpec{7, 3}};
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  EXPECT_EQ(rel.num_joins(), 2u);
  EXPECT_EQ(rel.total_dims(), 3u + 2u + 3u);
  storage::RowBatch batch;
  FML_ASSERT_OK(rel.s.ReadRows(&pool, 0, 500, &batch));
  std::set<int64_t> fk2_seen;
  for (size_t r = 0; r < 500; ++r) {
    const int64_t fk2 = batch.KeysOf(r)[2];
    EXPECT_GE(fk2, 0);
    EXPECT_LT(fk2, 7);
    fk2_seen.insert(fk2);
  }
  EXPECT_EQ(fk2_seen.size(), 7u);  // 500 uniform draws hit all 7 rids
}

TEST(SyntheticTest, RejectsEmptySpec) {
  BufferPool pool(16);
  SyntheticSpec spec;
  EXPECT_FALSE(GenerateSynthetic(spec, &pool).ok());
}

// ------------------------------------------------------------ RealShapes

TEST(RealShapesTest, AllPublishedShapesPresent) {
  const auto& shapes = AllRealShapes();
  EXPECT_EQ(shapes.size(), 10u);
  auto ex1 = std::move(FindRealShape("Expedia1")).value();
  EXPECT_EQ(ex1.n_s, 942142);
  EXPECT_EQ(ex1.d_s, 7u);
  EXPECT_EQ(ex1.n_r, 11938);
  EXPECT_EQ(ex1.d_r, 8u);
  auto wal = std::move(FindRealShape("Walmart-Sparse")).value();
  EXPECT_TRUE(wal.sparse);
  EXPECT_EQ(wal.d_s, 126u);
  EXPECT_EQ(wal.d_r, 175u);
  auto m3 = std::move(FindRealShape("Movies-3way")).value();
  EXPECT_TRUE(m3.three_way);
  EXPECT_EQ(m3.n_r2, 3706);
}

TEST(RealShapesTest, UnknownNameIsNotFound) {
  EXPECT_EQ(FindRealShape("Nope").status().code(), StatusCode::kNotFound);
}

TEST(RealShapesTest, ScaledGenerationShrinksCardinalitiesOnly) {
  TempDir dir;
  BufferPool pool(256);
  auto shape = std::move(FindRealShape("Walmart")).value();
  auto rel = std::move(GenerateRealShape(shape, dir.str(), &pool,
                                         /*scale=*/0.01, /*seed=*/1))
                 .value();
  EXPECT_EQ(rel.s.num_rows(), 4215);
  EXPECT_EQ(rel.attrs[0].num_rows(), 23);
  EXPECT_EQ(rel.ds(), 3u);   // dims never scaled
  EXPECT_EQ(rel.dr(0), 9u);
}

TEST(RealShapesTest, ThreeWayShapeBuildsTwoAttributeTables) {
  TempDir dir;
  BufferPool pool(256);
  auto shape = std::move(FindRealShape("Movies-3way")).value();
  auto rel = std::move(GenerateRealShape(shape, dir.str(), &pool,
                                         /*scale=*/0.005, /*seed=*/1,
                                         /*with_target=*/true))
                 .value();
  EXPECT_EQ(rel.num_joins(), 2u);
  EXPECT_TRUE(rel.has_target);
  EXPECT_EQ(rel.dr(0), 4u);
  EXPECT_EQ(rel.dr(1), 21u);
}

TEST(RealShapesTest, InvalidScaleRejected) {
  TempDir dir;
  BufferPool pool(16);
  auto shape = std::move(FindRealShape("Movies")).value();
  EXPECT_FALSE(GenerateRealShape(shape, dir.str(), &pool, 0.0, 1).ok());
  EXPECT_FALSE(GenerateRealShape(shape, dir.str(), &pool, 1.5, 1).ok());
}

}  // namespace
}  // namespace factorml::data

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/flags.h"
#include "la/kernels.h"
#include "common/opcount.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "gtest/gtest.h"

namespace factorml {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad dims");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

Status FailingHelper() { return Status::IoError("disk gone"); }

Status UsesReturnIfError() {
  FML_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kIoError);
}

Result<int> GivesSeven() { return 7; }

Status UsesAssignOrReturn(int* out) {
  FML_ASSIGN_OR_RETURN(int v, GivesSeven());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 7);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, SaveRestoreStateResumesBitIdentically) {
  // The checkpoint seam: capture mid-stream (with the Box-Muller cache
  // half-full) and replay into a generator seeded differently — the
  // restored stream must continue bit-for-bit where the original left
  // off, gaussians included.
  Rng a(123);
  for (int i = 0; i < 7; ++i) a.NextGaussian();  // odd count: cache is hot
  double st[Rng::kStateDoubles];
  a.SaveState(st);
  Rng b(999);
  b.RestoreState(st);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextGaussian(), b.NextGaussian()) << "draw " << i;
    EXPECT_EQ(a.NextU64(), b.NextU64()) << "draw " << i;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(&v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  // Practically never identity.
  bool identity = true;
  for (int i = 0; i < 100; ++i) identity = identity && v[i] == i;
  EXPECT_FALSE(identity);
}

// ----------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesTypedValues) {
  const char* argv[] = {"prog", "--n=42",    "--rate=0.5", "--name=abc",
                        "--on", "--off=false", "positional"};
  ArgParser args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(args.GetString("name", ""), "abc");
  EXPECT_TRUE(args.GetBool("on", false));
  EXPECT_FALSE(args.GetBool("off", true));
  EXPECT_FALSE(args.Has("positional"));
}

TEST(FlagsTest, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("n", 5), 5);
  EXPECT_EQ(args.GetString("s", "dflt"), "dflt");
}

TEST(FlagsTest, TraceFlagsValidValuesPassThrough) {
  const std::string good = ::testing::TempDir() + "/flags_trace_probe.json";
  const std::string trace_arg = "--trace=" + good;
  const char* argv[] = {"prog", trace_arg.c_str(), "--trace-buffer-kb=64"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EQ(args.GetTracePath(), good);
  EXPECT_EQ(args.GetTraceBufferKb(), 64);
  std::remove(good.c_str());
}

TEST(FlagsTest, TraceFlagsDefaults) {
  const char* argv[] = {"prog"};
  ArgParser args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetTracePath(), "");
  EXPECT_EQ(args.GetTraceBufferKb(), 1024);
}

// The trace flags fail fast (exit 2 with a usage message) on an
// unwritable path or a bad ring size — before the traced run burns its
// wall time, not at the flush.
TEST(FlagsDeathTest, UnwritableTracePathExits2) {
  const char* argv[] = {"prog",
                        "--trace=/nonexistent_dir_xyz_42/trace.json"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetTracePath(), ::testing::ExitedWithCode(2),
              "invalid --trace=");
}

TEST(FlagsDeathTest, TraceBufferKbBelowOneExits2) {
  const char* argv[] = {"prog", "--trace-buffer-kb=0"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetTraceBufferKb(), ::testing::ExitedWithCode(2),
              "invalid --trace-buffer-kb");
}

TEST(FlagsTest, KernelsValidValuesAndDefault) {
  const char* argv[] = {"prog", "--kernels=simd"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetKernels(), "simd");
  const char* argv2[] = {"prog", "--kernels=scalar"};
  ArgParser args2(2, const_cast<char**>(argv2));
  EXPECT_EQ(args2.GetKernels(), "scalar");
  const char* argv3[] = {"prog"};
  ArgParser args3(1, const_cast<char**>(argv3));
  EXPECT_EQ(args3.GetKernels(), "scalar");
}

// Unknown kernel backends fail fast (exit 2, listing the choices) before
// a long training run silently falls back to the wrong plane.
TEST(FlagsDeathTest, UnknownKernelsValueExits2) {
  const char* argv[] = {"prog", "--kernels=avx512"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetKernels(), ::testing::ExitedWithCode(2),
              "invalid --kernels=avx512");
}

/// Saves the ambient FACTORML_KERNELS_BACKEND (CI's forced-portable job
/// exports it job-wide) and restores it on scope exit.
struct SavedBackendEnv {
  SavedBackendEnv() {
    const char* prev = std::getenv("FACTORML_KERNELS_BACKEND");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
  }
  ~SavedBackendEnv() {
    if (had_prev_) {
      setenv("FACTORML_KERNELS_BACKEND", prev_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("FACTORML_KERNELS_BACKEND");
    }
  }
  std::string prev_;
  bool had_prev_ = false;
};

TEST(KernelsBackendDeathTest, UnknownBackendEnvExits2) {
  SavedBackendEnv saved;
  setenv("FACTORML_KERNELS_BACKEND", "avx512", /*overwrite=*/1);
  EXPECT_EXIT(la::SelectKernels(la::KernelMode::kSimd),
              ::testing::ExitedWithCode(2),
              "invalid FACTORML_KERNELS_BACKEND=avx512");
}

TEST(KernelsBackendTest, ValidOverridesSelectWithoutExit) {
  SavedBackendEnv saved;
  for (const char* v : {"scalar", "portable", "native"}) {
    setenv("FACTORML_KERNELS_BACKEND", v, /*overwrite=*/1);
    la::SelectKernels(la::KernelMode::kSimd);  // must not exit
  }
  // Empty string behaves like unset: native pick.
  setenv("FACTORML_KERNELS_BACKEND", "", /*overwrite=*/1);
  la::SelectKernels(la::KernelMode::kSimd);
  la::SelectKernels(la::KernelMode::kScalar);
}

TEST(FlagsDeathTest, TraceBufferKbNonIntegerExits2) {
  const char* argv[] = {"prog", "--trace-buffer-kb=abc"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetTraceBufferKb(), ::testing::ExitedWithCode(2),
              "invalid --trace-buffer-kb");
}

TEST(FlagsTest, IntListParsing) {
  const char* argv[] = {"prog", "--rr=50,100,500"};
  ArgParser args(2, const_cast<char**>(argv));
  const auto v = args.GetIntList("rr", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 50);
  EXPECT_EQ(v[2], 500);
  const auto dflt = args.GetIntList("other", {1, 2});
  EXPECT_EQ(dflt.size(), 2u);
}

// GetInt historically ran strtoll with no end-pointer/errno check, so
// `--iters=abc` silently trained for 0 iterations. It now fails fast
// like every validated getter, naming the flag and the bad value.
TEST(FlagsDeathTest, GetIntNonIntegerExits2) {
  const char* argv[] = {"prog", "--iters=abc"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetInt("iters", 10), ::testing::ExitedWithCode(2),
              "invalid --iters=abc");
}

TEST(FlagsDeathTest, GetIntTrailingGarbageExits2) {
  const char* argv[] = {"prog", "--k=5x"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetInt("k", 3), ::testing::ExitedWithCode(2),
              "invalid --k=5x");
}

TEST(FlagsDeathTest, GetIntOutOfRangeExits2) {
  const char* argv[] = {"prog", "--n=99999999999999999999999999"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetInt("n", 0), ::testing::ExitedWithCode(2),
              "invalid --n=");
}

TEST(FlagsDeathTest, GetIntListBadItemExits2) {
  const char* argv[] = {"prog", "--rr=50,abc,500"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetIntList("rr", {}), ::testing::ExitedWithCode(2),
              "'abc' is not an integer");
}

TEST(FlagsTest, GetIntNegativeStillParses) {
  const char* argv[] = {"prog", "--delta=-7"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("delta", 0), -7);
}

TEST(FlagsTest, ShardBackendFlagsValidAndDefaults) {
  const char* argv[] = {"prog", "--shard-backend=process",
                        "--shard-timeout-ms=500", "--shard-transport=tcp"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetShardBackend(), "process");
  EXPECT_EQ(args.GetShardTimeoutMs(), 500);
  EXPECT_EQ(args.GetShardTransport(), "tcp");
  const char* argv2[] = {"prog"};
  ArgParser args2(1, const_cast<char**>(argv2));
  EXPECT_EQ(args2.GetShardBackend(), "inproc");
  EXPECT_EQ(args2.GetShardTimeoutMs(), 30000);
  EXPECT_EQ(args2.GetShardTransport(), "unix");
}

TEST(FlagsDeathTest, UnknownShardBackendExits2) {
  const char* argv[] = {"prog", "--shard-backend=grpc"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetShardBackend(), ::testing::ExitedWithCode(2),
              "invalid --shard-backend=grpc");
}

TEST(FlagsDeathTest, ShardTimeoutBelowOneExits2) {
  const char* argv[] = {"prog", "--shard-timeout-ms=0"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetShardTimeoutMs(), ::testing::ExitedWithCode(2),
              "invalid --shard-timeout-ms");
}

TEST(FlagsTest, CheckpointAndDeltaFlagsValidAndDefaults) {
  const std::string dir = ::testing::TempDir();
  const std::string dir_arg = "--checkpoint-dir=" + dir;
  const char* argv[] = {"prog", dir_arg.c_str(), "--checkpoint-every=3",
                        "--delta-encoding=sparse"};
  ArgParser args(4, const_cast<char**>(argv));
  EXPECT_EQ(args.GetCheckpointDir(), dir);
  EXPECT_EQ(args.GetCheckpointEvery(), 3);
  EXPECT_EQ(args.GetDeltaEncoding(), "sparse");
  const char* argv2[] = {"prog"};
  ArgParser args2(1, const_cast<char**>(argv2));
  EXPECT_EQ(args2.GetCheckpointDir(), "");
  EXPECT_EQ(args2.GetCheckpointEvery(), 0);
  EXPECT_EQ(args2.GetDeltaEncoding(), "dense");
}

// The checkpoint/delta flags fail fast (exit 2 naming flag and value)
// before a long run discovers at its first write that the directory is
// unusable or the interval nonsense.
TEST(FlagsDeathTest, UnknownDeltaEncodingExits2) {
  const char* argv[] = {"prog", "--delta-encoding=gzip"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetDeltaEncoding(), ::testing::ExitedWithCode(2),
              "invalid --delta-encoding=gzip");
}

TEST(FlagsDeathTest, UnwritableCheckpointDirExits2) {
  const char* argv[] = {"prog", "--checkpoint-dir=/nonexistent_dir_xyz_42"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetCheckpointDir(), ::testing::ExitedWithCode(2),
              "invalid --checkpoint-dir=/nonexistent_dir_xyz_42");
}

TEST(FlagsDeathTest, CheckpointEveryWithoutDirExits2) {
  const char* argv[] = {"prog", "--checkpoint-every=2"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetCheckpointEvery(), ::testing::ExitedWithCode(2),
              "invalid --checkpoint-every=2 \\(requires --checkpoint-dir");
}

TEST(FlagsDeathTest, CheckpointEveryBelowOneExits2) {
  const std::string dir_arg = "--checkpoint-dir=" + ::testing::TempDir();
  const char* argv[] = {"prog", dir_arg.c_str(), "--checkpoint-every=0"};
  ArgParser args(3, const_cast<char**>(argv));
  EXPECT_EXIT(args.GetCheckpointEvery(), ::testing::ExitedWithCode(2),
              "invalid --checkpoint-every=0");
}

// -------------------------------------------------------------- OpCount

TEST(OpCountTest, CountersAccumulateAndDiff) {
  ResetGlobalOps();
  CountMults(10);
  CountAdds(5);
  const OpCounters snap = GlobalOps();
  CountMults(7);
  CountSubs(2);
  const OpCounters delta = GlobalOps() - snap;
  EXPECT_EQ(delta.mults, 7u);
  EXPECT_EQ(delta.subs, 2u);
  EXPECT_EQ(delta.adds, 0u);
  EXPECT_EQ(GlobalOps().mults, 17u);
}

TEST(OpCountTest, TotalAndToString) {
  OpCounters c{1, 2, 3, 4};
  EXPECT_EQ(c.Total(), 10u);
  EXPECT_NE(c.ToString().find("mults=1"), std::string::npos);
}

// ------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(double(i));
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.Restart();
  EXPECT_LE(w.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace factorml

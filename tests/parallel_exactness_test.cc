// Parallel exactness: every trainer run on the exec/ morsel-driven
// runtime must deliver the parameters of the serial run. The NN path
// decomposes into row morsels (forward) and column morsels (W1 gradient),
// both bit-identical; the GMM path merges per-worker accumulators in
// worker order, which reorders floating-point additions — hence the
// tolerance there.

#include <cmath>
#include <tuple>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "gmm/gmm_model.h"
#include "gmm/trainers.h"
#include "gtest/gtest.h"
#include "nn/mlp.h"
#include "nn/trainers.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir, bool target) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 3000;
  spec.s_feats = 3;
  spec.attrs = {data::AttributeSpec{40, 5}};
  spec.clusters = 3;
  spec.with_target = target;
  spec.seed = 33;
  return spec;
}

gmm::GmmOptions GmmOpt(const std::string& dir, int threads) {
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir;
  opt.threads = threads;
  return opt;
}

nn::NnOptions NnOpt(const std::string& dir, int threads) {
  nn::NnOptions opt;
  opt.hidden = {16};
  opt.epochs = 3;
  opt.batch_rows = 256;
  opt.temp_dir = dir;
  opt.threads = threads;
  return opt;
}

// ------------------------------------------------------------------ GMM

class GmmParallelExactnessTest
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(GmmParallelExactnessTest, FourThreadsMatchOneThread) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();

  core::TrainReport r1, r4;
  pool.Clear();
  auto serial = std::move(core::TrainGmm(rel, GmmOpt(dir.str(), 1),
                                         GetParam(), &pool, &r1))
                    .value();
  pool.Clear();
  auto parallel = std::move(core::TrainGmm(rel, GmmOpt(dir.str(), 4),
                                           GetParam(), &pool, &r4))
                      .value();

  // Per-worker accumulators merge in worker order: identical parameters
  // up to floating-point reassociation of the pass sums.
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(serial, parallel), 1e-8);
  EXPECT_NEAR(r1.final_objective, r4.final_objective,
              1e-9 * std::fabs(r1.final_objective));
  EXPECT_EQ(r1.threads, 1);
  EXPECT_EQ(r4.threads, 4);
  // The parallel run executes the identical recurrence: the floating-point
  // op stream is unchanged (merges are bookkeeping, not counted ops).
  EXPECT_EQ(r1.ops.mults, r4.ops.mults);
  EXPECT_EQ(r1.ops.subs, r4.ops.subs);
  EXPECT_EQ(r1.ops.exps, r4.ops.exps);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GmmParallelExactnessTest,
                         ::testing::Values(core::Algorithm::kMaterialized,
                                           core::Algorithm::kStreaming,
                                           core::Algorithm::kFactorized));

TEST(GmmParallelExactnessTest, MultiwayFactorizedMatches) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), false);
  spec.attrs.push_back(data::AttributeSpec{15, 2});
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();

  auto serial = std::move(gmm::TrainGmmFactorized(rel, GmmOpt(dir.str(), 1),
                                                  &pool, nullptr))
                    .value();
  auto parallel = std::move(gmm::TrainGmmFactorized(rel, GmmOpt(dir.str(), 3),
                                                    &pool, nullptr))
                      .value();
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(serial, parallel), 1e-8);
}

TEST(GmmParallelExactnessTest, MoreThreadsThanRidsStillWorks) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str(), false);
  spec.attrs[0].rows = 3;  // fewer FK1 runs than workers
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  auto serial = std::move(gmm::TrainGmmFactorized(rel, GmmOpt(dir.str(), 1),
                                                  &pool, nullptr))
                    .value();
  auto parallel = std::move(gmm::TrainGmmFactorized(rel, GmmOpt(dir.str(), 8),
                                                    &pool, nullptr))
                      .value();
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(serial, parallel), 1e-8);
}

// ------------------------------------------------------------------- NN

class NnParallelExactnessTest
    : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(NnParallelExactnessTest, FourThreadsMatchOneThread) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();

  core::TrainReport r1, r4;
  pool.Clear();
  auto serial = std::move(core::TrainNn(rel, NnOpt(dir.str(), 1), GetParam(),
                                        &pool, &r1))
                    .value();
  pool.Clear();
  auto parallel = std::move(core::TrainNn(rel, NnOpt(dir.str(), 4),
                                          GetParam(), &pool, &r4))
                      .value();

  // Row morsels (forward) and column morsels (gradient) decompose the
  // arithmetic without reordering any accumulation, so the SGD trajectory
  // is reproduced exactly.
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(serial, parallel), 1e-12);
  EXPECT_NEAR(r1.final_objective, r4.final_objective,
              1e-12 * std::fabs(r1.final_objective) + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, NnParallelExactnessTest,
                         ::testing::Values(core::Algorithm::kMaterialized,
                                           core::Algorithm::kStreaming,
                                           core::Algorithm::kFactorized));

TEST(NnParallelExactnessTest, ShuffledGroupedBackwardMatches) {
  // The hardest F-NN configuration: per-epoch rid permutation plus the
  // grouped backward extension, threads=1 vs threads=4.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();

  auto opt1 = NnOpt(dir.str(), 1);
  opt1.shuffle = true;
  opt1.grouped_backward = true;
  auto opt4 = opt1;
  opt4.threads = 4;

  auto serial =
      std::move(nn::TrainNnFactorized(rel, opt1, &pool, nullptr)).value();
  auto parallel =
      std::move(nn::TrainNnFactorized(rel, opt4, &pool, nullptr)).value();
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(serial, parallel), 1e-12);
}

TEST(NnParallelExactnessTest, DropoutMomentumMatches) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();

  auto opt1 = NnOpt(dir.str(), 1);
  opt1.hidden_dropout = 0.3;
  opt1.momentum = 0.9;
  opt1.weight_decay = 1e-4;
  auto opt4 = opt1;
  opt4.threads = 4;

  auto serial =
      std::move(nn::TrainNnStreaming(rel, opt1, &pool, nullptr)).value();
  auto parallel =
      std::move(nn::TrainNnStreaming(rel, opt4, &pool, nullptr)).value();
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(serial, parallel), 1e-12);
}

}  // namespace
}  // namespace factorml

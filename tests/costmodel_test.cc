#include <cmath>
#include <tuple>

#include "costmodel/cost_model.h"
#include "gtest/gtest.h"

namespace factorml::costmodel {
namespace {

// ----------------------------------------------------------- I/O model

TEST(IoModelTest, MGmmPageFormula) {
  // |R|=10, |S|=100, |T|=150, block=5, iter=2:
  // join = 10 + ceil(10/5)*100 = 210; + |T| 150 + 3*2*150 = 900.
  EXPECT_EQ(MGmmIoPages(10, 100, 150, 5, 2), 210u + 150u + 900u);
}

TEST(IoModelTest, SGmmPageFormula) {
  // 3*2*(10 + 2*100) = 1260.
  EXPECT_EQ(SGmmIoPages(10, 100, 5, 2), 1260u);
}

TEST(IoModelTest, LargeBlockFavorsStreaming) {
  // With a block big enough to hold all of R, the join costs |R| + |S| per
  // pass and S-GMM avoids writing + re-reading the wide T.
  const uint64_t r = 10, s = 1000, t = 4000;
  const int iters = 10;
  EXPECT_LT(SGmmIoPages(r, s, /*block=*/r, iters),
            MGmmIoPages(r, s, t, /*block=*/r, iters));
}

TEST(IoModelTest, TinyBlockFavorsMaterialization) {
  // With block=1, the join re-scans S once per R page; repeating that 3x
  // per iteration dwarfs reading T.
  const uint64_t r = 100, s = 1000, t = 1100;
  const int iters = 10;
  EXPECT_GT(SGmmIoPages(r, s, /*block=*/1, iters),
            MGmmIoPages(r, s, t, /*block=*/1, iters));
}

TEST(IoModelTest, CrossoverMatchesDirectComparison) {
  const uint64_t r = 50, s = 2000, t = 6000;
  const int iters = 5;
  const double threshold = SGmmCrossoverBlockPages(r, s, t, iters);
  ASSERT_GT(threshold, 0.0);
  // Well above the threshold S-GMM must win; well below, M-GMM must win.
  const uint64_t above = static_cast<uint64_t>(threshold * 2.0) + 2;
  EXPECT_LT(SGmmIoPages(r, s, above, iters), MGmmIoPages(r, s, t, above, iters));
  if (threshold > 4.0) {
    const uint64_t below = static_cast<uint64_t>(threshold / 2.0);
    EXPECT_GT(SGmmIoPages(r, s, below, iters),
              MGmmIoPages(r, s, t, below, iters));
  }
}

TEST(IoModelTest, CrossoverNegativeWhenStreamingNeverWins) {
  // Tiny T relative to R: the denominator goes non-positive.
  EXPECT_LT(SGmmCrossoverBlockPages(1000, 10, 100, 10), 0.0);
}

// ------------------------------------------------------- Compute model

TEST(ComputeModelTest, SigmaOpsFormulas) {
  // nS=100, nR=10, dS=2, dR=3, d=5.
  // Unfactorized: 100*5 subs + 100*25 mults = 3000.
  EXPECT_EQ(GmmSigmaOpsUnfactorized(100, 2, 3), 3000u);
  // Factorized: subs 100*2+10*3 = 230; mults 100*(4+12) + 10*9 = 1690.
  EXPECT_EQ(GmmSigmaOpsFactorized(100, 10, 2, 3), 230u + 1690u);
}

TEST(ComputeModelTest, FactorizedNeverWorseThanUnfactorizedWhenRedundant) {
  for (int64_t rr : {2, 10, 100, 1000}) {
    for (int64_t dr : {1, 5, 20}) {
      const int64_t n_r = 100;
      const int64_t n_s = n_r * rr;
      EXPECT_LE(GmmSigmaOpsFactorized(n_s, n_r, 5, dr),
                GmmSigmaOpsUnfactorized(n_s, 5, dr))
          << "rr=" << rr << " dr=" << dr;
    }
  }
}

TEST(ComputeModelTest, SavingRateIncreasesWithTupleRatio) {
  const double r10 = GmmSigmaSavingRate(10 * 100, 100, 5, 15);
  const double r100 = GmmSigmaSavingRate(100 * 100, 100, 5, 15);
  const double r1000 = GmmSigmaSavingRate(1000 * 100, 100, 5, 15);
  EXPECT_LT(r10, r100);
  EXPECT_LT(r100, r1000);
  EXPECT_GT(r10, 0.0);
  EXPECT_LT(r1000, 1.0);
}

TEST(ComputeModelTest, SavingRateIncreasesWithDr) {
  // Paper Sec. V-B: with dS fixed, larger dR gives more savings.
  const double d5 = GmmSigmaSavingRate(100000, 1000, 5, 5);
  const double d15 = GmmSigmaSavingRate(100000, 1000, 5, 15);
  const double d50 = GmmSigmaSavingRate(100000, 1000, 5, 50);
  EXPECT_LT(d5, d15);
  EXPECT_LT(d15, d50);
}

TEST(ComputeModelTest, SavingRateMatchesOpCountRatio) {
  // Delta-tau / tau computed from the closed form must equal the ratio of
  // the explicit op-count formulas (with tau_s = tau_m = 1).
  const int64_t n_s = 50000, n_r = 500, d_s = 5, d_r = 15;
  const double tau =
      static_cast<double>(GmmSigmaOpsUnfactorized(n_s, d_s, d_r));
  const double tau_f =
      static_cast<double>(GmmSigmaOpsFactorized(n_s, n_r, d_s, d_r));
  const double expected = (tau - tau_f) / tau;
  EXPECT_NEAR(GmmSigmaSavingRate(n_s, n_r, d_s, d_r), expected, 1e-12);
}

// -------------------------------------------------------- NN formulas

TEST(NnModelTest, FirstLayerFactorizedWinsWithRedundancy) {
  const int64_t n_s = 100000, n_r = 1000, d_s = 5, d_r = 15, n_h = 50;
  const uint64_t unfact =
      NnFirstLayerOpsUnfactorized(n_s, d_s + d_r, n_h);
  const uint64_t fact =
      NnFirstLayerOpsFactorized(n_s, n_r, d_s, d_r, n_h);
  EXPECT_LT(fact, unfact);
  // For these parameters the multiply saving is roughly d / dS = 4x.
  EXPECT_GT(static_cast<double>(unfact) / static_cast<double>(fact), 3.0);
}

TEST(NnModelTest, FirstLayerNoWinWithoutRedundancy) {
  // nS == nR (every R tuple matches once): factorized does the same work.
  const int64_t n = 1000;
  EXPECT_EQ(NnFirstLayerOpsFactorized(n, n, 5, 15, 50),
            NnFirstLayerOpsUnfactorized(n, 20, 50));
}

TEST(NnModelTest, SecondLayerReuseAlwaysCostsMore) {
  // The paper's negative result (Sec. VI-A2): even for additive
  // activations, attempting reuse at the second layer increases the total
  // operation count for every shape.
  for (int64_t n_s : {1000, 100000}) {
    for (int64_t n_r : {10, 1000}) {
      for (int64_t n_h : {10, 200}) {
        EXPECT_GT(NnSecondLayerOpsWithReuse(n_s, n_r, n_h, 30),
                  NnSecondLayerOpsNoReuse(n_s, n_h, 30))
            << n_s << " " << n_r << " " << n_h;
      }
    }
  }
}

}  // namespace
}  // namespace factorml::costmodel

// Randomized parity harness — the standing safety net for the
// work-stealing morsel scheduler and the M/S/F strategy planes.
//
// Each seeded case draws a random schema and dataset (random S/R sizes
// and dims, FK1 run lengths uniform, Zipf-skewed or single-giant-run),
// picks one model family (GMM, NN, linreg, k-means — cycling by seed),
// and asserts the two properties no hand-picked golden can cover:
//
//  1. Schedule invariance (bit-exact): with the chunk-ordered scheduler
//     active, the final objective, every op count, and every model
//     parameter are IDENTICAL — EXPECT_EQ on doubles — across
//     threads x {1,2,4}, steal x {off,on}, prefetch x {off,on} and
//     rid-range shards x {1,2,3,4}. The chunk set is a data invariant,
//     the reduction merges in chunk order, and the shard plane's
//     ShardDelta round-trip is a pure serialization boundary, so who
//     executes a chunk — or which shard ships it — can never leak into
//     the result.
//  2. Strategy agreement (tolerance): M, S and F train the same model on
//     the same data up to floating-point reassociation of the factorized
//     accumulation.
//
// The suite carries the ctest label `stress` (CI runs it, `ctest -L
// tier1` skips it); a subset runs under TSan to certify the lock-free
// queue.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/factorml.h"
#include "gtest/gtest.h"
#include "la/kernels.h"
#include "test_util.h"

namespace factorml {
namespace {

using data::GenerateSynthetic;
using data::RunDist;
using factorml::testing::TempDir;
using storage::BufferPool;

constexpr core::Algorithm kAlgos[] = {core::Algorithm::kMaterialized,
                                      core::Algorithm::kStreaming,
                                      core::Algorithm::kFactorized};

struct SchedConfig {
  int threads;
  bool steal;
  bool prefetch = false;
  int shards = 1;
  bool simd = false;  // --kernels=simd (batched strip kernels)
};
// Config 0 is the baseline every other schedule must reproduce bit-exactly.
// The prefetch configs assert the I/O plane's extended contract: async
// page prefetch changes residency only, so a prefetched run is as
// bit-exact as any other schedule. The shard configs assert the shard
// plane's contract on top: rid-range shards scanned separately, slots
// round-tripped through serialized ShardDeltas, merged in shard-id order
// — still the same bits, composed with every thread count, stealing and
// prefetch (full-pass families only; the NN branch below asserts the
// mini-batch plane rejects sharding instead).
constexpr SchedConfig kConfigs[] = {
    {1, false},       {2, false},       {4, false},
    {1, true},        {2, true},        {4, true},
    {2, false, true}, {4, true, true},
    {1, false, false, 2}, {2, false, false, 3}, {4, true, false, 2},
    {2, false, true, 4},  {1, true, false, 3}};

std::string CfgName(const SchedConfig& c) {
  return "threads=" + std::to_string(c.threads) +
         (c.steal ? " steal=on" : " steal=off") +
         (c.prefetch ? " prefetch=on" : "") +
         (c.shards > 1 ? " shards=" + std::to_string(c.shards) : "") +
         (c.simd ? " kernels=simd" : "");
}

// The simd plane's extended contract: op counts (charged per batch with
// the scalar formulas) and — at steal/prefetch-free schedules — demand
// page I/O stay EXPECT_EQ-identical to the scalar baseline; objectives
// and parameters agree to a per-family tolerance (the batched kernels
// reassociate strip summation).
constexpr SchedConfig kSimdConfigs[] = {
    {1, false, false, 1, true},
    {4, false, false, 1, true},
    {2, false, false, 3, true},
    {4, true, true, 1, true}};

/// Trains one (family, algorithm) under every scheduler config and
/// asserts bit-identical objectives, op counts and parameters against the
/// threads=1 steal=off baseline. `train(threads, steal, report)` runs one
/// training; `diff` is the family's MaxAbsDiff. Returns the baseline
/// objective for the cross-strategy check.
template <typename Train, typename Diff>
double ExpectScheduleInvariance(Train train, Diff diff,
                                const std::string& label,
                                double simd_obj_tol, double simd_param_tol) {
  core::TrainReport base_report;
  auto base = train(kConfigs[0], &base_report);
  EXPECT_TRUE(base.ok()) << label << ": " << base.status().ToString();
  if (!base.ok()) return 0.0;
  EXPECT_GT(base_report.morsel_chunks, 0) << label;
  EXPECT_EQ(base_report.io.prefetch_reads, 0u) << label;
  for (size_t i = 1; i < std::size(kConfigs); ++i) {
    const std::string tag = label + " [" + CfgName(kConfigs[i]) + "]";
    core::TrainReport report;
    auto model = train(kConfigs[i], &report);
    EXPECT_TRUE(model.ok()) << tag << ": " << model.status().ToString();
    if (!model.ok()) continue;
    EXPECT_EQ(report.final_objective, base_report.final_objective) << tag;
    EXPECT_EQ(report.iterations, base_report.iterations) << tag;
    EXPECT_EQ(report.ops.mults, base_report.ops.mults) << tag;
    EXPECT_EQ(report.ops.adds, base_report.ops.adds) << tag;
    EXPECT_EQ(report.ops.subs, base_report.ops.subs) << tag;
    EXPECT_EQ(report.ops.exps, base_report.ops.exps) << tag;
    EXPECT_EQ(diff(base.value(), model.value()), 0.0) << tag;
  }
  for (const SchedConfig& cfg : kSimdConfigs) {
    const std::string tag = label + " [" + CfgName(cfg) + "]";
    core::TrainReport report;
    auto model = train(cfg, &report);
    EXPECT_TRUE(model.ok()) << tag << ": " << model.status().ToString();
    if (!model.ok()) continue;
    EXPECT_EQ(report.iterations, base_report.iterations) << tag;
    EXPECT_EQ(report.ops.mults, base_report.ops.mults) << tag;
    EXPECT_EQ(report.ops.adds, base_report.ops.adds) << tag;
    EXPECT_EQ(report.ops.subs, base_report.ops.subs) << tag;
    EXPECT_EQ(report.ops.exps, base_report.ops.exps) << tag;
    // Page I/O is only comparable at the baseline's own schedule (extra
    // workers re-read chunk-boundary pages through their own cursors);
    // there the simd plane must not move a single page.
    if (!cfg.steal && !cfg.prefetch && cfg.threads == kConfigs[0].threads &&
        cfg.shards == kConfigs[0].shards) {
      EXPECT_EQ(report.io.pages_read, base_report.io.pages_read) << tag;
      EXPECT_EQ(report.io.pages_written, base_report.io.pages_written)
          << tag;
    }
    EXPECT_NEAR(report.final_objective, base_report.final_objective,
                simd_obj_tol * std::fabs(base_report.final_objective) +
                    1e-12)
        << tag;
    EXPECT_LT(diff(base.value(), model.value()), simd_param_tol) << tag;
  }
  return base_report.final_objective;
}

/// The strategies reorder factorized accumulation, so objectives agree to
/// a relative tolerance only.
void ExpectStrategiesAgree(const double obj[3], const std::string& label) {
  const double scale = std::fabs(obj[0]) + 1e-12;
  EXPECT_NEAR(obj[0], obj[1], 1e-9 * scale) << label << " M vs S";
  EXPECT_NEAR(obj[0], obj[2], 1e-5 * scale) << label << " M vs F";
}

class FuzzParityTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzParityTest, StealScheduleInvariance) {
  const int seed = GetParam();
  Rng rng(0x9E3779B97F4A7C15ull ^ (static_cast<uint64_t>(seed) * 2654435761ull));

  // ---- random schema / data ------------------------------------------
  const int family = seed % 4;  // 0 gmm, 1 nn, 2 linreg, 3 kmeans
  const bool needs_target = family == 1 || family == 2;

  TempDir dir;
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 200 + static_cast<int64_t>(rng.NextBelow(500));
  spec.s_feats = 1 + static_cast<size_t>(rng.NextBelow(3));
  spec.attrs = {data::AttributeSpec{4 + static_cast<int64_t>(rng.NextBelow(40)),
                                    1 + static_cast<size_t>(rng.NextBelow(3))}};
  if (rng.NextBelow(3) == 0) {  // one case in three is a multi-way join
    spec.attrs.push_back(data::AttributeSpec{
        3 + static_cast<int64_t>(rng.NextBelow(12)),
        1 + static_cast<size_t>(rng.NextBelow(2))});
  }
  spec.clusters = 2 + static_cast<int>(rng.NextBelow(3));
  spec.with_target = needs_target;
  spec.seed = 1000 + static_cast<uint64_t>(seed);
  switch (rng.NextBelow(3)) {
    case 0:
      spec.run_dist = RunDist::kUniform;
      break;
    case 1:
      spec.run_dist = RunDist::kZipf;
      spec.zipf_s = 0.7 + rng.NextDouble();
      break;
    default:
      spec.run_dist = RunDist::kSingleGiant;  // runs far longer than a chunk
      break;
  }
  const auto morsel_rows = static_cast<int64_t>(16u << rng.NextBelow(4));
  const auto batch_rows = static_cast<size_t>(32u << rng.NextBelow(3));
  // Model hyperparameters are drawn ONCE, before the strategy loop — every
  // strategy must train the identical model for the agreement check to
  // mean anything.
  const size_t k = 2 + rng.NextBelow(2);        // GMM components / k-means k
  const size_t hidden = 4 + rng.NextBelow(8);   // NN hidden width
  const bool shuffle = rng.NextBelow(2) == 1;   // NN per-epoch permutation

  BufferPool pool(256);
  auto rel_or = GenerateSynthetic(spec, &pool);
  ASSERT_TRUE(rel_or.ok()) << rel_or.status().ToString();
  const auto rel = std::move(rel_or).value();

  const std::string label = "seed=" + std::to_string(seed) + " family=" +
                            std::to_string(family) + " morsel=" +
                            std::to_string(morsel_rows);

  // ---- one family x all strategies x all schedules -------------------
  double objectives[3] = {0.0, 0.0, 0.0};
  for (int a = 0; a < 3; ++a) {
    const core::Algorithm algo = kAlgos[a];
    const std::string alabel = label + " " + core::AlgorithmName(algo);
    switch (family) {
      case 0: {
        gmm::GmmOptions opt;
        opt.num_components = k;
        opt.max_iters = 2;
        opt.cov_reg = 1e-4;  // random tiny datasets need a sturdier ridge
        opt.batch_rows = batch_rows;
        opt.morsel_rows = morsel_rows;
        opt.temp_dir = dir.str();
        objectives[a] = ExpectScheduleInvariance(
            [&](const SchedConfig& cfg, core::TrainReport* report) {
              auto o = opt;
              o.threads = cfg.threads;
              o.steal = cfg.steal;
              o.prefetch = cfg.prefetch;
              o.shards = cfg.shards;
              o.kernels = cfg.simd ? la::KernelMode::kSimd
                                   : la::KernelMode::kScalar;
              pool.Clear();
              return core::TrainGmm(rel, o, algo, &pool, report);
            },
            &gmm::GmmParams::MaxAbsDiff, alabel, 1e-9, 1e-6);
        break;
      }
      case 1: {
        nn::NnOptions opt;
        opt.hidden = {hidden};
        opt.epochs = 2;
        opt.shuffle = shuffle;
        opt.batch_rows = batch_rows;
        opt.morsel_rows = morsel_rows;
        opt.temp_dir = dir.str();
        // The mini-batch plane has no full-pass morsels; the scheduler
        // flags must be accepted and ignored, and the thread count must
        // not leak into the SGD trajectory (row/column morsels decompose
        // without reordering any accumulation) — though parallel workers
        // may redo per-group shared work, so op counts are only asserted
        // between steal settings at the SAME thread count (kConfigs pairs
        // i and i+3 share a thread count).
        nn::Mlp base;
        core::TrainReport reports[std::size(kConfigs)];
        bool rejected_shards = false;
        for (size_t i = 0; i < std::size(kConfigs); ++i) {
          auto o = opt;
          o.threads = kConfigs[i].threads;
          o.steal = kConfigs[i].steal;
          o.prefetch = kConfigs[i].prefetch;
          if (kConfigs[i].shards > 1) {
            // The mini-batch plane rejects sharding: assert the clean
            // error once, then skip the config (its report stays empty
            // and the op-count pairing below skips it too).
            if (!rejected_shards) {
              o.shards = kConfigs[i].shards;
              pool.Clear();
              auto bad = core::TrainNn(rel, o, algo, &pool, nullptr);
              EXPECT_FALSE(bad.ok()) << alabel << ": shards must be rejected";
              EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument)
                  << alabel;
              rejected_shards = true;
            }
            continue;
          }
          pool.Clear();
          auto mlp = core::TrainNn(rel, o, algo, &pool, &reports[i]);
          ASSERT_TRUE(mlp.ok())
              << alabel << ": " << mlp.status().ToString();
          if (i == 0) {
            base = std::move(mlp).value();
            objectives[a] = reports[0].final_objective;
            continue;
          }
          const std::string tag = alabel + " [" + CfgName(kConfigs[i]) + "]";
          EXPECT_EQ(reports[i].final_objective, reports[0].final_objective)
              << tag;
          EXPECT_EQ(nn::Mlp::MaxAbsDiffParams(base, mlp.value()), 0.0) << tag;
        }
        // Op counts compare only at equal thread counts (parallel workers
        // redo per-group shared work): pair every config with the first
        // earlier config sharing its thread count.
        for (size_t i = 1; i < std::size(kConfigs); ++i) {
          if (kConfigs[i].shards > 1) continue;
          for (size_t j = 0; j < i; ++j) {
            if (kConfigs[j].shards > 1 ||
                kConfigs[j].threads != kConfigs[i].threads) {
              continue;
            }
            const std::string tag =
                alabel + " [" + CfgName(kConfigs[i]) + " vs " +
                CfgName(kConfigs[j]) + "]";
            EXPECT_EQ(reports[i].ops.mults, reports[j].ops.mults) << tag;
            EXPECT_EQ(reports[i].ops.adds, reports[j].ops.adds) << tag;
            break;
          }
        }
        // --kernels=simd feeds the epoch plane strip-packed batches and
        // runs forward/backward as gemm_strip products: identical op
        // counts and page I/O at the same thread count, the same SGD
        // trajectory to tolerance — and since the strip partitions
        // (rows for the forward, columns for the W1 gradient) decompose
        // without reordering any accumulation, the simd plane itself is
        // thread-invariant bit-for-bit.
        {
          nn::Mlp simd_base;
          core::TrainReport simd_reports[2];
          const int simd_threads[2] = {kConfigs[0].threads, 4};
          for (int t = 0; t < 2; ++t) {
            auto o = opt;
            o.threads = simd_threads[t];
            o.kernels = la::KernelMode::kSimd;
            pool.Clear();
            auto mlp = core::TrainNn(rel, o, algo, &pool, &simd_reports[t]);
            ASSERT_TRUE(mlp.ok())
                << alabel << ": " << mlp.status().ToString();
            const std::string tag = alabel + " [kernels=simd threads=" +
                                    std::to_string(o.threads) + "]";
            if (t == 0) {
              EXPECT_EQ(simd_reports[0].ops.mults, reports[0].ops.mults)
                  << tag;
              EXPECT_EQ(simd_reports[0].ops.adds, reports[0].ops.adds)
                  << tag;
              EXPECT_EQ(simd_reports[0].io.pages_read,
                        reports[0].io.pages_read)
                  << tag;
              EXPECT_EQ(simd_reports[0].io.pages_written,
                        reports[0].io.pages_written)
                  << tag;
              EXPECT_NEAR(simd_reports[0].final_objective,
                          reports[0].final_objective,
                          1e-6 * std::fabs(reports[0].final_objective) +
                              1e-12)
                  << tag;
              EXPECT_LT(nn::Mlp::MaxAbsDiffParams(base, mlp.value()), 1e-4)
                  << tag;
              simd_base = std::move(mlp).value();
            } else {
              EXPECT_EQ(simd_reports[1].final_objective,
                        simd_reports[0].final_objective)
                  << tag;
              EXPECT_EQ(nn::Mlp::MaxAbsDiffParams(simd_base, mlp.value()),
                        0.0)
                  << tag;
            }
          }
        }
        break;
      }
      case 2: {
        linreg::LinregOptions opt;
        opt.batch_rows = batch_rows;
        opt.morsel_rows = morsel_rows;
        opt.temp_dir = dir.str();
        objectives[a] = ExpectScheduleInvariance(
            [&](const SchedConfig& cfg, core::TrainReport* report) {
              auto o = opt;
              o.threads = cfg.threads;
              o.steal = cfg.steal;
              o.prefetch = cfg.prefetch;
              o.shards = cfg.shards;
              o.kernels = cfg.simd ? la::KernelMode::kSimd
                                   : la::KernelMode::kScalar;
              pool.Clear();
              return core::TrainLinreg(rel, o, algo, &pool, report);
            },
            &linreg::LinregModel::MaxAbsDiff, alabel, 1e-8, 1e-5);
        break;
      }
      default: {
        kmeans::KmeansOptions opt;
        opt.num_clusters = k;
        opt.max_iters = 2;
        opt.batch_rows = batch_rows;
        opt.morsel_rows = morsel_rows;
        opt.temp_dir = dir.str();
        objectives[a] = ExpectScheduleInvariance(
            [&](const SchedConfig& cfg, core::TrainReport* report) {
              auto o = opt;
              o.threads = cfg.threads;
              o.steal = cfg.steal;
              o.prefetch = cfg.prefetch;
              o.shards = cfg.shards;
              o.kernels = cfg.simd ? la::KernelMode::kSimd
                                   : la::KernelMode::kScalar;
              pool.Clear();
              return core::TrainKmeans(rel, o, algo, &pool, report);
            },
            &kmeans::KmeansModel::MaxAbsDiff, alabel, 1e-9, 1e-6);
        break;
      }
    }
  }
  if (!::testing::Test::HasFailure()) ExpectStrategiesAgree(objectives, label);
}

// 60 seeded cases = 15 per model family; the acceptance bar is 50+.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzParityTest, ::testing::Range(0, 60));

}  // namespace
}  // namespace factorml

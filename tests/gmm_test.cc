#include <cmath>
#include <tuple>

#include "data/synthetic.h"
#include "gmm/gmm_model.h"
#include "gmm/trainers.h"
#include "gtest/gtest.h"
#include "la/ops.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::gmm {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec SmallSpec(const std::string& dir, int64_t n_s = 600,
                              int64_t n_r = 30, size_t d_s = 3,
                              size_t d_r = 4) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = n_s;
  spec.s_feats = d_s;
  spec.attrs = {data::AttributeSpec{n_r, d_r}};
  spec.clusters = 3;
  spec.seed = 21;
  return spec;
}

GmmOptions SmallOptions(const std::string& dir) {
  GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 4;
  opt.batch_rows = 64;
  opt.temp_dir = dir;
  return opt;
}

// ------------------------------------------------------------- GmmModel

TEST(GmmModelTest, InitShapes) {
  la::Matrix seeds(3, 5);
  seeds(1, 2) = 7.0;
  GmmParams p = GmmParams::Init(seeds, 2.0);
  EXPECT_EQ(p.num_components(), 3u);
  EXPECT_EQ(p.dims(), 5u);
  EXPECT_DOUBLE_EQ(p.pi[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.mu(1, 2), 7.0);
  EXPECT_DOUBLE_EQ(p.sigma[0](2, 2), 2.0);
  EXPECT_DOUBLE_EQ(p.sigma[0](0, 2), 0.0);
}

TEST(GmmModelTest, LogSumExpStableForExtremeValues) {
  const double v1[] = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(v1, 2), -1000.0 + std::log(2.0), 1e-9);
  const double v2[] = {700.0, 0.0};
  EXPECT_NEAR(LogSumExp(v2, 2), 700.0, 1e-9);
  const double v3[] = {1.0, 2.0, 3.0};
  EXPECT_NEAR(LogSumExp(v3, 3),
              std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0)), 1e-9);
}

TEST(GmmModelTest, DensityPrecisionInvertsSigma) {
  la::Matrix seeds(2, 2);
  GmmParams p = GmmParams::Init(seeds, 4.0);  // Sigma = 4I
  auto density = std::move(GmmDensity::From(p)).value();
  EXPECT_NEAR(density.precision[0](0, 0), 0.25, 1e-10);
  EXPECT_NEAR(density.precision[0](0, 1), 0.0, 1e-10);
  // log_coeff = log(pi) - 0.5 (d log 2pi + log|Sigma|), |Sigma| = 16.
  const double expect =
      std::log(0.5) - 0.5 * (2.0 * std::log(2.0 * M_PI) + std::log(16.0));
  EXPECT_NEAR(density.log_coeff[0], expect, 1e-9);
}

TEST(GmmModelTest, MaxAbsDiffDetectsChanges) {
  la::Matrix seeds(2, 2);
  GmmParams a = GmmParams::Init(seeds, 1.0);
  GmmParams b = a;
  EXPECT_DOUBLE_EQ(GmmParams::MaxAbsDiff(a, b), 0.0);
  b.mu(1, 1) += 0.25;
  EXPECT_DOUBLE_EQ(GmmParams::MaxAbsDiff(a, b), 0.25);
}

// --------------------------------------------- Exactness: M == S == F

// The paper's central correctness claim (Sec. V-B): the factorized
// decomposition is exact, so all three algorithms deliver identical
// parameters. We assert equality to floating-point-reordering tolerance.
class GmmExactnessTest
    : public ::testing::TestWithParam<std::tuple<int64_t, size_t, size_t>> {};

TEST_P(GmmExactnessTest, AllAlgorithmsAgree) {
  const auto [n_r, d_s, d_r] = GetParam();
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(
                           SmallSpec(dir.str(), 40 * n_r, n_r, d_s, d_r),
                           &pool))
                 .value();
  const GmmOptions opt = SmallOptions(dir.str());

  core::TrainReport rm, rs, rf;
  auto m = std::move(TrainGmmMaterialized(rel, opt, &pool, &rm)).value();
  auto s = std::move(TrainGmmStreaming(rel, opt, &pool, &rs)).value();
  auto f = std::move(TrainGmmFactorized(rel, opt, &pool, &rf)).value();

  EXPECT_LT(GmmParams::MaxAbsDiff(m, s), 1e-8);
  EXPECT_LT(GmmParams::MaxAbsDiff(m, f), 1e-6);
  EXPECT_NEAR(rm.final_objective, rf.final_objective,
              1e-6 * std::fabs(rm.final_objective));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GmmExactnessTest,
    ::testing::Values(std::make_tuple(20, 3, 4),
                      std::make_tuple(10, 1, 8),
                      std::make_tuple(30, 5, 2),
                      std::make_tuple(5, 2, 2)));

TEST(GmmExactnessTest, MultiwayAllAlgorithmsAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = SmallSpec(dir.str(), 500, 20, 2, 3);
  spec.attrs.push_back(data::AttributeSpec{15, 2});
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  const GmmOptions opt = SmallOptions(dir.str());

  auto m = std::move(TrainGmmMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainGmmStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(GmmParams::MaxAbsDiff(m, s), 1e-8);
  EXPECT_LT(GmmParams::MaxAbsDiff(m, f), 1e-6);
}

TEST(GmmExactnessTest, SymmetryModesAgree) {
  // F-GMM with the symmetric cross-block refinement must equal the
  // paper-literal variant (LL = UR^T is exact, not approximate) while
  // doing measurably fewer multiplications.
  TempDir dir;
  BufferPool pool(512);
  auto spec = SmallSpec(dir.str(), 800, 20, 3, 6);
  spec.attrs.push_back(data::AttributeSpec{10, 4});  // multiway stresses it
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  core::TrainReport sym_report, lit_report;
  auto sym = std::move(TrainGmmFactorized(rel, opt, &pool, &sym_report))
                 .value();
  opt.exploit_symmetry = false;
  auto literal =
      std::move(TrainGmmFactorized(rel, opt, &pool, &lit_report)).value();
  EXPECT_LT(GmmParams::MaxAbsDiff(sym, literal), 1e-7);
  EXPECT_LT(sym_report.ops.mults, lit_report.ops.mults);
}

TEST(GmmExactnessTest, RandomInitStillAgreesAcrossAlgorithms) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.init = GmmInit::kRandomRows;
  opt.seed = 77;
  auto m = std::move(TrainGmmMaterialized(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(GmmParams::MaxAbsDiff(m, f), 1e-6);
}

TEST(GmmTrainingTest, InitMethodsProduceDifferentStarts) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.max_iters = 1;
  auto spread = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr))
                    .value();
  opt.init = GmmInit::kRandomRows;
  opt.seed = 123;
  auto random = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr))
                    .value();
  EXPECT_GT(GmmParams::MaxAbsDiff(spread, random), 1e-6);
}

TEST(GmmExactnessTest, UnmatchedAttributeTuplesHandled) {
  // More attribute tuples than fact tuples: many rids have no matching
  // fact row; their cached blocks must contribute nothing.
  TempDir dir;
  BufferPool pool(512);
  auto spec = SmallSpec(dir.str(), 12, 30, 2, 3);
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.num_components = 2;
  auto m = std::move(TrainGmmMaterialized(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(GmmParams::MaxAbsDiff(m, f), 1e-6);
}

TEST(GmmExactnessTest, BatchSizeDoesNotChangeResult) {
  // EM accumulates over full passes, so the streamed batch granularity is
  // irrelevant to the trained parameters.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.batch_rows = 7;
  auto fine = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr)).value();
  opt.batch_rows = 100000;
  auto coarse =
      std::move(TrainGmmFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(GmmParams::MaxAbsDiff(fine, coarse), 1e-9);
}

TEST(GmmTrainingTest, CovRegAppearsOnDiagonal) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.max_iters = 1;
  opt.cov_reg = 0.0;
  auto plain = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr))
                   .value();
  opt.cov_reg = 0.5;
  auto ridged = std::move(TrainGmmFactorized(rel, opt, &pool, nullptr))
                    .value();
  for (size_t c = 0; c < plain.num_components(); ++c) {
    for (size_t j = 0; j < plain.dims(); ++j) {
      EXPECT_NEAR(ridged.sigma[c](j, j) - plain.sigma[c](j, j), 0.5, 1e-9);
    }
  }
}

// ------------------------------------------------------- EM properties

TEST(GmmTrainingTest, LogLikelihoodIsFiniteAndImproves) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());

  opt.max_iters = 1;
  core::TrainReport r1;
  ASSERT_TRUE(TrainGmmFactorized(rel, opt, &pool, &r1).ok());
  opt.max_iters = 6;
  core::TrainReport r6;
  ASSERT_TRUE(TrainGmmFactorized(rel, opt, &pool, &r6).ok());
  EXPECT_TRUE(std::isfinite(r1.final_objective));
  EXPECT_TRUE(std::isfinite(r6.final_objective));
  // EM is monotone in the log-likelihood.
  EXPECT_GE(r6.final_objective, r1.final_objective - 1e-9);
}

TEST(GmmTrainingTest, MixingWeightsFormDistribution) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  auto p = std::move(TrainGmmFactorized(rel, SmallOptions(dir.str()), &pool,
                                        nullptr))
               .value();
  double sum = 0.0;
  for (const double pi : p.pi) {
    EXPECT_GE(pi, 0.0);
    EXPECT_LE(pi, 1.0);
    sum += pi;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GmmTrainingTest, CovariancesStaySymmetric) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  auto p = std::move(TrainGmmFactorized(rel, SmallOptions(dir.str()), &pool,
                                        nullptr))
               .value();
  for (const auto& sigma : p.sigma) {
    for (size_t i = 0; i < sigma.rows(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_NEAR(sigma(i, j), sigma(j, i), 1e-8);
      }
    }
  }
}

TEST(GmmTrainingTest, ConvergenceToleranceStopsEarly) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.max_iters = 50;
  opt.tol = 1e-3;  // loose: should stop well before 50 iterations
  core::TrainReport report;
  ASSERT_TRUE(TrainGmmFactorized(rel, opt, &pool, &report).ok());
  EXPECT_LT(report.iterations, 50);
  EXPECT_GE(report.iterations, 2);
}

// --------------------------------------------------- Cost accounting

TEST(GmmCostTest, FactorizedDoesFewerMultiplications) {
  TempDir dir;
  BufferPool pool(1024);
  // High redundancy: rr = 100, wide R side.
  auto rel = std::move(GenerateSynthetic(
                           SmallSpec(dir.str(), 4000, 40, 2, 10), &pool))
                 .value();
  const GmmOptions opt = SmallOptions(dir.str());
  core::TrainReport rs, rf;
  ASSERT_TRUE(TrainGmmStreaming(rel, opt, &pool, &rs).ok());
  ASSERT_TRUE(TrainGmmFactorized(rel, opt, &pool, &rf).ok());
  EXPECT_LT(rf.ops.mults, rs.ops.mults);
  // With dR >> dS and rr = 100 the savings must be substantial (> 1.5x).
  EXPECT_GT(static_cast<double>(rs.ops.mults),
            1.5 * static_cast<double>(rf.ops.mults));
}

TEST(GmmCostTest, MaterializedWritesAndRereadsT) {
  TempDir dir;
  BufferPool pool(64);  // small pool so re-reads hit disk
  auto rel = std::move(GenerateSynthetic(
                           SmallSpec(dir.str(), 4000, 40, 3, 4), &pool))
                 .value();
  const GmmOptions opt = SmallOptions(dir.str());
  core::TrainReport rm, rf;
  ASSERT_TRUE(TrainGmmMaterialized(rel, opt, &pool, &rm).ok());
  ASSERT_TRUE(TrainGmmFactorized(rel, opt, &pool, &rf).ok());
  EXPECT_GT(rm.io.pages_written, 0u);   // T was materialized
  EXPECT_EQ(rf.io.pages_written, 0u);   // F never writes
  EXPECT_GT(rm.io.pages_read, rf.io.pages_read);
  EXPECT_GT(rm.materialize_seconds, 0.0);
}

TEST(GmmCostTest, ReportFieldsPopulated) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  core::TrainReport report;
  ASSERT_TRUE(
      TrainGmmStreaming(rel, SmallOptions(dir.str()), &pool, &report).ok());
  EXPECT_EQ(report.algorithm, "S-GMM");
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_EQ(report.iterations, 4);
  EXPECT_GT(report.ops.mults, 0u);
  EXPECT_FALSE(report.ToString().empty());
}

// ------------------------------------------------------------ Errors

TEST(GmmTrainingTest, MoreComponentsThanPointsFails) {
  TempDir dir;
  BufferPool pool(64);
  auto spec = SmallSpec(dir.str(), 4, 2, 2, 2);
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  GmmOptions opt = SmallOptions(dir.str());
  opt.num_components = 100;
  EXPECT_FALSE(TrainGmmFactorized(rel, opt, &pool, nullptr).ok());
}

}  // namespace
}  // namespace factorml::gmm

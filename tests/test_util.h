#ifndef FACTORML_TESTS_TEST_UTIL_H_
#define FACTORML_TESTS_TEST_UTIL_H_

#include <filesystem>
#include <random>
#include <string>

#include "common/logging.h"
#include "common/status.h"
#include "gtest/gtest.h"

namespace factorml::testing {

/// Creates a unique temporary directory for a test and removes it (and all
/// table files inside) on destruction.
class TempDir {
 public:
  TempDir() {
    std::random_device rd;
    const auto base = std::filesystem::temp_directory_path();
    path_ = base / ("factorml_test_" + std::to_string(rd()) + "_" +
                    std::to_string(rd()));
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

/// EXPECT that a factorml::Status is OK, printing the message otherwise.
#define FML_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::factorml::Status _st = (expr);                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

#define FML_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::factorml::Status _st = (expr);                  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (false)

/// Aborting variant, usable in constructors and helpers that cannot use
/// ASSERT (which returns from the enclosing function).
#define FML_CHECK_OK(expr)                                  \
  do {                                                      \
    const ::factorml::Status _st = (expr);                  \
    FML_CHECK(_st.ok()) << _st.ToString();                  \
  } while (false)

}  // namespace factorml::testing

#endif  // FACTORML_TESTS_TEST_UTIL_H_

#include <map>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "join/assemble.h"
#include "join/attribute_view.h"
#include "join/batch_plan.h"
#include "join/fk_index.h"
#include "join/join_cursor.h"
#include "join/materialize.h"
#include "join/normalized_relations.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::join {
namespace {

using factorml::testing::TempDir;
using storage::BufferPool;
using storage::RowBatch;
using storage::Schema;
using storage::Table;

/// Builds a small normalized pair: R with `n_r` tuples and dR=2 features
/// (rid, rid*10), S clustered by FK with `counts[rid]` tuples per rid and
/// dS=1 feature (the global row id); target column optional.
struct SmallData {
  SmallData(const std::string& dir, const std::vector<int64_t>& counts,
            bool with_target) {
    const int64_t n_r = static_cast<int64_t>(counts.size());
    auto r = std::move(Table::Create(dir + "/r.fml", Schema{1, 2})).value();
    for (int64_t rid = 0; rid < n_r; ++rid) {
      const double feats[] = {static_cast<double>(rid),
                              static_cast<double>(rid) * 10.0};
      FML_CHECK_OK(r.Append(&rid, feats));
    }
    FML_CHECK_OK(r.Finish());

    const size_t s_feats = with_target ? 2 : 1;
    auto s = std::move(Table::Create(dir + "/s.fml", Schema{2, s_feats}))
                 .value();
    int64_t sid = 0;
    for (int64_t rid = 0; rid < n_r; ++rid) {
      for (int64_t c = 0; c < counts[rid]; ++c) {
        const int64_t keys[] = {sid, rid};
        double feats[2];
        if (with_target) {
          feats[0] = 100.0 + static_cast<double>(sid);  // y
          feats[1] = static_cast<double>(sid);          // xS
        } else {
          feats[0] = static_cast<double>(sid);
        }
        FML_CHECK_OK(s.Append(keys, feats));
        ++sid;
      }
    }
    FML_CHECK_OK(s.Finish());

    std::vector<Table> attrs;
    attrs.push_back(std::move(r));
    rel = std::make_unique<NormalizedRelations>(std::move(s),
                                                std::move(attrs), with_target);
    FML_CHECK_OK(rel->BuildIndex(&pool));
  }

  BufferPool pool{256};
  std::unique_ptr<NormalizedRelations> rel;
};

// --------------------------------------------------------------- FkIndex

TEST(FkIndexTest, BuildsRangesForClusteredTable) {
  TempDir dir;
  SmallData data(dir.str(), {3, 0, 2, 1}, false);
  const FkIndex& idx = data.rel->fk1_index;
  EXPECT_EQ(idx.num_rids(), 4);
  EXPECT_EQ(idx.CountOf(0), 3);
  EXPECT_EQ(idx.StartOf(0), 0);
  EXPECT_EQ(idx.CountOf(1), 0);
  EXPECT_EQ(idx.CountOf(2), 2);
  EXPECT_EQ(idx.StartOf(2), 3);
  EXPECT_EQ(idx.CountOf(3), 1);
  EXPECT_EQ(idx.StartOf(3), 5);
  EXPECT_EQ(idx.total_rows(), 6);
}

TEST(FkIndexTest, RejectsUnclusteredTable) {
  TempDir dir;
  auto s = std::move(Table::Create(dir.str() + "/s.fml", Schema{2, 1}))
               .value();
  // FK sequence 1, 0 is not sorted.
  const int64_t k0[] = {0, 1};
  const int64_t k1[] = {1, 0};
  const double f = 0.0;
  FML_ASSERT_OK(s.Append(k0, &f));
  FML_ASSERT_OK(s.Append(k1, &f));
  FML_ASSERT_OK(s.Finish());
  BufferPool pool(16);
  FkIndex idx;
  EXPECT_EQ(idx.Build(s, &pool, 1, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FkIndexTest, RejectsDanglingForeignKey) {
  TempDir dir;
  auto s = std::move(Table::Create(dir.str() + "/s.fml", Schema{2, 1}))
               .value();
  const int64_t keys[] = {0, 5};  // fk 5, but only 3 rids exist
  const double f = 0.0;
  FML_ASSERT_OK(s.Append(keys, &f));
  FML_ASSERT_OK(s.Finish());
  BufferPool pool(16);
  FkIndex idx;
  EXPECT_EQ(idx.Build(s, &pool, 1, 3).code(),
            StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------ AttributeTableView

TEST(AttributeViewTest, LoadsDenseRids) {
  TempDir dir;
  SmallData data(dir.str(), {1, 1}, false);
  AttributeTableView view;
  FML_ASSERT_OK(view.Load(data.rel->attrs[0], &data.pool));
  EXPECT_EQ(view.num_rows(), 2);
  EXPECT_EQ(view.num_feats(), 2u);
  EXPECT_DOUBLE_EQ(view.FeaturesOf(1)[1], 10.0);
}

TEST(AttributeViewTest, RejectsNonDenseRids) {
  TempDir dir;
  auto r = std::move(Table::Create(dir.str() + "/r.fml", Schema{1, 1}))
               .value();
  const int64_t rid = 5;  // not starting at 0
  const double f = 0.0;
  FML_ASSERT_OK(r.Append(&rid, &f));
  FML_ASSERT_OK(r.Finish());
  BufferPool pool(16);
  AttributeTableView view;
  EXPECT_EQ(view.Load(r, &pool).code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------------------ JoinCursor

TEST(JoinCursorTest, NaturalOrderCoversAllRowsGrouped) {
  TempDir dir;
  SmallData data(dir.str(), {2, 3, 0, 1, 4}, false);
  JoinCursor cursor(data.rel.get(), &data.pool, 4);
  JoinBatch batch;
  int64_t rows_seen = 0;
  int64_t expected_next_sid = 0;
  while (cursor.Next(&batch)) {
    for (const auto& g : batch.groups) {
      EXPECT_EQ(static_cast<int64_t>(g.count),
                data.rel->fk1_index.CountOf(g.rid));
      for (size_t r = g.offset; r < g.offset + g.count; ++r) {
        // Every row in the group carries the group's fk.
        EXPECT_EQ(batch.s_rows.KeysOf(r)[1], g.rid);
        EXPECT_EQ(batch.s_rows.KeysOf(r)[0], expected_next_sid++);
      }
    }
    rows_seen += static_cast<int64_t>(batch.s_rows.num_rows);
  }
  FML_EXPECT_OK(cursor.status());
  EXPECT_EQ(rows_seen, 10);
}

TEST(JoinCursorTest, PermutedOrderVisitsEveryRowOnce) {
  TempDir dir;
  SmallData data(dir.str(), {2, 3, 1, 4, 2}, false);
  JoinCursor cursor(data.rel.get(), &data.pool, 3);
  cursor.SetRidOrder({4, 2, 0, 3, 1});
  JoinBatch batch;
  std::map<int64_t, int> seen;
  while (cursor.Next(&batch)) {
    for (size_t r = 0; r < batch.s_rows.num_rows; ++r) {
      seen[batch.s_rows.KeysOf(r)[0]]++;
    }
  }
  FML_EXPECT_OK(cursor.status());
  EXPECT_EQ(seen.size(), 12u);
  for (const auto& [sid, n] : seen) EXPECT_EQ(n, 1) << "sid " << sid;
}

TEST(JoinCursorTest, ResetReplaysStream) {
  TempDir dir;
  SmallData data(dir.str(), {3, 3}, false);
  JoinCursor cursor(data.rel.get(), &data.pool, 2);
  JoinBatch batch;
  int64_t first = 0, second = 0;
  while (cursor.Next(&batch)) first += batch.s_rows.num_rows;
  cursor.Reset();
  while (cursor.Next(&batch)) second += batch.s_rows.num_rows;
  EXPECT_EQ(first, 6);
  EXPECT_EQ(second, 6);
}

TEST(JoinCursorTest, OversizedGroupStaysWhole) {
  TempDir dir;
  SmallData data(dir.str(), {10, 1}, false);
  JoinCursor cursor(data.rel.get(), &data.pool, 4);
  JoinBatch batch;
  ASSERT_TRUE(cursor.Next(&batch));
  // First batch is the entire size-10 group (groups are never split).
  EXPECT_EQ(batch.s_rows.num_rows, 10u);
  ASSERT_EQ(batch.groups.size(), 1u);
  EXPECT_EQ(batch.groups[0].count, 10u);
}

// ----------------------------------------------------------- Materialize

TEST(MaterializeTest, JoinedRowsMatchManualJoin) {
  TempDir dir;
  SmallData data(dir.str(), {2, 1, 3}, true);
  auto t_or = MaterializeJoin(*data.rel, &data.pool, dir.str() + "/t.fml");
  ASSERT_TRUE(t_or.ok()) << t_or.status().ToString();
  Table& t = t_or.value();
  EXPECT_EQ(t.num_rows(), 6);
  // T schema: 1 key (sid), feats = [y, xS, xR0, xR1].
  EXPECT_EQ(t.schema().num_keys, 1u);
  EXPECT_EQ(t.schema().num_feats, 4u);

  AttributeTableView view;
  FML_ASSERT_OK(view.Load(data.rel->attrs[0], &data.pool));
  RowBatch batch;
  FML_ASSERT_OK(t.ReadRows(&data.pool, 0, 6, &batch));
  storage::RowBatch s_rows;
  FML_ASSERT_OK(data.rel->s.ReadRows(&data.pool, 0, 6, &s_rows));
  for (size_t r = 0; r < 6; ++r) {
    const int64_t rid = s_rows.KeysOf(r)[1];
    EXPECT_EQ(batch.KeysOf(r)[0], s_rows.KeysOf(r)[0]);
    EXPECT_DOUBLE_EQ(batch.feats(r, 0), s_rows.feats(r, 0));  // y
    EXPECT_DOUBLE_EQ(batch.feats(r, 1), s_rows.feats(r, 1));  // xS
    EXPECT_DOUBLE_EQ(batch.feats(r, 2), static_cast<double>(rid));
    EXPECT_DOUBLE_EQ(batch.feats(r, 3), static_cast<double>(rid) * 10.0);
  }
}

TEST(MaterializeTest, AssembleJoinedRowMatchesMaterialized) {
  TempDir dir;
  SmallData data(dir.str(), {1, 2, 2}, true);
  auto t = std::move(MaterializeJoin(*data.rel, &data.pool,
                                     dir.str() + "/t.fml"))
               .value();
  std::vector<AttributeTableView> views(1);
  FML_ASSERT_OK(views[0].Load(data.rel->attrs[0], &data.pool));

  JoinCursor cursor(data.rel.get(), &data.pool, 3);
  JoinBatch jb;
  std::vector<double> assembled(data.rel->total_dims());
  RowBatch t_rows;
  while (cursor.Next(&jb)) {
    for (size_t r = 0; r < jb.s_rows.num_rows; ++r) {
      AssembleJoinedRow(*data.rel, jb.s_rows, r, views, assembled.data());
      const int64_t row = jb.s_rows.start_row + static_cast<int64_t>(r);
      FML_ASSERT_OK(t.ReadRows(&data.pool, row, 1, &t_rows));
      // Materialized layout: [y | joined features].
      for (size_t j = 0; j < assembled.size(); ++j) {
        EXPECT_DOUBLE_EQ(assembled[j], t_rows.feats(0, j + 1));
      }
    }
  }
  FML_EXPECT_OK(cursor.status());
}

// ----------------------------------------------------------- BatchPlan

TEST(BatchPlanTest, NaturalOrderIsSingleRangePerBatch) {
  TempDir dir;
  SmallData data(dir.str(), {2, 2, 2, 2, 2}, false);
  const auto plan = PlanGroupBatches(data.rel->fk1_index, 4, nullptr);
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& b : plan) {
    EXPECT_EQ(b.ranges.size(), 1u);
  }
  EXPECT_EQ(plan[0].total_rows, 4);
  EXPECT_EQ(plan[2].total_rows, 2);
}

TEST(BatchPlanTest, PlanMatchesCursorBatchBoundaries) {
  TempDir dir;
  SmallData data(dir.str(), {3, 1, 4, 2, 5, 1}, false);
  const auto plan = PlanGroupBatches(data.rel->fk1_index, 5, nullptr);
  JoinCursor cursor(data.rel.get(), &data.pool, 5);
  JoinBatch batch;
  size_t i = 0;
  while (cursor.Next(&batch)) {
    if (batch.s_rows.num_rows == 0) continue;
    ASSERT_LT(i, plan.size());
    EXPECT_EQ(static_cast<int64_t>(batch.s_rows.num_rows),
              plan[i].total_rows);
    EXPECT_EQ(batch.s_rows.start_row, plan[i].ranges.front().start);
    ++i;
  }
  EXPECT_EQ(i, plan.size());
}

TEST(BatchPlanTest, PermutedPlanCoversAllRows) {
  TempDir dir;
  SmallData data(dir.str(), {2, 3, 1, 4}, false);
  const auto order = PermutedRids(4, /*seed=*/99, /*epoch=*/0);
  const auto plan = PlanGroupBatches(data.rel->fk1_index, 3, &order);
  int64_t total = 0;
  for (const auto& b : plan) {
    for (const auto& range : b.ranges) total += range.count;
  }
  EXPECT_EQ(total, 10);
}

TEST(BatchPlanTest, PermutedRidsDeterministicPerEpoch) {
  const auto a = PermutedRids(100, 7, 3);
  const auto b = PermutedRids(100, 7, 3);
  const auto c = PermutedRids(100, 7, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

// ---------------------------------------------------- NormalizedRelations

TEST(NormalizedRelationsTest, ValidateCatchesBadKeyCount) {
  TempDir dir;
  // S with only one key column cannot reference an attribute table.
  auto s = std::move(Table::Create(dir.str() + "/s.fml", Schema{1, 1}))
               .value();
  FML_ASSERT_OK(s.Finish());
  auto r = std::move(Table::Create(dir.str() + "/r.fml", Schema{1, 1}))
               .value();
  const int64_t rid = 0;
  const double f = 0.0;
  FML_ASSERT_OK(r.Append(&rid, &f));
  FML_ASSERT_OK(r.Finish());
  std::vector<Table> attrs;
  attrs.push_back(std::move(r));
  NormalizedRelations rel(std::move(s), std::move(attrs), false);
  EXPECT_FALSE(rel.Validate().ok());
}

TEST(NormalizedRelationsTest, DimsAndOffsets) {
  TempDir dir;
  SmallData data(dir.str(), {1, 1}, true);
  EXPECT_EQ(data.rel->ds(), 1u);       // target excluded
  EXPECT_EQ(data.rel->dr(0), 2u);
  EXPECT_EQ(data.rel->total_dims(), 3u);
  EXPECT_EQ(data.rel->FeatureOffset(0), 0u);
  EXPECT_EQ(data.rel->FeatureOffset(1), 1u);
  EXPECT_EQ(data.rel->FkKeyIndex(0), 1u);
}

}  // namespace
}  // namespace factorml::join

#include <cmath>

#include "common/opcount.h"
#include "core/statistics.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::core {
namespace {

using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir, size_t q = 1) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 2000;
  spec.s_feats = 3;
  spec.attrs = {data::AttributeSpec{40, 5}};
  if (q == 2) spec.attrs.push_back(data::AttributeSpec{25, 4});
  spec.seed = 77;
  return spec;
}

TEST(StatisticsTest, FactorizedMatchesDirectBinary) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(data::GenerateSynthetic(Spec(dir.str()), &pool))
                 .value();
  auto fact = std::move(ComputeJoinedFeatureStats(rel, &pool)).value();
  auto direct =
      std::move(ComputeJoinedFeatureStatsDirect(rel, &pool)).value();
  ASSERT_EQ(fact.dims(), rel.total_dims());
  ASSERT_EQ(direct.dims(), rel.total_dims());
  for (size_t j = 0; j < fact.dims(); ++j) {
    EXPECT_NEAR(fact.mean[j], direct.mean[j], 1e-9) << "col " << j;
    EXPECT_NEAR(fact.stddev[j], direct.stddev[j], 1e-9) << "col " << j;
  }
}

TEST(StatisticsTest, FactorizedMatchesDirectMultiway) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(data::GenerateSynthetic(Spec(dir.str(), 2), &pool))
                 .value();
  auto fact = std::move(ComputeJoinedFeatureStats(rel, &pool)).value();
  auto direct =
      std::move(ComputeJoinedFeatureStatsDirect(rel, &pool)).value();
  for (size_t j = 0; j < fact.dims(); ++j) {
    EXPECT_NEAR(fact.mean[j], direct.mean[j], 1e-9);
    EXPECT_NEAR(fact.stddev[j], direct.stddev[j], 1e-9);
  }
}

TEST(StatisticsTest, TargetColumnExcluded) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str());
  spec.with_target = true;
  auto rel = std::move(data::GenerateSynthetic(spec, &pool)).value();
  auto stats = std::move(ComputeJoinedFeatureStats(rel, &pool)).value();
  // Stats cover the d = dS + dR joined features, not Y.
  EXPECT_EQ(stats.dims(), rel.total_dims());
}

TEST(StatisticsTest, FactorizedTouchesFewerValues) {
  // The factorized computation's op count must be far below the direct
  // one when the tuple ratio is large (the same asymmetry the trainers
  // exploit).
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str());
  spec.s_rows = 20000;  // rr = 500
  spec.attrs = {data::AttributeSpec{40, 20}};
  auto rel = std::move(data::GenerateSynthetic(spec, &pool)).value();

  ResetGlobalOps();
  auto fact = ComputeJoinedFeatureStats(rel, &pool);
  ASSERT_TRUE(fact.ok());
  const uint64_t fact_ops = GlobalOps().Total();
  ResetGlobalOps();
  auto direct = ComputeJoinedFeatureStatsDirect(rel, &pool);
  ASSERT_TRUE(direct.ok());
  const uint64_t direct_ops = GlobalOps().Total();
  EXPECT_LT(fact_ops * 2, direct_ops);
}

TEST(StatisticsTest, HandlesUnmatchedAttributeTuples) {
  // Attribute tuples with no matching fact tuple must contribute nothing.
  TempDir dir;
  BufferPool pool(512);
  auto spec = Spec(dir.str());
  spec.s_rows = 20;  // fewer fact rows than attribute rows
  spec.attrs = {data::AttributeSpec{40, 5}};
  auto rel = std::move(data::GenerateSynthetic(spec, &pool)).value();
  auto fact = std::move(ComputeJoinedFeatureStats(rel, &pool)).value();
  auto direct =
      std::move(ComputeJoinedFeatureStatsDirect(rel, &pool)).value();
  for (size_t j = 0; j < fact.dims(); ++j) {
    EXPECT_NEAR(fact.mean[j], direct.mean[j], 1e-9);
  }
}

TEST(StatisticsTest, ConstantColumnHasZeroStddev) {
  // Build a tiny dataset by hand where an attribute feature is constant.
  TempDir dir;
  BufferPool pool(64);
  auto r = std::move(storage::Table::Create(dir.str() + "/r.fml",
                                            storage::Schema{1, 1}))
               .value();
  for (int64_t rid = 0; rid < 4; ++rid) {
    const double f = 3.25;  // constant
    FML_CHECK_OK(r.Append(&rid, &f));
  }
  FML_CHECK_OK(r.Finish());
  auto s = std::move(storage::Table::Create(dir.str() + "/s.fml",
                                            storage::Schema{2, 1}))
               .value();
  int64_t sid = 0;
  for (int64_t rid = 0; rid < 4; ++rid) {
    for (int c = 0; c < 3; ++c) {
      const int64_t keys[] = {sid, rid};
      const double f = static_cast<double>(sid++);
      FML_CHECK_OK(s.Append(keys, &f));
    }
  }
  FML_CHECK_OK(s.Finish());
  std::vector<storage::Table> attrs;
  attrs.push_back(std::move(r));
  join::NormalizedRelations rel(std::move(s), std::move(attrs), false);
  FML_CHECK_OK(rel.BuildIndex(&pool));

  auto stats = std::move(ComputeJoinedFeatureStats(rel, &pool)).value();
  EXPECT_NEAR(stats.mean[1], 3.25, 1e-12);
  EXPECT_NEAR(stats.stddev[1], 0.0, 1e-9);
  // S column: mean of 0..11 = 5.5.
  EXPECT_NEAR(stats.mean[0], 5.5, 1e-12);
}

}  // namespace
}  // namespace factorml::core

// End-to-end checks on realistically shaped (but heavily scaled down)
// datasets: the full pipeline — generate relations on disk, build the FK
// index, train with all three strategies — and the paper's qualitative
// claims about where the factorized algorithms win.

#include <cmath>

#include "core/factorml.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace factorml {
namespace {

using core::Algorithm;
using core::TrainReport;
using factorml::testing::TempDir;
using storage::BufferPool;

TEST(IntegrationTest, WalmartShapeGmmEndToEnd) {
  TempDir dir;
  BufferPool pool(2048);
  auto shape = std::move(data::FindRealShape("Walmart")).value();
  auto rel = std::move(data::GenerateRealShape(shape, dir.str(), &pool,
                                               /*scale=*/0.01, /*seed=*/3))
                 .value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.temp_dir = dir.str();

  TrainReport rm, rs, rf;
  auto m = std::move(core::TrainGmm(rel, opt, Algorithm::kMaterialized,
                                    &pool, &rm))
               .value();
  auto s = std::move(core::TrainGmm(rel, opt, Algorithm::kStreaming, &pool,
                                    &rs))
               .value();
  auto f = std::move(core::TrainGmm(rel, opt, Algorithm::kFactorized, &pool,
                                    &rf))
               .value();

  // Exactness at realistic shape.
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(m, s), 1e-7);
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(m, f), 1e-5);
  // Factorized must save multiplications (Walmart: rr ~ 180, dR = 9 > dS).
  EXPECT_LT(rf.ops.mults, rs.ops.mults);
  // Materialization writes T; the others never write.
  EXPECT_GT(rm.io.pages_written, 0u);
  EXPECT_EQ(rs.io.pages_written, 0u);
  EXPECT_EQ(rf.io.pages_written, 0u);
}

TEST(IntegrationTest, MoviesSparseShapeNnEndToEnd) {
  TempDir dir;
  BufferPool pool(2048);
  auto shape = std::move(data::FindRealShape("Movies-Sparse")).value();
  auto rel = std::move(data::GenerateRealShape(shape, dir.str(), &pool,
                                               /*scale=*/0.002, /*seed=*/3,
                                               /*with_target=*/true))
                 .value();
  nn::NnOptions opt;
  opt.hidden = {10};
  opt.epochs = 2;
  opt.temp_dir = dir.str();

  TrainReport rs, rf;
  auto s = std::move(core::TrainNn(rel, opt, Algorithm::kStreaming, &pool,
                                   &rs))
               .value();
  auto f = std::move(core::TrainNn(rel, opt, Algorithm::kFactorized, &pool,
                                   &rf))
               .value();
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(s, f), 1e-5);
  // Movies: dS = 1, dR = 21 — nearly all first-layer *forward* work is
  // reusable. The backward W1 gradient has no compute reuse (Sec. VI-A3),
  // so the total-op ratio is bounded by the forward share; require a
  // clearly material saving rather than the paper's wall-clock 4.5x
  // (which also includes I/O).
  EXPECT_LT(rf.ops.mults, rs.ops.mults);
  EXPECT_GT(static_cast<double>(rs.ops.mults),
            1.3 * static_cast<double>(rf.ops.mults));
}

TEST(IntegrationTest, Movies3wayMultiJoinEndToEnd) {
  TempDir dir;
  BufferPool pool(2048);
  auto shape = std::move(data::FindRealShape("Movies-3way")).value();
  auto rel = std::move(data::GenerateRealShape(shape, dir.str(), &pool,
                                               /*scale=*/0.002, /*seed=*/5,
                                               /*with_target=*/true))
                 .value();
  ASSERT_EQ(rel.num_joins(), 2u);

  gmm::GmmOptions gopt;
  gopt.num_components = 2;
  gopt.max_iters = 2;
  gopt.temp_dir = dir.str();
  TrainReport gs, gf;
  auto sg = std::move(core::TrainGmm(rel, gopt, Algorithm::kStreaming,
                                     &pool, &gs))
                .value();
  auto fg = std::move(core::TrainGmm(rel, gopt, Algorithm::kFactorized,
                                     &pool, &gf))
                .value();
  EXPECT_LT(gmm::GmmParams::MaxAbsDiff(sg, fg), 1e-5);
  EXPECT_LT(gf.ops.mults, gs.ops.mults);

  nn::NnOptions nopt;
  nopt.hidden = {8};
  nopt.epochs = 2;
  nopt.temp_dir = dir.str();
  TrainReport ns, nf;
  auto sn = std::move(core::TrainNn(rel, nopt, Algorithm::kStreaming, &pool,
                                    &ns))
                .value();
  auto fn = std::move(core::TrainNn(rel, nopt, Algorithm::kFactorized,
                                    &pool, &nf))
                .value();
  EXPECT_LT(nn::Mlp::MaxAbsDiffParams(sn, fn), 1e-5);
  EXPECT_LT(nf.ops.mults, ns.ops.mults);
}

TEST(IntegrationTest, MeasuredSavingsTrackCostModel) {
  // The measured multiply counts of the streaming vs factorized GMM
  // covariance pass should track the paper's analytical saving rate
  // (Sec. V-B) within a loose tolerance — the model ignores the E-step
  // and mean pass, so we only check directional agreement and magnitude.
  TempDir dir;
  BufferPool pool(2048);
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 20000;
  spec.s_feats = 5;
  spec.attrs = {data::AttributeSpec{200, 15}};
  spec.seed = 8;
  auto rel = std::move(data::GenerateSynthetic(spec, &pool)).value();

  gmm::GmmOptions opt;
  opt.num_components = 2;
  opt.max_iters = 2;
  opt.temp_dir = dir.str();
  TrainReport rs, rf;
  ASSERT_TRUE(core::TrainGmm(rel, opt, Algorithm::kStreaming, &pool, &rs)
                  .ok());
  ASSERT_TRUE(core::TrainGmm(rel, opt, Algorithm::kFactorized, &pool, &rf)
                  .ok());
  const double measured_saving =
      1.0 - static_cast<double>(rf.ops.mults) /
                static_cast<double>(rs.ops.mults);
  const double model_saving =
      costmodel::GmmSigmaSavingRate(20000, 200, 5, 15);
  EXPECT_GT(measured_saving, 0.2);
  EXPECT_LT(std::fabs(measured_saving - model_saving), 0.35)
      << "measured=" << measured_saving << " model=" << model_saving;
}

TEST(IntegrationTest, FactorizedGainGrowsWithTupleRatio) {
  // Fig. 3(a) in miniature: the multiply-saving ratio of F-GMM over S-GMM
  // must increase monotonically with rr.
  TempDir dir;
  BufferPool pool(2048);
  double prev_ratio = 1.0;
  for (const int64_t rr : {5, 50, 500}) {
    data::SyntheticSpec spec;
    spec.dir = dir.str();
    spec.name = "rr" + std::to_string(rr);
    spec.s_rows = 100 * rr;
    spec.s_feats = 5;
    spec.attrs = {data::AttributeSpec{100, 15}};
    spec.seed = 9;
    auto rel = std::move(data::GenerateSynthetic(spec, &pool)).value();
    gmm::GmmOptions opt;
    opt.num_components = 2;
    opt.max_iters = 1;
    opt.temp_dir = dir.str();
    TrainReport rs, rf;
    ASSERT_TRUE(core::TrainGmm(rel, opt, Algorithm::kStreaming, &pool, &rs)
                    .ok());
    ASSERT_TRUE(core::TrainGmm(rel, opt, Algorithm::kFactorized, &pool, &rf)
                    .ok());
    const double ratio = static_cast<double>(rs.ops.mults) /
                         static_cast<double>(rf.ops.mults);
    EXPECT_GT(ratio, prev_ratio) << "rr=" << rr;
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace factorml

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "join/attribute_view.h"
#include "join/materialize.h"
#include "la/ops.h"
#include "nn/activation.h"
#include "nn/backprop.h"
#include "nn/mlp.h"
#include "nn/trainers.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace factorml::nn {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using la::Matrix;
using storage::BufferPool;

data::SyntheticSpec SmallSpec(const std::string& dir, int64_t n_s = 600,
                              int64_t n_r = 30, size_t d_s = 3,
                              size_t d_r = 4) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = n_s;
  spec.s_feats = d_s;
  spec.attrs = {data::AttributeSpec{n_r, d_r}};
  spec.with_target = true;
  spec.seed = 33;
  return spec;
}

NnOptions SmallOptions(const std::string& dir) {
  NnOptions opt;
  opt.hidden = {8};
  opt.epochs = 3;
  opt.learning_rate = 0.02;
  opt.batch_rows = 64;
  opt.temp_dir = dir;
  return opt;
}

// ------------------------------------------------------------ Activation

TEST(ActivationTest, SigmoidValuesAndGrad) {
  Matrix a(1, 3);
  a(0, 0) = 0.0;
  a(0, 1) = 100.0;
  a(0, 2) = -100.0;
  Matrix h, g;
  ApplyActivation(Activation::kSigmoid, a, &h);
  EXPECT_NEAR(h(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(h(0, 1), 1.0, 1e-9);
  EXPECT_NEAR(h(0, 2), 0.0, 1e-9);
  ActivationGrad(Activation::kSigmoid, a, h, &g);
  EXPECT_NEAR(g(0, 0), 0.25, 1e-12);
}

TEST(ActivationTest, TanhReluIdentity) {
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = -2.0;
  Matrix h;
  ApplyActivation(Activation::kTanh, a, &h);
  EXPECT_NEAR(h(0, 0), std::tanh(1.0), 1e-12);
  ApplyActivation(Activation::kRelu, a, &h);
  EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(h(0, 1), 0.0);
  ApplyActivation(Activation::kIdentity, a, &h);
  EXPECT_DOUBLE_EQ(h(0, 1), -2.0);
}

TEST(ActivationTest, OnlyIdentityIsAdditive) {
  // Sec. VI-A2: exact cross-layer sharing needs f(x+y) = f(x)+f(y).
  EXPECT_TRUE(IsAdditive(Activation::kIdentity));
  EXPECT_FALSE(IsAdditive(Activation::kSigmoid));
  EXPECT_FALSE(IsAdditive(Activation::kTanh));
  EXPECT_FALSE(IsAdditive(Activation::kRelu));
}

TEST(ActivationTest, GradMatchesNumericalDerivative) {
  for (const auto act : {Activation::kSigmoid, Activation::kTanh,
                         Activation::kIdentity}) {
    Matrix a(1, 1);
    a(0, 0) = 0.37;
    Matrix h, g;
    ApplyActivation(act, a, &h);
    ActivationGrad(act, a, h, &g);
    const double eps = 1e-6;
    Matrix ap(1, 1), am(1, 1), hp, hm;
    ap(0, 0) = 0.37 + eps;
    am(0, 0) = 0.37 - eps;
    ApplyActivation(act, ap, &hp);
    ApplyActivation(act, am, &hm);
    const double numeric = (hp(0, 0) - hm(0, 0)) / (2.0 * eps);
    EXPECT_NEAR(g(0, 0), numeric, 1e-6) << ActivationName(act);
  }
}

// ------------------------------------------------------------------- Mlp

TEST(MlpTest, InitShapesAndDeterminism) {
  Mlp a = Mlp::Init(6, {4, 3}, Activation::kSigmoid, 5);
  ASSERT_EQ(a.num_weight_layers(), 3u);
  EXPECT_EQ(a.w[0].rows(), 4u);
  EXPECT_EQ(a.w[0].cols(), 6u);
  EXPECT_EQ(a.w[1].rows(), 3u);
  EXPECT_EQ(a.w[2].rows(), 1u);
  EXPECT_EQ(a.first_hidden_units(), 4u);
  Mlp b = Mlp::Init(6, {4, 3}, Activation::kSigmoid, 5);
  EXPECT_DOUBLE_EQ(Mlp::MaxAbsDiffParams(a, b), 0.0);
  Mlp c = Mlp::Init(6, {4, 3}, Activation::kSigmoid, 6);
  EXPECT_GT(Mlp::MaxAbsDiffParams(a, c), 0.0);
}

TEST(MlpTest, ForwardMatchesManualComputation) {
  // 2 inputs -> 1 hidden sigmoid unit -> linear output.
  Mlp mlp = Mlp::Init(2, {1}, Activation::kSigmoid, 1);
  mlp.w[0](0, 0) = 0.5;
  mlp.w[0](0, 1) = -0.25;
  mlp.b[0][0] = 0.1;
  mlp.w[1](0, 0) = 2.0;
  mlp.b[1][0] = -1.0;
  Matrix x(1, 2);
  x(0, 0) = 1.0;
  x(0, 1) = 2.0;
  Matrix out;
  mlp.Forward(x, &out);
  const double a1 = 0.5 * 1.0 - 0.25 * 2.0 + 0.1;
  const double h1 = 1.0 / (1.0 + std::exp(-a1));
  EXPECT_NEAR(out(0, 0), 2.0 * h1 - 1.0, 1e-12);
}

TEST(MlpTest, HalfMseOfPerfectPredictionIsZero) {
  Mlp mlp = Mlp::Init(1, {2}, Activation::kIdentity, 2);
  Matrix x(3, 1);
  x(0, 0) = 0.5;
  x(1, 0) = -1.0;
  x(2, 0) = 2.0;
  Matrix out;
  mlp.Forward(x, &out);
  std::vector<double> y = {out(0, 0), out(1, 0), out(2, 0)};
  EXPECT_NEAR(mlp.HalfMse(x, y), 0.0, 1e-15);
}

// -------------------------------------------------- Gradient correctness

// Numerical gradient check of the full BP step: perturb each parameter,
// verify the analytic update direction matches -lr * dE/dtheta.
TEST(BackpropTest, UpdateMatchesNumericalGradient) {
  const size_t d = 3, nh = 4, b = 5;
  Mlp mlp = Mlp::Init(d, {nh}, Activation::kTanh, 9);
  Matrix x(b, d);
  std::vector<double> y(b);
  Rng rng(31);
  for (size_t r = 0; r < b; ++r) {
    for (size_t j = 0; j < d; ++j) x(r, j) = rng.NextGaussian();
    y[r] = rng.NextGaussian();
  }
  const double lr = 0.1;

  // Loss as a function of the network: E = 1/(2b) sum (o - y)^2.
  auto loss = [&](const Mlp& net) {
    Matrix out;
    net.Forward(x, &out);
    double sse = 0.0;
    for (size_t r = 0; r < b; ++r) {
      const double e = out(r, 0) - y[r];
      sse += e * e;
    }
    return sse / (2.0 * b);
  };

  // One analytic step.
  Mlp stepped = mlp;
  internal::BackpropEngine engine(&stepped, lr);
  Matrix a1, delta1, grad0;
  la::GemmNT(x, stepped.w[0], &a1, false);
  la::AddRowVector(stepped.b[0].data(), &a1);
  engine.Step(a1, y.data(), &delta1);
  la::GemmTN(delta1, x, &grad0, false);
  internal::ApplyGradient(&stepped.w[0], grad0, lr);

  // Numerical gradient for a sample of parameters in every layer.
  const double eps = 1e-6;
  for (size_t layer = 0; layer < mlp.w.size(); ++layer) {
    for (size_t idx : {size_t{0}, mlp.w[layer].size() / 2}) {
      Mlp plus = mlp, minus = mlp;
      plus.w[layer].data()[idx] += eps;
      minus.w[layer].data()[idx] -= eps;
      const double g = (loss(plus) - loss(minus)) / (2.0 * eps);
      const double applied =
          mlp.w[layer].data()[idx] - stepped.w[layer].data()[idx];
      EXPECT_NEAR(applied, lr * g, 1e-6)
          << "layer " << layer << " idx " << idx;
    }
    // And one bias per layer.
    Mlp plus = mlp, minus = mlp;
    plus.b[layer][0] += eps;
    minus.b[layer][0] -= eps;
    const double g = (loss(plus) - loss(minus)) / (2.0 * eps);
    const double applied = mlp.b[layer][0] - stepped.b[layer][0];
    EXPECT_NEAR(applied, lr * g, 1e-6) << "bias layer " << layer;
  }
}

// --------------------------------------------- Exactness: M == S == F

class NnExactnessTest
    : public ::testing::TestWithParam<std::tuple<Activation, size_t>> {};

TEST_P(NnExactnessTest, AllAlgorithmsAgree) {
  const auto [act, nh] = GetParam();
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.activation = act;
  opt.hidden = {nh};

  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainNnStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, s), 1e-9);
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    ActivationsAndWidths, NnExactnessTest,
    ::testing::Combine(::testing::Values(Activation::kSigmoid,
                                         Activation::kTanh,
                                         Activation::kRelu,
                                         Activation::kIdentity),
                       ::testing::Values(4, 16)));

TEST(NnExactnessTest, MultiwayAllAlgorithmsAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = SmallSpec(dir.str(), 500, 20, 2, 3);
  spec.attrs.push_back(data::AttributeSpec{12, 2});
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  const NnOptions opt = SmallOptions(dir.str());

  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainNnStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, s), 1e-9);
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(NnExactnessTest, ShuffledEpochsStillAgree) {
  // The paper's SGD variant: R's keys are permuted per epoch; all three
  // algorithms share the permutation so updates stay identical.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.shuffle = true;

  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainNnStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, s), 1e-9);
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(NnExactnessTest, GroupedBackwardComputesSameGradient) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  auto base = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  opt.grouped_backward = true;
  core::TrainReport grouped_report;
  auto grouped =
      std::move(TrainNnFactorized(rel, opt, &pool, &grouped_report)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(base, grouped), 1e-7);
}

TEST(NnExactnessTest, DeeperNetworksAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden = {6, 5};
  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(NnExactnessTest, DropoutPreservesAlgorithmAgreement) {
  // The paper notes Dropout applied after activation is compatible with
  // the factorization (Sec. VI-A); all three trainers draw masks from the
  // same seeded stream over the same batch sequence.
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden = {10, 6};
  opt.hidden_dropout = 0.3;

  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainNnStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, s), 1e-9);
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(NnTrainingTest, DropoutChangesTrainingTrajectory) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  auto plain = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  opt.hidden_dropout = 0.5;
  auto dropped =
      std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_GT(Mlp::MaxAbsDiffParams(plain, dropped), 1e-6);
}

TEST(NnTrainingTest, DropoutStillLearns) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(SmallSpec(dir.str(), 2000, 40),
                                         &pool))
                 .value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden_dropout = 0.2;
  opt.epochs = 1;
  core::TrainReport r1;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &r1).ok());
  opt.epochs = 10;
  core::TrainReport r10;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &r10).ok());
  EXPECT_LT(r10.final_objective, r1.final_objective);
}

TEST(BackpropTest, DropoutGradientMatchesNumericalGradient) {
  // With a fixed mask stream, the dropped network is a deterministic
  // function; verify the masked backward pass against finite differences
  // of a loss that applies the same masks.
  const size_t d = 3, nh = 5, b = 4;
  Mlp mlp = Mlp::Init(d, {nh}, Activation::kSigmoid, 13);
  Matrix x(b, d);
  std::vector<double> y(b);
  Rng data_rng(41);
  for (size_t r = 0; r < b; ++r) {
    for (size_t j = 0; j < d; ++j) x(r, j) = data_rng.NextGaussian();
    y[r] = data_rng.NextGaussian();
  }
  const double lr = 0.05;
  const double rate = 0.4;
  const uint64_t mask_seed = 1234;

  // Reconstruct the exact mask the engine will draw (same Rng stream).
  Matrix mask(b, nh);
  {
    Rng mask_rng(mask_seed);
    const double keep = 1.0 / (1.0 - rate);
    for (size_t i = 0; i < mask.size(); ++i) {
      mask.data()[i] = mask_rng.NextDouble() >= rate ? keep : 0.0;
    }
  }
  auto loss = [&](const Mlp& net) {
    // Forward with the fixed mask applied after the hidden activation.
    Matrix a1, h, out;
    la::GemmNT(x, net.w[0], &a1, false);
    la::AddRowVector(net.b[0].data(), &a1);
    ApplyActivation(net.activation, a1, &h);
    for (size_t i = 0; i < h.size(); ++i) h.data()[i] *= mask.data()[i];
    la::GemmNT(h, net.w[1], &out, false);
    la::AddRowVector(net.b[1].data(), &out);
    double sse = 0.0;
    for (size_t r = 0; r < b; ++r) {
      const double e = out(r, 0) - y[r];
      sse += e * e;
    }
    return sse / (2.0 * b);
  };

  Mlp stepped = mlp;
  internal::BackpropEngine engine(&stepped, lr);
  engine.EnableDropout(rate, mask_seed);
  Matrix a1, delta1, grad0;
  la::GemmNT(x, stepped.w[0], &a1, false);
  la::AddRowVector(stepped.b[0].data(), &a1);
  engine.Step(a1, y.data(), &delta1);
  la::GemmTN(delta1, x, &grad0, false);
  internal::ApplyGradient(&stepped.w[0], grad0, lr);

  const double eps = 1e-6;
  for (size_t layer = 0; layer < mlp.w.size(); ++layer) {
    for (size_t idx : {size_t{0}, mlp.w[layer].size() - 1}) {
      Mlp plus = mlp, minus = mlp;
      plus.w[layer].data()[idx] += eps;
      minus.w[layer].data()[idx] -= eps;
      const double g = (loss(plus) - loss(minus)) / (2.0 * eps);
      const double applied =
          mlp.w[layer].data()[idx] - stepped.w[layer].data()[idx];
      EXPECT_NEAR(applied, lr * g, 1e-6)
          << "layer " << layer << " idx " << idx;
    }
  }
}

TEST(NnExactnessTest, MomentumAndWeightDecayPreserveAgreement) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.momentum = 0.9;
  opt.weight_decay = 1e-4;

  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto s = std::move(TrainNnStreaming(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, s), 1e-9);
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

TEST(NnTrainingTest, MomentumChangesTrajectory) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  auto plain = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  opt.momentum = 0.9;
  auto mom = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_GT(Mlp::MaxAbsDiffParams(plain, mom), 1e-6);
}

TEST(NnTrainingTest, WeightDecayShrinksParameterNorm) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(SmallSpec(dir.str(), 2000, 40),
                                         &pool))
                 .value();
  NnOptions opt = SmallOptions(dir.str());
  opt.epochs = 8;
  auto plain = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  opt.weight_decay = 0.05;
  auto decayed =
      std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  auto norm = [](const Mlp& net) {
    double s = 0.0;
    for (const auto& w : net.w) {
      for (size_t i = 0; i < w.size(); ++i) s += w.data()[i] * w.data()[i];
    }
    return s;
  };
  EXPECT_LT(norm(decayed), norm(plain));
}

TEST(NnTrainingTest, MomentumAcceleratesOnSmoothProblem) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(SmallSpec(dir.str(), 3000, 60),
                                         &pool))
                 .value();
  NnOptions opt = SmallOptions(dir.str());
  opt.epochs = 6;
  opt.learning_rate = 0.01;
  core::TrainReport plain, mom;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &plain).ok());
  opt.momentum = 0.9;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &mom).ok());
  EXPECT_LT(mom.final_objective, plain.final_objective);
}

// ---------------------------------------------------- Training behavior

TEST(NnTrainingTest, LossDecreasesOverEpochs) {
  TempDir dir;
  BufferPool pool(512);
  auto rel = std::move(GenerateSynthetic(SmallSpec(dir.str(), 2000, 40),
                                         &pool))
                 .value();
  NnOptions opt = SmallOptions(dir.str());
  opt.epochs = 1;
  core::TrainReport r1;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &r1).ok());
  opt.epochs = 10;
  core::TrainReport r10;
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &r10).ok());
  EXPECT_LT(r10.final_objective, r1.final_objective);
}

TEST(NnTrainingTest, RequiresTarget) {
  TempDir dir;
  BufferPool pool(256);
  auto spec = SmallSpec(dir.str());
  spec.with_target = false;
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  EXPECT_FALSE(
      TrainNnFactorized(rel, SmallOptions(dir.str()), &pool, nullptr).ok());
}

TEST(NnTrainingTest, RequiresHiddenLayer) {
  TempDir dir;
  BufferPool pool(256);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden.clear();
  EXPECT_FALSE(TrainNnFactorized(rel, opt, &pool, nullptr).ok());
}

TEST(NnExactnessTest, FullBatchAndTinyBatchesBothAgree) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(SmallSpec(dir.str()), &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  // Full-batch gradient descent: one update per epoch.
  opt.batch_rows = 1u << 20;
  auto m_full =
      std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto f_full =
      std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m_full, f_full), 1e-6);
  // Per-rid-group updates: the finest batch granularity.
  opt.batch_rows = 1;
  auto m_tiny =
      std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto f_tiny =
      std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m_tiny, f_tiny), 1e-6);
  // Different batch sizes must give different SGD trajectories.
  EXPECT_GT(Mlp::MaxAbsDiffParams(m_full, m_tiny), 1e-9);
}

TEST(NnExactnessTest, UnmatchedAttributeTuplesHandled) {
  TempDir dir;
  BufferPool pool(512);
  auto spec = SmallSpec(dir.str(), 15, 40, 2, 3);
  auto rel = std::move(GenerateSynthetic(spec, &pool)).value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden = {4};
  auto m = std::move(TrainNnMaterialized(rel, opt, &pool, nullptr)).value();
  auto f = std::move(TrainNnFactorized(rel, opt, &pool, nullptr)).value();
  EXPECT_LT(Mlp::MaxAbsDiffParams(m, f), 1e-6);
}

// --------------------------------------------------- Cost accounting

TEST(NnCostTest, FactorizedDoesFewerMultiplications) {
  TempDir dir;
  BufferPool pool(1024);
  // rr = 100 with a wide R side: the first-layer reuse must pay off.
  auto rel = std::move(GenerateSynthetic(
                           SmallSpec(dir.str(), 4000, 40, 2, 12), &pool))
                 .value();
  NnOptions opt = SmallOptions(dir.str());
  opt.hidden = {16};
  core::TrainReport rs, rf;
  ASSERT_TRUE(TrainNnStreaming(rel, opt, &pool, &rs).ok());
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &rf).ok());
  EXPECT_LT(rf.ops.mults, rs.ops.mults);
}

TEST(NnCostTest, MaterializedPaysWriteIo) {
  TempDir dir;
  BufferPool pool(64);
  auto rel = std::move(GenerateSynthetic(
                           SmallSpec(dir.str(), 4000, 40, 3, 4), &pool))
                 .value();
  const NnOptions opt = SmallOptions(dir.str());
  core::TrainReport rm, rf;
  ASSERT_TRUE(TrainNnMaterialized(rel, opt, &pool, &rm).ok());
  ASSERT_TRUE(TrainNnFactorized(rel, opt, &pool, &rf).ok());
  EXPECT_GT(rm.io.pages_written, 0u);
  EXPECT_EQ(rf.io.pages_written, 0u);
  EXPECT_EQ(rm.algorithm, "M-NN");
  EXPECT_EQ(rf.algorithm, "F-NN");
}

}  // namespace
}  // namespace factorml::nn

#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "core/factorml.h"
#include "gtest/gtest.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page_cursor.h"
#include "storage/paged_file.h"
#include "storage/table.h"
#include "test_util.h"

namespace factorml::storage {
namespace {

using factorml::testing::TempDir;

// -------------------------------------------------------------- PagedFile

TEST(PagedFileTest, AppendAndReadBack) {
  TempDir dir;
  auto file_or = PagedFile::Create(dir.str() + "/f.pg");
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();

  std::vector<char> page(kPageSize, 'a');
  auto p0 = file->AppendPage(page.data());
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);
  page.assign(kPageSize, 'b');
  auto p1 = file->AppendPage(page.data());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value(), 1u);
  EXPECT_EQ(file->num_pages(), 2u);

  std::vector<char> buf(kPageSize);
  FML_ASSERT_OK(file->ReadPage(0, buf.data()));
  EXPECT_EQ(buf[10], 'a');
  FML_ASSERT_OK(file->ReadPage(1, buf.data()));
  EXPECT_EQ(buf[10], 'b');
}

TEST(PagedFileTest, ReadPastEndFails) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  std::vector<char> buf(kPageSize);
  EXPECT_EQ(file->ReadPage(0, buf.data()).code(), StatusCode::kOutOfRange);
}

TEST(PagedFileTest, OpenMissingFileFails) {
  auto r = PagedFile::Open("/nonexistent/path/zzz.pg");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(PagedFileTest, ReadOnlyRejectsWrites) {
  TempDir dir;
  const std::string path = dir.str() + "/f.pg";
  {
    auto file = std::move(PagedFile::Create(path)).value();
    std::vector<char> page(kPageSize, 'x');
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
    FML_ASSERT_OK(file->Flush());
  }
  auto ro = std::move(PagedFile::Open(path)).value();
  std::vector<char> page(kPageSize, 'y');
  EXPECT_EQ(ro->AppendPage(page.data()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ro->WritePage(0, page.data()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PagedFileTest, IoStatsCountTransfers) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  const IoStats before = GlobalIo();
  std::vector<char> page(kPageSize, 'z');
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  FML_ASSERT_OK(file->ReadPage(0, page.data()));
  const IoStats delta = GlobalIo() - before;
  EXPECT_EQ(delta.pages_written, 2u);
  EXPECT_EQ(delta.pages_read, 1u);
  EXPECT_EQ(delta.bytes_written(), 2 * kPageSize);
}

TEST(PagedFileTest, UniqueIdsAcrossFiles) {
  TempDir dir;
  auto a = std::move(PagedFile::Create(dir.str() + "/a.pg")).value();
  auto b = std::move(PagedFile::Create(dir.str() + "/b.pg")).value();
  EXPECT_NE(a->id(), b->id());
}

// ------------------------------------------------------------ BufferPool

TEST(BufferPoolTest, CachesRepeatedReads) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  std::vector<char> page(kPageSize, 'q');
  ASSERT_TRUE(file->AppendPage(page.data()).ok());

  BufferPool pool(4);
  const IoStats before = GlobalIo();
  auto r1 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r1.ok());
  auto r2 = pool.GetPage(file.get(), 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value(), r2.value());  // same frame
  const IoStats delta = GlobalIo() - before;
  EXPECT_EQ(delta.pages_read, 1u);
  EXPECT_EQ(delta.pool_hits, 1u);
  EXPECT_EQ(delta.pool_misses, 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  std::vector<char> page(kPageSize);
  for (int i = 0; i < 4; ++i) {
    page.assign(kPageSize, static_cast<char>('a' + i));
    ASSERT_TRUE(file->AppendPage(page.data()).ok());
  }
  BufferPool pool(2);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());
  // Touch page 0 so page 1 becomes the LRU victim.
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  ASSERT_TRUE(pool.GetPage(file.get(), 2).ok());  // evicts 1
  const IoStats before = GlobalIo();
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());  // still cached
  EXPECT_EQ((GlobalIo() - before).pages_read, 0u);
  const IoStats before2 = GlobalIo();
  ASSERT_TRUE(pool.GetPage(file.get(), 1).ok());  // was evicted
  EXPECT_EQ((GlobalIo() - before2).pages_read, 1u);
}

TEST(BufferPoolTest, ClearDropsFrames) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  std::vector<char> page(kPageSize, 'm');
  ASSERT_TRUE(file->AppendPage(page.data()).ok());
  BufferPool pool(2);
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  EXPECT_EQ(pool.cached_pages(), 1u);
  pool.Clear();
  EXPECT_EQ(pool.cached_pages(), 0u);
  const IoStats before = GlobalIo();
  ASSERT_TRUE(pool.GetPage(file.get(), 0).ok());
  EXPECT_EQ((GlobalIo() - before).pages_read, 1u);
}

TEST(PagedFileTest, SimulatedLatencySlowsTransfers) {
  TempDir dir;
  auto file = std::move(PagedFile::Create(dir.str() + "/f.pg")).value();
  std::vector<char> page(kPageSize, 'l');
  ASSERT_TRUE(file->AppendPage(page.data()).ok());

  SetSimulatedIoLatencyMicros(2000, 0);  // 2ms per read
  EXPECT_EQ(SimulatedReadLatencyMicros(), 2000u);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(file->ReadPage(0, page.data()).ok());
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  SetSimulatedIoLatencyMicros(0, 0);
  EXPECT_GE(ms, 9.0);  // 5 reads x 2ms, minus scheduler slack
}

// ----------------------------------------------------------------- Table

TEST(TableTest, SchemaGeometry) {
  Schema s{2, 3};
  EXPECT_EQ(s.RowBytes(), 40u);
  EXPECT_EQ(s.RowsPerPage(), (kPageSize - 8) / 40);
}

TEST(TableTest, AppendFinishOpenScan) {
  TempDir dir;
  const std::string path = dir.str() + "/t.fml";
  const Schema schema{1, 2};
  const int64_t n = 1000;
  {
    auto t = std::move(Table::Create(path, schema)).value();
    for (int64_t i = 0; i < n; ++i) {
      const double feats[] = {static_cast<double>(i) * 0.5,
                              static_cast<double>(-i)};
      FML_ASSERT_OK(t.Append(&i, feats));
    }
    FML_ASSERT_OK(t.Finish());
    EXPECT_EQ(t.num_rows(), n);
  }
  auto t = std::move(Table::Open(path)).value();
  EXPECT_EQ(t.num_rows(), n);
  EXPECT_EQ(t.schema().num_keys, 1u);
  EXPECT_EQ(t.schema().num_feats, 2u);

  BufferPool pool(64);
  TableScanner scanner(&t, &pool, 128);
  RowBatch batch;
  int64_t seen = 0;
  while (scanner.Next(&batch)) {
    for (size_t r = 0; r < batch.num_rows; ++r) {
      const int64_t row = batch.start_row + static_cast<int64_t>(r);
      EXPECT_EQ(batch.KeysOf(r)[0], row);
      EXPECT_DOUBLE_EQ(batch.feats(r, 0), row * 0.5);
      EXPECT_DOUBLE_EQ(batch.feats(r, 1), -static_cast<double>(row));
      ++seen;
    }
  }
  FML_EXPECT_OK(scanner.status());
  EXPECT_EQ(seen, n);
}

TEST(TableTest, ReadRowsRandomAccessAcrossPageBoundaries) {
  TempDir dir;
  const Schema schema{1, 1};
  auto t = std::move(Table::Create(dir.str() + "/t.fml", schema)).value();
  const int64_t n = 3000;  // several pages
  for (int64_t i = 0; i < n; ++i) {
    const double f = static_cast<double>(i * i % 997);
    FML_ASSERT_OK(t.Append(&i, &f));
  }
  FML_ASSERT_OK(t.Finish());

  BufferPool pool(64);
  RowBatch batch;
  // A range that straddles page boundaries.
  const size_t rpp = schema.RowsPerPage();
  const int64_t start = static_cast<int64_t>(rpp) - 3;
  FML_ASSERT_OK(t.ReadRows(&pool, start, rpp + 7, &batch));
  EXPECT_EQ(batch.num_rows, rpp + 7);
  for (size_t r = 0; r < batch.num_rows; ++r) {
    const int64_t row = start + static_cast<int64_t>(r);
    EXPECT_EQ(batch.KeysOf(r)[0], row);
    EXPECT_DOUBLE_EQ(batch.feats(r, 0), static_cast<double>(row * row % 997));
  }
}

TEST(TableTest, ReadRowsOutOfBoundsFails) {
  TempDir dir;
  auto t = std::move(Table::Create(dir.str() + "/t.fml", Schema{1, 1}))
               .value();
  const int64_t k = 0;
  const double f = 0.0;
  FML_ASSERT_OK(t.Append(&k, &f));
  FML_ASSERT_OK(t.Finish());
  BufferPool pool(4);
  RowBatch batch;
  EXPECT_EQ(t.ReadRows(&pool, 0, 2, &batch).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.ReadRows(&pool, -1, 1, &batch).code(), StatusCode::kOutOfRange);
}

TEST(TableTest, AppendAfterFinishFails) {
  TempDir dir;
  auto t = std::move(Table::Create(dir.str() + "/t.fml", Schema{1, 1}))
               .value();
  const int64_t k = 0;
  const double f = 1.0;
  FML_ASSERT_OK(t.Append(&k, &f));
  FML_ASSERT_OK(t.Finish());
  EXPECT_EQ(t.Append(&k, &f).code(), StatusCode::kFailedPrecondition);
}

TEST(TableTest, OpenRejectsNonTableFile) {
  TempDir dir;
  const std::string path = dir.str() + "/junk.pg";
  {
    auto f = std::move(PagedFile::Create(path)).value();
    std::vector<char> page(kPageSize, 7);
    ASSERT_TRUE(f->AppendPage(page.data()).ok());
    FML_ASSERT_OK(f->Flush());
  }
  auto r = Table::Open(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, RowTooLargeRejected) {
  TempDir dir;
  auto r = Table::Create(dir.str() + "/t.fml", Schema{1, 2000});
  EXPECT_FALSE(r.ok());
}

TEST(TableTest, EmptyTableScansNothing) {
  TempDir dir;
  auto t = std::move(Table::Create(dir.str() + "/t.fml", Schema{1, 1}))
               .value();
  FML_ASSERT_OK(t.Finish());
  BufferPool pool(4);
  TableScanner scanner(&t, &pool, 16);
  RowBatch batch;
  EXPECT_FALSE(scanner.Next(&batch));
  FML_EXPECT_OK(scanner.status());
}

TEST(TableTest, ScannerResetRestartsScan) {
  TempDir dir;
  auto t = std::move(Table::Create(dir.str() + "/t.fml", Schema{1, 1}))
               .value();
  for (int64_t i = 0; i < 10; ++i) {
    const double f = static_cast<double>(i);
    FML_ASSERT_OK(t.Append(&i, &f));
  }
  FML_ASSERT_OK(t.Finish());
  BufferPool pool(4);
  TableScanner scanner(&t, &pool, 4);
  RowBatch batch;
  int count1 = 0;
  while (scanner.Next(&batch)) count1 += static_cast<int>(batch.num_rows);
  scanner.Reset();
  int count2 = 0;
  while (scanner.Next(&batch)) count2 += static_cast<int>(batch.num_rows);
  EXPECT_EQ(count1, 10);
  EXPECT_EQ(count2, 10);
}

TEST(TableTest, NumDataPagesExcludesHeader) {
  TempDir dir;
  const Schema schema{1, 1};
  auto t = std::move(Table::Create(dir.str() + "/t.fml", schema)).value();
  const int64_t n = static_cast<int64_t>(schema.RowsPerPage()) * 2 + 1;
  for (int64_t i = 0; i < n; ++i) {
    const double f = 0.0;
    FML_ASSERT_OK(t.Append(&i, &f));
  }
  FML_ASSERT_OK(t.Finish());
  EXPECT_EQ(t.num_data_pages(), 3u);
}

// ----------------------------------------- PageCursor / Prefetcher plane

namespace {

/// A multi-page table with self-describing rows: key = row id, feature =
/// f(row), so any decode error is caught at any access order.
Table MakeWideTable(const std::string& path, int64_t rows) {
  auto t = std::move(Table::Create(path, Schema{1, 4})).value();
  for (int64_t i = 0; i < rows; ++i) {
    const double feats[] = {static_cast<double>(i) * 0.25,
                            static_cast<double>(i % 101),
                            static_cast<double>(-i),
                            static_cast<double>(i * i % 997)};
    FML_CHECK(t.Append(&i, feats).ok());
  }
  FML_CHECK(t.Finish().ok());
  return t;
}

void ExpectRowsCorrect(const RowBatch& batch) {
  for (size_t r = 0; r < batch.num_rows; ++r) {
    const int64_t row = batch.start_row + static_cast<int64_t>(r);
    ASSERT_EQ(batch.KeysOf(r)[0], row);
    ASSERT_DOUBLE_EQ(batch.feats(r, 0), row * 0.25);
    ASSERT_DOUBLE_EQ(batch.feats(r, 2), -static_cast<double>(row));
  }
}

/// Scans the whole table with the given pool/batch size, verifying every
/// decoded row; returns the I/O delta of the scan.
IoStats ScanAll(const Table& t, BufferPool* pool, size_t batch_rows,
                Prefetcher* prefetcher, int64_t depth) {
  TableScanner scanner(&t, pool, batch_rows);
  if (prefetcher != nullptr) scanner.EnablePrefetch(prefetcher, depth);
  const IoStats before = GlobalIo();
  RowBatch batch;
  int64_t seen = 0;
  while (scanner.Next(&batch)) {
    ExpectRowsCorrect(batch);
    seen += static_cast<int64_t>(batch.num_rows);
  }
  EXPECT_TRUE(scanner.status().ok()) << scanner.status().ToString();
  EXPECT_EQ(seen, t.num_rows());
  if (prefetcher != nullptr) prefetcher->Drain();
  return GlobalIo() - before;
}

}  // namespace

TEST(PageCursorTest, DemandPathCountsAreExactWithPrefetchOff) {
  // The --prefetch=off golden: a cold sequential scan through the plane
  // costs exactly one physical read and one miss per data page, no
  // prefetch counters — byte-identical to the pre-refactor demand engine
  // that the pipeline goldens pin.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool pool(64);
  const IoStats delta = ScanAll(t, &pool, 128, nullptr, 0);
  EXPECT_EQ(delta.pages_read, t.num_data_pages());
  EXPECT_EQ(delta.pool_misses, t.num_data_pages());
  EXPECT_EQ(delta.prefetch_reads, 0u);
  EXPECT_EQ(delta.prefetch_hits, 0u);
  EXPECT_EQ(delta.demand_reads(), t.num_data_pages());
}

TEST(PageCursorTest, PrefetchedScanServesDemandFromLandedFrames) {
  // Deterministic variant: land the whole table first, then scan — every
  // demand lookup must be a prefetch hit and cost zero physical reads.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool pool(64);  // table fits: every prefetched page can land
  Prefetcher prefetcher;
  PageCursor cursor(&t, &pool);
  cursor.SetPrefetcher(&prefetcher);
  const IoStats before = GlobalIo();
  cursor.PrefetchRows(0, t.num_rows());
  prefetcher.Drain();
  EXPECT_EQ((GlobalIo() - before).prefetch_reads, t.num_data_pages());
  const IoStats delta = ScanAll(t, &pool, 128, nullptr, 0);
  EXPECT_EQ(delta.pages_read, 0u);
  EXPECT_EQ(delta.pool_misses, 0u);
  EXPECT_EQ(delta.prefetch_hits, t.num_data_pages());
}

TEST(PageCursorTest, LiveDoubleBufferedScanStaysConsistent) {
  // The racy variant: crew and demand reader run concurrently. Whatever
  // the schedule, the accounting invariants must hold: every demand miss
  // is exactly one demand physical read, every physical read is demand or
  // prefetch, and a consumed prefetched frame is counted once.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool pool(64);
  Prefetcher prefetcher;
  const IoStats delta = ScanAll(t, &pool, 128, &prefetcher, 2);
  EXPECT_EQ(delta.prefetch_reads, prefetcher.pages_fetched());
  EXPECT_EQ(delta.demand_reads(), delta.pool_misses);
  EXPECT_GE(delta.pages_read, t.num_data_pages());
  EXPECT_LE(delta.prefetch_hits, delta.prefetch_reads);
}

TEST(PageCursorTest, PrefetchRacesEvictionUnderTinyPool) {
  // capacity << prefetch depth: the prefetcher continuously races the
  // demand reader for frames of a 2-page pool. Decoded rows must stay
  // correct (the reader's current frame is never evicted) and the scan
  // must not deadlock or leak requests. Run repeatedly to shake schedules;
  // TSan covers the data-race side in CI.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool pool(2);
  Prefetcher prefetcher;
  for (int round = 0; round < 5; ++round) {
    const IoStats delta = ScanAll(t, &pool, 64, &prefetcher, 8);
    // Every page is read physically at least once per round (nothing can
    // stay resident across the scan in a 2-page pool).
    EXPECT_GE(delta.pages_read, t.num_data_pages());
  }
}

TEST(PageCursorTest, InsertPrefetchedNeverEvictsTheDemandFrame) {
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 1000);
  BufferPool pool(2);
  // Demand-read page 1; its frame is the reader's current pointer.
  auto page = pool.GetPage(t.file(), 1);
  ASSERT_TRUE(page.ok());
  const char* held = page.value();
  const uint64_t held_key0 = held[0];  // touch before
  // Fill the pool with prefetched frames; the held frame must survive.
  for (uint64_t p = 2; p <= 5; ++p) {
    auto buf = std::make_unique<char[]>(kPageSize);
    ASSERT_TRUE(t.file()->ReadPage(p, buf.get()).ok());
    pool.InsertPrefetched(t.file(), p, std::move(buf));
  }
  EXPECT_TRUE(pool.Contains(t.file(), 1)) << "demand frame evicted";
  EXPECT_EQ(static_cast<uint64_t>(held[0]), held_key0);
  // And duplicates / full-pool inserts report failure instead of evicting
  // the protected frame.
  auto dup = std::make_unique<char[]>(kPageSize);
  ASSERT_TRUE(t.file()->ReadPage(1, dup.get()).ok());
  EXPECT_FALSE(pool.InsertPrefetched(t.file(), 1, std::move(dup)));
}

TEST(PageCursorTest, PrefetchedFrameHitClearsMarkOnce) {
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 1000);
  BufferPool pool(8);
  auto buf = std::make_unique<char[]>(kPageSize);
  ASSERT_TRUE(t.file()->ReadPage(1, buf.get()).ok());
  ASSERT_TRUE(pool.InsertPrefetched(t.file(), 1, std::move(buf)));
  const IoStats before = GlobalIo();
  ASSERT_TRUE(pool.GetPage(t.file(), 1).ok());
  ASSERT_TRUE(pool.GetPage(t.file(), 1).ok());
  const IoStats delta = GlobalIo() - before;
  EXPECT_EQ(delta.pool_hits, 2u);
  EXPECT_EQ(delta.prefetch_hits, 1u) << "mark must clear on first demand";
  EXPECT_EQ(delta.pages_read, 0u);
}

TEST(PageCursorTest, DrainFoldsCrewReadsIntoCaller) {
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 2000);
  BufferPool pool(64);
  Prefetcher prefetcher;
  PageCursor cursor(&t, &pool);
  cursor.SetPrefetcher(&prefetcher);
  const IoStats before = GlobalIo();
  cursor.PrefetchRows(0, t.num_rows());
  prefetcher.Drain();
  const IoStats delta = GlobalIo() - before;
  EXPECT_EQ(delta.prefetch_reads, prefetcher.pages_fetched());
  EXPECT_EQ(delta.pages_read, delta.prefetch_reads);
  EXPECT_GT(delta.prefetch_reads, 0u);
  EXPECT_EQ(delta.pool_misses, 0u) << "prefetch is not a demand lookup";
}

// ------------------------------------------------ per-shard IoStats sums
//
// The shard plane charges every scan-window counter — demand lookups,
// physical reads, and the prefetch crew's folded reads/hits — to exactly
// one shard's IoStats window (contiguous GlobalIo snapshots around each
// span scan + drain). The per-shard counters must therefore sum exactly
// to the run totals for counters that only the scan windows can produce,
// and never exceed the totals for the rest: a drain landing outside its
// shard's window (lost count) or inside two (double count) breaks this.

TEST(ShardIoAccountingTest, PerShardCountersSumToMergedTotals) {
  TempDir dir;
  BufferPool pool(64);  // small pool: real demand misses every pass
  data::SyntheticSpec spec;
  spec.dir = dir.str();
  spec.s_rows = 6000;
  spec.s_feats = 4;
  spec.attrs = {data::AttributeSpec{50, 4}};
  spec.with_target = false;
  spec.seed = 7;
  auto rel = std::move(data::GenerateSynthetic(spec, &pool).value());

  gmm::GmmOptions opt;
  opt.num_components = 2;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 500;
  opt.temp_dir = dir.str();
  opt.threads = 2;
  opt.shards = 3;
  for (const bool prefetch : {false, true}) {
    opt.prefetch = prefetch;
    for (const auto algo :
         {core::Algorithm::kMaterialized, core::Algorithm::kFactorized}) {
      pool.Clear();
      core::TrainReport report;
      auto params = core::TrainGmm(rel, opt, algo, &pool, &report);
      ASSERT_TRUE(params.ok()) << params.status().ToString();
      ASSERT_EQ(report.shard_stats.size(), 3u);
      IoStats sum;
      for (const auto& stat : report.shard_stats) sum += stat.io;
      // Prefetch happens only inside shard scan windows, and the crew's
      // physical reads fold in at each shard's drain: exact totals.
      EXPECT_EQ(sum.prefetch_reads, report.io.prefetch_reads);
      EXPECT_EQ(sum.prefetch_hits, report.io.prefetch_hits);
      // Demand I/O also covers non-scan work (materialization, view
      // loads, seed-row init), so scans are a strict subset of the run.
      EXPECT_LE(sum.pages_read, report.io.pages_read);
      EXPECT_LE(sum.pool_hits, report.io.pool_hits);
      EXPECT_LE(sum.pool_misses, report.io.pool_misses);
      EXPECT_LE(sum.stall_micros, report.io.stall_micros);
      if (prefetch) {
        EXPECT_GT(sum.pages_read, 0u);
      } else {
        EXPECT_EQ(sum.prefetch_reads, 0u);
        EXPECT_GT(sum.pool_misses, 0u) << "scan windows saw no demand I/O";
      }
    }
  }
}


// ------------------------------------------------- column-strip decode

TEST(ColumnStripsTest, StripDecodeMatchesRowDecodeAcrossPageBoundaries) {
  // A read spanning page boundaries, with a strip height unaligned to
  // both the page geometry and the read size: every strip but the last is
  // full, and every (row, col) entry and key must match the row decode.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool pool(64);
  const size_t rpp = t.schema().RowsPerPage();
  const int64_t start = static_cast<int64_t>(rpp) - 3;
  const size_t count = rpp * 2 + 7;
  RowBatch rows;
  FML_ASSERT_OK(t.ReadRows(&pool, start, count, &rows));
  ColumnStrips strips;
  FML_ASSERT_OK(t.ReadStrips(&pool, start, count, /*strip_rows=*/100,
                             &strips));
  EXPECT_EQ(strips.start_row, start);
  EXPECT_EQ(strips.num_rows, count);
  EXPECT_EQ(strips.num_cols, 4u);
  EXPECT_EQ(strips.num_keys, 1u);
  EXPECT_EQ(strips.num_strips, (count + 99) / 100);
  EXPECT_EQ(strips.RowsInStrip(strips.num_strips - 1), count % 100);
  for (size_t s = 0; s < strips.num_strips; ++s) {
    for (size_t r = 0; r < strips.RowsInStrip(s); ++r) {
      const size_t row = strips.StripStart(s) + r;
      ASSERT_EQ(strips.KeysOf(row)[0], rows.KeysOf(row)[0]);
      for (size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(strips.Col(s, c)[r], rows.feats(row, c));
      }
    }
  }
}

TEST(ColumnStripsTest, StripTallerThanReadYieldsOnePartialStrip) {
  // strip_rows larger than the read: one strip, short, column stride
  // still the full strip height (fixed layout for the kernels).
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 600);
  BufferPool pool(64);
  ColumnStrips strips;
  FML_ASSERT_OK(t.ReadStrips(&pool, 17, 40, /*strip_rows=*/256, &strips));
  EXPECT_EQ(strips.num_strips, 1u);
  EXPECT_EQ(strips.RowsInStrip(0), 40u);
  EXPECT_EQ(strips.data.size(), 1u * 4u * 256u);
  for (size_t r = 0; r < 40; ++r) {
    const int64_t row = 17 + static_cast<int64_t>(r);
    ASSERT_EQ(strips.KeysOf(r)[0], row);
    ASSERT_DOUBLE_EQ(strips.Col(0, 0)[r], row * 0.25);
    ASSERT_DOUBLE_EQ(strips.Col(0, 2)[r], -static_cast<double>(row));
  }
}

TEST(ColumnStripsTest, ShortStripReadCostsExactlyTheRowRead) {
  // A read shorter than one strip — the mini-batch epoch shape (a sampled
  // batch or a tail morsel smaller than kDefaultStripRows) — must walk
  // exactly the pages the row decode walks: the strip plane never pays
  // extra I/O for a partial strip, and never silently skips the batched
  // decode either (the strip comes back populated).
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 600);
  const size_t rpp = t.schema().RowsPerPage();
  // Both a within-page read and one crossing a page boundary.
  const int64_t starts[] = {5, static_cast<int64_t>(rpp) - 3};
  for (const int64_t start : starts) {
    BufferPool row_pool(64);
    const IoStats row_before = GlobalIo();
    RowBatch rows;
    FML_ASSERT_OK(t.ReadRows(&row_pool, start, 40, &rows));
    const IoStats row_delta = GlobalIo() - row_before;

    BufferPool strip_pool(64);
    const IoStats strip_before = GlobalIo();
    ColumnStrips strips;
    FML_ASSERT_OK(t.ReadStrips(&strip_pool, start, 40, /*strip_rows=*/256,
                               &strips));
    const IoStats strip_delta = GlobalIo() - strip_before;
    EXPECT_EQ(strip_delta.pages_read, row_delta.pages_read) << start;
    EXPECT_EQ(strip_delta.pool_misses, row_delta.pool_misses) << start;
    EXPECT_EQ(strip_delta.pool_hits, row_delta.pool_hits) << start;
    ASSERT_EQ(strips.num_strips, 1u) << start;
    ASSERT_EQ(strips.RowsInStrip(0), 40u) << start;
    for (size_t r = 0; r < 40; ++r) {
      for (size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(strips.Col(0, c)[r],
                  rows.feats(static_cast<size_t>(r), c))
            << start;
      }
    }
  }
}

TEST(ColumnStripsTest, StripReadOutOfBoundsFails) {
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 100);
  BufferPool pool(8);
  ColumnStrips strips;
  EXPECT_EQ(t.ReadStrips(&pool, 99, 2, 64, &strips).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(t.ReadStrips(&pool, -1, 1, 64, &strips).code(),
            StatusCode::kOutOfRange);
}

TEST(ColumnStripsTest, StripScanDemandReadsMatchRowScanWithPrefetchOff) {
  // The I/O contract of the batched decode: NextStrips walks exactly the
  // pages Next walks — same demand reads, same misses, zero prefetch — so
  // the IoStats goldens cannot tell the decode targets apart.
  TempDir dir;
  Table t = MakeWideTable(dir.str() + "/t.fml", 4000);
  BufferPool row_pool(64);
  const IoStats row_delta = ScanAll(t, &row_pool, 128, nullptr, 0);

  BufferPool strip_pool(64);
  TableScanner scanner(&t, &strip_pool, 128);
  const IoStats before = GlobalIo();
  ColumnStrips strips;
  int64_t seen = 0;
  while (scanner.NextStrips(/*strip_rows=*/100, &strips)) {
    seen += static_cast<int64_t>(strips.num_rows);
  }
  EXPECT_TRUE(scanner.status().ok()) << scanner.status().ToString();
  EXPECT_EQ(seen, t.num_rows());
  const IoStats strip_delta = GlobalIo() - before;
  EXPECT_EQ(strip_delta.pages_read, row_delta.pages_read);
  EXPECT_EQ(strip_delta.pool_misses, row_delta.pool_misses);
  EXPECT_EQ(strip_delta.pool_hits, row_delta.pool_hits);
  EXPECT_EQ(strip_delta.prefetch_reads, 0u);
  EXPECT_EQ(strip_delta.demand_reads(), row_delta.demand_reads());
}

}  // namespace
}  // namespace factorml::storage

// Process shard backend tests.
//
// 1) ShardRpcParityTest — the backend's whole contract in one sentence:
//    --shard-backend=process is *bit-identical* to the in-process sharded
//    backend. Objectives (exact doubles), parameters, op counts and the
//    per-shard page-request totals all match across four model families,
//    shards {2,4} x threads {1,4}. Real factormld processes are spawned
//    over Unix-domain sockets for every case.
// 2) ShardRpcFaultTest — failure semantics under injected faults
//    (FACTORMLD_FAULT_KILL / _STALL env specs, honored by factormld): a
//    SIGKILLed or hung worker's spans are requeued (with a recovery
//    rescan when the death lands mid-iteration) or the attempt restarts
//    (non-recoverable GMM covariance pass) — and in every case the final
//    model is still bit-identical to the healthy baseline.
// 3) Wire-level units: ShardJobSpec round-trip and the restart sentinel.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <string>
#include <vector>

#include "core/factorml.h"
#include "core/pipeline/checkpoint.h"
#include "core/pipeline/shard_rpc.h"
#include "core/pipeline/sharded_driver.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace factorml {
namespace {

using data::GenerateSynthetic;
using factorml::testing::TempDir;
using storage::BufferPool;

data::SyntheticSpec Spec(const std::string& dir, bool target) {
  data::SyntheticSpec spec;
  spec.dir = dir;
  spec.s_rows = 3000;
  spec.s_feats = 3;
  spec.attrs = {data::AttributeSpec{40, 5}};
  spec.clusters = 3;
  spec.with_target = target;
  spec.seed = 33;
  return spec;
}

uint64_t Counter(const char* name) {
  return obs::Registry::Instance().GetCounter(name)->Value();
}

/// RAII env spec for the factormld fault hooks (inherited by the workers
/// the coordinator spawns; cleared on scope exit so later tests spawn
/// healthy workers).
class ScopedFaultEnv {
 public:
  ScopedFaultEnv(const char* name, const std::string& spec) : name_(name) {
    setenv(name_, spec.c_str(), 1);
  }
  ~ScopedFaultEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

/// Runs `train` once per backend at the given schedule and pins every
/// bitwise-parity promise the process backend makes.
template <typename Options, typename TrainFn, typename DiffFn>
void ExpectProcessParity(const join::NormalizedRelations& rel, Options opt,
                         core::Algorithm algo, BufferPool* pool,
                         TrainFn train, DiffFn max_abs_diff,
                         const char* family) {
  for (const int shards : {2, 4}) {
    for (const int threads : {1, 4}) {
      const std::string tag = std::string(family) +
                              " shards=" + std::to_string(shards) +
                              " threads=" + std::to_string(threads);
      opt.shards = shards;
      opt.threads = threads;
      opt.shard_backend = "inproc";
      pool->Clear();
      core::TrainReport base_report;
      auto base = train(rel, opt, algo, pool, &base_report);
      ASSERT_TRUE(base.ok()) << tag << ": " << base.status().ToString();

      opt.shard_backend = "process";
      pool->Clear();
      core::TrainReport report;
      auto proc = train(rel, opt, algo, pool, &report);
      ASSERT_TRUE(proc.ok()) << tag << ": " << proc.status().ToString();

      // The hard contract: same bits, not approximately-same numbers.
      EXPECT_EQ(report.final_objective, base_report.final_objective) << tag;
      EXPECT_EQ(max_abs_diff(base.value(), proc.value()), 0.0) << tag;
      EXPECT_EQ(report.iterations, base_report.iterations) << tag;
      EXPECT_EQ(report.ops.mults, base_report.ops.mults) << tag;
      EXPECT_EQ(report.ops.adds, base_report.ops.adds) << tag;
      EXPECT_EQ(report.ops.subs, base_report.ops.subs) << tag;
      EXPECT_EQ(report.ops.exps, base_report.ops.exps) << tag;

      // Shard accounting: same effective shard count, same chunk spans
      // covering the whole plan; and because every node runs the same
      // deterministic scans, each shard issues the same number of page
      // requests on its node's pool as the time-shared backend did.
      EXPECT_EQ(report.shards, base_report.shards) << tag;
      ASSERT_EQ(report.shard_stats.size(), base_report.shard_stats.size())
          << tag;
      for (size_t k = 0; k < report.shard_stats.size(); ++k) {
        EXPECT_EQ(report.shard_stats[k].chunk_begin,
                  base_report.shard_stats[k].chunk_begin)
            << tag << " shard " << k;
        EXPECT_EQ(report.shard_stats[k].chunk_end,
                  base_report.shard_stats[k].chunk_end)
            << tag << " shard " << k;
        EXPECT_EQ(report.shard_stats[k].io.pool_hits +
                      report.shard_stats[k].io.pool_misses,
                  base_report.shard_stats[k].io.pool_hits +
                      base_report.shard_stats[k].io.pool_misses)
            << tag << " shard " << k;
      }
      if (!report.shard_stats.empty()) {
        EXPECT_EQ(report.shard_stats.front().chunk_begin, 0) << tag;
        EXPECT_EQ(report.shard_stats.back().chunk_end, report.morsel_chunks)
            << tag;
      }
    }
  }
}

TEST(ShardRpcParityTest, GmmFactorizedProcessMatchesInproc) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  ExpectProcessParity(
      rel, opt, core::Algorithm::kFactorized, &pool,
      [](const join::NormalizedRelations& r, const gmm::GmmOptions& o,
         core::Algorithm a, BufferPool* p, core::TrainReport* rep) {
        return core::TrainGmm(r, o, a, p, rep);
      },
      &gmm::GmmParams::MaxAbsDiff, "gmm-F");
}

TEST(ShardRpcParityTest, LinregMaterializedProcessMatchesInproc) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  linreg::LinregOptions opt;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  ExpectProcessParity(
      rel, opt, core::Algorithm::kMaterialized, &pool,
      [](const join::NormalizedRelations& r, const linreg::LinregOptions& o,
         core::Algorithm a, BufferPool* p, core::TrainReport* rep) {
        return core::TrainLinreg(r, o, a, p, rep);
      },
      &linreg::LinregModel::MaxAbsDiff, "linreg-M");
}

TEST(ShardRpcParityTest, KmeansStreamingProcessMatchesInproc) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  kmeans::KmeansOptions opt;
  opt.num_clusters = 3;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  ExpectProcessParity(
      rel, opt, core::Algorithm::kStreaming, &pool,
      [](const join::NormalizedRelations& r, const kmeans::KmeansOptions& o,
         core::Algorithm a, BufferPool* p, core::TrainReport* rep) {
        return core::TrainKmeans(r, o, a, p, rep);
      },
      &kmeans::KmeansModel::MaxAbsDiff, "kmeans-S");
}

TEST(ShardRpcParityTest, LogregFactorizedProcessMatchesInproc) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), true), &pool)).value();
  logreg::LogregOptions opt;
  opt.max_iters = 2;
  opt.batch_rows = 256;
  opt.morsel_rows = 200;
  opt.temp_dir = dir.str();
  ExpectProcessParity(
      rel, opt, core::Algorithm::kFactorized, &pool,
      [](const join::NormalizedRelations& r, const logreg::LogregOptions& o,
         core::Algorithm a, BufferPool* p, core::TrainReport* rep) {
        return core::TrainLogreg(r, o, a, p, rep);
      },
      &logreg::LogregModel::MaxAbsDiff, "logreg-F");
}

TEST(ShardRpcParityTest, UnknownBackendRejected) {
  TempDir dir;
  BufferPool pool(512);
  auto rel =
      std::move(GenerateSynthetic(Spec(dir.str(), false), &pool)).value();
  gmm::GmmOptions opt;
  opt.num_components = 3;
  opt.max_iters = 1;
  opt.batch_rows = 256;
  opt.temp_dir = dir.str();
  opt.shards = 2;
  opt.shard_backend = "carrier-pigeon";
  core::TrainReport report;
  auto r = core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool,
                          &report);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("shard-backend"), std::string::npos)
      << r.status().ToString();
}

// ----------------------------------------------------- fault injection
//
// All fault cases: GMM factorized, threads=1, shards=2, 2 iterations.
// GMM's pass_seq timeline is three full passes per iteration —
// iteration 0 runs seq 0 (E), 1 (mean), 2 (cov); iteration 1 runs
// 3, 4, 5. The E and mean passes are recoverable
// (ShardRecoverableAtPass), the cov pass is not (EndPass(kMeanStep)
// rewrote mu mid-iteration), which picks the recovery path per case.

struct FaultFixture {
  TempDir dir;
  BufferPool pool{512};
  join::NormalizedRelations rel;
  gmm::GmmOptions opt;
  double base_objective = 0.0;
  gmm::GmmParams base_params;

  FaultFixture()
      : rel(std::move(GenerateSynthetic(Spec(dir.str(), false), &pool))
                .value()) {
    opt.num_components = 3;
    opt.max_iters = 2;
    opt.batch_rows = 256;
    opt.morsel_rows = 200;
    opt.temp_dir = dir.str();
    opt.threads = 1;
    opt.shards = 2;
    pool.Clear();
    core::TrainReport report;
    auto base =
        core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &report);
    FML_CHECK(base.ok()) << base.status().ToString();
    base_objective = report.final_objective;
    base_params = std::move(base).value();
    opt.shard_backend = "process";
  }

  /// Runs the process backend under whatever fault env is in scope and
  /// checks bit-identity against the healthy inproc baseline.
  void RunAndExpectIdentical(const char* tag) {
    pool.Clear();
    core::TrainReport report;
    auto r =
        core::TrainGmm(rel, opt, core::Algorithm::kFactorized, &pool, &report);
    ASSERT_TRUE(r.ok()) << tag << ": " << r.status().ToString();
    EXPECT_EQ(report.final_objective, base_objective) << tag;
    EXPECT_EQ(gmm::GmmParams::MaxAbsDiff(base_params, r.value()), 0.0) << tag;
    EXPECT_EQ(report.iterations, 2) << tag;
  }
};

TEST(ShardRpcFaultTest, KilledWorkerOnEStepRequeuesBitIdentically) {
  FaultFixture fx;
  const uint64_t deaths = Counter("shard_rpc.worker_deaths");
  const uint64_t requeues = Counter("shard_rpc.requeues");
  const uint64_t restarts = Counter("shard_rpc.restarts");
  ScopedFaultEnv kill("FACTORMLD_FAULT_KILL", "0:0");  // worker 0, seq 0 (E)
  fx.RunAndExpectIdentical("kill@E");
  EXPECT_EQ(Counter("shard_rpc.worker_deaths"), deaths + 1);
  EXPECT_GE(Counter("shard_rpc.requeues"), requeues + 1);
  EXPECT_EQ(Counter("shard_rpc.restarts"), restarts);  // no restart needed
}

TEST(ShardRpcFaultTest, KilledWorkerMidIterationRecoversByRescan) {
  // Death on iteration 1's mean pass (seq 4, in-iteration pass index 1):
  // the surviving worker must rebuild per-row E-step state over the
  // acquired spans (recover_passes=1 prologue) before scanning the real
  // pass — the requeued delta is only bit-identical if it does.
  FaultFixture fx;
  const uint64_t deaths = Counter("shard_rpc.worker_deaths");
  const uint64_t restarts = Counter("shard_rpc.restarts");
  ScopedFaultEnv kill("FACTORMLD_FAULT_KILL", "0:4");
  fx.RunAndExpectIdentical("kill@mean");
  EXPECT_EQ(Counter("shard_rpc.worker_deaths"), deaths + 1);
  EXPECT_EQ(Counter("shard_rpc.restarts"), restarts);
}

TEST(ShardRpcFaultTest, KilledWorkerOnCovPassRestartsTraining) {
  // The covariance pass is non-recoverable: mu was rewritten at
  // EndPass(kMeanStep), so a mid-cov death cannot be replayed. The
  // coordinator must broadcast RESTART and rerun the whole training on
  // the survivor — still converging to the same bits.
  FaultFixture fx;
  const uint64_t deaths = Counter("shard_rpc.worker_deaths");
  const uint64_t restarts = Counter("shard_rpc.restarts");
  ScopedFaultEnv kill("FACTORMLD_FAULT_KILL", "0:2");
  fx.RunAndExpectIdentical("kill@cov");
  EXPECT_EQ(Counter("shard_rpc.worker_deaths"), deaths + 1);
  EXPECT_EQ(Counter("shard_rpc.restarts"), restarts + 1);
}

TEST(ShardRpcFaultTest, HungWorkerTimesOutAndIsRequeued) {
  // A stall, not a death: worker 0 sleeps through its E-step at seq 3.
  // Nothing arrives on its socket, so only --shard-timeout-ms can notice;
  // the coordinator SIGKILLs it and requeues exactly as for an EOF.
  FaultFixture fx;
  fx.opt.shard_timeout_ms = 2000;
  const uint64_t deaths = Counter("shard_rpc.worker_deaths");
  const uint64_t timeouts = Counter("shard_rpc.timeouts");
  ScopedFaultEnv stall("FACTORMLD_FAULT_STALL", "0:3:120000");
  fx.RunAndExpectIdentical("stall@E");
  EXPECT_EQ(Counter("shard_rpc.worker_deaths"), deaths + 1);
  EXPECT_EQ(Counter("shard_rpc.timeouts"), timeouts + 1);
}

// ------------------------------------------------------ wire-level units

TEST(ShardJobSpecTest, RoundTripsEveryField) {
  core::pipeline::ShardJobSpec spec;
  spec.s_path = "/data/s.fml";
  spec.attr_paths = {"/data/r1.fml", "/data/r2.fml"};
  spec.has_target = true;
  spec.pool_pages = 512;
  spec.algorithm = 'f';
  spec.batch_rows = 256;
  spec.threads = 4;
  spec.morsel_rows = 200;
  spec.steal = true;
  spec.prefetch = true;
  spec.prefetch_depth = 3;
  spec.shards = 4;
  spec.kernels = 1;
  spec.shard_timeout_ms = 1234;
  spec.temp_dir = "/tmp/w2";
  spec.worker_id = 2;
  spec.family = "gmm";
  spec.family_blob = std::string("\x01\x00\x7f", 3);

  spec.delta_encoding = "sparse";
  spec.checkpoint_dir = "/tmp/ckpts";
  spec.checkpoint_every = 3;

  const std::string blob = core::pipeline::EncodeShardJobSpec(spec);
  auto decoded = core::pipeline::DecodeShardJobSpec(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const core::pipeline::ShardJobSpec& d = decoded.value();
  EXPECT_EQ(d.s_path, spec.s_path);
  EXPECT_EQ(d.attr_paths, spec.attr_paths);
  EXPECT_EQ(d.has_target, spec.has_target);
  EXPECT_EQ(d.pool_pages, spec.pool_pages);
  EXPECT_EQ(d.algorithm, spec.algorithm);
  EXPECT_EQ(d.batch_rows, spec.batch_rows);
  EXPECT_EQ(d.threads, spec.threads);
  EXPECT_EQ(d.morsel_rows, spec.morsel_rows);
  EXPECT_EQ(d.steal, spec.steal);
  EXPECT_EQ(d.prefetch, spec.prefetch);
  EXPECT_EQ(d.prefetch_depth, spec.prefetch_depth);
  EXPECT_EQ(d.shards, spec.shards);
  EXPECT_EQ(d.kernels, spec.kernels);
  EXPECT_EQ(d.shard_timeout_ms, spec.shard_timeout_ms);
  EXPECT_EQ(d.temp_dir, spec.temp_dir);
  EXPECT_EQ(d.worker_id, spec.worker_id);
  EXPECT_EQ(d.family, spec.family);
  EXPECT_EQ(d.family_blob, spec.family_blob);
  EXPECT_EQ(d.delta_encoding, spec.delta_encoding);
  EXPECT_EQ(d.checkpoint_dir, spec.checkpoint_dir);
  EXPECT_EQ(d.checkpoint_every, spec.checkpoint_every);
}

TEST(ShardJobSpecTest, TrailingBytesRejected) {
  core::pipeline::ShardJobSpec spec;
  spec.s_path = "/data/s.fml";
  std::string blob = core::pipeline::EncodeShardJobSpec(spec);
  blob.push_back('\0');
  EXPECT_FALSE(core::pipeline::DecodeShardJobSpec(blob).ok());
}

// A minimal slot-holding program: one state vector per slot, visited
// whole. Enough to exercise every ShardDelta wire path without a
// training run behind it.
class SlotStateProgram : public core::pipeline::ModelProgram {
 public:
  explicit SlotStateProgram(std::vector<std::vector<double>> slots)
      : slots_(std::move(slots)) {}
  const char* Name() const override { return "slot-fake"; }
  const char* TempStem() const override { return "slot_fake"; }
  uint32_t Capabilities() const override { return 0; }
  int MaxIterations() const override { return 1; }
  Status Init(const core::pipeline::PipelineContext&) override {
    return Status::OK();
  }
  Result<bool> EndIteration(const core::pipeline::PipelineContext&,
                            int) override {
    return true;
  }
  double Objective() const override { return 0.0; }
  void VisitSlotState(
      int, int slot,
      const std::function<void(double*, size_t)>& visit) override {
    auto& s = slots_[static_cast<size_t>(slot)];
    if (!s.empty()) visit(s.data(), s.size());
  }

  std::vector<std::vector<double>> slots_;
};

std::vector<std::vector<double>> WireSlots() {
  // Zero runs, a literal stretch with -0.0 and a denormal (bit-pattern
  // non-zero: they must ship literally), an all-zero slot, a zero tail.
  return {{0.0, 0.0, 0.0, 1.5, -0.0, 5e-324, 2.25},
          {0.0, 0.0, 0.0, 0.0},
          {7.0, 0.0}};
}

TEST(ShardDeltaWireTest, SparseRoundTripsBitExactAndNoLarger) {
  auto original = WireSlots();
  for (const bool sparse : {false, true}) {
    SlotStateProgram src(original);
    const auto delta = core::pipeline::ExtractShardDelta(
        &src, 0, 1, exec::Range{0, 3}, sparse);
    // Extract zeroes the source slots: the bytes carry the whole state.
    for (const auto& s : src.slots_) {
      for (const double v : s) EXPECT_EQ(v, 0.0);
    }
    SlotStateProgram dst(
        {std::vector<double>(7, -1.0), std::vector<double>(4, -1.0),
         std::vector<double>(2, -1.0)});
    const Status st = core::pipeline::ApplyShardDelta(&dst, 0, delta);
    ASSERT_TRUE(st.ok()) << (sparse ? "sparse: " : "dense: ")
                         << st.ToString();
    for (size_t s = 0; s < original.size(); ++s) {
      for (size_t i = 0; i < original[s].size(); ++i) {
        EXPECT_EQ(std::memcmp(&dst.slots_[s][i], &original[s][i],
                              sizeof(double)),
                  0)
            << "slot " << s << " double " << i << " sparse=" << sparse;
      }
    }
  }
  SlotStateProgram a(original), b(original);
  const auto dense = core::pipeline::ExtractShardDelta(
      &a, 0, 1, exec::Range{0, 3}, /*sparse=*/false);
  const auto rle = core::pipeline::ExtractShardDelta(
      &b, 0, 1, exec::Range{0, 3}, /*sparse=*/true);
  EXPECT_LT(rle.wire_size(), dense.wire_size());
}

TEST(ShardDeltaWireTest, TruncatedFramesRejectedNamingTheShard) {
  for (const bool sparse : {false, true}) {
    SlotStateProgram src(WireSlots());
    auto delta = core::pipeline::ExtractShardDelta(&src, 0, 3,
                                                   exec::Range{0, 3}, sparse);
    delta.bytes.resize(delta.bytes.size() - 5);
    SlotStateProgram dst(WireSlots());
    const Status st = core::pipeline::ApplyShardDelta(&dst, 0, delta);
    ASSERT_FALSE(st.ok()) << "sparse=" << sparse;
    EXPECT_NE(st.ToString().find("shard 3"), std::string::npos)
        << st.ToString();
    EXPECT_NE(st.ToString().find("chunks [0, 3)"), std::string::npos)
        << st.ToString();
  }
}

TEST(ShardDeltaWireTest, TrailingBytesRejected) {
  // A frame that decodes fine but carries extra bytes is a framing bug
  // upstream; silently ignoring the tail would mask it.
  for (const bool sparse : {false, true}) {
    SlotStateProgram src(WireSlots());
    auto delta = core::pipeline::ExtractShardDelta(&src, 0, 0,
                                                   exec::Range{0, 3}, sparse);
    delta.bytes.append(8, '\0');
    SlotStateProgram dst(WireSlots());
    const Status st = core::pipeline::ApplyShardDelta(&dst, 0, delta);
    ASSERT_FALSE(st.ok()) << "sparse=" << sparse;
    EXPECT_NE(st.ToString().find("length mismatch"), std::string::npos)
        << st.ToString();
  }
}

TEST(ShardDeltaWireTest, SpanMismatchRejectedWithBothSpans) {
  SlotStateProgram src(WireSlots());
  auto delta =
      core::pipeline::ExtractShardDelta(&src, 0, 2, exec::Range{1, 3});
  delta.chunk_begin = 0;  // merge-side bookkeeping disagrees with the wire
  SlotStateProgram dst(WireSlots());
  const Status st = core::pipeline::ApplyShardDelta(&dst, 0, delta);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("chunks [0, 3)"), std::string::npos)
      << st.ToString();  // what the merge expected
  EXPECT_NE(st.ToString().find("chunks [1, 3)"), std::string::npos)
      << st.ToString();  // what the wire carried
}

TEST(ShardDeltaWireTest, ShapeDriftRejectedWithByteCounts) {
  SlotStateProgram src(WireSlots());
  const auto delta =
      core::pipeline::ExtractShardDelta(&src, 0, 0, exec::Range{0, 3});
  auto grown = WireSlots();
  grown[1].push_back(0.0);  // receiver's slot 1 is one double wider
  SlotStateProgram dst(std::move(grown));
  const Status st = core::pipeline::ApplyShardDelta(&dst, 0, delta);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("shape drifted"), std::string::npos)
      << st.ToString();
}

// ----------------------------------------- checkpoint + coordinator kill

TEST(ShardRpcFaultTest, KilledCoordinatorResumesBitIdentically) {
  // The full crash story: a process-backend run with checkpointing is
  // SIGKILLed at the top of iteration 1 (pass seq 3 = iteration 1's
  // E-step; iteration 0's checkpoint is already on disk). A rerun with
  // the same flags restores coordinator AND workers from that checkpoint
  // and must finish bit-identical to the never-killed baseline — same
  // objective bits, same params, same op counters.
  FaultFixture fx;
  TempDir ckpt;
  fx.opt.checkpoint_dir = ckpt.str();

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // The doomed attempt. The env spec only matches the coordinator-side
    // hook ("coord:<seq>"); worker processes ignore it.
    setenv("FACTORMLD_FAULT_KILL", "coord:3", 1);
    core::TrainReport report;
    auto r = core::TrainGmm(fx.rel, fx.opt, core::Algorithm::kFactorized,
                            &fx.pool, &report);
    // Reaching here means the kill hook never fired.
    _exit(r.ok() ? 7 : 8);
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus))
      << "coordinator was not killed (exit status " << wstatus << ")";
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  // The checkpoint the killed run left behind covers iteration 0 only.
  auto left = core::pipeline::ReadCheckpoint(ckpt.str(), "F-GMM");
  ASSERT_TRUE(left.ok()) << left.status().ToString();
  EXPECT_EQ(left.value().completed_iterations, 1);

  // Rerun with the same flags, no fault env: restores and finishes.
  fx.RunAndExpectIdentical("resume-after-coordinator-kill");
}

TEST(ShardRestartTest, SentinelRoundTrips) {
  const Status restart = core::pipeline::ShardRestartStatus(2);
  EXPECT_FALSE(restart.ok());
  EXPECT_TRUE(core::pipeline::IsShardRestart(restart));
  EXPECT_FALSE(core::pipeline::IsShardRestart(Status::OK()));
  EXPECT_FALSE(core::pipeline::IsShardRestart(
      Status::FailedPrecondition("recv timeout")));
  EXPECT_FALSE(
      core::pipeline::IsShardRestart(Status::Internal("shard-restart: ")));
}

}  // namespace
}  // namespace factorml

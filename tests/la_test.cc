#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "common/opcount.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "la/cholesky.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "la/ops.h"
#include "test_util.h"

namespace factorml::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) m(i, j) = rng->NextGaussian();
  }
  return m;
}

/// Random symmetric positive-definite matrix A = B B^T + n*I.
Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix b = RandomMatrix(n, n, rng);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < n; ++p) s += b(i, p) * b(j, p);
      a(i, j) = s;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowSpanAliasesStorage) {
  Matrix m(3, 4);
  auto row = m.Row(1);
  row[2] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_EQ(row.size(), 4u);
}

TEST(MatrixTest, ScaleAddFill) {
  Matrix a(2, 2);
  a.Fill(2.0);
  a.Scale(3.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
  Matrix b(2, 2);
  b.Fill(1.0);
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  a.SetZero();
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(MatrixTest, TransposedAndIdentity) {
  Matrix m(2, 3);
  m(0, 1) = 4.0;
  m(1, 2) = -1.0;
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 1), -1.0);
  Matrix id = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(id(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 2), 0.0);
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  a(0, 1) = 1.0;
  b(0, 1) = 1.5;
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(Matrix::MaxAbsDiff(a, a), 0.0);
}

TEST(MatrixTest, ResizeZeroFills) {
  Matrix m(1, 1);
  m(0, 0) = 9.0;
  m.Resize(2, 2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

// ------------------------------------------------------------------ Ops

TEST(OpsTest, DotAndAxpy) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 32.0);
  double y[] = {1.0, 1.0, 1.0};
  Axpy(2.0, a, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
}

TEST(OpsTest, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const double x[] = {1.0, 0.0, -1.0};
  double y[2];
  Gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(OpsTest, BilinearSubBlock) {
  // A 4x4 with a known 2x2 block at (1,2).
  Matrix a(4, 4);
  a(1, 2) = 1.0;
  a(1, 3) = 2.0;
  a(2, 2) = 3.0;
  a(2, 3) = 4.0;
  const double u[] = {1.0, 1.0};
  const double v[] = {1.0, -1.0};
  // u^T [[1,2],[3,4]] v = (1+3)*1 + (2+4)*(-1) = -2.
  EXPECT_DOUBLE_EQ(Bilinear(a, 1, 2, u, 2, v, 2), -2.0);
}

TEST(OpsTest, QuadFormEqualsFullBilinear) {
  Rng rng(3);
  Matrix a = RandomSpd(5, &rng);
  std::vector<double> x(5);
  for (auto& v : x) v = rng.NextGaussian();
  double manual = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < 5; ++j) manual += x[i] * a(i, j) * x[j];
  }
  EXPECT_NEAR(QuadForm(a, x.data(), 5), manual, 1e-10);
}

TEST(OpsTest, GemmNTMatchesNaive) {
  Rng rng(4);
  Matrix x = RandomMatrix(3, 5, &rng);
  Matrix w = RandomMatrix(4, 5, &rng);
  Matrix c;
  GemmNT(x, w, &c, false);
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < 5; ++p) s += x(i, p) * w(j, p);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  }
}

TEST(OpsTest, GemmNTAccumulates) {
  Rng rng(5);
  Matrix x = RandomMatrix(2, 3, &rng);
  Matrix w = RandomMatrix(2, 3, &rng);
  Matrix c(2, 2);
  c.Fill(1.0);
  GemmNT(x, w, &c, true);
  Matrix fresh;
  GemmNT(x, w, &fresh, false);
  EXPECT_NEAR(c(1, 1), fresh(1, 1) + 1.0, 1e-12);
}

TEST(OpsTest, GemmNNMatchesNaive) {
  Rng rng(6);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(4, 2, &rng);
  Matrix c;
  GemmNN(a, b, &c, false);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < 4; ++p) s += a(i, p) * b(p, j);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  }
}

TEST(OpsTest, GemmNTSliceUsesColumnWindow) {
  Rng rng(7);
  Matrix x = RandomMatrix(3, 2, &rng);   // k=2
  Matrix w = RandomMatrix(4, 6, &rng);   // slice cols [3,5)
  Matrix c;
  GemmNTSlice(x, w, 3, &c, false);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < 2; ++p) s += x(i, p) * w(j, 3 + p);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  }
}

TEST(OpsTest, GemmTNMatchesNaive) {
  Rng rng(8);
  Matrix d = RandomMatrix(5, 3, &rng);
  Matrix x = RandomMatrix(5, 2, &rng);
  Matrix g;
  GemmTN(d, x, &g, false);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double s = 0.0;
      for (size_t r = 0; r < 5; ++r) s += d(r, i) * x(r, j);
      EXPECT_NEAR(g(i, j), s, 1e-12);
    }
  }
}

TEST(OpsTest, GemmTNSliceWritesColumnWindow) {
  Rng rng(9);
  Matrix d = RandomMatrix(4, 3, &rng);
  Matrix x = RandomMatrix(4, 2, &rng);
  Matrix g(3, 6);
  g.Fill(0.5);
  GemmTNSlice(d, x, &g, 4);
  Matrix ref;
  GemmTN(d, x, &ref, false);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(g(i, 4), 0.5 + ref(i, 0), 1e-12);
    EXPECT_NEAR(g(i, 5), 0.5 + ref(i, 1), 1e-12);
    EXPECT_DOUBLE_EQ(g(i, 0), 0.5);  // untouched columns
  }
}

TEST(OpsTest, AddOuterIntoBlock) {
  Matrix a(4, 4);
  const double u[] = {1.0, 2.0};
  const double v[] = {3.0, 4.0};
  AddOuter(2.0, u, 2, v, 2, &a, 1, 2);
  EXPECT_DOUBLE_EQ(a(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(a(1, 3), 8.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 12.0);
  EXPECT_DOUBLE_EQ(a(2, 3), 16.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
}

TEST(OpsTest, AddRowVector) {
  Matrix x(2, 3);
  const double b[] = {1.0, 2.0, 3.0};
  AddRowVector(b, &x);
  AddRowVector(b, &x);
  EXPECT_DOUBLE_EQ(x(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(x(1, 2), 6.0);
}

// ------------------------------------------------------------- Cholesky

class CholeskySizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskySizeTest, FactorReconstructsMatrix) {
  Rng rng(100 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(n, &rng);
  Cholesky chol;
  FML_ASSERT_OK(chol.Factor(a));
  const Matrix& l = chol.lower();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < n; ++p) s += l(i, p) * l(j, p);
      EXPECT_NEAR(s, a(i, j), 1e-8) << "at " << i << "," << j;
    }
  }
}

TEST_P(CholeskySizeTest, SolveSatisfiesSystem) {
  Rng rng(200 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(n, &rng);
  std::vector<double> b(n), x(n), ax(n);
  for (auto& v : b) v = rng.NextGaussian();
  Cholesky chol;
  FML_ASSERT_OK(chol.Factor(a));
  chol.Solve(b.data(), x.data());
  Gemv(a, x.data(), ax.data());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-7);
}

TEST_P(CholeskySizeTest, InverseTimesMatrixIsIdentity) {
  Rng rng(300 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(n, &rng);
  Cholesky chol;
  FML_ASSERT_OK(chol.Factor(a));
  Matrix inv = chol.Inverse();
  Matrix prod;
  GemmNN(a, inv, &prod, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-7);
    }
  }
}

TEST_P(CholeskySizeTest, LogDetMatchesDiagonalProduct) {
  Rng rng(400 + GetParam());
  const size_t n = GetParam();
  Matrix a = RandomSpd(n, &rng);
  Cholesky chol;
  FML_ASSERT_OK(chol.Factor(a));
  double ld = 0.0;
  for (size_t i = 0; i < n; ++i) ld += 2.0 * std::log(chol.lower()(i, i));
  EXPECT_NEAR(chol.LogDet(), ld, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(CholeskyTest, RejectsNonSquare) {
  Cholesky chol;
  EXPECT_EQ(chol.Factor(Matrix(2, 3)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  Cholesky chol;
  EXPECT_EQ(chol.Factor(a).code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, JitterRecoversNearSingular) {
  // Rank-deficient PSD matrix: outer product of one vector.
  Matrix a(3, 3);
  const double v[] = {1.0, 2.0, 3.0};
  AddOuter(1.0, v, 3, v, 3, &a, 0, 0);
  Cholesky chol;
  EXPECT_FALSE(chol.Factor(a).ok());
  FML_EXPECT_OK(chol.FactorWithJitter(a));
  EXPECT_TRUE(chol.factored());
}

TEST(CholeskyTest, MultiplyLowerSamplesCovariance) {
  Rng rng(55);
  Matrix a = RandomSpd(3, &rng);
  Cholesky chol;
  FML_ASSERT_OK(chol.Factor(a));
  // y = L z with z = e0 gives the first column of L.
  const double z[] = {1.0, 0.0, 0.0};
  double y[3];
  chol.MultiplyLower(z, y);
  EXPECT_NEAR(y[0], chol.lower()(0, 0), 1e-12);
  EXPECT_NEAR(y[1], chol.lower()(1, 0), 1e-12);
  EXPECT_NEAR(y[2], chol.lower()(2, 0), 1e-12);
}

// Property: the factorized quadratic-form decomposition used by F-GMM is
// exact — sum of block bilinears equals the full quadratic form.
class BlockDecompositionTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(BlockDecompositionTest, BlocksSumToFullQuadForm) {
  const size_t ds = std::get<0>(GetParam());
  const size_t dr = std::get<1>(GetParam());
  const size_t d = ds + dr;
  Rng rng(1000 + ds * 13 + dr);
  Matrix a = RandomSpd(d, &rng);
  std::vector<double> x(d);
  for (auto& v : x) v = rng.NextGaussian();
  const double full = QuadForm(a, x.data(), d);
  const double* xs = x.data();
  const double* xr = x.data() + ds;
  // Eq. 9-12: UL + UR + LL + LR.
  const double ul = Bilinear(a, 0, 0, xs, ds, xs, ds);
  const double ur = Bilinear(a, 0, ds, xs, ds, xr, dr);
  const double ll = Bilinear(a, ds, 0, xr, dr, xs, ds);
  const double lr = Bilinear(a, ds, ds, xr, dr, xr, dr);
  EXPECT_NEAR(ul + ur + ll + lr, full, 1e-9 * (1.0 + std::fabs(full)));
}

INSTANTIATE_TEST_SUITE_P(
    Splits, BlockDecompositionTest,
    ::testing::Combine(::testing::Values(1, 3, 5, 8),
                       ::testing::Values(1, 2, 7, 15)));

// Property sweep: the gemm variants must agree with each other under
// transposition for arbitrary shapes (C = A*B  <=>  C = A*(B^T)^T etc.).
class GemmConsistencyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GemmConsistencyTest, VariantsAgree) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);

  Matrix c_nn;
  GemmNN(a, b, &c_nn, false);

  // GemmNT with B transposed gives the same product.
  Matrix bt = b.Transposed();
  Matrix c_nt;
  GemmNT(a, bt, &c_nt, false);
  EXPECT_LT(Matrix::MaxAbsDiff(c_nn, c_nt), 1e-10);

  // GemmTN with A transposed gives the same product.
  Matrix at = a.Transposed();
  Matrix c_tn;
  GemmTN(at, b, &c_tn, false);
  EXPECT_LT(Matrix::MaxAbsDiff(c_nn, c_tn), 1e-10);

  // Slice kernels with a zero offset reduce to the full kernels.
  Matrix c_slice;
  GemmNTSlice(a, bt, 0, &c_slice, false);
  EXPECT_LT(Matrix::MaxAbsDiff(c_nn, c_slice), 1e-10);
  Matrix g(a.rows(), b.cols());
  GemmTNSlice(at, b, &g, 0);
  EXPECT_LT(Matrix::MaxAbsDiff(c_nn, g), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmConsistencyTest,
    ::testing::Combine(::testing::Values(1, 3, 17),
                       ::testing::Values(1, 8, 31),
                       ::testing::Values(1, 5, 16)));

// Property: outer-product accumulation distributes over scaling, the
// identity F-GMM's deferred diagonal blocks rely on:
//   sum_i g_i * (v v^T) == (sum_i g_i) * (v v^T).
TEST(OpsTest, ScaledOuterAccumulationIsLinear) {
  Rng rng(77);
  const size_t d = 6;
  std::vector<double> v(d);
  for (auto& x : v) x = rng.NextGaussian();
  Matrix per_row(d, d), grouped(d, d);
  double gsum = 0.0;
  for (int i = 0; i < 25; ++i) {
    const double g = rng.NextDouble();
    AddOuter(g, v.data(), d, v.data(), d, &per_row, 0, 0);
    gsum += g;
  }
  AddOuter(gsum, v.data(), d, v.data(), d, &grouped, 0, 0);
  EXPECT_LT(Matrix::MaxAbsDiff(per_row, grouped), 1e-10);
}


// --------------------------------------------------------- kernel plane

/// RAII: selects a kernel backend for the test body, restores scalar.
struct ScopedKernels {
  explicit ScopedKernels(KernelMode mode) { SelectKernels(mode); }
  ~ScopedKernels() { SelectKernels(KernelMode::kScalar); }
};

/// Random strip: d columns of `rows` doubles plus the pointer array the
/// strip kernels take.
struct TestStrip {
  TestStrip(size_t d, size_t rows, Rng* rng) : data(d * rows), cols(d) {
    for (auto& v : data) v = rng->NextGaussian();
    for (size_t j = 0; j < d; ++j) cols[j] = data.data() + j * rows;
  }
  std::vector<double> data;
  std::vector<const double*> cols;
};

TEST(KernelsTest, SelectSwapsActiveTableAndRestores) {
  EXPECT_FALSE(Active().simd);
  EXPECT_STREQ(Active().name, "scalar");
  {
    ScopedKernels simd(KernelMode::kSimd);
    EXPECT_TRUE(Active().simd);
    EXPECT_STREQ(Active().name, SimdBackendName());
  }
  EXPECT_FALSE(Active().simd);
  EXPECT_FALSE(CpuFeatures().empty());
}

TEST(KernelsTest, SimdPrimitivesMatchScalarToTolerance) {
  Rng rng(7);
  const size_t n = 97;  // unaligned on purpose: exercises vector tails
  std::vector<double> a(n), b(n), y_s(n, 0.5), y_v(y_s);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  const Kernels& scalar = Active();
  SelectKernels(KernelMode::kSimd);
  const Kernels& simd = Active();
  SelectKernels(KernelMode::kScalar);

  EXPECT_NEAR(scalar.dot(a.data(), b.data(), n),
              simd.dot(a.data(), b.data(), n), 1e-12);
  scalar.axpy(0.75, a.data(), y_s.data(), n);
  simd.axpy(0.75, a.data(), y_v.data(), n);
  for (size_t i = 0; i < n; ++i) ASSERT_NEAR(y_s[i], y_v[i], 1e-12);

  const size_t m = 13;
  Matrix mat = RandomMatrix(m, n, &rng);
  std::vector<double> g_s(m, 0.0), g_v(m, 0.0);
  scalar.gemv(mat.data(), m, n, a.data(), g_s.data());
  simd.gemv(mat.data(), m, n, a.data(), g_v.data());
  for (size_t i = 0; i < m; ++i) ASSERT_NEAR(g_s[i], g_v[i], 1e-10);

  Matrix sq = RandomMatrix(n, n, &rng);
  EXPECT_NEAR(scalar.bilinear(sq.data(), n, a.data(), n, b.data(), n),
              simd.bilinear(sq.data(), n, a.data(), n, b.data(), n), 1e-9);

  Matrix o_s(m, n), o_v(m, n);
  scalar.add_outer(1.25, a.data(), m, b.data(), n, o_s.data(), n);
  simd.add_outer(1.25, a.data(), m, b.data(), n, o_v.data(), n);
  EXPECT_LT(Matrix::MaxAbsDiff(o_s, o_v), 1e-12);
}

TEST(KernelsTest, StripKernelsMatchScalarToTolerance) {
  Rng rng(11);
  const size_t d = 7, rows = 203;  // short tail after the 4-wide lanes
  TestStrip strip(d, rows, &rng);
  std::vector<double> w(rows);
  for (auto& v : w) v = rng.NextUniform(0.25, 1.25);
  const Kernels& scalar = Active();
  SelectKernels(KernelMode::kSimd);
  const Kernels& simd = Active();
  SelectKernels(KernelMode::kScalar);

  const double* weight_opts[] = {nullptr, w.data()};
  for (const double* weights : weight_opts) {
    Matrix g_s(d, d), g_v(d, d);
    scalar.syrk_strip(strip.cols.data(), d, rows, weights, g_s.data(), d);
    simd.syrk_strip(strip.cols.data(), d, rows, weights, g_v.data(), d);
    EXPECT_LT(Matrix::MaxAbsDiff(g_s, g_v), 1e-9);
    // The vector backend mirrors the upper triangle: exact symmetry.
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) ASSERT_EQ(g_v(i, j), g_v(j, i));
    }
  }

  std::vector<double> v(d), out_s(rows), out_v(rows);
  for (auto& x : v) x = rng.NextGaussian();
  scalar.col_dot_strip(strip.cols.data(), d, rows, v.data(), out_s.data());
  simd.col_dot_strip(strip.cols.data(), d, rows, v.data(), out_v.data());
  for (size_t r = 0; r < rows; ++r) ASSERT_NEAR(out_s[r], out_v[r], 1e-10);

  std::vector<double> acc_s(d, 0.0), acc_v(d, 0.0);
  scalar.colsum_strip(strip.cols.data(), d, rows, w.data(), acc_s.data());
  simd.colsum_strip(strip.cols.data(), d, rows, w.data(), acc_v.data());
  for (size_t j = 0; j < d; ++j) ASSERT_NEAR(acc_s[j], acc_v[j], 1e-9);

  scalar.dist_strip(strip.cols.data(), d, rows, v.data(), out_s.data());
  simd.dist_strip(strip.cols.data(), d, rows, v.data(), out_v.data());
  for (size_t r = 0; r < rows; ++r) ASSERT_NEAR(out_s[r], out_v[r], 1e-10);

  // quadform takes the centered strip as one d x rows block.
  Matrix a = RandomMatrix(d, d, &rng);
  scalar.quadform_strip(strip.data.data(), d, rows, a.data(), d,
                        out_s.data());
  simd.quadform_strip(strip.data.data(), d, rows, a.data(), d,
                      out_v.data());
  for (size_t r = 0; r < rows; ++r) ASSERT_NEAR(out_s[r], out_v[r], 1e-9);
}

/// RAII: pins FACTORML_KERNELS_BACKEND for the test body (nullptr =
/// unset), then restores whatever the ambient environment had — CI's
/// forced-portable job exports the variable job-wide, so tests must not
/// leak their own value over it.
struct ScopedBackendEnv {
  explicit ScopedBackendEnv(const char* v) {
    const char* prev = std::getenv("FACTORML_KERNELS_BACKEND");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (v != nullptr) {
      setenv("FACTORML_KERNELS_BACKEND", v, /*overwrite=*/1);
    } else {
      unsetenv("FACTORML_KERNELS_BACKEND");
    }
  }
  ~ScopedBackendEnv() {
    if (had_prev_) {
      setenv("FACTORML_KERNELS_BACKEND", prev_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("FACTORML_KERNELS_BACKEND");
    }
  }
  std::string prev_;
  bool had_prev_ = false;
};

TEST(KernelsTest, GemmStripMatchesNaiveOnEveryBackend) {
  Rng rng(17);
  const size_t m = 9, n = 203, k = 7;  // n has a short vector tail
  Matrix a = RandomMatrix(m, k, &rng);
  std::vector<double> b(k * n);  // k rows of n contiguous doubles
  for (auto& v : b) v = rng.NextGaussian();
  // Naive references for both operand shapes.
  Matrix ref_nn(m, n), ref_nt(m, k);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < k; ++p) s += a(i, p) * b[p * n + j];
      ref_nn(i, j) = s;
    }
  }
  // trans_b: C(m x k) = A(m x n') * B(k x n')^T with n' = n, reusing b as
  // a k x n block read row-wise.
  Matrix a2 = RandomMatrix(m, n, &rng);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t p = 0; p < n; ++p) s += a2(i, p) * b[j * n + p];
      ref_nt(i, j) = s;
    }
  }
  for (const char* backend : {"scalar", "portable", "native"}) {
    SCOPED_TRACE(backend);
    ScopedBackendEnv env(backend);
    ScopedKernels simd(KernelMode::kSimd);
    const Kernels& kern = Active();
    Matrix c(m, n);
    c.Fill(0.25);  // accumulate == false must overwrite this
    kern.gemm_strip(a.data(), k, b.data(), n, m, n, k, c.data(), n,
                    /*trans_b=*/false, /*accumulate=*/false);
    EXPECT_LT(Matrix::MaxAbsDiff(c, ref_nn), 1e-9);
    kern.gemm_strip(a.data(), k, b.data(), n, m, n, k, c.data(), n,
                    /*trans_b=*/false, /*accumulate=*/true);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        ASSERT_NEAR(c(i, j), 2.0 * ref_nn(i, j), 1e-8);
      }
    }
    Matrix ct(m, k);
    ct.Fill(0.0);
    kern.gemm_strip(a2.data(), n, b.data(), n, m, k, n, ct.data(), k,
                    /*trans_b=*/true, /*accumulate=*/true);
    EXPECT_LT(Matrix::MaxAbsDiff(ct, ref_nt), 1e-8);
  }
}

TEST(KernelsTest, GatherScatterStripKernelsBitEqualOnEveryBackend) {
  // The rid-indexed kernels stay scalar row loops in every backend (no
  // lane reassociation), so their outputs are bit-equal — including
  // duplicate scatter indices, which must accumulate in row order.
  Rng rng(23);
  const size_t rows = 203, n = 5, base_rows = 17;
  std::vector<int64_t> idx(rows);
  for (auto& v : idx) {
    v = static_cast<int64_t>(rng.NextUniform(0.0, 1.0) * base_rows);
    if (v >= static_cast<int64_t>(base_rows)) v = base_rows - 1;
  }
  Matrix base = RandomMatrix(base_rows, n, &rng);
  std::vector<double> src(base_rows), w(rows);
  for (auto& v : src) v = rng.NextGaussian();
  for (auto& v : w) v = rng.NextUniform(0.25, 1.25);

  Matrix ref_rows(rows, n);
  std::vector<double> ref_el(rows, 0.5), ref_acc(base_rows, 0.0);
  std::vector<double> ref_acc_unit(base_rows, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    const auto br = static_cast<size_t>(idx[r]);
    for (size_t j = 0; j < n; ++j) ref_rows(r, j) = base(br, j);
    ref_el[r] += src[br];
    ref_acc[br] += w[r];
    ref_acc_unit[br] += 1.0;
  }
  for (const char* backend : {"scalar", "portable", "native"}) {
    SCOPED_TRACE(backend);
    ScopedBackendEnv env(backend);
    ScopedKernels simd(KernelMode::kSimd);
    const Kernels& kern = Active();
    Matrix out(rows, n);
    out.Fill(0.0);
    kern.gather_add_rows_strip(base.data(), n, idx.data(), rows, n,
                               out.data(), n);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < n; ++j) ASSERT_EQ(out(r, j), ref_rows(r, j));
    }
    std::vector<double> el(rows, 0.5);
    kern.gather_add_strip(src.data(), idx.data(), rows, el.data());
    for (size_t r = 0; r < rows; ++r) ASSERT_EQ(el[r], ref_el[r]);
    std::vector<double> acc(base_rows, 0.0);
    kern.scatter_add_strip(idx.data(), w.data(), rows, acc.data());
    for (size_t i = 0; i < base_rows; ++i) ASSERT_EQ(acc[i], ref_acc[i]);
    std::fill(acc.begin(), acc.end(), 0.0);
    kern.scatter_add_strip(idx.data(), /*w=*/nullptr, rows, acc.data());
    for (size_t i = 0; i < base_rows; ++i) {
      ASSERT_EQ(acc[i], ref_acc_unit[i]);
    }
  }
}

TEST(KernelsTest, BackendEnvOverrideForcesTable) {
  {
    ScopedBackendEnv env("portable");
    ScopedKernels simd(KernelMode::kSimd);
    EXPECT_STREQ(Active().name, "portable");
    EXPECT_STREQ(SimdBackendName(), "portable");
  }
  {
    ScopedBackendEnv env("scalar");
    ScopedKernels simd(KernelMode::kSimd);
    EXPECT_STREQ(Active().name, "scalar");
  }
  {
    // "native" picks the best table the CPU supports — same choice as
    // no override at all (resolved with the variable genuinely absent,
    // whatever the ambient environment forces).
    std::string unforced;
    {
      ScopedBackendEnv clear(nullptr);
      unforced = SimdBackendName();
    }
    ScopedBackendEnv env("native");
    ScopedKernels simd(KernelMode::kSimd);
    EXPECT_STREQ(Active().name, unforced.c_str());
  }
  // kScalar mode never consults the override: golden runs survive a
  // forced-portable environment untouched.
  {
    ScopedBackendEnv env("portable");
    ScopedKernels scalar(KernelMode::kScalar);
    EXPECT_STREQ(Active().name, "scalar");
  }
}

TEST(KernelsTest, RoutedOpsChargeSameCountsOnBothBackends) {
  // The accounting contract: la/ops.h wrappers charge in the wrapper, so
  // the counted stream is identical whichever table executes underneath.
  Rng rng(3);
  const size_t n = 33;
  std::vector<double> a(n), b(n), y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
  }
  Matrix sq = RandomMatrix(n, n, &rng);
  OpCounters deltas[2];
  for (int pass = 0; pass < 2; ++pass) {
    ScopedKernels mode(pass == 0 ? KernelMode::kScalar : KernelMode::kSimd);
    const OpCounters before = GlobalOps();
    (void)Dot(a.data(), b.data(), n);
    Axpy(2.0, a.data(), y.data(), n);
    (void)QuadForm(sq, a.data(), n);
    Matrix g(n, n);
    AddOuter(1.0, a.data(), n, b.data(), n, &g, 0, 0);
    deltas[pass] = GlobalOps() - before;
  }
  EXPECT_EQ(deltas[0].mults, deltas[1].mults);
  EXPECT_EQ(deltas[0].adds, deltas[1].adds);
  EXPECT_EQ(deltas[0].subs, deltas[1].subs);
  EXPECT_EQ(deltas[0].exps, deltas[1].exps);
}

}  // namespace
}  // namespace factorml::la
